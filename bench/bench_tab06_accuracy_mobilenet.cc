// Table VI: test accuracy of MobileNet trained on CIFAR100-sim with
// non-uniform partitioning, including the PS baselines.
//
// Paper shape: all six approaches land around 63-64% (clearly below
// ResNet18's ~72% on the same data — the small model under-fits the 100-way
// problem); NetMax matches or slightly exceeds the others.

#include <iostream>

#include "bench/bench_util.h"
#include "common/table.h"
#include "ml/model_profile.h"

namespace netmax {
namespace {

Status Run() {
  core::ExperimentConfig config =
      bench::NonUniformConfig(ml::Cifar100SimSpec(), ml::MobileNetProfile());
  // A smaller trainable proxy stands in for the small model: MobileNet's
  // capacity gap vs ResNet18 maps to a narrower hidden layer.
  config.hidden_layers = {12};
  const std::vector<std::string> algorithms = {
      "prague", "allreduce", "adpsgd", "ps-sync", "ps-async", "netmax"};
  NETMAX_ASSIGN_OR_RETURN(const auto results, bench::RunAlgorithms(algorithms, config));
  TablePrinter table({"algorithm", "accuracy"});
  for (const auto& entry : results) {
    table.AddRow(
        {entry.name, Fmt(100.0 * entry.result.final_accuracy, 2) + "%"});
  }
  std::cout << "\n== Table VI: MobileNet/CIFAR100-sim accuracy ==\n";
  table.Print(std::cout);
  table.PrintCsv(std::cout, "tab06_accuracy_mobilenet");
  return Status::Ok();
}

}  // namespace
}  // namespace netmax

int main(int argc, char** argv) {
  return netmax::bench::BenchMain(argc, argv, [] { return netmax::Run(); });
}
