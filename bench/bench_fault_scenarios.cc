// Robustness panels for the deterministic fault-injection subsystem: every
// registered algorithm runs under scripted worker churn, stragglers, and a
// mixed schedule, under both dead-peer policies, and the table reports how
// each one degraded (fault counters are simulation output — bit-identical
// across backends, threads, and shards, so they print to stdout like any
// other result).
//
// The bench finishes with the crash-restore self-check: for every algorithm,
// a run killed by a crash@T fault and restored from its newest periodic
// (--checkpoint-every style) checkpoint must finish bit-identical to the run
// that never crashed. Any mismatch fails the bench with a non-zero exit, so
// CI can gate on it directly.

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "algos/registry.h"
#include "bench/bench_util.h"
#include "common/status.h"
#include "common/table.h"
#include "core/experiment.h"
#include "ml/compression.h"
#include "net/fault_schedule.h"

namespace netmax {
namespace {

struct FaultPanel {
  const char* name;
  const char* spec;
};

// Scenario times sit inside the first fractions of a virtual second: the
// fastest engine (push-gossip, whose iteration wall is compute-only)
// finishes the --smoke corpus's gradient evaluations within ~0.25 virtual
// seconds, so only sub-second fault times land mid-training for every
// algorithm. Dead windows exceed the 1-second peer deadline below so the
// timeout panels actually expire it.
constexpr FaultPanel kPanels[] = {
    {"churn", "leave@0.1:w2;join@1.5:w2;leave@2:w5;join@10:w5"},
    {"stragglers", "slow@0.05+0.6x4:w1;slow@0.1+1x8:w3"},
    {"mixed", "slow@0.05+0.5x4:w1;leave@0.15:w2;join@2:w2"},
};

// The crash-restore pair: the crashed run is a churn/straggler mix plus a
// crash@0.6, the uninterrupted reference is the same schedule minus the
// crash. Both arm the 0.25-second periodic checkpoint cadence, so when the
// crash halts its run the newest checkpoint holds virtual time 0.5.
constexpr char kUninterruptedSpec[] =
    "slow@0.05+0.5x4:w1;leave@0.1:w2;join@1.2:w2";
constexpr char kCrashedSpec[] =
    "slow@0.05+0.5x4:w1;leave@0.1:w2;crash@0.6;join@1.2:w2";
constexpr double kCadenceSeconds = 0.25;

core::ExperimentConfig FaultBaseConfig() {
  core::ExperimentConfig config = bench::PaperBaseConfig();
  // Static heterogeneous network: the dynamic scenario re-draws its own slow
  // links, which would blur which stragglers the schedule injected.
  config.network = core::NetworkScenario::kHeterogeneousStatic;
  // A deadline short enough to expire inside the scenario windows, so the
  // timeout-and-continue panels actually exercise the degraded paths (the
  // 30s default outlives a --smoke run).
  config.peer_timeout_seconds = 1.0;
  config.peer_poll_seconds = 0.4;
  return config;
}

Status RunPolicyPanels(core::PeerPolicy policy) {
  for (const FaultPanel& panel : kPanels) {
    core::ExperimentConfig config = FaultBaseConfig();
    NETMAX_ASSIGN_OR_RETURN(config.faults,
                            net::FaultSchedule::Parse(panel.spec));
    config.peer_policy = policy;
    NETMAX_ASSIGN_OR_RETURN(
        const std::vector<bench::NamedResult> results,
        bench::RunAlgorithms(algos::AlgorithmNames(), config));
    TablePrinter table({"algorithm", "final_loss", "total_time_s",
                        "iterations", "faults", "degraded", "timeouts"});
    for (const bench::NamedResult& entry : results) {
      const core::RunResult& r = entry.result;
      table.AddRow({entry.name, Fmt(r.final_train_loss, 4),
                    Fmt(r.total_virtual_seconds, 1),
                    std::to_string(r.total_local_iterations),
                    std::to_string(r.faults_injected),
                    std::to_string(r.rounds_degraded),
                    std::to_string(r.peers_timed_out)});
    }
    const std::string title =
        std::string("Fault panel: ") + panel.name + " (policy=" +
        std::string(core::PeerPolicyName(policy)) + ", faults=" + panel.spec +
        ")";
    std::cout << "\n== " << title << " ==\n";
    table.Print(std::cout);
    table.PrintCsv(std::cout, title);
  }
  return Status::Ok();
}

// Seed-derived sweep: the scripted panels above pin three hand-written
// scenarios; this grid instead draws FaultSchedule::FromSeed churn/straggler
// mixes across several seeds and two intensities, under both dead-peer
// policies, and reports each run's degradation frontier (how far loss,
// degraded rounds, and timeouts move as the injected fault count grows).
// This is the panel behind `--faults=seed:K`: one row here is exactly what
// that flag injects into a full bench run, so the grid doubles as a map of
// which seeds produce mild vs hostile schedules.
constexpr uint64_t kSweepSeeds[] = {1, 2, 3, 5};
constexpr int kSweepCounts[] = {2, 6};
// Same horizon the --faults=seed:K flag uses (bench_util.cc), so a grid row
// reproduces the flag's schedule exactly.
constexpr double kSweepHorizonSeconds = 40.0;

Status RunSeedSweep() {
  // Three representative engines keep the 4 seeds x 2 intensities x 2
  // policies grid affordable: the paper's system, its asynchronous baseline,
  // and the synchronous collective most exposed to stragglers.
  const std::vector<std::string> algorithms = {"netmax", "adpsgd",
                                               "allreduce"};
  for (const core::PeerPolicy policy :
       {core::PeerPolicy::kWait, core::PeerPolicy::kTimeoutAndContinue}) {
    TablePrinter table({"seed", "faults", "algorithm", "final_loss",
                        "total_time_s", "injected", "degraded", "timeouts"});
    for (const uint64_t seed : kSweepSeeds) {
      for (const int count : kSweepCounts) {
        core::ExperimentConfig config = FaultBaseConfig();
        config.faults = net::FaultSchedule::FromSeed(
            seed, config.num_workers, kSweepHorizonSeconds, count);
        config.peer_policy = policy;
        NETMAX_ASSIGN_OR_RETURN(
            const std::vector<bench::NamedResult> results,
            bench::RunAlgorithms(algorithms, config));
        for (const bench::NamedResult& entry : results) {
          const core::RunResult& r = entry.result;
          table.AddRow({std::to_string(seed), std::to_string(count),
                        entry.name, Fmt(r.final_train_loss, 4),
                        Fmt(r.total_virtual_seconds, 1),
                        std::to_string(r.faults_injected),
                        std::to_string(r.rounds_degraded),
                        std::to_string(r.peers_timed_out)});
        }
      }
    }
    const std::string title =
        std::string("Seed-derived fault sweep (policy=") +
        std::string(core::PeerPolicyName(policy)) + ")";
    std::cout << "\n== " << title << " ==\n";
    table.Print(std::cout);
    table.PrintCsv(std::cout, title);
  }
  return Status::Ok();
}

// Compression x fault-seed grid: does a sparser payload move the degradation
// frontier under churn? Each row pairs one compressor from the PR-9 family
// with one seed-derived schedule at the hostile intensity and reports the
// same frontier counters as the seed sweep plus the wire columns. Two
// readings: within one spec, how much the frontier counters move across
// seeds (the churn sensitivity of that payload), and within one seed, how
// far a lossy spec's final_loss sits from the "none" row — that delta is the
// compressor's ordinary convergence cost, and the panel shows whether churn
// widens it (it should not: compression is applied identically on every
// gossip edge, faulted or not). This is the ROADMAP item 2 follow-on.
constexpr const char* kCompressionSpecs[] = {"none", "topk:0.1", "int8",
                                             "layerwise:2"};

Status RunCompressionSweep() {
  // Two engines bound the panel: the paper's system and the gossip baseline
  // whose payloads dominate its wire bill. The hostile intensity (6 faults)
  // under timeout-and-continue exercises compression on the degraded paths
  // (rounds that drop a timed-out peer still compress the survivors'
  // payloads).
  const std::vector<std::string> algorithms = {"netmax", "adpsgd"};
  TablePrinter table({"compress", "seed", "algorithm", "final_loss",
                      "injected", "degraded", "timeouts", "bytes_sent",
                      "bytes_saved"});
  for (const char* spec_text : kCompressionSpecs) {
    NETMAX_ASSIGN_OR_RETURN(const ml::CompressionSpec spec,
                            ml::ParseCompressionSpec(spec_text));
    for (const uint64_t seed : kSweepSeeds) {
      core::ExperimentConfig config = FaultBaseConfig();
      config.compress = spec;
      config.faults = net::FaultSchedule::FromSeed(
          seed, config.num_workers, kSweepHorizonSeconds, kSweepCounts[1]);
      config.peer_policy = core::PeerPolicy::kTimeoutAndContinue;
      NETMAX_ASSIGN_OR_RETURN(
          const std::vector<bench::NamedResult> results,
          bench::RunAlgorithms(algorithms, config));
      for (const bench::NamedResult& entry : results) {
        const core::RunResult& r = entry.result;
        table.AddRow({spec_text, std::to_string(seed), entry.name,
                      Fmt(r.final_train_loss, 4),
                      std::to_string(r.faults_injected),
                      std::to_string(r.rounds_degraded),
                      std::to_string(r.peers_timed_out),
                      std::to_string(r.bytes_sent),
                      std::to_string(r.bytes_saved)});
      }
    }
  }
  const std::string title =
      std::string("Compression x fault-seed sweep (faults=seed:") +
      std::to_string(kSweepCounts[1]) + ", policy=timeout)";
  std::cout << "\n== " << title << " ==\n";
  table.Print(std::cout);
  table.PrintCsv(std::cout, title);
  return Status::Ok();
}

// Status-returning twin of the determinism tests' ExpectBitIdentical: the
// deterministic subset of RunResult, compared bit-for-bit.
Status CompareSeries(const std::string& run, const char* label,
                     const ml::Series& a, const ml::Series& b) {
  if (a.size() != b.size()) {
    return InternalError(run + ": " + label + " length mismatch");
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].x != b[i].x || a[i].y != b[i].y) {
      return InternalError(run + ": " + label + " diverges at point " +
                           std::to_string(i));
    }
  }
  return Status::Ok();
}

Status CompareResults(const std::string& run, const core::RunResult& a,
                      const core::RunResult& b) {
  NETMAX_RETURN_IF_ERROR(
      CompareSeries(run, "loss_vs_time", a.loss_vs_time, b.loss_vs_time));
  NETMAX_RETURN_IF_ERROR(
      CompareSeries(run, "loss_vs_epoch", a.loss_vs_epoch, b.loss_vs_epoch));
  NETMAX_RETURN_IF_ERROR(CompareSeries(run, "accuracy_vs_time",
                                       a.accuracy_vs_time,
                                       b.accuracy_vs_time));
  if (a.final_train_loss != b.final_train_loss ||
      a.final_accuracy != b.final_accuracy ||
      a.total_virtual_seconds != b.total_virtual_seconds ||
      a.total_local_iterations != b.total_local_iterations ||
      a.consensus_distance != b.consensus_distance ||
      a.policies_generated != b.policies_generated ||
      a.faults_injected != b.faults_injected ||
      a.rounds_degraded != b.rounds_degraded ||
      a.peers_timed_out != b.peers_timed_out) {
    return InternalError(run + ": scalar results diverge");
  }
  return Status::Ok();
}

StatusOr<core::RunResult> RunOnce(const std::string& name,
                                  const core::ExperimentConfig& config) {
  NETMAX_ASSIGN_OR_RETURN(const auto algorithm, algos::MakeAlgorithm(name));
  return algorithm->Run(config);
}

Status CheckCrashRestore() {
  TablePrinter table({"algorithm", "crashed_at_s", "restored_from_s",
                      "verdict"});
  for (const std::string& name : algos::AlgorithmNames()) {
    core::ExperimentConfig base = FaultBaseConfig();
    bench::MaybeApplySmoke(base);
    // Serial dispatch keeps the 3x nine-algorithm sweep cheap; the
    // determinism suite separately proves every {backend, threads, shards}
    // point produces these same bits.
    base.threads = bench::ThreadsOverride() >= 0 ? bench::ThreadsOverride()
                                                 : 1;
    base.checkpoint_every_seconds = kCadenceSeconds;

    // Uninterrupted reference: same schedule minus the crash, same cadence
    // (the cadence ticks consume virtual-time events, so the reference must
    // tick too).
    std::vector<uint8_t> reference_sink;
    core::ExperimentConfig uninterrupted = base;
    NETMAX_ASSIGN_OR_RETURN(uninterrupted.faults,
                            net::FaultSchedule::Parse(kUninterruptedSpec));
    uninterrupted.checkpoint_sink = &reference_sink;
    NETMAX_ASSIGN_OR_RETURN(const core::RunResult want,
                            RunOnce(name, uninterrupted));

    // Crashed run: halts at the crash time; the sink holds the newest
    // periodic checkpoint written before it.
    std::vector<uint8_t> crash_sink;
    core::ExperimentConfig crashed = base;
    NETMAX_ASSIGN_OR_RETURN(crashed.faults,
                            net::FaultSchedule::Parse(kCrashedSpec));
    crashed.checkpoint_sink = &crash_sink;
    NETMAX_ASSIGN_OR_RETURN(const core::RunResult halted,
                            RunOnce(name, crashed));
    if (crash_sink.empty()) {
      return InternalError(name +
                           ": crashed run wrote no periodic checkpoint");
    }

    // Restore and finish: must reproduce the uninterrupted run's bits.
    std::vector<uint8_t> restored_sink;
    core::ExperimentConfig restored = uninterrupted;
    restored.checkpoint_sink = &restored_sink;
    restored.restore_source = &crash_sink;
    NETMAX_ASSIGN_OR_RETURN(const core::RunResult got,
                            RunOnce(name, restored));
    NETMAX_RETURN_IF_ERROR(CompareResults(name, want, got));
    table.AddRow({name, Fmt(halted.total_virtual_seconds, 1),
                  Fmt(kCadenceSeconds * 2.0, 1), "bit-identical"});
  }
  std::cout << "\n== Crash-restore recovery (crash@0.6, checkpoint every "
            << Fmt(kCadenceSeconds, 1) << "s; restored run vs uninterrupted "
            << "run) ==\n";
  table.Print(std::cout);
  table.PrintCsv(std::cout, "crash_restore");
  return Status::Ok();
}

Status RunBench() {
  NETMAX_RETURN_IF_ERROR(RunPolicyPanels(core::PeerPolicy::kWait));
  NETMAX_RETURN_IF_ERROR(
      RunPolicyPanels(core::PeerPolicy::kTimeoutAndContinue));
  NETMAX_RETURN_IF_ERROR(RunSeedSweep());
  NETMAX_RETURN_IF_ERROR(RunCompressionSweep());
  return CheckCrashRestore();
}

}  // namespace
}  // namespace netmax

int main(int argc, char** argv) {
  return netmax::bench::BenchMain(argc, argv,
                                  [] { return netmax::RunBench(); });
}
