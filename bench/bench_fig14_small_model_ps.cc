// Figure 14: MobileNet (small model) on CIFAR100-sim with non-uniform
// partitioning, adding two parameter-server baselines: PS-syn and PS-asyn
// (PS co-located with worker 0's server). Loss vs epoch (a) and vs time (b).
//
// Paper shape: per-epoch, PS-asyn converges worst (the PS over-weights the
// fast co-located workers); per-time, PS-syn is slowest, PS-asyn lands near
// Allreduce, and NetMax is clearly fastest.

#include <iostream>

#include "bench/bench_util.h"
#include "ml/model_profile.h"

namespace netmax {
namespace {

Status Run() {
  const core::ExperimentConfig config =
      bench::NonUniformConfig(ml::Cifar100SimSpec(), ml::MobileNetProfile());
  const std::vector<std::string> algorithms = {
      "prague", "allreduce", "adpsgd", "ps-sync", "ps-async", "netmax"};
  NETMAX_ASSIGN_OR_RETURN(const auto results, bench::RunAlgorithms(algorithms, config));
  bench::PrintSeries(std::cout,
                     "Fig. 14a (MobileNet/CIFAR100-sim, loss vs epoch)",
                     "epoch", "train_loss", results,
                     &core::RunResult::loss_vs_epoch);
  bench::PrintSeries(std::cout,
                     "Fig. 14b (MobileNet/CIFAR100-sim, loss vs time)",
                     "time_s", "train_loss", results,
                     &core::RunResult::loss_vs_time);
  bench::PrintSpeedups(std::cout, "Fig. 14 speedups", results);
  return Status::Ok();
}

}  // namespace
}  // namespace netmax

int main(int argc, char** argv) {
  return netmax::bench::BenchMain(argc, argv, [] { return netmax::Run(); });
}
