// Scaling headroom demo for the parallel simulation runtime: a 32-worker
// heterogeneous-dynamic scenario (8 servers, dynamic slow links) training a
// wider MLP than the paper-scale benches. Each algorithm runs the identical
// experiment through all four execution backends — serial dispatch
// (threads=1), the pooled speculative frontier dispatch with intra-worker
// gradient sharding, the async bounded-reorder commit pipeline, and the
// multi-process backend (forked children evaluating leaf ranges through the
// MAP_SHARED arena) — and the bench reports real wall-clock for all four
// plus the speculation / re-dispatch / window-health counters, after
// verifying the runs are bit-identical. Virtual-time results never depend on
// the backend, thread, shard, window, or process-count choice; only the real
// seconds columns do (expect ~1x on a single-core machine; on real
// multi-core hardware the pooled backends scale with cores, the async
// pipeline additionally stops paying the frontier barrier when per-worker
// compute times diverge, and the process leg adds fork+IPC overhead that
// only pays off once per-wave compute dwarfs the ring round-trip).

#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "algos/registry.h"
#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/table.h"
#include "core/execution_backend.h"

namespace netmax {
namespace {

core::ExperimentConfig Scale32Config() {
  core::ExperimentConfig config = bench::PaperBaseConfig();
  config.num_workers = 32;  // 8 simulated servers (SpreadOverServers)
  config.hidden_layers = {96};  // ~3x the paper-scale proxy model
  config.dataset.num_train = 8192;
  config.dataset.num_test = 512;
  config.max_epochs = 10;
  config.monitor_period_seconds = 24.0;
  config.seed = 5;
  return config;
}

struct TimedRun {
  core::RunResult result;
  double wall_seconds = 0.0;
};

StatusOr<TimedRun> RunWith(const std::string& name,
                           const core::ExperimentConfig& base, int threads,
                           int shards, core::ExecutionBackendKind backend,
                           int reorder_window, int procs = 0) {
  core::ExperimentConfig config = base;
  config.threads = threads;
  config.shards = shards;
  config.backend = backend;
  config.reorder_window = reorder_window;
  config.procs = procs;
  NETMAX_ASSIGN_OR_RETURN(const auto algorithm, algos::MakeAlgorithm(name));
  const auto start = std::chrono::steady_clock::now();
  auto result = algorithm->Run(config);
  const auto stop = std::chrono::steady_clock::now();
  if (!result.ok()) {
    return Status(result.status().code(),
                  name + ": " + result.status().message());
  }
  return TimedRun{std::move(result.value()),
                  std::chrono::duration<double>(stop - start).count()};
}

void CheckBitIdentical(const std::string& name, const core::RunResult& a,
                       const core::RunResult& b) {
  NETMAX_CHECK_EQ(a.loss_vs_time.size(), b.loss_vs_time.size()) << name;
  for (size_t i = 0; i < a.loss_vs_time.size(); ++i) {
    NETMAX_CHECK_EQ(a.loss_vs_time[i].x, b.loss_vs_time[i].x) << name;
    NETMAX_CHECK_EQ(a.loss_vs_time[i].y, b.loss_vs_time[i].y) << name;
  }
  NETMAX_CHECK_EQ(a.final_train_loss, b.final_train_loss) << name;
  NETMAX_CHECK_EQ(a.final_accuracy, b.final_accuracy) << name;
  NETMAX_CHECK_EQ(a.total_virtual_seconds, b.total_virtual_seconds) << name;
  NETMAX_CHECK_EQ(a.consensus_distance, b.consensus_distance) << name;
}

Status Run() {
  core::ExperimentConfig config = Scale32Config();
  bench::MaybeApplySmoke(config);
  // --threads=N pins the pooled legs; otherwise one thread per hardware
  // core, floored at 2 so the pooled backends are exercised (and measured
  // honestly) even on a single-core machine. --shards=N pins both pooled
  // legs' shard bound (default 4 = the leaf count of the batch-32 scenario,
  // the maximum nested parallelism available per worker), and
  // --reorder-window=N pins the async leg's window (default 2x the thread
  // budget: enough slack that a straggling compute never idles the pool).
  const unsigned hw = std::thread::hardware_concurrency();
  const int parallel_threads = bench::ThreadsOverride() > 0
                                   ? bench::ThreadsOverride()
                                   : std::max(2, static_cast<int>(hw));
  // >= 0 so an explicit --shards=0 / --reorder-window=0 keeps its documented
  // meaning (harness auto resolution / synchronous window) instead of being
  // silently pinned to the bench default.
  const int sharded_shards =
      bench::ShardsOverride() >= 0 ? bench::ShardsOverride() : 4;
  const int reorder_window = bench::ReorderWindowOverride() >= 0
                                 ? bench::ReorderWindowOverride()
                                 : 2 * parallel_threads;
  // --procs=N pins the process leg's child count; otherwise one child per
  // hardware core, floored at 2 so the forked dispatch path is exercised
  // even on a single-core machine (where the leg is report-only: two
  // children time-slicing one core cannot beat serial).
  const int process_procs = bench::ProcsOverride() > 0
                                ? bench::ProcsOverride()
                                : std::max(2, static_cast<int>(hw));

  TablePrinter table({"algorithm", "virtual_s", "serial_wall_s",
                      "speculative_wall_s", "async_wall_s", "process_wall_s",
                      "spec_speedup", "async_speedup", "process_speedup",
                      "speculated", "redispatched", "stalls", "backpressure",
                      "child_deaths"});
  for (const std::string name : {"netmax", "adpsgd", "allreduce", "gossip"}) {
    NETMAX_ASSIGN_OR_RETURN(
        const TimedRun serial,
        RunWith(name, config, /*threads=*/1, /*shards=*/1,
                core::ExecutionBackendKind::kSerial, /*reorder_window=*/0));
    NETMAX_ASSIGN_OR_RETURN(
        const TimedRun speculative,
        RunWith(name, config, parallel_threads, sharded_shards,
                core::ExecutionBackendKind::kSpeculative,
                /*reorder_window=*/0));
    NETMAX_ASSIGN_OR_RETURN(
        const TimedRun async,
        RunWith(name, config, parallel_threads, sharded_shards,
                core::ExecutionBackendKind::kAsyncPipeline, reorder_window));
    // Process leg: the harness forces threads=1 under the process backend
    // (fork from a multi-threaded parent is unsafe), so parallelism comes
    // entirely from the forked children.
    NETMAX_ASSIGN_OR_RETURN(
        const TimedRun process,
        RunWith(name, config, /*threads=*/1, /*shards=*/1,
                core::ExecutionBackendKind::kProcessPool,
                /*reorder_window=*/0, process_procs));
    CheckBitIdentical(name, serial.result, speculative.result);
    CheckBitIdentical(name, serial.result, async.result);
    CheckBitIdentical(name, serial.result, process.result);
    NETMAX_CHECK_EQ(process.result.process_child_deaths, 0) << name;
    const auto speedup = [&serial](double wall) {
      return wall > 0.0 ? serial.wall_seconds / wall : 0.0;
    };
    table.AddRow(
        {serial.result.algorithm,
         Fmt(serial.result.total_virtual_seconds, 1),
         Fmt(serial.wall_seconds, 3), Fmt(speculative.wall_seconds, 3),
         Fmt(async.wall_seconds, 3), Fmt(process.wall_seconds, 3),
         Fmt(speedup(speculative.wall_seconds), 2),
         Fmt(speedup(async.wall_seconds), 2),
         Fmt(speedup(process.wall_seconds), 2),
         std::to_string(async.result.computes_speculated),
         std::to_string(async.result.computes_redispatched),
         std::to_string(async.result.window_stalls),
         std::to_string(async.result.window_backpressure),
         std::to_string(process.result.process_child_deaths)});
  }
  std::cout << "\n== Scale-32 parallel runtime (32 workers, hidden=96; "
               "serial vs speculative+sharded vs async reorder-window vs "
               "multi-process backends; results verified bit-identical) ==\n";
  table.Print(std::cout);
  table.PrintCsv(std::cout, "Scale-32 parallel runtime");
  return Status::Ok();
}

}  // namespace
}  // namespace netmax

int main(int argc, char** argv) {
  return netmax::bench::BenchMain(argc, argv, [] { return netmax::Run(); });
}
