// Scale frontier of the simulator core: how many simulated events per second
// each event-queue backend sustains as the worker count grows, and where the
// queue choice starts to dominate a run's wall clock.
//
// Three panels:
//
//  1. Queue frontier — a synthetic self-rescheduling tick workload (every
//     worker always has exactly one pending event, so the queue holds N
//     entries in steady state) driven through the real EventSimulator for a
//     fixed wall-clock budget per cell. The sorted vector pays an O(N)
//     memmove per insert, the heap O(log N), the pairing heap O(1) insert
//     with an amortized O(log N) pop, the calendar queue O(1); at 10^5+
//     workers the frontier separates them by orders of magnitude.
//  2. Queue x backend matrix — one real training experiment per
//     {event queue, execution backend} pair, wall clock measured and results
//     verified bit-identical across all twelve runs (the queue and the
//     backend are real-machine choices only; virtual results never move).
//  3. Hierarchical gossip at scale — 10^5+ workers on the
//     clusters-of-clusters topology with the O(1)-memory hierarchical link
//     model, each worker gossiping rounds to its neighbors through the
//     calendar queue. A complete graph at this scale would need ~10^10 edges;
//     the hierarchical topology keeps the whole run in memory.
//
// Wall-clock numbers vary by machine, so this bench's stdout is NOT part of
// the CI determinism diff; CI runs it with --smoke for coverage only. Set
// NETMAX_SCALE_JSON=path to also write the panels as JSON — BENCH_scale.json
// in the repo root is a committed full-mode snapshot (see README).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "algos/registry.h"
#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/table.h"
#include "core/execution_backend.h"
#include "core/experiment.h"
#include "net/cluster.h"
#include "net/event_queue.h"
#include "net/event_sim.h"
#include "net/link_model.h"
#include "net/topology.h"

namespace netmax {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// --- Panel 1: synthetic queue frontier --------------------------------------

struct TickContext {
  net::EventSimulator* sim = nullptr;
  // Per-worker tick period, drawn once up front so the measured loop does no
  // RNG work; the spread keeps steady-state insert positions scattered
  // across the whole queue (the adversarial case for the sorted vector).
  std::vector<double> periods;
};

void TickStep(TickContext* ctx, int worker) {
  net::EventSimulator& sim = *ctx->sim;
  sim.ScheduleAfter(ctx->periods[static_cast<size_t>(worker)],
                    [ctx, worker] { TickStep(ctx, worker); });
}

struct FrontierCell {
  int workers = 0;
  net::EventQueueKind queue = net::EventQueueKind::kSortedVector;
  int64_t events = 0;
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;
};

FrontierCell MeasureQueueFrontier(int workers, net::EventQueueKind kind,
                                  double budget_seconds) {
  net::EventSimulator sim;
  sim.ReplaceQueue(net::MakeEventQueue(kind));
  TickContext ctx;
  ctx.sim = &sim;
  ctx.periods.resize(static_cast<size_t>(workers));
  Rng rng(20260808);
  for (double& period : ctx.periods) period = rng.Uniform(0.5, 1.5);
  // Seed one pending event per worker, scheduled in DESCENDING time order so
  // the fill itself is O(N) for every queue (each new event is the earliest
  // so far; ascending order would cost the sorted vector an O(N) memmove per
  // seed event before the measurement even starts).
  for (int w = workers - 1; w >= 0; --w) {
    const double phase =
        1.0 + static_cast<double>(w) * (1.0 / static_cast<double>(workers));
    sim.ScheduleAt(phase, [&ctx, w] { TickStep(&ctx, w); });
  }
  // Steady state: every pop schedules exactly one replacement, so the queue
  // holds `workers` entries throughout. Run until the wall budget is spent,
  // checking the clock every few events so even a queue managing only
  // hundreds of events per second stops on time.
  const auto start = Clock::now();
  int64_t events = 0;
  while (sim.Step()) {
    ++events;
    if ((events & 63) == 0 && SecondsSince(start) >= budget_seconds) break;
  }
  FrontierCell cell;
  cell.workers = workers;
  cell.queue = kind;
  cell.events = events;
  cell.wall_seconds = SecondsSince(start);
  cell.events_per_sec =
      cell.wall_seconds > 0.0 ? static_cast<double>(events) / cell.wall_seconds
                              : 0.0;
  return cell;
}

// --- Panel 2: queue x backend matrix on a real experiment --------------------

struct MatrixCell {
  net::EventQueueKind queue = net::EventQueueKind::kSortedVector;
  core::ExecutionBackendKind backend = core::ExecutionBackendKind::kSerial;
  double wall_seconds = 0.0;
  double virtual_seconds = 0.0;
  bool bit_identical = true;
};

void CheckBitIdentical(const std::string& label, const core::RunResult& a,
                       const core::RunResult& b) {
  NETMAX_CHECK_EQ(a.loss_vs_time.size(), b.loss_vs_time.size()) << label;
  for (size_t i = 0; i < a.loss_vs_time.size(); ++i) {
    NETMAX_CHECK_EQ(a.loss_vs_time[i].x, b.loss_vs_time[i].x) << label;
    NETMAX_CHECK_EQ(a.loss_vs_time[i].y, b.loss_vs_time[i].y) << label;
  }
  NETMAX_CHECK_EQ(a.final_train_loss, b.final_train_loss) << label;
  NETMAX_CHECK_EQ(a.final_accuracy, b.final_accuracy) << label;
  NETMAX_CHECK_EQ(a.total_virtual_seconds, b.total_virtual_seconds) << label;
  NETMAX_CHECK_EQ(a.consensus_distance, b.consensus_distance) << label;
}

StatusOr<std::vector<MatrixCell>> RunQueueBackendMatrix(std::ostream& os) {
  core::ExperimentConfig config = bench::PaperBaseConfig();
  config.max_epochs = 8;  // the matrix is 12 runs; keep full mode in minutes
  bench::MaybeApplySmoke(config);
  config.threads = 1;
  config.shards = 1;
  std::vector<MatrixCell> cells;
  const core::RunResult* reference = nullptr;
  std::vector<core::RunResult> results;
  results.reserve(12);
  TablePrinter table({"queue", "backend", "wall_s", "virtual_s", "identical"});
  for (const net::EventQueueKind queue :
       {net::EventQueueKind::kSortedVector, net::EventQueueKind::kBinaryHeap,
        net::EventQueueKind::kCalendar, net::EventQueueKind::kPairingHeap}) {
    for (const core::ExecutionBackendKind backend :
         {core::ExecutionBackendKind::kSerial,
          core::ExecutionBackendKind::kSpeculative,
          core::ExecutionBackendKind::kAsyncPipeline}) {
      core::ExperimentConfig cell_config = config;
      cell_config.event_queue = queue;
      cell_config.backend = backend;
      if (backend == core::ExecutionBackendKind::kAsyncPipeline) {
        cell_config.reorder_window = 4;
      }
      NETMAX_ASSIGN_OR_RETURN(const auto algorithm,
                              algos::MakeAlgorithm("netmax"));
      const auto start = Clock::now();
      auto result = algorithm->Run(cell_config);
      const double wall = SecondsSince(start);
      if (!result.ok()) {
        return Status(result.status().code(),
                      std::string(net::EventQueueKindName(queue)) + "/" +
                          result.status().message());
      }
      results.push_back(std::move(result.value()));
      const core::RunResult& run = results.back();
      if (reference == nullptr) reference = &results.front();
      const std::string label = std::string(net::EventQueueKindName(queue)) +
                                "/" + std::string(run.backend);
      CheckBitIdentical(label, *reference, run);
      MatrixCell cell;
      cell.queue = queue;
      cell.backend = backend;
      cell.wall_seconds = wall;
      cell.virtual_seconds = run.total_virtual_seconds;
      cells.push_back(cell);
      table.AddRow({std::string(net::EventQueueKindName(queue)),
                    std::string(run.backend), Fmt(wall, 3),
                    Fmt(run.total_virtual_seconds, 1), "yes"});
    }
  }
  os << "\n== Queue x backend matrix (netmax, 8 workers; all twelve runs "
        "verified bit-identical) ==\n";
  table.Print(os);
  table.PrintCsv(os, "Queue x backend matrix");
  return cells;
}

// --- Panel 3: hierarchical gossip at scale ------------------------------------

struct GossipContext {
  net::EventSimulator* sim = nullptr;
  const net::Topology* topology = nullptr;
  const net::HierarchicalLinkModel* links = nullptr;
  std::vector<int> rounds_left;
  std::vector<int> next_neighbor;
  int64_t payload_bytes = 0;
};

void GossipStep(GossipContext* ctx, int worker) {
  const size_t w = static_cast<size_t>(worker);
  if (ctx->rounds_left[w] == 0) return;
  --ctx->rounds_left[w];
  const std::vector<int>& neighbors = ctx->topology->Neighbors(worker);
  const int peer = neighbors[static_cast<size_t>(ctx->next_neighbor[w]) %
                             neighbors.size()];
  ++ctx->next_neighbor[w];
  const double transfer = ctx->links->TransferSeconds(
      worker, peer, ctx->sim->Now(), ctx->payload_bytes);
  ctx->sim->ScheduleAfter(transfer, [ctx, worker] { GossipStep(ctx, worker); });
}

struct GossipResult {
  int workers = 0;
  int cluster_size = 0;
  int clusters = 0;
  int64_t edges = 0;
  int rounds = 0;
  int64_t events = 0;
  double build_seconds = 0.0;
  double run_seconds = 0.0;
  double events_per_sec = 0.0;
  double virtual_seconds = 0.0;
};

GossipResult RunHierarchicalGossip(int workers, int cluster_size, int rounds) {
  GossipResult out;
  out.workers = workers;
  out.cluster_size = cluster_size;
  out.clusters = net::NumClusters(workers, cluster_size);
  out.rounds = rounds;
  const auto build_start = Clock::now();
  const net::Topology topology =
      net::Topology::Hierarchical(workers, cluster_size);
  const net::HierarchicalLinkModel links(
      workers, cluster_size, net::IntraMachineLinkClass(),
      net::InterMachineLinkClass());
  out.build_seconds = SecondsSince(build_start);
  out.edges = topology.num_edges();
  net::EventSimulator sim;
  sim.ReplaceQueue(net::MakeEventQueue(net::EventQueueKind::kCalendar));
  GossipContext ctx;
  ctx.sim = &sim;
  ctx.topology = &topology;
  ctx.links = &links;
  ctx.rounds_left.assign(static_cast<size_t>(workers), rounds);
  ctx.next_neighbor.assign(static_cast<size_t>(workers), 0);
  ctx.payload_bytes = 1 << 20;  // 1 MiB gossip payload per round
  // Stagger the first round across a second (descending order: O(N) seed
  // fill, same as the frontier panel).
  for (int w = workers - 1; w >= 0; --w) {
    const double phase =
        static_cast<double>(w) / static_cast<double>(workers);
    sim.ScheduleAt(phase, [&ctx, w] { GossipStep(&ctx, w); });
  }
  const auto run_start = Clock::now();
  out.events = sim.RunUntilIdle();
  out.run_seconds = SecondsSince(run_start);
  out.events_per_sec = out.run_seconds > 0.0
                           ? static_cast<double>(out.events) / out.run_seconds
                           : 0.0;
  out.virtual_seconds = sim.Now();
  return out;
}

// --- JSON snapshot ------------------------------------------------------------

std::string JsonReport(bool smoke, const std::vector<FrontierCell>& frontier,
                       const std::vector<MatrixCell>& matrix,
                       const GossipResult& gossip) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"bench\": \"bench_scale_frontier\",\n";
  os << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  os << "  \"queue_frontier\": [\n";
  for (size_t i = 0; i < frontier.size(); ++i) {
    const FrontierCell& c = frontier[i];
    os << "    {\"workers\": " << c.workers << ", \"queue\": \""
       << net::EventQueueKindName(c.queue) << "\", \"events\": " << c.events
       << ", \"wall_seconds\": " << Fmt(c.wall_seconds, 4)
       << ", \"events_per_sec\": " << Fmt(c.events_per_sec, 1) << "}"
       << (i + 1 < frontier.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"queue_backend_matrix\": [\n";
  for (size_t i = 0; i < matrix.size(); ++i) {
    const MatrixCell& c = matrix[i];
    os << "    {\"queue\": \"" << net::EventQueueKindName(c.queue)
       << "\", \"backend\": \""
       << core::ExecutionBackendKindName(c.backend)
       << "\", \"wall_seconds\": " << Fmt(c.wall_seconds, 3)
       << ", \"virtual_seconds\": " << Fmt(c.virtual_seconds, 1)
       << ", \"bit_identical\": true}"
       << (i + 1 < matrix.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"hierarchical_gossip\": {\"workers\": " << gossip.workers
     << ", \"cluster_size\": " << gossip.cluster_size
     << ", \"clusters\": " << gossip.clusters
     << ", \"edges\": " << gossip.edges << ", \"rounds\": " << gossip.rounds
     << ", \"events\": " << gossip.events
     << ", \"build_seconds\": " << Fmt(gossip.build_seconds, 3)
     << ", \"run_seconds\": " << Fmt(gossip.run_seconds, 3)
     << ", \"events_per_sec\": " << Fmt(gossip.events_per_sec, 1)
     << ", \"virtual_seconds\": " << Fmt(gossip.virtual_seconds, 2) << "},\n";
  // Headline: the acceptance reading — calendar vs sorted vector at the
  // largest worker count in the frontier grid.
  double vector_eps = 0.0;
  double calendar_eps = 0.0;
  int max_workers = 0;
  for (const FrontierCell& c : frontier) {
    max_workers = std::max(max_workers, c.workers);
  }
  for (const FrontierCell& c : frontier) {
    if (c.workers != max_workers) continue;
    if (c.queue == net::EventQueueKind::kSortedVector) {
      vector_eps = c.events_per_sec;
    }
    if (c.queue == net::EventQueueKind::kCalendar) {
      calendar_eps = c.events_per_sec;
    }
  }
  os << "  \"headline\": {\"workers\": " << max_workers
     << ", \"vector_events_per_sec\": " << Fmt(vector_eps, 1)
     << ", \"calendar_events_per_sec\": " << Fmt(calendar_eps, 1)
     << ", \"calendar_vs_vector_speedup\": "
     << Fmt(vector_eps > 0.0 ? calendar_eps / vector_eps : 0.0, 2) << "}\n";
  os << "}\n";
  return os.str();
}

Status Run() {
  const bool smoke = bench::SmokeMode();
  // Smoke keeps every panel's shape but shrinks the grid and the budgets so
  // CI finishes in seconds; full mode is the committed BENCH_scale.json run.
  const std::vector<int> worker_grid =
      smoke ? std::vector<int>{256, 2048}
            : std::vector<int>{1024, 8192, 32768, 131072};
  const double cell_budget = smoke ? 0.05 : 0.4;

  std::vector<FrontierCell> frontier;
  TablePrinter frontier_table(
      {"workers", "queue", "events", "wall_s", "events_per_sec"});
  for (const int workers : worker_grid) {
    for (const net::EventQueueKind kind :
         {net::EventQueueKind::kSortedVector, net::EventQueueKind::kBinaryHeap,
          net::EventQueueKind::kCalendar,
          net::EventQueueKind::kPairingHeap}) {
      const FrontierCell cell =
          MeasureQueueFrontier(workers, kind, cell_budget);
      frontier.push_back(cell);
      frontier_table.AddRow({std::to_string(cell.workers),
                             std::string(net::EventQueueKindName(cell.queue)),
                             std::to_string(cell.events),
                             Fmt(cell.wall_seconds, 3),
                             Fmt(cell.events_per_sec, 0)});
    }
  }
  std::cout << "\n== Queue frontier (self-rescheduling tick workload; queue "
               "holds one event per worker) ==\n";
  frontier_table.Print(std::cout);
  frontier_table.PrintCsv(std::cout, "Queue frontier");

  NETMAX_ASSIGN_OR_RETURN(const std::vector<MatrixCell> matrix,
                          RunQueueBackendMatrix(std::cout));

  const GossipResult gossip =
      smoke ? RunHierarchicalGossip(/*workers=*/4096, /*cluster_size=*/64,
                                    /*rounds=*/2)
            : RunHierarchicalGossip(/*workers=*/131072, /*cluster_size=*/64,
                                    /*rounds=*/3);
  TablePrinter gossip_table({"workers", "cluster_size", "clusters", "edges",
                             "rounds", "events", "build_s", "run_s",
                             "events_per_sec"});
  gossip_table.AddRow(
      {std::to_string(gossip.workers), std::to_string(gossip.cluster_size),
       std::to_string(gossip.clusters), std::to_string(gossip.edges),
       std::to_string(gossip.rounds), std::to_string(gossip.events),
       Fmt(gossip.build_seconds, 3), Fmt(gossip.run_seconds, 3),
       Fmt(gossip.events_per_sec, 0)});
  std::cout << "\n== Hierarchical gossip at scale (calendar queue, "
               "clusters-of-clusters topology, O(1)-memory link model) ==\n";
  gossip_table.Print(std::cout);
  gossip_table.PrintCsv(std::cout, "Hierarchical gossip at scale");

  const std::string json = JsonReport(smoke, frontier, matrix, gossip);
  const char* json_path = std::getenv("NETMAX_SCALE_JSON");
  if (json_path != nullptr && json_path[0] != '\0') {
    std::ofstream out(json_path);
    if (!out) {
      return InvalidArgumentError(std::string("cannot write JSON to ") +
                                  json_path);
    }
    out << json;
  }
  std::cout << "\n#JSON bench_scale_frontier\n" << json << "#END\n";
  return Status::Ok();
}

}  // namespace
}  // namespace netmax

int main(int argc, char** argv) {
  return netmax::bench::BenchMain(argc, argv, [] { return netmax::Run(); });
}
