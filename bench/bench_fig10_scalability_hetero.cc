// Figure 10: scalability speedup vs number of workers (4, 8, 16) on the
// heterogeneous network, ResNet18 (a) and VGG19 (b). As in the paper, the
// reference is Allreduce-SGD with 4 workers: speedup(algo, M) =
// T_ref / T(algo, M) where T is the time to finish the fixed epoch budget.
//
// Paper shape: NetMax scales best and its margin grows with the worker count;
// Prague scales worst.

#include <iostream>
#include <map>

#include "bench/bench_util.h"
#include "algos/registry.h"
#include "common/table.h"
#include "ml/model_profile.h"

namespace netmax {
namespace {

Status Run() {
  const std::vector<int> worker_counts = {4, 8, 16};
  for (const auto& profile : {ml::ResNet18Profile(), ml::Vgg19Profile()}) {
    std::map<std::pair<std::string, int>, double> times;
    // Average over seeds: short scaled-down runs see only a few slow-link
    // windows, so a single draw is noisy.
    const std::vector<uint64_t> seeds = {1, 2, 3};
    for (int workers : worker_counts) {
      core::ExperimentConfig config = bench::PaperBaseConfig();
      config.profile = profile;
      config.num_workers = workers;
      config.max_epochs = 16;
      config.monitor_period_seconds = 8.0;  // short runs: keep several ticks
      for (uint64_t seed : seeds) {
        config.seed = seed;
        NETMAX_ASSIGN_OR_RETURN(const auto results, bench::RunAlgorithms(algos::PaperComparisonAlgorithms(), config));
        for (const auto& entry : results) {
          times[{entry.name, workers}] +=
              entry.result.total_virtual_seconds / seeds.size();
        }
      }
    }
    const double reference = times[{"Allreduce", 4}];
    TablePrinter table({"algorithm", "workers", "speedup"});
    for (const std::string name :
         {"Prague", "Allreduce", "AD-PSGD", "NetMax"}) {
      for (int workers : worker_counts) {
        table.AddRow({name, Fmt(workers),
                      Fmt(reference / times[{name, workers}], 2)});
      }
    }
    std::cout << "\n== Fig. 10: scalability, heterogeneous (" << profile.name
              << "; ref = Allreduce@4) ==\n";
    table.Print(std::cout);
    table.PrintCsv(std::cout, "fig10_scalability_hetero_" + profile.name);
  }
  return Status::Ok();
}

}  // namespace
}  // namespace netmax

int main(int argc, char** argv) {
  return netmax::bench::BenchMain(argc, argv, [] { return netmax::Run(); });
}
