// Figure 15: extending AD-PSGD with NetMax's Network Monitor (Section III-D),
// on the ResNet18/CIFAR100-sim non-uniform workload. Loss vs epoch (a) and
// loss vs time (b) for AD-PSGD, AD-PSGD+Monitor, and NetMax.
//
// Paper shape: AD-PSGD+Monitor trains faster per wall-clock than plain
// AD-PSGD but converges per-epoch slightly slower than NetMax, because
// AD-PSGD averages with a fixed 1/2 weight while NetMax up-weights models
// pulled from rarely-selected (slow) neighbors.

#include <iostream>

#include "bench/bench_util.h"
#include "ml/model_profile.h"

namespace netmax {
namespace {

Status Run() {
  const core::ExperimentConfig config =
      bench::NonUniformConfig(ml::Cifar100SimSpec(), ml::ResNet18Profile());
  const std::vector<std::string> algorithms = {"adpsgd", "adpsgd+monitor",
                                               "netmax"};
  NETMAX_ASSIGN_OR_RETURN(const auto results, bench::RunAlgorithms(algorithms, config));
  bench::PrintSeries(std::cout, "Fig. 15a (AD-PSGD extension, loss vs epoch)",
                     "epoch", "train_loss", results,
                     &core::RunResult::loss_vs_epoch);
  bench::PrintSeries(std::cout, "Fig. 15b (AD-PSGD extension, loss vs time)",
                     "time_s", "train_loss", results,
                     &core::RunResult::loss_vs_time);
  bench::PrintSpeedups(std::cout, "Fig. 15 speedups", results);
  return Status::Ok();
}

}  // namespace
}  // namespace netmax

int main(int argc, char** argv) {
  return netmax::bench::BenchMain(argc, argv, [] { return netmax::Run(); });
}
