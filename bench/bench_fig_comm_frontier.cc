// Communication-compression frontier: accuracy vs bytes-on-wire for the
// gradient compression family (top-k sparsification, int8 quantization,
// layer-wise partial sync) on the Figure 8 workload (8 workers,
// heterogeneous network, ResNet18 profile on CIFAR10-sim).
//
// One panel per algorithm: the uncompressed baseline plus each compression
// variant, reporting derived wire bytes (net/wire_format.h — no hand-waved
// constants), the bytes reduction vs the baseline, and the accuracy delta.
// The headline is the acceptance reading: the best reduction among variants
// that stay within 1% accuracy of their uncompressed run.
//
// All numbers here are virtual-time results and are bit-identical across
// {backend, threads, shards, reorder window, event queue} — this bench's
// stdout is safe to diff across execution points. Set NETMAX_COMM_JSON=path
// to also write the report as JSON — BENCH_comm.json in the repo root is a
// committed SMOKE-mode snapshot the CI perf lane gates bytes_sent against
// (smoke because that is what CI runs, and wire bytes are deterministic, so
// smoke-to-smoke comparison is exact; see README for full-mode numbers).

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/table.h"
#include "ml/compression.h"

namespace netmax {
namespace {

struct VariantRow {
  std::string algorithm;
  std::string spec;
  int64_t messages = 0;
  int64_t bytes_sent = 0;
  int64_t bytes_saved = 0;
  double reduction = 1.0;       // baseline bytes / variant bytes
  double accuracy = 0.0;
  double accuracy_delta = 0.0;  // variant accuracy - baseline accuracy
  double final_loss = 0.0;
};

// The compression family swept for every algorithm. "none" must come first:
// it anchors the reduction and accuracy deltas for its panel.
const std::vector<std::string>& SpecGrid() {
  static const std::vector<std::string> kSpecs = {
      "none", "topk:0.1", "topk:0.05", "int8", "layerwise:2"};
  return kSpecs;
}

StatusOr<std::vector<VariantRow>> RunPanel(const std::string& algorithm,
                                           std::ostream& os) {
  std::vector<core::ExperimentConfig> configs;
  for (const std::string& spec_text : SpecGrid()) {
    core::ExperimentConfig config = bench::PaperBaseConfig();
    NETMAX_ASSIGN_OR_RETURN(config.compress,
                            ml::ParseCompressionSpec(spec_text));
    configs.push_back(config);
  }
  NETMAX_ASSIGN_OR_RETURN(
      const auto results,
      bench::RunConfigs(algorithm, configs, SpecGrid()));
  const core::RunResult& baseline = results.front().result;
  std::vector<VariantRow> rows;
  TablePrinter table({"compress", "messages", "bytes_sent", "bytes_saved",
                      "reduction", "accuracy", "acc_delta", "final_loss"});
  for (const auto& entry : results) {
    VariantRow row;
    row.algorithm = algorithm;
    row.spec = entry.name;
    row.messages = entry.result.messages_sent;
    row.bytes_sent = entry.result.bytes_sent;
    row.bytes_saved = entry.result.bytes_saved;
    row.reduction = entry.result.bytes_sent > 0
                        ? static_cast<double>(baseline.bytes_sent) /
                              static_cast<double>(entry.result.bytes_sent)
                        : 1.0;
    row.accuracy = entry.result.final_accuracy;
    row.accuracy_delta =
        entry.result.final_accuracy - baseline.final_accuracy;
    row.final_loss = entry.result.final_train_loss;
    table.AddRow({row.spec, std::to_string(row.messages),
                  std::to_string(row.bytes_sent),
                  std::to_string(row.bytes_saved), Fmt(row.reduction, 2),
                  Fmt(row.accuracy, 4), Fmt(row.accuracy_delta, 4),
                  Fmt(row.final_loss, 4)});
    rows.push_back(std::move(row));
  }
  const std::string title = "Comm frontier (" + algorithm + ")";
  os << "\n== " << title << " ==\n";
  table.Print(os);
  table.PrintCsv(os, title);
  return rows;
}

std::string JsonReport(bool smoke, const std::vector<VariantRow>& rows,
                       const VariantRow* headline) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"bench\": \"bench_comm_frontier\",\n";
  os << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  os << "  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const VariantRow& r = rows[i];
    os << "    {\"algorithm\": \"" << r.algorithm << "\", \"compress\": \""
       << r.spec << "\", \"messages\": " << r.messages
       << ", \"bytes_sent\": " << r.bytes_sent
       << ", \"bytes_saved\": " << r.bytes_saved
       << ", \"reduction\": " << Fmt(r.reduction, 3)
       << ", \"accuracy\": " << Fmt(r.accuracy, 4)
       << ", \"accuracy_delta\": " << Fmt(r.accuracy_delta, 4) << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  if (headline != nullptr) {
    os << "  \"headline\": {\"algorithm\": \"" << headline->algorithm
       << "\", \"compress\": \"" << headline->spec
       << "\", \"reduction\": " << Fmt(headline->reduction, 3)
       << ", \"accuracy_delta\": " << Fmt(headline->accuracy_delta, 4)
       << ", \"meets_4x_within_1pct\": "
       << (headline->reduction >= 4.0 ? "true" : "false") << "}\n";
  } else {
    os << "  \"headline\": null\n";
  }
  os << "}\n";
  return os.str();
}

Status Run() {
  // The gossip family exercises the per-send path, allreduce the ring-chunk
  // path, and netmax the directed consensus path — together they cover every
  // wire-accounting shape in the engine set.
  const std::vector<std::string> algorithms = {"netmax", "gossip",
                                               "allreduce"};
  std::vector<VariantRow> rows;
  for (const std::string& algorithm : algorithms) {
    NETMAX_ASSIGN_OR_RETURN(const auto panel, RunPanel(algorithm, std::cout));
    rows.insert(rows.end(), panel.begin(), panel.end());
  }

  // Headline: the best bytes reduction among compressed variants whose
  // accuracy stays within 1% (0.01 absolute) of their own uncompressed run.
  const VariantRow* headline = nullptr;
  for (const VariantRow& row : rows) {
    if (row.spec == "none") continue;
    if (row.accuracy_delta < -0.01) continue;
    if (headline == nullptr || row.reduction > headline->reduction) {
      headline = &row;
    }
  }
  TablePrinter summary({"algorithm", "compress", "reduction", "acc_delta",
                        "meets_4x_within_1pct"});
  if (headline != nullptr) {
    summary.AddRow({headline->algorithm, headline->spec,
                    Fmt(headline->reduction, 2),
                    Fmt(headline->accuracy_delta, 4),
                    headline->reduction >= 4.0 ? "yes" : "no"});
  }
  std::cout << "\n== Comm frontier headline (best reduction within 1% "
               "accuracy of the uncompressed run) ==\n";
  summary.Print(std::cout);
  summary.PrintCsv(std::cout, "Comm frontier headline");

  const std::string json = JsonReport(bench::SmokeMode(), rows, headline);
  const char* json_path = std::getenv("NETMAX_COMM_JSON");
  if (json_path != nullptr && json_path[0] != '\0') {
    std::ofstream out(json_path);
    if (!out) {
      return InvalidArgumentError(std::string("cannot write JSON to ") +
                                  json_path);
    }
    out << json;
  }
  std::cout << "\n#JSON bench_comm_frontier\n" << json << "#END\n";
  return Status::Ok();
}

}  // namespace
}  // namespace netmax

int main(int argc, char** argv) {
  return netmax::bench::BenchMain(argc, argv, [] { return netmax::Run(); });
}
