// Figure 12: ResNet18 on CIFAR100-sim with non-uniform data partitioning
// (8 workers on two servers; second server holds twice the data on half its
// workers; batch size scales with the data share). Loss vs epoch (a) and loss
// vs time (b).
//
// Paper shape: per-epoch convergence nearly identical across algorithms;
// per-time NetMax far ahead.

#include <iostream>

#include "bench/bench_util.h"
#include "algos/registry.h"
#include "ml/model_profile.h"

namespace netmax {
namespace {

Status Run() {
  const core::ExperimentConfig config =
      bench::NonUniformConfig(ml::Cifar100SimSpec(), ml::ResNet18Profile());
  NETMAX_ASSIGN_OR_RETURN(const auto results, bench::RunAlgorithms(algos::PaperComparisonAlgorithms(), config));
  bench::PrintSeries(std::cout, "Fig. 12a (CIFAR100-sim, loss vs epoch)",
                     "epoch", "train_loss", results,
                     &core::RunResult::loss_vs_epoch);
  bench::PrintSeries(std::cout, "Fig. 12b (CIFAR100-sim, loss vs time)",
                     "time_s", "train_loss", results,
                     &core::RunResult::loss_vs_time);
  bench::PrintSpeedups(std::cout, "Fig. 12 speedups", results);
  return Status::Ok();
}

}  // namespace
}  // namespace netmax

int main(int argc, char** argv) {
  return netmax::bench::BenchMain(argc, argv, [] { return netmax::Run(); });
}
