// Table II: test accuracy after training over the heterogeneous network with
// 4 / 8 / 16 workers (ResNet18 and VGG19 on CIFAR10-sim, uniform partitions).
//
// Paper shape: every approach lands around 90%; NetMax is consistently equal
// or slightly better (the adaptive selection adds gradient noise that helps
// generalization).

#include <iostream>

#include "bench/bench_util.h"
#include "algos/registry.h"
#include "common/table.h"
#include "ml/model_profile.h"

namespace netmax {
namespace {

Status Run() {
  for (const auto& profile : {ml::ResNet18Profile(), ml::Vgg19Profile()}) {
    TablePrinter table({"workers", "Prague", "Allreduce", "AD-PSGD", "NetMax"});
    for (int workers : {4, 8, 16}) {
      core::ExperimentConfig config = bench::PaperBaseConfig();
      config.profile = profile;
      config.num_workers = workers;
      config.max_epochs = 20;
      NETMAX_ASSIGN_OR_RETURN(const auto results, bench::RunAlgorithms(algos::PaperComparisonAlgorithms(), config));
      table.AddRow({Fmt(workers),
                    Fmt(100.0 * results[0].result.final_accuracy, 2) + "%",
                    Fmt(100.0 * results[1].result.final_accuracy, 2) + "%",
                    Fmt(100.0 * results[2].result.final_accuracy, 2) + "%",
                    Fmt(100.0 * results[3].result.final_accuracy, 2) + "%"});
    }
    std::cout << "\n== Table II: accuracy, heterogeneous (" << profile.name
              << ") ==\n";
    table.Print(std::cout);
    table.PrintCsv(std::cout, "tab02_accuracy_hetero_" + profile.name);
  }
  return Status::Ok();
}

}  // namespace
}  // namespace netmax

int main(int argc, char** argv) {
  return netmax::bench::BenchMain(argc, argv, [] { return netmax::Run(); });
}
