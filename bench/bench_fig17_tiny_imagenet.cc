// Figure 17 (Appendix F): ResNet18 on Tiny-ImageNet-sim (200 classes) with
// non-uniform data partitioning; loss vs epoch (a) and vs time (b).
//
// Paper shape: NetMax's per-epoch convergence is slightly slower than the
// synchronized baselines on this hard 200-way problem, but per wall-clock it
// is far ahead; final accuracy ~57% for everyone.

#include <iostream>

#include "bench/bench_util.h"
#include "algos/registry.h"
#include "ml/model_profile.h"

namespace netmax {
namespace {

Status Run() {
  core::ExperimentConfig config = bench::NonUniformConfig(
      ml::TinyImageNetSimSpec(), ml::ResNet18Profile());
  config.dataset.num_train = 6000;
  config.dataset.num_test = 1000;
  NETMAX_ASSIGN_OR_RETURN(const auto results, bench::RunAlgorithms(algos::PaperComparisonAlgorithms(), config));
  bench::PrintSeries(std::cout, "Fig. 17a (Tiny-ImageNet-sim, loss vs epoch)",
                     "epoch", "train_loss", results,
                     &core::RunResult::loss_vs_epoch);
  bench::PrintSeries(std::cout, "Fig. 17b (Tiny-ImageNet-sim, loss vs time)",
                     "time_s", "train_loss", results,
                     &core::RunResult::loss_vs_time);
  bench::PrintSpeedups(std::cout, "Fig. 17 speedups", results);
  return Status::Ok();
}

}  // namespace
}  // namespace netmax

int main(int argc, char** argv) {
  return netmax::bench::BenchMain(argc, argv, [] { return netmax::Run(); });
}
