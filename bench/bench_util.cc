#include "bench/bench_util.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string_view>

#include "algos/registry.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "ml/compression.h"
#include "net/event_queue.h"
#include "net/fault_schedule.h"
#include "net/topology.h"

namespace netmax::bench {
namespace {

int BenchThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : static_cast<int>(std::min(hw, 16u));
}

bool smoke_mode = false;
int threads_override = -1;
int shards_override = -1;
bool backend_override_set = false;
core::ExecutionBackendKind backend_override =
    core::ExecutionBackendKind::kSpeculative;
int reorder_window_override = -1;
int procs_override = -1;
double checkpoint_at_override = 0.0;
double checkpoint_every_override = 0.0;
std::string checkpoint_path_override;
std::string restore_path_override;
// --faults: either a scripted schedule parsed up front, or a "seed:K" form
// resolved per run (FromSeed needs the run's worker count).
bool faults_override_set = false;
bool faults_from_seed = false;
uint64_t faults_seed = 0;
net::FaultSchedule faults_override;
bool peer_policy_override_set = false;
core::PeerPolicy peer_policy_override = core::PeerPolicy::kWait;
bool adaptive_window_override = false;
bool event_queue_override_set = false;
net::EventQueueKind event_queue_override = net::EventQueueKind::kSortedVector;
int workers_override = -1;
bool topology_override_set = false;
net::TopologySpec topology_override;
bool compress_override_set = false;
ml::CompressionSpec compress_override;
// Seed-derived schedules ("--faults=seed:K") place their events inside
// (0.1, 0.75) x this horizon: 40 virtual seconds lands the churn well inside
// every bench run, smoke or full.
constexpr double kSeedFaultHorizonSeconds = 40.0;
constexpr int kSeedFaultCount = 4;
// Sequence number of the current RunAlgorithms/RunConfigs batch within this
// process. Benches call the runners several times (one per figure panel,
// often with the same algorithm names), and the batch index keeps each
// call's checkpoint files distinct. The numbering is deterministic for a
// given binary, so a --restore-path pass resolves exactly the files the
// --checkpoint-path pass wrote.
int run_batch_counter = 0;

void PrintUsage(std::ostream& os, const char* binary) {
  os << "usage: " << binary
     << " [--smoke] [--threads=N] [--shards=N] [--backend=K]"
        " [--reorder-window=N]\n"
        "       [--checkpoint-at=S --checkpoint-path=P] [--restore-path=P]\n"
        "       [--faults=SPEC] [--peer-policy=P] [--checkpoint-every=S]"
        " [--adaptive-window]\n"
     << "  --smoke              reduced iterations / corpus (CI smoke run)\n"
     << "  --threads=N          per-run simulation threads (0 = one per "
        "core, 1 = serial; results are bit-identical)\n"
     << "  --shards=N           intra-worker gradient shard tasks (0 = auto "
        "from the thread budget; results are bit-identical)\n"
     << "  --backend=K          execution backend: serial | speculative | "
        "async | process (results are bit-identical)\n"
     << "  --reorder-window=N   async backend in-flight compute bound "
        "(0 = synchronous; results are bit-identical)\n"
     << "  --procs=N            process backend's forked gradient-compute "
        "children (0 = one per core; results are bit-identical)\n"
     << "  --checkpoint-at=S    write a checkpoint S virtual seconds into "
        "every run (requires --checkpoint-path)\n"
     << "  --checkpoint-path=P  checkpoint file prefix; each run writes "
        "P.b<batch>.<run name>\n"
     << "  --restore-path=P     resume every run from its P.b<batch>.<run "
        "name> checkpoint (results are bit-identical to the uninterrupted "
        "run)\n"
     << "  --faults=SPEC        inject a deterministic fault schedule into "
        "every run: 'leave@T:wN', 'join@T:wN', 'crash@T', 'slow@T+DURxF:wN' "
        "joined by ';',\n"
        "                       or 'seed:K' for a seed-derived churn mix "
        "(results are bit-identical for any schedule)\n"
     << "  --peer-policy=P      dead/stalled-peer handling: wait (block and "
        "re-probe) or timeout (degrade after the deadline and continue)\n"
     << "  --checkpoint-every=S rewrite each run's checkpoint every S "
        "virtual seconds (rotating history; requires --checkpoint-path)\n"
     << "  --adaptive-window    async backend re-sizes its reorder window "
        "at runtime (results are bit-identical)\n"
     << "  --event-queue=K      simulator event-queue backend: vector | heap "
        "| calendar (results are bit-identical)\n"
     << "  --workers=N          simulated worker count (N >= 2; overrides "
        "every run's num_workers)\n"
     << "  --topology=SPEC      gossip topology: complete or "
        "hier:<cluster_size> (clusters-of-clusters)\n"
     << "  --compress=SPEC      gradient compression: none | topk:<frac> | "
        "int8 | layerwise:<period> (results are bit-identical across "
        "backends)\n"
     << "environment overrides (a flag beats its variable):\n"
     << "  NETMAX_SMOKE=1            same as --smoke\n"
     << "  NETMAX_THREADS=N          same as --threads=N\n"
     << "  NETMAX_SHARDS=N           same as --shards=N\n"
     << "  NETMAX_BACKEND=K          same as --backend=K\n"
     << "  NETMAX_REORDER_WINDOW=N   same as --reorder-window=N\n"
     << "  NETMAX_PROCS=N            same as --procs=N\n"
     << "  NETMAX_FAULTS=SPEC        same as --faults=SPEC\n"
     << "  NETMAX_PEER_POLICY=P      same as --peer-policy=P\n"
     << "  NETMAX_CHECKPOINT_EVERY=S same as --checkpoint-every=S\n"
     << "  NETMAX_ADAPTIVE_WINDOW=1  same as --adaptive-window\n"
     << "  NETMAX_EVENT_QUEUE=K      same as --event-queue=K\n"
     << "  NETMAX_WORKERS=N          same as --workers=N\n"
     << "  NETMAX_TOPOLOGY=SPEC      same as --topology=SPEC\n"
     << "  NETMAX_COMPRESS=SPEC      same as --compress=SPEC\n";
}

// Strict value parse for "--flag=N" style flags and their environment
// fallbacks: anything but an exact non-negative integer is a usage error.
StatusOr<int> ParseFlagValue(const std::string& flag_text,
                             std::string_view value) {
  StatusOr<int> parsed = ParseNonNegativeInt(value);
  if (!parsed.ok()) {
    return InvalidArgumentError("bad flag value: " + flag_text +
                                " (expected a non-negative integer)");
  }
  return parsed;
}

// Strict value parse for "--backend=K" and NETMAX_BACKEND: anything but a
// known backend name is a usage error.
StatusOr<core::ExecutionBackendKind> ParseBackend(const std::string& flag_text,
                                                  std::string_view value) {
  core::ExecutionBackendKind kind;
  if (!core::ParseExecutionBackendKind(value, &kind)) {
    return InvalidArgumentError(
        "bad flag value: " + flag_text +
        " (expected serial, speculative, async, or process)");
  }
  return kind;
}

// Strict value parse for "--checkpoint-at=S": a non-negative decimal number
// of virtual seconds.
StatusOr<double> ParseSeconds(const std::string& flag_text,
                              std::string_view value) {
  const std::string text(value);
  if (!text.empty() && std::isdigit(static_cast<unsigned char>(text[0]))) {
    char* end = nullptr;
    const double parsed = std::strtod(text.c_str(), &end);
    if (end == text.c_str() + text.size() && parsed >= 0.0) return parsed;
  }
  return InvalidArgumentError("bad flag value: " + flag_text +
                              " (expected a non-negative number of seconds)");
}

// Strict value parse for "--faults=SPEC" and NETMAX_FAULTS. A "seed:K" spec
// is recorded for per-run resolution (FromSeed needs the run's worker
// count); anything else must parse under the scripted grammar now so a typo
// fails before any experiment runs.
Status ParseFaults(const std::string& flag_text, std::string_view value) {
  faults_from_seed = false;
  if (value.rfind("seed:", 0) == 0) {
    StatusOr<int> seed = ParseNonNegativeInt(value.substr(5));
    if (!seed.ok()) {
      return InvalidArgumentError("bad flag value: " + flag_text +
                                  " (expected seed:K with K a non-negative "
                                  "integer)");
    }
    faults_from_seed = true;
    faults_seed = static_cast<uint64_t>(*seed);
    faults_override_set = true;
    return Status::Ok();
  }
  StatusOr<net::FaultSchedule> parsed = net::FaultSchedule::Parse(value);
  if (!parsed.ok()) {
    return InvalidArgumentError("bad flag value: " + flag_text + " (" +
                                parsed.status().message() + ")");
  }
  faults_override = std::move(parsed.value());
  faults_override_set = true;
  return Status::Ok();
}

// Strict value parse for "--peer-policy=P" and NETMAX_PEER_POLICY.
Status ParsePeerPolicyFlag(const std::string& flag_text,
                           std::string_view value) {
  core::PeerPolicy policy;
  if (!core::ParsePeerPolicy(value, &policy)) {
    return InvalidArgumentError("bad flag value: " + flag_text +
                                " (expected wait or timeout)");
  }
  peer_policy_override = policy;
  peer_policy_override_set = true;
  return Status::Ok();
}

// Strict value parse for "--event-queue=K" and NETMAX_EVENT_QUEUE.
Status ParseEventQueueFlag(const std::string& flag_text,
                           std::string_view value) {
  StatusOr<net::EventQueueKind> kind = net::ParseEventQueueKind(value);
  if (!kind.ok()) {
    return InvalidArgumentError("bad flag value: " + flag_text +
                                " (expected vector, heap, calendar, or "
                                "pairing)");
  }
  event_queue_override = *kind;
  event_queue_override_set = true;
  return Status::Ok();
}

// Strict value parse for "--workers=N" and NETMAX_WORKERS: a decentralized
// run needs at least two workers, so 0 and 1 are usage errors, not configs.
Status ParseWorkersFlag(const std::string& flag_text, std::string_view value) {
  StatusOr<int> parsed = ParseNonNegativeInt(value);
  if (!parsed.ok() || *parsed < 2) {
    return InvalidArgumentError("bad flag value: " + flag_text +
                                " (expected an integer worker count >= 2)");
  }
  workers_override = *parsed;
  return Status::Ok();
}

// Strict value parse for "--topology=SPEC" and NETMAX_TOPOLOGY.
Status ParseTopologyFlag(const std::string& flag_text,
                         std::string_view value) {
  StatusOr<net::TopologySpec> spec = net::ParseTopologySpec(value);
  if (!spec.ok()) {
    return InvalidArgumentError("bad flag value: " + flag_text + " (" +
                                spec.status().message() + ")");
  }
  topology_override = *spec;
  topology_override_set = true;
  return Status::Ok();
}

// Strict value parse for "--compress=SPEC" and NETMAX_COMPRESS.
Status ParseCompressFlag(const std::string& flag_text,
                         std::string_view value) {
  StatusOr<ml::CompressionSpec> spec = ml::ParseCompressionSpec(value);
  if (!spec.ok()) {
    return InvalidArgumentError("bad flag value: " + flag_text + " (" +
                                spec.status().message() + ")");
  }
  compress_override = *spec;
  compress_override_set = true;
  return Status::Ok();
}

// Splits the machine between `concurrent_runs` simultaneous experiments:
// every run gets an equal share of the cores for its own compute-event pool
// (at least one). Applied only when the config asks for the automatic
// default; an explicit config.threads or --threads wins.
int PerRunThreads(size_t concurrent_runs) {
  return std::max(1, BenchThreads() / std::max<int>(1, static_cast<int>(
                                                           concurrent_runs)));
}

void ApplyExecutionOverrides(core::ExperimentConfig& config,
                             size_t concurrent_runs) {
  if (threads_override >= 0) {
    config.threads = threads_override;
  } else if (config.threads == 0) {
    config.threads = PerRunThreads(concurrent_runs);
  }
  if (shards_override >= 0) config.shards = shards_override;
  if (backend_override_set) config.backend = backend_override;
  if (reorder_window_override >= 0) {
    config.reorder_window = reorder_window_override;
  }
  if (procs_override >= 0) config.procs = procs_override;
  if (event_queue_override_set) config.event_queue = event_queue_override;
  if (topology_override_set) config.topology = topology_override;
  // The worker override must land before a seed-derived fault schedule is
  // resolved below: FromSeed draws its churn targets from num_workers.
  if (workers_override >= 0) config.num_workers = workers_override;
  if (faults_override_set) {
    config.faults =
        faults_from_seed
            ? net::FaultSchedule::FromSeed(faults_seed, config.num_workers,
                                           kSeedFaultHorizonSeconds,
                                           kSeedFaultCount)
            : faults_override;
  }
  if (peer_policy_override_set) config.peer_policy = peer_policy_override;
  if (adaptive_window_override) config.adaptive_reorder_window = true;
  if (compress_override_set) config.compress = compress_override;
}

// Distinct checkpoint/restore files for every run of a bench:
// --checkpoint-path / --restore-path name a prefix and each run appends
// ".<run name>" (separators sanitized), so a bench running several
// algorithms in parallel never interleaves two runs' bytes in one file and
// a restore always finds the file whose fingerprint matches the run.
std::string PerRunPath(const std::string& prefix,
                       const std::string& run_name) {
  std::string suffix = run_name;
  for (char& c : suffix) {
    if (c == '/' || c == '\\' ||
        std::isspace(static_cast<unsigned char>(c))) {
      c = '-';
    }
  }
  return prefix + "." + suffix;
}

void ApplyCheckpointOverrides(core::ExperimentConfig& config, int batch,
                              const std::string& run_name) {
  // Built with += rather than operator+ chaining: GCC 12's -Wrestrict
  // false-fires on the `literal + temporary` form under -O2.
  std::string run_key = "b";
  run_key += std::to_string(batch);
  run_key += '.';
  run_key += run_name;
  if (checkpoint_at_override > 0.0) {
    config.checkpoint_at_seconds = checkpoint_at_override;
    config.checkpoint_path = PerRunPath(checkpoint_path_override, run_key);
  }
  if (checkpoint_every_override > 0.0) {
    config.checkpoint_every_seconds = checkpoint_every_override;
    config.checkpoint_path = PerRunPath(checkpoint_path_override, run_key);
  }
  if (!restore_path_override.empty()) {
    config.restore_path = PerRunPath(restore_path_override, run_key);
  }
}

}  // namespace

StatusOr<bool> InitBench(int argc, char** argv) {
  // Idempotent: re-parsing from a clean slate lets tests (and any caller)
  // invoke InitBench more than once without earlier overrides leaking in.
  smoke_mode = false;
  threads_override = -1;
  shards_override = -1;
  backend_override_set = false;
  reorder_window_override = -1;
  procs_override = -1;
  checkpoint_at_override = 0.0;
  checkpoint_every_override = 0.0;
  checkpoint_path_override.clear();
  restore_path_override.clear();
  faults_override_set = false;
  faults_from_seed = false;
  faults_seed = 0;
  faults_override = net::FaultSchedule();
  peer_policy_override_set = false;
  adaptive_window_override = false;
  event_queue_override_set = false;
  event_queue_override = net::EventQueueKind::kSortedVector;
  workers_override = -1;
  topology_override_set = false;
  topology_override = net::TopologySpec();
  compress_override_set = false;
  compress_override = ml::CompressionSpec();
  run_batch_counter = 0;
  const char* env = std::getenv("NETMAX_SMOKE");
  if (env != nullptr && std::strcmp(env, "1") == 0) smoke_mode = true;
  const char* env_adaptive = std::getenv("NETMAX_ADAPTIVE_WINDOW");
  if (env_adaptive != nullptr && std::strcmp(env_adaptive, "1") == 0) {
    adaptive_window_override = true;
  }
  const char* env_threads = std::getenv("NETMAX_THREADS");
  if (env_threads != nullptr) {
    NETMAX_ASSIGN_OR_RETURN(
        threads_override,
        ParseFlagValue(std::string("NETMAX_THREADS=") + env_threads,
                       env_threads));
  }
  const char* env_shards = std::getenv("NETMAX_SHARDS");
  if (env_shards != nullptr) {
    NETMAX_ASSIGN_OR_RETURN(
        shards_override,
        ParseFlagValue(std::string("NETMAX_SHARDS=") + env_shards,
                       env_shards));
  }
  const char* env_backend = std::getenv("NETMAX_BACKEND");
  if (env_backend != nullptr) {
    NETMAX_ASSIGN_OR_RETURN(
        backend_override,
        ParseBackend(std::string("NETMAX_BACKEND=") + env_backend,
                     env_backend));
    backend_override_set = true;
  }
  const char* env_window = std::getenv("NETMAX_REORDER_WINDOW");
  if (env_window != nullptr) {
    NETMAX_ASSIGN_OR_RETURN(
        reorder_window_override,
        ParseFlagValue(std::string("NETMAX_REORDER_WINDOW=") + env_window,
                       env_window));
  }
  const char* env_procs = std::getenv("NETMAX_PROCS");
  if (env_procs != nullptr) {
    NETMAX_ASSIGN_OR_RETURN(
        procs_override,
        ParseFlagValue(std::string("NETMAX_PROCS=") + env_procs, env_procs));
  }
  const char* env_faults = std::getenv("NETMAX_FAULTS");
  if (env_faults != nullptr) {
    NETMAX_RETURN_IF_ERROR(ParseFaults(
        std::string("NETMAX_FAULTS=") + env_faults, env_faults));
  }
  const char* env_policy = std::getenv("NETMAX_PEER_POLICY");
  if (env_policy != nullptr) {
    NETMAX_RETURN_IF_ERROR(ParsePeerPolicyFlag(
        std::string("NETMAX_PEER_POLICY=") + env_policy, env_policy));
  }
  const char* env_queue = std::getenv("NETMAX_EVENT_QUEUE");
  if (env_queue != nullptr) {
    NETMAX_RETURN_IF_ERROR(ParseEventQueueFlag(
        std::string("NETMAX_EVENT_QUEUE=") + env_queue, env_queue));
  }
  const char* env_workers = std::getenv("NETMAX_WORKERS");
  if (env_workers != nullptr) {
    NETMAX_RETURN_IF_ERROR(ParseWorkersFlag(
        std::string("NETMAX_WORKERS=") + env_workers, env_workers));
  }
  const char* env_topology = std::getenv("NETMAX_TOPOLOGY");
  if (env_topology != nullptr) {
    NETMAX_RETURN_IF_ERROR(ParseTopologyFlag(
        std::string("NETMAX_TOPOLOGY=") + env_topology, env_topology));
  }
  const char* env_compress = std::getenv("NETMAX_COMPRESS");
  if (env_compress != nullptr) {
    NETMAX_RETURN_IF_ERROR(ParseCompressFlag(
        std::string("NETMAX_COMPRESS=") + env_compress, env_compress));
  }
  const char* env_every = std::getenv("NETMAX_CHECKPOINT_EVERY");
  if (env_every != nullptr) {
    NETMAX_ASSIGN_OR_RETURN(
        checkpoint_every_override,
        ParseSeconds(std::string("NETMAX_CHECKPOINT_EVERY=") + env_every,
                     env_every));
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke_mode = true;
    } else if (arg.rfind("--threads=", 0) == 0) {
      NETMAX_ASSIGN_OR_RETURN(
          threads_override,
          ParseFlagValue(arg, std::string_view(arg).substr(10)));
    } else if (arg.rfind("--shards=", 0) == 0) {
      NETMAX_ASSIGN_OR_RETURN(
          shards_override,
          ParseFlagValue(arg, std::string_view(arg).substr(9)));
    } else if (arg.rfind("--backend=", 0) == 0) {
      NETMAX_ASSIGN_OR_RETURN(
          backend_override,
          ParseBackend(arg, std::string_view(arg).substr(10)));
      backend_override_set = true;
    } else if (arg.rfind("--reorder-window=", 0) == 0) {
      NETMAX_ASSIGN_OR_RETURN(
          reorder_window_override,
          ParseFlagValue(arg, std::string_view(arg).substr(17)));
    } else if (arg.rfind("--procs=", 0) == 0) {
      NETMAX_ASSIGN_OR_RETURN(
          procs_override,
          ParseFlagValue(arg, std::string_view(arg).substr(8)));
    } else if (arg.rfind("--checkpoint-at=", 0) == 0) {
      NETMAX_ASSIGN_OR_RETURN(
          checkpoint_at_override,
          ParseSeconds(arg, std::string_view(arg).substr(16)));
    } else if (arg.rfind("--checkpoint-every=", 0) == 0) {
      NETMAX_ASSIGN_OR_RETURN(
          checkpoint_every_override,
          ParseSeconds(arg, std::string_view(arg).substr(19)));
    } else if (arg.rfind("--checkpoint-path=", 0) == 0) {
      checkpoint_path_override = arg.substr(18);
    } else if (arg.rfind("--restore-path=", 0) == 0) {
      restore_path_override = arg.substr(15);
    } else if (arg.rfind("--faults=", 0) == 0) {
      NETMAX_RETURN_IF_ERROR(
          ParseFaults(arg, std::string_view(arg).substr(9)));
    } else if (arg.rfind("--peer-policy=", 0) == 0) {
      NETMAX_RETURN_IF_ERROR(
          ParsePeerPolicyFlag(arg, std::string_view(arg).substr(14)));
    } else if (arg == "--adaptive-window") {
      adaptive_window_override = true;
    } else if (arg.rfind("--event-queue=", 0) == 0) {
      NETMAX_RETURN_IF_ERROR(
          ParseEventQueueFlag(arg, std::string_view(arg).substr(14)));
    } else if (arg.rfind("--workers=", 0) == 0) {
      NETMAX_RETURN_IF_ERROR(
          ParseWorkersFlag(arg, std::string_view(arg).substr(10)));
    } else if (arg.rfind("--topology=", 0) == 0) {
      NETMAX_RETURN_IF_ERROR(
          ParseTopologyFlag(arg, std::string_view(arg).substr(11)));
    } else if (arg.rfind("--compress=", 0) == 0) {
      NETMAX_RETURN_IF_ERROR(
          ParseCompressFlag(arg, std::string_view(arg).substr(11)));
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(std::cout, argc > 0 ? argv[0] : "bench");
      return false;
    } else {
      return InvalidArgumentError("unknown bench flag: " + arg);
    }
  }
  if (checkpoint_at_override > 0.0 && checkpoint_path_override.empty()) {
    return InvalidArgumentError(
        "--checkpoint-at requires --checkpoint-path");
  }
  if (checkpoint_every_override > 0.0 && checkpoint_path_override.empty()) {
    return InvalidArgumentError(
        "--checkpoint-every requires --checkpoint-path");
  }
  return true;
}

int BenchMain(int argc, char** argv, const std::function<Status()>& body) {
  StatusOr<bool> init = InitBench(argc, argv);
  if (!init.ok()) {
    std::cerr << init.status().message() << "\n";
    PrintUsage(std::cerr, argc > 0 ? argv[0] : "bench");
    return 2;
  }
  if (!*init) return 0;  // --help
  const Status status = body();
  if (!status.ok()) {
    std::cerr << "bench failed: " << status.ToString() << "\n";
    return 2;
  }
  return 0;
}

bool SmokeMode() { return smoke_mode; }

int ThreadsOverride() { return threads_override; }

int ShardsOverride() { return shards_override; }

int ReorderWindowOverride() { return reorder_window_override; }

int ProcsOverride() { return procs_override; }

int WorkersOverride() { return workers_override; }

void MaybeApplySmoke(core::ExperimentConfig& config) {
  if (!smoke_mode) return;
  // Keep the experiment shape (workers, network scenario, partition) but cut
  // the work: tiny corpus, a handful of epochs, coarse policy refinement.
  config.dataset.num_train = std::min(config.dataset.num_train, 512);
  config.dataset.num_test = std::min(config.dataset.num_test, 128);
  config.max_epochs = std::min(config.max_epochs, 4);
  config.generator.outer_rounds = std::min(config.generator.outer_rounds, 3);
  config.generator.inner_rounds = std::min(config.generator.inner_rounds, 3);
  // Rescale the re-draw/monitor periods so smoke runs still exercise a few
  // policy windows within the shortened virtual run.
  config.slowdown_period_seconds =
      std::min(config.slowdown_period_seconds, 20.0);
  config.monitor_period_seconds = std::min(config.monitor_period_seconds, 8.0);
  // lr_milestones are left untouched: milestones beyond the shortened budget
  // simply never fire, while emptying the list would switch the harness to
  // the plateau-decay scheduler (experiment.cc) — a different experiment.
}

StatusOr<std::vector<NamedResult>> RunAlgorithms(
    const std::vector<std::string>& names,
    const core::ExperimentConfig& config) {
  // Shrink at the last point before execution so per-bench overrides applied
  // after PaperBaseConfig() (epochs, corpus size, ...) cannot undo --smoke.
  core::ExperimentConfig run_config = config;
  MaybeApplySmoke(run_config);
  ApplyExecutionOverrides(run_config, names.size());
  const int batch = run_batch_counter++;
  std::vector<NamedResult> results(names.size());
  std::vector<Status> statuses(names.size());
  ThreadPool pool(BenchThreads());
  ParallelFor(pool, static_cast<int>(names.size()),
              [&names, &run_config, &results, &statuses, batch](int i) {
                const size_t n = static_cast<size_t>(i);
                auto algorithm = algos::MakeAlgorithm(names[n]);
                if (!algorithm.ok()) {
                  statuses[n] = algorithm.status();
                  return;
                }
                core::ExperimentConfig config_n = run_config;
                ApplyCheckpointOverrides(config_n, batch, names[n]);
                auto result = (*algorithm)->Run(config_n);
                if (!result.ok()) {
                  statuses[n] = Status(
                      result.status().code(),
                      names[n] + ": " + result.status().message());
                  return;
                }
                results[n] =
                    NamedResult{result->algorithm, std::move(result.value())};
              });
  for (const Status& status : statuses) {
    NETMAX_RETURN_IF_ERROR(status);
  }
  PrintExecutionDiagnostics(std::cerr, results);
  return results;
}

StatusOr<std::vector<NamedResult>> RunConfigs(
    const std::string& algorithm,
    const std::vector<core::ExperimentConfig>& configs,
    const std::vector<std::string>& labels) {
  if (configs.size() != labels.size()) {
    return InvalidArgumentError("RunConfigs: configs/labels size mismatch");
  }
  std::vector<core::ExperimentConfig> run_configs = configs;
  const int batch = run_batch_counter++;
  for (size_t n = 0; n < run_configs.size(); ++n) {
    MaybeApplySmoke(run_configs[n]);
    ApplyExecutionOverrides(run_configs[n], configs.size());
    ApplyCheckpointOverrides(run_configs[n], batch, labels[n]);
  }
  std::vector<NamedResult> results(configs.size());
  std::vector<Status> statuses(configs.size());
  ThreadPool pool(BenchThreads());
  ParallelFor(pool, static_cast<int>(configs.size()),
              [&algorithm, &run_configs, &labels, &results, &statuses](int i) {
                const size_t n = static_cast<size_t>(i);
                auto algo = algos::MakeAlgorithm(algorithm);
                if (!algo.ok()) {
                  statuses[n] = algo.status();
                  return;
                }
                auto result = (*algo)->Run(run_configs[n]);
                if (!result.ok()) {
                  statuses[n] = Status(
                      result.status().code(),
                      labels[n] + ": " + result.status().message());
                  return;
                }
                results[n] = NamedResult{labels[n], std::move(result.value())};
              });
  for (const Status& status : statuses) {
    NETMAX_RETURN_IF_ERROR(status);
  }
  PrintExecutionDiagnostics(std::cerr, results);
  return results;
}

ml::Series Downsample(const ml::Series& series, int max_points) {
  if (static_cast<int>(series.size()) <= max_points || max_points < 2) {
    return series;
  }
  ml::Series out;
  const double stride = static_cast<double>(series.size() - 1) /
                        static_cast<double>(max_points - 1);
  for (int k = 0; k < max_points; ++k) {
    out.push_back(series[static_cast<size_t>(std::lround(k * stride))]);
  }
  return out;
}

void PrintSeries(std::ostream& os, const std::string& title,
                 const std::string& x_label, const std::string& y_label,
                 const std::vector<NamedResult>& results,
                 ml::Series core::RunResult::* series, int max_points) {
  TablePrinter table({"algorithm", x_label, y_label});
  for (const NamedResult& entry : results) {
    for (const ml::SeriesPoint& point :
         Downsample(entry.result.*series, max_points)) {
      table.AddRow({entry.name, Fmt(point.x, 1), Fmt(point.y, 4)});
    }
  }
  os << "\n== " << title << " ==\n";
  table.Print(os);
  table.PrintCsv(os, title);
}

double CommonLossThreshold(const std::vector<NamedResult>& results) {
  // Compare curves late in their descent (92% of each run's total loss
  // reduction) rather than at the deepest floor: floors are dominated by
  // small-dataset overfitting tails, while the paper reads its speedups off
  // the mid/late descent of the curves. Every curve reaches the maximum of
  // these per-curve marks, since a curve's own mark is above its minimum.
  double threshold = 0.0;
  for (const NamedResult& entry : results) {
    NETMAX_CHECK(!entry.result.loss_vs_time.empty()) << entry.name;
    const double first = entry.result.loss_vs_time.front().y;
    const double floor = ml::MinValue(entry.result.loss_vs_time);
    threshold = std::max(threshold, floor + 0.08 * (first - floor));
  }
  return threshold;
}

double ConvergenceSeconds(const core::RunResult& result,
                          double loss_threshold) {
  const auto time = ml::TimeToThreshold(result.loss_vs_time, loss_threshold);
  return time.has_value() ? *time : result.total_virtual_seconds;
}

void PrintSpeedups(std::ostream& os, const std::string& title,
                   const std::vector<NamedResult>& results) {
  NETMAX_CHECK(!results.empty());
  // Two speedup readings: time to a common (late-descent) loss level, and —
  // the headline number — total time to finish the fixed epoch budget. The
  // paper trains every algorithm for a fixed epoch count and reads speedups
  // off the loss-vs-time curves; with near-parity per-epoch convergence the
  // equal-work ratio is the stable equivalent on these shortened runs, where
  // a single curve crossing can swing threshold-based readings.
  const double threshold = CommonLossThreshold(results);
  const double ref_loss_time =
      ConvergenceSeconds(results.back().result, threshold);
  const double ref_total = results.back().result.total_virtual_seconds;
  TablePrinter table({"algorithm", "time_to_loss_s", "total_time_s",
                      "netmax_speedup"});
  for (const NamedResult& entry : results) {
    const double seconds = ConvergenceSeconds(entry.result, threshold);
    (void)ref_loss_time;
    table.AddRow({entry.name, Fmt(seconds, 1),
                  Fmt(entry.result.total_virtual_seconds, 1),
                  Fmt(ref_total > 0.0
                          ? entry.result.total_virtual_seconds / ref_total
                          : 0.0,
                      2)});
  }
  os << "\n== " << title << " (loss threshold " << Fmt(threshold, 3)
     << "; speedup = equal-work total time vs NetMax) ==\n";
  table.Print(os);
  table.PrintCsv(os, title);
}

void PrintEpochCostSplit(std::ostream& os, const std::string& title,
                         const std::vector<NamedResult>& results) {
  TablePrinter table({"algorithm", "computation_s", "communication_s",
                      "epoch_time_s"});
  for (const NamedResult& entry : results) {
    const auto& cost = entry.result.avg_epoch_cost;
    table.AddRow({entry.name, Fmt(cost.compute_seconds, 2),
                  Fmt(cost.communication_seconds, 2),
                  Fmt(cost.total_seconds(), 2)});
  }
  os << "\n== " << title << " ==\n";
  table.Print(os);
  table.PrintCsv(os, title);
}

void PrintExecutionDiagnostics(std::ostream& os,
                               const std::vector<NamedResult>& results) {
  // Fault and adaptive-window columns appear only when some run has activity
  // to report: fault-free batches keep the exact pre-fault table shape, so
  // scripts diffing a bench's stderr across revisions see no churn.
  bool any_faults = false;
  for (const NamedResult& entry : results) {
    const core::RunResult& r = entry.result;
    if (r.window_resizes != 0 || r.faults_injected != 0 ||
        r.rounds_degraded != 0 || r.peers_timed_out != 0) {
      any_faults = true;
      break;
    }
  }
  // Wire columns appear only when some run compressed: bytes_saved stays
  // identically zero on uncompressed runs (headerless dense f32 encoding),
  // while bytes_sent is nonzero for any communicating run and so cannot
  // gate the columns without churning every existing bench's stderr.
  bool any_bytes = false;
  for (const NamedResult& entry : results) {
    if (entry.result.bytes_saved != 0) {
      any_bytes = true;
      break;
    }
  }
  // Process-backend columns likewise appear only when some run forked
  // children that died or had leaf ranges re-dispatched — healthy process
  // runs (and the thread backends, always) keep the pre-process table shape.
  bool any_process = false;
  for (const NamedResult& entry : results) {
    if (entry.result.process_child_deaths != 0 ||
        entry.result.process_ranges_redispatched != 0) {
      any_process = true;
      break;
    }
  }
  std::vector<std::string> header = {"run",          "backend",
                                     "batches",      "speculated",
                                     "redispatched", "recomputed",
                                     "stalls",       "backpressure"};
  if (any_process) {
    header.insert(header.end(), {"child_deaths", "ranges_redisp"});
  }
  if (any_faults) {
    header.insert(header.end(),
                  {"resizes", "faults", "degraded", "timeouts"});
  }
  if (any_bytes) {
    header.insert(header.end(), {"messages", "bytes_sent", "bytes_saved"});
  }
  TablePrinter table(header);
  for (const NamedResult& entry : results) {
    const core::RunResult& r = entry.result;
    std::vector<std::string> row = {entry.name,
                                    r.backend,
                                    std::to_string(r.parallel_batches),
                                    std::to_string(r.computes_speculated),
                                    std::to_string(r.computes_redispatched),
                                    std::to_string(r.computes_recomputed),
                                    std::to_string(r.window_stalls),
                                    std::to_string(r.window_backpressure)};
    if (any_process) {
      row.insert(row.end(),
                 {std::to_string(r.process_child_deaths),
                  std::to_string(r.process_ranges_redispatched)});
    }
    if (any_faults) {
      row.insert(row.end(), {std::to_string(r.window_resizes),
                             std::to_string(r.faults_injected),
                             std::to_string(r.rounds_degraded),
                             std::to_string(r.peers_timed_out)});
    }
    if (any_bytes) {
      row.insert(row.end(), {std::to_string(r.messages_sent),
                             std::to_string(r.bytes_sent),
                             std::to_string(r.bytes_saved)});
    }
    table.AddRow(std::move(row));
  }
  os << "\n== Execution diagnostics (real-machine dispatch; never affects "
        "results) ==\n";
  table.Print(os);
}

core::ExperimentConfig PaperBaseConfig() {
  core::ExperimentConfig config;
  config.dataset = ml::Cifar10SimSpec();
  config.dataset.num_train = 2048;
  config.dataset.num_test = 512;
  config.hidden_layers = {32};
  config.profile = ml::ResNet18Profile();
  config.num_workers = 8;
  config.network = core::NetworkScenario::kHeterogeneousDynamic;
  config.batch_size = 32;
  config.max_epochs = 24;
  // The paper re-draws the slow link every 5 minutes over multi-hour
  // trainings and recomputes the policy every Ts = 2 minutes. Our scaled-down
  // runs last tens of virtual minutes, so both periods shrink proportionally
  // to preserve the windows-per-training ratio.
  config.slowdown_period_seconds = 60.0;
  config.monitor_period_seconds = 24.0;
  config.generator.outer_rounds = 6;
  config.generator.inner_rounds = 6;
  config.seed = 1;
  return config;
}

core::ExperimentConfig NonUniformConfig(const ml::SyntheticSpec& dataset,
                                        const ml::ModelProfile& profile) {
  core::ExperimentConfig config = PaperBaseConfig();
  config.dataset = dataset;
  config.dataset.num_train = std::min(config.dataset.num_train, 4096);
  config.dataset.num_test = std::min(config.dataset.num_test, 1024);
  config.profile = profile;
  config.num_workers = 8;
  config.two_server_placement = true;
  config.partition = core::PartitionScheme::kSegments;
  config.segments = {1, 1, 1, 1, 2, 1, 2, 1};  // paper Section V-F
  config.batch_size = 16;                      // scaled per segment count
  config.max_epochs = 24;
  config.lr_milestones = {16};  // paper: decay by 10 at 2/3 of the budget
  return config;
}

}  // namespace netmax::bench
