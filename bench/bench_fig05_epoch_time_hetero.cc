// Figure 5: average epoch time split into computation and communication cost,
// 8 workers on the heterogeneous network, ResNet18 (a) and VGG19 (b).
//
// Paper shape: computation cost nearly identical across algorithms;
// communication cost dominated by Prague (partial-allreduce congestion),
// then Allreduce, then AD-PSGD; NetMax lowest (up to ~83%/63% communication
// reduction vs Prague/AD-PSGD for ResNet18).

#include <iostream>

#include "bench/bench_util.h"
#include "algos/registry.h"
#include "ml/model_profile.h"

namespace netmax {
namespace {

Status Run() {
  for (const auto& profile : {ml::ResNet18Profile(), ml::Vgg19Profile()}) {
    core::ExperimentConfig config = bench::PaperBaseConfig();
    config.profile = profile;
    config.max_epochs = 12;  // the cost split stabilizes within a few epochs
    NETMAX_ASSIGN_OR_RETURN(const auto results, bench::RunAlgorithms(algos::PaperComparisonAlgorithms(), config));
    bench::PrintEpochCostSplit(
        std::cout, "Fig. 5 (" + profile.name + ", heterogeneous)", results);
  }
  return Status::Ok();
}

}  // namespace
}  // namespace netmax

int main(int argc, char** argv) {
  return netmax::bench::BenchMain(argc, argv, [] { return netmax::Run(); });
}
