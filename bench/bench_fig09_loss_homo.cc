// Figure 9: training loss vs wall time, 8 workers, homogeneous network
// (single server, 10 Gbps virtual switch), ResNet18 (a) and VGG19 (b).
//
// Paper shape: NetMax still fastest, but NetMax and AD-PSGD nearly coincide
// (with equal link speeds NetMax's policy approaches uniform selection);
// Allreduce and Prague converge much slower due to their extra communication
// rounds.

#include <iostream>

#include "bench/bench_util.h"
#include "algos/registry.h"
#include "ml/model_profile.h"

namespace netmax {
namespace {

Status Run() {
  for (const auto& profile : {ml::ResNet18Profile(), ml::Vgg19Profile()}) {
    core::ExperimentConfig config = bench::PaperBaseConfig();
    config.network = core::NetworkScenario::kHomogeneous;
    config.profile = profile;
    NETMAX_ASSIGN_OR_RETURN(const auto results, bench::RunAlgorithms(algos::PaperComparisonAlgorithms(), config));
    const std::string title = "Fig. 9 (" + profile.name + ", homogeneous)";
    bench::PrintSeries(std::cout, title, "time_s", "train_loss", results,
                       &core::RunResult::loss_vs_time);
    bench::PrintSpeedups(std::cout, title + " speedups", results);
  }
  return Status::Ok();
}

}  // namespace
}  // namespace netmax

int main(int argc, char** argv) {
  return netmax::bench::BenchMain(argc, argv, [] { return netmax::Run(); });
}
