// Table V: test accuracy with non-uniform data partitioning over the
// heterogeneous network, five dataset/model pairs:
//   CIFAR10-sim / ResNet18, CIFAR100-sim / ResNet18 (segment-weighted),
//   MNIST-sim / MobileNet (Table IV non-IID label removal),
//   Tiny-ImageNet-sim / ResNet18 (segments),
//   ImageNet-sim / ResNet50 (16 workers, segments).
//
// Paper shape: accuracies ~89.6% / 72.2% / 93.4% / 57.4% / 73.3% for NetMax,
// always comparable to or slightly above the baselines; MNIST much below its
// usual ~99% because of the non-IID label removal.

#include <iostream>

#include "bench/bench_util.h"
#include "algos/registry.h"
#include "common/table.h"
#include "ml/model_profile.h"

namespace netmax {
namespace {

core::ExperimentConfig MnistNonIidConfig() {
  core::ExperimentConfig config = bench::PaperBaseConfig();
  config.dataset = ml::MnistSimSpec();
  config.dataset.num_train = 4096;
  config.profile = ml::MobileNetProfile();
  config.num_workers = 8;
  config.two_server_placement = true;
  config.partition = core::PartitionScheme::kLostLabels;
  config.lost_labels = ml::MnistLostLabels();  // Table IV
  config.batch_size = 32;                      // paper: batch 32 for MNIST
  config.learning_rate = 0.05;                 // paper: lower LR for MNIST
  config.max_epochs = 24;
  return config;
}

core::ExperimentConfig ImageNetConfig() {
  core::ExperimentConfig config = bench::PaperBaseConfig();
  config.dataset = ml::ImageNetSimSpec();
  config.dataset.num_train = 8000;
  config.dataset.num_test = 1000;
  config.profile = ml::ResNet50Profile();
  config.num_workers = 16;
  config.two_server_placement = true;
  config.partition = core::PartitionScheme::kSegments;
  config.segments = {1, 1, 1, 1, 1, 1, 1, 1, 2, 1, 2, 1, 2, 1, 2, 1};
  config.batch_size = 16;
  config.hidden_layers = {48};
  config.max_epochs = 16;
  config.lr_milestones = {10};
  return config;
}

Status Run() {
  struct Workload {
    std::string label;
    core::ExperimentConfig config;
  };
  std::vector<Workload> workloads;
  workloads.push_back(
      {"cifar10-sim/resnet18",
       bench::NonUniformConfig(ml::Cifar10SimSpec(), ml::ResNet18Profile())});
  workloads.push_back(
      {"cifar100-sim/resnet18",
       bench::NonUniformConfig(ml::Cifar100SimSpec(), ml::ResNet18Profile())});
  workloads.push_back({"mnist-sim/mobilenet", MnistNonIidConfig()});
  {
    core::ExperimentConfig tiny = bench::NonUniformConfig(
        ml::TinyImageNetSimSpec(), ml::ResNet18Profile());
    tiny.dataset.num_train = 6000;
    tiny.dataset.num_test = 1000;
    workloads.push_back({"tiny-imagenet-sim/resnet18", std::move(tiny)});
  }
  workloads.push_back({"imagenet-sim/resnet50", ImageNetConfig()});

  TablePrinter table(
      {"dataset/model", "Prague", "Allreduce", "AD-PSGD", "NetMax"});
  for (const Workload& workload : workloads) {
    NETMAX_ASSIGN_OR_RETURN(const auto results, bench::RunAlgorithms(
        algos::PaperComparisonAlgorithms(), workload.config));
    table.AddRow({workload.label,
                  Fmt(100.0 * results[0].result.final_accuracy, 2) + "%",
                  Fmt(100.0 * results[1].result.final_accuracy, 2) + "%",
                  Fmt(100.0 * results[2].result.final_accuracy, 2) + "%",
                  Fmt(100.0 * results[3].result.final_accuracy, 2) + "%"});
  }
  std::cout << "\n== Table V: accuracy, non-uniform partitioning ==\n";
  table.Print(std::cout);
  table.PrintCsv(std::cout, "tab05_accuracy_nonuniform");
  return Status::Ok();
}

}  // namespace
}  // namespace netmax

int main(int argc, char** argv) {
  return netmax::bench::BenchMain(argc, argv, [] { return netmax::Run(); });
}
