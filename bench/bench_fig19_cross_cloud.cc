// Figure 19 (Appendix G): distributed training across six cloud regions
// (Table VII non-IID label distribution, CPU-only instances). Test accuracy
// vs time for MobileNet (a) and GoogLeNet (b), comparing NetMax, AD-PSGD,
// PS-asyn and PS-syn.
//
// Paper shape: NetMax converges ~1.9x faster than AD-PSGD and PS-asyn and
// ~2.1x faster than PS-syn; PS-syn is the slowest (paced by the farthest
// region), PS-asyn slightly behind AD-PSGD.

#include <iostream>

#include "bench/bench_util.h"
#include "common/table.h"
#include "ml/metrics.h"
#include "ml/model_profile.h"

namespace netmax {
namespace {

Status Run() {
  for (const auto& profile :
       {ml::MobileNetProfile(), ml::GoogLeNetProfile()}) {
    core::ExperimentConfig config = bench::PaperBaseConfig();
    config.dataset = ml::MnistSimSpec();
    config.dataset.num_train = 3072;
    config.profile = profile;
    config.num_workers = 6;  // one worker per region
    config.network = core::NetworkScenario::kWan;
    config.partition = core::PartitionScheme::kLostLabels;
    config.lost_labels = ml::CloudRegionLostLabels();  // Table VII
    config.batch_size = 32;
    config.learning_rate = 0.05;
    config.compute_multiplier = 8.0;  // c5.4xlarge CPUs, not GPUs
    config.max_epochs = 16;
    config.eval_every_epochs = 2;
    const std::vector<std::string> algorithms = {"ps-sync", "ps-async",
                                                 "adpsgd", "netmax"};
    NETMAX_ASSIGN_OR_RETURN(const auto results, bench::RunAlgorithms(algorithms, config));
    bench::PrintSeries(std::cout,
                       "Fig. 19 (" + profile.name + ", accuracy vs time)",
                       "time_s", "test_accuracy", results,
                       &core::RunResult::accuracy_vs_time);

    // Time to a common accuracy level, NetMax speedup (paper: 1.9-2.1x).
    double target = 1.0;
    for (const auto& entry : results) {
      target = std::min(
          target, ml::FinalValue(entry.result.accuracy_vs_time));
    }
    target *= 0.98;
    TablePrinter table({"algorithm", "time_to_acc_s", "netmax_speedup"});
    const auto netmax_time = ml::TimeToThresholdAbove(
        results.back().result.accuracy_vs_time, target);
    for (const auto& entry : results) {
      const auto time =
          ml::TimeToThresholdAbove(entry.result.accuracy_vs_time, target);
      const double seconds =
          time.value_or(entry.result.total_virtual_seconds);
      table.AddRow({entry.name, Fmt(seconds, 1),
                    Fmt(netmax_time.has_value() && *netmax_time > 0.0
                            ? seconds / *netmax_time
                            : 0.0,
                        2)});
    }
    std::cout << "\n== Fig. 19 speedups (" << profile.name << ", accuracy "
              << Fmt(100.0 * target, 1) << "%) ==\n";
    table.Print(std::cout);
    table.PrintCsv(std::cout, "fig19_speedups_" + profile.name);
  }
  return Status::Ok();
}

}  // namespace
}  // namespace netmax

int main(int argc, char** argv) {
  return netmax::bench::BenchMain(argc, argv, [] { return netmax::Run(); });
}
