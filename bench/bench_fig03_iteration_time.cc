// Figure 3: average iteration time for intra-machine (fast) vs inter-machine
// (slow) communication, ResNet18 and VGG19, under the iteration law
// t_{i,m} = max{C_i, N_{i,m}} of Section II-B.
//
// Paper values (1000 Mbps Ethernet, RTX 2080 Ti):
//   ResNet18: ~0.2 s intra, ~0.75 s inter;  VGG19: ~0.5 s intra, ~2.0 s inter
// (inter up to ~4x intra).

#include <algorithm>
#include <iostream>

#include "bench/bench_util.h"

#include "common/table.h"
#include "ml/model_profile.h"
#include "net/cluster.h"

namespace netmax {
namespace {

double IterationSeconds(const ml::ModelProfile& profile,
                        const net::LinkClass& link) {
  return std::max(profile.compute_seconds,
                  link.TransferSeconds(profile.message_bytes()));
}

Status Run() {
  const net::LinkClass intra = net::IntraMachineLinkClass();
  const net::LinkClass inter = net::InterMachineLinkClass();
  TablePrinter table(
      {"model", "intra_machine_s", "inter_machine_s", "inter_over_intra"});
  for (const ml::ModelProfile& profile :
       {ml::ResNet18Profile(), ml::Vgg19Profile()}) {
    const double fast = IterationSeconds(profile, intra);
    const double slow = IterationSeconds(profile, inter);
    table.AddRow({profile.name, Fmt(fast, 3), Fmt(slow, 3),
                  Fmt(slow / fast, 2)});
  }
  std::cout << "\n== Fig. 3: intra vs inter-machine iteration time ==\n";
  table.Print(std::cout);
  table.PrintCsv(std::cout, "fig03_iteration_time");
  return Status::Ok();
}

}  // namespace
}  // namespace netmax

int main(int argc, char** argv) {
  return netmax::bench::BenchMain(argc, argv, [] { return netmax::Run(); });
}
