#ifndef NETMAX_BENCH_BENCH_UTIL_H_
#define NETMAX_BENCH_BENCH_UTIL_H_

// Shared plumbing for the reproduction benches. Every bench binary prints the
// rows/series of one paper table or figure: a human-readable aligned table
// plus a "#CSV <name> ... #END" block for scraping. Independent experiment
// runs execute in parallel on a thread pool, and each run additionally
// parallelizes its own per-worker compute via the two-phase simulation
// runtime (bit-identical to serial dispatch at any thread count; the machine
// budget is split between concurrent runs).

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/experiment.h"
#include "ml/metrics.h"

namespace netmax::bench {

// Parses bench command-line flags; call first from the main() of every
// figure/table bench (bench_micro_substrates is Google-Benchmark-driven and
// uses its own flags instead). Recognized flags:
//   --smoke              shrink experiments (corpus, epochs, policy
//                        refinement) so the bench finishes in seconds; CI
//                        runs benches this way.
//   --threads=N          per-run simulation threads (overrides
//                        ExperimentConfig::threads for every run; N=1 forces
//                        the serial dispatch, results are bit-identical
//                        either way).
//   --shards=N           intra-worker gradient shard tasks (overrides
//                        ExperimentConfig::shards; 0 = auto from the per-run
//                        thread budget, results are bit-identical for any
//                        value).
//   --backend=K          execution backend: serial | speculative | async |
//                        process (overrides ExperimentConfig::backend;
//                        results are bit-identical for every backend).
//   --reorder-window=N   async backend's in-flight compute bound (overrides
//                        ExperimentConfig::reorder_window; 0 = synchronous).
//   --procs=N            process backend's forked gradient-compute children
//                        (overrides ExperimentConfig::procs; 0 = one per
//                        hardware core; results are bit-identical for any
//                        value).
//   --checkpoint-at=S    arm a checkpoint S virtual seconds into every run
//                        (overrides ExperimentConfig::checkpoint_at_seconds;
//                        pair with --checkpoint-path).
//   --checkpoint-path=P  checkpoint file prefix: each run writes
//                        P.b<batch>.<run name> (sanitized), where <batch>
//                        numbers the bench's RunAlgorithms/RunConfigs calls,
//                        so several parallel runs — and several panels using
//                        the same algorithm names — keep their checkpoints
//                        apart.
//   --restore-path=P     start every run from its P.b<batch>.<run name>
//                        checkpoint instead of from scratch.
//   --faults=SPEC        inject a deterministic worker-lifecycle fault
//                        schedule into every run (ExperimentConfig::faults).
//                        SPEC is either the scripted grammar of
//                        net::FaultSchedule::Parse — e.g.
//                        "slow@2+6x4:w1;leave@4:w2;join@9:w2" — or "seed:K"
//                        for a seed-derived churn/straggler mix
//                        (FaultSchedule::FromSeed with the run's worker
//                        count). Results stay bit-identical across backends,
//                        threads, and shards for any schedule.
//   --peer-policy=P      how engines treat a dead or stalled peer: "wait"
//                        (block and re-probe; the paper's synchronous
//                        semantics) or "timeout" (degrade after
//                        ExperimentConfig::peer_timeout_seconds and
//                        continue without the peer).
//   --checkpoint-every=S arm the periodic checkpoint cadence: every S
//                        virtual seconds each run rewrites its
//                        P.b<batch>.<run name> file (plus a rotating .t<k>
//                        history; pair with --checkpoint-path). This is the
//                        crash-recovery workflow: a crash@T fault halts the
//                        run, and --restore-path resumes from the newest
//                        periodic checkpoint bit-identically.
//   --adaptive-window    let the async backend re-size its reorder window at
//                        runtime from stall/backpressure counters
//                        (ExperimentConfig::adaptive_reorder_window; results
//                        are bit-identical either way).
//   --event-queue=K      simulator event-queue backend: vector | heap |
//                        calendar | pairing (overrides
//                        ExperimentConfig::event_queue; pop order — and
//                        therefore every result — is bit-identical for all
//                        four; they differ only in real-machine cost, see
//                        bench_scale_frontier).
//   --workers=N          simulated worker count (overrides
//                        ExperimentConfig::num_workers; N >= 2). Applied
//                        before a seed-derived --faults=seed:K schedule is
//                        resolved, so the churn mix targets the overridden
//                        fleet.
//   --topology=SPEC      gossip topology: "complete" or "hier:<cluster_size>"
//                        for the hierarchical clusters-of-clusters graph
//                        (overrides ExperimentConfig::topology; see
//                        net/topology.h).
//   --compress=SPEC      gradient compression: "none", "topk:<frac>",
//                        "int8", or "layerwise:<period>" (overrides
//                        ExperimentConfig::compress; see ml/compression.h).
//                        Results for a given spec are bit-identical across
//                        backends, threads, shards, and reorder windows.
// Every flag has a NETMAX_* environment fallback (see PrintUsage in
// bench_util.cc for the single authoritative list); an explicit flag wins
// over its environment variable.
//
// Returns true to proceed, false when --help was printed (the caller should
// exit 0), and kInvalidArgument — naming the offending flag — on an unknown
// flag or a malformed value (--threads=4x, --backend=asink), so typos don't
// silently run the full bench on the wrong configuration. Never exits or
// aborts; BenchMain below turns the outcome into the process exit code.
StatusOr<bool> InitBench(int argc, char** argv);

// The standard fallible-bench main: parses flags via InitBench, runs `body`,
// and maps the outcomes to exit codes — 0 on success (or --help), 2 with the
// error and usage on stderr for flag errors, 2 with the error on stderr when
// `body` fails. The only place a bench process turns a Status into an exit
// code:
//   int main(int argc, char** argv) {
//     return netmax::bench::BenchMain(argc, argv, [] { return netmax::Run(); });
//   }
int BenchMain(int argc, char** argv, const std::function<Status()>& body);

// The --threads/NETMAX_THREADS override, or -1 when unset.
int ThreadsOverride();

// The --shards/NETMAX_SHARDS override, or -1 when unset.
int ShardsOverride();

// The --reorder-window/NETMAX_REORDER_WINDOW override, or -1 when unset.
// (The --backend override has no accessor: benches that run experiments by
// hand pin their backends per leg — bench_scale32 compares all three — and
// RunAlgorithms/RunConfigs apply the override internally.)
int ReorderWindowOverride();

// The --procs/NETMAX_PROCS override, or -1 when unset.
int ProcsOverride();

// The --workers/NETMAX_WORKERS override, or -1 when unset.
int WorkersOverride();

// True once InitBench has seen --smoke (or NETMAX_SMOKE=1 in the
// environment). RunAlgorithms/RunConfigs apply the shrink to their configs
// at execution time — after any per-bench overrides — so benches only need
// this (and MaybeApplySmoke) when they run experiments by hand.
bool SmokeMode();

// Applies the smoke-mode shrink to `config` in place (no-op unless
// SmokeMode()). Exposed for benches that run experiments without
// RunAlgorithms/RunConfigs.
void MaybeApplySmoke(core::ExperimentConfig& config);

struct NamedResult {
  std::string name;
  core::RunResult result;
};

// Runs the registry algorithms named in `names` on `config`, in parallel;
// results come back in input order. Returns the first failure — an unknown
// name (kNotFound) or a failed run, prefixed with the run's name — with no
// partial results.
StatusOr<std::vector<NamedResult>> RunAlgorithms(
    const std::vector<std::string>& names,
    const core::ExperimentConfig& config);

// Runs one registry algorithm per config variant (paired by index).
StatusOr<std::vector<NamedResult>> RunConfigs(
    const std::string& algorithm,
    const std::vector<core::ExperimentConfig>& configs,
    const std::vector<std::string>& labels);

// Downsamples `series` to at most `max_points` evenly spaced points
// (always keeps the last point).
ml::Series Downsample(const ml::Series& series, int max_points);

// Prints one column per result: the chosen series downsampled onto its own
// x values. Layout: blocks of "algo, x, y" rows (long format), which is what
// the paper's curves digitize to.
void PrintSeries(std::ostream& os, const std::string& title,
                 const std::string& x_label, const std::string& y_label,
                 const std::vector<NamedResult>& results,
                 ml::Series core::RunResult::* series, int max_points = 12);

// Loss threshold that every run in `results` reaches: slightly above the
// largest of the per-run minimum losses.
double CommonLossThreshold(const std::vector<NamedResult>& results);

// Virtual seconds for `result` to first reach `loss_threshold`; falls back to
// the total runtime if never reached (should not happen with
// CommonLossThreshold).
double ConvergenceSeconds(const core::RunResult& result,
                          double loss_threshold);

// Prints time-to-threshold and the speedup of the *last* entry (NetMax by
// convention) over every other entry — the paper's "3.7x over Prague" rows.
void PrintSpeedups(std::ostream& os, const std::string& title,
                   const std::vector<NamedResult>& results);

// Prints the per-epoch computation/communication cost split (Fig. 5/6 bars).
void PrintEpochCostSplit(std::ostream& os, const std::string& title,
                         const std::vector<NamedResult>& results);

// Prints the execution-backend health table for `results`: backend, frontier
// or window batches, speculated / re-dispatched / inline-recomputed compute
// halves, and the async window's stall/backpressure counters. When any run
// reports fault or adaptive-window activity (window_resizes,
// faults_injected, rounds_degraded, peers_timed_out), four extra columns
// carry those counters; fault-free batches suppress the all-zero columns so
// their stderr table keeps the exact pre-fault shape. Likewise, when any run
// compressed its gradients (bytes_saved != 0), three extra columns report
// messages / bytes_sent / bytes_saved; uncompressed batches suppress them so
// existing benches' stderr tables are unchanged. RunAlgorithms and
// RunConfigs emit this to stderr after every batch of runs (so speculation
// health is visible without a Debug rebuild) — stderr, because the counters
// vary with the {threads, backend} execution point while the benches' stdout
// must stay byte-identical across all of them (the CI determinism lane
// diffs it).
void PrintExecutionDiagnostics(std::ostream& os,
                               const std::vector<NamedResult>& results);

// The paper's default Section V-A experiment: 8 workers, heterogeneous
// dynamic network, CIFAR10-sim, ResNet18 profile, paper hyper-parameters —
// scaled down (smaller synthetic corpus / epoch budget) to keep the full
// bench suite runnable in minutes. Override fields per bench as needed.
core::ExperimentConfig PaperBaseConfig();

// Section V-F non-uniform setup: 8 workers across exactly two servers with
// segment weights <1,1,1,1, 2,1,2,1> (second server holds more data) and
// per-worker batch size proportional to the segment count, step LR decay.
core::ExperimentConfig NonUniformConfig(const ml::SyntheticSpec& dataset,
                                        const ml::ModelProfile& profile);

}  // namespace netmax::bench

#endif  // NETMAX_BENCH_BENCH_UTIL_H_
