// Figure 16 (Appendix F): ResNet18 on CIFAR10-sim with non-uniform data
// partitioning; loss vs epoch (a) and vs time (b).
//
// Paper shape: the 10-class problem is easy enough that all approaches share
// nearly the same per-epoch convergence; per-time NetMax leads.

#include <iostream>

#include "bench/bench_util.h"
#include "algos/registry.h"
#include "ml/model_profile.h"

namespace netmax {
namespace {

Status Run() {
  const core::ExperimentConfig config =
      bench::NonUniformConfig(ml::Cifar10SimSpec(), ml::ResNet18Profile());
  NETMAX_ASSIGN_OR_RETURN(const auto results, bench::RunAlgorithms(algos::PaperComparisonAlgorithms(), config));
  bench::PrintSeries(std::cout, "Fig. 16a (CIFAR10-sim, loss vs epoch)",
                     "epoch", "train_loss", results,
                     &core::RunResult::loss_vs_epoch);
  bench::PrintSeries(std::cout, "Fig. 16b (CIFAR10-sim, loss vs time)",
                     "time_s", "train_loss", results,
                     &core::RunResult::loss_vs_time);
  bench::PrintSpeedups(std::cout, "Fig. 16 speedups", results);
  return Status::Ok();
}

}  // namespace
}  // namespace netmax

int main(int argc, char** argv) {
  return netmax::bench::BenchMain(argc, argv, [] { return netmax::Run(); });
}
