// Figure 18 (Appendix F): MobileNet on MNIST-sim under the extreme non-IID
// label-removal distribution of Table IV; loss vs iterations (a) and vs
// time (b).
//
// Paper shape: NetMax's per-epoch convergence is somewhat slower (non-IID
// shards + adaptive selection), but per wall-clock it achieves about
// 2.45x / 2.35x / 1.39x speedup over Prague / Allreduce / AD-PSGD.

#include <iostream>

#include "bench/bench_util.h"
#include "algos/registry.h"
#include "ml/model_profile.h"

namespace netmax {
namespace {

Status Run() {
  core::ExperimentConfig config = bench::PaperBaseConfig();
  config.dataset = ml::MnistSimSpec();
  config.dataset.num_train = 4096;
  config.profile = ml::MobileNetProfile();
  config.num_workers = 8;
  config.two_server_placement = true;
  config.partition = core::PartitionScheme::kLostLabels;
  config.lost_labels = ml::MnistLostLabels();  // Table IV
  config.batch_size = 32;                      // paper Section V-F
  config.learning_rate = 0.05;
  config.max_epochs = 24;
  NETMAX_ASSIGN_OR_RETURN(const auto results, bench::RunAlgorithms(algos::PaperComparisonAlgorithms(), config));
  bench::PrintSeries(std::cout, "Fig. 18a (MNIST-sim non-IID, loss vs epoch)",
                     "epoch", "train_loss", results,
                     &core::RunResult::loss_vs_epoch);
  bench::PrintSeries(std::cout, "Fig. 18b (MNIST-sim non-IID, loss vs time)",
                     "time_s", "train_loss", results,
                     &core::RunResult::loss_vs_time);
  bench::PrintSpeedups(std::cout, "Fig. 18 speedups", results);
  return Status::Ok();
}

}  // namespace
}  // namespace netmax

int main(int argc, char** argv) {
  return netmax::bench::BenchMain(argc, argv, [] { return netmax::Run(); });
}
