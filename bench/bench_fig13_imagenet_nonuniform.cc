// Figure 13: ResNet50 on ImageNet-sim with non-uniform data partitioning —
// 16 workers on two servers, 20 data segments with the second server's
// workers holding <2,1,2,1,2,1,2,1> segments. Loss vs epoch (a) and loss vs
// time (b).
//
// Paper shape: per-epoch curves overlap; per-time NetMax converges much
// faster than Prague / Allreduce / AD-PSGD.

#include <iostream>

#include "bench/bench_util.h"
#include "algos/registry.h"
#include "ml/model_profile.h"

namespace netmax {
namespace {

Status Run() {
  core::ExperimentConfig config = bench::PaperBaseConfig();
  config.dataset = ml::ImageNetSimSpec();
  // Scaled-down corpus so the full bench suite stays fast; class structure
  // (1000 classes) is preserved.
  config.dataset.num_train = 8000;
  config.dataset.num_test = 1000;
  config.profile = ml::ResNet50Profile();
  config.num_workers = 16;
  config.two_server_placement = true;
  config.partition = core::PartitionScheme::kSegments;
  config.segments = {1, 1, 1, 1, 1, 1, 1, 1, 2, 1, 2, 1, 2, 1, 2, 1};
  config.batch_size = 16;
  config.hidden_layers = {48};
  config.max_epochs = 16;
  config.lr_milestones = {10};  // paper: decay at epoch 40 of 75
  NETMAX_ASSIGN_OR_RETURN(const auto results, bench::RunAlgorithms(algos::PaperComparisonAlgorithms(), config));
  bench::PrintSeries(std::cout, "Fig. 13a (ImageNet-sim, loss vs epoch)",
                     "epoch", "train_loss", results,
                     &core::RunResult::loss_vs_epoch);
  bench::PrintSeries(std::cout, "Fig. 13b (ImageNet-sim, loss vs time)",
                     "time_s", "train_loss", results,
                     &core::RunResult::loss_vs_time);
  bench::PrintSpeedups(std::cout, "Fig. 13 speedups", results);
  return Status::Ok();
}

}  // namespace
}  // namespace netmax

int main(int argc, char** argv) {
  return netmax::bench::BenchMain(argc, argv, [] { return netmax::Run(); });
}
