// Figure 6: average epoch time split (computation vs communication), 8
// workers on the homogeneous network (single server, 10 Gbps virtual switch),
// ResNet18 (a) and VGG19 (b).
//
// Paper shape: computation cost unchanged vs Fig. 5; communication cost much
// lower than on the heterogeneous network; NetMax and AD-PSGD (one pull per
// iteration) clearly below Prague and Allreduce (multi-node averaging).

#include <iostream>

#include "bench/bench_util.h"
#include "algos/registry.h"
#include "ml/model_profile.h"

namespace netmax {
namespace {

Status Run() {
  for (const auto& profile : {ml::ResNet18Profile(), ml::Vgg19Profile()}) {
    core::ExperimentConfig config = bench::PaperBaseConfig();
    config.network = core::NetworkScenario::kHomogeneous;
    config.profile = profile;
    config.max_epochs = 12;
    NETMAX_ASSIGN_OR_RETURN(const auto results, bench::RunAlgorithms(algos::PaperComparisonAlgorithms(), config));
    bench::PrintEpochCostSplit(
        std::cout, "Fig. 6 (" + profile.name + ", homogeneous)", results);
  }
  return Status::Ok();
}

}  // namespace
}  // namespace netmax

int main(int argc, char** argv) {
  return netmax::bench::BenchMain(argc, argv, [] { return netmax::Run(); });
}
