// Ablation beyond the paper: how much does Algorithm 3's convergence-aware
// LP objective buy over simpler policy heuristics, and how does the K x R
// grid resolution trade objective quality against generation latency?
//
// All strategies are scored with the same model: T_conv = t_bar * ln(eps) /
// ln(lambda_2(Y_P)) evaluated on the true iteration-time matrix (uniform
// p_i = 1/M where applicable). Strategies:
//   uniform        — AD-PSGD style, p_{i,m} = 1/(M-1)
//   greedy-fastest — all mass on each node's fastest link
//   inverse-time   — p_{i,m} proportional to 1/t_{i,m}
//   netmax-lp      — Algorithm 3
// Heuristics routinely fail outright (lambda_2 -> 1 when the induced gossip
// matrix mixes too slowly or unevenly), which is exactly why the LP keeps
// strictly positive, balanced mass on every link (Eqs. 10-11).

#include <chrono>
#include <cmath>
#include <iostream>

#include "bench/bench_util.h"

#include "common/random.h"
#include "common/table.h"
#include "core/policy_generator.h"
#include "linalg/eigen.h"

namespace netmax {
namespace {

using core::CommunicationPolicy;

constexpr double kEpsilon = 0.01;
constexpr double kAlpha = 0.1;

linalg::Matrix HeterogeneousTimes(int n, uint64_t seed) {
  Rng rng(seed);
  linalg::Matrix t(n, n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int m = i + 1; m < n; ++m) {
      double v = rng.Uniform(0.2, 0.6);
      if (rng.Bernoulli(0.25)) v *= rng.Uniform(5.0, 40.0);  // slow links
      t(i, m) = v;
      t(m, i) = v;
    }
  }
  return t;
}

// Scores a hand-built policy with rho chosen like NetMax's initial rho
// (coefficient 0.3 spread over the neighbors).
double ScorePolicy(const CommunicationPolicy& policy,
                   const net::Topology& topo, const linalg::Matrix& times,
                   double rho) {
  const int n = topo.num_nodes();
  auto probs_or = GlobalStepProbabilities(times, policy, topo);
  if (!probs_or.ok()) return std::numeric_limits<double>::infinity();
  auto y = BuildNetMaxY(policy, topo, kAlpha, rho, *probs_or,
                        /*allow_overshoot=*/true);
  if (!y.ok()) return std::numeric_limits<double>::infinity();
  auto lambda2 = linalg::SecondLargestEigenvalue(*y);
  if (!lambda2.ok() || lambda2.value() >= 1.0 - 1e-12) {
    return std::numeric_limits<double>::infinity();
  }
  // Global average step time under this policy (Eq. 10 generalized: slowest
  // node paces the pipeline).
  double t_bar = 0.0;
  for (int i = 0; i < n; ++i) {
    t_bar = std::max(t_bar, AverageIterationTime(times, policy, topo, i) / n);
  }
  if (lambda2.value() <= 0.0) return t_bar;
  return t_bar * std::log(kEpsilon) / std::log(lambda2.value());
}

void CompareStrategies(int n, uint64_t seed) {
  const net::Topology topo = net::Topology::Complete(n);
  const linalg::Matrix times = HeterogeneousTimes(n, seed);
  const double rho = 0.3 / (kAlpha * (n - 1));

  TablePrinter table({"strategy", "modelled_T_conv_s"});

  // uniform
  table.AddRow({"uniform",
                Fmt(ScorePolicy(CommunicationPolicy::Uniform(topo), topo,
                                times, rho),
                    1)});
  // greedy-fastest
  {
    linalg::Matrix p(n, n, 0.0);
    for (int i = 0; i < n; ++i) {
      int best = -1;
      for (int m : topo.Neighbors(i)) {
        if (best < 0 || times(i, m) < times(i, best)) best = m;
      }
      p(i, best) = 1.0;
    }
    const double score =
        ScorePolicy(CommunicationPolicy(std::move(p)), topo, times, rho);
    table.AddRow({"greedy-fastest",
                  std::isinf(score) ? "inf (no consensus)" : Fmt(score, 1)});
  }
  // inverse-time
  {
    linalg::Matrix p(n, n, 0.0);
    for (int i = 0; i < n; ++i) {
      double total = 0.0;
      for (int m : topo.Neighbors(i)) total += 1.0 / times(i, m);
      for (int m : topo.Neighbors(i)) p(i, m) = (1.0 / times(i, m)) / total;
    }
    table.AddRow({"inverse-time",
                  Fmt(ScorePolicy(CommunicationPolicy(std::move(p)), topo,
                                  times, rho),
                      1)});
  }
  // netmax-lp at several grid resolutions (smoke: coarse grids only — the
  // K=R=16 sweep dominates this bench's runtime).
  const std::vector<int> grids = bench::SmokeMode()
                                     ? std::vector<int>{2, 4}
                                     : std::vector<int>{2, 4, 8, 16};
  for (int grid : grids) {
    core::PolicyGeneratorOptions options;
    options.alpha = kAlpha;
    options.epsilon = kEpsilon;
    options.outer_rounds = grid;
    options.inner_rounds = grid;
    core::PolicyGenerator generator(topo, options);
    const auto start = std::chrono::steady_clock::now();
    auto result = generator.Generate(times);
    const double millis =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (result.ok()) {
      table.AddRow({"netmax-lp K=R=" + Fmt(grid) + " (" + Fmt(millis, 1) +
                        " ms)",
                    Fmt(result->expected_convergence_seconds, 1)});
    } else {
      table.AddRow({"netmax-lp K=R=" + Fmt(grid), "infeasible"});
    }
  }

  std::cout << "\n== Policy-strategy ablation (M=" << n << ", seed=" << seed
            << ") ==\n";
  table.Print(std::cout);
  table.PrintCsv(std::cout, "ablation_policy_M" + Fmt(n) + "_s" +
                                Fmt(static_cast<int64_t>(seed)));
}

}  // namespace
}  // namespace netmax

int main(int argc, char** argv) {
  return netmax::bench::BenchMain(argc, argv, [] {
    netmax::CompareStrategies(8, 1);
    if (!netmax::bench::SmokeMode()) {
      netmax::CompareStrategies(8, 2);
      netmax::CompareStrategies(16, 1);
    }
    return netmax::Status::Ok();
  });
}
