// Figure 7: source of NetMax's performance improvement. Average epoch time of
// four NetMax variants on the heterogeneous network:
//   setting 1: serial execution + uniform probabilities   (baseline)
//   setting 2: parallel execution + uniform probabilities (overlap only)
//   setting 3: serial execution + adaptive probabilities  (policy only)
//   setting 4: parallel execution + adaptive probabilities (full NetMax)
//
// Paper shape (ResNet18/VGG19): adaptive probabilities contribute most of the
// gain (54s -> 30.3s and 100.5s -> 55.4s serial->serial+adaptive); the
// overlap adds a small extra improvement because gradient compute is much
// shorter than communication.

#include <iostream>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/table.h"
#include "core/netmax_engine.h"
#include "ml/model_profile.h"

namespace netmax {
namespace {

Status Run() {
  struct Variant {
    bool overlap;
    bool adaptive;
  };
  const std::vector<Variant> variants = {
      {false, false}, {true, false}, {false, true}, {true, true}};

  for (const auto& profile : {ml::ResNet18Profile(), ml::Vgg19Profile()}) {
    core::ExperimentConfig config = bench::PaperBaseConfig();
    config.profile = profile;
    config.max_epochs = 12;
    // This bench runs NetMaxVariantAlgorithm by hand (no RunAlgorithms), so
    // the smoke shrink must be applied explicitly, after the overrides.
    bench::MaybeApplySmoke(config);
    TablePrinter table({"setting", "avg_epoch_time_s"});
    for (const Variant& variant : variants) {
      core::NetMaxVariantAlgorithm algorithm(variant.overlap,
                                             variant.adaptive);
      NETMAX_ASSIGN_OR_RETURN(const core::RunResult result,
                              algorithm.Run(config));
      table.AddRow({result.algorithm,
                    Fmt(result.avg_epoch_cost.total_seconds(), 2)});
    }
    std::cout << "\n== Fig. 7: NetMax ablation (" << profile.name << ") ==\n";
    table.Print(std::cout);
    table.PrintCsv(std::cout, "fig07_ablation_" + profile.name);
  }
  return Status::Ok();
}

}  // namespace
}  // namespace netmax

int main(int argc, char** argv) {
  return netmax::bench::BenchMain(argc, argv, [] { return netmax::Run(); });
}
