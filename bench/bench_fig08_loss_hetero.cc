// Figure 8: training loss vs wall time, 8 workers, heterogeneous network,
// ResNet18 (a) and VGG19 (b) on CIFAR10-sim.
//
// Paper shape: NetMax converges fastest; speedups at equal loss of about
// 3.7x / 3.4x / 1.9x over Prague / Allreduce / AD-PSGD for ResNet18 and
// 2.8x / 2.2x / 1.7x for VGG19.

#include <iostream>

#include "bench/bench_util.h"
#include "algos/registry.h"
#include "ml/model_profile.h"

namespace netmax {
namespace {

Status Run() {
  for (const auto& profile : {ml::ResNet18Profile(), ml::Vgg19Profile()}) {
    core::ExperimentConfig config = bench::PaperBaseConfig();
    config.profile = profile;
    NETMAX_ASSIGN_OR_RETURN(const auto results, bench::RunAlgorithms(algos::PaperComparisonAlgorithms(), config));
    const std::string title = "Fig. 8 (" + profile.name + ", heterogeneous)";
    bench::PrintSeries(std::cout, title, "time_s", "train_loss", results,
                       &core::RunResult::loss_vs_time);
    bench::PrintSpeedups(std::cout, title + " speedups", results);
  }
  return Status::Ok();
}

}  // namespace
}  // namespace netmax

int main(int argc, char** argv) {
  return netmax::bench::BenchMain(argc, argv, [] { return netmax::Run(); });
}
