// Micro-benchmarks (google-benchmark) for the substrates on NetMax's hot
// paths: the symmetric eigensolver and the policy LP (called K*R times per
// monitor tick), full Algorithm 3 policy generation, the event simulator, and
// one training step of the MLP proxy.

#include <benchmark/benchmark.h>

#include "algos/registry.h"
#include "common/random.h"
#include "core/experiment.h"
#include "core/policy_generator.h"
#include "linalg/blas.h"
#include "linalg/eigen.h"
#include "linalg/matrix.h"
#include "linalg/simplex.h"
#include "ml/conv_net.h"
#include "ml/dataset.h"
#include "ml/linear_model.h"
#include "common/thread_pool.h"
#include "ml/metrics.h"
#include "ml/mlp.h"
#include "ml/sharding.h"
#include "ml/workspace.h"
#include "net/event_sim.h"
#include "tests/reference_impls.h"

namespace netmax {
namespace {

linalg::Matrix RandomMatrix(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  linalg::Matrix a(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) a(r, c) = rng.Gaussian();
  }
  return a;
}

linalg::Matrix RandomSymmetric(int n, uint64_t seed) {
  Rng rng(seed);
  linalg::Matrix a(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = r; c < n; ++c) {
      const double v = rng.Gaussian();
      a(r, c) = v;
      a(c, r) = v;
    }
  }
  return a;
}

linalg::Matrix RandomTimes(int n, uint64_t seed) {
  Rng rng(seed);
  linalg::Matrix t(n, n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int m = i + 1; m < n; ++m) {
      const double v = rng.Uniform(0.2, 2.0);
      t(i, m) = v;
      t(m, i) = v;
    }
  }
  return t;
}

void BM_JacobiEigen(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const linalg::Matrix a = RandomSymmetric(n, 1);
  for (auto _ : state) {
    auto result = linalg::JacobiEigenSymmetric(a);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_JacobiEigen)->Arg(8)->Arg(16)->Arg(32);

void BM_PolicyLp(benchmark::State& state) {
  // The Eq. (14) LP for a complete graph of M nodes, via the generator's
  // single-(rho, t_bar) path: approximated by a 1x1 grid.
  const int n = static_cast<int>(state.range(0));
  net::Topology topo = net::Topology::Complete(n);
  core::PolicyGeneratorOptions options;
  options.alpha = 0.1;
  options.outer_rounds = 1;
  options.inner_rounds = 1;
  core::PolicyGenerator generator(topo, options);
  const linalg::Matrix times = RandomTimes(n, 2);
  for (auto _ : state) {
    auto result = generator.Generate(times);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_PolicyLp)->Arg(8)->Arg(16);

void BM_PolicyGenerationFull(benchmark::State& state) {
  // Full Algorithm 3 with the paper-scale grid (K = R = 8): what the monitor
  // pays every Ts = 2 minutes.
  const int n = static_cast<int>(state.range(0));
  net::Topology topo = net::Topology::Complete(n);
  core::PolicyGeneratorOptions options;
  options.alpha = 0.1;
  options.outer_rounds = 8;
  options.inner_rounds = 8;
  core::PolicyGenerator generator(topo, options);
  const linalg::Matrix times = RandomTimes(n, 3);
  for (auto _ : state) {
    auto result = generator.Generate(times);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_PolicyGenerationFull)->Arg(8)->Arg(16);

void BM_EventSimulatorThroughput(benchmark::State& state) {
  for (auto _ : state) {
    net::EventSimulator sim;
    int64_t count = 0;
    std::function<void()> tick = [&] {
      if (++count < 10000) sim.ScheduleAfter(1.0, tick);
    };
    sim.ScheduleAt(0.0, tick);
    sim.RunUntilIdle();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventSimulatorThroughput);

// Serial-vs-parallel dispatch of the 32-worker scaled scenario (the
// bench_scale32_parallel_runtime experiment at smoke size): Arg(1) is the
// legacy serial path, Arg(0) one thread per hardware core. Results are
// bit-identical; only real wall time may differ, which is exactly what this
// tracks across commits.
void BM_Scale32SimulationWall(benchmark::State& state) {
  core::ExperimentConfig config;
  config.num_workers = 32;
  config.hidden_layers = {96};
  config.dataset.num_train = 2048;
  config.dataset.num_test = 128;
  config.max_epochs = 2;
  config.network = core::NetworkScenario::kHeterogeneousDynamic;
  config.slowdown_period_seconds = 20.0;
  config.monitor_period_seconds = 8.0;
  config.generator.outer_rounds = 3;
  config.generator.inner_rounds = 3;
  config.seed = 5;
  config.threads = static_cast<int>(state.range(0));
  auto algorithm = algos::MakeAlgorithm("netmax");
  NETMAX_CHECK(algorithm.ok()) << algorithm.status();
  for (auto _ : state) {
    auto result = (*algorithm)->Run(config);
    NETMAX_CHECK(result.ok()) << result.status();
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Scale32SimulationWall)
    ->Arg(1)
    ->Arg(0)
    ->UseRealTime()  // the main thread blocks while the pool computes
    ->Unit(benchmark::kMillisecond);

// The same scenario through the multi-process backend: Arg is the forked
// child count (0 = one per hardware core). Tracks the fork + shared-memory
// ring dispatch overhead against BM_Scale32SimulationWall/1 (serial) across
// commits; on the single-core capture container the leg is report-only —
// children time-slicing one core cannot beat serial — but the ratio is the
// number that must not regress.
void BM_Scale32ProcessBackendWall(benchmark::State& state) {
  core::ExperimentConfig config;
  config.num_workers = 32;
  config.hidden_layers = {96};
  config.dataset.num_train = 2048;
  config.dataset.num_test = 128;
  config.max_epochs = 2;
  config.network = core::NetworkScenario::kHeterogeneousDynamic;
  config.slowdown_period_seconds = 20.0;
  config.monitor_period_seconds = 8.0;
  config.generator.outer_rounds = 3;
  config.generator.inner_rounds = 3;
  config.seed = 5;
  config.backend = core::ExecutionBackendKind::kProcessPool;
  config.procs = static_cast<int>(state.range(0));
  auto algorithm = algos::MakeAlgorithm("netmax");
  NETMAX_CHECK(algorithm.ok()) << algorithm.status();
  for (auto _ : state) {
    auto result = (*algorithm)->Run(config);
    NETMAX_CHECK(result.ok()) << result.status();
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Scale32ProcessBackendWall)
    ->Arg(2)
    ->Arg(0)
    ->UseRealTime()  // the parent blocks while children compute
    ->Unit(benchmark::kMillisecond);

void BM_MatrixMultiply(benchmark::State& state) {
  // The GEMM substrate (policy matrices, Y_P products).
  const int n = static_cast<int>(state.range(0));
  const linalg::Matrix a = RandomMatrix(n, n, 4);
  const linalg::Matrix b = RandomMatrix(n, n, 5);
  for (auto _ : state) {
    linalg::Matrix c = a.Multiply(b);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n * n);
}
BENCHMARK(BM_MatrixMultiply)->Arg(64)->Arg(128)->Arg(256);

void BM_MatrixApply(benchmark::State& state) {
  // The GEMV substrate (power iteration inside the spectral-gap check).
  const int n = static_cast<int>(state.range(0));
  const linalg::Matrix a = RandomMatrix(n, n, 6);
  std::vector<double> x(static_cast<size_t>(n), 1.0);
  for (auto _ : state) {
    std::vector<double> y = a.Apply(x);
    benchmark::DoNotOptimize(y);
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n);
}
BENCHMARK(BM_MatrixApply)->Arg(128)->Arg(256);

// Shared fixture data for the model substrates: CIFAR10-sim scale features
// (dim 32, 10 classes), batch 32 — the per-iteration workload of Algorithm 2.
ml::DatasetPair ModelBenchData() {
  ml::SyntheticSpec spec;
  spec.feature_dim = 32;
  spec.num_classes = 10;
  spec.num_train = 1024;
  spec.num_test = 512;
  return ml::GenerateSynthetic(spec);
}

void BM_MlpTrainingStep(benchmark::State& state) {
  ml::DatasetPair pair = ModelBenchData();
  ml::Mlp model({32, 32, 10});
  model.InitializeParameters(1);
  ml::BatchSampler sampler(&pair.train, 32, 2);
  std::vector<double> gradient(static_cast<size_t>(model.num_parameters()));
  for (auto _ : state) {
    const std::vector<int> batch = sampler.NextBatch();
    const double loss = model.LossAndGradient(pair.train, batch, gradient);
    benchmark::DoNotOptimize(loss);
  }
}
BENCHMARK(BM_MlpTrainingStep);

void BM_MlpForwardLoss(benchmark::State& state) {
  // Forward-only (loss without gradient): the epoch-loss / AverageLoss path.
  ml::DatasetPair pair = ModelBenchData();
  ml::Mlp model({32, 32, 10});
  model.InitializeParameters(1);
  ml::BatchSampler sampler(&pair.train, 32, 2);
  for (auto _ : state) {
    const std::vector<int> batch = sampler.NextBatch();
    const double loss = model.LossAndGradient(pair.train, batch, {});
    benchmark::DoNotOptimize(loss);
  }
}
BENCHMARK(BM_MlpForwardLoss);

void BM_ConvNetTrainingStep(benchmark::State& state) {
  ml::DatasetPair pair = ModelBenchData();
  ml::ConvNet model(32, 8, 5, 10);
  model.InitializeParameters(1);
  ml::BatchSampler sampler(&pair.train, 32, 2);
  std::vector<double> gradient(static_cast<size_t>(model.num_parameters()));
  for (auto _ : state) {
    const std::vector<int> batch = sampler.NextBatch();
    const double loss = model.LossAndGradient(pair.train, batch, gradient);
    benchmark::DoNotOptimize(loss);
  }
}
BENCHMARK(BM_ConvNetTrainingStep);

void BM_ShardedConvNetStep(benchmark::State& state) {
  // The intra-worker sharded gradient path (ml/sharding.h): the same batch
  // as BM_ConvNetTrainingStep evaluated as 4 concurrent shard tasks on a
  // 3-thread pool (+ caller), bit-identical to the serial step. On the
  // single-core container this measures the sharding overhead; on
  // multi-core hardware it measures the nested-parallel speedup.
  ml::DatasetPair pair = ModelBenchData();
  ml::ConvNet model(32, 8, 5, 10);
  model.InitializeParameters(1);
  ml::BatchSampler sampler(&pair.train, 32, 2);
  ThreadPool pool(3);
  ml::TrainingWorkspace workspace;
  std::vector<double> gradient(static_cast<size_t>(model.num_parameters()));
  for (auto _ : state) {
    const std::vector<int> batch = sampler.NextBatch();
    const double loss = ml::ShardedLossAndGradient(
        model, pair.train, batch, gradient, workspace, &pool, /*shards=*/4);
    benchmark::DoNotOptimize(loss);
  }
}
BENCHMARK(BM_ShardedConvNetStep);

void BM_LinearModelTrainingStep(benchmark::State& state) {
  ml::DatasetPair pair = ModelBenchData();
  ml::LinearModel model(32, 10);
  model.InitializeParameters(1);
  ml::BatchSampler sampler(&pair.train, 32, 2);
  std::vector<double> gradient(static_cast<size_t>(model.num_parameters()));
  for (auto _ : state) {
    const std::vector<int> batch = sampler.NextBatch();
    const double loss = model.LossAndGradient(pair.train, batch, gradient);
    benchmark::DoNotOptimize(loss);
  }
}
BENCHMARK(BM_LinearModelTrainingStep);

void BM_AccuracyEval(benchmark::State& state) {
  // The Finalize() / RecordGlobalEpochPoint() evaluation path: test accuracy
  // of one worker model over the full test set.
  ml::DatasetPair pair = ModelBenchData();
  ml::Mlp model({32, 32, 10});
  model.InitializeParameters(1);
  for (auto _ : state) {
    const double acc = ml::Accuracy(model, pair.test);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * pair.test.size());
}
BENCHMARK(BM_AccuracyEval);

void BM_MlpTrainingStepNaive(benchmark::State& state) {
  // The seed's per-sample allocating implementation (retained in
  // tests/reference_impls.h as the golden reference). Benchmarked here so the
  // naive-vs-workspace speedup is measured within one process run, immune to
  // machine-load drift between separate baseline captures.
  ml::DatasetPair pair = ModelBenchData();
  ml::Mlp model({32, 32, 10});
  model.InitializeParameters(1);
  ml::BatchSampler sampler(&pair.train, 32, 2);
  std::vector<double> gradient(static_cast<size_t>(model.num_parameters()));
  for (auto _ : state) {
    const std::vector<int> batch = sampler.NextBatch();
    const double loss =
        ml::reference::MlpLossAndGradient(model, pair.train, batch, gradient);
    benchmark::DoNotOptimize(loss);
  }
}
BENCHMARK(BM_MlpTrainingStepNaive);

void BM_ConvNetTrainingStepNaive(benchmark::State& state) {
  ml::DatasetPair pair = ModelBenchData();
  ml::ConvNet model(32, 8, 5, 10);
  model.InitializeParameters(1);
  ml::BatchSampler sampler(&pair.train, 32, 2);
  std::vector<double> gradient(static_cast<size_t>(model.num_parameters()));
  for (auto _ : state) {
    const std::vector<int> batch = sampler.NextBatch();
    const double loss = ml::reference::ConvNetLossAndGradient(
        model, pair.train, batch, gradient);
    benchmark::DoNotOptimize(loss);
  }
}
BENCHMARK(BM_ConvNetTrainingStepNaive);

void BM_GemmNaive(benchmark::State& state) {
  // The seed Matrix::Multiply loop (branch-per-element i-k-j), for the same
  // in-run comparison against the blocked kernel behind BM_MatrixMultiply.
  const int n = static_cast<int>(state.range(0));
  const linalg::Matrix a = RandomMatrix(n, n, 4);
  const linalg::Matrix b = RandomMatrix(n, n, 5);
  for (auto _ : state) {
    linalg::Matrix out(n, n);
    for (int r = 0; r < n; ++r) {
      for (int k = 0; k < n; ++k) {
        const double v = a(r, k);
        if (v == 0.0) continue;
        for (int c = 0; c < n; ++c) out(r, c) += v * b(k, c);
      }
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n * n);
}
BENCHMARK(BM_GemmNaive)->Arg(64)->Arg(128)->Arg(256);

void BM_MlpTrainingStepWorkspace(benchmark::State& state) {
  // The exact per-iteration hot path of ExperimentHarness: reusable batch
  // buffer + explicit per-worker workspace, zero allocations at steady state.
  ml::DatasetPair pair = ModelBenchData();
  ml::Mlp model({32, 32, 10});
  model.InitializeParameters(1);
  ml::BatchSampler sampler(&pair.train, 32, 2);
  ml::TrainingWorkspace workspace;
  std::vector<double> gradient(static_cast<size_t>(model.num_parameters()));
  std::vector<int> batch;
  for (auto _ : state) {
    sampler.NextBatch(batch);
    const double loss =
        model.LossAndGradient(pair.train, batch, gradient, workspace);
    benchmark::DoNotOptimize(loss);
  }
}
BENCHMARK(BM_MlpTrainingStepWorkspace);

void BM_GemmTransBKernel(benchmark::State& state) {
  // The inner-product GEMM variant at MLP-layer shape: (batch x in) * W^T
  // without a transposed copy. Tracked for comparison against the
  // Transpose + GemmBias form the model forward passes actually use.
  const int batch = 32;
  const int n = static_cast<int>(state.range(0));
  Rng rng(7);
  std::vector<double> a(static_cast<size_t>(batch) * n);
  std::vector<double> b(static_cast<size_t>(n) * n);
  std::vector<double> bias(static_cast<size_t>(n));
  std::vector<double> c(static_cast<size_t>(batch) * n);
  for (double& v : a) v = rng.Gaussian();
  for (double& v : b) v = rng.Gaussian();
  for (double& v : bias) v = rng.Gaussian();
  for (auto _ : state) {
    linalg::GemmTransB(batch, n, n, a.data(), n, b.data(), n, bias.data(),
                       c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * int64_t{batch} * n * n);
}
BENCHMARK(BM_GemmTransBKernel)->Arg(32)->Arg(128);

void BM_GemmAtBKernel(benchmark::State& state) {
  // The weight-gradient kernel: delta^T (out x batch) * input (batch x in).
  const int batch = 32;
  const int n = static_cast<int>(state.range(0));
  Rng rng(8);
  std::vector<double> a(static_cast<size_t>(batch) * n);
  std::vector<double> b(static_cast<size_t>(batch) * n);
  std::vector<double> c(static_cast<size_t>(n) * n, 0.0);
  for (double& v : a) v = rng.Gaussian();
  for (double& v : b) v = rng.Gaussian();
  for (auto _ : state) {
    linalg::GemmAtBAccumulate(batch, n, n, a.data(), n, b.data(), n, c.data(),
                              n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * int64_t{batch} * n * n);
}
BENCHMARK(BM_GemmAtBKernel)->Arg(32)->Arg(128);

}  // namespace
}  // namespace netmax

BENCHMARK_MAIN();
