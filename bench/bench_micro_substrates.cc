// Micro-benchmarks (google-benchmark) for the substrates on NetMax's hot
// paths: the symmetric eigensolver and the policy LP (called K*R times per
// monitor tick), full Algorithm 3 policy generation, the event simulator, and
// one training step of the MLP proxy.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "core/policy_generator.h"
#include "linalg/eigen.h"
#include "linalg/simplex.h"
#include "ml/dataset.h"
#include "ml/mlp.h"
#include "net/event_sim.h"

namespace netmax {
namespace {

linalg::Matrix RandomSymmetric(int n, uint64_t seed) {
  Rng rng(seed);
  linalg::Matrix a(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = r; c < n; ++c) {
      const double v = rng.Gaussian();
      a(r, c) = v;
      a(c, r) = v;
    }
  }
  return a;
}

linalg::Matrix RandomTimes(int n, uint64_t seed) {
  Rng rng(seed);
  linalg::Matrix t(n, n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int m = i + 1; m < n; ++m) {
      const double v = rng.Uniform(0.2, 2.0);
      t(i, m) = v;
      t(m, i) = v;
    }
  }
  return t;
}

void BM_JacobiEigen(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const linalg::Matrix a = RandomSymmetric(n, 1);
  for (auto _ : state) {
    auto result = linalg::JacobiEigenSymmetric(a);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_JacobiEigen)->Arg(8)->Arg(16)->Arg(32);

void BM_PolicyLp(benchmark::State& state) {
  // The Eq. (14) LP for a complete graph of M nodes, via the generator's
  // single-(rho, t_bar) path: approximated by a 1x1 grid.
  const int n = static_cast<int>(state.range(0));
  net::Topology topo = net::Topology::Complete(n);
  core::PolicyGeneratorOptions options;
  options.alpha = 0.1;
  options.outer_rounds = 1;
  options.inner_rounds = 1;
  core::PolicyGenerator generator(topo, options);
  const linalg::Matrix times = RandomTimes(n, 2);
  for (auto _ : state) {
    auto result = generator.Generate(times);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_PolicyLp)->Arg(8)->Arg(16);

void BM_PolicyGenerationFull(benchmark::State& state) {
  // Full Algorithm 3 with the paper-scale grid (K = R = 8): what the monitor
  // pays every Ts = 2 minutes.
  const int n = static_cast<int>(state.range(0));
  net::Topology topo = net::Topology::Complete(n);
  core::PolicyGeneratorOptions options;
  options.alpha = 0.1;
  options.outer_rounds = 8;
  options.inner_rounds = 8;
  core::PolicyGenerator generator(topo, options);
  const linalg::Matrix times = RandomTimes(n, 3);
  for (auto _ : state) {
    auto result = generator.Generate(times);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_PolicyGenerationFull)->Arg(8)->Arg(16);

void BM_EventSimulatorThroughput(benchmark::State& state) {
  for (auto _ : state) {
    net::EventSimulator sim;
    int64_t count = 0;
    std::function<void()> tick = [&] {
      if (++count < 10000) sim.ScheduleAfter(1.0, tick);
    };
    sim.ScheduleAt(0.0, tick);
    sim.RunUntilIdle();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventSimulatorThroughput);

void BM_MlpTrainingStep(benchmark::State& state) {
  ml::SyntheticSpec spec;
  spec.feature_dim = 32;
  spec.num_classes = 10;
  spec.num_train = 1024;
  spec.num_test = 1;
  ml::DatasetPair pair = ml::GenerateSynthetic(spec);
  ml::Mlp model({32, 32, 10});
  model.InitializeParameters(1);
  ml::BatchSampler sampler(&pair.train, 32, 2);
  std::vector<double> gradient(static_cast<size_t>(model.num_parameters()));
  for (auto _ : state) {
    const std::vector<int> batch = sampler.NextBatch();
    const double loss = model.LossAndGradient(pair.train, batch, gradient);
    benchmark::DoNotOptimize(loss);
  }
}
BENCHMARK(BM_MlpTrainingStep);

}  // namespace
}  // namespace netmax

BENCHMARK_MAIN();
