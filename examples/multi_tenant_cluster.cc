// Multi-tenant cluster scenario: watch the Network Monitor adapt the
// communication policy as link speeds change underneath the training job.
//
//   $ ./examples/multi_tenant_cluster
//
// This example drives the monitor/policy machinery directly (no training):
// it simulates the paper's Fig. 2 situation — the slow link moves at runtime
// — and prints worker 0's neighbor-selection probabilities before and after
// each change, showing the probability mass migrating off the slow link.

#include <iostream>

#include "common/logging.h"
#include "common/table.h"
#include "core/monitor.h"
#include "ml/model_profile.h"
#include "net/cluster.h"

int main() {
  namespace core = netmax::core;
  namespace net = netmax::net;

  const int num_workers = 5;
  const net::Topology topology = net::Topology::Complete(num_workers);

  core::MonitorOptions options;
  options.schedule_period_seconds = 120.0;
  options.generator.alpha = 0.1;
  options.generator.outer_rounds = 8;
  options.generator.inner_rounds = 8;
  core::NetworkMonitor monitor(topology, options);

  // Synthetic iteration-time matrices for two points in time, mirroring
  // Fig. 2: at T1 the link (3,1) is slow; at T2 links (3,2) and (3,4) are.
  auto base_times = [&] {
    netmax::linalg::Matrix t(num_workers, num_workers, 1.0);
    for (int i = 0; i < num_workers; ++i) t(i, i) = 0.0;
    return t;
  };
  netmax::linalg::Matrix t1 = base_times();
  t1(3, 1) = t1(1, 3) = 9.0;  // paper: t_{3,1} = 9
  netmax::linalg::Matrix t2 = base_times();
  t2(3, 1) = t2(1, 3) = 9.0;
  t2(3, 2) = t2(2, 3) = 12.0;  // paper: t_{3,2} becomes 12
  t2(3, 4) = t2(4, 3) = 12.0;  // paper: t_{3,4} becomes 12

  netmax::TablePrinter table({"network state", "p(3,1) slow", "p(3,2)",
                              "p(3,3) self", "p(0,1) fast pair", "rho",
                              "lambda2"});
  for (const auto& [label, times] :
       {std::pair{"T1: link 3-1 slow", &t1},
        std::pair{"T2: links 3-2 & 3-4 slow too", &t2}}) {
    auto policy = monitor.ComputePolicy(*times);
    NETMAX_CHECK_OK(policy.status());
    table.AddRow({label, netmax::Fmt(policy->policy.probability(3, 1), 3),
                  netmax::Fmt(policy->policy.probability(3, 2), 3),
                  netmax::Fmt(policy->policy.probability(3, 3), 3),
                  netmax::Fmt(policy->policy.probability(0, 1), 3),
                  netmax::Fmt(policy->rho, 3),
                  netmax::Fmt(policy->lambda2, 4)});
  }
  std::cout << "Adaptive policy under changing link speeds (paper Fig. 2)\n\n";
  table.Print(std::cout);
  std::cout
      << "\nUniform selection would put 0.25 on every link. The generated\n"
         "policy keeps only the mandatory minimum (Eq. 11) on node 3's slow\n"
         "links and parks the rest on p(3,3): node 3 communicates less often\n"
         "so its average iteration stays as fast as everyone else's (Eq. 10),\n"
         "while the all-fast nodes keep exchanging models among themselves.\n"
         "When more of node 3's links degrade at T2, its self-probability\n"
         "grows further — a static fast-link subgraph (SAPS-PSGD) could not\n"
         "react to that change.\n";
  return 0;
}
