// Quickstart: train a model with NetMax on a simulated heterogeneous cluster
// and compare against AD-PSGD.
//
//   $ ./examples/quickstart
//
// Eight workers share a synthetic 10-class problem (CIFAR10-sim). The
// cluster spans three servers; one link is slowed 2x-100x and re-drawn
// periodically, exactly like the paper's Section V-A testbed. NetMax's
// Network Monitor measures per-link iteration times and re-optimizes the
// communication policy, so training finishes in less (virtual) time.

#include <iostream>

#include "algos/registry.h"
#include "common/logging.h"
#include "common/table.h"
#include "core/experiment.h"

int main() {
  namespace core = netmax::core;

  // 1. Describe the experiment (see core/experiment.h for every knob).
  core::ExperimentConfig config;
  config.dataset = netmax::ml::Cifar10SimSpec();  // synthetic 10-class data
  config.num_workers = 8;
  config.network = core::NetworkScenario::kHeterogeneousDynamic;
  config.profile = netmax::ml::ResNet18Profile();  // byte/FLOP cost model
  config.max_epochs = 12;
  config.monitor_period_seconds = 30.0;
  config.seed = 42;
  // Parallel simulation runtime: 0 = one thread per hardware core (the
  // default). Results are bit-identical for any value — set 1 to force the
  // serial dispatch.
  config.threads = 0;

  // 2. Run NetMax and a baseline through the shared registry.
  netmax::TablePrinter table(
      {"algorithm", "virtual_time_s", "final_loss", "test_accuracy"});
  for (const std::string name : {"netmax", "adpsgd"}) {
    auto algorithm = netmax::algos::MakeAlgorithm(name);
    NETMAX_CHECK_OK(algorithm.status());
    auto result = (*algorithm)->Run(config);
    NETMAX_CHECK_OK(result.status());
    table.AddRow({result->algorithm,
                  netmax::Fmt(result->total_virtual_seconds, 1),
                  netmax::Fmt(result->final_train_loss, 3),
                  netmax::Fmt(100.0 * result->final_accuracy, 1) + "%"});
  }

  // 3. Inspect the outcome.
  std::cout << "NetMax vs AD-PSGD on a dynamic heterogeneous cluster\n\n";
  table.Print(std::cout);
  std::cout << "\nNetMax reaches the same epoch budget in less virtual time "
               "by steering pulls away from slow links.\n";
  return 0;
}
