// Geo-distributed training: six cloud regions, non-IID data (each region is
// missing some labels, Table VII), CPU-only instances — the paper's
// Appendix G scenario.
//
//   $ ./examples/geo_distributed
//
// Compares NetMax against AD-PSGD and both parameter-server baselines on the
// WAN link model (latency grows with distance; effective bandwidth shrinks).

#include <iostream>

#include "algos/registry.h"
#include "common/logging.h"
#include "common/table.h"
#include "core/experiment.h"
#include "net/cluster.h"

int main() {
  namespace core = netmax::core;

  core::ExperimentConfig config;
  config.dataset = netmax::ml::MnistSimSpec();
  config.dataset.num_train = 3072;
  config.profile = netmax::ml::MobileNetProfile();
  config.num_workers = 6;  // one per region
  config.network = core::NetworkScenario::kWan;
  config.partition = core::PartitionScheme::kLostLabels;
  config.lost_labels = netmax::ml::CloudRegionLostLabels();
  config.batch_size = 32;
  config.learning_rate = 0.05;
  config.compute_multiplier = 8.0;  // CPUs, not GPUs
  config.max_epochs = 10;
  config.monitor_period_seconds = 60.0;
  config.seed = 7;

  std::cout << "Training MobileNet-scale model across six regions:\n  ";
  for (const std::string& region : netmax::net::CloudRegionNames()) {
    std::cout << region << " ";
  }
  std::cout << "\n\n";

  netmax::TablePrinter table(
      {"algorithm", "virtual_time_s", "test_accuracy"});
  for (const std::string name : {"ps-sync", "ps-async", "adpsgd", "netmax"}) {
    auto algorithm = netmax::algos::MakeAlgorithm(name);
    NETMAX_CHECK_OK(algorithm.status());
    auto result = (*algorithm)->Run(config);
    NETMAX_CHECK_OK(result.status());
    table.AddRow({result->algorithm,
                  netmax::Fmt(result->total_virtual_seconds, 1),
                  netmax::Fmt(100.0 * result->final_accuracy, 1) + "%"});
  }
  table.Print(std::cout);
  std::cout << "\nPS-syn is paced by the farthest region every round; NetMax "
               "pulls mostly\nbetween nearby regions while the consensus step "
               "keeps all six in sync.\n";
  return 0;
}
