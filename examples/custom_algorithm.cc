// Extending the library: implement your own decentralized training algorithm
// against the public TrainingAlgorithm / ExperimentHarness API and benchmark
// it against NetMax on the same simulated cluster.
//
//   $ ./examples/custom_algorithm
//
// The toy algorithm below ("LazyGossip") only communicates every K-th
// iteration (local SGD with periodic pairwise averaging). It reuses the
// harness for data sharding, cost accounting, and metrics, so the comparison
// against the built-in algorithms is apples-to-apples — and it is written
// against the two-phase compute/commit event API, so it automatically runs
// its per-worker gradient work on the simulator's thread pool (threads knob
// on ExperimentConfig) with bit-identical results at any thread count. Note
// the three rules every engine follows: draw randomness at schedule time,
// keep the compute half pure, and NotifyStateWrite for every cross-worker
// parameter write in a commit.

#include <algorithm>
#include <iostream>
#include <memory>
#include <string>

#include "algos/registry.h"
#include "common/logging.h"
#include "common/table.h"
#include "core/experiment.h"

namespace {

namespace core = netmax::core;

// Local SGD with a pairwise averaging exchange every `period` iterations.
class LazyGossipAlgorithm : public core::TrainingAlgorithm {
 public:
  explicit LazyGossipAlgorithm(int period) : period_(period) {}

  std::string name() const override { return "LazyGossip"; }

  netmax::StatusOr<core::RunResult> Run(
      const core::ExperimentConfig& config) const override {
    core::ExperimentHarness harness(config, name());
    NETMAX_RETURN_IF_ERROR(harness.Init());
    for (int w = 0; w < harness.num_workers(); ++w) {
      StartIteration(harness, w);
    }
    harness.sim().RunUntilIdle();
    return harness.Finalize();
  }

 private:
  void StartIteration(core::ExperimentHarness& harness, int w) const {
    if (harness.WorkerDone(w)) return;
    core::WorkerRuntime& worker = harness.worker(w);
    const double compute = worker.compute_seconds_per_batch;
    const bool communicate = worker.iterations % period_ == period_ - 1;
    // Schedule time (commit context): draw the batch — and the peer, when
    // communicating — so the compute half stays pure.
    harness.SampleBatch(w);
    if (!communicate) {
      harness.sim().ScheduleComputeAfter(
          compute, w,
          [&harness, w] { return harness.EvalBatchGradient(w); },
          [&harness, w, compute, this](double loss) {
            harness.CommitBatchStats(w, loss);
            harness.ApplyStoredGradient(w);
            harness.AccountIteration(w, compute, compute);
            StartIteration(harness, w);
          });
      return;
    }
    // Communication round: pull a uniformly random peer; the gradient
    // computation overlaps the transfer.
    const auto& neighbors = harness.topology().Neighbors(w);
    const int m = neighbors[static_cast<size_t>(
        worker.rng.UniformInt(0, static_cast<int64_t>(neighbors.size()) - 1))];
    const double wall = std::max(compute, harness.PullSeconds(m, w));
    harness.sim().ScheduleComputeAfter(
        wall, w, [&harness, w] { return harness.EvalBatchGradient(w); },
        [&harness, w, m, compute, wall, this](double loss) {
          harness.CommitBatchStats(w, loss);
          harness.ApplyStoredGradient(w);
          // The pairwise averaging writes both endpoints: declare it so the
          // parallel runtime invalidates any speculation on them.
          harness.sim().NotifyStateWrite(w);
          harness.sim().NotifyStateWrite(m);
          auto x_i = harness.worker(w).model->parameters();
          auto x_m = harness.worker(m).model->parameters();
          for (size_t j = 0; j < x_i.size(); ++j) {
            const double mean = 0.5 * (x_i[j] + x_m[j]);
            x_i[j] = mean;
            x_m[j] = mean;
          }
          harness.AccountIteration(w, compute, wall);
          StartIteration(harness, w);
        });
  }

  int period_;
};

}  // namespace

int main() {
  core::ExperimentConfig config;
  config.dataset = netmax::ml::Cifar10SimSpec();
  config.num_workers = 8;
  config.network = core::NetworkScenario::kHeterogeneousDynamic;
  config.profile = netmax::ml::ResNet18Profile();
  config.max_epochs = 12;
  config.monitor_period_seconds = 30.0;
  config.seed = 3;

  netmax::TablePrinter table(
      {"algorithm", "virtual_time_s", "final_loss", "test_accuracy"});
  auto add_row = [&](const core::RunResult& result) {
    table.AddRow({result.algorithm,
                  netmax::Fmt(result.total_virtual_seconds, 1),
                  netmax::Fmt(result.final_train_loss, 3),
                  netmax::Fmt(100.0 * result.final_accuracy, 1) + "%"});
  };

  // Plug the custom algorithm into the shared registry so benches and
  // scripts can resolve it by name like any built-in.
  for (int period : {2, 8}) {
    const std::string name = "lazygossip-" + std::to_string(period);
    NETMAX_CHECK_OK(netmax::algos::RegisterAlgorithm(name, [period] {
      return std::make_unique<LazyGossipAlgorithm>(period);
    }));
    auto lazy = netmax::algos::MakeAlgorithm(name);
    NETMAX_CHECK_OK(lazy.status());
    auto result = (*lazy)->Run(config);
    NETMAX_CHECK_OK(result.status());
    result->algorithm += " (every " + std::to_string(period) + ")";
    add_row(*result);
  }
  auto netmax_algo = netmax::algos::MakeAlgorithm("netmax");
  NETMAX_CHECK_OK(netmax_algo.status());
  auto netmax_result = (*netmax_algo)->Run(config);
  NETMAX_CHECK_OK(netmax_result.status());
  add_row(*netmax_result);

  std::cout << "A custom algorithm on the shared harness vs NetMax\n\n";
  table.Print(std::cout);
  std::cout << "\nCommunicating rarely is fast per iteration but pays in "
               "consensus quality;\nNetMax spends its communication budget on "
               "the links where it is cheap.\n";
  return 0;
}
