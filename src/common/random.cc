#include "common/random.h"

#include <cmath>
#include <numbers>

namespace netmax {
namespace {

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(sm);
}

Rng Rng::Fork(uint64_t stream_id) const {
  // Mix the parent seed with the stream id through SplitMix64 so children with
  // adjacent ids are decorrelated.
  uint64_t sm = seed_ ^ (0xA076'1D64'78BD'642FULL * (stream_id + 1));
  return Rng(SplitMix64(sm));
}

uint64_t Rng::Next64() {
  // xoshiro256** by Blackman & Vigna (public domain).
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  NETMAX_CHECK_LE(lo, hi);
  return lo + (hi - lo) * Uniform();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  NETMAX_CHECK_LE(lo, hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next64());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t draw;
  do {
    draw = Next64();
  } while (draw >= limit);
  return lo + static_cast<int64_t>(draw % range);
}

double Rng::Gaussian() {
  // Box-Muller; one sample per call keeps the stream layout simple and
  // deterministic across platforms.
  double u1 = Uniform();
  while (u1 <= 0.0) u1 = Uniform();
  const double u2 = Uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

int Rng::Discrete(std::span<const double> probabilities) {
  NETMAX_CHECK(!probabilities.empty());
  double total = 0.0;
  for (double p : probabilities) {
    NETMAX_CHECK_GE(p, 0.0) << "negative probability";
    total += p;
  }
  NETMAX_CHECK_GT(total, 0.0) << "all probabilities are zero";
  double x = Uniform() * total;
  for (size_t i = 0; i < probabilities.size(); ++i) {
    x -= probabilities[i];
    if (x < 0.0) return static_cast<int>(i);
  }
  // Floating-point underflow of the running subtraction: return the last
  // index with positive mass.
  for (size_t i = probabilities.size(); i > 0; --i) {
    if (probabilities[i - 1] > 0.0) return static_cast<int>(i - 1);
  }
  return static_cast<int>(probabilities.size()) - 1;
}

std::array<uint64_t, 5> Rng::SaveState() const {
  return {seed_, state_[0], state_[1], state_[2], state_[3]};
}

void Rng::RestoreState(const std::array<uint64_t, 5>& state) {
  seed_ = state[0];
  for (int i = 0; i < 4; ++i) state_[i] = state[static_cast<size_t>(i) + 1];
}

std::vector<int> Rng::SampleWithoutReplacement(int population, int count) {
  NETMAX_CHECK_GE(population, count);
  NETMAX_CHECK_GE(count, 0);
  std::vector<int> all(population);
  for (int i = 0; i < population; ++i) all[i] = i;
  Shuffle(all);
  all.resize(count);
  return all;
}

}  // namespace netmax
