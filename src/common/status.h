#ifndef NETMAX_COMMON_STATUS_H_
#define NETMAX_COMMON_STATUS_H_

// Error propagation without exceptions, in the style of absl::Status /
// absl::StatusOr. Functions that can fail for reasons other than programmer
// error return Status (or StatusOr<T> when they also produce a value).

#include <optional>
#include <ostream>
#include <string>
#include <utility>

#include "common/logging.h"

namespace netmax {

// Canonical error space (subset of the absl/gRPC canonical codes that this
// project needs).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kInfeasible = 8,  // optimization problem has no feasible point
  kUnbounded = 9,   // optimization objective is unbounded
};

// Returns a human-readable name for `code`, e.g. "INVALID_ARGUMENT".
const char* StatusCodeToString(StatusCode code);

// Value-type result of an operation: either OK or an error code plus message.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Renders "OK" or "CODE: message".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Convenience constructors mirroring absl.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status InfeasibleError(std::string message);
Status UnboundedError(std::string message);

// Holds either a value of type T or an error Status. Access to the value when
// the status is not OK is a fatal error.
template <typename T>
class StatusOr {
 public:
  // Constructs from an error status. `status` must not be OK.
  // NOLINT(runtime/explicit)
  StatusOr(Status status) : status_(std::move(status)) {
    NETMAX_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  // Constructs from a value; status is OK.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    NETMAX_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    NETMAX_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    NETMAX_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

namespace status_internal {

// Normalizes Status / StatusOr<T> expressions to a Status for the test and
// check macros below.
inline const Status& ToStatus(const Status& status) { return status; }
template <typename T>
const Status& ToStatus(const StatusOr<T>& status_or) {
  return status_or.status();
}

}  // namespace status_internal

}  // namespace netmax

// Propagates an error Status from an expression, absl-style:
//   NETMAX_RETURN_IF_ERROR(DoThing());
#define NETMAX_RETURN_IF_ERROR(expr)          \
  do {                                        \
    ::netmax::Status status_macro_ = (expr);  \
    if (!status_macro_.ok()) return status_macro_; \
  } while (false)

// Unwraps a StatusOr expression into `lhs`, returning the error to the
// caller's scope when it is not OK (the TRY pattern, without the GCC
// statement-expression extension so it stays portable):
//   NETMAX_ASSIGN_OR_RETURN(const int threads, ParseNonNegativeInt(text));
#define NETMAX_STATUS_MACROS_CONCAT_INNER(x, y) x##y
#define NETMAX_STATUS_MACROS_CONCAT(x, y) \
  NETMAX_STATUS_MACROS_CONCAT_INNER(x, y)
// Variadic so the expression may contain unparenthesized commas
// (function calls with several arguments).
#define NETMAX_ASSIGN_OR_RETURN(lhs, ...)                              \
  NETMAX_ASSIGN_OR_RETURN_IMPL(                                        \
      NETMAX_STATUS_MACROS_CONCAT(status_or_macro_, __LINE__), lhs,    \
      __VA_ARGS__)
#define NETMAX_ASSIGN_OR_RETURN_IMPL(status_or, lhs, ...) \
  auto status_or = (__VA_ARGS__);                         \
  if (!status_or.ok()) return status_or.status();         \
  lhs = std::move(status_or).value()

// Aborts if `expr` is an error Status.
#define NETMAX_CHECK_OK(expr)                                              \
  do {                                                                    \
    ::netmax::Status status_macro_ = (expr);                               \
    NETMAX_CHECK(status_macro_.ok()) << status_macro_.ToString();          \
  } while (false)

// gtest helper: expects that a Status (or StatusOr) expression is OK and
// prints the full status message on failure instead of `false`. Only usable
// in files that also include <gtest/gtest.h>; the macro expands to
// EXPECT_TRUE at the use site, so this header needs no gtest dependency.
#define NETMAX_EXPECT_OK(expr)                                             \
  do {                                                                     \
    const ::netmax::Status status_macro_ =                                 \
        ::netmax::status_internal::ToStatus((expr));                       \
    EXPECT_TRUE(status_macro_.ok()) << status_macro_.ToString();           \
  } while (false)

#endif  // NETMAX_COMMON_STATUS_H_
