#include "common/shm.h"

#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

#include "common/logging.h"

namespace netmax {

StatusOr<SharedArena> SharedArena::Map(size_t capacity) {
  if (capacity == 0) {
    return InvalidArgumentError("SharedArena::Map: capacity must be > 0");
  }
  const size_t page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  const size_t rounded = (capacity + page - 1) / page * page;
  void* base = mmap(nullptr, rounded, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_ANONYMOUS, /*fd=*/-1, /*offset=*/0);
  if (base == MAP_FAILED) {
    return InternalError("SharedArena::Map: mmap of " +
                         std::to_string(rounded) +
                         " bytes failed: " + std::strerror(errno));
  }
  SharedArena arena;
  arena.base_ = base;
  arena.capacity_ = rounded;
  return arena;
}

SharedArena::~SharedArena() { Unmap(); }

SharedArena::SharedArena(SharedArena&& other) noexcept
    : base_(std::exchange(other.base_, nullptr)),
      capacity_(std::exchange(other.capacity_, 0)),
      used_(std::exchange(other.used_, 0)) {}

SharedArena& SharedArena::operator=(SharedArena&& other) noexcept {
  if (this != &other) {
    Unmap();
    base_ = std::exchange(other.base_, nullptr);
    capacity_ = std::exchange(other.capacity_, 0);
    used_ = std::exchange(other.used_, 0);
  }
  return *this;
}

void SharedArena::Unmap() {
  if (base_ != nullptr) {
    munmap(base_, capacity_);
    base_ = nullptr;
    capacity_ = 0;
    used_ = 0;
  }
}

void* SharedArena::AllocateBytes(size_t bytes, size_t alignment) {
  NETMAX_CHECK(base_ != nullptr) << "Allocate on an unmapped arena";
  if (alignment < kSliceAlignment) alignment = kSliceAlignment;
  const size_t offset = (used_ + alignment - 1) / alignment * alignment;
  NETMAX_CHECK_LE(offset + bytes, capacity_)
      << "arena overflow: slice of " << bytes << " bytes at offset " << offset
      << " exceeds the mapped " << capacity_;
  used_ = offset + bytes;
  return static_cast<char*>(base_) + offset;
}

}  // namespace netmax
