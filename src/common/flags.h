#ifndef NETMAX_COMMON_FLAGS_H_
#define NETMAX_COMMON_FLAGS_H_

// Minimal strict flag-value parsing shared by the bench binaries. The
// standard atoi-style parsers silently accept trailing garbage ("4x" -> 4),
// which once let a typoed --threads flag run an entire bench suite on the
// wrong configuration; everything here rejects anything but an exact
// decimal integer.

#include <string_view>

#include "common/status.h"

namespace netmax {

// Parses `text` as a non-negative base-10 integer. Returns kInvalidArgument
// — naming the offending text — on an empty string, any non-digit character
// (signs included), or overflow past int range.
StatusOr<int> ParseNonNegativeInt(std::string_view text);

}  // namespace netmax

#endif  // NETMAX_COMMON_FLAGS_H_
