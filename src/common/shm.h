#ifndef NETMAX_COMMON_SHM_H_
#define NETMAX_COMMON_SHM_H_

// Anonymous MAP_SHARED memory for the multi-process execution backend
// (core/process_backend.h): one mmap'd region created BEFORE fork(), so
// parent and children address the same physical pages, carved into typed
// slices by a bump allocator. The arena is deliberately minimal — fixed
// capacity, no free(), no cross-process allocation — because every slice the
// process backend needs (parameter slot, leaf partials, request rings) is
// sized up front from the model geometry.

#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "common/status.h"

namespace netmax {

class SharedArena {
 public:
  // An unmapped arena; Allocate on it is a programmer error.
  SharedArena() = default;

  // Maps `capacity` bytes of anonymous shared memory (rounded up to the page
  // size). Fails with kInvalidArgument on a zero capacity and kInternal when
  // mmap refuses (resource limits), with the errno text in the message.
  static StatusOr<SharedArena> Map(size_t capacity);

  ~SharedArena();
  SharedArena(SharedArena&& other) noexcept;
  SharedArena& operator=(SharedArena&& other) noexcept;
  SharedArena(const SharedArena&) = delete;
  SharedArena& operator=(const SharedArena&) = delete;

  // Bump-allocates `count` objects of T from the mapped region, aligned to at
  // least kSliceAlignment so adjacent slices never share a cache line across
  // the process boundary. The kernel zero-fills anonymous pages; types that
  // are not trivially default-constructible (std::atomic) are additionally
  // value-constructed in place. Exceeding the mapped capacity is a fatal
  // programmer error: slice sizes are computed up front by the caller.
  template <typename T>
  T* Allocate(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena slices are never destroyed");
    T* slice = static_cast<T*>(
        AllocateBytes(count * sizeof(T), alignof(T)));
    if constexpr (!std::is_trivially_default_constructible_v<T>) {
      for (size_t i = 0; i < count; ++i) ::new (slice + i) T();
    }
    return slice;
  }

  // Slices start on their own cache line (the parent polls wave states while
  // children write leaf partials; false sharing across the slice boundary
  // would serialize them).
  static constexpr size_t kSliceAlignment = 64;

  bool mapped() const { return base_ != nullptr; }
  size_t capacity() const { return capacity_; }
  size_t used() const { return used_; }

 private:
  void* AllocateBytes(size_t bytes, size_t alignment);
  void Unmap();

  void* base_ = nullptr;
  size_t capacity_ = 0;
  size_t used_ = 0;
};

}  // namespace netmax

#endif  // NETMAX_COMMON_SHM_H_
