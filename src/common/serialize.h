#ifndef NETMAX_COMMON_SERIALIZE_H_
#define NETMAX_COMMON_SERIALIZE_H_

// Bit-exact little-endian binary serialization for checkpoints
// (core/checkpoint.h). Doubles travel as their IEEE-754 bit patterns, so a
// serialize/restore round trip reproduces every value exactly — the property
// the checkpoint/restore bit-identity contract rests on. The write side
// cannot fail; the read side returns Status/StatusOr on truncated or
// malformed input (checkpoints come from disk and must not abort the
// process).

#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace netmax {

// Appends fixed-width little-endian primitives to a growing byte buffer.
class Serializer {
 public:
  void WriteU32(uint32_t value);
  void WriteU64(uint64_t value);
  void WriteI64(int64_t value) { WriteU64(static_cast<uint64_t>(value)); }
  void WriteInt(int value) { WriteI64(value); }
  void WriteBool(bool value) { WriteU32(value ? 1 : 0); }
  void WriteDouble(double value) { WriteU64(std::bit_cast<uint64_t>(value)); }
  void WriteString(const std::string& value);

  // Length-prefixed vectors.
  void WriteDoubleVec(std::span<const double> values);
  void WriteIntVec(std::span<const int> values);

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> TakeBytes() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

// Reads the Serializer wire format back; every read checks bounds and
// returns kOutOfRange on truncation instead of walking off the buffer.
class Deserializer {
 public:
  explicit Deserializer(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  StatusOr<uint32_t> ReadU32();
  StatusOr<uint64_t> ReadU64();
  StatusOr<int64_t> ReadI64();
  // ReadI64 narrowed to int; kOutOfRange if the value does not fit.
  StatusOr<int> ReadInt();
  StatusOr<bool> ReadBool();
  StatusOr<double> ReadDouble();
  StatusOr<std::string> ReadString();

  Status ReadDoubleVec(std::vector<double>* values);
  Status ReadIntVec(std::vector<int>* values);

  // Fills an existing buffer; kOutOfRange if the stored length differs from
  // values.size() (checkpoints never change the shape of what they restore).
  Status ReadDoubleSpan(std::span<double> values);

  size_t remaining() const { return bytes_.size() - cursor_; }
  bool AtEnd() const { return cursor_ == bytes_.size(); }

 private:
  std::span<const uint8_t> bytes_;
  size_t cursor_ = 0;
};

}  // namespace netmax

#endif  // NETMAX_COMMON_SERIALIZE_H_
