#ifndef NETMAX_COMMON_TABLE_H_
#define NETMAX_COMMON_TABLE_H_

// Text-table and CSV emission for the benchmark harnesses. Each bench binary
// prints the paper's rows/series twice: once as an aligned human-readable
// table and once as a machine-readable CSV block delimited by
// "#CSV <name>" ... "#END".

#include <ostream>
#include <string>
#include <vector>

namespace netmax {

// Collects rows of string cells and renders them column-aligned.
//
// Example:
//   TablePrinter t({"algo", "epoch_time_s"});
//   t.AddRow({"NetMax", Fmt(12.3)});
//   t.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  // Appends a row; must have the same number of cells as the header.
  void AddRow(std::vector<std::string> row);

  // Renders the aligned table.
  void Print(std::ostream& os) const;

  // Renders the same content as CSV inside a "#CSV name" ... "#END" block so
  // downstream tooling can scrape bench output.
  void PrintCsv(std::ostream& os, const std::string& name) const;

  int num_rows() const { return static_cast<int>(rows_.size()); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with `precision` digits after the decimal point.
std::string Fmt(double value, int precision = 3);

// Formats an integer count.
std::string Fmt(int64_t value);
std::string Fmt(int value);

}  // namespace netmax

#endif  // NETMAX_COMMON_TABLE_H_
