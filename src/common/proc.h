#ifndef NETMAX_COMMON_PROC_H_
#define NETMAX_COMMON_PROC_H_

// Process placement utilities for the multi-process execution backend
// (core/process_backend.h): parsing the kernel's cpulist format, reading the
// NUMA topology from /sys, and pinning the calling process to a CPU set.
// Everything degrades gracefully — a machine without /sys NUMA nodes (or
// with one node) reports an empty/singleton map and pinning becomes a no-op,
// so placement never changes behaviour, only locality.

#include <string_view>
#include <vector>

#include "common/status.h"

namespace netmax {

// Parses the kernel cpulist format ("0-3,8,10-11") into the sorted list of
// CPU ids it names. Whitespace (including the trailing newline sysfs files
// carry) is ignored; an empty list parses to an empty vector. Fails with
// kInvalidArgument on malformed input (bad integers, inverted ranges).
StatusOr<std::vector<int>> ParseCpuList(std::string_view text);

// Reads /sys/devices/system/node/node<k>/cpulist into one CPU list per NUMA
// node, ordered by node id. Returns an empty vector when the sysfs tree is
// absent (non-Linux mounts, containers hiding /sys) — callers treat that the
// same as a single-node machine: no pinning.
std::vector<std::vector<int>> ReadNumaNodeCpus();

// Pins the calling process (thread group leader semantics of
// sched_setaffinity: the whole process) to `cpus`. An empty set is a no-op
// returning Ok — the graceful single-node path. Fails with kInternal when
// the syscall refuses (CPU ids outside the affinity mask of a container).
Status PinToCpus(const std::vector<int>& cpus);

}  // namespace netmax

#endif  // NETMAX_COMMON_PROC_H_
