#ifndef NETMAX_COMMON_LOGGING_H_
#define NETMAX_COMMON_LOGGING_H_

// Minimal logging and invariant-checking facilities.
//
// The project does not use C++ exceptions (see DESIGN.md); programmer errors
// and violated invariants abort the process through NETMAX_CHECK, while
// recoverable errors travel through Status/StatusOr (see common/status.h).
//
// Which is which, as a policy:
//  * NETMAX_CHECK guards conditions no input can trigger — contract
//    violations between layers, broken internal invariants, out-of-range
//    indices into structures this code built itself. A firing check is a bug
//    in this repository, and aborting with the site is the best diagnostic.
//  * Status/StatusOr covers everything a user, flag, environment variable,
//    config field, or on-disk file can cause: malformed flag values, invalid
//    experiment configs, unknown algorithm/dataset names, truncated
//    checkpoints. These paths must return the error to a caller that can
//    report it (benches exit non-zero from main; a long-running service
//    keeps serving), never abort mid-stack.

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace netmax {

// Severity for LogMessage. kFatal aborts the process after the message is
// flushed.
enum class LogSeverity {
  kInfo = 0,
  kWarning = 1,
  kError = 2,
  kFatal = 3,
};

namespace internal {

// Accumulates one log line and emits it (to stderr) on destruction.
// Not thread-safe beyond the atomicity of a single stream write, which is
// sufficient for the diagnostic logging done in this project.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line)
      : severity_(severity) {
    stream_ << SeverityTag(severity) << " " << Basename(file) << ":" << line
            << "] ";
  }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  ~LogMessage() {
    stream_ << "\n";
    std::cerr << stream_.str() << std::flush;
    if (severity_ == LogSeverity::kFatal) {
      std::abort();
    }
  }

  std::ostream& stream() { return stream_; }

 private:
  static const char* SeverityTag(LogSeverity severity) {
    switch (severity) {
      case LogSeverity::kInfo:
        return "I";
      case LogSeverity::kWarning:
        return "W";
      case LogSeverity::kError:
        return "E";
      case LogSeverity::kFatal:
        return "F";
    }
    return "?";
  }

  static const char* Basename(const char* path) {
    const char* base = path;
    for (const char* p = path; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    return base;
  }

  LogSeverity severity_;
  std::ostringstream stream_;
};

// Turns the result of a streaming expression into void so that the ternary in
// NETMAX_CHECK type-checks; operator& binds looser than operator<< (glog's
// "voidify" idiom).
class Voidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace netmax

#define NETMAX_LOG(severity)                                          \
  ::netmax::internal::LogMessage(::netmax::LogSeverity::k##severity, \
                                 __FILE__, __LINE__)                  \
      .stream()

// Aborts with a diagnostic if `condition` is false. Additional context can be
// streamed: NETMAX_CHECK(n > 0) << "n=" << n;
#define NETMAX_CHECK(condition)                         \
  (condition) ? static_cast<void>(0)                    \
              : ::netmax::internal::Voidify() &         \
                    NETMAX_LOG(Fatal) << "Check failed: " #condition " "

#define NETMAX_CHECK_EQ(a, b) NETMAX_CHECK((a) == (b))
#define NETMAX_CHECK_NE(a, b) NETMAX_CHECK((a) != (b))
#define NETMAX_CHECK_LT(a, b) NETMAX_CHECK((a) < (b))
#define NETMAX_CHECK_LE(a, b) NETMAX_CHECK((a) <= (b))
#define NETMAX_CHECK_GT(a, b) NETMAX_CHECK((a) > (b))
#define NETMAX_CHECK_GE(a, b) NETMAX_CHECK((a) >= (b))

#endif  // NETMAX_COMMON_LOGGING_H_
