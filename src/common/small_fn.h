// SmallFn: a copyable type-erased callable with inline storage, used where
// std::function's heap fallback would put allocations on a hot path. The
// simulator stores three closures per event (plain / compute / commit);
// libstdc++'s std::function only inlines trivially-copyable targets up to
// 16 bytes, so almost every scheduled lambda used to allocate. SmallFn
// inlines any copyable, nothrow-movable target up to kSmallFnInlineBytes and
// falls back to the heap only beyond that, which keeps steady-state
// simulation allocation-free (asserted by tests/event_queue_test.cc).
//
// Semantics match the subset of std::function the codebase uses: null
// default state, comparison against nullptr, explicit bool, copy/move, and
// a const call operator that may mutate the target's captures.

#ifndef NETMAX_COMMON_SMALL_FN_H_
#define NETMAX_COMMON_SMALL_FN_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "common/logging.h"

namespace netmax {

inline constexpr std::size_t kSmallFnInlineBytes = 48;

template <typename Signature, std::size_t InlineBytes = kSmallFnInlineBytes>
class SmallFn;

template <typename R, typename... Args, std::size_t InlineBytes>
class SmallFn<R(Args...), InlineBytes> {
 public:
  SmallFn() = default;
  SmallFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, SmallFn> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  SmallFn(F&& target) {  // NOLINT(google-explicit-constructor)
    static_assert(std::is_copy_constructible_v<D>,
                  "SmallFn targets must be copyable (like std::function)");
    if constexpr (kStoresInline<D>) {
      ::new (storage_) D(std::forward<F>(target));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (storage_) D*(new D(std::forward<F>(target)));
      ops_ = &kHeapOps<D>;
    }
  }

  SmallFn(const SmallFn& other) {
    if (other.ops_ != nullptr) other.ops_->copy(storage_, other.storage_);
    ops_ = other.ops_;
  }

  SmallFn(SmallFn&& other) noexcept {
    if (other.ops_ != nullptr) other.ops_->relocate(storage_, other.storage_);
    ops_ = other.ops_;
    other.ops_ = nullptr;
  }

  SmallFn& operator=(const SmallFn& other) {
    if (this != &other) *this = SmallFn(other);
    return *this;
  }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      Reset();
      if (other.ops_ != nullptr) {
        other.ops_->relocate(storage_, other.storage_);
      }
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
    return *this;
  }

  SmallFn& operator=(std::nullptr_t) {
    Reset();
    return *this;
  }

  ~SmallFn() { Reset(); }

  // Const like std::function: the erased target's captures may still mutate.
  R operator()(Args... args) const {
    NETMAX_CHECK(ops_ != nullptr);
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return ops_ != nullptr; }

  friend bool operator==(const SmallFn& fn, std::nullptr_t) { return !fn; }
  friend bool operator==(std::nullptr_t, const SmallFn& fn) { return !fn; }
  friend bool operator!=(const SmallFn& fn, std::nullptr_t) {
    return static_cast<bool>(fn);
  }
  friend bool operator!=(std::nullptr_t, const SmallFn& fn) {
    return static_cast<bool>(fn);
  }

 private:
  struct Ops {
    R (*invoke)(void* storage, Args&&... args);
    void (*copy)(void* dst, const void* src);
    // Moves src's target into dst and ends src's lifetime (no destroy after).
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* storage);
  };

  template <typename D>
  static constexpr bool kStoresInline =
      sizeof(D) <= InlineBytes && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* storage, Args&&... args) -> R {
        // static_cast<R> discards the target's return when R is void,
        // matching std::function's INVOKE<R> semantics.
        return static_cast<R>((*std::launder(reinterpret_cast<D*>(storage)))(
            std::forward<Args>(args)...));
      },
      [](void* dst, const void* src) {
        ::new (dst) D(*std::launder(reinterpret_cast<const D*>(src)));
      },
      [](void* dst, void* src) {
        D* from = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      [](void* storage) {
        std::launder(reinterpret_cast<D*>(storage))->~D();
      },
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* storage, Args&&... args) -> R {
        return static_cast<R>((**std::launder(reinterpret_cast<D**>(storage)))(
            std::forward<Args>(args)...));
      },
      [](void* dst, const void* src) {
        ::new (dst)
            D*(new D(**std::launder(reinterpret_cast<D* const*>(src))));
      },
      [](void* dst, void* src) {
        ::new (dst) D*(*std::launder(reinterpret_cast<D**>(src)));
      },
      [](void* storage) {
        delete *std::launder(reinterpret_cast<D**>(storage));
      },
  };

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) mutable unsigned char storage_[InlineBytes];
};

}  // namespace netmax

#endif  // NETMAX_COMMON_SMALL_FN_H_
