#include "common/proc.h"

#include <sched.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <string>

namespace netmax {
namespace {

// Parses the non-negative integer at text[pos...], advancing pos past it.
StatusOr<int> ParseCpuId(std::string_view text, size_t* pos) {
  size_t end = *pos;
  while (end < text.size() && std::isdigit(static_cast<unsigned char>(
                                  text[end]))) {
    ++end;
  }
  if (end == *pos) {
    return InvalidArgumentError("cpulist: expected a CPU id in '" +
                                std::string(text) + "'");
  }
  int value = 0;
  for (size_t i = *pos; i < end; ++i) {
    value = value * 10 + (text[i] - '0');
    if (value > 1 << 20) {
      return InvalidArgumentError("cpulist: CPU id out of range in '" +
                                  std::string(text) + "'");
    }
  }
  *pos = end;
  return value;
}

}  // namespace

StatusOr<std::vector<int>> ParseCpuList(std::string_view text) {
  std::string compact;
  compact.reserve(text.size());
  for (char c : text) {
    if (!std::isspace(static_cast<unsigned char>(c))) compact.push_back(c);
  }
  std::vector<int> cpus;
  if (compact.empty()) return cpus;
  size_t pos = 0;
  const std::string_view body = compact;
  while (true) {
    NETMAX_ASSIGN_OR_RETURN(const int lo, ParseCpuId(body, &pos));
    int hi = lo;
    if (pos < body.size() && body[pos] == '-') {
      ++pos;
      NETMAX_ASSIGN_OR_RETURN(hi, ParseCpuId(body, &pos));
      if (hi < lo) {
        return InvalidArgumentError("cpulist: inverted range in '" +
                                    std::string(text) + "'");
      }
    }
    for (int cpu = lo; cpu <= hi; ++cpu) cpus.push_back(cpu);
    if (pos == body.size()) break;
    if (body[pos] != ',') {
      return InvalidArgumentError("cpulist: unexpected '" +
                                  std::string(1, body[pos]) + "' in '" +
                                  std::string(text) + "'");
    }
    ++pos;
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

std::vector<std::vector<int>> ReadNumaNodeCpus() {
  std::vector<std::vector<int>> nodes;
  // Node ids are dense from 0 on every Linux NUMA layout this project meets;
  // stopping at the first missing id avoids a readdir dependency and keeps
  // the result ordered by node.
  for (int node = 0;; ++node) {
    const std::string path = "/sys/devices/system/node/node" +
                             std::to_string(node) + "/cpulist";
    std::ifstream in(path);
    if (!in.is_open()) break;
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    StatusOr<std::vector<int>> cpus = ParseCpuList(text);
    if (!cpus.ok()) break;  // malformed sysfs: fall back to no pinning
    // Memory-only nodes (CPU-less) exist on some machines; skip them, they
    // are not placement targets.
    if (!cpus->empty()) nodes.push_back(std::move(*cpus));
  }
  return nodes;
}

Status PinToCpus(const std::vector<int>& cpus) {
  if (cpus.empty()) return Status::Ok();
  cpu_set_t set;
  CPU_ZERO(&set);
  for (int cpu : cpus) {
    if (cpu < 0 || cpu >= CPU_SETSIZE) continue;
    CPU_SET(cpu, &set);
  }
  if (sched_setaffinity(/*pid=*/0, sizeof(set), &set) != 0) {
    return InternalError(std::string("sched_setaffinity failed: ") +
                         std::strerror(errno));
  }
  return Status::Ok();
}

}  // namespace netmax
