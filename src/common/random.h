#ifndef NETMAX_COMMON_RANDOM_H_
#define NETMAX_COMMON_RANDOM_H_

// Deterministic random number generation.
//
// Every stochastic component in this project takes an explicit seed so that
// experiments are bit-reproducible. Rng wraps a fixed engine (mt19937_64) and
// offers the distributions the training / simulation stack needs, including
// discrete sampling from an arbitrary probability vector (used to pick
// neighbors from a communication-policy row).

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/logging.h"

namespace netmax {

// SplitMix64 step; used to derive independent child seeds from a parent seed.
uint64_t SplitMix64(uint64_t& state);

// Deterministic pseudo-random generator. Copyable; copying forks the stream.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Derives a child generator whose stream is independent of (but fully
  // determined by) this generator's seed and `stream_id`. Deriving children
  // does not perturb this generator's own sequence.
  Rng Fork(uint64_t stream_id) const;

  // Returns a uniform double in [0, 1).
  double Uniform();

  // Returns a uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Returns a uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Returns a standard normal sample.
  double Gaussian();

  // Returns a normal sample with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  // Returns true with probability `p`.
  bool Bernoulli(double p);

  // Samples an index from `probabilities` (non-negative, summing to ~1).
  // Entries may be zero. Fatal error if all entries are zero.
  int Discrete(std::span<const double> probabilities);

  // Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      const size_t j =
          static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(values[i - 1], values[j]);
    }
  }

  // Returns `count` distinct indices drawn uniformly from [0, population).
  std::vector<int> SampleWithoutReplacement(int population, int count);

  // Raw 64 random bits.
  uint64_t Next64();

  // Raw engine state (seed + the four xoshiro256** words) for checkpointing;
  // RestoreState reproduces the exact stream position SaveState captured.
  std::array<uint64_t, 5> SaveState() const;
  void RestoreState(const std::array<uint64_t, 5>& state);

 private:
  uint64_t seed_;
  // mt19937_64 is large; we keep a compact xoshiro256** state instead for
  // cheap copies and forks.
  uint64_t state_[4];
};

}  // namespace netmax

#endif  // NETMAX_COMMON_RANDOM_H_
