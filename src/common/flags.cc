#include "common/flags.h"

#include <limits>
#include <string>

namespace netmax {

StatusOr<int> ParseNonNegativeInt(std::string_view text) {
  if (text.empty()) {
    return InvalidArgumentError("expected a non-negative integer, got \"\"");
  }
  long long parsed = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      return InvalidArgumentError("expected a non-negative integer, got \"" +
                                  std::string(text) + "\"");
    }
    parsed = parsed * 10 + (c - '0');
    if (parsed > std::numeric_limits<int>::max()) {
      return InvalidArgumentError("integer out of range: \"" +
                                  std::string(text) + "\"");
    }
  }
  return static_cast<int>(parsed);
}

}  // namespace netmax
