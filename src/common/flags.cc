#include "common/flags.h"

#include <limits>

namespace netmax {

bool ParseNonNegativeInt(std::string_view text, int* value) {
  if (text.empty()) return false;
  long long parsed = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    parsed = parsed * 10 + (c - '0');
    if (parsed > std::numeric_limits<int>::max()) return false;
  }
  *value = static_cast<int>(parsed);
  return true;
}

}  // namespace netmax
