#include "common/table.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace netmax {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  NETMAX_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  NETMAX_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << "\n";
  };
  print_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintCsv(std::ostream& os, const std::string& name) const {
  os << "#CSV " << name << "\n";
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) os << ",";
    }
    os << "\n";
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
  os << "#END\n";
}

std::string Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Fmt(int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  return buf;
}

std::string Fmt(int value) { return Fmt(static_cast<int64_t>(value)); }

}  // namespace netmax
