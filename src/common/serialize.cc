#include "common/serialize.h"

#include <limits>

namespace netmax {

void Serializer::WriteU32(uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    bytes_.push_back(static_cast<uint8_t>(value >> shift));
  }
}

void Serializer::WriteU64(uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    bytes_.push_back(static_cast<uint8_t>(value >> shift));
  }
}

void Serializer::WriteString(const std::string& value) {
  WriteU64(value.size());
  bytes_.insert(bytes_.end(), value.begin(), value.end());
}

void Serializer::WriteDoubleVec(std::span<const double> values) {
  WriteU64(values.size());
  for (const double v : values) WriteDouble(v);
}

void Serializer::WriteIntVec(std::span<const int> values) {
  WriteU64(values.size());
  for (const int v : values) WriteI64(v);
}

StatusOr<uint32_t> Deserializer::ReadU32() {
  if (remaining() < 4) return OutOfRangeError("truncated input: need 4 bytes");
  uint32_t value = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    value |= static_cast<uint32_t>(bytes_[cursor_++]) << shift;
  }
  return value;
}

StatusOr<uint64_t> Deserializer::ReadU64() {
  if (remaining() < 8) return OutOfRangeError("truncated input: need 8 bytes");
  uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    value |= static_cast<uint64_t>(bytes_[cursor_++]) << shift;
  }
  return value;
}

StatusOr<int64_t> Deserializer::ReadI64() {
  NETMAX_ASSIGN_OR_RETURN(const uint64_t raw, ReadU64());
  return static_cast<int64_t>(raw);
}

StatusOr<int> Deserializer::ReadInt() {
  NETMAX_ASSIGN_OR_RETURN(const int64_t wide, ReadI64());
  if (wide < std::numeric_limits<int>::min() ||
      wide > std::numeric_limits<int>::max()) {
    return OutOfRangeError("stored integer does not fit in int");
  }
  return static_cast<int>(wide);
}

StatusOr<bool> Deserializer::ReadBool() {
  NETMAX_ASSIGN_OR_RETURN(const uint32_t raw, ReadU32());
  if (raw > 1) return OutOfRangeError("malformed bool");
  return raw == 1;
}

StatusOr<double> Deserializer::ReadDouble() {
  NETMAX_ASSIGN_OR_RETURN(const uint64_t raw, ReadU64());
  return std::bit_cast<double>(raw);
}

StatusOr<std::string> Deserializer::ReadString() {
  NETMAX_ASSIGN_OR_RETURN(const uint64_t size, ReadU64());
  if (size > remaining()) return OutOfRangeError("truncated string");
  std::string value(bytes_.begin() + static_cast<ptrdiff_t>(cursor_),
                    bytes_.begin() + static_cast<ptrdiff_t>(cursor_ + size));
  cursor_ += size;
  return value;
}

Status Deserializer::ReadDoubleVec(std::vector<double>* values) {
  NETMAX_ASSIGN_OR_RETURN(const uint64_t size, ReadU64());
  if (size * 8 > remaining()) return OutOfRangeError("truncated double vec");
  values->clear();
  values->reserve(size);
  for (uint64_t i = 0; i < size; ++i) {
    NETMAX_ASSIGN_OR_RETURN(const double v, ReadDouble());
    values->push_back(v);
  }
  return Status::Ok();
}

Status Deserializer::ReadIntVec(std::vector<int>* values) {
  NETMAX_ASSIGN_OR_RETURN(const uint64_t size, ReadU64());
  if (size * 8 > remaining()) return OutOfRangeError("truncated int vec");
  values->clear();
  values->reserve(size);
  for (uint64_t i = 0; i < size; ++i) {
    NETMAX_ASSIGN_OR_RETURN(const int v, ReadInt());
    values->push_back(v);
  }
  return Status::Ok();
}

Status Deserializer::ReadDoubleSpan(std::span<double> values) {
  NETMAX_ASSIGN_OR_RETURN(const uint64_t size, ReadU64());
  if (size != values.size()) {
    return OutOfRangeError("stored vector size does not match destination");
  }
  for (double& v : values) {
    NETMAX_ASSIGN_OR_RETURN(v, ReadDouble());
  }
  return Status::Ok();
}

}  // namespace netmax
