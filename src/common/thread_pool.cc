#include "common/thread_pool.h"

#include <atomic>
#include <memory>
#include <utility>

#include "common/logging.h"

namespace netmax {

ThreadPool::ThreadPool(int num_threads) {
  NETMAX_CHECK_GE(num_threads, 1);
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    NETMAX_CHECK(!shutting_down_) << "Submit after shutdown";
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

std::future<void> ThreadPool::Submit(std::packaged_task<void()> task) {
  // std::function requires copyable targets, so the move-only packaged_task
  // rides in a shared_ptr.
  auto boxed = std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> future = boxed->get_future();
  Submit([boxed] { (*boxed)(); });
  return future;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  work_done_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        // shutting_down_ and no work left.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) work_done_.notify_all();
    }
  }
}

void ParallelFor(int num_threads,
                 const std::vector<std::function<void()>>& tasks) {
  ThreadPool pool(num_threads);
  for (const auto& task : tasks) pool.Submit(task);
  pool.Wait();
}

namespace {

// Shared state of one index-range ParallelFor call. Helpers claim indices
// from `next` and count finished calls in `completed`; the owner blocks on
// `cv` until completed == total. Kept alive by shared_ptr so a helper that
// loses the race for the last index may still touch it after the owner
// returned.
struct ParallelForState {
  explicit ParallelForState(int n, const std::function<void(int)>& f)
      : total(n), fn(&f) {}
  const int total;
  const std::function<void(int)>* fn;  // owner outlives all fn calls
  std::atomic<int> next{0};
  std::atomic<int> completed{0};
  std::mutex mu;
  std::condition_variable cv;
};

void ClaimLoop(const std::shared_ptr<ParallelForState>& state) {
  while (true) {
    const int i = state->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= state->total) return;
    (*state->fn)(i);
    if (state->completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        state->total) {
      std::lock_guard<std::mutex> lock(state->mu);
      state->cv.notify_all();
    }
  }
}

}  // namespace

void ParallelFor(ThreadPool& pool, int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  auto state = std::make_shared<ParallelForState>(n, fn);
  const int helpers = std::min(pool.num_threads(), n - 1);
  for (int h = 0; h < helpers; ++h) {
    pool.Submit([state] { ClaimLoop(state); });
  }
  ClaimLoop(state);  // the caller works too
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] {
    return state->completed.load(std::memory_order_acquire) == n;
  });
}

}  // namespace netmax
