#include "common/thread_pool.h"

#include "common/logging.h"

namespace netmax {

ThreadPool::ThreadPool(int num_threads) {
  NETMAX_CHECK_GE(num_threads, 1);
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    NETMAX_CHECK(!shutting_down_) << "Submit after shutdown";
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  work_done_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        // shutting_down_ and no work left.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) work_done_.notify_all();
    }
  }
}

void ParallelFor(int num_threads,
                 const std::vector<std::function<void()>>& tasks) {
  ThreadPool pool(num_threads);
  for (const auto& task : tasks) pool.Submit(task);
  pool.Wait();
}

}  // namespace netmax
