#ifndef NETMAX_COMMON_THREAD_POOL_H_
#define NETMAX_COMMON_THREAD_POOL_H_

// Fixed-size worker pool used by the benchmark harnesses to run independent
// experiment configurations in parallel. The simulation core itself is
// single-threaded and deterministic; only whole experiments are parallelized.

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace netmax {

class ThreadPool {
 public:
  // Starts `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Drains outstanding work, then joins all workers.
  ~ThreadPool();

  // Enqueues `task` for execution. Must not be called after the destructor
  // has begun.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished.
  void Wait();

  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable work_done_;
  std::deque<std::function<void()>> queue_;
  int active_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> threads_;
};

// Runs `tasks[i]()` for all i using `num_threads` workers and returns when all
// have completed. Convenience wrapper for one-shot parallel sections.
void ParallelFor(int num_threads,
                 const std::vector<std::function<void()>>& tasks);

}  // namespace netmax

#endif  // NETMAX_COMMON_THREAD_POOL_H_
