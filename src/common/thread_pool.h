#ifndef NETMAX_COMMON_THREAD_POOL_H_
#define NETMAX_COMMON_THREAD_POOL_H_

// Fixed-size worker pool shared by the parallel simulation runtime and the
// benchmark harnesses. The event simulator dispatches compute phases of its
// two-phase compute/commit events onto a pool (net/event_sim.h), the policy
// generator fans its (rho, t_bar) grid search out on the same pool, and the
// benches run independent experiment configurations in parallel. Virtual-time
// ordering stays deterministic: only pure per-worker compute runs here.

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace netmax {

class ThreadPool {
 public:
  // Starts `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Drains outstanding work, then joins all workers.
  ~ThreadPool();

  // Enqueues `task` for execution. Must not be called after the destructor
  // has begun.
  void Submit(std::function<void()> task);

  // Waitable overload: enqueues `task` and returns the future of its
  // completion, so one submission can be awaited without draining the whole
  // pool (Wait() below blocks on everything in flight).
  std::future<void> Submit(std::packaged_task<void()> task);

  // Blocks until every submitted task has finished.
  void Wait();

  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable work_done_;
  std::deque<std::function<void()>> queue_;
  int active_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> threads_;
};

// Runs `tasks[i]()` for all i using `num_threads` workers and returns when all
// have completed. Convenience wrapper for one-shot parallel sections that owns
// a throwaway pool.
void ParallelFor(int num_threads,
                 const std::vector<std::function<void()>>& tasks);

// Index-range overload on an existing pool: runs fn(0) .. fn(n-1) and
// returns once all n calls have finished, without materializing one
// std::function per index. The calling thread participates in the work (a
// pool of T threads executes with T+1 workers), so the call makes progress
// even when the pool is busy. Only this call's indices are awaited —
// concurrent unrelated Submits on the same pool are untouched.
//
// Nesting on the same pool is safe — a pool task may itself call ParallelFor
// (the event simulator's sharded gradient evaluation does exactly that,
// inside frontier compute halves and second-pass re-dispatches): caller
// participation guarantees progress with every helper queued behind a busy
// pool, and the wait can only be on indices claimed by threads actively
// executing them. The one requirement is that `fn` never blocks on pool work
// other than a nested ParallelFor of its own — a task that waits on an
// unsubmitted/unclaimed future would reintroduce the deadlock the
// participation rule removes.
void ParallelFor(ThreadPool& pool, int n, const std::function<void(int)>& fn);

}  // namespace netmax

#endif  // NETMAX_COMMON_THREAD_POOL_H_
