#ifndef NETMAX_COMMON_STATS_H_
#define NETMAX_COMMON_STATS_H_

// Small statistics helpers used throughout the training and simulation stack:
//  - ExponentialMovingAverage: the EMA iteration-time tracker of Algorithm 2
//    (UPDATETIMEVECTOR, lines 19-22 of the paper).
//  - RunningStat: streaming mean/variance/min/max (Welford).
//  - Quantile: order statistics over a sample vector.

#include <cstdint>
#include <vector>

namespace netmax {

// Exponential moving average with smoothing factor beta in [0, 1):
//   value <- beta * value + (1 - beta) * sample
// A smaller beta forgets faster (shorter window), matching the paper's
// guidance to lower beta when link speeds change quickly.
class ExponentialMovingAverage {
 public:
  explicit ExponentialMovingAverage(double beta);

  // Folds `sample` into the average. The first sample initializes the average
  // directly so the estimate is not biased toward zero.
  void Add(double sample);

  // Current estimate; 0.0 if no samples were added yet.
  double value() const { return value_; }
  bool has_value() const { return count_ > 0; }
  int64_t count() const { return count_; }
  double beta() const { return beta_; }

  void Reset();

  // Checkpoint support: overwrites the running estimate with saved state
  // (beta stays whatever this instance was constructed with).
  void RestoreState(double value, int64_t count) {
    value_ = value;
    count_ = count;
  }

 private:
  double beta_;
  double value_ = 0.0;
  int64_t count_ = 0;
};

// Streaming mean / variance / extrema using Welford's algorithm.
class RunningStat {
 public:
  void Add(double sample);

  int64_t count() const { return count_; }
  double mean() const { return mean_; }
  // Sample variance (n - 1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Returns the q-quantile (q in [0,1]) of `samples` by linear interpolation.
// Fatal error on an empty vector. The input is copied, not mutated.
double Quantile(const std::vector<double>& samples, double q);

}  // namespace netmax

#endif  // NETMAX_COMMON_STATS_H_
