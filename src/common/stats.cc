#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace netmax {

ExponentialMovingAverage::ExponentialMovingAverage(double beta) : beta_(beta) {
  NETMAX_CHECK_GE(beta, 0.0);
  NETMAX_CHECK_LT(beta, 1.0);
}

void ExponentialMovingAverage::Add(double sample) {
  if (count_ == 0) {
    value_ = sample;
  } else {
    value_ = beta_ * value_ + (1.0 - beta_) * sample;
  }
  ++count_;
}

void ExponentialMovingAverage::Reset() {
  value_ = 0.0;
  count_ = 0;
}

void RunningStat::Add(double sample) {
  ++count_;
  sum_ += sample;
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
  if (count_ == 1) {
    min_ = max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double Quantile(const std::vector<double>& samples, double q) {
  NETMAX_CHECK(!samples.empty());
  NETMAX_CHECK_GE(q, 0.0);
  NETMAX_CHECK_LE(q, 1.0);
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace netmax
