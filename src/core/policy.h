#ifndef NETMAX_CORE_POLICY_H_
#define NETMAX_CORE_POLICY_H_

// Communication-policy algebra.
//
// A communication policy P = [p_{i,m}] gives, for each worker i, the
// probability of selecting peer m at an iteration (p_{i,i} = probability of
// skipping communication). This file implements:
//   * policy construction/validation (Eqs. 12-13),
//   * per-node average iteration times and global-step probabilities
//     (Eqs. 2-3),
//   * the contraction matrix Y_P = E[(D^k)^T D^k] of the convergence analysis
//     (Eqs. 20-22), both for NetMax's consensus update (coefficient
//     alpha*rho*gamma_{i,m}) and for plain pairwise-averaging gossip such as
//     AD-PSGD (constant coefficient 1/2) used by the Section III-D extension.
//
// Lemmas 1-3 and Theorem 3 of the paper assert that Y_P of any feasible
// policy is symmetric, doubly stochastic, non-negative and irreducible with
// lambda_2 < 1; tests/policy_test.cc checks those properties over random
// configurations.

#include <span>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"
#include "net/topology.h"

namespace netmax::core {

class CommunicationPolicy {
 public:
  // Takes a row-stochastic M x M matrix; rows are per-worker distributions.
  explicit CommunicationPolicy(linalg::Matrix probabilities);

  // Uniform over neighbors (AD-PSGD / GoSGD behaviour): p_{i,m} = 1/deg(i)
  // for neighbors, p_{i,i} = 0.
  static CommunicationPolicy Uniform(const net::Topology& topology);

  int num_workers() const { return probabilities_.rows(); }
  const linalg::Matrix& matrix() const { return probabilities_; }
  double probability(int i, int m) const { return probabilities_(i, m); }
  std::span<const double> Row(int i) const { return probabilities_.Row(i); }

  // Verifies rows sum to 1, entries are non-negative, and p_{i,m} = 0
  // wherever i != m are not neighbors (Eqs. 12-13).
  Status Validate(const net::Topology& topology, double tol = 1e-7) const;

 private:
  linalg::Matrix probabilities_;
};

// Average iteration time of node i (Eq. 2): sum_m t_{i,m} p_{i,m} d_{i,m}.
// `iteration_times` is the M x M matrix of per-link iteration times.
double AverageIterationTime(const linalg::Matrix& iteration_times,
                            const CommunicationPolicy& policy,
                            const net::Topology& topology, int i);

// Probability that node i is the one acting at a global step (Eq. 3):
// p_i = (1/t_i) / sum_m (1/t_m). Nodes with zero average iteration time are
// invalid (they would iterate infinitely fast).
StatusOr<std::vector<double>> GlobalStepProbabilities(
    const linalg::Matrix& iteration_times, const CommunicationPolicy& policy,
    const net::Topology& topology);

// Y_P for NetMax's consensus update (Eqs. 20-22), where the event "i pulls
// from m" rescales the consensus step by gamma_{i,m} =
// (d_{i,m}+d_{m,i}) / (2 p_{i,m}).
//
// `global_probs` are the p_i of Eq. 3 (pass 1/M for a feasible policy, by
// Lemma 1). Returns InvalidArgument if some neighbor with positive selection
// probability has a coefficient alpha*rho*gamma >= 1 (the update would
// overshoot; cf. Eq. 52) -- except that callers may tolerate it by setting
// `allow_overshoot`.
StatusOr<linalg::Matrix> BuildNetMaxY(const CommunicationPolicy& policy,
                                      const net::Topology& topology,
                                      double alpha, double rho,
                                      std::span<const double> global_probs,
                                      bool allow_overshoot = false);

// Y_P for pairwise averaging x_i <- (1-w) x_i + w x_m (AD-PSGD: w = 1/2).
StatusOr<linalg::Matrix> BuildAveragingY(const CommunicationPolicy& policy,
                                         const net::Topology& topology,
                                         double weight,
                                         std::span<const double> global_probs);

}  // namespace netmax::core

#endif  // NETMAX_CORE_POLICY_H_
