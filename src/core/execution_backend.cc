#include "core/execution_backend.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <utility>

#include "common/thread_pool.h"
#include "core/process_backend.h"

namespace netmax::core {
namespace {

using net::EventSimulator;

// Dispatch scan bound: how many queue entries a backend examines per
// Dispatch call while looking for compute halves to run ahead (plain events
// count toward the cap). Bounds the cost of skipping over plain events.
constexpr int64_t kMaxScannedEvents = 256;

// Speculative frontier bound: scales with the pool so the ordered drain
// (serial) phase stays short relative to the compute phase. The RunUntilIdle
// caller participates in the compute barrier, hence +1.
int64_t FrontierCap(const ThreadPool& pool) {
  return 4 * (static_cast<int64_t>(pool.num_threads()) + 1);
}

// Sorts invalidated worker keys into (time, sequence) order of their events
// so the pool starts the earliest-committing recompute first. Shared by both
// pooled backends' FlushRedispatches — the re-dispatch protocol itself
// (wait out the in-flight read in OnStateWrite, queue the key, resubmit here
// after the handler) must stay in lockstep between them too.
void SortKeysByEventOrder(
    std::vector<int>& keys,
    const std::function<std::pair<double, int64_t>(int)>& event_order) {
  std::sort(keys.begin(), keys.end(), [&event_order](int a, int b) {
    return event_order(a) < event_order(b);
  });
}

}  // namespace

bool ParseExecutionBackendKind(std::string_view text,
                               ExecutionBackendKind* kind) {
  if (text == "serial") {
    *kind = ExecutionBackendKind::kSerial;
    return true;
  }
  if (text == "speculative") {
    *kind = ExecutionBackendKind::kSpeculative;
    return true;
  }
  if (text == "async") {
    *kind = ExecutionBackendKind::kAsyncPipeline;
    return true;
  }
  if (text == "process") {
    *kind = ExecutionBackendKind::kProcessPool;
    return true;
  }
  return false;
}

std::string_view ExecutionBackendKindName(ExecutionBackendKind kind) {
  switch (kind) {
    case ExecutionBackendKind::kSerial:
      return "serial";
    case ExecutionBackendKind::kSpeculative:
      return "speculative";
    case ExecutionBackendKind::kAsyncPipeline:
      return "async";
    case ExecutionBackendKind::kProcessPool:
      return "process";
  }
  return "unknown";
}

std::unique_ptr<ExecutionBackend> MakeExecutionBackend(
    ExecutionBackendKind kind, ThreadPool* pool, int reorder_window,
    bool adaptive_window) {
  NETMAX_CHECK_GE(reorder_window, 0);
  // The process backend never wants a thread pool (its parallelism is forked
  // children), so it must NOT fall into the pool-less serial degrade below.
  if (kind == ExecutionBackendKind::kProcessPool) {
    return std::make_unique<ProcessPoolBackend>();
  }
  if (pool == nullptr || kind == ExecutionBackendKind::kSerial) {
    return std::make_unique<SerialBackend>();
  }
  if (kind == ExecutionBackendKind::kSpeculative) {
    return std::make_unique<SpeculativeBackend>(pool);
  }
  return std::make_unique<AsyncPipelineBackend>(pool, reorder_window,
                                                adaptive_window);
}

// --- SerialBackend ----------------------------------------------------------

void SerialBackend::Dispatch(EventSimulator& /*sim*/) {}

int64_t SerialBackend::DrainCommits(EventSimulator& sim) {
  return sim.StepWith(nullptr) ? 1 : 0;
}

void SerialBackend::OnStateWrite(EventSimulator& /*sim*/, int /*worker_key*/) {}

// --- SpeculativeBackend -----------------------------------------------------

SpeculativeBackend::SpeculativeBackend(ThreadPool* pool) : pool_(pool) {
  NETMAX_CHECK(pool_ != nullptr) << "SpeculativeBackend needs a pool";
}

void SpeculativeBackend::Dispatch(EventSimulator& sim) {
  if (!inflight_.empty()) return;  // mid-batch: DrainCommits empties it first
  // Frontier scan: the longest prefix of compute events with pairwise-
  // distinct worker keys. Plain events are skipped, not barriers: they run at
  // their exact position during the drain, and any state they write is
  // covered by NotifyStateWrite invalidation. A duplicate key ends the scan
  // so no two speculations ever target the same state partition.
  std::vector<Speculation> frontier;
  std::vector<int> frontier_keys;
  std::unordered_set<int> seen_keys;
  const int64_t frontier_cap = FrontierCap(*pool_);
  sim.ScanPendingComputes(
      kMaxScannedEvents,
      [&](const EventSimulator::PendingComputeView& view) {
        if (static_cast<int64_t>(frontier.size()) >= frontier_cap) {
          return EventSimulator::ScanAction::kStop;
        }
        if (!seen_keys.insert(view.worker_key).second) {
          return EventSimulator::ScanAction::kStop;
        }
        frontier.push_back(
            Speculation{view.sequence, view.time, view.compute, 0.0});
        frontier_keys.push_back(view.worker_key);
        return EventSimulator::ScanAction::kContinue;
      });
  if (frontier.size() < 2) return;  // the drain runs it inline

  // Barrier compute: every frontier compute half runs concurrently on the
  // pool (the caller participates). No commit runs in parallel with this
  // phase, and each compute half touches only its own worker's state, so the
  // phase is race-free by construction.
  ParallelFor(*pool_, static_cast<int>(frontier.size()), [&frontier](int i) {
    Speculation& speculation = frontier[static_cast<size_t>(i)];
    speculation.value = speculation.compute();
  });
  ++stats_.parallel_batches;
  stats_.computes_speculated += static_cast<int64_t>(frontier.size());

  dirty_keys_.clear();
  for (size_t i = 0; i < frontier.size(); ++i) {
    inflight_.emplace(frontier_keys[i], std::move(frontier[i]));
  }
}

int64_t SpeculativeBackend::DrainCommits(EventSimulator& sim) {
  if (inflight_.empty()) {
    // Frontier of one (or an all-plain queue head): plain serial step.
    const bool stepped = sim.StepWith(nullptr);
    return stepped ? 1 : 0;
  }
  // Ordered drain: apply events strictly in (time, sequence) order until
  // every speculation is consumed. Commits may schedule new events (which
  // run inline at their correct position, even before later frontier
  // members) and may dirty keys via NotifyStateWrite (which re-dispatches
  // the affected speculation onto the pool after the handler returns).
  const EventSimulator::SpeculationProvider provider =
      [this](int64_t sequence, int worker_key, double* value) {
        return ProvideValue(sequence, worker_key, value);
      };
  int64_t count = 0;
  while (!inflight_.empty()) {
    NETMAX_CHECK(!sim.empty()) << "speculated event vanished from queue";
    sim.StepWith(provider);
    // Handlers queue invalidated keys; the second speculation pass starts
    // here, after the handler's writes are complete.
    FlushRedispatches();
    ++count;
    // A crash fault mid-batch: stop draining immediately — the uncommitted
    // speculations are discarded by OnHalt, exactly as if they were never
    // evaluated.
    if (sim.halt_requested()) break;
  }
  NETMAX_CHECK(sim.halt_requested() || redispatches_.empty())
      << "second-pass re-dispatch outlived its batch";
  return count;
}

void SpeculativeBackend::OnHalt(EventSimulator& /*sim*/) {
  // Wait out the second-pass tasks (their pooled writes target the
  // heap-stable Redispatch entries being destroyed here), then drop every
  // uncommitted speculation. Nothing here was committed, so discarding it
  // cannot perturb the halted run's result.
  for (auto& [key, redispatch] : redispatches_) redispatch->done.wait();
  redispatches_.clear();
  inflight_.clear();
  dirty_keys_.clear();
  pending_redispatch_keys_.clear();
}

bool SpeculativeBackend::ProvideValue(int64_t sequence, int worker_key,
                                      double* value) {
  const auto it = inflight_.find(worker_key);
  if (it == inflight_.end() || it->second.sequence != sequence) return false;
  bool provided = true;
  if (dirty_keys_.find(worker_key) == dirty_keys_.end()) {
    // Sound speculation: no commit since the frontier formed wrote this
    // worker's compute-visible state, so the pooled result is exactly what
    // an inline run would produce now.
    *value = it->second.value;
  } else {
    // Invalidated speculation: its second-pass re-dispatch carries the value
    // an inline recompute would produce (the key has not been written since
    // the re-dispatch, or OnStateWrite would have invalidated and replaced
    // it). The inline fallback only covers the defensive no-entry case and
    // is expected to stay cold.
    const auto redispatch = redispatches_.find(worker_key);
    if (redispatch != redispatches_.end() && !redispatch->second->invalidated) {
      redispatch->second->done.wait();
      *value = redispatch->second->value;
    } else {
      ++stats_.computes_recomputed;
      provided = false;  // StepWith runs the compute half inline
    }
    if (redispatch != redispatches_.end()) redispatches_.erase(redispatch);
  }
  inflight_.erase(it);
  return provided;
}

void SpeculativeBackend::OnStateWrite(EventSimulator& /*sim*/,
                                      int worker_key) {
  if (inflight_.empty()) return;  // nothing to invalidate
  const auto redispatch = redispatches_.find(worker_key);
  if (redispatch != redispatches_.end() && !redispatch->second->invalidated) {
    // A second-pass recompute for this key is in flight (or done): finish it
    // before the caller's write can race its reads, discard its value, and
    // queue yet another re-dispatch — it will observe the caller's write
    // once the current handler returns.
    redispatch->second->done.wait();
    redispatch->second->invalidated = true;
    pending_redispatch_keys_.push_back(worker_key);
    return;
  }
  if (!dirty_keys_.insert(worker_key).second) return;  // already dirty
  // First invalidation of this key in the batch: if its speculation is still
  // awaiting its turn, queue the second-pass re-dispatch (flushed after the
  // current handler returns, so the recompute reads post-write state).
  // Without a pending speculation the insert alone records the write.
  if (inflight_.find(worker_key) != inflight_.end()) {
    pending_redispatch_keys_.push_back(worker_key);
  }
}

void SpeculativeBackend::FlushRedispatches() {
  if (pending_redispatch_keys_.empty()) return;
  std::vector<int> keys;
  keys.swap(pending_redispatch_keys_);
  SortKeysByEventOrder(keys, [this](int key) {
    const Speculation& speculation = inflight_.at(key);
    return std::make_pair(speculation.time, speculation.sequence);
  });
  for (const int key : keys) {
    const auto it = inflight_.find(key);
    NETMAX_CHECK(it != inflight_.end()) << "invalidated speculation vanished";
    auto redispatch = std::make_unique<Redispatch>();
    std::packaged_task<void()> task(
        [compute = it->second.compute, result = redispatch.get()] {
          result->value = compute();
        });
    redispatch->done = pool_->Submit(std::move(task));
    ++stats_.computes_redispatched;
    redispatches_[key] = std::move(redispatch);
  }
}

// --- AsyncPipelineBackend ---------------------------------------------------

AsyncPipelineBackend::AsyncPipelineBackend(ThreadPool* pool, int reorder_window,
                                           bool adaptive_window)
    : pool_(pool),
      reorder_window_(reorder_window),
      adaptive_window_(adaptive_window) {
  NETMAX_CHECK(pool_ != nullptr) << "AsyncPipelineBackend needs a pool";
  NETMAX_CHECK_GE(reorder_window_, 0);
  // The adaptive controller needs a live pipeline to measure; a configured
  // window of 0 (synchronous) starts at 1 instead.
  if (adaptive_window_ && reorder_window_ < 1) reorder_window_ = 1;
  if (reorder_window_ > kMaxAdaptiveWindow && adaptive_window_) {
    reorder_window_ = kMaxAdaptiveWindow;
  }
}

void AsyncPipelineBackend::Submit(Entry& entry) {
  // The pooled task writes into the heap-stable Entry; `done` publishes the
  // write to the simulator thread.
  std::packaged_task<void()> task([&entry] { entry.value = entry.compute(); });
  entry.done = pool_->Submit(std::move(task));
}

void AsyncPipelineBackend::Dispatch(EventSimulator& sim) {
  if (reorder_window_ <= 0) return;  // synchronous: every compute runs inline
  // Admit pending compute halves into the window in (time, sequence) order.
  // A key already resident is skipped — its later same-key events must
  // observe the resident event's commit — but the scan continues past it, so
  // one busy worker never blocks the pipeline for the others.
  int64_t admitted = 0;
  sim.ScanPendingComputes(
      kMaxScannedEvents,
      [&](const EventSimulator::PendingComputeView& view) {
        if (window_.find(view.worker_key) != window_.end()) {
          return EventSimulator::ScanAction::kContinue;
        }
        if (static_cast<int>(window_.size()) >= reorder_window_) {
          ++stats_.window_backpressure;  // runnable work held back: full
          return EventSimulator::ScanAction::kStop;
        }
        auto entry = std::make_unique<Entry>();
        entry->sequence = view.sequence;
        entry->worker_key = view.worker_key;
        entry->time = view.time;
        entry->compute = view.compute;
        Submit(*entry);
        window_.emplace(view.worker_key, std::move(entry));
        ++stats_.computes_speculated;
        ++admitted;
        return EventSimulator::ScanAction::kContinue;
      });
  if (admitted > 0 && window_.size() >= 2) ++stats_.parallel_batches;
  if (adaptive_window_) MaybeAdaptWindow();
}

void AsyncPipelineBackend::MaybeAdaptWindow() {
  // Re-size at a coarse cadence so each decision sees a meaningful sample of
  // the straggler behaviour, not one noisy dispatch.
  constexpr int64_t kAdaptPeriod = 64;
  if (++adapt_dispatches_ < kAdaptPeriod) return;
  adapt_dispatches_ = 0;
  const int64_t backpressure =
      stats_.window_backpressure - adapt_baseline_.window_backpressure;
  const int64_t stalls = stats_.window_stalls - adapt_baseline_.window_stalls;
  const int64_t redispatched =
      stats_.computes_redispatched - adapt_baseline_.computes_redispatched;
  adapt_baseline_ = stats_;
  // Backpressure means runnable work sat behind a full window: grow. Stalls
  // and invalidation re-dispatches mean speculation ran ahead of what the
  // commit stream could consume: shrink. Window size never affects result
  // bits (the backend invariant), so this chases throughput only.
  if (backpressure > stalls + redispatched &&
      reorder_window_ < kMaxAdaptiveWindow) {
    ++reorder_window_;
    ++stats_.window_resizes;
  } else if (stalls + redispatched > backpressure && reorder_window_ > 1) {
    --reorder_window_;
    ++stats_.window_resizes;
  }
}

int64_t AsyncPipelineBackend::DrainCommits(EventSimulator& sim) {
  const EventSimulator::SpeculationProvider provider =
      [this](int64_t sequence, int worker_key, double* value) {
        const auto it = window_.find(worker_key);
        if (it == window_.end()) return false;  // not resident: run inline
        if (it->second->sequence != sequence) {
          // A different same-key event is resident — only possible when two
          // same-key computes were pending at once, which engines never do
          // (one outstanding compute per worker). Defensive: finish the
          // resident evaluation before this event's inline compute can race
          // its scratch writes; its value stays usable because any commit
          // that writes the key must notify (invalidating it) anyway.
          it->second->done.wait();
          return false;
        }
        Entry& entry = *it->second;
        // The head of the window is the only compute the drain ever waits
        // for — later in-flight entries keep running while this commit (and
        // everything it schedules) applies.
        if (entry.done.wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready) {
          ++stats_.window_stalls;
        }
        entry.done.wait();
        const bool provided = !entry.invalidated;
        if (!provided) ++stats_.computes_recomputed;  // defensive fallback
        if (provided) *value = entry.value;
        window_.erase(it);
        return provided;
      };
  const bool stepped = sim.StepWith(provider);
  // Handlers queue invalidated keys; re-dispatch them now that the handler's
  // writes are complete, so the recompute reads post-write state.
  FlushRedispatches();
  return stepped ? 1 : 0;
}

void AsyncPipelineBackend::OnStateWrite(EventSimulator& /*sim*/,
                                        int worker_key) {
  const auto it = window_.find(worker_key);
  if (it == window_.end() || it->second->invalidated) return;
  // Unlike the speculative backend's barrier, a window-resident evaluation
  // may still be RUNNING when a handler writes its state: finish it before
  // the caller's write can race its reads, then discard the stale value by
  // queueing a re-dispatch (flushed after the handler returns).
  it->second->done.wait();
  it->second->invalidated = true;
  pending_redispatch_keys_.push_back(worker_key);
}

void AsyncPipelineBackend::FlushRedispatches() {
  if (pending_redispatch_keys_.empty()) return;
  std::vector<int> keys;
  keys.swap(pending_redispatch_keys_);
  SortKeysByEventOrder(keys, [this](int key) {
    const Entry& entry = *window_.at(key);
    return std::make_pair(entry.time, entry.sequence);
  });
  for (const int key : keys) {
    Entry& entry = *window_.at(key);
    entry.invalidated = false;
    Submit(entry);
    ++stats_.computes_redispatched;
  }
}

void AsyncPipelineBackend::OnIdle(EventSimulator& /*sim*/) {
  NETMAX_CHECK(window_.empty()) << "window entry outlived its event";
  NETMAX_CHECK(pending_redispatch_keys_.empty())
      << "re-dispatch queued after the last handler";
}

void AsyncPipelineBackend::OnHalt(EventSimulator& /*sim*/) {
  // Wait out every window-resident evaluation (their pooled tasks write into
  // the Entry objects being destroyed here), then discard the window. None of
  // it was committed, so the halted result is untouched.
  for (auto& [key, entry] : window_) entry->done.wait();
  window_.clear();
  pending_redispatch_keys_.clear();
}

}  // namespace netmax::core
