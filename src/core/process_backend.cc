#include "core/process_backend.h"

#include <signal.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/proc.h"
#include "ml/sharding.h"

// ASan/TSan and fork are a bad mix (leak reports for the child's inherited
// heap, lost interceptors in the forked runtime), so sanitizer builds run
// the backend in inline mode: same shm layout, same wave split, same reduce,
// same bits — just no second process.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define NETMAX_PROCESS_BACKEND_SANITIZED 1
#endif
#if !defined(NETMAX_PROCESS_BACKEND_SANITIZED) && defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define NETMAX_PROCESS_BACKEND_SANITIZED 1
#endif
#endif

namespace netmax::core {
namespace {

#if defined(NETMAX_PROCESS_BACKEND_SANITIZED)
constexpr bool kSanitizerBuild = true;
#else
constexpr bool kSanitizerBuild = false;
#endif

// Wave-entry lifecycle (0, the mapped-page default, is "empty").
constexpr uint32_t kEntryQueued = 1;
constexpr uint32_t kEntryDone = 2;

// Parent wait loop: how many completion scans between waitpid(WNOHANG)
// sweeps, and when to start yielding the CPU between scans. The poll period
// bounds crash-detection latency without putting a syscall in the hot
// all-done-on-first-scan path.
constexpr int kDeathPollPeriod = 64;
constexpr int kSpinsBeforeSleep = 256;
constexpr long kWaitSleepNanos = 50'000;  // 50us

// Teardown: total SIGTERM grace before SIGKILL, polled in 2ms steps.
constexpr int kShutdownDeadlineSteps = 1000;
constexpr long kShutdownStepNanos = 2'000'000;  // 2ms

void SleepNanos(long nanos) {
  timespec ts{0, nanos};
  nanosleep(&ts, nullptr);
}

}  // namespace

// One leaf range of the current wave, shm-resident. The parent writes the
// plain fields, then `state` = kQueued, then the ring tail (release): the
// child's tail acquire orders everything. Alignment keeps each entry on its
// own cache line — the parent polls `state` while other entries are written.
struct alignas(SharedArena::kSliceAlignment) ProcessPoolBackend::WaveEntry {
  std::atomic<uint32_t> state;
  int32_t worker;
  int32_t leaf_lo;
  int32_t leaf_hi;
  int32_t batch;
};

// SPSC request ring header for one child (slot words live in a separate
// arena slice): the parent is the only pusher — including re-dispatches —
// and the owning child the only popper. tail - head never exceeds the wave
// size (waves are synchronous), which is <= procs <= ring capacity, so the
// ring cannot overflow.
struct alignas(SharedArena::kSliceAlignment) ProcessPoolBackend::Ring {
  std::atomic<uint32_t> head;  // next pop (child)
  std::atomic<uint32_t> tail;  // next push (parent)
};

ProcessPoolBackend::~ProcessPoolBackend() { Shutdown(); }

// --- ExecutionBackend: serial event semantics -------------------------------
// The process parallelism lives inside the compute half (one wave per
// EvalBatchGradient), below the event order, so the event-level contract is
// exactly SerialBackend's: no dispatch-ahead, strictly ordered commits.

void ProcessPoolBackend::Dispatch(net::EventSimulator& /*sim*/) {}

int64_t ProcessPoolBackend::DrainCommits(net::EventSimulator& sim) {
  return sim.StepWith(nullptr) ? 1 : 0;
}

void ProcessPoolBackend::OnStateWrite(net::EventSimulator& /*sim*/,
                                      int /*worker_key*/) {}

// --- attach / fork ----------------------------------------------------------

Status ProcessPoolBackend::Attach(const ProcessPoolOptions& options,
                                  ProcessLeafEvalFn eval) {
  NETMAX_CHECK(!attached_) << "Attach called twice";
  NETMAX_CHECK(eval != nullptr) << "Attach needs a leaf evaluator";
  NETMAX_CHECK_GE(options.procs, 0);
  NETMAX_CHECK_GT(options.width, 0);
  NETMAX_CHECK_GT(options.max_batch, 0);

  eval_ = std::move(eval);
  procs_ = options.procs;
  if (procs_ == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    procs_ = hw == 0 ? 1 : static_cast<int>(hw);
  }
  width_ = options.width;
  max_batch_ = options.max_batch;
  max_leaves_ = ml::GradientLeafCount(static_cast<size_t>(max_batch_));
  ring_capacity_ = 1;
  while (ring_capacity_ < procs_) ring_capacity_ <<= 1;
  inline_mode_ = options.inline_mode || kSanitizerBuild;
  if (const char* env = std::getenv("NETMAX_PROCESS_INLINE")) {
    const std::string_view value(env);
    if (value == "1") inline_mode_ = true;
    if (value == "0") inline_mode_ = false;
  }

  // Arena layout (every slice 64-byte aligned, so budget alignment per
  // slice). Sized once from the model geometry; waves never allocate.
  const size_t align = SharedArena::kSliceAlignment;
  const size_t width = static_cast<size_t>(width_);
  const size_t leaves = static_cast<size_t>(max_leaves_);
  const size_t procs = static_cast<size_t>(procs_);
  size_t capacity = align + sizeof(std::atomic<uint32_t>);   // shutdown flag
  capacity += align + width * sizeof(double);                // params
  capacity += align + static_cast<size_t>(max_batch_) * sizeof(int);
  capacity += align + leaves * sizeof(double);               // loss sums
  capacity += align + leaves * width * sizeof(double);       // gradient sums
  capacity += align + procs * sizeof(WaveEntry);
  capacity += align + procs * sizeof(Ring);
  capacity += align +
              procs * static_cast<size_t>(ring_capacity_) * sizeof(uint32_t);
  NETMAX_ASSIGN_OR_RETURN(arena_, SharedArena::Map(capacity));
  shutdown_ = arena_.Allocate<std::atomic<uint32_t>>(1);
  params_ = arena_.Allocate<double>(width);
  indices_ = arena_.Allocate<int>(static_cast<size_t>(max_batch_));
  loss_sums_ = arena_.Allocate<double>(leaves);
  gradient_sums_ = arena_.Allocate<double>(leaves * width);
  waves_ = arena_.Allocate<WaveEntry>(procs);
  rings_ = arena_.Allocate<Ring>(procs);
  ring_slots_ =
      arena_.Allocate<uint32_t>(procs * static_cast<size_t>(ring_capacity_));

  entry_owner_.assign(procs, -1);
  children_.assign(procs, -1);
  if (!inline_mode_) {
    // Fork LAST: the children inherit the final worker slab (models, shards,
    // workspaces) by copy-on-write, plus the arena pages by sharing.
    for (int j = 0; j < procs_; ++j) {
      const pid_t pid = fork();
      if (pid < 0) {
        const Status error = InternalError(
            std::string("process backend fork failed: ") +
            std::strerror(errno));
        Shutdown();  // tear down the children forked so far
        return error;
      }
      if (pid == 0) ChildMain(j);  // never returns
      children_[j] = pid;
    }
  }
  attached_ = true;
  return Status::Ok();
}

// --- child ------------------------------------------------------------------

void ProcessPoolBackend::ChildMain(int j) {
  // NUMA placement: child j works the CPUs of node floor(j * nodes / procs),
  // so consecutive children spread across sockets and a child's model/
  // workspace pages (first touched after fork, on its node) stay local.
  // Best-effort: a single node, hidden /sys, or a refused affinity mask
  // leaves the child unpinned. No-op on single-node machines.
  const std::vector<std::vector<int>> nodes = ReadNumaNodeCpus();
  if (nodes.size() > 1) {
    const size_t node =
        static_cast<size_t>(j) * nodes.size() / static_cast<size_t>(procs_);
    (void)PinToCpus(nodes[node]);  // best-effort: never gates progress
  }

  Ring& ring = rings_[j];
  uint32_t* slots =
      ring_slots_ + static_cast<size_t>(j) * static_cast<size_t>(ring_capacity_);
  const uint32_t mask = static_cast<uint32_t>(ring_capacity_ - 1);
  int spins = 0;
  for (;;) {
    if (shutdown_->load(std::memory_order_acquire) != 0) _exit(0);
    const uint32_t head = ring.head.load(std::memory_order_relaxed);
    if (head == ring.tail.load(std::memory_order_acquire)) {
      if (++spins > kSpinsBeforeSleep) SleepNanos(kWaitSleepNanos);
      continue;
    }
    spins = 0;
    const uint32_t index = slots[head & mask];
    ring.head.store(head + 1, std::memory_order_release);
    WaveEntry& entry = waves_[index];
    EvalEntry(entry);
    entry.state.store(kEntryDone, std::memory_order_release);
  }
}

void ProcessPoolBackend::EvalEntry(const WaveEntry& entry) {
  const size_t lo = static_cast<size_t>(entry.leaf_lo);
  const size_t count = static_cast<size_t>(entry.leaf_hi - entry.leaf_lo);
  const size_t width = static_cast<size_t>(width_);
  eval_(entry.worker, std::span<const double>(params_, width),
        std::span<const int>(indices_, static_cast<size_t>(entry.batch)),
        entry.leaf_lo, entry.leaf_hi,
        std::span<double>(loss_sums_ + lo, count),
        std::span<double>(gradient_sums_ + lo * width, count * width));
}

// --- parent wave ------------------------------------------------------------

double ProcessPoolBackend::LossAndGradient(int w,
                                           std::span<const double> params,
                                           std::span<const int> indices,
                                           std::span<double> gradient) {
  NETMAX_CHECK(attached_) << "LossAndGradient before Attach";
  NETMAX_CHECK(!indices.empty());
  NETMAX_CHECK_EQ(static_cast<int64_t>(params.size()), width_);
  NETMAX_CHECK_EQ(static_cast<int64_t>(gradient.size()), width_);
  NETMAX_CHECK_LE(static_cast<int>(indices.size()), max_batch_);

  std::copy(params.begin(), params.end(), params_);
  std::copy(indices.begin(), indices.end(), indices_);

  // Split the fixed leaf decomposition into contiguous balanced ranges, one
  // per wave slot — the SAME `lo = leaves*t/procs` split as the in-process
  // shard driver, over procs_ slots regardless of how many children are
  // still alive. The split (like the leaf geometry and the tree reduction)
  // only decides WHO computes a leaf, never what is summed in which order,
  // so bits match every other backend for any procs value.
  const int num_leaves = ml::GradientLeafCount(indices.size());
  int wave_size = 0;
  for (int t = 0; t < procs_; ++t) {
    const int lo = num_leaves * t / procs_;
    const int hi = num_leaves * (t + 1) / procs_;
    if (lo == hi) continue;
    WaveEntry& entry = waves_[wave_size];
    entry.worker = w;
    entry.leaf_lo = lo;
    entry.leaf_hi = hi;
    entry.batch = static_cast<int32_t>(indices.size());
    entry.state.store(kEntryQueued, std::memory_order_relaxed);
    ++wave_size;
  }

  if (inline_mode_ || live_children() == 0) {
    // Inline mode, or every child already died: the parent evaluates the
    // identical ranges itself.
    for (int i = 0; i < wave_size; ++i) {
      EvalEntry(waves_[i]);
      waves_[i].state.store(kEntryDone, std::memory_order_relaxed);
    }
  } else {
    int child = -1;
    for (int i = 0; i < wave_size; ++i) {
      child = NextLiveChild(child);
      entry_owner_[static_cast<size_t>(i)] = child;
      PushToChild(child, static_cast<uint32_t>(i));
    }
    if (wave_size >= 2) ++stats_.parallel_batches;
    AwaitWave(wave_size);
  }

  // Identical combine arithmetic to ml::ShardedLossAndGradient, over the
  // shm-resident partials (no pool: the parent is single-threaded under this
  // backend).
  const size_t width = static_cast<size_t>(width_);
  std::span<double> loss_sums(loss_sums_, static_cast<size_t>(num_leaves));
  std::span<double> gradient_sums(gradient_sums_,
                                  static_cast<size_t>(num_leaves) * width);
  ml::TreeReducePartials(loss_sums, num_leaves, 1, nullptr);
  const double inv_batch = 1.0 / static_cast<double>(indices.size());
  ml::TreeReducePartials(gradient_sums, num_leaves, width, nullptr);
  for (size_t j = 0; j < width; ++j) {
    gradient[j] = gradient_sums[j] * inv_batch;
  }
  return loss_sums[0] * inv_batch;
}

void ProcessPoolBackend::PushToChild(int j, uint32_t index) {
  Ring& ring = rings_[j];
  uint32_t* slots =
      ring_slots_ + static_cast<size_t>(j) * static_cast<size_t>(ring_capacity_);
  const uint32_t tail = ring.tail.load(std::memory_order_relaxed);
  slots[tail & static_cast<uint32_t>(ring_capacity_ - 1)] = index;
  // Publishes the slot word AND the entry fields written before the push.
  ring.tail.store(tail + 1, std::memory_order_release);
}

void ProcessPoolBackend::AwaitWave(int wave_size) {
  int spins = 0;
  for (;;) {
    bool all_done = true;
    for (int i = 0; i < wave_size; ++i) {
      if (waves_[i].state.load(std::memory_order_acquire) != kEntryDone) {
        all_done = false;
        break;
      }
    }
    if (all_done) return;
    ++spins;
    if (spins % kDeathPollPeriod == 0 && ReapDeadChildren()) {
      RedispatchOrphans(wave_size);
    }
    if (spins > kSpinsBeforeSleep) SleepNanos(kWaitSleepNanos);
  }
}

bool ProcessPoolBackend::ReapDeadChildren() {
  bool changed = false;
  for (int j = 0; j < procs_; ++j) {
    const pid_t pid = children_[static_cast<size_t>(j)];
    if (pid < 0) continue;
    int status = 0;
    const pid_t reaped = waitpid(pid, &status, WNOHANG);
    if (reaped == 0) continue;  // still running
    // reaped == pid: the child is gone. reaped < 0 (ECHILD) means someone
    // else collected it — equally gone.
    if (child_failure_.ok()) {
      std::string detail;
      if (reaped == pid && WIFSIGNALED(status)) {
        detail = "killed by signal " + std::to_string(WTERMSIG(status));
      } else if (reaped == pid && WIFEXITED(status)) {
        detail = "exited with status " + std::to_string(WEXITSTATUS(status));
      } else {
        detail = "vanished";
      }
      child_failure_ = InternalError(
          "process backend child " + std::to_string(static_cast<long>(pid)) +
          " " + detail +
          " mid-run; its unfinished leaf ranges were re-dispatched");
    }
    ++stats_.process_child_deaths;
    children_[static_cast<size_t>(j)] = -1;
    changed = true;
  }
  return changed;
}

void ProcessPoolBackend::RedispatchOrphans(int wave_size) {
  // Re-push every unfinished entry whose owner died. Re-computing a range a
  // dead child half-wrote is safe by construction: leaf evaluation assigns
  // its whole output slice (zero-fill + accumulate per leaf), it never reads
  // prior contents. Entries round-robin over the survivors; with none left
  // the parent computes them itself — the bits cannot tell the difference.
  int child = -1;
  for (int i = 0; i < wave_size; ++i) {
    const int owner = entry_owner_[static_cast<size_t>(i)];
    if (owner >= 0 && children_[static_cast<size_t>(owner)] >= 0) continue;
    WaveEntry& entry = waves_[i];
    if (entry.state.load(std::memory_order_acquire) == kEntryDone) continue;
    ++stats_.process_ranges_redispatched;
    child = NextLiveChild(child);
    if (child < 0) {
      EvalEntry(entry);
      entry.state.store(kEntryDone, std::memory_order_relaxed);
    } else {
      entry_owner_[static_cast<size_t>(i)] = child;
      PushToChild(child, static_cast<uint32_t>(i));
    }
  }
}

int ProcessPoolBackend::NextLiveChild(int after) const {
  for (int step = 1; step <= procs_; ++step) {
    const int j = (after + step) % procs_;
    if (children_[static_cast<size_t>(j)] >= 0) return j;
  }
  return -1;
}

int ProcessPoolBackend::live_children() const {
  int live = 0;
  for (const pid_t pid : children_) {
    if (pid >= 0) ++live;
  }
  return live;
}

pid_t ProcessPoolBackend::child_pid(int j) const {
  if (j < 0 || j >= static_cast<int>(children_.size())) return -1;
  return children_[static_cast<size_t>(j)];
}

// --- teardown ---------------------------------------------------------------

void ProcessPoolBackend::Shutdown() {
  if (shutdown_ != nullptr) {
    shutdown_->store(1, std::memory_order_release);
  }
  bool any_live = false;
  for (const pid_t pid : children_) {
    if (pid >= 0) {
      kill(pid, SIGTERM);
      any_live = true;
    }
  }
  if (!any_live) return;
  // Grace period: idle children notice the shutdown flag within one sleep
  // quantum, busy ones finish their range first. SIGKILL whatever remains
  // past the deadline — their wave (if any) was already torn down with the
  // run, so nothing is lost.
  for (int step = 0; step < kShutdownDeadlineSteps; ++step) {
    any_live = false;
    for (pid_t& pid : children_) {
      if (pid < 0) continue;
      int status = 0;
      if (waitpid(pid, &status, WNOHANG) != 0) {
        pid = -1;
      } else {
        any_live = true;
      }
    }
    if (!any_live) return;
    SleepNanos(kShutdownStepNanos);
  }
  for (pid_t& pid : children_) {
    if (pid < 0) continue;
    kill(pid, SIGKILL);
    int status = 0;
    waitpid(pid, &status, 0);
    pid = -1;
  }
}

}  // namespace netmax::core
