#include "core/monitor.h"

#include <algorithm>

namespace netmax::core {

NetworkMonitor::NetworkMonitor(net::Topology topology, MonitorOptions options)
    : options_(options), generator_(std::move(topology), options.generator) {
  NETMAX_CHECK_GT(options_.schedule_period_seconds, 0.0);
}

std::optional<linalg::Matrix> NetworkMonitor::FillMissingTimes(
    const linalg::Matrix& ema_times) const {
  const net::Topology& topo = generator_.topology();
  const int n = topo.num_nodes();
  NETMAX_CHECK_EQ(ema_times.rows(), n);
  NETMAX_CHECK_EQ(ema_times.cols(), n);
  double max_measured = 0.0;
  for (int i = 0; i < n; ++i) {
    for (int m : topo.Neighbors(i)) {
      max_measured = std::max(max_measured, ema_times(i, m));
    }
  }
  if (max_measured <= 0.0) return std::nullopt;
  linalg::Matrix filled = ema_times;
  for (int i = 0; i < n; ++i) {
    for (int m : topo.Neighbors(i)) {
      if (filled(i, m) <= 0.0) filled(i, m) = max_measured;
    }
  }
  return filled;
}

StatusOr<GeneratedPolicy> NetworkMonitor::ComputePolicy(
    const linalg::Matrix& ema_times, ThreadPool* pool) const {
  std::optional<linalg::Matrix> filled = FillMissingTimes(ema_times);
  if (!filled.has_value()) {
    return FailedPreconditionError(
        "no iteration times measured yet; workers still warming up");
  }
  StatusOr<GeneratedPolicy> result = generator_.Generate(*filled, pool);
  if (result.ok()) ++policies_generated_;
  return result;
}

}  // namespace netmax::core
