#ifndef NETMAX_CORE_POLICY_GENERATOR_H_
#define NETMAX_CORE_POLICY_GENERATOR_H_

// Communication-policy generation (paper Algorithm 3).
//
// Searches K values of rho in (0, 0.5/alpha] (outer loop) and, per rho,
// R values of the global average step time t_bar in the feasible interval
// [L, U] of Appendix A (inner loop). Every grid point solves the LP of
// Eq. (14):
//     min sum_i p_{i,i}
//     s.t. sum_m t_{i,m} p_{i,m} d_{i,m} = M * t_bar   for all i   (Eq. 10)
//          p_{i,m} >= alpha*rho*(d_{i,m}+d_{m,i})      on edges    (Eq. 11)
//          p_{i,m} = 0 off edges, rows sum to 1                    (12, 13)
// then scores the candidate by T_conv = t_bar * ln(eps) / ln(lambda_2(Y_P))
// and returns the best policy found.
//
// The same machinery generates policies for pairwise-averaging gossip
// (Section III-D extension, e.g. AD-PSGD + Monitor) by swapping the Y matrix
// construction and the Eq. (11) lower bound.

#include <vector>

#include "common/status.h"
#include "core/policy.h"
#include "linalg/matrix.h"
#include "net/topology.h"

namespace netmax {
class ThreadPool;
}  // namespace netmax

namespace netmax::core {

struct PolicyGeneratorOptions {
  // SGD learning rate alpha (bounds rho's feasible interval).
  double alpha = 0.1;
  // K: number of rho values searched.
  int outer_rounds = 8;
  // R: number of t_bar values searched per rho.
  int inner_rounds = 8;
  // eps of constraint (9): lambda^k <= eps defines "converged".
  double epsilon = 0.01;
  // Strictness margin added to the Eq. (11) lower bound so the inequality is
  // strict and gamma stays bounded.
  double probability_margin = 1e-4;
  // Consensus update family: kConsensus scores candidates with NetMax's Y
  // (coefficient alpha*rho/p); kAveraging with the fixed-weight gossip Y
  // (Section III-D), where rho plays no role in the update and the Eq. (11)
  // bound degenerates to the margin alone.
  enum class Mode { kConsensus, kAveraging };
  Mode mode = Mode::kConsensus;
  // Averaging weight for Mode::kAveraging (AD-PSGD uses 1/2).
  double averaging_weight = 0.5;
};

struct GeneratedPolicy {
  CommunicationPolicy policy;
  // rho chosen by the outer loop (meaningful for Mode::kConsensus).
  double rho = 0.0;
  // Second-largest eigenvalue of Y_P for the chosen policy.
  double lambda2 = 0.0;
  // t_bar: the global average step time of the chosen grid point (seconds).
  double average_step_seconds = 0.0;
  // The minimized objective T_conv = t_bar * ln(eps)/ln(lambda2) (seconds).
  double expected_convergence_seconds = 0.0;
};

class PolicyGenerator {
 public:
  PolicyGenerator(net::Topology topology, PolicyGeneratorOptions options);

  // Runs Algorithm 3 on the measured iteration-time matrix [t_{i,m}]
  // (seconds; only entries on edges are read; all edge entries must be
  // positive). Returns kInfeasible if no grid point admits a feasible LP.
  //
  // The (rho, t_bar) grid points are independent LP solves; when `pool` is
  // non-null they fan out across it. The selected policy is identical either
  // way: candidates are scored serially with the argmin tie broken toward the
  // lowest grid index (outer-then-inner order), matching the serial loops.
  StatusOr<GeneratedPolicy> Generate(const linalg::Matrix& iteration_times,
                                     ThreadPool* pool = nullptr) const;

  const PolicyGeneratorOptions& options() const { return options_; }
  const net::Topology& topology() const { return topology_; }

  // Feasible t_bar interval [L, U] for a given rho (Appendix A, Eqs. 25-28).
  // L > U means this rho admits no feasible policy.
  std::pair<double, double> FeasibleStepTimeInterval(
      double rho, const linalg::Matrix& iteration_times) const;

 private:
  struct Candidate {
    CommunicationPolicy policy;
    double rho;
    double lambda2;
    double t_bar;
    double t_convergence;
  };

  // Evaluates one grid point (fixed rho and t_bar): LP solve + lambda_2
  // scoring. Pure function of its arguments, safe to run concurrently.
  StatusOr<Candidate> EvaluateGridPoint(
      double rho, double t_bar, const linalg::Matrix& iteration_times) const;

  // Solves the LP of Eq. (14) for fixed (rho, t_bar).
  StatusOr<CommunicationPolicy> SolvePolicyLp(
      double rho, double t_bar, const linalg::Matrix& iteration_times) const;

  // Scores a feasible policy: computes lambda_2 of the mode's Y matrix.
  StatusOr<double> Lambda2(const CommunicationPolicy& policy, double rho) const;

  net::Topology topology_;
  PolicyGeneratorOptions options_;
};

}  // namespace netmax::core

#endif  // NETMAX_CORE_POLICY_GENERATOR_H_
