#include "core/policy_generator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "linalg/eigen.h"
#include "linalg/simplex.h"

namespace netmax::core {
namespace {

// Numerical floor below which lambda_2 is treated as "converges in one step".
constexpr double kLambdaFloor = 1e-12;

}  // namespace

PolicyGenerator::PolicyGenerator(net::Topology topology,
                                 PolicyGeneratorOptions options)
    : topology_(std::move(topology)), options_(options) {
  NETMAX_CHECK_GT(options_.alpha, 0.0);
  NETMAX_CHECK_GE(options_.outer_rounds, 1);
  NETMAX_CHECK_GE(options_.inner_rounds, 1);
  NETMAX_CHECK(options_.epsilon > 0.0 && options_.epsilon < 1.0);
  NETMAX_CHECK_GT(options_.probability_margin, 0.0);
  NETMAX_CHECK(topology_.IsConnected())
      << "Assumption 1 requires a connected graph";
}

namespace {

// Eq. (11) lower bound for an edge probability: 2*alpha*rho (both indicators
// are 1 on an undirected edge) made strict by the margin. In averaging mode
// the update coefficient does not depend on p, so only the margin is needed
// to keep Y_P's off-diagonals positive (irreducibility, Lemma 3).
double EdgeLowerBound(const PolicyGeneratorOptions& options, double rho) {
  if (options.mode == PolicyGeneratorOptions::Mode::kAveraging) {
    return options.probability_margin;
  }
  return 2.0 * options.alpha * rho + options.probability_margin;
}

}  // namespace

std::pair<double, double> PolicyGenerator::FeasibleStepTimeInterval(
    double rho, const linalg::Matrix& iteration_times) const {
  const int n = topology_.num_nodes();
  const double lb = EdgeLowerBound(options_, rho);
  double lower = 0.0;   // max over i of (1/M) sum_m t_im * lb   (Eq. 26)
  double upper = std::numeric_limits<double>::infinity();  // Eq. 28
  for (int i = 0; i < n; ++i) {
    double sum_t = 0.0;
    double max_t = 0.0;
    for (int m : topology_.Neighbors(i)) {
      const double t = iteration_times(i, m);
      sum_t += t;
      max_t = std::max(max_t, t);
    }
    lower = std::max(lower, lb * sum_t / static_cast<double>(n));
    upper = std::min(upper, max_t / static_cast<double>(n));
  }
  return {lower, upper};
}

StatusOr<CommunicationPolicy> PolicyGenerator::SolvePolicyLp(
    double rho, double t_bar, const linalg::Matrix& iteration_times) const {
  const int n = topology_.num_nodes();
  const double lb = EdgeLowerBound(options_, rho);

  // Variable layout: first the n self-probabilities p_{i,i}, then one
  // variable per directed edge (i -> m), in row-major edge order.
  std::vector<std::pair<int, int>> edges;
  std::vector<int> edge_var(static_cast<size_t>(n) * n, -1);
  for (int i = 0; i < n; ++i) {
    for (int m : topology_.Neighbors(i)) {
      edge_var[static_cast<size_t>(i) * n + m] =
          n + static_cast<int>(edges.size());
      edges.emplace_back(i, m);
    }
  }
  const int num_vars = n + static_cast<int>(edges.size());

  linalg::LpProblem lp;
  lp.num_vars = num_vars;
  lp.objective.assign(static_cast<size_t>(num_vars), 0.0);
  for (int i = 0; i < n; ++i) lp.objective[static_cast<size_t>(i)] = 1.0;
  lp.lower_bounds.assign(static_cast<size_t>(num_vars), 0.0);
  lp.upper_bounds.assign(static_cast<size_t>(num_vars), 1.0);
  for (size_t e = 0; e < edges.size(); ++e) {
    lp.lower_bounds[static_cast<size_t>(n) + e] = lb;
  }

  // Eq. (10): sum_m t_{i,m} p_{i,m} = M * t_bar for every i.
  for (int i = 0; i < n; ++i) {
    std::vector<double> row(static_cast<size_t>(num_vars), 0.0);
    for (int m : topology_.Neighbors(i)) {
      row[static_cast<size_t>(edge_var[static_cast<size_t>(i) * n + m])] =
          iteration_times(i, m);
    }
    lp.AddConstraint(std::move(row), linalg::LpRelation::kEqual,
                     static_cast<double>(n) * t_bar);
  }
  // Eq. (13): rows of P sum to 1.
  for (int i = 0; i < n; ++i) {
    std::vector<double> row(static_cast<size_t>(num_vars), 0.0);
    row[static_cast<size_t>(i)] = 1.0;
    for (int m : topology_.Neighbors(i)) {
      row[static_cast<size_t>(edge_var[static_cast<size_t>(i) * n + m])] = 1.0;
    }
    lp.AddConstraint(std::move(row), linalg::LpRelation::kEqual, 1.0);
  }

  StatusOr<linalg::LpSolution> solution = linalg::SolveLp(lp);
  if (!solution.ok()) return solution.status();

  linalg::Matrix p(n, n, 0.0);
  for (int i = 0; i < n; ++i) {
    p(i, i) = std::max(0.0, solution->x[static_cast<size_t>(i)]);
  }
  for (size_t e = 0; e < edges.size(); ++e) {
    const auto [i, m] = edges[e];
    p(i, m) = std::max(0.0, solution->x[static_cast<size_t>(n) + e]);
  }
  // Renormalize away simplex round-off so rows sum to exactly 1.
  for (int i = 0; i < n; ++i) {
    const double row_sum = p.RowSum(i);
    NETMAX_CHECK_GT(row_sum, 0.0);
    for (int m = 0; m < n; ++m) p(i, m) /= row_sum;
  }
  return CommunicationPolicy(std::move(p));
}

StatusOr<double> PolicyGenerator::Lambda2(const CommunicationPolicy& policy,
                                          double rho) const {
  // Any feasible policy equalizes average iteration times, so p_i = 1/M
  // (Lemma 1).
  const int n = topology_.num_nodes();
  std::vector<double> uniform(static_cast<size_t>(n),
                              1.0 / static_cast<double>(n));
  StatusOr<linalg::Matrix> y =
      options_.mode == PolicyGeneratorOptions::Mode::kAveraging
          ? BuildAveragingY(policy, topology_, options_.averaging_weight,
                            uniform)
          : BuildNetMaxY(policy, topology_, options_.alpha, rho, uniform);
  if (!y.ok()) return y.status();
  return linalg::SecondLargestEigenvalue(y.value());
}

StatusOr<PolicyGenerator::Candidate> PolicyGenerator::EvaluateGridPoint(
    double rho, double t_bar, const linalg::Matrix& iteration_times) const {
  StatusOr<CommunicationPolicy> policy =
      SolvePolicyLp(rho, t_bar, iteration_times);
  if (!policy.ok()) return policy.status();
  StatusOr<double> lambda2 = Lambda2(policy.value(), rho);
  if (!lambda2.ok()) return lambda2.status();
  const double l2 = lambda2.value();
  if (l2 >= 1.0 - kLambdaFloor) {
    return InfeasibleError("no contraction at this grid point");
  }
  // T_conv = t_bar * ln(eps) / ln(lambda2); for lambda2 <= 0 consensus
  // mixes in a single step, so t_bar itself is the cost.
  const double t_convergence =
      l2 <= kLambdaFloor ? t_bar
                         : t_bar * std::log(options_.epsilon) / std::log(l2);
  return Candidate{std::move(policy.value()), rho, l2, t_bar, t_convergence};
}

StatusOr<GeneratedPolicy> PolicyGenerator::Generate(
    const linalg::Matrix& iteration_times, ThreadPool* pool) const {
  const int n = topology_.num_nodes();
  if (iteration_times.rows() != n || iteration_times.cols() != n) {
    return InvalidArgumentError("iteration-time matrix has wrong shape");
  }
  for (int i = 0; i < n; ++i) {
    for (int m : topology_.Neighbors(i)) {
      if (!(iteration_times(i, m) > 0.0)) {
        return InvalidArgumentError(
            "iteration time for edge (" + std::to_string(i) + "," +
            std::to_string(m) + ") must be positive");
      }
    }
  }

  // Outer loop over rho (Appendix A gives rho in (0, 0.5/alpha]). On a
  // heterogeneous network only small rho values are feasible, because
  // Eq. (11) forces 2*alpha*rho of probability mass onto every (possibly very
  // slow) link; a grid over (0, 0.5/alpha] can then miss the feasible region
  // entirely. Since L(rho) of Eq. (26) is linear in rho and U is constant,
  // the largest feasible rho has the closed form
  //   (2*alpha*rho_max + margin) * max_i sum_m t_im / M = U,
  // so we place the K grid points over (0, rho_max] instead.
  const bool averaging =
      options_.mode == PolicyGeneratorOptions::Mode::kAveraging;
  double rho_max = 0.5 / options_.alpha;
  if (!averaging) {
    const int n = topology_.num_nodes();
    double max_row_time = 0.0;
    double upper = std::numeric_limits<double>::infinity();
    for (int i = 0; i < n; ++i) {
      double sum_t = 0.0;
      double max_t = 0.0;
      for (int m : topology_.Neighbors(i)) {
        sum_t += iteration_times(i, m);
        max_t = std::max(max_t, iteration_times(i, m));
      }
      max_row_time = std::max(max_row_time, sum_t);
      upper = std::min(upper, max_t);
    }
    const double rho_feasible =
        (upper / max_row_time - options_.probability_margin) /
        (2.0 * options_.alpha);
    if (rho_feasible <= 0.0) {
      return InfeasibleError("no rho admits a feasible policy");
    }
    rho_max = std::min(rho_max, rho_feasible);
  }

  // Flatten the (rho, t_bar) search into independent grid points. The
  // Appendix-A feasible interval is cheap and computed up front per rho; the
  // per-point LP solve + lambda_2 scoring dominates and is a pure function of
  // (rho, t_bar), so the points fan out across the pool.
  const int rounds = averaging ? 1 : options_.outer_rounds;
  const double rho_delta = rho_max / static_cast<double>(rounds);
  const int inner = options_.inner_rounds;
  struct GridPoint {
    bool feasible = false;
    double rho = 0.0;
    double t_bar = 0.0;
  };
  std::vector<GridPoint> grid(static_cast<size_t>(rounds) *
                              static_cast<size_t>(inner));
  for (int k = 1; k <= rounds; ++k) {
    const double rho = averaging ? 0.0 : rho_delta * static_cast<double>(k);
    const auto [lower, upper] = FeasibleStepTimeInterval(rho, iteration_times);
    if (!(lower <= upper)) continue;  // this rho admits no feasible t_bar
    const double delta = (upper - lower) / static_cast<double>(inner);
    for (int r = 1; r <= inner; ++r) {
      GridPoint& point =
          grid[static_cast<size_t>(k - 1) * static_cast<size_t>(inner) +
               static_cast<size_t>(r - 1)];
      point.feasible = true;
      point.rho = rho;
      point.t_bar = lower + delta * static_cast<double>(r);
    }
  }

  std::vector<std::optional<Candidate>> candidates(grid.size());
  const auto evaluate = [&](int g) {
    const GridPoint& point = grid[static_cast<size_t>(g)];
    if (!point.feasible) return;
    StatusOr<Candidate> candidate =
        EvaluateGridPoint(point.rho, point.t_bar, iteration_times);
    if (candidate.ok()) {
      candidates[static_cast<size_t>(g)] = std::move(candidate.value());
    }
  };
  if (pool != nullptr && grid.size() > 1) {
    ParallelFor(*pool, static_cast<int>(grid.size()), evaluate);
  } else {
    for (int g = 0; g < static_cast<int>(grid.size()); ++g) evaluate(g);
  }

  // Deterministic argmin regardless of evaluation order: strict less-than
  // with the lowest grid index winning ties — exactly the first-wins
  // selection of the original nested (outer rho, inner t_bar) loops.
  std::optional<size_t> best;
  for (size_t g = 0; g < candidates.size(); ++g) {
    if (!candidates[g].has_value()) continue;
    if (!best.has_value() ||
        candidates[g]->t_convergence < candidates[*best]->t_convergence) {
      best = g;
    }
  }
  if (!best.has_value()) return InfeasibleError("no feasible policy found");

  Candidate& winner = *candidates[*best];
  GeneratedPolicy out{std::move(winner.policy), winner.rho, winner.lambda2,
                      winner.t_bar, winner.t_convergence};
  return out;
}

}  // namespace netmax::core
