#include "core/policy.h"

#include <cmath>
#include <functional>

namespace netmax::core {

CommunicationPolicy::CommunicationPolicy(linalg::Matrix probabilities)
    : probabilities_(std::move(probabilities)) {
  NETMAX_CHECK_EQ(probabilities_.rows(), probabilities_.cols());
  NETMAX_CHECK_GT(probabilities_.rows(), 0);
}

CommunicationPolicy CommunicationPolicy::Uniform(
    const net::Topology& topology) {
  const int n = topology.num_nodes();
  linalg::Matrix p(n, n, 0.0);
  for (int i = 0; i < n; ++i) {
    const auto& neighbors = topology.Neighbors(i);
    NETMAX_CHECK(!neighbors.empty())
        << "node " << i << " has no neighbors; cannot build a uniform policy";
    const double share = 1.0 / static_cast<double>(neighbors.size());
    for (int m : neighbors) p(i, m) = share;
  }
  return CommunicationPolicy(std::move(p));
}

Status CommunicationPolicy::Validate(const net::Topology& topology,
                                     double tol) const {
  if (num_workers() != topology.num_nodes()) {
    return InvalidArgumentError("policy size does not match topology");
  }
  const int n = num_workers();
  for (int i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (int m = 0; m < n; ++m) {
      const double p = probabilities_(i, m);
      if (p < -tol) {
        return InvalidArgumentError("negative probability at (" +
                                    std::to_string(i) + "," +
                                    std::to_string(m) + ")");
      }
      if (i != m && !topology.AreNeighbors(i, m) && p > tol) {
        return InvalidArgumentError(
            "positive probability on non-edge (" + std::to_string(i) + "," +
            std::to_string(m) + ")");
      }
      row_sum += p;
    }
    if (std::fabs(row_sum - 1.0) > tol) {
      return InvalidArgumentError("row " + std::to_string(i) +
                                  " sums to " + std::to_string(row_sum));
    }
  }
  return Status::Ok();
}

double AverageIterationTime(const linalg::Matrix& iteration_times,
                            const CommunicationPolicy& policy,
                            const net::Topology& topology, int i) {
  NETMAX_CHECK_EQ(iteration_times.rows(), policy.num_workers());
  NETMAX_CHECK_EQ(iteration_times.cols(), policy.num_workers());
  double total = 0.0;
  for (int m : topology.Neighbors(i)) {
    total += iteration_times(i, m) * policy.probability(i, m);
  }
  return total;
}

StatusOr<std::vector<double>> GlobalStepProbabilities(
    const linalg::Matrix& iteration_times, const CommunicationPolicy& policy,
    const net::Topology& topology) {
  const int n = policy.num_workers();
  std::vector<double> inverse_times(static_cast<size_t>(n));
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    const double t_i =
        AverageIterationTime(iteration_times, policy, topology, i);
    if (t_i <= 0.0) {
      return InvalidArgumentError("node " + std::to_string(i) +
                                  " has non-positive average iteration time");
    }
    inverse_times[static_cast<size_t>(i)] = 1.0 / t_i;
    total += inverse_times[static_cast<size_t>(i)];
  }
  for (double& p : inverse_times) p /= total;
  return inverse_times;
}

namespace {

// Shared accumulation of Y = E[(D^k)^T D^k] where D^k = I + c e_i(e_m-e_i)^T
// for the event "i pulls from m" (probability p_i * p_{i,m}) and c is the
// event's update coefficient. Per event the contribution to Y is
//   (-2c + c^2) E_ii + c^2 E_mm + (c - c^2)(E_im + E_mi).
StatusOr<linalg::Matrix> BuildY(
    const CommunicationPolicy& policy, const net::Topology& topology,
    std::span<const double> global_probs,
    const std::function<StatusOr<double>(int, int)>& coefficient) {
  const int n = policy.num_workers();
  if (static_cast<int>(global_probs.size()) != n) {
    return InvalidArgumentError("global_probs size mismatch");
  }
  NETMAX_RETURN_IF_ERROR(policy.Validate(topology));
  linalg::Matrix y = linalg::Matrix::Identity(n);
  for (int i = 0; i < n; ++i) {
    for (int m : topology.Neighbors(i)) {
      const double p_event =
          global_probs[static_cast<size_t>(i)] * policy.probability(i, m);
      if (p_event <= 0.0) continue;  // the event never happens
      StatusOr<double> c_or = coefficient(i, m);
      if (!c_or.ok()) return c_or.status();
      const double c = c_or.value();
      y(i, i) += p_event * (-2.0 * c + c * c);
      y(m, m) += p_event * c * c;
      y(i, m) += p_event * (c - c * c);
      y(m, i) += p_event * (c - c * c);
    }
  }
  return y;
}

}  // namespace

StatusOr<linalg::Matrix> BuildNetMaxY(const CommunicationPolicy& policy,
                                      const net::Topology& topology,
                                      double alpha, double rho,
                                      std::span<const double> global_probs,
                                      bool allow_overshoot) {
  if (alpha <= 0.0) return InvalidArgumentError("alpha must be positive");
  if (rho < 0.0) return InvalidArgumentError("rho must be non-negative");
  return BuildY(policy, topology, global_probs,
                [&](int i, int m) -> StatusOr<double> {
                  // gamma_{i,m} = (d_{i,m}+d_{m,i}) / (2 p_{i,m}) and both
                  // indicators are 1 on an edge of the undirected graph.
                  const double p = policy.probability(i, m);
                  const double c = alpha * rho / p;
                  if (!allow_overshoot && c >= 1.0) {
                    return InvalidArgumentError(
                        "alpha*rho*gamma >= 1 for edge (" + std::to_string(i) +
                        "," + std::to_string(m) +
                        "): consensus step overshoots");
                  }
                  return c;
                });
}

StatusOr<linalg::Matrix> BuildAveragingY(
    const CommunicationPolicy& policy, const net::Topology& topology,
    double weight, std::span<const double> global_probs) {
  if (weight <= 0.0 || weight > 1.0) {
    return InvalidArgumentError("averaging weight must be in (0, 1]");
  }
  return BuildY(policy, topology, global_probs,
                [&](int, int) -> StatusOr<double> { return weight; });
}

}  // namespace netmax::core
