#ifndef NETMAX_CORE_PROCESS_BACKEND_H_
#define NETMAX_CORE_PROCESS_BACKEND_H_

// Multi-process execution backend: fork + MAP_SHARED gradient compute with
// crash isolation and NUMA-aware placement.
//
// At attach time the backend maps one anonymous MAP_SHARED arena
// (common/shm.h) holding
//
//   [control]  shutdown flag
//   [params]   one model-parameter slot (width doubles)
//   [indices]  one batch-index slot (max_batch ints)
//   [loss]     per-leaf unscaled loss sums (max_leaves doubles)
//   [grads]    per-leaf unscaled gradient sums (max_leaves x width doubles)
//   [waves]    one wave-entry table (procs entries: state + leaf range)
//   [rings]    one SPSC request ring per child (entry indices)
//
// and forks `procs` long-lived children. Each batch-gradient evaluation is
// one synchronous "wave": the parent copies the owning worker's parameters
// and batch indices into the shm slots, splits the fixed leaf decomposition
// (ml/sharding.h) into contiguous ranges — one per live child — and pushes
// one wave entry per range onto the children's rings. Children evaluate
// their range through Model::EvalGradientLeaves into the shm leaf slots and
// mark the entry done; the parent then runs the same fixed-shape pairwise
// tree reduction and 1/batch scaling as ml::ShardedLossAndGradient, so the
// result is bit-identical to every in-process backend for any process count.
//
// Crash isolation: the parent polls waitpid(WNOHANG) while waiting on a
// wave; a child that dies mid-compute surfaces as a typed kInternal Status
// (child_failure()) and its unfinished entries are re-pushed to a surviving
// child — leaf evaluation assigns (never accumulates into) its output slice,
// so a dead child's partial writes are simply overwritten. With no survivors
// the parent evaluates the remaining ranges itself; bits never change, only
// who computed them. Teardown is shutdown-flag + SIGTERM + waitpid with a
// deadline, then SIGKILL for stragglers.
//
// NUMA placement: child j is pinned (sched_setaffinity, common/proc.h) to
// the CPUs of node floor(j * nodes / procs) parsed from
// /sys/devices/system/node; a single-node machine (or a hidden /sys) makes
// pinning a graceful no-op.
//
// Event-level contract: identical to SerialBackend — Dispatch is a no-op and
// every compute half runs inline at its turn on the simulator thread. The
// parallelism lives INSIDE the compute half (the wave), below the event
// order, which is why commits still apply strictly in (time, sequence)
// order and the golden traces stay byte-identical.
//
// Sanitizer builds (ASan/TSan intercept fork poorly: leak-on-exec false
// positives, lost interceptors) and NETMAX_PROCESS_INLINE=1 fall back to an
// inline mode that runs the identical per-range wave arithmetic in the
// parent without forking — same shm layout, same split, same reduce, same
// bits.

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <string_view>
#include <vector>

#include "common/shm.h"
#include "common/status.h"
#include "core/execution_backend.h"

namespace netmax::core {

// Evaluates gradient leaves [leaf_lo, leaf_hi) for simulated worker `w` at
// `params` over `indices`, writing per-leaf UNSCALED loss and gradient sums
// into slices indexed relative to leaf_lo (the Model::EvalGradientLeaves
// contract). Runs in the child after fork — it must touch only state the
// child inherited (the harness's worker slab) plus the given spans.
using ProcessLeafEvalFn = std::function<void(
    int w, std::span<const double> params, std::span<const int> indices,
    int leaf_lo, int leaf_hi, std::span<double> loss_sums,
    std::span<double> gradient_sums)>;

struct ProcessPoolOptions {
  // Child processes to fork; 0 = one per hardware core (at least 1).
  int procs = 0;
  // Model parameter count (the gradient width).
  int64_t width = 0;
  // Largest batch any worker evaluates (sizes the index/leaf slots).
  int max_batch = 0;
  // Compute waves in the parent without forking (sanitizer fallback /
  // NETMAX_PROCESS_INLINE). Defaults off; Attach forces it on in sanitizer
  // builds.
  bool inline_mode = false;
};

class ProcessPoolBackend final : public ExecutionBackend {
 public:
  ProcessPoolBackend() = default;
  ~ProcessPoolBackend() override;

  ProcessPoolBackend(const ProcessPoolBackend&) = delete;
  ProcessPoolBackend& operator=(const ProcessPoolBackend&) = delete;

  // --- ExecutionBackend (serial event semantics) ---
  std::string_view name() const override { return "process"; }
  void Dispatch(net::EventSimulator& sim) override;
  int64_t DrainCommits(net::EventSimulator& sim) override;
  void OnStateWrite(net::EventSimulator& sim, int worker_key) override;

  // Maps the arena and forks the children (no-op fork in inline mode). Must
  // be called exactly once, after the caller has built every structure the
  // children need to inherit (the harness calls it at the end of Init, once
  // the worker slab is final). Fails with a typed Status when mmap or fork
  // refuses; a failed Attach leaves the backend safe to destroy.
  Status Attach(const ProcessPoolOptions& options, ProcessLeafEvalFn eval);

  // One batch-gradient wave for worker `w` (see file comment): writes the
  // mean gradient into `gradient` and returns the mean loss, bit-identical
  // to ml::ShardedLossAndGradient on the same inputs. Steady-state waves
  // perform zero heap allocations in the parent. `indices` must hold at
  // most max_batch entries.
  double LossAndGradient(int w, std::span<const double> params,
                         std::span<const int> indices,
                         std::span<double> gradient);

  // Teardown: shutdown flag + SIGTERM + waitpid with kShutdownDeadline, then
  // SIGKILL stragglers. Idempotent; the destructor calls it.
  void Shutdown();

  bool attached() const { return attached_; }
  bool inline_mode() const { return inline_mode_; }
  // Resolved child count (ProcessPoolOptions::procs with 0 mapped to the
  // hardware concurrency); the wave split width even in inline mode.
  int procs() const { return procs_; }
  int live_children() const;
  // pid of child j, or -1 when it is dead / in inline mode. Tests use this
  // to SIGKILL a child mid-run.
  pid_t child_pid(int j) const;
  // Ok until a child dies mid-run; then the first death's typed kInternal
  // error (later deaths only bump the stats counters). A child death never
  // corrupts the run — this is a diagnostic, not a failure of the result.
  const Status& child_failure() const { return child_failure_; }

 private:
  struct WaveEntry;  // shm-resident; defined in the .cc
  struct Ring;       // shm-resident SPSC ring header

  // Child j's main loop: pop entries, evaluate, mark done. Never returns
  // (leaves via _exit).
  [[noreturn]] void ChildMain(int j);
  // Pushes wave entry `index` onto child j's ring (parent only).
  void PushToChild(int j, uint32_t index);
  // Waits for every entry of the current wave to reach kDone, handling child
  // deaths (re-dispatch to survivors, parent fallback).
  void AwaitWave(int wave_size);
  // Reaps dead children via waitpid(WNOHANG); returns true when the live
  // set changed. Records the first death as child_failure_.
  bool ReapDeadChildren();
  // Re-pushes the unfinished entries of the current wave owned by dead
  // children onto survivors (or evaluates them in the parent when none are
  // left alive).
  void RedispatchOrphans(int wave_size);
  // Evaluates one wave entry in the calling process via eval_.
  void EvalEntry(const WaveEntry& entry);
  // The next live child strictly after `after` in round-robin order, or -1
  // when every child is dead.
  int NextLiveChild(int after) const;

  bool attached_ = false;
  bool inline_mode_ = false;
  int procs_ = 0;
  int64_t width_ = 0;
  int max_batch_ = 0;
  int max_leaves_ = 0;
  int ring_capacity_ = 0;  // power of two >= procs_

  SharedArena arena_;
  // Arena slices (parent and children address the same pages).
  std::atomic<uint32_t>* shutdown_ = nullptr;
  double* params_ = nullptr;
  int* indices_ = nullptr;
  double* loss_sums_ = nullptr;
  double* gradient_sums_ = nullptr;
  WaveEntry* waves_ = nullptr;
  Ring* rings_ = nullptr;       // procs_ ring headers
  uint32_t* ring_slots_ = nullptr;  // procs_ x ring_capacity_ slot words

  ProcessLeafEvalFn eval_;
  std::vector<pid_t> children_;      // -1 once reaped
  std::vector<int> entry_owner_;     // wave entry -> child index (parent)
  Status child_failure_;
};

}  // namespace netmax::core

#endif  // NETMAX_CORE_PROCESS_BACKEND_H_
