#include "core/checkpoint.h"

#include <array>
#include <cstdio>
#include <fstream>
#include <utility>

#include "core/experiment.h"
#include "ml/metrics.h"

namespace netmax::core {

Status WriteCheckpointFile(const std::string& path,
                           const std::vector<uint8_t>& bytes) {
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return InvalidArgumentError("cannot open \"" + tmp_path +
                                  "\" for writing");
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      return InternalError("short write to \"" + tmp_path + "\"");
    }
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    return InternalError("cannot rename \"" + tmp_path + "\" to \"" + path +
                         "\"");
  }
  return Status::Ok();
}

StatusOr<std::vector<uint8_t>> ReadCheckpointFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return NotFoundError("cannot open checkpoint file \"" + path + "\"");
  }
  const std::streamsize size = in.tellg();
  in.seekg(0, std::ios::beg);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(bytes.data()), size)) {
    return InternalError("short read from checkpoint file \"" + path + "\"");
  }
  return bytes;
}

void SaveMatrix(Serializer& out, const linalg::Matrix& matrix) {
  out.WriteInt(matrix.rows());
  out.WriteInt(matrix.cols());
  out.WriteDoubleVec(matrix.data());
}

StatusOr<linalg::Matrix> LoadMatrix(Deserializer& in) {
  NETMAX_ASSIGN_OR_RETURN(const int rows, in.ReadInt());
  NETMAX_ASSIGN_OR_RETURN(const int cols, in.ReadInt());
  if (rows < 0 || cols < 0) {
    return InvalidArgumentError("checkpointed matrix has negative shape");
  }
  linalg::Matrix matrix(rows, cols);
  NETMAX_RETURN_IF_ERROR(in.ReadDoubleSpan(matrix.mutable_data()));
  return matrix;
}

void SaveEmaGrid(
    Serializer& out,
    const std::vector<std::vector<ExponentialMovingAverage>>& grid) {
  out.WriteU64(grid.size());
  for (const auto& row : grid) {
    out.WriteU64(row.size());
    for (const ExponentialMovingAverage& ema : row) {
      out.WriteDouble(ema.value());
      out.WriteI64(ema.count());
    }
  }
}

Status RestoreEmaGrid(
    Deserializer& in,
    std::vector<std::vector<ExponentialMovingAverage>>* grid) {
  NETMAX_ASSIGN_OR_RETURN(const uint64_t rows, in.ReadU64());
  if (rows != grid->size()) {
    return InvalidArgumentError("checkpointed EMA grid row count mismatch");
  }
  for (auto& row : *grid) {
    NETMAX_ASSIGN_OR_RETURN(const uint64_t cols, in.ReadU64());
    if (cols != row.size()) {
      return InvalidArgumentError("checkpointed EMA grid column count "
                                  "mismatch");
    }
    for (ExponentialMovingAverage& ema : row) {
      NETMAX_ASSIGN_OR_RETURN(const double value, in.ReadDouble());
      NETMAX_ASSIGN_OR_RETURN(const int64_t count, in.ReadI64());
      if (count < 0) {
        return InvalidArgumentError("checkpointed EMA count is negative");
      }
      ema.RestoreState(value, count);
    }
  }
  return Status::Ok();
}

namespace {

void SaveSeries(Serializer& out, const ml::Series& series) {
  out.WriteU64(series.size());
  for (const ml::SeriesPoint& point : series) {
    out.WriteDouble(point.x);
    out.WriteDouble(point.y);
  }
}

Status LoadSeries(Deserializer& in, ml::Series* series) {
  NETMAX_ASSIGN_OR_RETURN(const uint64_t size, in.ReadU64());
  if (size * 16 > in.remaining()) {
    return OutOfRangeError("checkpointed series is truncated");
  }
  series->clear();
  series->reserve(size);
  for (uint64_t i = 0; i < size; ++i) {
    ml::SeriesPoint point;
    NETMAX_ASSIGN_OR_RETURN(point.x, in.ReadDouble());
    NETMAX_ASSIGN_OR_RETURN(point.y, in.ReadDouble());
    series->push_back(point);
  }
  return Status::Ok();
}

}  // namespace

void ExperimentHarness::ArmCheckpoint(EngineStateSaver save_engine) {
  NETMAX_CHECK(initialized_) << "ArmCheckpoint before Init";
  checkpoint_saver_ = std::move(save_engine);
  const double at = config_.checkpoint_at_seconds;
  if (at > 0.0 && at > sim_.Now()) {
    net::EventPayload payload;
    payload.tag = kHarnessCheckpointTag;
    payload.args = {at};
    ScheduleHarnessEvent(at, std::move(payload));
  }
  // Periodic cadence: arm the next tick — unless this is a restored run
  // whose queue already carries one (a one-shot checkpoint saved while a
  // tick was pending). A run restored FROM a cadence tick has no pending
  // tick — the tick popped itself before saving — so re-arming here consumes
  // the exact sequence number the uninterrupted run's tick handler consumed
  // when it scheduled its successor, keeping the two runs bit-identical.
  const double every = config_.checkpoint_every_seconds;
  if (every > 0.0 && !cadence_tick_restored_) {
    net::EventPayload payload;
    payload.tag = kHarnessCadenceTag;
    payload.args = {static_cast<double>(cadence_next_index_)};
    ScheduleHarnessEvent(sim_.Now() + every, std::move(payload));
  }
}

void ExperimentHarness::OneShotCheckpoint(double at) {
  if (sim_.empty()) {
    // Nothing left to run: the checkpoint time lies beyond the run's last
    // event, so popping this event has dragged the virtual clock past the
    // run's true end, and a checkpoint here could only restore into an
    // already-finished run. Fail the run loudly rather than write a dead
    // checkpoint and distort total_virtual_seconds.
    checkpoint_status_ = FailedPreconditionError(
        "checkpoint_at_seconds=" + std::to_string(at) +
        " is past the end of the run");
    return;
  }
  checkpoint_status_ = SaveCheckpoint(checkpoint_saver_);
}

void ExperimentHarness::CadenceTick(int64_t tick_index) {
  cadence_next_index_ = tick_index + 1;
  // A tick past the run's last event ends the cadence silently — unlike the
  // one-shot, the cadence is a standing service, not a user-requested
  // snapshot of a specific moment. (The pop already advanced the clock to
  // the tick time; runs with a cadence own that as part of their config.)
  if (sim_.empty()) return;
  const Status status = SavePeriodicCheckpoint(tick_index);
  if (!status.ok()) {
    checkpoint_status_ = status;
    return;  // stop the cadence: later ticks would likely fail the same way
  }
  // Chain the next tick AFTER the save, so no cadence event is ever pending
  // inside its own snapshot.
  net::EventPayload payload;
  payload.tag = kHarnessCadenceTag;
  payload.args = {static_cast<double>(cadence_next_index_)};
  ScheduleHarnessEvent(sim_.Now() + config_.checkpoint_every_seconds,
                       std::move(payload));
}

StatusOr<net::RebuiltEvent> ExperimentHarness::BuildHarnessEvent(
    const net::SavedEvent& saved) {
  const std::vector<double>& args = saved.payload.args;
  net::RebuiltEvent rebuilt;
  switch (saved.payload.tag) {
    case kHarnessFaultTag: {
      if (args.size() != 4) {
        return InvalidArgumentError("harness fault event needs 4 args");
      }
      const int kind_index = static_cast<int>(args[0]);
      if (kind_index < 0 ||
          kind_index > static_cast<int>(net::FaultKind::kSlowdown)) {
        return InvalidArgumentError("harness fault event has an unknown kind");
      }
      net::FaultEvent fault;
      fault.time = saved.time;
      fault.kind = static_cast<net::FaultKind>(kind_index);
      fault.worker = static_cast<int>(args[1]);
      fault.factor = args[2];
      fault.duration = args[3];
      rebuilt.plain = [this, fault] { ApplyFault(fault); };
      return rebuilt;
    }
    case kHarnessSlowdownEndTag: {
      if (args.size() != 2) {
        return InvalidArgumentError("harness slowdown-end event needs 2 args");
      }
      const int worker = static_cast<int>(args[0]);
      const double factor = args[1];
      rebuilt.plain = [this, worker, factor] { EndSlowdown(worker, factor); };
      return rebuilt;
    }
    case kHarnessCadenceTag: {
      if (args.size() != 1) {
        return InvalidArgumentError("harness cadence event needs 1 arg");
      }
      const int64_t tick_index = static_cast<int64_t>(args[0]);
      rebuilt.plain = [this, tick_index] { CadenceTick(tick_index); };
      return rebuilt;
    }
    case kHarnessCheckpointTag: {
      if (args.size() != 1) {
        return InvalidArgumentError("harness checkpoint event needs 1 arg");
      }
      const double at = args[0];
      rebuilt.plain = [this, at] { OneShotCheckpoint(at); };
      return rebuilt;
    }
    default:
      return InvalidArgumentError("unknown harness event tag " +
                                  std::to_string(saved.payload.tag));
  }
}

void ExperimentHarness::ScheduleHarnessEvent(double time,
                                             net::EventPayload payload) {
  ScheduleReifiedAt(sim_, time, kPlainEvent, std::move(payload),
                    [this](const net::SavedEvent& saved) {
                      return BuildHarnessEvent(saved);
                    });
}

StatusOr<std::vector<uint8_t>> ExperimentHarness::SerializeCheckpoint(
    const EngineStateSaver& save_engine) {
  NETMAX_CHECK(save_engine != nullptr)
      << "checkpoint armed without an engine saver";
  // Quiesce: invalidate every speculated compute evaluation so all state
  // below is at its committed value. The backend re-dispatches the
  // invalidated evaluations after this handler returns; compute halves are
  // pure, so the re-evaluations reproduce the same bits and the run
  // continues unperturbed.
  for (int w = 0; w < config_.num_workers; ++w) sim_.NotifyStateWrite(w);

  Serializer out;
  out.WriteU32(kCheckpointMagic);
  out.WriteU32(kCheckpointVersion);
  // Fingerprint, so a restore into a mismatched experiment fails loudly.
  out.WriteString(algorithm_name_);
  out.WriteInt(config_.num_workers);
  out.WriteU64(config_.seed);
  out.WriteInt(config_.max_epochs);
  out.WriteI64(workers_[0].model->num_parameters());
  // The cost profile drives every event time; restoring into a different
  // profile would silently graft this run's state onto another time scale.
  out.WriteString(config_.profile.name);
  out.WriteI64(config_.profile.num_parameters);
  out.WriteDouble(config_.profile.compute_seconds);
  // The compression spec shapes every transfer time and RNG draw after the
  // snapshot, so restoring under a different spec must fail like a profile
  // mismatch would (version 3).
  out.WriteString(ml::CompressionSpecName(config_.compress));

  out.WriteDouble(sim_.Now());
  out.WriteI64(sim_.next_sequence());
  out.WriteI64(sim_.num_events_processed());
  NETMAX_ASSIGN_OR_RETURN(std::vector<net::SavedEvent> events,
                          sim_.SaveQueue());
  // Pending crash faults are dropped from the snapshot: the entire point of
  // restoring is to finish the run the crash cut short, so the restored run
  // must be the fault-free-suffix run — which is exactly the uninterrupted
  // run, because (a) before the crash time the two runs are bit-identical
  // (a pending crash event influences nothing until it fires) and (b)
  // RestoreQueue tolerates the sequence-number gap the dropped event leaves.
  std::erase_if(events, [](const net::SavedEvent& event) {
    return event.payload.tag == kHarnessFaultTag &&
           !event.payload.args.empty() &&
           static_cast<int>(event.payload.args[0]) ==
               static_cast<int>(net::FaultKind::kCrash);
  });
  out.WriteU64(events.size());
  for (const net::SavedEvent& event : events) {
    out.WriteDouble(event.time);
    out.WriteI64(event.sequence);
    out.WriteInt(event.worker_key);
    out.WriteI64(event.payload.tag);
    out.WriteDoubleVec(event.payload.args);
  }

  for (const WorkerRuntime& worker : workers_) SaveWorker(out, worker);

  SaveSeries(out, loss_vs_time_);
  SaveSeries(out, loss_vs_epoch_);
  SaveSeries(out, accuracy_vs_time_);
  out.WriteI64(total_epochs_completed_);
  out.WriteI64(policies_generated_);

  // Fault-injection state (version 2): the liveness view, active slowdown
  // factors, the degradation counters, and the cadence tick index.
  for (int w = 0; w < config_.num_workers; ++w) {
    out.WriteBool(alive_[static_cast<size_t>(w)]);
    out.WriteDouble(compute_factor_[static_cast<size_t>(w)]);
  }
  out.WriteI64(faults_injected_);
  out.WriteI64(rounds_degraded_);
  out.WriteI64(peers_timed_out_);
  // Wire accounting (version 3), alongside the fault counters: restored runs
  // must report the same totals as the uninterrupted run.
  out.WriteI64(messages_sent_);
  out.WriteI64(bytes_sent_);
  out.WriteI64(bytes_saved_);
  out.WriteI64(cadence_next_index_);

  NETMAX_RETURN_IF_ERROR(save_engine(out));
  out.WriteU32(kCheckpointEndMarker);
  return out.bytes();
}

Status ExperimentHarness::SaveCheckpoint(const EngineStateSaver& save_engine) {
  NETMAX_ASSIGN_OR_RETURN(const std::vector<uint8_t> bytes,
                          SerializeCheckpoint(save_engine));
  if (config_.checkpoint_sink != nullptr) {
    *config_.checkpoint_sink = bytes;
  }
  if (!config_.checkpoint_path.empty()) {
    NETMAX_RETURN_IF_ERROR(WriteCheckpointFile(config_.checkpoint_path,
                                               bytes));
  }
  return Status::Ok();
}

Status ExperimentHarness::SavePeriodicCheckpoint(int64_t tick_index) {
  NETMAX_ASSIGN_OR_RETURN(const std::vector<uint8_t> bytes,
                          SerializeCheckpoint(checkpoint_saver_));
  // The sink always holds the newest periodic snapshot (in-memory restores,
  // tests); the path gets the newest bytes at `<path>` — what --restore-path
  // naturally points at after a crash — plus a rotating `<path>.t<k>`
  // history trimmed to config_.checkpoint_retain files.
  if (config_.checkpoint_sink != nullptr) {
    *config_.checkpoint_sink = bytes;
  }
  if (!config_.checkpoint_path.empty()) {
    NETMAX_RETURN_IF_ERROR(
        WriteCheckpointFile(config_.checkpoint_path, bytes));
    NETMAX_RETURN_IF_ERROR(WriteCheckpointFile(
        config_.checkpoint_path + ".t" + std::to_string(tick_index), bytes));
    const int64_t expired = tick_index - config_.checkpoint_retain;
    if (expired >= 1) {
      // Best-effort: a missing history file (e.g. after a restore that
      // skipped ticks) is not an error.
      std::remove(
          (config_.checkpoint_path + ".t" + std::to_string(expired)).c_str());
    }
  }
  return Status::Ok();
}

Status ExperimentHarness::Restore(const EngineStateRestorer& restore_engine,
                                  const net::EventRebuilder& rebuilder) {
  NETMAX_CHECK(initialized_) << "Restore before Init";
  NETMAX_CHECK(sim_.empty()) << "Restore after events were scheduled";
  std::vector<uint8_t> file_bytes;
  std::span<const uint8_t> bytes;
  if (config_.restore_source != nullptr) {
    bytes = *config_.restore_source;
  } else if (!config_.restore_path.empty()) {
    NETMAX_ASSIGN_OR_RETURN(file_bytes,
                            ReadCheckpointFile(config_.restore_path));
    bytes = file_bytes;
  } else {
    return FailedPreconditionError(
        "Restore called without a configured restore source");
  }
  Deserializer in(bytes);

  NETMAX_ASSIGN_OR_RETURN(const uint32_t magic, in.ReadU32());
  if (magic != kCheckpointMagic) {
    return InvalidArgumentError("not a NetMax checkpoint (bad magic)");
  }
  NETMAX_ASSIGN_OR_RETURN(const uint32_t version, in.ReadU32());
  if (version != kCheckpointVersion) {
    return InvalidArgumentError("unsupported checkpoint version " +
                                std::to_string(version));
  }
  NETMAX_ASSIGN_OR_RETURN(const std::string algorithm, in.ReadString());
  if (algorithm != algorithm_name_) {
    return FailedPreconditionError("checkpoint was written by \"" + algorithm +
                                   "\", restoring into \"" + algorithm_name_ +
                                   "\"");
  }
  NETMAX_ASSIGN_OR_RETURN(const int num_workers, in.ReadInt());
  if (num_workers != config_.num_workers) {
    return FailedPreconditionError(
        "checkpoint has " + std::to_string(num_workers) + " workers, config " +
        std::to_string(config_.num_workers));
  }
  NETMAX_ASSIGN_OR_RETURN(const uint64_t seed, in.ReadU64());
  if (seed != config_.seed) {
    return FailedPreconditionError("checkpoint seed mismatch");
  }
  NETMAX_ASSIGN_OR_RETURN(const int max_epochs, in.ReadInt());
  if (max_epochs != config_.max_epochs) {
    return FailedPreconditionError("checkpoint max_epochs mismatch");
  }
  NETMAX_ASSIGN_OR_RETURN(const int64_t num_parameters, in.ReadI64());
  if (num_parameters != workers_[0].model->num_parameters()) {
    return FailedPreconditionError("checkpoint model size mismatch");
  }
  NETMAX_ASSIGN_OR_RETURN(const std::string profile_name, in.ReadString());
  NETMAX_ASSIGN_OR_RETURN(const int64_t profile_params, in.ReadI64());
  NETMAX_ASSIGN_OR_RETURN(const double profile_compute, in.ReadDouble());
  if (profile_name != config_.profile.name ||
      profile_params != config_.profile.num_parameters ||
      profile_compute != config_.profile.compute_seconds) {
    return FailedPreconditionError("checkpoint was written under the \"" +
                                   profile_name + "\" cost profile, config " +
                                   "uses \"" + config_.profile.name + "\"");
  }
  NETMAX_ASSIGN_OR_RETURN(const std::string compress_name, in.ReadString());
  if (compress_name != ml::CompressionSpecName(config_.compress)) {
    return FailedPreconditionError(
        "checkpoint was written with --compress=" + compress_name +
        ", config uses --compress=" +
        ml::CompressionSpecName(config_.compress));
  }

  NETMAX_ASSIGN_OR_RETURN(const double now, in.ReadDouble());
  NETMAX_ASSIGN_OR_RETURN(const int64_t next_sequence, in.ReadI64());
  NETMAX_ASSIGN_OR_RETURN(const int64_t processed, in.ReadI64());
  NETMAX_ASSIGN_OR_RETURN(const uint64_t event_count, in.ReadU64());
  if (event_count > in.remaining()) {  // every event takes > 1 byte
    return OutOfRangeError("checkpointed event queue is truncated");
  }
  std::vector<net::SavedEvent> events;
  events.reserve(event_count);
  for (uint64_t i = 0; i < event_count; ++i) {
    net::SavedEvent event;
    NETMAX_ASSIGN_OR_RETURN(event.time, in.ReadDouble());
    NETMAX_ASSIGN_OR_RETURN(event.sequence, in.ReadI64());
    NETMAX_ASSIGN_OR_RETURN(event.worker_key, in.ReadInt());
    NETMAX_ASSIGN_OR_RETURN(event.payload.tag, in.ReadI64());
    NETMAX_RETURN_IF_ERROR(in.ReadDoubleVec(&event.payload.args));
    events.push_back(std::move(event));
  }
  sim_.RestoreClock(now, next_sequence, processed);
  // Harness-tagged events (pending faults, cadence ticks, the one-shot
  // checkpoint event) are rebuilt by the harness itself; everything else is
  // the engine's. Restoring a pending cadence tick also tells ArmCheckpoint
  // not to arm a duplicate.
  cadence_tick_restored_ = false;
  const net::EventRebuilder wrapped_rebuilder =
      [this, &rebuilder](
          const net::SavedEvent& saved) -> StatusOr<net::RebuiltEvent> {
    if (saved.payload.tag >= kHarnessFaultTag) {
      if (saved.payload.tag == kHarnessCadenceTag) {
        cadence_tick_restored_ = true;
      }
      return BuildHarnessEvent(saved);
    }
    return rebuilder(saved);
  };
  NETMAX_RETURN_IF_ERROR(sim_.RestoreQueue(events, wrapped_rebuilder));

  for (auto& worker : workers_) {
    NETMAX_RETURN_IF_ERROR(RestoreWorker(in, worker));
  }

  NETMAX_RETURN_IF_ERROR(LoadSeries(in, &loss_vs_time_));
  NETMAX_RETURN_IF_ERROR(LoadSeries(in, &loss_vs_epoch_));
  NETMAX_RETURN_IF_ERROR(LoadSeries(in, &accuracy_vs_time_));
  NETMAX_ASSIGN_OR_RETURN(total_epochs_completed_, in.ReadI64());
  NETMAX_ASSIGN_OR_RETURN(policies_generated_, in.ReadI64());

  for (int w = 0; w < config_.num_workers; ++w) {
    NETMAX_ASSIGN_OR_RETURN(const bool alive, in.ReadBool());
    alive_[static_cast<size_t>(w)] = alive;
    NETMAX_ASSIGN_OR_RETURN(compute_factor_[static_cast<size_t>(w)],
                            in.ReadDouble());
  }
  NETMAX_ASSIGN_OR_RETURN(faults_injected_, in.ReadI64());
  NETMAX_ASSIGN_OR_RETURN(rounds_degraded_, in.ReadI64());
  NETMAX_ASSIGN_OR_RETURN(peers_timed_out_, in.ReadI64());
  NETMAX_ASSIGN_OR_RETURN(messages_sent_, in.ReadI64());
  NETMAX_ASSIGN_OR_RETURN(bytes_sent_, in.ReadI64());
  NETMAX_ASSIGN_OR_RETURN(bytes_saved_, in.ReadI64());
  NETMAX_ASSIGN_OR_RETURN(cadence_next_index_, in.ReadI64());

  NETMAX_RETURN_IF_ERROR(restore_engine(in));
  NETMAX_ASSIGN_OR_RETURN(const uint32_t end_marker, in.ReadU32());
  if (end_marker != kCheckpointEndMarker) {
    return InvalidArgumentError("checkpoint end marker mismatch");
  }
  if (!in.AtEnd()) {
    return InvalidArgumentError("trailing bytes after checkpoint end marker");
  }
  return Status::Ok();
}

void ExperimentHarness::SaveWorker(Serializer& out,
                                   const WorkerRuntime& worker) const {
  for (const uint64_t word : worker.rng.SaveState()) out.WriteU64(word);
  out.WriteDoubleVec(worker.model->parameters());
  worker.optimizer->SaveState(out);
  worker.sampler->SaveState(out);
  worker.lr_schedule->SaveState(out);
  // The gradient scratch buffer IS part of the run's future: e.g. the
  // parameter-server upload event reads it after the commit that filled it,
  // and a checkpoint can land between the two. (Workspace is pure scratch
  // and batch_indices pairs with the gradient, both rewritten before any
  // read that follows a pending compute's re-evaluation.)
  out.WriteDoubleVec(worker.gradient);
  out.WriteIntVec(worker.batch_indices);
  out.WriteDouble(worker.epoch_loss_sum);
  out.WriteI64(worker.epoch_batches);
  out.WriteI64(worker.epochs_completed);
  out.WriteDouble(worker.latest_epoch_loss);
  out.WriteBool(worker.has_epoch_loss);
  out.WriteDouble(worker.compute_cost_total);
  out.WriteDouble(worker.comm_cost_total);
  out.WriteI64(worker.iterations);
  // The compressor schedule index (version 3): a restore must hand out the
  // same round numbers — and so the same layer-wise masks and payload
  // byte counts — the uninterrupted run would.
  out.WriteI64(worker.comm_rounds);
  out.WriteBool(worker.finished);
}

Status ExperimentHarness::RestoreWorker(Deserializer& in,
                                        WorkerRuntime& worker) {
  std::array<uint64_t, 5> rng_state;
  for (uint64_t& word : rng_state) {
    NETMAX_ASSIGN_OR_RETURN(word, in.ReadU64());
  }
  worker.rng.RestoreState(rng_state);
  NETMAX_RETURN_IF_ERROR(in.ReadDoubleSpan(worker.model->parameters()));
  NETMAX_RETURN_IF_ERROR(worker.optimizer->RestoreState(in));
  NETMAX_RETURN_IF_ERROR(worker.sampler->RestoreState(in));
  NETMAX_RETURN_IF_ERROR(worker.lr_schedule->RestoreState(in));
  NETMAX_RETURN_IF_ERROR(in.ReadDoubleSpan(worker.gradient));
  NETMAX_RETURN_IF_ERROR(in.ReadIntVec(&worker.batch_indices));
  NETMAX_ASSIGN_OR_RETURN(worker.epoch_loss_sum, in.ReadDouble());
  NETMAX_ASSIGN_OR_RETURN(worker.epoch_batches, in.ReadI64());
  NETMAX_ASSIGN_OR_RETURN(worker.epochs_completed, in.ReadI64());
  NETMAX_ASSIGN_OR_RETURN(worker.latest_epoch_loss, in.ReadDouble());
  NETMAX_ASSIGN_OR_RETURN(worker.has_epoch_loss, in.ReadBool());
  NETMAX_ASSIGN_OR_RETURN(worker.compute_cost_total, in.ReadDouble());
  NETMAX_ASSIGN_OR_RETURN(worker.comm_cost_total, in.ReadDouble());
  NETMAX_ASSIGN_OR_RETURN(worker.iterations, in.ReadI64());
  NETMAX_ASSIGN_OR_RETURN(worker.comm_rounds, in.ReadI64());
  NETMAX_ASSIGN_OR_RETURN(worker.finished, in.ReadBool());
  return Status::Ok();
}

}  // namespace netmax::core
