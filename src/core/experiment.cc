#include "core/experiment.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "core/process_backend.h"
#include "linalg/vector_ops.h"
#include "ml/mlp.h"
#include "ml/sharding.h"

namespace netmax::core {

StatusOr<std::vector<ml::Dataset>> BuildShards(const ExperimentConfig& config,
                                               const ml::Dataset& train) {
  const uint64_t shard_seed = config.seed * 7919 + 13;
  switch (config.partition) {
    case PartitionScheme::kUniform:
      return ml::PartitionUniform(train, config.num_workers, shard_seed);
    case PartitionScheme::kSegments: {
      if (static_cast<int>(config.segments.size()) != config.num_workers) {
        return InvalidArgumentError("segments.size() != num_workers");
      }
      return ml::PartitionBySegments(train, config.segments, shard_seed);
    }
    case PartitionScheme::kLostLabels: {
      if (static_cast<int>(config.lost_labels.size()) != config.num_workers) {
        return InvalidArgumentError("lost_labels.size() != num_workers");
      }
      return ml::PartitionWithLostLabels(train, config.lost_labels, shard_seed);
    }
  }
  return InternalError("unknown partition scheme");
}

int WorkerBatchSize(const ExperimentConfig& config, int worker) {
  if (config.partition == PartitionScheme::kSegments) {
    return config.batch_size * config.segments[static_cast<size_t>(worker)];
  }
  return config.batch_size;
}

bool ParsePeerPolicy(std::string_view text, PeerPolicy* policy) {
  if (text == "wait") {
    *policy = PeerPolicy::kWait;
    return true;
  }
  if (text == "timeout") {
    *policy = PeerPolicy::kTimeoutAndContinue;
    return true;
  }
  return false;
}

std::string_view PeerPolicyName(PeerPolicy policy) {
  switch (policy) {
    case PeerPolicy::kWait:
      return "wait";
    case PeerPolicy::kTimeoutAndContinue:
      return "timeout";
  }
  return "unknown";
}

Status ExperimentConfig::Validate() const {
  if (num_workers < 2) {
    return InvalidArgumentError("need at least 2 workers");
  }
  if (batch_size < 1) return InvalidArgumentError("batch_size < 1");
  if (max_epochs < 1) return InvalidArgumentError("max_epochs < 1");
  if (learning_rate <= 0.0) {
    return InvalidArgumentError("learning_rate <= 0");
  }
  // The dataset spec comes straight from bench/user config; reject it here so
  // the generator's internal NETMAX_CHECKs stay pure programmer-error guards.
  if (dataset.feature_dim < 1) {
    return InvalidArgumentError("dataset.feature_dim < 1");
  }
  if (dataset.num_classes < 2) {
    return InvalidArgumentError(
        "dataset.num_classes < 2 (need a classification task)");
  }
  if (dataset.num_train < 1) {
    return InvalidArgumentError("dataset.num_train < 1");
  }
  if (dataset.num_test < 1) {
    return InvalidArgumentError("dataset.num_test < 1");
  }
  if (network == NetworkScenario::kWan && num_workers != 6) {
    return InvalidArgumentError("the WAN scenario models exactly 6 regions");
  }
  if (topology.shape == net::TopologyShape::kHierarchical) {
    if (network == NetworkScenario::kWan) {
      return InvalidArgumentError(
          "hierarchical topology is incompatible with the WAN scenario "
          "(its six-region placement is its own shape)");
    }
    if (topology.cluster_size < 1 || topology.cluster_size > num_workers) {
      return InvalidArgumentError(
          "hierarchical topology cluster_size must be in [1, num_workers], "
          "got " +
          std::to_string(topology.cluster_size));
    }
  } else if (num_workers > kMaxCompleteTopologyWorkers) {
    return InvalidArgumentError(
        "complete topology at " + std::to_string(num_workers) +
        " workers would build O(n^2) edge and link tables; use a "
        "hierarchical topology (--topology=hier:<cluster_size>) beyond " +
        std::to_string(kMaxCompleteTopologyWorkers) + " workers");
  }
  if (threads < 0) return InvalidArgumentError("threads < 0");
  if (shards < 0) return InvalidArgumentError("shards < 0");
  if (reorder_window < 0) {
    return InvalidArgumentError("reorder_window < 0");
  }
  if (procs < 0) return InvalidArgumentError("procs < 0");
  if (checkpoint_at_seconds > 0.0 && checkpoint_path.empty() &&
      checkpoint_sink == nullptr) {
    return InvalidArgumentError(
        "checkpoint_at_seconds is set but neither checkpoint_path nor "
        "checkpoint_sink is");
  }
  if (checkpoint_every_seconds < 0.0) {
    return InvalidArgumentError("checkpoint_every_seconds < 0");
  }
  if (checkpoint_every_seconds > 0.0 && checkpoint_path.empty() &&
      checkpoint_sink == nullptr) {
    return InvalidArgumentError(
        "checkpoint_every_seconds is set but neither checkpoint_path nor "
        "checkpoint_sink is");
  }
  if (checkpoint_retain < 1) {
    return InvalidArgumentError("checkpoint_retain < 1");
  }
  if (!restore_path.empty() && restore_source != nullptr) {
    return InvalidArgumentError(
        "restore_path and restore_source are mutually exclusive");
  }
  // Fault specs come straight from the --faults flag: reject out-of-range
  // worker ids and non-monotone event times here, per-entry, rather than
  // crash (or silently misbehave) mid-run.
  NETMAX_RETURN_IF_ERROR(faults.Validate(num_workers));
  if (peer_timeout_seconds <= 0.0) {
    return InvalidArgumentError("peer_timeout_seconds <= 0");
  }
  if (peer_poll_seconds <= 0.0) {
    return InvalidArgumentError("peer_poll_seconds <= 0");
  }
  NETMAX_RETURN_IF_ERROR(compress.Validate());
  return Status::Ok();
}

ExperimentHarness::ExperimentHarness(const ExperimentConfig& config,
                                     std::string algorithm_name)
    : config_(config), algorithm_name_(std::move(algorithm_name)) {}

Status ExperimentHarness::Init() {
  NETMAX_CHECK(!initialized_) << "Init called twice";
  NETMAX_RETURN_IF_ERROR(config_.Validate());

  // Parallel runtime: the simulator thread participates in every compute
  // phase, so a budget of T threads needs a pool of T-1 workers. threads == 1
  // keeps the pool-free serial dispatch (same code path, inline computes).
  threads_ = config_.threads;
  if (threads_ == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads_ = hw == 0 ? 1 : static_cast<int>(hw);
  }
  // The process backend replaces the thread pool with forked children: fork
  // from a multi-threaded parent only copies the forking thread, so a child
  // inheriting live pool threads would see their mutexes frozen mid-flight.
  // Forcing threads to 1 keeps the parent single-threaded for the fork —
  // results are unchanged either way (threads never affect bits).
  if (config_.backend == ExecutionBackendKind::kProcessPool) threads_ = 1;
  if (threads_ > 1) pool_ = std::make_unique<ThreadPool>(threads_ - 1);
  // Execution backend: how compute halves overlap the ordered commit drain.
  // Without a pool every kind degrades to serial dispatch; either way the
  // result bits are identical (core/execution_backend.h).
  backend_ = MakeExecutionBackend(config_.backend, pool_.get(),
                                  config_.reorder_window,
                                  config_.adaptive_reorder_window);
  sim_.set_backend(backend_.get());
  // Event-queue implementation (net/event_queue.h): like the backend, a pure
  // execution choice — every kind pops the identical (time, sequence) stream.
  sim_.ReplaceQueue(net::MakeEventQueue(config_.event_queue));
  // Intra-worker sharding bound: auto (0) shards only the cores left over
  // after the distinct-worker frontier has one thread per worker, so
  // paper-scale runs (workers >= cores) stay unsharded while wide-model
  // scale-up runs (cores > workers) split each batch. Purely an execution
  // choice — results are bit-identical for any value (ml/sharding.h).
  shards_ = config_.shards;
  if (shards_ == 0) {
    shards_ = (threads_ + config_.num_workers - 1) / config_.num_workers;
  }

  // Dataset and shards.
  ml::SyntheticSpec dataset_spec = config_.dataset;
  dataset_spec.seed ^= config_.seed * 0x9E3779B97F4A7C15ULL;
  ml::DatasetPair pair = ml::GenerateSynthetic(dataset_spec);
  test_set_ = std::move(pair.test);
  StatusOr<std::vector<ml::Dataset>> shards = BuildShards(config_, pair.train);
  if (!shards.ok()) return shards.status();
  for (const ml::Dataset& shard : *shards) {
    if (shard.empty()) {
      return InvalidArgumentError("a worker received an empty shard");
    }
  }

  // Network.
  if (config_.topology.shape == net::TopologyShape::kHierarchical) {
    // Clusters-of-clusters: complete intra-cluster, hub ring inter-cluster,
    // over the two-class O(1)-memory link model (the flat presets below
    // build O(n^2) pairwise tables, intractable at 10^5+ workers). The
    // machine-local/cross-machine classes of the heterogeneous presets map
    // onto intra/inter-cluster links; the homogeneous scenario keeps its one
    // uniform class.
    const bool homogeneous = config_.network == NetworkScenario::kHomogeneous;
    const net::LinkClass intra = homogeneous ? net::HomogeneousLinkClass()
                                             : net::IntraMachineLinkClass();
    const net::LinkClass inter = homogeneous ? net::HomogeneousLinkClass()
                                             : net::InterMachineLinkClass();
    auto base = std::make_unique<net::HierarchicalLinkModel>(
        config_.num_workers, config_.topology.cluster_size, intra, inter);
    if (config_.network == NetworkScenario::kHeterogeneousDynamic) {
      net::DynamicSlowdownLinkModel::Options slow;
      slow.change_period_seconds = config_.slowdown_period_seconds;
      slow.min_factor = config_.slowdown_min_factor;
      slow.max_factor = config_.slowdown_max_factor;
      slow.seed = config_.seed * 31 + 7;
      links_ = std::make_unique<net::DynamicSlowdownLinkModel>(
          std::move(base), slow);
    } else {
      links_ = std::move(base);
    }
    topology_ = std::make_unique<net::Topology>(net::Topology::Hierarchical(
        config_.num_workers, config_.topology.cluster_size));
  } else {
    switch (config_.network) {
      case NetworkScenario::kHeterogeneousDynamic: {
        net::DynamicSlowdownLinkModel::Options slow;
        slow.change_period_seconds = config_.slowdown_period_seconds;
        slow.min_factor = config_.slowdown_min_factor;
        slow.max_factor = config_.slowdown_max_factor;
        slow.seed = config_.seed * 31 + 7;
        const net::ClusterConfig cluster =
            config_.two_server_placement
                ? net::HeterogeneousClusterTwoServers(config_.num_workers)
                : net::HeterogeneousCluster(config_.num_workers);
        links_ = net::BuildDynamicHeterogeneousLinkModel(cluster, slow);
        break;
      }
      case NetworkScenario::kHeterogeneousStatic: {
        const net::ClusterConfig cluster =
            config_.two_server_placement
                ? net::HeterogeneousClusterTwoServers(config_.num_workers)
                : net::HeterogeneousCluster(config_.num_workers);
        links_ = net::BuildStaticLinkModel(cluster);
        break;
      }
      case NetworkScenario::kHomogeneous:
        links_ = net::BuildStaticLinkModel(
            net::HomogeneousCluster(config_.num_workers));
        break;
      case NetworkScenario::kWan:
        links_ = net::BuildCloudWanLinkModel();
        break;
    }
    topology_ =
        std::make_unique<net::Topology>(
            net::Topology::Complete(config_.num_workers));
  }

  // Workers: identical initial replicas (x^0), forked RNG/sampler streams.
  Rng root(config_.seed);
  const int feature_dim = dataset_spec.feature_dim;
  const int num_classes = dataset_spec.num_classes;
  std::vector<int> layers;
  layers.push_back(feature_dim);
  for (int h : config_.hidden_layers) layers.push_back(h);
  layers.push_back(num_classes);

  // One contiguous slab, reserved once: per-worker state stays in a single
  // allocation at any worker count (no per-worker heap node).
  workers_.clear();
  workers_.reserve(static_cast<size_t>(config_.num_workers));
  for (int w = 0; w < config_.num_workers; ++w) {
    workers_.emplace_back(w, std::move((*shards)[static_cast<size_t>(w)]),
                          root.Fork(static_cast<uint64_t>(w)).Next64());
    WorkerRuntime& worker = workers_.back();
    worker.model = std::make_unique<ml::Mlp>(layers);
    worker.model->InitializeParameters(config_.seed);  // same x^0 everywhere
    ml::SgdOptions sgd;
    sgd.learning_rate = config_.learning_rate;
    sgd.momentum = config_.momentum;
    sgd.weight_decay = config_.weight_decay;
    worker.optimizer =
        std::make_unique<ml::SgdOptimizer>(worker.model->num_parameters(),
                                           sgd);
    worker.batch_size = WorkerBatchSize(config_, w);
    worker.sampler = std::make_unique<ml::BatchSampler>(
        &worker.shard, worker.batch_size,
        root.Fork(1000 + static_cast<uint64_t>(w)).Next64());
    if (!config_.lr_milestones.empty()) {
      worker.lr_schedule = std::make_unique<ml::StepDecayLr>(
          config_.learning_rate, 0.1, config_.lr_milestones);
    } else {
      worker.lr_schedule = std::make_unique<ml::PlateauDecayLr>(
          config_.learning_rate, 0.1, config_.plateau_patience);
    }
    worker.gradient.assign(
        static_cast<size_t>(worker.model->num_parameters()), 0.0);
    worker.compute_seconds_per_batch = ComputeSeconds(worker.batch_size);
  }

  // Communication compression: one compressor per harness, built over the
  // proxy model's layer geometry (identical across replicas), plus one
  // model-sized delta scratch. Commits are strictly serial, so sharing the
  // scratch across workers is safe and keeps sends allocation-free.
  compressor_ = ml::GradientCompressor(
      config_.compress, workers_.front().model->LayerSegments());
  compression_scratch_.assign(
      static_cast<size_t>(workers_.front().model->num_parameters()), 0.0);

  // Fault injection: everyone starts alive at full speed; the configured
  // schedule goes into the queue as tagged plain events, BEFORE the engine's
  // initial events so the sequence-number shift relative to a fault-free run
  // is uniform across every engine event. Restored runs skip this — the
  // restored queue already carries the pending fault events.
  alive_.assign(static_cast<size_t>(config_.num_workers), true);
  compute_factor_.assign(static_cast<size_t>(config_.num_workers), 1.0);
  if (!config_.faults.empty() && !restore_requested()) ScheduleFaults();

  // Process backend: fork the gradient-compute children LAST, so they inherit
  // the finished worker slab (models, shards, workspaces) via copy-on-write.
  // The eval callback runs inside a child (or inline in the parent under the
  // sanitizer/inline mode): it loads the wave's parameter snapshot from
  // shared memory into the inherited model — the child's copy went stale the
  // moment the parent committed an optimizer step — and evaluates the leaf
  // range with the model's own fixed-leaf kernel, writing unscaled sums
  // straight into the shared-memory slots.
  if (config_.backend == ExecutionBackendKind::kProcessPool) {
    auto* process = static_cast<ProcessPoolBackend*>(backend_.get());
    ProcessPoolOptions options;
    options.procs = config_.procs;
    options.width = workers_.front().model->num_parameters();
    for (const WorkerRuntime& worker : workers_) {
      options.max_batch = std::max(options.max_batch, worker.batch_size);
    }
    NETMAX_RETURN_IF_ERROR(process->Attach(
        options,
        [this](int w, std::span<const double> params,
               std::span<const int> indices, int leaf_lo, int leaf_hi,
               std::span<double> loss_sums, std::span<double> gradient_sums) {
          WorkerRuntime& worker = workers_[static_cast<size_t>(w)];
          const std::span<double> dest = worker.model->parameters();
          std::copy(params.begin(), params.end(), dest.begin());
          worker.model->EvalGradientLeaves(worker.shard, indices, leaf_lo,
                                           leaf_hi, loss_sums, gradient_sums,
                                           worker.workspace);
        }));
    process_backend_ = process;
  }

  initialized_ = true;
  return Status::Ok();
}

void ExperimentHarness::ScheduleFaults() {
  for (const net::FaultEvent& fault : config_.faults.events()) {
    net::EventPayload payload;
    payload.tag = kHarnessFaultTag;
    payload.args = {static_cast<double>(static_cast<int>(fault.kind)),
                    static_cast<double>(fault.worker), fault.factor,
                    fault.duration};
    ScheduleHarnessEvent(fault.time, std::move(payload));
  }
}

void ExperimentHarness::ApplyFault(const net::FaultEvent& fault) {
  ++faults_injected_;
  switch (fault.kind) {
    case net::FaultKind::kLeave:
      alive_[static_cast<size_t>(fault.worker)] = false;
      break;
    case net::FaultKind::kJoin:
      alive_[static_cast<size_t>(fault.worker)] = true;
      break;
    case net::FaultKind::kCrash:
      // The whole run stops at this event: RunUntilIdle discards everything
      // still pending once this handler returns. Recovery goes through the
      // periodic checkpoints (checkpoint_every_seconds).
      sim_.RequestHalt();
      break;
    case net::FaultKind::kSlowdown: {
      compute_factor_[static_cast<size_t>(fault.worker)] *= fault.factor;
      net::EventPayload payload;
      payload.tag = kHarnessSlowdownEndTag;
      payload.args = {static_cast<double>(fault.worker), fault.factor};
      ScheduleHarnessEvent(sim_.Now() + fault.duration, std::move(payload));
      break;
    }
  }
  if (fault_listener_) fault_listener_(fault);
}

void ExperimentHarness::EndSlowdown(int worker, double factor) {
  // Inverse of the multiply in ApplyFault. For non-overlapping slowdowns the
  // factor goes 1.0 -> f -> f/f == 1.0 bit-exactly, so an elapsed slowdown
  // leaves no residue; overlapping same-worker slowdowns may leave rounding
  // residue, deterministically (the same bits on every backend).
  compute_factor_[static_cast<size_t>(worker)] /= factor;
}

double ExperimentHarness::ComputeSeconds(int batch_size) const {
  return config_.profile.compute_seconds * config_.compute_multiplier *
         static_cast<double>(batch_size) /
         static_cast<double>(config_.profile_batch);
}

double ExperimentHarness::PullSeconds(int src, int dst) const {
  return links_->TransferSeconds(src, dst, sim_.Now(),
                                 config_.profile.message_bytes());
}

int64_t ExperimentHarness::MessagePayloadBytes(int64_t round) const {
  if (!compression_enabled()) return config_.profile.message_bytes();
  return compressor_.Describe(config_.profile.num_parameters, round)
      .PayloadBytes();
}

double ExperimentHarness::SendSeconds(int src, int dst, int64_t round) {
  if (!compression_enabled()) {
    // kDenseF32 is headerless, so the charged bytes are exactly
    // profile.message_bytes() and bytes_saved stays identically zero —
    // uncompressed runs keep their pre-accounting transfer times bit-exactly.
    const int64_t bytes = config_.profile.message_bytes();
    AccountWire(1, bytes, bytes);
    return PullSeconds(src, dst);
  }
  const net::WireMessage message =
      compressor_.Describe(config_.profile.num_parameters, round);
  AccountWire(1, message.PayloadBytes(), message.DenseBaselineBytes());
  return links_->TransferSeconds(src, dst, sim_.Now(), message.PayloadBytes());
}

void ExperimentHarness::SampleBatch(int w) {
  WorkerRuntime& worker = workers_[static_cast<size_t>(w)];
  worker.sampler->NextBatch(worker.batch_indices);
}

double ExperimentHarness::EvalBatchGradient(int w) {
  WorkerRuntime& worker = workers_[static_cast<size_t>(w)];
  if (process_backend_ != nullptr) {
    return process_backend_->LossAndGradient(w, worker.model->parameters(),
                                             worker.batch_indices,
                                             worker.gradient);
  }
  return ml::ShardedLossAndGradient(*worker.model, worker.shard,
                                    worker.batch_indices, worker.gradient,
                                    worker.workspace, pool_.get(), shards_);
}

void ExperimentHarness::CommitBatchStats(int w, double loss) {
  WorkerRuntime& worker = workers_[static_cast<size_t>(w)];
  worker.epoch_loss_sum += loss;
  ++worker.epoch_batches;
  ++worker.iterations;
  if (worker.sampler->epochs_completed() > worker.epochs_completed) {
    const double epoch_loss =
        worker.epoch_loss_sum / static_cast<double>(worker.epoch_batches);
    worker.epoch_loss_sum = 0.0;
    worker.epoch_batches = 0;
    ++worker.epochs_completed;
    OnEpochCompleted(w, epoch_loss);
  }
}

double ExperimentHarness::ComputeGradientOnly(int w) {
  SampleBatch(w);
  const double loss = EvalBatchGradient(w);
  CommitBatchStats(w, loss);
  return loss;
}

void ExperimentHarness::ApplyStoredGradient(int w) {
  WorkerRuntime& worker = workers_[static_cast<size_t>(w)];
  sim_.NotifyStateWrite(w);
  worker.optimizer->Step(worker.model->parameters(), worker.gradient);
}

double ExperimentHarness::LocalGradientStep(int w) {
  const double loss = ComputeGradientOnly(w);
  ApplyStoredGradient(w);
  return loss;
}

void ExperimentHarness::AccountIteration(int w, double compute_seconds,
                                         double wall_seconds) {
  WorkerRuntime& worker = workers_[static_cast<size_t>(w)];
  const double compute = std::min(compute_seconds, wall_seconds);
  worker.compute_cost_total += compute;
  worker.comm_cost_total += std::max(0.0, wall_seconds - compute);
}

void ExperimentHarness::OnEpochCompleted(int w, double epoch_loss) {
  WorkerRuntime& worker = workers_[static_cast<size_t>(w)];
  worker.latest_epoch_loss = epoch_loss;
  worker.has_epoch_loss = true;
  const double new_lr =
      worker.lr_schedule->OnEpochEnd(worker.epochs_completed, epoch_loss);
  worker.optimizer->set_learning_rate(new_lr);
  ++total_epochs_completed_;
  if (total_epochs_completed_ % config_.num_workers == 0) {
    RecordGlobalEpochPoint();
  }
  if (worker.epochs_completed >= config_.max_epochs) worker.finished = true;
}

void ExperimentHarness::RecordGlobalEpochPoint() {
  double loss_sum = 0.0;
  int count = 0;
  for (const auto& worker : workers_) {
    if (worker.has_epoch_loss) {
      loss_sum += worker.latest_epoch_loss;
      ++count;
    }
  }
  if (count == 0) return;
  const double mean_loss = loss_sum / static_cast<double>(count);
  const double global_epoch =
      static_cast<double>(total_epochs_completed_) /
      static_cast<double>(config_.num_workers);
  loss_vs_time_.push_back({sim_.Now(), mean_loss});
  loss_vs_epoch_.push_back({global_epoch, mean_loss});
  if (config_.eval_every_epochs > 0 &&
      static_cast<int64_t>(global_epoch) % config_.eval_every_epochs == 0) {
    accuracy_vs_time_.push_back(
        {sim_.Now(),
         ml::Accuracy(*workers_[0].model, test_set_, eval_workspace_)});
  }
}

bool ExperimentHarness::WorkerDone(int w) const {
  const WorkerRuntime& worker = workers_[static_cast<size_t>(w)];
  return worker.finished || !alive_[static_cast<size_t>(w)] ||
         sim_.Now() >= config_.max_virtual_seconds;
}

bool ExperimentHarness::AllDone() const {
  for (int w = 0; w < config_.num_workers; ++w) {
    if (!WorkerDone(w)) return false;
  }
  return true;
}

RunResult ExperimentHarness::Finalize() {
  RunResult result;
  result.algorithm = algorithm_name_;
  result.loss_vs_time = loss_vs_time_;
  result.loss_vs_epoch = loss_vs_epoch_;
  result.accuracy_vs_time = accuracy_vs_time_;
  result.total_virtual_seconds = sim_.Now();
  result.policies_generated = policies_generated_;
  result.backend = std::string(backend_->name());
  result.event_queue = std::string(sim_.queue_name());
  const net::ExecutionStats stats = sim_.execution_stats();
  result.parallel_batches = stats.parallel_batches;
  result.computes_speculated = stats.computes_speculated;
  result.computes_redispatched = stats.computes_redispatched;
  result.computes_recomputed = stats.computes_recomputed;
  result.window_stalls = stats.window_stalls;
  result.window_backpressure = stats.window_backpressure;
  result.window_resizes = stats.window_resizes;
  result.process_child_deaths = stats.process_child_deaths;
  result.process_ranges_redispatched = stats.process_ranges_redispatched;
  result.faults_injected = faults_injected_;
  result.rounds_degraded = rounds_degraded_;
  result.peers_timed_out = peers_timed_out_;
  result.messages_sent = messages_sent_;
  result.bytes_sent = bytes_sent_;
  result.bytes_saved = bytes_saved_;

  double loss_sum = 0.0;
  int loss_count = 0;
  double accuracy_sum = 0.0;
  double compute_total = 0.0;
  double comm_total = 0.0;
  int64_t epochs_total = 0;
  for (const auto& worker : workers_) {
    if (worker.has_epoch_loss) {
      loss_sum += worker.latest_epoch_loss;
      ++loss_count;
    }
    accuracy_sum += ml::Accuracy(*worker.model, test_set_, eval_workspace_);
    compute_total += worker.compute_cost_total;
    comm_total += worker.comm_cost_total;
    epochs_total += worker.epochs_completed;
    result.total_local_iterations += worker.iterations;
  }
  result.final_train_loss =
      loss_count > 0 ? loss_sum / static_cast<double>(loss_count) : 0.0;
  result.final_accuracy =
      accuracy_sum / static_cast<double>(config_.num_workers);
  if (epochs_total > 0) {
    result.avg_epoch_cost.compute_seconds =
        compute_total / static_cast<double>(epochs_total);
    result.avg_epoch_cost.communication_seconds =
        comm_total / static_cast<double>(epochs_total);
  }

  // Consensus distance: max_i || x_i - mean(x) ||.
  const int num_params = workers_[0].model->num_parameters();
  std::vector<double> mean(static_cast<size_t>(num_params), 0.0);
  for (const auto& worker : workers_) {
    linalg::AddInPlace(worker.model->parameters(), mean);
  }
  linalg::Scale(1.0 / static_cast<double>(config_.num_workers), mean);
  double max_dist = 0.0;
  for (const auto& worker : workers_) {
    const std::vector<double> diff =
        linalg::Sub(worker.model->parameters(), mean);
    max_dist = std::max(max_dist, linalg::Norm(diff));
  }
  result.consensus_distance = max_dist;
  return result;
}

}  // namespace netmax::core
