#ifndef NETMAX_CORE_EXPERIMENT_H_
#define NETMAX_CORE_EXPERIMENT_H_

// Shared experiment plumbing for every decentralized-training algorithm.
//
// ExperimentConfig describes one run the way the paper's Section V does:
// dataset + partitioning, model cost profile, cluster/network scenario,
// optimizer settings, and algorithm knobs. ExperimentHarness instantiates it
// (shards, per-worker model replicas and optimizers, link model, event
// simulator) and does the measurement bookkeeping (training-loss series,
// epoch-time cost split, accuracy) so that NetMax and all baselines are
// compared on identical footing — the paper's "same runtime environment".

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/serialize.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/execution_backend.h"
#include "core/policy_generator.h"
#include "ml/compression.h"
#include "ml/dataset.h"
#include "ml/metrics.h"
#include "ml/model.h"
#include "ml/model_profile.h"
#include "ml/optimizer.h"
#include "net/cluster.h"
#include "net/event_sim.h"
#include "net/fault_schedule.h"
#include "net/link_model.h"
#include "net/topology.h"

namespace netmax::core {

class ProcessPoolBackend;  // core/process_backend.h

// How an engine treats a neighbor that is dead (left/crashed) or stalled
// when a round needs it (net/fault_schedule.h faults):
//  * kWait — block the round on the peer, re-probing at a deterministic
//    virtual-time cadence (peer_poll_seconds) until it returns. Matches the
//    synchronous semantics of the paper's algorithms; a peer that never
//    returns parks the worker until the run's time cap.
//  * kTimeoutAndContinue — wait at most peer_timeout_seconds of virtual
//    time, then degrade gracefully: pull-based engines fall back to a local
//    step, round-based engines drop the peer from the round's membership.
// Both policies are pure virtual-time control flow, so fault runs stay
// bit-identical across backends, threads, and shards.
enum class PeerPolicy {
  kWait,
  kTimeoutAndContinue,
};

// Strict parse of a --peer-policy / NETMAX_PEER_POLICY value ("wait",
// "timeout"); returns false on anything else, leaving *policy untouched.
bool ParsePeerPolicy(std::string_view text, PeerPolicy* policy);

// The flag spelling of `policy` (inverse of ParsePeerPolicy).
std::string_view PeerPolicyName(PeerPolicy policy);

// --- harness-owned event tags ----------------------------------------------
// Engines tag their events with small non-negative ints; the harness claims
// a far-away range for the events it schedules itself (fault injections,
// checkpoint cadence), so the two namespaces can never collide and the
// harness can route restore-time rebuilding without consulting the engine.
inline constexpr int64_t kHarnessFaultTag = int64_t{1} << 40;
// args: [worker, factor] — reverts a slowdown at its end time.
inline constexpr int64_t kHarnessSlowdownEndTag = kHarnessFaultTag + 1;
// args: [tick_index] — one periodic-checkpoint cadence tick.
inline constexpr int64_t kHarnessCadenceTag = kHarnessFaultTag + 2;
// args: [at_seconds] — the one-shot checkpoint_at_seconds event.
inline constexpr int64_t kHarnessCheckpointTag = kHarnessFaultTag + 3;

enum class PartitionScheme {
  kUniform,     // Sections V-B..E
  kSegments,    // Section V-F: worker w holds segments[w] data segments
  kLostLabels,  // Tables IV/VII non-IID
};

// Largest worker count the flat complete topology accepts before Validate
// demands a hierarchical shape: beyond this the O(n^2) all-pairs edge and
// link tables stop being a sane default.
inline constexpr int kMaxCompleteTopologyWorkers = 4096;

enum class NetworkScenario {
  kHeterogeneousDynamic,  // Section V-A: slow link re-drawn every 5 minutes
  kHeterogeneousStatic,   // same placement, no dynamic slowdown
  kHomogeneous,           // single server, 10 Gbps virtual switch
  kWan,                   // Appendix G: six EC2 regions
};

struct ExperimentConfig {
  // --- workload ---
  ml::SyntheticSpec dataset = ml::Cifar10SimSpec();
  PartitionScheme partition = PartitionScheme::kUniform;
  std::vector<int> segments;                  // for kSegments
  std::vector<std::vector<int>> lost_labels;  // for kLostLabels

  // --- trainable proxy model (hidden layer widths of the MLP) ---
  std::vector<int> hidden_layers = {32};

  // --- time-domain cost model ---
  ml::ModelProfile profile = ml::ResNet18Profile();
  // Batch size that profile.compute_seconds refers to.
  int profile_batch = 128;
  double compute_multiplier = 1.0;  // >1 for CPU-only WAN instances

  // --- cluster / network ---
  int num_workers = 8;
  NetworkScenario network = NetworkScenario::kHeterogeneousDynamic;
  bool two_server_placement = false;  // Section V-F placement
  double slowdown_period_seconds = 300.0;
  double slowdown_min_factor = 2.0;
  double slowdown_max_factor = 100.0;
  // Communication-graph shape (net/topology.h). kComplete is the paper's
  // flat all-pairs setting and keeps the pairwise StaticLinkModel presets;
  // kHierarchical builds clusters-of-clusters (complete intra-cluster, hub
  // ring inter-cluster) over the O(1)-memory HierarchicalLinkModel — the
  // only shape that scales to 10^5+ workers, where a flat graph's O(n^2)
  // edge and link tables are intractable. Excludes the kWan scenario (whose
  // six-region placement is its own shape).
  net::TopologySpec topology;

  // --- optimization (paper defaults) ---
  int batch_size = 32;
  double learning_rate = 0.1;
  double momentum = 0.9;
  double weight_decay = 1e-4;
  int plateau_patience = 3;             // LR /10 on plateau if no milestones
  std::vector<int64_t> lr_milestones;   // LR /10 at these epochs if non-empty

  // --- stopping ---
  int max_epochs = 30;                 // per-worker epochs
  double max_virtual_seconds = 1e7;    // safety cap on simulated time

  // --- NetMax / monitor knobs ---
  double monitor_period_seconds = 120.0;  // Ts
  double ema_beta = 0.5;                  // iteration-time EMA smoothing
  // generator.alpha is overwritten from learning_rate.
  PolicyGeneratorOptions generator;
  // Initial consensus strength: rho_0 chosen so that
  // alpha * rho_0 * (M-1) = initial_consensus_coefficient (uniform policy).
  double initial_consensus_coefficient = 0.3;
  bool overlap_communication = true;  // Fig. 7: parallel vs serial
  bool adaptive_policy = true;        // Fig. 7: adaptive vs uniform
  // Apply the consensus step as a symmetric exchange: when i pulls from m,
  // m applies the mirrored update, so the pair moves toward each other and
  // the fleet-wide parameter mean is preserved (the update matrix becomes
  // doubly stochastic in the first moment, strengthening the paper's
  // E[D^T D] condition). The literal one-sided pull of Algorithm 2 is
  // row-stochastic only; every pull then discards a fraction of the puller's
  // fresh gradient progress from the mean, which measurably slows per-epoch
  // convergence in this scaled-down high-gradient-noise regime. Disable to
  // run the paper-literal variant.
  bool symmetric_consensus = true;

  // --- measurement ---
  // Evaluate test accuracy every this many global epochs (0 = only at end).
  int eval_every_epochs = 0;
  uint64_t seed = 1;

  // --- execution (real machine, not simulated time) ---
  // Worker threads for the parallel simulation runtime: compute halves of
  // ready events run concurrently on a pool while virtual-time ordering (and
  // therefore every result bit) is unchanged. 0 = one thread per hardware
  // core; 1 = fully serial dispatch through the same two-phase code path.
  int threads = 0;
  // Intra-worker gradient sharding: upper bound on concurrent shard tasks
  // per EvalBatchGradient, nested inside the distinct-worker frontier.
  // 0 = auto (ceil(threads / num_workers), so sharding kicks in exactly when
  // there are more cores than workers); 1 = one serial shard task. Never
  // affects results: the gradient is defined over a fixed leaf decomposition
  // and tree reduction (ml/sharding.h), so RunResult is bit-identical across
  // the whole {threads, shards} grid.
  int shards = 0;
  // Execution backend for the simulator's compute halves
  // (core/execution_backend.h): serial dispatch, frontier speculation with a
  // barrier (default, today's engine), or the async bounded-reorder commit
  // pipeline. With threads <= 1 there is no pool and every kind degrades to
  // serial. Like threads/shards, purely an execution choice — RunResult is
  // bit-identical for every backend.
  ExecutionBackendKind backend = ExecutionBackendKind::kSpeculative;
  // Priority-queue implementation behind the simulator (net/event_queue.h).
  // Purely an execution choice: (time, sequence) is a strict total order, so
  // RunResult is bit-identical for every kind. The sorted-vector default is
  // fastest at the paper's O(10) worker scale; the calendar queue is the
  // scale-frontier choice at 10^5+ workers (see bench_scale_frontier).
  net::EventQueueKind event_queue = net::EventQueueKind::kSortedVector;
  // Async backend only: bound on in-flight compute evaluations (the reorder
  // window). 0 (default) = synchronous — nothing is evaluated ahead of its
  // turn. Ignored by the other backends.
  int reorder_window = 0;
  // Async backend only: let the backend re-size the reorder window at
  // runtime from its own stall/backpressure/re-dispatch counters (useful
  // under straggler faults, where the profitable window depth changes
  // mid-run). Still bit-identical — window depth never affects results.
  bool adaptive_reorder_window = false;
  // Process backend only (--procs / NETMAX_PROCS): forked gradient-compute
  // children. 0 = one per hardware core. Like threads/shards, purely an
  // execution choice — RunResult is bit-identical for every value. The
  // harness forces threads to 1 under this backend (fork safety: a child
  // must never inherit live pool threads), so the two knobs never combine.
  int procs = 0;

  // --- fault injection / graceful degradation (net/fault_schedule.h) ---
  // Worker lifecycle faults injected as first-class virtual-time events. An
  // empty schedule (the default) adds no events, no RNG draws, and no extra
  // sequence numbers, so fault-free runs are bit-identical to builds without
  // the subsystem.
  net::FaultSchedule faults;
  // How engines treat dead/stalled neighbors (see PeerPolicy above).
  PeerPolicy peer_policy = PeerPolicy::kWait;
  // kTimeoutAndContinue: virtual seconds a round waits on a peer before
  // degrading without it.
  double peer_timeout_seconds = 30.0;
  // kWait: virtual-time cadence at which a blocked worker re-probes a dead
  // peer.
  double peer_poll_seconds = 5.0;

  // --- communication compression (ml/compression.h) ---
  // What each model-sized exchange puts on the wire. The default (none)
  // charges exactly profile.message_bytes() per message and transforms
  // nothing, so uncompressed runs are byte-identical — stdout and golden
  // traces — to builds without the subsystem. Active variants derive both
  // the transfer seconds and the RunResult byte counters from the encoding
  // (net/wire_format.h), and apply the matching lossy transform to every
  // exchanged delta/gradient; int8's stochastic rounding draws from the
  // committing worker's RNG stream, so results stay bit-identical across the
  // whole {backend, reorder window, threads, shards, event queue} grid.
  ml::CompressionSpec compress;

  // --- checkpoint / restore (core/checkpoint.h) ---
  // When > 0, the harness arms a checkpoint at this virtual time: the run is
  // quiesced, the full experiment state (workers, RNG streams, event queue,
  // series) is serialized, and the run continues. Resuming from that state
  // finishes with a bit-identical RunResult.
  double checkpoint_at_seconds = 0.0;
  // When > 0, the harness also checkpoints periodically, every this many
  // virtual seconds, to checkpoint_path (always the latest bytes) plus a
  // rotating `<path>.t<k>` history and/or checkpoint_sink. Crash-restore
  // recovery builds on this: a run killed by a `crash` fault can resume from
  // the newest periodic checkpoint and finish bit-identically to a run that
  // never crashed.
  double checkpoint_every_seconds = 0.0;
  // How many `<path>.t<k>` history files the periodic cadence keeps.
  int checkpoint_retain = 3;
  // Where the checkpoint bytes go: a file path, an in-memory buffer, or both
  // (ignored when neither checkpoint_at_seconds nor checkpoint_every_seconds
  // is set).
  std::string checkpoint_path;
  std::vector<uint8_t>* checkpoint_sink = nullptr;
  // When either is set, the engine restores from the checkpoint instead of
  // scheduling its initial events. At most one may be set.
  std::string restore_path;
  const std::vector<uint8_t>* restore_source = nullptr;

  // Checks every config invariant Init depends on; Init calls this first, so
  // benches can validate up front and report the error without building
  // anything.
  Status Validate() const;
};

// Per-epoch cost attribution averaged over workers and epochs. Communication
// cost is the part of the iteration wall time not covered by compute
// (wall - compute, >= 0), so the two parts stack to the epoch time as in the
// paper's Fig. 5/6 bars.
struct EpochCostBreakdown {
  double compute_seconds = 0.0;
  double communication_seconds = 0.0;
  double total_seconds() const {
    return compute_seconds + communication_seconds;
  }
};

struct RunResult {
  std::string algorithm;
  // Mean (over workers) per-epoch training loss vs virtual seconds / epochs.
  ml::Series loss_vs_time;
  ml::Series loss_vs_epoch;
  // Test accuracy of a reference model vs virtual seconds (only when
  // eval_every_epochs > 0).
  ml::Series accuracy_vs_time;
  double final_train_loss = 0.0;
  double final_accuracy = 0.0;  // mean over worker models at the end
  double total_virtual_seconds = 0.0;
  EpochCostBreakdown avg_epoch_cost;
  int64_t total_local_iterations = 0;
  // max_i || x_i - mean(x) ||, a consensus diagnostic.
  double consensus_distance = 0.0;
  // NetMax diagnostics: number of policies the monitor produced.
  int64_t policies_generated = 0;
  // Execution-backend diagnostics (all zero on the serial threads=1 path;
  // excluded from the bit-identity contract, which covers simulation outputs
  // only): the backend that ran the simulation, frontier/window batches
  // dispatched, compute halves evaluated ahead of their turn, invalidated
  // evaluations re-dispatched onto the pool, the defensive inline recomputes
  // (expected zero), and the async pipeline's head-of-window stalls and
  // full-window backpressure events (stalls are real-timing dependent; the
  // other counters are deterministic per config).
  std::string backend;
  // Event-queue implementation the run used ("vector", "heap", "calendar",
  // "pairing");
  // diagnostics only — the queue never affects simulation output.
  std::string event_queue;
  int64_t parallel_batches = 0;
  int64_t computes_speculated = 0;
  int64_t computes_redispatched = 0;
  int64_t computes_recomputed = 0;
  int64_t window_stalls = 0;
  int64_t window_backpressure = 0;
  int64_t window_resizes = 0;
  // Process backend only: forked children that died mid-run and the leaf
  // ranges re-dispatched (or parent-computed) because of it. Real-machine
  // dependent like window_stalls; zero on crash-free runs.
  int64_t process_child_deaths = 0;
  int64_t process_ranges_redispatched = 0;
  // Fault-injection diagnostics (all zero on fault-free runs; part of the
  // simulation output, so bit-identical across backends/threads/shards):
  // lifecycle events applied, rounds that degraded because a peer was dead
  // or stalled, and peers abandoned by a timeout-and-continue deadline.
  int64_t faults_injected = 0;
  int64_t rounds_degraded = 0;
  int64_t peers_timed_out = 0;
  // Wire accounting (part of the simulation output, so bit-identical across
  // backends/threads/shards): logical messages sent, bytes actually on the
  // wire (derived from the message encoding, net/wire_format.h), and the
  // dense-f32-baseline bytes the compression variant avoided (exactly zero
  // with compression off).
  int64_t messages_sent = 0;
  int64_t bytes_sent = 0;
  int64_t bytes_saved = 0;
};

// Interface implemented by NetMax and every baseline.
class TrainingAlgorithm {
 public:
  virtual ~TrainingAlgorithm() = default;
  virtual std::string name() const = 0;
  virtual StatusOr<RunResult> Run(const ExperimentConfig& config) const = 0;
};

// Mutable per-worker training state.
struct WorkerRuntime {
  int id = -1;
  ml::Dataset shard;
  std::unique_ptr<ml::Model> model;
  std::unique_ptr<ml::SgdOptimizer> optimizer;
  std::unique_ptr<ml::BatchSampler> sampler;
  std::unique_ptr<ml::LrSchedule> lr_schedule;
  Rng rng;
  std::vector<double> gradient;     // scratch buffer
  std::vector<int> batch_indices;   // scratch buffer (sampler output)
  ml::TrainingWorkspace workspace;  // batched forward/backward scratch
  int batch_size = 0;
  double compute_seconds_per_batch = 0.0;

  // Epoch bookkeeping.
  double epoch_loss_sum = 0.0;
  int64_t epoch_batches = 0;
  int64_t epochs_completed = 0;
  double latest_epoch_loss = 0.0;
  bool has_epoch_loss = false;

  // Cost accounting.
  double compute_cost_total = 0.0;
  double comm_cost_total = 0.0;
  int64_t iterations = 0;
  // Communication rounds this worker has initiated (the compressor's
  // schedule index: layer-wise sync masks are a function of it). Claimed via
  // ExperimentHarness::NextCommRound in commit contexts, carried in reified
  // event args, and checkpointed — the compression subsystem's only evolving
  // state.
  int64_t comm_rounds = 0;
  bool finished = false;

  WorkerRuntime(int worker_id, ml::Dataset worker_shard, uint64_t rng_seed)
      : id(worker_id), shard(std::move(worker_shard)), rng(rng_seed) {}
};

// Builds and owns everything an engine needs for one run.
class ExperimentHarness {
 public:
  // `algorithm_name` labels the RunResult.
  ExperimentHarness(const ExperimentConfig& config, std::string algorithm_name);

  // Materializes datasets, workers, link model, topology. Must be called
  // exactly once before anything else; fails on inconsistent configs.
  Status Init();

  const ExperimentConfig& config() const { return config_; }
  net::EventSimulator& sim() { return sim_; }
  net::LinkModel& links() { return *links_; }
  const net::Topology& topology() const { return *topology_; }
  int num_workers() const { return config_.num_workers; }
  WorkerRuntime& worker(int w) { return workers_[static_cast<size_t>(w)]; }
  const ml::Dataset& test_set() const { return test_set_; }

  // Compute time for one batch of `batch_size` examples.
  double ComputeSeconds(int batch_size) const;

  // Transfer time for one model pull from `src` to `dst` starting now,
  // charging the dense baseline profile.message_bytes(). Accounting-free and
  // const: measurement probes (SAPS's link survey) and the compression-off
  // send path share it.
  double PullSeconds(int src, int dst) const;

  // --- communication compression (ml/compression.h) --------------------------
  // True when config.compress names an active (non-none) variant. Engines
  // branch on this so the compression-off path keeps its exact historical
  // arithmetic (byte-identical traces).
  bool compression_enabled() const { return config_.compress.enabled(); }

  // Claims worker w's next communication-round index (post-increments
  // worker.comm_rounds). Commit contexts only; the index rides in reified
  // event args so a restored run replays the same compression schedule.
  int64_t NextCommRound(int w) {
    return workers_[static_cast<size_t>(w)].comm_rounds++;
  }

  // Accounts one model-sized message from src to dst in communication round
  // `round` and returns its transfer seconds from the *derived* wire bytes
  // (net/wire_format.h). With compression off this charges and returns
  // exactly what PullSeconds always has. Commit contexts only (it mutates
  // the byte counters).
  double SendSeconds(int src, int dst, int64_t round);

  // Encoded payload bytes of one model-sized message in round `round`
  // (profile.message_bytes() with compression off). Accounting-free, for
  // engines that do their own multi-chunk timing (ring allreduce).
  int64_t MessagePayloadBytes(int64_t round) const;

  // Adds `messages` sends totalling `payload_bytes` on the wire against a
  // dense baseline of `baseline_bytes` to the wire counters (commit contexts
  // only). SendSeconds is a convenience over this.
  void AccountWire(int64_t messages, int64_t payload_bytes,
                   int64_t baseline_bytes) {
    messages_sent_ += messages;
    bytes_sent_ += payload_bytes;
    bytes_saved_ += baseline_bytes - payload_bytes;
  }

  // In-place lossy transform of a model-sized delta/gradient: what the
  // receiver decodes from round `round`'s encoding. No-op with compression
  // off. int8's stochastic rounding draws from worker `rng_worker`'s stream,
  // so this is a commit-context-only call like every other RNG use.
  void ApplyCompression(int rng_worker, int64_t round,
                        std::span<double> delta) {
    compressor_.Transform(delta, round,
                          workers_[static_cast<size_t>(rng_worker)].rng);
  }

  // Scratch sized to the proxy model's parameter count, for engines that
  // build a delta to compress (commits are strictly serial per run, so one
  // buffer suffices).
  std::span<double> CompressionScratch() { return compression_scratch_; }

  // --- two-phase gradient step (the engines' unit of work) ---
  // One serial local step splits into three halves that map onto
  // net::EventSimulator::ScheduleCompute:
  //   SampleBatch(w)        at schedule time (commit context: advances the
  //                         worker's sampler stream deterministically),
  //   EvalBatchGradient(w)  as the pure compute half (reads w's parameters
  //                         and batch, writes w's gradient/workspace scratch;
  //                         idempotent, safe on a pool thread),
  //   CommitBatchStats(w)   in the commit half (epoch bookkeeping, series
  //                         points, LR schedule — strictly ordered).

  // Draws the next batch for worker w into worker.batch_indices.
  void SampleBatch(int w);

  // Loss + gradient over the sampled batch at w's current parameters, into
  // worker.gradient. Touches only worker-local state; re-running it on
  // unchanged state reproduces the same bits (speculation-safe). When the
  // run has a pool and shards() > 1, the batch's gradient leaves evaluate as
  // up to shards() concurrent tasks nested inside the compute frontier
  // (ml/sharding.h) — the result bits never depend on it.
  double EvalBatchGradient(int w);

  // Epoch bookkeeping for one computed batch of loss `loss`: when w finishes
  // an epoch this records series points, applies the LR schedule, and may
  // mark the worker finished.
  void CommitBatchStats(int w, double loss);

  // Serial convenience: SampleBatch + EvalBatchGradient + CommitBatchStats.
  // The gradient is left in worker.gradient without applying it (engines that
  // apply gradients after communication, e.g. AD-PSGD's average-then-step
  // order).
  double ComputeGradientOnly(int w);

  // Serial convenience: ComputeGradientOnly + ApplyStoredGradient.
  double LocalGradientStep(int w);

  // Applies worker w's stored gradient through its optimizer (and notifies
  // the simulator of the parameter write for speculation tracking).
  void ApplyStoredGradient(int w);

  // Adds one iteration's cost to worker w's account. `wall_seconds` is the
  // iteration duration; compute cost is capped at wall.
  void AccountIteration(int w, double compute_seconds, double wall_seconds);

  // True once worker w has trained for config.max_epochs epochs, the time
  // cap has been reached, or the worker is currently dead (left via a fault;
  // a later join fault revives it and the engine's fault listener restarts
  // it).
  bool WorkerDone(int w) const;
  bool AllDone() const;

  // --- fault injection / peer liveness (net/fault_schedule.h) ---
  // The per-engine liveness view: false while worker w is dead (a leave
  // fault fired and no join has yet). Always true on fault-free runs.
  bool WorkerAlive(int w) const { return alive_[static_cast<size_t>(w)]; }

  // compute_seconds_per_batch under the worker's current slowdown factor
  // (exactly equal to worker.compute_seconds_per_batch while no slowdown is
  // active, so fault-free runs are bit-identical). Engines schedule all
  // compute delays through this.
  double EffectiveComputeSeconds(int w) const {
    return workers_[static_cast<size_t>(w)].compute_seconds_per_batch *
           compute_factor_[static_cast<size_t>(w)];
  }

  // Called by the harness after applying each fault, on the simulator thread
  // at the fault's virtual time. Engines use it to restart a rejoining
  // worker (kJoin) or drop a dead one from waiting rooms (kLeave). Must be
  // (re-)registered on every run, including restored ones — listeners are
  // not checkpointed.
  using FaultListener = std::function<void(const net::FaultEvent&)>;
  void set_fault_listener(FaultListener listener) {
    fault_listener_ = std::move(listener);
  }

  // Degradation accounting, surfaced in RunResult. Engines call these when a
  // round proceeds without (or delayed by) a dead/stalled peer and when a
  // timeout-and-continue deadline abandons one.
  void CountDegradedRound() { ++rounds_degraded_; }
  void CountPeerTimeout() { ++peers_timed_out_; }
  int64_t faults_injected() const { return faults_injected_; }
  int64_t rounds_degraded() const { return rounds_degraded_; }
  int64_t peers_timed_out() const { return peers_timed_out_; }

  // Resolved worker-thread count (config.threads with 0 mapped to the
  // hardware concurrency) and the pool backing the parallel runtime; the pool
  // is null when running serially (threads == 1). Engines hand the pool to
  // the policy generator so monitor ticks parallelize their grid search too.
  int threads() const { return threads_; }
  ThreadPool* pool() { return pool_.get(); }
  // Resolved intra-worker shard-task bound (config.shards with 0 mapped to
  // ceil(threads / num_workers)).
  int shards() const { return shards_; }
  // Non-null when the run uses the multi-process backend
  // (core/process_backend.h): the attached backend, exposed so benches can
  // report its child count and tests can crash a child mid-run.
  ProcessPoolBackend* process_backend() { return process_backend_; }

  // For NetMax diagnostics.
  void set_policies_generated(int64_t n) { policies_generated_ = n; }
  int64_t policies_generated() const { return policies_generated_; }

  // --- checkpoint / restore (implemented in core/checkpoint.cc) ---
  // Serializes/restores the engine's own state blob within the checkpoint.
  using EngineStateSaver = std::function<Status(Serializer&)>;
  using EngineStateRestorer = std::function<Status(Deserializer&)>;

  // True when the config asks this run to resume from a checkpoint.
  bool restore_requested() const {
    return !config_.restore_path.empty() || config_.restore_source != nullptr;
  }

  // Restores harness + simulator + engine state from the configured source.
  // The engine calls this after Init() and after rebuilding its deterministic
  // setup (policies, monitors, topologies), INSTEAD of scheduling its initial
  // events: the restored queue already holds them. `restore_engine` reads the
  // engine state blob; `rebuilder` maps saved events back to closures.
  Status Restore(const EngineStateRestorer& restore_engine,
                 const net::EventRebuilder& rebuilder);

  // Arms the configured checkpoints (no-op when none are):
  //  * one-shot — a tagged plain event at config.checkpoint_at_seconds that
  //    quiesces in-flight speculation, serializes the full experiment state
  //    plus the engine blob from `save_engine`, and writes it to the
  //    configured sink/path. A checkpoint time past the run's last event
  //    fails via checkpoint_status() rather than write a dead checkpoint.
  //  * periodic cadence — a self-rechaining tick every
  //    config.checkpoint_every_seconds that writes the latest bytes to
  //    checkpoint_path (plus a `<path>.t<k>` history of checkpoint_retain
  //    files) and/or the sink; a tick that lands past the run's last event
  //    silently ends the cadence. On restored runs the cadence resumes
  //    seamlessly: the next tick is re-armed here (or was restored with the
  //    queue), consuming the exact sequence number the uninterrupted run
  //    would have, so restored and uninterrupted runs stay bit-identical.
  // The run continues after every save. Failures surface through
  // checkpoint_status(), which engines propagate after the run completes.
  void ArmCheckpoint(EngineStateSaver save_engine);

  // Ok unless an armed checkpoint failed to serialize or write.
  const Status& checkpoint_status() const { return checkpoint_status_; }

  // Assembles the RunResult (final accuracy over all worker models, cost
  // averages, consensus distance).
  RunResult Finalize();

 private:
  void OnEpochCompleted(int w, double epoch_loss);
  void RecordGlobalEpochPoint();

  // --- fault injection (experiment.cc) ---
  // Schedules every config_.faults event as a tagged plain event (skipped on
  // restored runs: the restored queue already carries the pending ones).
  void ScheduleFaults();
  // The fault handlers, run at their virtual time on the simulator thread.
  void ApplyFault(const net::FaultEvent& fault);
  void EndSlowdown(int worker, double factor);

  // core/checkpoint.cc.
  // Maps a harness-tagged SavedEvent (faults, cadence ticks, the one-shot
  // checkpoint event) back to its closure; Restore wraps the engine's
  // rebuilder with this so engines never see harness tags.
  StatusOr<net::RebuiltEvent> BuildHarnessEvent(const net::SavedEvent& saved);
  // Schedules a harness event through BuildHarnessEvent, so live scheduling
  // and restore-time rebuilding share one closure definition per tag.
  void ScheduleHarnessEvent(double time, net::EventPayload payload);
  void OneShotCheckpoint(double at);
  void CadenceTick(int64_t tick_index);
  StatusOr<std::vector<uint8_t>> SerializeCheckpoint(
      const EngineStateSaver& save_engine);
  Status SaveCheckpoint(const EngineStateSaver& save_engine);
  Status SavePeriodicCheckpoint(int64_t tick_index);
  void SaveWorker(Serializer& out, const WorkerRuntime& worker) const;
  Status RestoreWorker(Deserializer& in, WorkerRuntime& worker);

  ExperimentConfig config_;
  std::string algorithm_name_;
  bool initialized_ = false;

  int threads_ = 1;
  int shards_ = 1;
  std::unique_ptr<ThreadPool> pool_;  // created by Init when threads_ > 1
  // Execution strategy for sim_'s compute halves; owned here, borrowed by
  // the simulator (declared before sim_ only for grouping — the simulator
  // never touches the backend after RunUntilIdle returns).
  std::unique_ptr<net::ExecutionBackend> backend_;
  // Downcast view of backend_ when config_.backend is kProcessPool (null
  // otherwise); EvalBatchGradient routes its leaf waves through it.
  ProcessPoolBackend* process_backend_ = nullptr;
  net::EventSimulator sim_;
  std::unique_ptr<net::Topology> topology_;
  std::unique_ptr<net::LinkModel> links_;
  // One contiguous slab (PR-2 workspace discipline applied to the harness):
  // per-worker state lives in one allocation, reserved once in Init, instead
  // of num_workers separate heap nodes — at 10^5 workers the pointer chase
  // and allocator traffic of one-unique_ptr-per-worker are measurable.
  std::vector<WorkerRuntime> workers_;
  ml::Dataset test_set_{1, 2};
  // Shared by every test-set evaluation (all worker models have identical
  // shapes, so one set of buffers serves Finalize and the periodic
  // accuracy-vs-time points without reallocating).
  ml::TrainingWorkspace eval_workspace_;

  // Recording state.
  ml::Series loss_vs_time_;
  ml::Series loss_vs_epoch_;
  ml::Series accuracy_vs_time_;
  int64_t total_epochs_completed_ = 0;
  int64_t policies_generated_ = 0;

  // Fault-injection state (checkpointed, so restored fault runs resume with
  // the same liveness view and counters).
  std::vector<bool> alive_;
  std::vector<double> compute_factor_;  // 1.0 while no slowdown is active
  int64_t faults_injected_ = 0;
  int64_t rounds_degraded_ = 0;
  int64_t peers_timed_out_ = 0;
  // Wire accounting (checkpointed next to the fault counters; incremented
  // only from commit contexts, so bit-identical like every simulation
  // output).
  int64_t messages_sent_ = 0;
  int64_t bytes_sent_ = 0;
  int64_t bytes_saved_ = 0;
  // Stateless compressor for config_.compress, built in Init from the proxy
  // model's layer geometry; plus the shared delta scratch.
  ml::GradientCompressor compressor_;
  std::vector<double> compression_scratch_;
  FaultListener fault_listener_;  // not checkpointed; re-registered per run

  // Outcome of the armed checkpoint(s), if any.
  Status checkpoint_status_;
  // Periodic-cadence state: the saver ArmCheckpoint captured, the index the
  // next tick will carry (checkpointed, so a restored run's `<path>.t<k>`
  // history continues where the crashed run's left off), and whether the
  // restored queue already holds a pending tick (in which case ArmCheckpoint
  // must not arm a duplicate).
  EngineStateSaver checkpoint_saver_;
  int64_t cadence_next_index_ = 1;
  bool cadence_tick_restored_ = false;
};

// Helper shared by benches/examples: builds the per-worker shards for the
// configured partition scheme (exposed for tests).
StatusOr<std::vector<ml::Dataset>> BuildShards(const ExperimentConfig& config,
                                               const ml::Dataset& train);

// Per-worker batch size: config.batch_size, scaled by segments[w] for the
// kSegments scheme (paper: batch = 64 * segment count).
int WorkerBatchSize(const ExperimentConfig& config, int worker);

}  // namespace netmax::core

#endif  // NETMAX_CORE_EXPERIMENT_H_
