#ifndef NETMAX_CORE_EXECUTION_BACKEND_H_
#define NETMAX_CORE_EXECUTION_BACKEND_H_

// Concrete execution backends for the event simulator, plus the selection
// plumbing (kind enum, flag parsing, factory) the experiment harness and the
// benches share. The abstract net::ExecutionBackend interface is declared in
// net/event_sim.h, beside the simulator it drives (the net layer cannot
// depend on core); everything that picks or implements a strategy lives
// here.
//
// Four strategies, all bit-identical to each other by the soundness
// contract in net/event_sim.h:
//
//  * SerialBackend — every event runs inline at its turn on the simulator
//    thread. The reference semantics; also what every other backend degrades
//    to without a pool.
//  * SpeculativeBackend — the PR 3/4 frontier machinery: collect the longest
//    prefix of pending compute events with pairwise-distinct worker keys,
//    evaluate them concurrently on the pool behind a barrier, then drain the
//    whole batch in order. Invalidated speculations are re-dispatched onto
//    the pool in a second pass instead of recomputing inline.
//  * AsyncPipelineBackend — no barrier: compute halves stream through a
//    bounded reorder window (`reorder_window` in-flight evaluations, 0 =
//    synchronous). The commit drain waits only for the entry at the head of
//    the window, never for the slowest in-flight compute; dispatch applies
//    backpressure when the window fills, and NotifyStateWrite invalidation
//    covers every window-resident evaluation (in-flight ones are waited out
//    before the caller's write, then re-dispatched).
//  * ProcessPoolBackend — fork + MAP_SHARED (core/process_backend.h):
//    serial event semantics, but each batch-gradient compute half fans its
//    leaf ranges out to forked child processes over shared memory. Built by
//    the factory below like the others, but attached to its experiment by
//    the harness (the fork must happen after the worker slab is final).

#include <cstdint>
#include <future>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/event_sim.h"

namespace netmax {
class ThreadPool;
}  // namespace netmax

namespace netmax::core {

// The seam interface, re-exported under the layer that implements it.
using net::ExecutionBackend;
using net::ExecutionStats;

enum class ExecutionBackendKind {
  kSerial,
  kSpeculative,    // default: today's frontier speculation + re-dispatch
  kAsyncPipeline,  // bounded-reorder-window commit pipeline
  kProcessPool,    // fork + MAP_SHARED leaf waves (process_backend.h)
};

// Strict parse of a --backend / NETMAX_BACKEND value ("serial",
// "speculative", "async", "process"); returns false on anything else,
// leaving *kind untouched.
bool ParseExecutionBackendKind(std::string_view text,
                               ExecutionBackendKind* kind);

// The flag spelling of `kind` (inverse of ParseExecutionBackendKind).
std::string_view ExecutionBackendKindName(ExecutionBackendKind kind);

// Builds the backend for one simulator run. `pool` is borrowed and must
// outlive the backend; with a null pool the THREAD-pooled kinds degrade to
// SerialBackend (there is nothing to overlap with) — kProcessPool does not:
// its parallelism is forked processes, so it never wants a pool and is
// returned un-attached (the harness calls ProcessPoolBackend::Attach once
// the state the children must inherit is final). `reorder_window` is the
// async backend's in-flight bound and `adaptive_window` lets the async
// backend re-size that bound at runtime from its own stall/backpressure
// counters; both are ignored by the other kinds.
std::unique_ptr<ExecutionBackend> MakeExecutionBackend(
    ExecutionBackendKind kind, ThreadPool* pool, int reorder_window,
    bool adaptive_window = false);

// Fully serial dispatch: Dispatch is a no-op and every compute half runs
// inline at its turn. Stats stay zero.
class SerialBackend : public ExecutionBackend {
 public:
  std::string_view name() const override { return "serial"; }
  void Dispatch(net::EventSimulator& sim) override;
  int64_t DrainCommits(net::EventSimulator& sim) override;
  void OnStateWrite(net::EventSimulator& sim, int worker_key) override;
};

// Frontier speculation with a barrier (the PR 3/4 machinery): at most one
// compute half per distinct worker key joins a parallel batch, the batch is
// evaluated to completion on the pool, then drained in order. A same-key
// duplicate ends the frontier scan, so adversarial interleavings degrade to
// serial order.
class SpeculativeBackend : public ExecutionBackend {
 public:
  explicit SpeculativeBackend(ThreadPool* pool);

  std::string_view name() const override { return "speculative"; }
  void Dispatch(net::EventSimulator& sim) override;
  int64_t DrainCommits(net::EventSimulator& sim) override;
  void OnStateWrite(net::EventSimulator& sim, int worker_key) override;

 protected:
  void OnHalt(net::EventSimulator& sim) override;

 private:
  // One frontier member, evaluated by the Dispatch barrier. `value` is ready
  // once Dispatch returns; invalidation replaces it through `redispatch`.
  struct Speculation {
    int64_t sequence = 0;
    double time = 0.0;
    net::EventSimulator::ComputeFn compute;  // copy, for re-dispatch
    double value = 0.0;
  };
  // One invalidated compute half re-dispatched onto the pool for the second
  // speculation pass. Heap-allocated so the pooled task's writes target a
  // stable address; `done` orders those writes before any read of `value`
  // (and before any state write by a second invalidator).
  struct Redispatch {
    double value = 0.0;
    bool invalidated = false;  // a later write dirtied the key again
    std::future<void> done;
  };

  // SpeculationProvider body: commits the batch value for (sequence, key),
  // routing invalidated keys through their re-dispatch entry.
  bool ProvideValue(int64_t sequence, int worker_key, double* value);
  // Submits the second-pass recomputes queued by OnStateWrite during the
  // handler that just returned, in (time, sequence) order of their events.
  void FlushRedispatches();

  ThreadPool* pool_;
  // Speculations of the current batch awaiting their turn, by worker key
  // (frontier keys are pairwise distinct). Drain erases an entry when its
  // event commits.
  std::unordered_map<int, Speculation> inflight_;
  // Keys whose speculation a commit since the batch formed invalidated.
  std::unordered_set<int> dirty_keys_;
  // Second-pass state: keys queued by the current handler (flushed right
  // after it returns) and the in-flight re-dispatches by key.
  std::vector<int> pending_redispatch_keys_;
  std::unordered_map<int, std::unique_ptr<Redispatch>> redispatches_;
};

// Bounded-reorder commit pipeline: up to `reorder_window` compute halves are
// in flight on the pool at once, entering in (time, sequence) order and
// leaving at their commit. There is no batch barrier — the drain waits only
// for the head entry's own future, so one slow compute never stalls the
// commits (or re-dispatches) of everything behind it; it only occupies one
// window slot. reorder_window == 0 means synchronous: nothing is dispatched
// ahead and every compute runs inline, which makes the backend equivalent to
// SerialBackend while keeping its name and counters.
//
// With `adaptive_window` set, the backend consumes its own diagnostics to
// auto-size the window under straggler load: sustained backpressure (runnable
// work held back by a full window) grows it, sustained head-of-window stalls
// or invalidation re-dispatches (speculation running ahead of what the commit
// stream can use) shrink it, within [1, kMaxAdaptiveWindow]. The window size
// never affects simulation output — that is the backend bit-identity
// invariant — so the controller is free to chase real-machine throughput.
class AsyncPipelineBackend : public ExecutionBackend {
 public:
  AsyncPipelineBackend(ThreadPool* pool, int reorder_window,
                       bool adaptive_window = false);

  // Upper bound the adaptive controller may grow the window to.
  static constexpr int kMaxAdaptiveWindow = 64;

  std::string_view name() const override { return "async"; }
  int reorder_window() const { return reorder_window_; }
  bool adaptive_window() const { return adaptive_window_; }
  void Dispatch(net::EventSimulator& sim) override;
  int64_t DrainCommits(net::EventSimulator& sim) override;
  void OnStateWrite(net::EventSimulator& sim, int worker_key) override;

 protected:
  void OnIdle(net::EventSimulator& sim) override;
  void OnHalt(net::EventSimulator& sim) override;

 private:
  // One window-resident evaluation. Heap-allocated so the pooled task's
  // writes target a stable address while the map rehashes; `done` orders the
  // task's `value` write before any read (and before any state write by an
  // invalidator).
  struct Entry {
    int64_t sequence = 0;
    int worker_key = -1;
    double time = 0.0;
    net::EventSimulator::ComputeFn compute;  // copy, safe off-thread
    double value = 0.0;
    bool invalidated = false;  // awaiting re-dispatch after the handler
    std::future<void> done;
  };

  void Submit(Entry& entry);
  void FlushRedispatches();
  // Adaptive controller step, run once per kAdaptPeriod dispatches: compares
  // the counter deltas accumulated since the last step and re-sizes the
  // window.
  void MaybeAdaptWindow();

  ThreadPool* pool_;
  int reorder_window_;
  const bool adaptive_window_;
  // Adaptive controller state: dispatch calls since the last adaptation and
  // the counter values it last saw.
  int64_t adapt_dispatches_ = 0;
  ExecutionStats adapt_baseline_;
  // Window entries by worker key: at most one in-flight evaluation per key
  // (a same-key duplicate is skipped by the dispatch scan, preserving the
  // chained-commit order), at most reorder_window_ entries total.
  std::unordered_map<int, std::unique_ptr<Entry>> window_;
  std::vector<int> pending_redispatch_keys_;
};

}  // namespace netmax::core

#endif  // NETMAX_CORE_EXECUTION_BACKEND_H_
