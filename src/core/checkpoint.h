#ifndef NETMAX_CORE_CHECKPOINT_H_
#define NETMAX_CORE_CHECKPOINT_H_

// Bit-exact checkpoint/restore for experiment runs.
//
// A checkpoint captures everything a run's future depends on: per-worker
// model parameters, optimizer velocity, RNG and sampler streams, the pending
// event queue (as tagged, reified descriptions — see net::EventPayload), the
// simulator clock and sequence counter, the harness's recorded series, and an
// engine-specific state blob. Restoring the checkpoint and finishing the run
// produces a RunResult bit-identical to the uninterrupted run, on any
// execution backend.
//
// Two properties make that work:
//  * Quiesce-before-save: the checkpoint event runs on the simulator thread
//    and first invalidates every speculated compute evaluation
//    (NotifyStateWrite per worker), so all serialized state is at its
//    committed value; invalidated evaluations re-run afterwards and
//    reproduce the same bits because compute halves are pure.
//  * Exact sequence restore: pending events are re-inserted with the saved
//    (time, sequence) identity, so every tie-break after the restore matches
//    the original run. The checkpoint event itself consumes one sequence
//    number, shifting all later sequences uniformly relative to a run that
//    never armed one — a strictly monotone shift that preserves every
//    relative ordering, which is why checkpointed and checkpoint-free runs
//    also match each other bit for bit.
//
// The harness-side entry points (ArmCheckpoint / Restore / restore_requested)
// are declared on ExperimentHarness in core/experiment.h and implemented in
// core/checkpoint.cc; this header has the wire-format constants, the file
// helpers, and the scheduling/serialization helpers engines use.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/serialize.h"
#include "common/stats.h"
#include "common/status.h"
#include "linalg/matrix.h"
#include "net/event_sim.h"

namespace netmax::core {

// worker_key value marking a plain (callback) event in reified scheduling.
inline constexpr int kPlainEvent = -1;

// "NMCP" / "NMCE": header magic and end marker of the checkpoint format.
inline constexpr uint32_t kCheckpointMagic = 0x4E4D4350;
inline constexpr uint32_t kCheckpointEndMarker = 0x4E4D4345;
// Version 2 added the fault-injection state (liveness flags, slowdown
// factors, fault counters) and the periodic-cadence tick index. Version 3
// added the wire-accounting counters (messages/bytes sent, bytes saved), the
// per-worker communication-round index, and the compression spec in the
// config fingerprint.
inline constexpr uint32_t kCheckpointVersion = 3;

// Whole-file read/write. Write goes through a temp file + rename so a crash
// mid-write never leaves a truncated checkpoint at `path`.
Status WriteCheckpointFile(const std::string& path,
                           const std::vector<uint8_t>& bytes);
StatusOr<std::vector<uint8_t>> ReadCheckpointFile(const std::string& path);

// Matrix round trip (policy matrices, EMA grids).
void SaveMatrix(Serializer& out, const linalg::Matrix& matrix);
StatusOr<linalg::Matrix> LoadMatrix(Deserializer& in);

// Per-link iteration-time EMA grid round trip (the monitor's
// UPDATETIMEVECTOR state in the NetMax and AD-PSGD+Monitor engines). Restore
// requires `grid` to be pre-sized to the saved shape — the engine builds it
// from the config before restoring — and keeps each cell's beta.
void SaveEmaGrid(Serializer& out,
                 const std::vector<std::vector<ExponentialMovingAverage>>& grid);
Status RestoreEmaGrid(Deserializer& in,
                      std::vector<std::vector<ExponentialMovingAverage>>* grid);

// Schedules the event described by (worker_key, payload) `delay` seconds
// from now by running the description through `builder` — the same mapping
// Restore uses — so each engine defines every event closure exactly once and
// live scheduling cannot drift from the restore path. `builder` rejecting an
// engine's own payload is a programmer error and aborts.
inline void ScheduleReified(net::EventSimulator& sim, double delay,
                            int worker_key, net::EventPayload payload,
                            const net::EventRebuilder& builder) {
  net::SavedEvent saved;
  saved.time = sim.Now() + delay;
  saved.worker_key = worker_key;
  saved.payload = payload;
  StatusOr<net::RebuiltEvent> rebuilt = builder(saved);
  NETMAX_CHECK_OK(rebuilt.status());
  if (worker_key < 0) {
    sim.ScheduleAfter(delay, std::move(payload), std::move(rebuilt->plain));
  } else {
    sim.ScheduleComputeAfter(delay, worker_key, std::move(payload),
                             std::move(rebuilt->compute),
                             std::move(rebuilt->commit));
  }
}

// Absolute-time variant: schedules at virtual time `time` (>= Now()). Engines
// that place events at computed absolute times (NIC reservations, round
// clocks) use this so the event time stays bit-exact instead of round-tripping
// through a Now()-relative delay.
inline void ScheduleReifiedAt(net::EventSimulator& sim, double time,
                              int worker_key, net::EventPayload payload,
                              const net::EventRebuilder& builder) {
  net::SavedEvent saved;
  saved.time = time;
  saved.worker_key = worker_key;
  saved.payload = payload;
  StatusOr<net::RebuiltEvent> rebuilt = builder(saved);
  NETMAX_CHECK_OK(rebuilt.status());
  if (worker_key < 0) {
    sim.ScheduleAt(time, std::move(payload), std::move(rebuilt->plain));
  } else {
    sim.ScheduleCompute(time, worker_key, std::move(payload),
                        std::move(rebuilt->compute),
                        std::move(rebuilt->commit));
  }
}

}  // namespace netmax::core

#endif  // NETMAX_CORE_CHECKPOINT_H_
