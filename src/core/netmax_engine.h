#ifndef NETMAX_CORE_NETMAX_ENGINE_H_
#define NETMAX_CORE_NETMAX_ENGINE_H_

// NetMax: asynchronous decentralized consensus SGD with monitor-driven
// adaptive neighbor selection (paper Algorithms 1-3).
//
// Per local iteration a worker (Algorithm 2):
//   1. draws a peer m from its policy row (p_{i,m}),
//   2. requests m's parameters while computing its local minibatch gradient
//      (overlapped, so the iteration lasts max{C_i, N_{i,m}}; the Fig. 7
//      "serial" ablation runs them back-to-back instead),
//   3. applies the gradient step, then the consensus step
//      x_i <- x_i - alpha * rho/p_{i,m} * (x_i - x_m),
//   4. folds the iteration time into its EMA vector T_i[m].
// Every Ts seconds the Network Monitor collects the EMAs and regenerates
// (P, rho) by Algorithm 3 (the Fig. 7 "uniform" ablation disables this).

#include "core/experiment.h"

namespace netmax::core {

class NetMaxAlgorithm : public TrainingAlgorithm {
 public:
  std::string name() const override { return "NetMax"; }
  StatusOr<RunResult> Run(const ExperimentConfig& config) const override;
};

// NetMax variants for the Fig. 7 source-of-improvement ablation. `overlap`
// toggles compute/communication overlap; `adaptive` toggles the monitor.
class NetMaxVariantAlgorithm : public TrainingAlgorithm {
 public:
  NetMaxVariantAlgorithm(bool overlap, bool adaptive);
  std::string name() const override { return name_; }
  StatusOr<RunResult> Run(const ExperimentConfig& config) const override;

 private:
  bool overlap_;
  bool adaptive_;
  std::string name_;
};

}  // namespace netmax::core

#endif  // NETMAX_CORE_NETMAX_ENGINE_H_
