#ifndef NETMAX_CORE_MONITOR_H_
#define NETMAX_CORE_MONITOR_H_

// Network Monitor (paper Algorithm 1).
//
// The monitor is the only centralized component of NetMax and it never sees
// training data or model parameters: every schedule period Ts it collects the
// per-link iteration-time EMAs [t_{i,m}] from the workers, runs the policy
// generator (Algorithm 3), and pushes the new policy (P, rho) back. Inside
// the simulator the engine schedules a monitor event every Ts and calls
// ComputePolicy; this class holds the policy-generation state and the
// handling of not-yet-measured links.

#include <optional>

#include "core/policy_generator.h"

namespace netmax::core {

struct MonitorOptions {
  // Ts: how often the monitor recomputes the policy (paper: 2 minutes).
  double schedule_period_seconds = 120.0;
  PolicyGeneratorOptions generator;
};

class NetworkMonitor {
 public:
  NetworkMonitor(net::Topology topology, MonitorOptions options);

  // Fills links that no worker has measured yet (entry <= 0) with the largest
  // measured time — a conservative guess that steers traffic away from
  // unknown links until they are probed. Returns nullopt if nothing has been
  // measured at all.
  std::optional<linalg::Matrix> FillMissingTimes(
      const linalg::Matrix& ema_times) const;

  // One monitor tick: assembles the time matrix and runs Algorithm 3.
  // Returns kFailedPrecondition while no link has been measured yet, or the
  // generator's error if no feasible policy exists. A non-null `pool` fans
  // the generator's (rho, t_bar) grid search out across it (same result).
  StatusOr<GeneratedPolicy> ComputePolicy(const linalg::Matrix& ema_times,
                                          ThreadPool* pool = nullptr) const;

  const MonitorOptions& options() const { return options_; }
  const net::Topology& topology() const { return generator_.topology(); }

  // Number of successful policy computations so far (diagnostics).
  int64_t policies_generated() const { return policies_generated_; }
  // Checkpoint support: restores the diagnostic counter.
  void set_policies_generated(int64_t count) { policies_generated_ = count; }

 private:
  MonitorOptions options_;
  PolicyGenerator generator_;
  mutable int64_t policies_generated_ = 0;
};

}  // namespace netmax::core

#endif  // NETMAX_CORE_MONITOR_H_
