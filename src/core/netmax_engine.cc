#include "core/netmax_engine.h"

#include <algorithm>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "core/checkpoint.h"
#include "core/monitor.h"
#include "linalg/vector_ops.h"
#include "net/fault_schedule.h"

namespace netmax::core {
namespace {

// Consensus coefficients are clamped below this to keep the second-step
// update a contraction even while policy and rho are transiently mismatched
// (e.g. right after a monitor update).
constexpr double kMaxConsensusCoefficient = 0.95;

class NetMaxEngine {
 public:
  explicit NetMaxEngine(const ExperimentConfig& config)
      : harness_(config, "NetMax"), config_(config) {}

  StatusOr<RunResult> Run() {
    NETMAX_RETURN_IF_ERROR(harness_.Init());
    const int n = harness_.num_workers();
    topology_ = &harness_.topology();

    // Initial uniform policy and rho_0 with
    // alpha * rho_0 * (M - 1) = initial_consensus_coefficient.
    policy_ = std::make_unique<CommunicationPolicy>(
        CommunicationPolicy::Uniform(*topology_));
    rho_ = config_.initial_consensus_coefficient /
           (config_.learning_rate * static_cast<double>(n - 1));

    // Monitor (Algorithm 1).
    MonitorOptions monitor_options;
    monitor_options.schedule_period_seconds = config_.monitor_period_seconds;
    monitor_options.generator = config_.generator;
    monitor_options.generator.alpha = config_.learning_rate;
    monitor_ = std::make_unique<NetworkMonitor>(*topology_, monitor_options);

    // Per-link iteration-time EMAs (Algorithm 2, UPDATETIMEVECTOR).
    ema_times_.assign(
        static_cast<size_t>(n),
        std::vector<ExponentialMovingAverage>(
            static_cast<size_t>(n),
            ExponentialMovingAverage(config_.ema_beta)));

    parked_.assign(static_cast<size_t>(n), 0);
    builder_ = [this](const net::SavedEvent& event) {
      return BuildEvent(event);
    };
    if (harness_.restore_requested()) {
      NETMAX_RETURN_IF_ERROR(harness_.Restore(
          [this](Deserializer& in) { return RestoreEngineState(in); },
          builder_));
    } else {
      for (int w = 0; w < n; ++w) StartIteration(w);
      if (config_.adaptive_policy) {
        Emit(config_.monitor_period_seconds, kPlainEvent, {kMonitorTick, {}});
      }
    }
    harness_.ArmCheckpoint(
        [this](Serializer& out) { return SaveEngineState(out); });
    // A rejoining worker whose iteration chain parked (it was dead when its
    // last commit tried to start the next iteration) is restarted here; a
    // worker that rejoins while its final pre-leave event is still in flight
    // keeps its chain and must not get a second one.
    harness_.set_fault_listener([this](const net::FaultEvent& fault) {
      if (fault.kind == net::FaultKind::kJoin &&
          parked_[static_cast<size_t>(fault.worker)] != 0) {
        StartIteration(fault.worker);
      }
    });
    harness_.sim().RunUntilIdle();
    NETMAX_RETURN_IF_ERROR(harness_.checkpoint_status());
    harness_.set_policies_generated(monitor_->policies_generated());
    return harness_.Finalize();
  }

 private:
  // Checkpoint reification tags (core/checkpoint.h).
  enum Tag : int64_t {
    kSelfStep = 0,      // compute event: args [compute_seconds]
    kPull = 1,  // compute event: args [peer, compute_secs, wall_secs, round]
    kMonitorTick = 2,   // plain event: args []
    kDegradedStep = 3,  // compute event: args [compute_secs, wall_secs]
    kPeerWait = 4,      // plain event: args [worker, peer, waited_secs]
    kPeerTimeout = 5,   // plain event: args [worker, peer]
  };

  void Emit(double delay, int worker_key, net::EventPayload payload) {
    ScheduleReified(harness_.sim(), delay, worker_key, std::move(payload),
                    builder_);
  }

  StatusOr<net::RebuiltEvent> BuildEvent(const net::SavedEvent& event) {
    const std::vector<double>& args = event.payload.args;
    const int n = harness_.num_workers();
    net::RebuiltEvent rebuilt;
    switch (event.payload.tag) {
      case kSelfStep: {
        const int w = event.worker_key;
        if (w < 0 || w >= n || args.size() != 1) break;
        const double compute = args[0];
        rebuilt.compute = [this, w] { return harness_.EvalBatchGradient(w); };
        rebuilt.commit = [this, w, compute](double loss) {
          harness_.CommitBatchStats(w, loss);
          harness_.ApplyStoredGradient(w);
          harness_.AccountIteration(w, compute, compute);
          StartIteration(w);
        };
        return rebuilt;
      }
      case kPull: {
        const int w = event.worker_key;
        if (w < 0 || w >= n || args.size() != 4) break;
        const int m = static_cast<int>(args[0]);
        const double compute = args[1];
        const double wall = args[2];
        const int64_t round = static_cast<int64_t>(args[3]);
        if (m < 0 || m >= n || m == w) break;
        rebuilt.compute = [this, w] { return harness_.EvalBatchGradient(w); };
        rebuilt.commit = [this, w, m, compute, wall, round](double loss) {
          CompleteIteration(w, m, compute, wall, round, loss);
        };
        return rebuilt;
      }
      case kMonitorTick: {
        if (event.worker_key >= 0 || !args.empty()) break;
        rebuilt.plain = [this] { MonitorTick(); };
        return rebuilt;
      }
      case kDegradedStep: {
        const int w = event.worker_key;
        if (w < 0 || w >= n || args.size() != 2) break;
        const double compute = args[0];
        const double wall = args[1];
        rebuilt.compute = [this, w] { return harness_.EvalBatchGradient(w); };
        rebuilt.commit = [this, w, compute, wall](double loss) {
          harness_.CommitBatchStats(w, loss);
          harness_.ApplyStoredGradient(w);
          harness_.AccountIteration(w, compute, wall);
          StartIteration(w);
        };
        return rebuilt;
      }
      case kPeerWait: {
        if (event.worker_key >= 0 || args.size() != 3) break;
        const int w = static_cast<int>(args[0]);
        const int m = static_cast<int>(args[1]);
        const double waited = args[2];
        if (w < 0 || w >= n || m < 0 || m >= n || m == w) break;
        rebuilt.plain = [this, w, m, waited] { PeerWaitTick(w, m, waited); };
        return rebuilt;
      }
      case kPeerTimeout: {
        if (event.worker_key >= 0 || args.size() != 2) break;
        const int w = static_cast<int>(args[0]);
        const int m = static_cast<int>(args[1]);
        if (w < 0 || w >= n || m < 0 || m >= n || m == w) break;
        rebuilt.plain = [this, w, m] { PeerTimeoutExpired(w, m); };
        return rebuilt;
      }
      default:
        break;
    }
    return InvalidArgumentError("malformed NetMax event (tag " +
                                std::to_string(event.payload.tag) + ")");
  }

  Status SaveEngineState(Serializer& out) {
    SaveMatrix(out, policy_->matrix());
    out.WriteDouble(rho_);
    SaveEmaGrid(out, ema_times_);
    out.WriteI64(monitor_->policies_generated());
    for (const uint8_t parked : parked_) out.WriteBool(parked != 0);
    return Status::Ok();
  }

  Status RestoreEngineState(Deserializer& in) {
    NETMAX_ASSIGN_OR_RETURN(linalg::Matrix matrix, LoadMatrix(in));
    const int n = harness_.num_workers();
    if (matrix.rows() != n || matrix.cols() != n) {
      return InvalidArgumentError("checkpoint policy matrix shape mismatch");
    }
    policy_ = std::make_unique<CommunicationPolicy>(std::move(matrix));
    NETMAX_ASSIGN_OR_RETURN(rho_, in.ReadDouble());
    NETMAX_RETURN_IF_ERROR(RestoreEmaGrid(in, &ema_times_));
    NETMAX_ASSIGN_OR_RETURN(const int64_t generated, in.ReadI64());
    if (generated < 0) {
      return InvalidArgumentError("negative policies_generated count");
    }
    monitor_->set_policies_generated(generated);
    for (size_t w = 0; w < parked_.size(); ++w) {
      NETMAX_ASSIGN_OR_RETURN(const bool parked, in.ReadBool());
      parked_[w] = parked ? 1 : 0;
    }
    return Status::Ok();
  }

  void StartIteration(int w) {
    if (harness_.WorkerDone(w)) {
      parked_[static_cast<size_t>(w)] = 1;
      return;
    }
    parked_[static_cast<size_t>(w)] = 0;
    WorkerRuntime& worker = harness_.worker(w);
    const int m = worker.rng.Discrete(policy_->Row(w));
    const double compute = harness_.EffectiveComputeSeconds(w);
    if (m != w && !harness_.WorkerAlive(m)) {
      // The drawn peer is dead: hold this round per the peer policy. The
      // batch is sampled only when (and if) the pull actually goes out.
      BeginPeerWait(w, m);
      return;
    }
    // Two-phase iteration: the peer draw and batch sampling happen here (the
    // commit context of the previous iteration), the gradient evaluation is
    // the pure compute half, and CompleteIteration is the ordered commit.
    harness_.SampleBatch(w);
    if (m == w) {
      // Self-selection: pure local step, no communication this iteration.
      Emit(compute, w, {kSelfStep, {compute}});
      return;
    }
    const int64_t round = harness_.NextCommRound(w);
    const double transfer = harness_.SendSeconds(m, w, round);
    const double wall = config_.overlap_communication
                            ? std::max(compute, transfer)
                            : compute + transfer;
    Emit(wall, w,
         {kPull,
          {static_cast<double>(m), compute, wall,
           static_cast<double>(round)}});
  }

  // Peer m was dead when w's draw selected it. kWait re-probes liveness at
  // the poll cadence (bounded by the run's virtual-time cap); kTimeoutAnd-
  // Continue arms a single deadline after which w degrades to a local step.
  void BeginPeerWait(int w, int m) {
    harness_.CountDegradedRound();
    if (config_.peer_policy == PeerPolicy::kTimeoutAndContinue) {
      Emit(config_.peer_timeout_seconds, kPlainEvent,
           {kPeerTimeout, {static_cast<double>(w), static_cast<double>(m)}});
    } else {
      Emit(config_.peer_poll_seconds, kPlainEvent,
           {kPeerWait,
            {static_cast<double>(w), static_cast<double>(m),
             config_.peer_poll_seconds}});
    }
  }

  void PeerWaitTick(int w, int m, double waited) {
    if (harness_.WorkerDone(w)) {
      parked_[static_cast<size_t>(w)] = 1;
      return;
    }
    if (harness_.WorkerAlive(m)) {
      ResumePull(w, m, waited);
      return;
    }
    Emit(config_.peer_poll_seconds, kPlainEvent,
         {kPeerWait,
          {static_cast<double>(w), static_cast<double>(m),
           waited + config_.peer_poll_seconds}});
  }

  void PeerTimeoutExpired(int w, int m) {
    if (harness_.WorkerDone(w)) {
      parked_[static_cast<size_t>(w)] = 1;
      return;
    }
    if (harness_.WorkerAlive(m)) {
      ResumePull(w, m, config_.peer_timeout_seconds);
      return;
    }
    harness_.CountPeerTimeout();
    const double compute = harness_.EffectiveComputeSeconds(w);
    harness_.SampleBatch(w);
    Emit(compute, w,
         {kDegradedStep, {compute, config_.peer_timeout_seconds + compute}});
  }

  // The held pull goes out: the iteration's wall time accounts the wait on
  // top of the usual compute/transfer leg (the Emit delay covers only the
  // latter — the wait already elapsed in virtual time).
  void ResumePull(int w, int m, double waited) {
    const double compute = harness_.EffectiveComputeSeconds(w);
    harness_.SampleBatch(w);
    const int64_t round = harness_.NextCommRound(w);
    const double transfer = harness_.SendSeconds(m, w, round);
    const double wall = config_.overlap_communication
                            ? std::max(compute, transfer)
                            : compute + transfer;
    Emit(wall, w,
         {kPull,
          {static_cast<double>(m), compute, waited + wall,
           static_cast<double>(round)}});
  }

  void CompleteIteration(int w, int m, double compute, double wall,
                         int64_t round, double loss) {
    WorkerRuntime& worker = harness_.worker(w);
    // First-step update: local gradients (Algorithm 2 line 11).
    harness_.CommitBatchStats(w, loss);
    harness_.ApplyStoredGradient(w);
    if (!harness_.WorkerAlive(m)) {
      // The peer died while this pull was in flight: keep the local gradient
      // progress, skip the consensus leg (and its EMA sample — there was no
      // successful communication to measure).
      harness_.CountDegradedRound();
      harness_.AccountIteration(w, compute, wall);
      StartIteration(w);
      return;
    }
    // Second-step update: consensus pull (lines 13-14) against m's current
    // ("freshest") parameters:
    //   x_i <- x_i - alpha * rho/p_{i,m} * (x_i - x_m).
    // alpha here is the constant learning rate the convergence analysis and
    // the policy generator use (Theorems 1-3 assume a fixed alpha); tying the
    // consensus strength to the *decayed* SGD rate would silently turn off
    // mixing in late training and break the lambda_2-based policy objective.
    const double p = policy_->probability(w, m);
    NETMAX_CHECK_GT(p, 0.0);
    // For feasible policies Eq. (11) gives p >= 2*alpha*rho, so the
    // coefficient is at most 1/2 — exactly the perfect-swap bound of the
    // symmetric exchange below.
    const double coefficient = std::min(
        config_.symmetric_consensus ? 0.5 : kMaxConsensusCoefficient,
        config_.learning_rate * rho_ / p);
    // The consensus step writes both endpoints' parameters: invalidate any
    // evaluation the backend ran ahead for them — a frontier speculation or
    // an async window-resident entry alike (m usually has a pending compute
    // event; with a reorder window its evaluation may still be running, and
    // the notify blocks until it is safe to write).
    harness_.sim().NotifyStateWrite(w);
    if (config_.symmetric_consensus) harness_.sim().NotifyStateWrite(m);
    auto x_i = worker.model->parameters();
    auto x_m = harness_.worker(m).model->parameters();
    if (!harness_.compression_enabled()) {
      for (size_t j = 0; j < x_i.size(); ++j) {
        const double delta = coefficient * (x_i[j] - x_m[j]);
        x_i[j] -= delta;
        if (config_.symmetric_consensus) x_m[j] += delta;
      }
    } else {
      // Compressed pull: w received C(x_i - x_m) — the difference as the
      // compressor's round-`round` encoding reconstructs it — so both
      // endpoints move along the decoded difference and stay symmetric.
      std::span<double> diff = harness_.CompressionScratch();
      for (size_t j = 0; j < x_i.size(); ++j) diff[j] = x_i[j] - x_m[j];
      harness_.ApplyCompression(w, round, diff);
      for (size_t j = 0; j < x_i.size(); ++j) {
        const double delta = coefficient * diff[j];
        x_i[j] -= delta;
        if (config_.symmetric_consensus) x_m[j] += delta;
      }
    }
    // Iteration-time EMA (line 16 / lines 19-22).
    ema_times_[static_cast<size_t>(w)][static_cast<size_t>(m)].Add(wall);
    harness_.AccountIteration(w, compute, wall);
    StartIteration(w);
  }

  void MonitorTick() {
    if (harness_.AllDone()) return;  // training is over; monitor stops
    const int n = harness_.num_workers();
    linalg::Matrix times(n, n, 0.0);
    for (int i = 0; i < n; ++i) {
      for (int m : topology_->Neighbors(i)) {
        const auto& ema =
            ema_times_[static_cast<size_t>(i)][static_cast<size_t>(m)];
        if (ema.has_value()) times(i, m) = ema.value();
      }
    }
    StatusOr<GeneratedPolicy> generated =
        monitor_->ComputePolicy(times, harness_.pool());
    if (generated.ok()) {
      policy_ = std::make_unique<CommunicationPolicy>(
          std::move(generated.value().policy));
      rho_ = generated->rho;
    }
    // Warm-up (no measurements yet) or infeasible configurations keep the
    // previous policy; either way the monitor keeps running.
    Emit(config_.monitor_period_seconds, kPlainEvent, {kMonitorTick, {}});
  }

  ExperimentHarness harness_;
  ExperimentConfig config_;
  const net::Topology* topology_ = nullptr;
  std::unique_ptr<CommunicationPolicy> policy_;
  std::unique_ptr<NetworkMonitor> monitor_;
  double rho_ = 0.0;
  std::vector<std::vector<ExponentialMovingAverage>> ema_times_;
  // Per-worker "iteration chain is parked" flag: set when WorkerDone stopped
  // the chain (death, finish, or time cap), cleared when it restarts. The
  // join fault listener restarts only parked chains, so a worker can never
  // run two chains at once.
  std::vector<uint8_t> parked_;
  net::EventRebuilder builder_;
};

}  // namespace

StatusOr<RunResult> NetMaxAlgorithm::Run(const ExperimentConfig& config) const {
  NetMaxEngine engine(config);
  return engine.Run();
}

NetMaxVariantAlgorithm::NetMaxVariantAlgorithm(bool overlap, bool adaptive)
    : overlap_(overlap), adaptive_(adaptive) {
  name_ = std::string(overlap ? "parallel" : "serial") + "+" +
          (adaptive ? "adaptive" : "uniform");
}

StatusOr<RunResult> NetMaxVariantAlgorithm::Run(
    const ExperimentConfig& config) const {
  ExperimentConfig variant = config;
  variant.overlap_communication = overlap_;
  variant.adaptive_policy = adaptive_;
  NetMaxEngine engine(variant);
  StatusOr<RunResult> result = engine.Run();
  if (result.ok()) result.value().algorithm = name_;
  return result;
}

}  // namespace netmax::core
