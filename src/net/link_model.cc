#include "net/link_model.h"

#include <cmath>

#include "common/logging.h"
#include "net/topology.h"

namespace netmax::net {

StaticLinkModel::StaticLinkModel(int num_nodes)
    : num_nodes_(num_nodes),
      links_(static_cast<size_t>(num_nodes) * static_cast<size_t>(num_nodes)) {
  NETMAX_CHECK_GT(num_nodes, 0);
}

void StaticLinkModel::SetLink(int a, int b, LinkClass link) {
  SetDirectedLink(a, b, link);
  SetDirectedLink(b, a, link);
}

void StaticLinkModel::SetDirectedLink(int a, int b, LinkClass link) {
  NETMAX_CHECK(a >= 0 && a < num_nodes_);
  NETMAX_CHECK(b >= 0 && b < num_nodes_);
  NETMAX_CHECK_NE(a, b);
  NETMAX_CHECK_GT(link.bandwidth_bytes_per_second, 0.0);
  NETMAX_CHECK_GE(link.latency_seconds, 0.0);
  links_[static_cast<size_t>(a) * num_nodes_ + static_cast<size_t>(b)] = link;
}

void StaticLinkModel::SetAll(LinkClass link) {
  for (int a = 0; a < num_nodes_; ++a) {
    for (int b = 0; b < num_nodes_; ++b) {
      if (a != b) SetDirectedLink(a, b, link);
    }
  }
}

const LinkClass& StaticLinkModel::link(int src, int dst) const {
  NETMAX_CHECK(src >= 0 && src < num_nodes_);
  NETMAX_CHECK(dst >= 0 && dst < num_nodes_);
  return links_[static_cast<size_t>(src) * num_nodes_ +
                static_cast<size_t>(dst)];
}

double StaticLinkModel::TransferSeconds(int src, int dst, double /*now*/,
                                        int64_t bytes) const {
  if (src == dst) return 0.0;
  const LinkClass& l = link(src, dst);
  NETMAX_CHECK_GT(l.bandwidth_bytes_per_second, 0.0)
      << "link " << src << "->" << dst << " was never configured";
  return l.TransferSeconds(bytes);
}

HierarchicalLinkModel::HierarchicalLinkModel(int num_nodes, int cluster_size,
                                             LinkClass intra, LinkClass inter)
    : num_nodes_(num_nodes),
      cluster_size_(cluster_size),
      intra_(intra),
      inter_(inter) {
  NETMAX_CHECK_GT(num_nodes, 0);
  NETMAX_CHECK_GE(cluster_size, 1);
  NETMAX_CHECK_GT(intra_.bandwidth_bytes_per_second, 0.0);
  NETMAX_CHECK_GE(intra_.latency_seconds, 0.0);
  NETMAX_CHECK_GT(inter_.bandwidth_bytes_per_second, 0.0);
  NETMAX_CHECK_GE(inter_.latency_seconds, 0.0);
}

double HierarchicalLinkModel::TransferSeconds(int src, int dst, double /*now*/,
                                              int64_t bytes) const {
  NETMAX_CHECK(src >= 0 && src < num_nodes_);
  NETMAX_CHECK(dst >= 0 && dst < num_nodes_);
  if (src == dst) return 0.0;
  const bool same_cluster =
      ClusterOf(src, cluster_size_) == ClusterOf(dst, cluster_size_);
  return (same_cluster ? intra_ : inter_).TransferSeconds(bytes);
}

DynamicSlowdownLinkModel::DynamicSlowdownLinkModel(
    std::unique_ptr<LinkModel> base, Options options)
    : base_(std::move(base)), options_(options) {
  NETMAX_CHECK(base_ != nullptr);
  NETMAX_CHECK_GT(options_.change_period_seconds, 0.0);
  NETMAX_CHECK_GE(options_.min_factor, 1.0);
  NETMAX_CHECK_GE(options_.max_factor, options_.min_factor);
  NETMAX_CHECK_GE(base_->num_nodes(), 2);
}

int64_t DynamicSlowdownLinkModel::PeriodIndex(double now) const {
  NETMAX_CHECK_GE(now, 0.0);
  return static_cast<int64_t>(std::floor(now / options_.change_period_seconds));
}

Rng DynamicSlowdownLinkModel::PeriodRng(int64_t period) const {
  Rng root(options_.seed);
  return root.Fork(static_cast<uint64_t>(period));
}

std::pair<int, int> DynamicSlowdownLinkModel::SlowedLinkAt(double now) const {
  Rng rng = PeriodRng(PeriodIndex(now));
  const int n = base_->num_nodes();
  const int a = static_cast<int>(rng.UniformInt(0, n - 1));
  int b = static_cast<int>(rng.UniformInt(0, n - 2));
  if (b >= a) ++b;
  return {std::min(a, b), std::max(a, b)};
}

double DynamicSlowdownLinkModel::SlowdownFactorAt(double now) const {
  Rng rng = PeriodRng(PeriodIndex(now));
  // Keep the stream layout in sync with SlowedLinkAt: consume the two pair
  // draws first, then draw the factor.
  const int n = base_->num_nodes();
  (void)rng.UniformInt(0, n - 1);
  (void)rng.UniformInt(0, n - 2);
  return rng.Uniform(options_.min_factor, options_.max_factor);
}

double DynamicSlowdownLinkModel::TransferSeconds(int src, int dst, double now,
                                                 int64_t bytes) const {
  const double base_seconds = base_->TransferSeconds(src, dst, now, bytes);
  if (src == dst) return base_seconds;
  const auto [lo, hi] = SlowedLinkAt(now);
  const int a = std::min(src, dst);
  const int b = std::max(src, dst);
  if (a == lo && b == hi) {
    return base_seconds * SlowdownFactorAt(now);
  }
  return base_seconds;
}

}  // namespace netmax::net
