#ifndef NETMAX_NET_TOPOLOGY_H_
#define NETMAX_NET_TOPOLOGY_H_

// Undirected communication graph G = (V, E) over worker nodes; provides the
// neighborhood indicators d_{i,m} of the paper (Eq. 1). The paper's
// experiments use the complete graph; ring and custom graphs are provided for
// tests and extensions. Convergence (Theorem 3 / Lemma 3) requires G to be
// connected, which Topology::IsConnected verifies.
//
// For large-N runs the flat complete graph is unrealistic (and O(n^2) in
// edges), so Hierarchical builds the semi-decentralized clusters-of-clusters
// shape from the federated-optimization literature: workers are grouped into
// fixed-size clusters, each cluster is a complete graph internally, and the
// first worker of each cluster (its "hub") joins a ring over hubs — O(N * C)
// edges total, connected by construction.

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace netmax::net {

class Topology {
 public:
  // Graph with `num_nodes` vertices and no edges.
  explicit Topology(int num_nodes);

  // Complete graph K_n.
  static Topology Complete(int num_nodes);

  // Cycle graph (requires num_nodes >= 3).
  static Topology Ring(int num_nodes);

  // Clusters-of-clusters: clusters of `cluster_size` consecutive workers
  // (the last cluster may be smaller), complete intra-cluster, hubs (the
  // first worker of each cluster) connected in a ring. Degenerate shapes are
  // still valid graphs: one cluster is a plain complete graph, two clusters
  // link their hubs directly, cluster_size 1 is a ring of all workers.
  // Requires 1 <= cluster_size <= num_nodes.
  static Topology Hierarchical(int num_workers, int cluster_size);

  int num_nodes() const { return num_nodes_; }
  int num_edges() const { return num_edges_; }

  // Adds undirected edge {a, b}; self-loops are invalid; duplicate edges are
  // idempotent.
  void AddEdge(int a, int b);

  bool AreNeighbors(int a, int b) const;

  // Neighbors of `node` in ascending order.
  const std::vector<int>& Neighbors(int node) const;

  int Degree(int node) const {
    return static_cast<int>(Neighbors(node).size());
  }

  // True if the graph is connected (every node reachable from node 0).
  // A one-node graph is connected.
  bool IsConnected() const;

  // d_{i,m} indicator matrix (symmetric, zero diagonal).
  linalg::Matrix AdjacencyMatrix() const;

 private:
  int num_nodes_;
  int num_edges_ = 0;
  std::vector<std::vector<int>> neighbors_;
};

// --- hierarchical cluster arithmetic ----------------------------------------
// Shared by Topology::Hierarchical and HierarchicalLinkModel so both agree on
// which workers share a cluster without materializing any per-node state.

// Number of clusters covering `num_workers` workers (ceil division).
int NumClusters(int num_workers, int cluster_size);

// Cluster that `worker` belongs to.
int ClusterOf(int worker, int cluster_size);

// The hub worker (ring member) of `cluster`.
int HubOf(int cluster, int cluster_size);

// --- topology selection -----------------------------------------------------

enum class TopologyShape { kComplete, kHierarchical };

// Parsed form of the --topology flag.
struct TopologySpec {
  TopologyShape shape = TopologyShape::kComplete;
  // kHierarchical only; workers per cluster.
  int cluster_size = 0;
};

// "complete" | "hier:<cluster_size>" (e.g. "hier:32"); anything else is an
// InvalidArgument error naming the accepted spellings.
StatusOr<TopologySpec> ParseTopologySpec(std::string_view text);

// Inverse of ParseTopologySpec, for diagnostics.
std::string TopologySpecName(const TopologySpec& spec);

}  // namespace netmax::net

#endif  // NETMAX_NET_TOPOLOGY_H_
