#ifndef NETMAX_NET_TOPOLOGY_H_
#define NETMAX_NET_TOPOLOGY_H_

// Undirected communication graph G = (V, E) over worker nodes; provides the
// neighborhood indicators d_{i,m} of the paper (Eq. 1). The paper's
// experiments use the complete graph; ring and custom graphs are provided for
// tests and extensions. Convergence (Theorem 3 / Lemma 3) requires G to be
// connected, which Topology::IsConnected verifies.

#include <vector>

#include "linalg/matrix.h"

namespace netmax::net {

class Topology {
 public:
  // Graph with `num_nodes` vertices and no edges.
  explicit Topology(int num_nodes);

  // Complete graph K_n.
  static Topology Complete(int num_nodes);

  // Cycle graph (requires num_nodes >= 3).
  static Topology Ring(int num_nodes);

  int num_nodes() const { return num_nodes_; }
  int num_edges() const { return num_edges_; }

  // Adds undirected edge {a, b}; self-loops are invalid; duplicate edges are
  // idempotent.
  void AddEdge(int a, int b);

  bool AreNeighbors(int a, int b) const;

  // Neighbors of `node` in ascending order.
  const std::vector<int>& Neighbors(int node) const;

  int Degree(int node) const {
    return static_cast<int>(Neighbors(node).size());
  }

  // True if the graph is connected (every node reachable from node 0).
  // A one-node graph is connected.
  bool IsConnected() const;

  // d_{i,m} indicator matrix (symmetric, zero diagonal).
  linalg::Matrix AdjacencyMatrix() const;

 private:
  int num_nodes_;
  int num_edges_ = 0;
  std::vector<std::vector<int>> neighbors_;
};

}  // namespace netmax::net

#endif  // NETMAX_NET_TOPOLOGY_H_
