#ifndef NETMAX_NET_FAULT_SCHEDULE_H_
#define NETMAX_NET_FAULT_SCHEDULE_H_

// Deterministic worker-lifecycle fault schedules for the event simulator.
//
// A FaultSchedule is an ordered list of lifecycle events — leave, join,
// crash, slowdown — that the experiment harness injects into the simulation
// as first-class virtual-time events. Because injection goes through the
// simulator's ordinary (time, sequence) scheduling, a fault run is exactly as
// bit-reproducible as a fault-free one: the same schedule produces the same
// RunResult on every execution backend, thread count, and shard bound.
//
// Schedules come from two sources:
//  * Parse() — an explicit scripted spec (the `--faults=` flag grammar):
//      entries separated by ';', each one of
//        leave@T:wN          worker N leaves (gracefully) at virtual time T
//        join@T:wN           worker N (re)joins at virtual time T
//        crash@T             the whole run halts at virtual time T
//        slow@T+DURxF:wN     worker N computes F x slower for DUR seconds
//      e.g. "slow@2+6x4:w1;leave@4:w2;join@9:w2". Times must be
//      non-decreasing across entries.
//  * FromSeed() — a seed-derived churn/straggler mix (slowdowns and paired
//    leave/rejoin, never crashes) for randomized robustness sweeps that must
//    still replay exactly.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace netmax::net {

enum class FaultKind {
  kLeave,     // graceful: in-flight work completes, no new work starts
  kJoin,      // the worker resumes scheduling new work
  kCrash,     // whole-run halt: pending events are dropped at this time
  kSlowdown,  // worker's compute time is multiplied by `factor` for `duration`
};

// The flag spelling of `kind` ("leave", "join", "crash", "slow").
std::string_view FaultKindName(FaultKind kind);

struct FaultEvent {
  double time = 0.0;
  FaultKind kind = FaultKind::kLeave;
  int worker = -1;        // ignored (and -1) for kCrash
  double factor = 1.0;    // kSlowdown only; > 1 slows the worker down
  double duration = 0.0;  // kSlowdown only; factor reverts at time + duration
};

class FaultSchedule {
 public:
  FaultSchedule() = default;

  // Parses the scripted grammar above. Checks syntax and per-entry value
  // sanity only; worker-id range and time monotonicity are config-dependent
  // and checked by Validate().
  static StatusOr<FaultSchedule> Parse(std::string_view spec);

  // Derives `count` faults from `seed`: each is either a slowdown or a
  // leave/rejoin pair, with times inside (0.1, 0.75) x horizon so the churn
  // lands well within the run. Never emits a crash. The result is fully
  // determined by the arguments and already Validate()-clean for any
  // num_workers >= the one given.
  static FaultSchedule FromSeed(uint64_t seed, int num_workers, double horizon,
                                int count);

  // Config-time validation: every worker id in [0, num_workers), times
  // finite, non-negative, and non-decreasing, slowdown factors positive and
  // durations > 0. InvalidArgument with the offending entry otherwise.
  Status Validate(int num_workers) const;

  // Re-renders the schedule in the Parse() grammar (round-trips exactly for
  // times that print losslessly; used for logging and tests).
  std::string ToSpec() const;

  bool empty() const { return events_.empty(); }
  const std::vector<FaultEvent>& events() const { return events_; }
  void push_back(const FaultEvent& event) { events_.push_back(event); }

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace netmax::net

#endif  // NETMAX_NET_FAULT_SCHEDULE_H_
