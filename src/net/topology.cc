#include "net/topology.h"

#include <algorithm>

#include "common/logging.h"

namespace netmax::net {

Topology::Topology(int num_nodes)
    : num_nodes_(num_nodes),
      neighbors_(static_cast<size_t>(num_nodes)) {
  NETMAX_CHECK_GT(num_nodes, 0);
}

Topology Topology::Complete(int num_nodes) {
  Topology topo(num_nodes);
  for (int a = 0; a < num_nodes; ++a) {
    for (int b = a + 1; b < num_nodes; ++b) topo.AddEdge(a, b);
  }
  return topo;
}

Topology Topology::Ring(int num_nodes) {
  NETMAX_CHECK_GE(num_nodes, 3);
  Topology topo(num_nodes);
  for (int a = 0; a < num_nodes; ++a) topo.AddEdge(a, (a + 1) % num_nodes);
  return topo;
}

void Topology::AddEdge(int a, int b) {
  NETMAX_CHECK(a >= 0 && a < num_nodes_);
  NETMAX_CHECK(b >= 0 && b < num_nodes_);
  NETMAX_CHECK_NE(a, b) << "self-loops are not allowed";
  if (AreNeighbors(a, b)) return;
  auto& na = neighbors_[static_cast<size_t>(a)];
  auto& nb = neighbors_[static_cast<size_t>(b)];
  na.insert(std::lower_bound(na.begin(), na.end(), b), b);
  nb.insert(std::lower_bound(nb.begin(), nb.end(), a), a);
  ++num_edges_;
}

bool Topology::AreNeighbors(int a, int b) const {
  NETMAX_CHECK(a >= 0 && a < num_nodes_);
  NETMAX_CHECK(b >= 0 && b < num_nodes_);
  const auto& na = neighbors_[static_cast<size_t>(a)];
  return std::binary_search(na.begin(), na.end(), b);
}

const std::vector<int>& Topology::Neighbors(int node) const {
  NETMAX_CHECK(node >= 0 && node < num_nodes_);
  return neighbors_[static_cast<size_t>(node)];
}

bool Topology::IsConnected() const {
  std::vector<bool> visited(static_cast<size_t>(num_nodes_), false);
  std::vector<int> stack = {0};
  visited[0] = true;
  int reached = 1;
  while (!stack.empty()) {
    const int node = stack.back();
    stack.pop_back();
    for (int next : Neighbors(node)) {
      if (!visited[static_cast<size_t>(next)]) {
        visited[static_cast<size_t>(next)] = true;
        ++reached;
        stack.push_back(next);
      }
    }
  }
  return reached == num_nodes_;
}

linalg::Matrix Topology::AdjacencyMatrix() const {
  linalg::Matrix d(num_nodes_, num_nodes_, 0.0);
  for (int a = 0; a < num_nodes_; ++a) {
    for (int b : Neighbors(a)) d(a, b) = 1.0;
  }
  return d;
}

}  // namespace netmax::net
