#include "net/topology.h"

#include <algorithm>

#include "common/logging.h"

namespace netmax::net {

Topology::Topology(int num_nodes)
    : num_nodes_(num_nodes),
      neighbors_(static_cast<size_t>(num_nodes)) {
  NETMAX_CHECK_GT(num_nodes, 0);
}

Topology Topology::Complete(int num_nodes) {
  Topology topo(num_nodes);
  for (int a = 0; a < num_nodes; ++a) {
    for (int b = a + 1; b < num_nodes; ++b) topo.AddEdge(a, b);
  }
  return topo;
}

Topology Topology::Ring(int num_nodes) {
  NETMAX_CHECK_GE(num_nodes, 3);
  Topology topo(num_nodes);
  for (int a = 0; a < num_nodes; ++a) topo.AddEdge(a, (a + 1) % num_nodes);
  return topo;
}

Topology Topology::Hierarchical(int num_workers, int cluster_size) {
  NETMAX_CHECK_GE(cluster_size, 1);
  NETMAX_CHECK_LE(cluster_size, num_workers);
  Topology topo(num_workers);
  const int clusters = NumClusters(num_workers, cluster_size);
  for (int c = 0; c < clusters; ++c) {
    const int begin = c * cluster_size;
    const int end = std::min(begin + cluster_size, num_workers);
    for (int a = begin; a < end; ++a) {
      for (int b = a + 1; b < end; ++b) topo.AddEdge(a, b);
    }
  }
  if (clusters == 2) {
    topo.AddEdge(HubOf(0, cluster_size), HubOf(1, cluster_size));
  } else if (clusters >= 3) {
    for (int c = 0; c < clusters; ++c) {
      topo.AddEdge(HubOf(c, cluster_size),
                   HubOf((c + 1) % clusters, cluster_size));
    }
  }
  return topo;
}

void Topology::AddEdge(int a, int b) {
  NETMAX_CHECK(a >= 0 && a < num_nodes_);
  NETMAX_CHECK(b >= 0 && b < num_nodes_);
  NETMAX_CHECK_NE(a, b) << "self-loops are not allowed";
  if (AreNeighbors(a, b)) return;
  auto& na = neighbors_[static_cast<size_t>(a)];
  auto& nb = neighbors_[static_cast<size_t>(b)];
  na.insert(std::lower_bound(na.begin(), na.end(), b), b);
  nb.insert(std::lower_bound(nb.begin(), nb.end(), a), a);
  ++num_edges_;
}

bool Topology::AreNeighbors(int a, int b) const {
  NETMAX_CHECK(a >= 0 && a < num_nodes_);
  NETMAX_CHECK(b >= 0 && b < num_nodes_);
  const auto& na = neighbors_[static_cast<size_t>(a)];
  return std::binary_search(na.begin(), na.end(), b);
}

const std::vector<int>& Topology::Neighbors(int node) const {
  NETMAX_CHECK(node >= 0 && node < num_nodes_);
  return neighbors_[static_cast<size_t>(node)];
}

bool Topology::IsConnected() const {
  std::vector<bool> visited(static_cast<size_t>(num_nodes_), false);
  std::vector<int> stack = {0};
  visited[0] = true;
  int reached = 1;
  while (!stack.empty()) {
    const int node = stack.back();
    stack.pop_back();
    for (int next : Neighbors(node)) {
      if (!visited[static_cast<size_t>(next)]) {
        visited[static_cast<size_t>(next)] = true;
        ++reached;
        stack.push_back(next);
      }
    }
  }
  return reached == num_nodes_;
}

linalg::Matrix Topology::AdjacencyMatrix() const {
  linalg::Matrix d(num_nodes_, num_nodes_, 0.0);
  for (int a = 0; a < num_nodes_; ++a) {
    for (int b : Neighbors(a)) d(a, b) = 1.0;
  }
  return d;
}

int NumClusters(int num_workers, int cluster_size) {
  NETMAX_CHECK_GE(cluster_size, 1);
  return (num_workers + cluster_size - 1) / cluster_size;
}

int ClusterOf(int worker, int cluster_size) {
  NETMAX_CHECK_GE(cluster_size, 1);
  NETMAX_CHECK_GE(worker, 0);
  return worker / cluster_size;
}

int HubOf(int cluster, int cluster_size) {
  NETMAX_CHECK_GE(cluster_size, 1);
  NETMAX_CHECK_GE(cluster, 0);
  return cluster * cluster_size;
}

StatusOr<TopologySpec> ParseTopologySpec(std::string_view text) {
  TopologySpec spec;
  if (text == "complete") return spec;
  const std::string_view prefix = "hier:";
  if (text.substr(0, prefix.size()) == prefix) {
    const std::string digits(text.substr(prefix.size()));
    if (!digits.empty() &&
        digits.find_first_not_of("0123456789") == std::string::npos) {
      // Clamp absurd sizes rather than overflowing the int parse.
      if (digits.size() <= 9) spec.cluster_size = std::stoi(digits);
      if (spec.cluster_size >= 1) {
        spec.shape = TopologyShape::kHierarchical;
        return spec;
      }
    }
  }
  return InvalidArgumentError("unknown topology '" + std::string(text) +
                              "' (expected complete or hier:<cluster_size> "
                              "with cluster_size >= 1)");
}

std::string TopologySpecName(const TopologySpec& spec) {
  if (spec.shape == TopologyShape::kComplete) return "complete";
  return "hier:" + std::to_string(spec.cluster_size);
}

}  // namespace netmax::net
