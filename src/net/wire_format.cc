#include "net/wire_format.h"

#include <cstring>

namespace netmax::net {
namespace {

int64_t Int8NumBlocks(int64_t values) {
  return (values + kInt8BlockValues - 1) / kInt8BlockValues;
}

void AppendU32(std::vector<uint8_t>& out, uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<uint8_t>((value >> shift) & 0xff));
  }
}

void AppendF32(std::vector<uint8_t>& out, float value) {
  uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  AppendU32(out, bits);
}

void AppendF64(std::vector<uint8_t>& out, double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<uint8_t>((bits >> shift) & 0xff));
  }
}

uint32_t ReadU32(std::span<const uint8_t> bytes, size_t offset) {
  uint32_t value = 0;
  for (int i = 3; i >= 0; --i) {
    value = (value << 8) | bytes[offset + static_cast<size_t>(i)];
  }
  return value;
}

float ReadF32(std::span<const uint8_t> bytes, size_t offset) {
  const uint32_t bits = ReadU32(bytes, offset);
  float value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

double ReadF64(std::span<const uint8_t> bytes, size_t offset) {
  uint64_t bits = 0;
  for (int i = 7; i >= 0; --i) {
    bits = (bits << 8) | bytes[offset + static_cast<size_t>(i)];
  }
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

// Header layout shared by every non-dense-f32 framing: encoding tag, then an
// encoding-specific element count (kWireHeaderBytes total).
void AppendHeader(std::vector<uint8_t>& out, WireEncoding encoding,
                  uint32_t count) {
  AppendU32(out, static_cast<uint32_t>(encoding));
  AppendU32(out, count);
}

Status CheckHeader(std::span<const uint8_t> bytes, WireEncoding expected) {
  if (bytes.size() < static_cast<size_t>(kWireHeaderBytes)) {
    return InvalidArgumentError("wire message shorter than its header");
  }
  const uint32_t tag = ReadU32(bytes, 0);
  if (tag != static_cast<uint32_t>(expected)) {
    return InvalidArgumentError(
        std::string("wire encoding mismatch: expected ") +
        WireEncodingName(expected) + ", got tag " + std::to_string(tag));
  }
  return Status::Ok();
}

}  // namespace

const char* WireEncodingName(WireEncoding encoding) {
  switch (encoding) {
    case WireEncoding::kDenseF32:
      return "dense-f32";
    case WireEncoding::kDenseF64:
      return "dense-f64";
    case WireEncoding::kTopK:
      return "top-k";
    case WireEncoding::kInt8Blocks:
      return "int8-blocks";
  }
  return "unknown";
}

int64_t WireMessage::PayloadBytes() const {
  switch (encoding) {
    case WireEncoding::kDenseF32:
      // Headerless: the pre-compression baseline framing, and for partial
      // (layer-wise) messages the layer schedule is derived from the round.
      return 4 * encoded_values;
    case WireEncoding::kDenseF64:
      return kWireHeaderBytes + 8 * encoded_values;
    case WireEncoding::kTopK:
      return kWireHeaderBytes + 8 * encoded_values;
    case WireEncoding::kInt8Blocks:
      return kWireHeaderBytes + encoded_values +
             4 * Int8NumBlocks(encoded_values);
  }
  return 0;
}

WireMessage DenseF32Message(int64_t num_values, int64_t encoded_values) {
  return WireMessage{WireEncoding::kDenseF32, num_values, encoded_values};
}

WireMessage DenseF64Message(int64_t num_values) {
  return WireMessage{WireEncoding::kDenseF64, num_values, num_values};
}

WireMessage TopKMessage(int64_t num_values, int64_t kept) {
  return WireMessage{WireEncoding::kTopK, num_values, kept};
}

WireMessage Int8Message(int64_t num_values) {
  return WireMessage{WireEncoding::kInt8Blocks, num_values, num_values};
}

std::vector<uint8_t> EncodeDenseF64(std::span<const double> values) {
  std::vector<uint8_t> out;
  const WireMessage msg = DenseF64Message(static_cast<int64_t>(values.size()));
  out.reserve(static_cast<size_t>(msg.PayloadBytes()));
  AppendHeader(out, WireEncoding::kDenseF64,
               static_cast<uint32_t>(values.size()));
  for (const double value : values) AppendF64(out, value);
  return out;
}

StatusOr<std::vector<double>> DecodeDenseF64(std::span<const uint8_t> bytes) {
  NETMAX_RETURN_IF_ERROR(CheckHeader(bytes, WireEncoding::kDenseF64));
  const uint32_t count = ReadU32(bytes, 4);
  const WireMessage msg = DenseF64Message(count);
  if (bytes.size() != static_cast<size_t>(msg.PayloadBytes())) {
    return InvalidArgumentError("dense-f64 payload size mismatch");
  }
  std::vector<double> values(count);
  for (uint32_t i = 0; i < count; ++i) {
    values[i] = ReadF64(bytes, static_cast<size_t>(kWireHeaderBytes) + 8 * i);
  }
  return values;
}

std::vector<uint8_t> EncodeTopK(int64_t num_values,
                                std::span<const TopKEntry> entries) {
  std::vector<uint8_t> out;
  const WireMessage msg =
      TopKMessage(num_values, static_cast<int64_t>(entries.size()));
  out.reserve(static_cast<size_t>(msg.PayloadBytes()));
  // The element count names the *logical* size; the kept-entry count is
  // implied by the buffer length (8 bytes per entry).
  AppendHeader(out, WireEncoding::kTopK, static_cast<uint32_t>(num_values));
  for (const TopKEntry& entry : entries) {
    AppendU32(out, entry.index);
    AppendF32(out, entry.value);
  }
  return out;
}

StatusOr<TopKPayload> DecodeTopK(std::span<const uint8_t> bytes) {
  NETMAX_RETURN_IF_ERROR(CheckHeader(bytes, WireEncoding::kTopK));
  const size_t body = bytes.size() - static_cast<size_t>(kWireHeaderBytes);
  if (body % 8 != 0) {
    return InvalidArgumentError("top-k payload size mismatch");
  }
  TopKPayload payload;
  payload.num_values = ReadU32(bytes, 4);
  payload.entries.resize(body / 8);
  for (size_t i = 0; i < payload.entries.size(); ++i) {
    const size_t offset = static_cast<size_t>(kWireHeaderBytes) + 8 * i;
    payload.entries[i].index = ReadU32(bytes, offset);
    payload.entries[i].value = ReadF32(bytes, offset + 4);
  }
  return payload;
}

std::vector<uint8_t> EncodeInt8Blocks(std::span<const int8_t> levels,
                                      std::span<const float> scales) {
  std::vector<uint8_t> out;
  const WireMessage msg = Int8Message(static_cast<int64_t>(levels.size()));
  out.reserve(static_cast<size_t>(msg.PayloadBytes()));
  AppendHeader(out, WireEncoding::kInt8Blocks,
               static_cast<uint32_t>(levels.size()));
  for (const float scale : scales) AppendF32(out, scale);
  for (const int8_t level : levels) {
    out.push_back(static_cast<uint8_t>(level));
  }
  return out;
}

StatusOr<Int8Payload> DecodeInt8Blocks(std::span<const uint8_t> bytes) {
  NETMAX_RETURN_IF_ERROR(CheckHeader(bytes, WireEncoding::kInt8Blocks));
  const uint32_t count = ReadU32(bytes, 4);
  const WireMessage msg = Int8Message(count);
  if (bytes.size() != static_cast<size_t>(msg.PayloadBytes())) {
    return InvalidArgumentError("int8-blocks payload size mismatch");
  }
  Int8Payload payload;
  payload.scales.resize(static_cast<size_t>(Int8NumBlocks(count)));
  size_t offset = static_cast<size_t>(kWireHeaderBytes);
  for (float& scale : payload.scales) {
    scale = ReadF32(bytes, offset);
    offset += 4;
  }
  payload.levels.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    payload.levels[i] = static_cast<int8_t>(bytes[offset + i]);
  }
  return payload;
}

std::vector<double> Int8Payload::Dequantized() const {
  std::vector<double> values(levels.size());
  for (size_t i = 0; i < levels.size(); ++i) {
    const float scale = scales[i / static_cast<size_t>(kInt8BlockValues)];
    // The same f32 product the quantizer's round-trip bound is stated
    // against: level * scale in f32, widened once.
    values[i] = static_cast<double>(static_cast<float>(levels[i]) * scale);
  }
  return values;
}

}  // namespace netmax::net
