#include "net/event_sim.h"

#include <algorithm>
#include <string>
#include <utility>

namespace netmax::net {

void EventSimulator::Insert(Event event) {
  NETMAX_CHECK_GE(event.time, now_) << "cannot schedule into the past";
  event.sequence = next_sequence_++;
  // Descending order, next event at the back. New events usually land near
  // the front (far future) or back (immediate follow-ups); either way the
  // shifted tail is small because queues hold O(workers) events.
  const auto position = std::upper_bound(
      queue_.begin(), queue_.end(), event,
      [](const Event& a, const Event& b) { return b.DispatchesBefore(a); });
  queue_.insert(position, std::move(event));
}

void EventSimulator::ScheduleAt(double time, Callback callback) {
  NETMAX_CHECK(callback != nullptr);
  Event event;
  event.time = time;
  event.plain = std::move(callback);
  Insert(std::move(event));
}

void EventSimulator::ScheduleAfter(double delay, Callback callback) {
  NETMAX_CHECK_GE(delay, 0.0);
  ScheduleAt(now_ + delay, std::move(callback));
}

void EventSimulator::ScheduleCompute(double time, int worker_key,
                                     ComputeFn compute, CommitFn commit) {
  NETMAX_CHECK_GE(worker_key, 0) << "worker_key must be non-negative";
  NETMAX_CHECK(compute != nullptr);
  NETMAX_CHECK(commit != nullptr);
  Event event;
  event.time = time;
  event.worker_key = worker_key;
  event.compute = std::move(compute);
  event.commit = std::move(commit);
  Insert(std::move(event));
}

void EventSimulator::ScheduleComputeAfter(double delay, int worker_key,
                                          ComputeFn compute, CommitFn commit) {
  NETMAX_CHECK_GE(delay, 0.0);
  ScheduleCompute(now_ + delay, worker_key, std::move(compute),
                  std::move(commit));
}

void EventSimulator::ScheduleAt(double time, EventPayload payload,
                                Callback callback) {
  NETMAX_CHECK(callback != nullptr);
  NETMAX_CHECK_GE(payload.tag, 0) << "tagged overload requires a tag";
  Event event;
  event.time = time;
  event.plain = std::move(callback);
  event.payload = std::move(payload);
  Insert(std::move(event));
}

void EventSimulator::ScheduleAfter(double delay, EventPayload payload,
                                   Callback callback) {
  NETMAX_CHECK_GE(delay, 0.0);
  ScheduleAt(now_ + delay, std::move(payload), std::move(callback));
}

void EventSimulator::ScheduleCompute(double time, int worker_key,
                                     EventPayload payload, ComputeFn compute,
                                     CommitFn commit) {
  NETMAX_CHECK_GE(worker_key, 0) << "worker_key must be non-negative";
  NETMAX_CHECK(compute != nullptr);
  NETMAX_CHECK(commit != nullptr);
  NETMAX_CHECK_GE(payload.tag, 0) << "tagged overload requires a tag";
  Event event;
  event.time = time;
  event.worker_key = worker_key;
  event.compute = std::move(compute);
  event.commit = std::move(commit);
  event.payload = std::move(payload);
  Insert(std::move(event));
}

void EventSimulator::ScheduleComputeAfter(double delay, int worker_key,
                                          EventPayload payload,
                                          ComputeFn compute, CommitFn commit) {
  NETMAX_CHECK_GE(delay, 0.0);
  ScheduleCompute(now_ + delay, worker_key, std::move(payload),
                  std::move(compute), std::move(commit));
}

void EventSimulator::NotifyStateWrite(int worker_key) {
  if (backend_ != nullptr) backend_->OnStateWrite(*this, worker_key);
}

ExecutionStats EventSimulator::execution_stats() const {
  return backend_ != nullptr ? backend_->stats() : ExecutionStats{};
}

void EventSimulator::ScanPendingComputes(
    int64_t max_scan,
    const std::function<ScanAction(const PendingComputeView&)>& visit) const {
  int64_t scanned = 0;
  for (auto it = queue_.rbegin(); it != queue_.rend() && scanned < max_scan;
       ++it, ++scanned) {
    if (it->compute == nullptr) continue;
    const PendingComputeView view{it->time, it->sequence, it->worker_key,
                                  it->compute};
    if (visit(view) == ScanAction::kStop) return;
  }
}

bool EventSimulator::StepWith(const SpeculationProvider& provider) {
  if (queue_.empty()) return false;
  // Move out before popping so the handlers may schedule new events.
  Event event = std::move(queue_.back());
  queue_.pop_back();
  now_ = event.time;
  ++processed_;
  if (event.compute != nullptr) {
    double value;
    if (provider == nullptr ||
        !provider(event.sequence, event.worker_key, &value)) {
      value = event.compute();
    }
    event.commit(value);
  } else {
    event.plain();
  }
  return true;
}

bool EventSimulator::Step() { return StepWith(nullptr); }

int64_t EventSimulator::RunUntil(double time_limit) {
  int64_t count = 0;
  while (!queue_.empty() && queue_.back().time <= time_limit) {
    Step();
    ++count;
  }
  if (now_ < time_limit) now_ = time_limit;
  return count;
}

StatusOr<std::vector<SavedEvent>> EventSimulator::SaveQueue() const {
  std::vector<SavedEvent> events;
  events.reserve(queue_.size());
  // Walk backwards so the snapshot lists events in dispatch order.
  for (auto it = queue_.rbegin(); it != queue_.rend(); ++it) {
    if (it->payload.tag < 0) {
      return FailedPreconditionError(
          "cannot checkpoint: pending event at t=" + std::to_string(it->time) +
          " (sequence " + std::to_string(it->sequence) +
          ") was scheduled without a payload tag");
    }
    events.push_back(
        SavedEvent{it->time, it->sequence, it->worker_key, it->payload});
  }
  return events;
}

Status EventSimulator::RestoreQueue(const std::vector<SavedEvent>& events,
                                    const EventRebuilder& rebuilder) {
  if (!queue_.empty()) {
    return FailedPreconditionError(
        "RestoreQueue requires an empty event queue");
  }
  NETMAX_CHECK(rebuilder != nullptr);
  std::vector<Event> queue;
  queue.reserve(events.size());
  for (const SavedEvent& saved : events) {
    const std::string where = "event tag " + std::to_string(saved.payload.tag) +
                              " (sequence " + std::to_string(saved.sequence) +
                              ")";
    if (saved.time < now_) {
      return InvalidArgumentError("checkpointed " + where +
                                  " is scheduled before the restored clock");
    }
    if (saved.sequence < 0 || saved.sequence >= next_sequence_) {
      return InvalidArgumentError("checkpointed " + where +
                                  " has a sequence outside the restored "
                                  "counter range");
    }
    NETMAX_ASSIGN_OR_RETURN(RebuiltEvent rebuilt, rebuilder(saved));
    Event event;
    event.time = saved.time;
    event.sequence = saved.sequence;
    event.worker_key = saved.worker_key < 0 ? kNoKey : saved.worker_key;
    event.payload = saved.payload;
    if (event.worker_key == kNoKey) {
      if (rebuilt.plain == nullptr || rebuilt.compute != nullptr ||
          rebuilt.commit != nullptr) {
        return InternalError("rebuilder returned a non-plain closure set for "
                             "plain " +
                             where);
      }
      event.plain = std::move(rebuilt.plain);
    } else {
      if (rebuilt.compute == nullptr || rebuilt.commit == nullptr ||
          rebuilt.plain != nullptr) {
        return InternalError(
            "rebuilder returned an incomplete closure set for compute " +
            where);
      }
      event.compute = std::move(rebuilt.compute);
      event.commit = std::move(rebuilt.commit);
    }
    queue.push_back(std::move(event));
  }
  // Descending (time, sequence), next event at the back — the same invariant
  // Insert maintains.
  std::sort(queue.begin(), queue.end(), [](const Event& a, const Event& b) {
    return b.DispatchesBefore(a);
  });
  for (size_t i = 1; i < queue.size(); ++i) {
    if (queue[i].sequence == queue[i - 1].sequence) {
      return InvalidArgumentError(
          "checkpointed queue contains duplicate sequence " +
          std::to_string(queue[i].sequence));
    }
  }
  queue_ = std::move(queue);
  return Status::Ok();
}

void EventSimulator::RestoreClock(double now, int64_t next_sequence,
                                  int64_t processed) {
  NETMAX_CHECK(queue_.empty()) << "restore the clock before the queue";
  now_ = now;
  next_sequence_ = next_sequence;
  processed_ = processed;
}

int64_t EventSimulator::RunUntilIdle() {
  if (backend_ != nullptr) return backend_->RunUntilIdle(*this);
  int64_t count = 0;
  while (!halt_requested_ && Step()) ++count;
  if (halt_requested_) queue_.clear();
  return count;
}

int64_t ExecutionBackend::RunUntilIdle(EventSimulator& sim) {
  int64_t count = 0;
  while (!sim.halt_requested() && !sim.empty()) {
    Dispatch(sim);
    count += DrainCommits(sim);
  }
  if (sim.halt_requested()) {
    // Crash fault: discard in-flight evaluations (waiting their pooled tasks
    // out), then drop the pending queue. Everything already committed stays;
    // nothing else runs.
    OnHalt(sim);
    sim.ClearQueue();
    return count;
  }
  OnIdle(sim);
  return count;
}

}  // namespace netmax::net
