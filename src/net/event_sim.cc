#include "net/event_sim.h"

#include <algorithm>
#include <utility>

namespace netmax::net {

void EventSimulator::Insert(Event event) {
  NETMAX_CHECK_GE(event.time, now_) << "cannot schedule into the past";
  event.sequence = next_sequence_++;
  // Descending order, next event at the back. New events usually land near
  // the front (far future) or back (immediate follow-ups); either way the
  // shifted tail is small because queues hold O(workers) events.
  const auto position = std::upper_bound(
      queue_.begin(), queue_.end(), event,
      [](const Event& a, const Event& b) { return b.DispatchesBefore(a); });
  queue_.insert(position, std::move(event));
}

void EventSimulator::ScheduleAt(double time, Callback callback) {
  NETMAX_CHECK(callback != nullptr);
  Event event;
  event.time = time;
  event.plain = std::move(callback);
  Insert(std::move(event));
}

void EventSimulator::ScheduleAfter(double delay, Callback callback) {
  NETMAX_CHECK_GE(delay, 0.0);
  ScheduleAt(now_ + delay, std::move(callback));
}

void EventSimulator::ScheduleCompute(double time, int worker_key,
                                     ComputeFn compute, CommitFn commit) {
  NETMAX_CHECK_GE(worker_key, 0) << "worker_key must be non-negative";
  NETMAX_CHECK(compute != nullptr);
  NETMAX_CHECK(commit != nullptr);
  Event event;
  event.time = time;
  event.worker_key = worker_key;
  event.compute = std::move(compute);
  event.commit = std::move(commit);
  Insert(std::move(event));
}

void EventSimulator::ScheduleComputeAfter(double delay, int worker_key,
                                          ComputeFn compute, CommitFn commit) {
  NETMAX_CHECK_GE(delay, 0.0);
  ScheduleCompute(now_ + delay, worker_key, std::move(compute),
                  std::move(commit));
}

void EventSimulator::NotifyStateWrite(int worker_key) {
  if (backend_ != nullptr) backend_->OnStateWrite(*this, worker_key);
}

ExecutionStats EventSimulator::execution_stats() const {
  return backend_ != nullptr ? backend_->stats() : ExecutionStats{};
}

void EventSimulator::ScanPendingComputes(
    int64_t max_scan,
    const std::function<ScanAction(const PendingComputeView&)>& visit) const {
  int64_t scanned = 0;
  for (auto it = queue_.rbegin(); it != queue_.rend() && scanned < max_scan;
       ++it, ++scanned) {
    if (it->compute == nullptr) continue;
    const PendingComputeView view{it->time, it->sequence, it->worker_key,
                                  it->compute};
    if (visit(view) == ScanAction::kStop) return;
  }
}

bool EventSimulator::StepWith(const SpeculationProvider& provider) {
  if (queue_.empty()) return false;
  // Move out before popping so the handlers may schedule new events.
  Event event = std::move(queue_.back());
  queue_.pop_back();
  now_ = event.time;
  ++processed_;
  if (event.compute != nullptr) {
    double value;
    if (provider == nullptr ||
        !provider(event.sequence, event.worker_key, &value)) {
      value = event.compute();
    }
    event.commit(value);
  } else {
    event.plain();
  }
  return true;
}

bool EventSimulator::Step() { return StepWith(nullptr); }

int64_t EventSimulator::RunUntil(double time_limit) {
  int64_t count = 0;
  while (!queue_.empty() && queue_.back().time <= time_limit) {
    Step();
    ++count;
  }
  if (now_ < time_limit) now_ = time_limit;
  return count;
}

int64_t EventSimulator::RunUntilIdle() {
  if (backend_ != nullptr) return backend_->RunUntilIdle(*this);
  int64_t count = 0;
  while (Step()) ++count;
  return count;
}

int64_t ExecutionBackend::RunUntilIdle(EventSimulator& sim) {
  int64_t count = 0;
  while (!sim.empty()) {
    Dispatch(sim);
    count += DrainCommits(sim);
  }
  OnIdle(sim);
  return count;
}

}  // namespace netmax::net
