#include "net/event_sim.h"

#include <algorithm>
#include <utility>

#include "common/thread_pool.h"

namespace netmax::net {
namespace {

// Frontier scan bounds: how many queue entries to examine and how many
// speculations to hold per dispatch. The speculation cap scales with the pool
// so the drain (serial) phase stays short relative to the compute phase; the
// scan cap bounds the cost of skipping over plain events.
constexpr int64_t kMaxScannedEvents = 256;

int64_t FrontierCap(const ThreadPool& pool) {
  // The RunUntilIdle caller participates in the compute phase, hence +1.
  return 4 * (static_cast<int64_t>(pool.num_threads()) + 1);
}

}  // namespace

void EventSimulator::Insert(Event event) {
  NETMAX_CHECK_GE(event.time, now_) << "cannot schedule into the past";
  event.sequence = next_sequence_++;
  // Descending order, next event at the back. New events usually land near
  // the front (far future) or back (immediate follow-ups); either way the
  // shifted tail is small because queues hold O(workers) events.
  const auto position = std::upper_bound(
      queue_.begin(), queue_.end(), event,
      [](const Event& a, const Event& b) { return b.DispatchesBefore(a); });
  queue_.insert(position, std::move(event));
}

void EventSimulator::ScheduleAt(double time, Callback callback) {
  NETMAX_CHECK(callback != nullptr);
  Event event;
  event.time = time;
  event.plain = std::move(callback);
  Insert(std::move(event));
}

void EventSimulator::ScheduleAfter(double delay, Callback callback) {
  NETMAX_CHECK_GE(delay, 0.0);
  ScheduleAt(now_ + delay, std::move(callback));
}

void EventSimulator::ScheduleCompute(double time, int worker_key,
                                     ComputeFn compute, CommitFn commit) {
  NETMAX_CHECK_GE(worker_key, 0) << "worker_key must be non-negative";
  NETMAX_CHECK(compute != nullptr);
  NETMAX_CHECK(commit != nullptr);
  Event event;
  event.time = time;
  event.worker_key = worker_key;
  event.compute = std::move(compute);
  event.commit = std::move(commit);
  Insert(std::move(event));
}

void EventSimulator::ScheduleComputeAfter(double delay, int worker_key,
                                          ComputeFn compute, CommitFn commit) {
  NETMAX_CHECK_GE(delay, 0.0);
  ScheduleCompute(now_ + delay, worker_key, std::move(compute),
                  std::move(commit));
}

void EventSimulator::NotifyStateWrite(int worker_key) {
  if (pending_speculations_ == 0) return;  // nothing to invalidate
  const auto redispatch = redispatches_.find(worker_key);
  if (redispatch != redispatches_.end() && !redispatch->second->invalidated) {
    // A second-pass recompute for this key is in flight (or done): finish it
    // before the caller's write can race its reads, discard its value, and
    // queue yet another re-dispatch — it will observe the caller's write
    // once the current handler returns.
    redispatch->second->done.wait();
    redispatch->second->invalidated = true;
    pending_redispatch_keys_.push_back(worker_key);
    return;
  }
  if (!dirty_keys_.insert(worker_key).second) return;  // already dirty
  // First invalidation of this key in the batch: if its speculated compute
  // is still awaiting its turn, queue the second-pass re-dispatch (flushed
  // after the current handler returns, so the recompute reads post-write
  // state). Without a pending speculation the insert alone records the
  // write.
  if (pool_ != nullptr && FindSpeculatedEvent(worker_key) != nullptr) {
    pending_redispatch_keys_.push_back(worker_key);
  }
}

const EventSimulator::Event* EventSimulator::FindSpeculatedEvent(
    int worker_key) const {
  // Speculated events live in the frontier region near the back of the
  // queue; scan from the dispatch end.
  for (auto it = queue_.rbegin(); it != queue_.rend(); ++it) {
    if (it->speculated && it->worker_key == worker_key) return &*it;
  }
  return nullptr;
}

void EventSimulator::FlushRedispatches() {
  if (pending_redispatch_keys_.empty()) return;
  // Submit in (time, sequence) order of the invalidated events so the pool
  // starts the earliest-committing recompute first.
  std::vector<const Event*> targets;
  targets.reserve(pending_redispatch_keys_.size());
  for (const int key : pending_redispatch_keys_) {
    const Event* event = FindSpeculatedEvent(key);
    NETMAX_CHECK(event != nullptr) << "invalidated speculation vanished";
    targets.push_back(event);
  }
  pending_redispatch_keys_.clear();
  std::sort(targets.begin(), targets.end(),
            [](const Event* a, const Event* b) {
              return a->DispatchesBefore(*b);
            });
  for (const Event* event : targets) {
    auto redispatch = std::make_unique<Redispatch>();
    std::packaged_task<void()> task(
        [compute = event->compute, result = redispatch.get()] {
          result->value = compute();
        });
    redispatch->done = pool_->Submit(std::move(task));
    ++computes_redispatched_;
    redispatches_[event->worker_key] = std::move(redispatch);
  }
}

bool EventSimulator::Step() {
  if (queue_.empty()) return false;
  // Move out before popping so the handlers may schedule new events.
  Event event = std::move(queue_.back());
  queue_.pop_back();
  now_ = event.time;
  ++processed_;
  if (event.compute != nullptr) {
    double value;
    if (!event.speculated) {
      value = event.compute();
    } else if (dirty_keys_.find(event.worker_key) == dirty_keys_.end()) {
      // Sound speculation: no commit since the frontier formed wrote this
      // worker's compute-visible state, so the pooled result is exactly what
      // an inline run would produce now.
      value = event.speculative_value;
    } else {
      // Invalidated speculation: its second-pass re-dispatch carries the
      // value an inline recompute would produce (the key has not been
      // written since the re-dispatch, or NotifyStateWrite would have
      // invalidated and replaced it). The inline fallback only covers the
      // defensive no-entry case and is expected to stay cold.
      const auto redispatch = redispatches_.find(event.worker_key);
      if (redispatch != redispatches_.end() &&
          !redispatch->second->invalidated) {
        redispatch->second->done.wait();
        value = redispatch->second->value;
      } else {
        ++computes_recomputed_;
        value = event.compute();
      }
      if (redispatch != redispatches_.end()) redispatches_.erase(redispatch);
    }
    if (event.speculated) --pending_speculations_;
    event.commit(value);
  } else {
    event.plain();
  }
  // Handlers queue invalidated keys; the second speculation pass starts here,
  // after the handler's writes are complete.
  FlushRedispatches();
  return true;
}

int64_t EventSimulator::ParallelDispatch() {
  // Phase 1 — frontier scan (backwards = dispatch order): the longest prefix
  // of compute events with pairwise-distinct worker keys. Plain events are
  // skipped, not barriers: they run at their exact position during the
  // drain, and any state they write is covered by NotifyStateWrite
  // invalidation. A duplicate key ends the scan so no two speculations ever
  // target the same state partition.
  std::vector<Event*> frontier;
  std::unordered_set<int> frontier_keys;
  const int64_t frontier_cap = FrontierCap(*pool_);
  int64_t scanned = 0;
  for (auto it = queue_.rbegin();
       it != queue_.rend() && scanned < kMaxScannedEvents &&
       static_cast<int64_t>(frontier.size()) < frontier_cap;
       ++it, ++scanned) {
    if (it->compute == nullptr) continue;
    if (!frontier_keys.insert(it->worker_key).second) break;
    frontier.push_back(&*it);
  }
  if (frontier.size() < 2) return Step() ? 1 : 0;

  // Phase 2 — speculative compute: every frontier compute half runs
  // concurrently on the pool (the caller participates). No commit runs in
  // parallel with this phase, and each compute half touches only its own
  // worker's state, so the phase is race-free by construction. The queue is
  // not mutated here, so the frontier pointers stay valid.
  ParallelFor(*pool_, static_cast<int>(frontier.size()), [&frontier](int i) {
    Event* event = frontier[static_cast<size_t>(i)];
    event->speculative_value = event->compute();
    event->speculated = true;
  });
  ++parallel_batches_;
  computes_speculated_ += static_cast<int64_t>(frontier.size());

  // Phase 3 — ordered drain: apply events strictly in (time, sequence) order
  // until every speculation is consumed. Commits may schedule new events
  // (which run inline at their correct position, even before later frontier
  // members) and may dirty keys via NotifyStateWrite (which re-dispatches the
  // affected speculation onto the pool for the second pass). Speculation
  // state travels inside the Event objects, so queue shifts from new
  // insertions are safe; re-dispatch results live outside the queue
  // (redispatches_) because pooled writers need stable addresses.
  dirty_keys_.clear();
  pending_speculations_ = static_cast<int64_t>(frontier.size());
  int64_t count = 0;
  while (pending_speculations_ > 0) {
    NETMAX_CHECK(!queue_.empty()) << "speculated event vanished from queue";
    Step();
    ++count;
  }
  NETMAX_CHECK(redispatches_.empty())
      << "second-pass re-dispatch outlived its batch";
  return count;
}

int64_t EventSimulator::RunUntil(double time_limit) {
  int64_t count = 0;
  while (!queue_.empty() && queue_.back().time <= time_limit) {
    Step();
    ++count;
  }
  if (now_ < time_limit) now_ = time_limit;
  return count;
}

int64_t EventSimulator::RunUntilIdle() {
  int64_t count = 0;
  if (pool_ != nullptr) {
    while (!queue_.empty()) count += ParallelDispatch();
    return count;
  }
  while (Step()) ++count;
  return count;
}

}  // namespace netmax::net
