#include "net/event_sim.h"

#include <utility>

namespace netmax::net {

void EventSimulator::ScheduleAt(double time, Callback callback) {
  NETMAX_CHECK_GE(time, now_) << "cannot schedule into the past";
  NETMAX_CHECK(callback != nullptr);
  queue_.push(Event{time, next_sequence_++, std::move(callback)});
}

void EventSimulator::ScheduleAfter(double delay, Callback callback) {
  NETMAX_CHECK_GE(delay, 0.0);
  ScheduleAt(now_ + delay, std::move(callback));
}

bool EventSimulator::Step() {
  if (queue_.empty()) return false;
  // Copy out before pop so the callback may schedule new events.
  Event event = queue_.top();
  queue_.pop();
  now_ = event.time;
  ++processed_;
  event.callback();
  return true;
}

int64_t EventSimulator::RunUntil(double time_limit) {
  int64_t count = 0;
  while (!queue_.empty() && queue_.top().time <= time_limit) {
    Step();
    ++count;
  }
  if (now_ < time_limit) now_ = time_limit;
  return count;
}

int64_t EventSimulator::RunUntilIdle() {
  int64_t count = 0;
  while (Step()) ++count;
  return count;
}

}  // namespace netmax::net
