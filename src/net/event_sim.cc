#include "net/event_sim.h"

#include <algorithm>
#include <string>
#include <utility>

namespace netmax::net {

EventSimulator::EventSimulator()
    : queue_(MakeEventQueue(EventQueueKind::kSortedVector)) {}

void EventSimulator::ReplaceQueue(std::unique_ptr<EventQueue> queue) {
  NETMAX_CHECK(queue != nullptr);
  NETMAX_CHECK(queue_->empty())
      << "ReplaceQueue requires an empty event queue";
  queue_ = std::move(queue);
}

void EventSimulator::Insert(SimEvent event) {
  NETMAX_CHECK_GE(event.time, now_) << "cannot schedule into the past";
  event.sequence = next_sequence_++;
  queue_->Push(std::move(event));
}

void EventSimulator::ScheduleAt(double time, Callback callback) {
  NETMAX_CHECK(callback != nullptr);
  SimEvent event;
  event.time = time;
  event.plain = std::move(callback);
  Insert(std::move(event));
}

void EventSimulator::ScheduleAfter(double delay, Callback callback) {
  NETMAX_CHECK_GE(delay, 0.0);
  ScheduleAt(now_ + delay, std::move(callback));
}

void EventSimulator::ScheduleCompute(double time, int worker_key,
                                     ComputeFn compute, CommitFn commit) {
  NETMAX_CHECK_GE(worker_key, 0) << "worker_key must be non-negative";
  NETMAX_CHECK(compute != nullptr);
  NETMAX_CHECK(commit != nullptr);
  SimEvent event;
  event.time = time;
  event.worker_key = worker_key;
  event.compute = std::move(compute);
  event.commit = std::move(commit);
  Insert(std::move(event));
}

void EventSimulator::ScheduleComputeAfter(double delay, int worker_key,
                                          ComputeFn compute, CommitFn commit) {
  NETMAX_CHECK_GE(delay, 0.0);
  ScheduleCompute(now_ + delay, worker_key, std::move(compute),
                  std::move(commit));
}

void EventSimulator::ScheduleAt(double time, EventPayload payload,
                                Callback callback) {
  NETMAX_CHECK(callback != nullptr);
  NETMAX_CHECK_GE(payload.tag, 0) << "tagged overload requires a tag";
  SimEvent event;
  event.time = time;
  event.plain = std::move(callback);
  event.payload = std::move(payload);
  Insert(std::move(event));
}

void EventSimulator::ScheduleAfter(double delay, EventPayload payload,
                                   Callback callback) {
  NETMAX_CHECK_GE(delay, 0.0);
  ScheduleAt(now_ + delay, std::move(payload), std::move(callback));
}

void EventSimulator::ScheduleCompute(double time, int worker_key,
                                     EventPayload payload, ComputeFn compute,
                                     CommitFn commit) {
  NETMAX_CHECK_GE(worker_key, 0) << "worker_key must be non-negative";
  NETMAX_CHECK(compute != nullptr);
  NETMAX_CHECK(commit != nullptr);
  NETMAX_CHECK_GE(payload.tag, 0) << "tagged overload requires a tag";
  SimEvent event;
  event.time = time;
  event.worker_key = worker_key;
  event.compute = std::move(compute);
  event.commit = std::move(commit);
  event.payload = std::move(payload);
  Insert(std::move(event));
}

void EventSimulator::ScheduleComputeAfter(double delay, int worker_key,
                                          EventPayload payload,
                                          ComputeFn compute, CommitFn commit) {
  NETMAX_CHECK_GE(delay, 0.0);
  ScheduleCompute(now_ + delay, worker_key, std::move(payload),
                  std::move(compute), std::move(commit));
}

void EventSimulator::NotifyStateWrite(int worker_key) {
  if (backend_ != nullptr) backend_->OnStateWrite(*this, worker_key);
}

ExecutionStats EventSimulator::execution_stats() const {
  return backend_ != nullptr ? backend_->stats() : ExecutionStats{};
}

void EventSimulator::ScanPendingComputes(
    int64_t max_scan,
    const std::function<ScanAction(const PendingComputeView&)>& visit) const {
  queue_->VisitInOrder(max_scan, [&visit](const SimEvent& event) {
    if (event.compute == nullptr) return EventQueue::VisitAction::kContinue;
    const PendingComputeView view{event.time, event.sequence,
                                  event.worker_key, event.compute};
    return visit(view) == ScanAction::kStop
               ? EventQueue::VisitAction::kStop
               : EventQueue::VisitAction::kContinue;
  });
}

bool EventSimulator::StepWith(const SpeculationProvider& provider) {
  if (queue_->empty()) return false;
  // Pop by value so the handlers may schedule new events.
  SimEvent event = queue_->PopNext();
  now_ = event.time;
  ++processed_;
  if (event.compute != nullptr) {
    double value;
    if (provider == nullptr ||
        !provider(event.sequence, event.worker_key, &value)) {
      value = event.compute();
    }
    event.commit(value);
  } else {
    event.plain();
  }
  return true;
}

bool EventSimulator::Step() { return StepWith(nullptr); }

int64_t EventSimulator::RunUntil(double time_limit) {
  int64_t count = 0;
  while (!queue_->empty() && queue_->NextTime() <= time_limit) {
    Step();
    ++count;
  }
  if (now_ < time_limit) now_ = time_limit;
  return count;
}

StatusOr<std::vector<SavedEvent>> EventSimulator::SaveQueue() const {
  std::vector<SavedEvent> events;
  events.reserve(static_cast<size_t>(queue_->size()));
  Status status = Status::Ok();
  queue_->VisitInOrder(
      queue_->size(), [&events, &status](const SimEvent& event) {
        if (event.payload.tag < 0) {
          status = FailedPreconditionError(
              "cannot checkpoint: pending event at t=" +
              std::to_string(event.time) + " (sequence " +
              std::to_string(event.sequence) +
              ") was scheduled without a payload tag");
          return EventQueue::VisitAction::kStop;
        }
        events.push_back(SavedEvent{event.time, event.sequence,
                                    event.worker_key, event.payload});
        return EventQueue::VisitAction::kContinue;
      });
  NETMAX_RETURN_IF_ERROR(status);
  return events;
}

Status EventSimulator::RestoreQueue(const std::vector<SavedEvent>& events,
                                    const EventRebuilder& rebuilder) {
  if (!queue_->empty()) {
    return FailedPreconditionError(
        "RestoreQueue requires an empty event queue");
  }
  NETMAX_CHECK(rebuilder != nullptr);
  // Validate before touching the queue, so a failed restore leaves it empty.
  std::vector<int64_t> sequences;
  sequences.reserve(events.size());
  for (const SavedEvent& saved : events) {
    const std::string where = "event tag " + std::to_string(saved.payload.tag) +
                              " (sequence " + std::to_string(saved.sequence) +
                              ")";
    if (saved.time < now_) {
      return InvalidArgumentError("checkpointed " + where +
                                  " is scheduled before the restored clock");
    }
    if (saved.sequence < 0 || saved.sequence >= next_sequence_) {
      return InvalidArgumentError("checkpointed " + where +
                                  " has a sequence outside the restored "
                                  "counter range");
    }
    sequences.push_back(saved.sequence);
  }
  std::sort(sequences.begin(), sequences.end());
  for (size_t i = 1; i < sequences.size(); ++i) {
    if (sequences[i] == sequences[i - 1]) {
      return InvalidArgumentError(
          "checkpointed queue contains duplicate sequence " +
          std::to_string(sequences[i]));
    }
  }
  std::vector<SimEvent> rebuilt_events;
  rebuilt_events.reserve(events.size());
  for (const SavedEvent& saved : events) {
    const std::string where = "event tag " + std::to_string(saved.payload.tag) +
                              " (sequence " + std::to_string(saved.sequence) +
                              ")";
    NETMAX_ASSIGN_OR_RETURN(RebuiltEvent rebuilt, rebuilder(saved));
    SimEvent event;
    event.time = saved.time;
    event.sequence = saved.sequence;
    event.worker_key = saved.worker_key < 0 ? kNoKey : saved.worker_key;
    event.payload = saved.payload;
    if (event.worker_key == kNoKey) {
      if (rebuilt.plain == nullptr || rebuilt.compute != nullptr ||
          rebuilt.commit != nullptr) {
        return InternalError("rebuilder returned a non-plain closure set for "
                             "plain " +
                             where);
      }
      event.plain = std::move(rebuilt.plain);
    } else {
      if (rebuilt.compute == nullptr || rebuilt.commit == nullptr ||
          rebuilt.plain != nullptr) {
        return InternalError(
            "rebuilder returned an incomplete closure set for compute " +
            where);
      }
      event.compute = std::move(rebuilt.compute);
      event.commit = std::move(rebuilt.commit);
    }
    rebuilt_events.push_back(std::move(event));
  }
  // Sequence numbers are restored exactly as saved (Insert is bypassed), so
  // relative (time, sequence) ordering — and with it every tie-break —
  // replays bit-identically in any queue implementation.
  for (SimEvent& event : rebuilt_events) queue_->Push(std::move(event));
  return Status::Ok();
}

void EventSimulator::RestoreClock(double now, int64_t next_sequence,
                                  int64_t processed) {
  NETMAX_CHECK(queue_->empty()) << "restore the clock before the queue";
  now_ = now;
  next_sequence_ = next_sequence;
  processed_ = processed;
}

int64_t EventSimulator::RunUntilIdle() {
  if (backend_ != nullptr) return backend_->RunUntilIdle(*this);
  int64_t count = 0;
  while (!halt_requested_ && Step()) ++count;
  if (halt_requested_) queue_->Clear();
  return count;
}

int64_t ExecutionBackend::RunUntilIdle(EventSimulator& sim) {
  int64_t count = 0;
  while (!sim.halt_requested() && !sim.empty()) {
    Dispatch(sim);
    count += DrainCommits(sim);
  }
  if (sim.halt_requested()) {
    // Crash fault: discard in-flight evaluations (waiting their pooled tasks
    // out), then drop the pending queue. Everything already committed stays;
    // nothing else runs.
    OnHalt(sim);
    sim.ClearQueue();
    return count;
  }
  OnIdle(sim);
  return count;
}

}  // namespace netmax::net
