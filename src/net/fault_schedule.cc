#include "net/fault_schedule.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/logging.h"
#include "common/random.h"

namespace netmax::net {
namespace {

// Consumes a leading double from `text`; false on no parse.
bool EatDouble(std::string_view* text, double* value) {
  const std::string buffer(*text);
  char* end = nullptr;
  const double parsed = std::strtod(buffer.c_str(), &end);
  if (end == buffer.c_str()) return false;
  *value = parsed;
  text->remove_prefix(static_cast<size_t>(end - buffer.c_str()));
  return true;
}

// Consumes a leading literal; false (and no consumption) if absent.
bool EatLiteral(std::string_view* text, std::string_view literal) {
  if (text->substr(0, literal.size()) != literal) return false;
  text->remove_prefix(literal.size());
  return true;
}

// Consumes a trailing ":wN" worker suffix.
bool EatWorkerSuffix(std::string_view* text, int* worker) {
  if (!EatLiteral(text, ":w")) return false;
  double id = 0.0;
  if (!EatDouble(text, &id)) return false;
  if (id != std::floor(id) || id < 0.0 || id > 1e9) return false;
  *worker = static_cast<int>(id);
  return true;
}

Status EntryError(std::string_view entry, std::string_view why) {
  return InvalidArgumentError("bad fault entry \"" + std::string(entry) +
                              "\": " + std::string(why));
}

}  // namespace

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLeave:
      return "leave";
    case FaultKind::kJoin:
      return "join";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kSlowdown:
      return "slow";
  }
  return "unknown";
}

StatusOr<FaultSchedule> FaultSchedule::Parse(std::string_view spec) {
  FaultSchedule schedule;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t end = spec.find(';', start);
    if (end == std::string_view::npos) end = spec.size();
    std::string_view entry = spec.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;  // tolerate empty segments / trailing ';'

    FaultEvent event;
    std::string_view rest = entry;
    if (EatLiteral(&rest, "leave@")) {
      event.kind = FaultKind::kLeave;
    } else if (EatLiteral(&rest, "join@")) {
      event.kind = FaultKind::kJoin;
    } else if (EatLiteral(&rest, "crash@")) {
      event.kind = FaultKind::kCrash;
    } else if (EatLiteral(&rest, "slow@")) {
      event.kind = FaultKind::kSlowdown;
    } else {
      return EntryError(entry,
                        "expected leave@ / join@ / crash@ / slow@ prefix");
    }
    if (!EatDouble(&rest, &event.time)) {
      return EntryError(entry, "cannot parse the event time");
    }
    if (event.kind == FaultKind::kSlowdown) {
      if (!EatLiteral(&rest, "+")) {
        return EntryError(entry, "slow@ needs +DURATION after the time");
      }
      if (!EatDouble(&rest, &event.duration)) {
        return EntryError(entry, "cannot parse the slowdown duration");
      }
      if (!EatLiteral(&rest, "x")) {
        return EntryError(entry, "slow@ needs xFACTOR after the duration");
      }
      if (!EatDouble(&rest, &event.factor)) {
        return EntryError(entry, "cannot parse the slowdown factor");
      }
    }
    if (event.kind != FaultKind::kCrash) {
      if (!EatWorkerSuffix(&rest, &event.worker)) {
        return EntryError(entry, "expected a :wN worker suffix");
      }
    }
    if (!rest.empty()) {
      return EntryError(entry, "trailing characters \"" + std::string(rest) +
                                   "\"");
    }
    schedule.events_.push_back(event);
  }
  return schedule;
}

FaultSchedule FaultSchedule::FromSeed(uint64_t seed, int num_workers,
                                      double horizon, int count) {
  NETMAX_CHECK_GE(num_workers, 1);
  NETMAX_CHECK_GT(horizon, 0.0);
  NETMAX_CHECK_GE(count, 0);
  Rng rng(seed ^ 0xFA517FA517FA517Full);
  std::vector<FaultEvent> events;
  for (int i = 0; i < count; ++i) {
    const double time = rng.Uniform(0.1 * horizon, 0.6 * horizon);
    const int worker = static_cast<int>(
        rng.UniformInt(0, static_cast<int64_t>(num_workers) - 1));
    if (rng.Uniform() < 0.5) {
      FaultEvent slow;
      slow.kind = FaultKind::kSlowdown;
      slow.time = time;
      slow.worker = worker;
      slow.factor = rng.Uniform(2.0, 8.0);
      slow.duration = rng.Uniform(0.05, 0.15) * horizon;
      events.push_back(slow);
    } else {
      FaultEvent leave;
      leave.kind = FaultKind::kLeave;
      leave.time = time;
      leave.worker = worker;
      events.push_back(leave);
      FaultEvent join = leave;
      join.kind = FaultKind::kJoin;
      join.time = time + rng.Uniform(0.05, 0.15) * horizon;
      events.push_back(join);
    }
  }
  // A worker can be drawn twice; sorting restores the monotone-time contract
  // (stable so a leave always precedes its paired rejoin at equal times).
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time < b.time;
                   });
  FaultSchedule schedule;
  schedule.events_ = std::move(events);
  return schedule;
}

Status FaultSchedule::Validate(int num_workers) const {
  double last_time = 0.0;
  for (size_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& event = events_[i];
    const std::string where = "fault event " + std::to_string(i) + " (" +
                              std::string(FaultKindName(event.kind)) + ")";
    if (!std::isfinite(event.time) || event.time < 0.0) {
      return InvalidArgumentError(where + " has a non-finite or negative "
                                          "time");
    }
    if (event.time < last_time) {
      return InvalidArgumentError(
          where + " is out of order: fault times must be non-decreasing");
    }
    last_time = event.time;
    if (event.kind != FaultKind::kCrash) {
      if (event.worker < 0 || event.worker >= num_workers) {
        return InvalidArgumentError(
            where + " references worker " + std::to_string(event.worker) +
            ", but the run has " + std::to_string(num_workers) + " workers");
      }
    }
    if (event.kind == FaultKind::kSlowdown) {
      if (!std::isfinite(event.factor) || event.factor <= 0.0) {
        return InvalidArgumentError(where + " has a non-positive slowdown "
                                            "factor");
      }
      if (!std::isfinite(event.duration) || event.duration <= 0.0) {
        return InvalidArgumentError(where + " has a non-positive slowdown "
                                            "duration");
      }
    }
  }
  return Status::Ok();
}

std::string FaultSchedule::ToSpec() const {
  std::ostringstream out;
  for (size_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& event = events_[i];
    if (i > 0) out << ';';
    out << FaultKindName(event.kind) << '@' << event.time;
    if (event.kind == FaultKind::kSlowdown) {
      out << '+' << event.duration << 'x' << event.factor;
    }
    if (event.kind != FaultKind::kCrash) out << ":w" << event.worker;
  }
  return out.str();
}

}  // namespace netmax::net
