#include "net/event_queue.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "common/logging.h"

namespace netmax::net {
namespace {

// upper_bound comparator for descending (time, sequence) storage: true when
// `a` pops after `b`.
bool PopsAfter(const SimEvent& a, const SimEvent& b) {
  return b.DispatchesBefore(a);
}

// --- sorted vector ----------------------------------------------------------
// Descending (time, sequence), next event at the back: O(1) pop, O(n)
// shifting insert. Queues at the paper's scale hold O(workers) events, which
// keeps the shifted tail small — this was measurably the fastest layout at
// 8-32 workers, so it stays the default.
class SortedVectorEventQueue final : public EventQueue {
 public:
  std::string_view name() const override { return "vector"; }
  EventQueueKind kind() const override {
    return EventQueueKind::kSortedVector;
  }

  void Push(SimEvent event) override {
    const auto position =
        std::upper_bound(queue_.begin(), queue_.end(), event, PopsAfter);
    queue_.insert(position, std::move(event));
  }

  SimEvent PopNext() override {
    NETMAX_CHECK(!queue_.empty());
    SimEvent event = std::move(queue_.back());
    queue_.pop_back();
    return event;
  }

  double NextTime() const override {
    NETMAX_CHECK(!queue_.empty());
    return queue_.back().time;
  }

  int64_t size() const override { return static_cast<int64_t>(queue_.size()); }

  void Clear() override { queue_.clear(); }

  void VisitInOrder(int64_t max_visit, const Visitor& visit) const override {
    int64_t visited = 0;
    for (auto it = queue_.rbegin(); it != queue_.rend() && visited < max_visit;
         ++it, ++visited) {
      if (visit(*it) == VisitAction::kStop) return;
    }
  }

 private:
  std::vector<SimEvent> queue_;
};

// --- binary heap ------------------------------------------------------------
// std::push_heap/pop_heap over a vector with PopsAfter as the less-than:
// the heap maximum (front) is the event nothing dispatches before. In-order
// scans walk the implicit tree with an auxiliary index heap — the heap
// property guarantees parents dispatch before children, so visiting the
// earliest frontier index and pushing its children enumerates the first k
// events in exact dispatch order in O(k log k).
class BinaryHeapEventQueue final : public EventQueue {
 public:
  std::string_view name() const override { return "heap"; }
  EventQueueKind kind() const override { return EventQueueKind::kBinaryHeap; }

  void Push(SimEvent event) override {
    heap_.push_back(std::move(event));
    std::push_heap(heap_.begin(), heap_.end(), PopsAfter);
  }

  SimEvent PopNext() override {
    NETMAX_CHECK(!heap_.empty());
    std::pop_heap(heap_.begin(), heap_.end(), PopsAfter);
    SimEvent event = std::move(heap_.back());
    heap_.pop_back();
    return event;
  }

  double NextTime() const override {
    NETMAX_CHECK(!heap_.empty());
    return heap_.front().time;
  }

  int64_t size() const override { return static_cast<int64_t>(heap_.size()); }

  void Clear() override { heap_.clear(); }

  void VisitInOrder(int64_t max_visit, const Visitor& visit) const override {
    if (heap_.empty() || max_visit <= 0) return;
    const auto later = [this](size_t a, size_t b) {
      return heap_[b].DispatchesBefore(heap_[a]);
    };
    scan_.clear();
    scan_.push_back(0);
    int64_t visited = 0;
    while (!scan_.empty() && visited < max_visit) {
      std::pop_heap(scan_.begin(), scan_.end(), later);
      const size_t index = scan_.back();
      scan_.pop_back();
      if (visit(heap_[index]) == VisitAction::kStop) return;
      ++visited;
      for (const size_t child : {2 * index + 1, 2 * index + 2}) {
        if (child < heap_.size()) {
          scan_.push_back(child);
          std::push_heap(scan_.begin(), scan_.end(), later);
        }
      }
    }
  }

 private:
  std::vector<SimEvent> heap_;
  mutable std::vector<size_t> scan_;  // frontier scratch, grow-only
};

// --- calendar queue ---------------------------------------------------------
// Brown's calendar queue: a "year" of N buckets of width `width_`; an event
// at time t lives in bucket VirtualBucket(t) mod N, each bucket sorted
// descending so its earliest event sits at the back. Pops scan virtual
// buckets upward from a cached position, taking bucket heads that belong to
// the scanned window; a fruitless full lap (everything far ahead of a stale
// width) recalibrates the width from the live contents and rescans.
//
// Correctness notes:
//  * Window membership is decided by VirtualBucket(time) == vb, never by a
//    separately recomputed time bound, so floating-point rounding at bucket
//    boundaries cannot disagree with where Push placed the event.
//  * VirtualBucket is monotone in time and equal times map to equal virtual
//    buckets, so cross-bucket order follows the window scan and ties stay
//    inside one bucket where (time, sequence) sorting breaks them — pop
//    order is bit-identical to the sorted vector's.
//  * Bucket count only grows (powers of two) and bucket vectors keep their
//    capacity, so steady-state push/pop allocates nothing once warm.
class CalendarEventQueue final : public EventQueue {
 public:
  CalendarEventQueue() { buckets_.resize(kInitialBuckets); }

  std::string_view name() const override { return "calendar"; }
  EventQueueKind kind() const override { return EventQueueKind::kCalendar; }

  void Push(SimEvent event) override {
    const int64_t vb = VirtualBucket(event.time);
    if (size_ == 0 || vb < current_virtual_bucket_) {
      current_virtual_bucket_ = vb;
    }
    std::vector<SimEvent>& bucket = buckets_[BucketIndex(vb)];
    const auto position =
        std::upper_bound(bucket.begin(), bucket.end(), event, PopsAfter);
    bucket.insert(position, std::move(event));
    ++size_;
    if (size_ > 2 * static_cast<int64_t>(buckets_.size())) {
      Recalibrate(2 * static_cast<int64_t>(buckets_.size()));
    }
  }

  SimEvent PopNext() override {
    NETMAX_CHECK_GT(size_, 0);
    for (int attempt = 0; attempt < 2; ++attempt) {
      int64_t vb = current_virtual_bucket_;
      for (size_t lap = 0; lap <= buckets_.size(); ++lap, ++vb) {
        std::vector<SimEvent>& bucket = buckets_[BucketIndex(vb)];
        if (!bucket.empty() && VirtualBucket(bucket.back().time) <= vb) {
          current_virtual_bucket_ = vb;
          SimEvent event = std::move(bucket.back());
          bucket.pop_back();
          --size_;
          return event;
        }
      }
      // A fruitless year: every pending event sits far beyond the current
      // window, i.e. the width is stale for the live event spacing.
      // Recalibrate and rescan — the minimum lands inside the first window
      // of the rescan by construction.
      Recalibrate(static_cast<int64_t>(buckets_.size()));
    }
    NETMAX_CHECK(false) << "calendar queue lost track of its events";
    return SimEvent{};
  }

  double NextTime() const override { return PeekNext()->time; }

  int64_t size() const override { return size_; }

  void Clear() override {
    for (std::vector<SimEvent>& bucket : buckets_) bucket.clear();
    size_ = 0;
  }

  void VisitInOrder(int64_t max_visit, const Visitor& visit) const override {
    if (size_ == 0 || max_visit <= 0) return;
    // Epoch-stamped per-bucket cursors make the non-destructive scan cheap:
    // no O(buckets) reset per call, and no allocation once the cursor
    // arrays match the bucket count.
    ++scan_epoch_;
    if (cursor_.size() != buckets_.size()) {
      cursor_.assign(buckets_.size(), 0);
      cursor_epoch_.assign(buckets_.size(), 0);
    }
    int64_t visited = 0;
    int64_t remaining = size_;
    int64_t vb = current_virtual_bucket_;
    size_t fruitless = 0;
    while (visited < max_visit && remaining > 0) {
      const size_t index = BucketIndex(vb);
      int64_t& cursor = Cursor(index);
      if (cursor > 0 &&
          VirtualBucket(buckets_[index][cursor - 1].time) <= vb) {
        const SimEvent& event = buckets_[index][cursor - 1];
        --cursor;
        --remaining;
        ++visited;
        fruitless = 0;
        if (visit(event) == VisitAction::kStop) return;
        continue;
      }
      ++vb;
      if (++fruitless > buckets_.size()) {
        // Stale width, same situation as PopNext's fruitless year — but the
        // scan is const, so jump to the earliest unvisited head directly
        // instead of recalibrating.
        const SimEvent* best = nullptr;
        for (size_t i = 0; i < buckets_.size(); ++i) {
          const int64_t head = Cursor(i);
          if (head == 0) continue;
          const SimEvent& candidate = buckets_[i][head - 1];
          if (best == nullptr || candidate.DispatchesBefore(*best)) {
            best = &candidate;
          }
        }
        if (best == nullptr) return;
        vb = VirtualBucket(best->time);
        fruitless = 0;
      }
    }
  }

 private:
  static constexpr size_t kInitialBuckets = 16;  // always a power of two

  size_t BucketIndex(int64_t vb) const {
    // Power-of-two bucket counts make `& (n-1)` a correct modulo for
    // negative virtual buckets too.
    return static_cast<size_t>(vb &
                               (static_cast<int64_t>(buckets_.size()) - 1));
  }

  int64_t VirtualBucket(double time) const {
    // Clamped so the cast is always defined; everything beyond the clamp
    // collapses into one far-future (or far-past) virtual bucket, where the
    // in-bucket (time, sequence) sort still orders it exactly.
    constexpr double kClamp = 4.0e15;
    const double vb = std::floor(time / width_);
    if (vb >= kClamp) return static_cast<int64_t>(kClamp);
    if (vb <= -kClamp) return -static_cast<int64_t>(kClamp);
    return static_cast<int64_t>(vb);
  }

  int64_t& Cursor(size_t index) const {
    if (cursor_epoch_[index] != scan_epoch_) {
      cursor_epoch_[index] = scan_epoch_;
      cursor_[index] = static_cast<int64_t>(buckets_[index].size());
    }
    return cursor_[index];
  }

  // Earliest pending event; advances the cached scan position (a pure
  // cache — mutating it never changes pop order).
  const SimEvent* PeekNext() const {
    NETMAX_CHECK_GT(size_, 0);
    int64_t vb = current_virtual_bucket_;
    for (size_t lap = 0; lap <= buckets_.size(); ++lap, ++vb) {
      const std::vector<SimEvent>& bucket = buckets_[BucketIndex(vb)];
      if (!bucket.empty() && VirtualBucket(bucket.back().time) <= vb) {
        current_virtual_bucket_ = vb;
        return &bucket.back();
      }
    }
    const SimEvent* best = nullptr;
    for (const std::vector<SimEvent>& bucket : buckets_) {
      if (!bucket.empty() &&
          (best == nullptr || bucket.back().DispatchesBefore(*best))) {
        best = &bucket.back();
      }
    }
    current_virtual_bucket_ = VirtualBucket(best->time);
    return best;
  }

  // Re-derives the bucket width from the live contents (targeting ~two
  // events per bucket-window) and redistributes into `bucket_count` buckets.
  // Deterministic: inputs are the pending events only.
  void Recalibrate(int64_t bucket_count) {
    scratch_.clear();
    for (std::vector<SimEvent>& bucket : buckets_) {
      for (SimEvent& event : bucket) scratch_.push_back(std::move(event));
      bucket.clear();
    }
    if (static_cast<int64_t>(buckets_.size()) < bucket_count) {
      buckets_.resize(static_cast<size_t>(bucket_count));
    }
    if (scratch_.empty()) return;
    double t_min = scratch_.front().time;
    double t_max = t_min;
    for (const SimEvent& event : scratch_) {
      t_min = std::min(t_min, event.time);
      t_max = std::max(t_max, event.time);
    }
    const double span = t_max - t_min;
    double width =
        span > 0.0 ? 2.0 * span / static_cast<double>(scratch_.size())
                   : width_;
    // Floors keep VirtualBucket well inside the clamp for the live times
    // and away from degenerate zero width.
    width = std::max({width, std::abs(t_max) / 4.0e15,
                      std::abs(t_min) / 4.0e15, 1e-9});
    width_ = width;
    current_virtual_bucket_ = VirtualBucket(t_min);
    for (SimEvent& event : scratch_) {
      std::vector<SimEvent>& bucket =
          buckets_[BucketIndex(VirtualBucket(event.time))];
      const auto position =
          std::upper_bound(bucket.begin(), bucket.end(), event, PopsAfter);
      bucket.insert(position, std::move(event));
    }
    scratch_.clear();
  }

  std::vector<std::vector<SimEvent>> buckets_;
  std::vector<SimEvent> scratch_;  // Recalibrate staging, grow-only
  double width_ = 1.0;
  int64_t size_ = 0;
  // Scan position: no pending event has a virtual bucket below this.
  mutable int64_t current_virtual_bucket_ = 0;
  // VisitInOrder cursor state (see above).
  mutable std::vector<int64_t> cursor_;
  mutable std::vector<uint64_t> cursor_epoch_;
  mutable uint64_t scan_epoch_ = 0;
};

// --- pairing heap -----------------------------------------------------------
// Fredman/Sedgewick/Sleator/Tarjan's pairing heap over an index-linked node
// pool: each node holds its event plus first-child / next-sibling indices,
// popped nodes go onto a free list, so steady-state push/pop touches no
// heap memory once the pool is warm. Push is a single comparison (merge with
// the root); pop detaches the root's child list and rebuilds it with the
// classic two-pass pairing (merge adjacent pairs left to right, then fold
// the pair winners right to left).
//
// Determinism: the comparator is DispatchesBefore — a strict total order
// (sequences are unique) — and both merge passes visit children in their
// stored list order, so the tree shape after any operation sequence is a
// pure function of the pushed events. Pop order is therefore bit-identical
// to the sorted vector's, ties included.
//
// VisitInOrder walks the heap-ordered tree with an auxiliary index heap:
// a node's parent always dispatches before it, so once every visited node's
// children join the frontier, the frontier always contains the earliest
// unvisited event. (Pushing ALL children of a visited node matters: siblings
// are mutually unordered, so the binary-tree walk the array heap uses would
// visit a later sibling too early.)
class PairingHeapEventQueue final : public EventQueue {
 public:
  std::string_view name() const override { return "pairing"; }
  EventQueueKind kind() const override { return EventQueueKind::kPairingHeap; }

  void Push(SimEvent event) override {
    int32_t node;
    if (!free_.empty()) {
      node = free_.back();
      free_.pop_back();
      nodes_[static_cast<size_t>(node)].event = std::move(event);
    } else {
      node = static_cast<int32_t>(nodes_.size());
      nodes_.push_back(Node{std::move(event), -1, -1});
    }
    Node& n = nodes_[static_cast<size_t>(node)];
    n.child = -1;
    n.sibling = -1;
    root_ = root_ < 0 ? node : Merge(root_, node);
    ++size_;
  }

  SimEvent PopNext() override {
    NETMAX_CHECK_GE(root_, 0);
    const int32_t old_root = root_;
    SimEvent event = std::move(nodes_[static_cast<size_t>(old_root)].event);
    // Two-pass pairing: merge adjacent child pairs in list order...
    pairs_.clear();
    int32_t child = nodes_[static_cast<size_t>(old_root)].child;
    while (child >= 0) {
      const int32_t next = nodes_[static_cast<size_t>(child)].sibling;
      nodes_[static_cast<size_t>(child)].sibling = -1;
      if (next < 0) {
        pairs_.push_back(child);
        break;
      }
      const int32_t rest = nodes_[static_cast<size_t>(next)].sibling;
      nodes_[static_cast<size_t>(next)].sibling = -1;
      pairs_.push_back(Merge(child, next));
      child = rest;
    }
    // ...then fold the winners right to left.
    int32_t new_root = -1;
    for (auto it = pairs_.rbegin(); it != pairs_.rend(); ++it) {
      new_root = new_root < 0 ? *it : Merge(*it, new_root);
    }
    root_ = new_root;
    free_.push_back(old_root);
    --size_;
    return event;
  }

  double NextTime() const override {
    NETMAX_CHECK_GE(root_, 0);
    return nodes_[static_cast<size_t>(root_)].event.time;
  }

  int64_t size() const override { return size_; }

  void Clear() override {
    // Indices into nodes_ die with it; capacity of all three vectors stays.
    nodes_.clear();
    free_.clear();
    pairs_.clear();
    root_ = -1;
    size_ = 0;
  }

  void VisitInOrder(int64_t max_visit, const Visitor& visit) const override {
    if (root_ < 0 || max_visit <= 0) return;
    const auto later = [this](int32_t a, int32_t b) {
      return nodes_[static_cast<size_t>(b)].event.DispatchesBefore(
          nodes_[static_cast<size_t>(a)].event);
    };
    scan_.clear();
    scan_.push_back(root_);
    int64_t visited = 0;
    while (!scan_.empty() && visited < max_visit) {
      std::pop_heap(scan_.begin(), scan_.end(), later);
      const int32_t index = scan_.back();
      scan_.pop_back();
      const Node& node = nodes_[static_cast<size_t>(index)];
      if (visit(node.event) == VisitAction::kStop) return;
      ++visited;
      for (int32_t child = node.child; child >= 0;
           child = nodes_[static_cast<size_t>(child)].sibling) {
        scan_.push_back(child);
        std::push_heap(scan_.begin(), scan_.end(), later);
      }
    }
  }

 private:
  struct Node {
    SimEvent event;
    int32_t child = -1;    // first child, -1 none
    int32_t sibling = -1;  // next sibling in the parent's child list
  };

  // Links the loser as the winner's first child; returns the winner. The
  // comparator's strict total order makes the winner unambiguous.
  int32_t Merge(int32_t a, int32_t b) {
    if (nodes_[static_cast<size_t>(b)].event.DispatchesBefore(
            nodes_[static_cast<size_t>(a)].event)) {
      std::swap(a, b);
    }
    nodes_[static_cast<size_t>(b)].sibling =
        nodes_[static_cast<size_t>(a)].child;
    nodes_[static_cast<size_t>(a)].child = b;
    return a;
  }

  std::vector<Node> nodes_;
  std::vector<int32_t> free_;            // reusable node indices
  std::vector<int32_t> pairs_;           // PopNext first-pass scratch
  mutable std::vector<int32_t> scan_;    // VisitInOrder frontier scratch
  int32_t root_ = -1;
  int64_t size_ = 0;
};

}  // namespace

StatusOr<EventQueueKind> ParseEventQueueKind(std::string_view text) {
  if (text == "vector") return EventQueueKind::kSortedVector;
  if (text == "heap") return EventQueueKind::kBinaryHeap;
  if (text == "calendar") return EventQueueKind::kCalendar;
  if (text == "pairing") return EventQueueKind::kPairingHeap;
  return InvalidArgumentError(
      "unknown event queue '" + std::string(text) +
      "' (expected vector, heap, calendar, or pairing)");
}

std::string_view EventQueueKindName(EventQueueKind kind) {
  switch (kind) {
    case EventQueueKind::kSortedVector:
      return "vector";
    case EventQueueKind::kBinaryHeap:
      return "heap";
    case EventQueueKind::kCalendar:
      return "calendar";
    case EventQueueKind::kPairingHeap:
      return "pairing";
  }
  NETMAX_CHECK(false) << "unreachable";
  return "";
}

std::unique_ptr<EventQueue> MakeEventQueue(EventQueueKind kind) {
  switch (kind) {
    case EventQueueKind::kSortedVector:
      return std::make_unique<SortedVectorEventQueue>();
    case EventQueueKind::kBinaryHeap:
      return std::make_unique<BinaryHeapEventQueue>();
    case EventQueueKind::kCalendar:
      return std::make_unique<CalendarEventQueue>();
    case EventQueueKind::kPairingHeap:
      return std::make_unique<PairingHeapEventQueue>();
  }
  NETMAX_CHECK(false) << "unreachable";
  return nullptr;
}

}  // namespace netmax::net
