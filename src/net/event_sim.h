#ifndef NETMAX_NET_EVENT_SIM_H_
#define NETMAX_NET_EVENT_SIM_H_

// Deterministic discrete-event simulator with a virtual clock.
//
// All decentralized-training algorithms in this repo run inside this
// simulator: compute and communication delays are scheduled as events, so
// "iteration time = max{compute, communication}" (paper Section II-B) and the
// asynchrony between workers fall out of the event ordering. Ties in event
// time are broken by insertion order, which makes every run bit-reproducible.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/logging.h"

namespace netmax::net {

class EventSimulator {
 public:
  using Callback = std::function<void()>;

  EventSimulator() = default;
  EventSimulator(const EventSimulator&) = delete;
  EventSimulator& operator=(const EventSimulator&) = delete;

  // Current virtual time in seconds.
  double Now() const { return now_; }

  // Schedules `callback` at absolute virtual time `time` (>= Now()).
  void ScheduleAt(double time, Callback callback);

  // Schedules `callback` `delay` seconds from now (delay >= 0).
  void ScheduleAfter(double delay, Callback callback);

  // Pops and runs the earliest event. Returns false when no events remain.
  bool Step();

  // Runs events until the queue is empty or the next event is later than
  // `time_limit`; advances Now() to min(time of last event, time_limit).
  // Returns the number of events processed.
  int64_t RunUntil(double time_limit);

  // Runs until no events remain. Returns the number of events processed.
  int64_t RunUntilIdle();

  bool empty() const { return queue_.empty(); }
  int64_t num_events_processed() const { return processed_; }

 private:
  struct Event {
    double time;
    int64_t sequence;  // tie-breaker: FIFO among equal times
    Callback callback;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  double now_ = 0.0;
  int64_t next_sequence_ = 0;
  int64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace netmax::net

#endif  // NETMAX_NET_EVENT_SIM_H_
