#ifndef NETMAX_NET_EVENT_SIM_H_
#define NETMAX_NET_EVENT_SIM_H_

// Deterministic discrete-event simulator with a virtual clock and a two-phase
// compute/commit event model.
//
// All decentralized-training algorithms in this repo run inside this
// simulator: compute and communication delays are scheduled as events, so
// "iteration time = max{compute, communication}" (paper Section II-B) and the
// asynchrony between workers fall out of the event ordering. Ties in event
// time are broken by insertion order, which makes every run bit-reproducible.
//
// Events come in two kinds:
//
//  * Plain events (ScheduleAt/ScheduleAfter): an opaque callback, always run
//    on the simulator thread in (time, sequence) order.
//  * Compute events (ScheduleCompute): a pure `compute` half paired with a
//    `commit` half. The compute half may touch ONLY the state owned by its
//    `worker_key` (model parameters read-only, gradient/workspace scratch
//    read-write) plus immutable shared state; it must not query Now(), draw
//    random numbers, or write anything another worker's compute reads. The
//    commit half runs on the simulator thread, strictly in (time, sequence)
//    order, and receives the compute half's result; all bookkeeping, RNG
//    draws, parameter updates, and scheduling of follow-up events belong
//    there.
//
// When a ThreadPool is attached (set_thread_pool), RunUntilIdle dispatches in
// frontier batches: it collects the longest prefix of pending compute events
// with pairwise-distinct worker keys, runs their compute halves concurrently
// on the pool, then applies every event — plain callbacks, the speculated
// commits, and anything commits schedule in between — in exact (time,
// sequence) order. Speculation is kept sound by write tracking: any callback
// or commit that writes state some compute half might read MUST call
// NotifyStateWrite(worker_key) for the owning key, BEFORE performing the
// write; a pending speculation on a dirty key is discarded. Results are
// therefore bit-identical to the serial dispatch (no pool attached) for any
// thread count.
//
// Discarded speculations are not recomputed inline: once the invalidating
// handler returns, the stale compute halves are RE-DISPATCHED onto the pool
// (a second speculation pass, submitted in (time, sequence) order of their
// events), so the recompute overlaps the ordered drain of the remaining
// events instead of stalling it. A re-dispatched compute reads its worker's
// state as of the invalidating handler's completion; if no later handler
// dirties the key again before the event's turn, that is exactly the state
// an inline recompute would have read, so the value is used as-is. A second
// NotifyStateWrite on the same key first waits for the in-flight re-dispatch
// (keeping the notify-before-write contract race-free), discards its value,
// and triggers another re-dispatch — invalidation any number of times deep
// stays sound and ordered.
//
// One asymmetry to respect: a speculated compute half's scratch writes (the
// worker's gradient buffer, workspace) land at frontier-formation time,
// possibly before earlier-ordered events run. While a worker has a compute
// event pending, no OTHER event may read that worker's scratch — only the
// paired commit (and events it schedules afterwards, e.g. a parameter-server
// upload consuming the gradient) may. Engines satisfy this naturally by
// keeping at most one outstanding compute event per worker and consuming
// scratch only downstream of its commit; new engines must preserve it.

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/logging.h"

namespace netmax {
class ThreadPool;
}  // namespace netmax

namespace netmax::net {

class EventSimulator {
 public:
  using Callback = std::function<void()>;
  // Compute half: returns a scalar payload (engines return the batch loss)
  // that is handed to the paired commit half.
  using ComputeFn = std::function<double()>;
  using CommitFn = std::function<void(double)>;

  EventSimulator() = default;
  EventSimulator(const EventSimulator&) = delete;
  EventSimulator& operator=(const EventSimulator&) = delete;

  // Current virtual time in seconds.
  double Now() const { return now_; }

  // Schedules `callback` at absolute virtual time `time` (>= Now()).
  void ScheduleAt(double time, Callback callback);

  // Schedules `callback` `delay` seconds from now (delay >= 0).
  void ScheduleAfter(double delay, Callback callback);

  // Schedules a two-phase compute/commit event at absolute virtual time
  // `time` (>= Now()). `worker_key` (>= 0) names the state partition the
  // compute half touches; at most one compute event per key joins a parallel
  // frontier, and a same-key duplicate ends the frontier scan, so adversarial
  // interleavings degrade to serial order instead of racing.
  void ScheduleCompute(double time, int worker_key, ComputeFn compute,
                       CommitFn commit);

  // Relative-time convenience (delay >= 0).
  void ScheduleComputeAfter(double delay, int worker_key, ComputeFn compute,
                            CommitFn commit);

  // Declares that the caller (an event callback or commit half) is ABOUT to
  // write state owned by `worker_key` that a compute half may read — model
  // parameters, chiefly; the call must precede the write. Invalidates any
  // not-yet-committed speculation for that key (the compute half is
  // re-dispatched onto the pool after the current handler returns) and, when
  // a re-dispatched compute for the key is still in flight, blocks until it
  // finishes so the caller's write cannot race its reads. Redundant calls
  // (own key, keys without pending computes) are harmless; forgetting a call
  // breaks parallel determinism, so write sites should over- rather than
  // under-notify.
  void NotifyStateWrite(int worker_key);

  // Attaches the pool used for parallel compute dispatch; nullptr (default)
  // keeps the fully serial path. The pool is borrowed, not owned, and must
  // outlive the simulator (or be detached first). The calling thread of
  // RunUntilIdle participates in each compute phase.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* thread_pool() const { return pool_; }

  // Pops and runs the earliest event (compute half inline unless a valid
  // speculation exists, then commit). Returns false when no events remain.
  bool Step();

  // Runs events until the queue is empty or the next event is later than
  // `time_limit`; advances Now() to min(time of last event, time_limit).
  // Returns the number of events processed. Always serial dispatch.
  int64_t RunUntil(double time_limit);

  // Runs until no events remain, in frontier batches when a pool is
  // attached. Returns the number of events processed.
  int64_t RunUntilIdle();

  bool empty() const { return queue_.empty(); }
  int64_t num_events_processed() const { return processed_; }

  // Diagnostics for tests/benches: frontier batches dispatched, compute
  // halves executed on the pool in the first (frontier) pass, invalidated
  // speculations re-dispatched onto the pool in the second pass (double
  // invalidations re-count), and inline recomputes on the simulator thread —
  // a defensive fallback that is unreachable in the current design (every
  // invalidated pending speculation gets a re-dispatch entry), asserted to
  // stay zero by the determinism tests.
  int64_t parallel_batches() const { return parallel_batches_; }
  int64_t computes_speculated() const { return computes_speculated_; }
  int64_t computes_redispatched() const { return computes_redispatched_; }
  int64_t computes_recomputed() const { return computes_recomputed_; }

 private:
  static constexpr int kNoKey = -1;
  struct Event {
    double time = 0.0;
    int64_t sequence = 0;     // tie-breaker: FIFO among equal times
    int worker_key = kNoKey;  // kNoKey: plain callback event
    Callback plain;           // plain events only
    ComputeFn compute;        // compute events only
    CommitFn commit;          // compute events only
    bool speculated = false;
    double speculative_value = 0.0;

    // Dispatch-before: earlier time wins, sequence breaks ties.
    bool DispatchesBefore(const Event& other) const {
      if (time != other.time) return time < other.time;
      return sequence < other.sequence;
    }
  };

  // One invalidated compute half re-dispatched onto the pool for the second
  // speculation pass. Heap-allocated so the pooled task's writes target a
  // stable address while the event queue shifts under insertions; `done`
  // orders those writes before any read of `value` (and before any state
  // write by a second invalidator).
  struct Redispatch {
    double value = 0.0;
    bool invalidated = false;  // a later write dirtied the key again
    std::future<void> done;
  };

  void Insert(Event event);
  // One frontier batch: speculate the frontier's compute halves on the pool,
  // then drain events in order until every speculation is consumed. Returns
  // the number of events processed.
  int64_t ParallelDispatch();
  // Returns the pending speculated compute event for `worker_key`, or
  // nullptr. At most one exists: frontier keys are pairwise distinct.
  const Event* FindSpeculatedEvent(int worker_key) const;
  // Submits the second-pass recomputes queued by NotifyStateWrite during the
  // handler that just returned, in (time, sequence) order of their events.
  void FlushRedispatches();

  double now_ = 0.0;
  int64_t next_sequence_ = 0;
  int64_t processed_ = 0;
  // Pending events sorted by descending (time, sequence): the next event to
  // dispatch is at the back, so pops are O(1) and the in-order frontier scan
  // iterates backwards. Queue sizes are O(workers), which keeps the shifting
  // insert cheaper than a node-based container.
  std::vector<Event> queue_;
  ThreadPool* pool_ = nullptr;

  // Per-dispatch speculation state (see ParallelDispatch).
  std::unordered_set<int> dirty_keys_;
  int64_t pending_speculations_ = 0;
  // Second-pass state: keys whose speculation the current handler
  // invalidated (flushed to the pool right after it returns) and the
  // in-flight re-dispatches by key.
  std::vector<int> pending_redispatch_keys_;
  std::unordered_map<int, std::unique_ptr<Redispatch>> redispatches_;

  int64_t parallel_batches_ = 0;
  int64_t computes_speculated_ = 0;
  int64_t computes_redispatched_ = 0;
  int64_t computes_recomputed_ = 0;
};

}  // namespace netmax::net

#endif  // NETMAX_NET_EVENT_SIM_H_
