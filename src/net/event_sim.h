#ifndef NETMAX_NET_EVENT_SIM_H_
#define NETMAX_NET_EVENT_SIM_H_

// Deterministic discrete-event simulator with a virtual clock, a two-phase
// compute/commit event model, and a pluggable execution backend.
//
// All decentralized-training algorithms in this repo run inside this
// simulator: compute and communication delays are scheduled as events, so
// "iteration time = max{compute, communication}" (paper Section II-B) and the
// asynchrony between workers fall out of the event ordering. Ties in event
// time are broken by insertion order, which makes every run bit-reproducible.
//
// Events come in two kinds:
//
//  * Plain events (ScheduleAt/ScheduleAfter): an opaque callback, always run
//    on the simulator thread in (time, sequence) order.
//  * Compute events (ScheduleCompute): a pure `compute` half paired with a
//    `commit` half. The compute half may touch ONLY the state owned by its
//    `worker_key` (model parameters read-only, gradient/workspace scratch
//    read-write) plus immutable shared state; it must not query Now(), draw
//    random numbers, or write anything another worker's compute reads. The
//    commit half runs on the simulator thread, strictly in (time, sequence)
//    order, and receives the compute half's result; all bookkeeping, RNG
//    draws, parameter updates, and scheduling of follow-up events belong
//    there.
//
// The simulator owns the queue and the ordering contract only. HOW compute
// halves are evaluated relative to the strictly ordered commit drain is an
// ExecutionBackend decision (set_backend): run them inline at their turn
// (serial), speculate frontier batches of distinct-worker events on a
// ThreadPool behind a barrier (speculative), or pipeline them through a
// bounded reorder window with no barrier at all (async). Concrete backends
// live in core/execution_backend.h; with no backend attached the simulator
// dispatches fully serially.
//
// Every backend preserves the same soundness contract, so results are
// bit-identical across all of them: any callback or commit that writes state
// some compute half might read MUST call NotifyStateWrite(worker_key) for the
// owning key BEFORE performing the write. The simulator forwards the call to
// the backend, which discards (and later re-dispatches) any compute result it
// evaluated against the pre-write state, first waiting out an in-flight
// evaluation so the caller's write cannot race its reads.
//
// One asymmetry to respect: a dispatched compute half's scratch writes (the
// worker's gradient buffer, workspace) may land before earlier-ordered events
// run. While a worker has a compute event pending, no OTHER event may read
// that worker's scratch — only the paired commit (and events it schedules
// afterwards, e.g. a parameter-server upload consuming the gradient) may.
// Engines satisfy this naturally by keeping at most one outstanding compute
// event per worker and consuming scratch only downstream of its commit; new
// engines must preserve it.

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "net/event_queue.h"

namespace netmax::net {

class ExecutionBackend;

// --- Checkpointable event descriptions --------------------------------------
//
// Closures cannot be serialized, so checkpointing the queue relies on each
// engine tagging every event it schedules with a reified description (an
// EventPayload, defined beside SimEvent in event_queue.h): a small
// engine-defined `tag` naming the event kind plus the doubles its closure
// captured. At restore time the engine's rebuilder maps the saved
// description back to closures identical to the ones it schedules live.

// One pending event as captured by SaveQueue: full (time, sequence) identity
// plus the engine payload. Restoring with the exact saved sequence numbers is
// what keeps post-restore tie-breaking bit-identical to the original run.
struct SavedEvent {
  double time = 0.0;
  int64_t sequence = 0;
  int worker_key = -1;  // -1: plain callback event
  EventPayload payload;
};

// Closures rebuilt from one SavedEvent. Plain events (worker_key < 0) set
// only `plain`; compute events set `compute` and `commit`.
struct RebuiltEvent {
  SimEvent::Callback plain;
  SimEvent::ComputeFn compute;
  SimEvent::CommitFn commit;
};

// Maps a SavedEvent back to live closures; returns an error for unknown tags
// or malformed args (a corrupted or version-skewed checkpoint).
using EventRebuilder = std::function<StatusOr<RebuiltEvent>(const SavedEvent&)>;

// Diagnostics every backend reports (all zero on the serial path). Excluded
// from the bit-identity contract, which covers simulation outputs only;
// `window_stalls` is additionally timing-dependent (it counts real
// not-ready-yet waits), the other counters are deterministic per config.
struct ExecutionStats {
  // Dispatch bursts that put at least two compute halves in flight.
  int64_t parallel_batches = 0;
  // Compute halves evaluated ahead of their turn (frontier or window).
  int64_t computes_speculated = 0;
  // Invalidated speculations re-dispatched onto the pool after the
  // invalidating handler returned (double invalidations re-count).
  int64_t computes_redispatched = 0;
  // Inline recomputes of an invalidated speculation on the simulator thread —
  // a defensive fallback that is unreachable in the current backends (every
  // invalidated in-flight speculation gets a re-dispatch entry), asserted to
  // stay zero by the determinism tests.
  int64_t computes_recomputed = 0;
  // Async backend: commit drain reached a window entry whose compute had not
  // finished yet and had to wait (head-of-window stall).
  int64_t window_stalls = 0;
  // Async backend: the dispatch scan found a runnable compute half but the
  // reorder window was full (backpressure).
  int64_t window_backpressure = 0;
  // Async backend with --adaptive-window: times the reorder window was
  // re-sized in response to the backpressure/stall/re-dispatch counters
  // (real-timing dependent, like window_stalls).
  int64_t window_resizes = 0;
  // Process backend: forked children that died mid-run (each death also
  // surfaces as a typed Status on the backend) and the unfinished leaf
  // ranges re-dispatched to a surviving child (or computed by the parent
  // with no survivors left) because of those deaths. Both real-machine
  // dependent, like window_stalls; both zero on crash-free runs.
  int64_t process_child_deaths = 0;
  int64_t process_ranges_redispatched = 0;
};

class EventSimulator {
 public:
  // Inline-storage closures (see SimEvent / common/small_fn.h): scheduling
  // an event whose captures fit the inline capacity never allocates.
  using Callback = SimEvent::Callback;
  // Compute half: returns a scalar payload (engines return the batch loss)
  // that is handed to the paired commit half.
  using ComputeFn = SimEvent::ComputeFn;
  using CommitFn = SimEvent::CommitFn;

  EventSimulator();
  EventSimulator(const EventSimulator&) = delete;
  EventSimulator& operator=(const EventSimulator&) = delete;

  // Current virtual time in seconds.
  double Now() const { return now_; }

  // Schedules `callback` at absolute virtual time `time` (>= Now()).
  void ScheduleAt(double time, Callback callback);

  // Schedules `callback` `delay` seconds from now (delay >= 0).
  void ScheduleAfter(double delay, Callback callback);

  // Schedules a two-phase compute/commit event at absolute virtual time
  // `time` (>= Now()). `worker_key` (>= 0) names the state partition the
  // compute half touches; backends never evaluate two compute halves with the
  // same key concurrently, so adversarial same-key interleavings degrade to
  // serial order instead of racing.
  void ScheduleCompute(double time, int worker_key, ComputeFn compute,
                       CommitFn commit);

  // Relative-time convenience (delay >= 0).
  void ScheduleComputeAfter(double delay, int worker_key, ComputeFn compute,
                            CommitFn commit);

  // Tagged variants: identical scheduling semantics, but the event also
  // carries a checkpointable description (see EventPayload above). Engines
  // that support checkpoint/restore schedule exclusively through these.
  void ScheduleAt(double time, EventPayload payload, Callback callback);
  void ScheduleAfter(double delay, EventPayload payload, Callback callback);
  void ScheduleCompute(double time, int worker_key, EventPayload payload,
                       ComputeFn compute, CommitFn commit);
  void ScheduleComputeAfter(double delay, int worker_key, EventPayload payload,
                            ComputeFn compute, CommitFn commit);

  // Declares that the caller (an event callback or commit half) is ABOUT to
  // write state owned by `worker_key` that a compute half may read — model
  // parameters, chiefly; the call must precede the write. Forwarded to the
  // attached backend, which invalidates any not-yet-committed evaluation for
  // that key (re-dispatching it onto the pool after the current handler
  // returns) and blocks until an in-flight evaluation finishes so the
  // caller's write cannot race its reads. Redundant calls (own key, keys
  // without pending computes) are harmless; forgetting a call breaks parallel
  // determinism, so write sites should over- rather than under-notify. A
  // no-op without a backend (serial dispatch needs no write tracking).
  void NotifyStateWrite(int worker_key);

  // Attaches the execution backend RunUntilIdle delegates to; nullptr
  // (default) keeps the built-in fully serial dispatch. The backend is
  // borrowed, not owned, must outlive the simulator (or be detached first),
  // and must not be swapped while a run is in progress.
  void set_backend(ExecutionBackend* backend) { backend_ = backend; }
  ExecutionBackend* backend() const { return backend_; }

  // Swaps in a different priority-queue implementation (see event_queue.h).
  // Queue choice never changes simulation output — the (time, sequence)
  // order is a strict total order — only wall-clock scaling. Must be called
  // while the queue is empty (before scheduling, or after a completed run).
  void ReplaceQueue(std::unique_ptr<EventQueue> queue);
  EventQueueKind queue_kind() const { return queue_->kind(); }
  std::string_view queue_name() const { return queue_->name(); }

  // Pops and runs the earliest event fully serially (compute half inline on
  // this thread, then commit). Returns false when no events remain. Bypasses
  // the backend: callers driving the queue by hand get serial semantics.
  bool Step();

  // Runs events until the queue is empty or the next event is later than
  // `time_limit`; advances Now() to min(time of last event, time_limit).
  // Returns the number of events processed. Always serial dispatch.
  int64_t RunUntil(double time_limit);

  // Runs until no events remain, through the attached backend (serially when
  // none is attached). Returns the number of events processed.
  int64_t RunUntilIdle();

  bool empty() const { return queue_->empty(); }
  int64_t num_events_processed() const { return processed_; }
  int64_t next_sequence() const { return next_sequence_; }

  // --- halt (crash faults) -------------------------------------------------

  // Requests that the run stop at the current virtual time: the event whose
  // handler calls this is the last one applied. RunUntilIdle (both the serial
  // path and every backend) checks the flag after each handler, discards all
  // pending events, and returns; the clock stays at the halting event's time.
  // Deterministic by construction — the halting event has a fixed
  // (time, sequence) position, so every backend stops after the exact same
  // prefix of commits.
  void RequestHalt() { halt_requested_ = true; }
  bool halt_requested() const { return halt_requested_; }

  // Drops every pending event (halt path; backends must have discarded their
  // in-flight evaluations first — see ExecutionBackend::OnHalt).
  void ClearQueue() { queue_->Clear(); }

  // --- checkpoint support --------------------------------------------------

  // Snapshots the pending queue in dispatch order. Fails with
  // kFailedPrecondition if any pending event is untagged — the caller (an
  // engine that opted into checkpointing) scheduled an event outside the
  // tagged overloads.
  StatusOr<std::vector<SavedEvent>> SaveQueue() const;

  // Repopulates an EMPTY queue from `events`, mapping each through
  // `rebuilder`. Times and sequence numbers are restored exactly as saved
  // (bypassing Insert), so relative (time, sequence) ordering — and with it
  // every tie-break — replays bit-identically. Call RestoreClock first:
  // events are validated against the restored clock (time >= Now(),
  // sequence < next_sequence(), no duplicate sequences).
  Status RestoreQueue(const std::vector<SavedEvent>& events,
                      const EventRebuilder& rebuilder);

  // Restores the clock and counters saved alongside the queue.
  void RestoreClock(double now, int64_t next_sequence, int64_t processed);

  // Backend diagnostics (all zero without a backend). The individual
  // accessors are kept for the common counters; stats() has the full set.
  ExecutionStats execution_stats() const;
  int64_t parallel_batches() const {
    return execution_stats().parallel_batches;
  }
  int64_t computes_speculated() const {
    return execution_stats().computes_speculated;
  }
  int64_t computes_redispatched() const {
    return execution_stats().computes_redispatched;
  }
  int64_t computes_recomputed() const {
    return execution_stats().computes_recomputed;
  }

  // --- backend API ---------------------------------------------------------
  // The surface ExecutionBackend implementations drive the simulator
  // through. Engine code never calls these.

  // Lightweight view of one pending compute event. `sequence` is the stable
  // identity (unique, never reused); `compute` references the queue entry and
  // is only valid during the ScanPendingComputes visit — backends copy it
  // when they dispatch.
  struct PendingComputeView {
    double time = 0.0;
    int64_t sequence = 0;
    int worker_key = -1;
    const ComputeFn& compute;
  };
  enum class ScanAction { kContinue, kStop };

  // Visits pending compute events in dispatch order (earliest first),
  // skipping plain events, examining at most `max_scan` queue entries (plain
  // events count toward the cap). Stops early when `visit` returns kStop.
  void ScanPendingComputes(
      int64_t max_scan,
      const std::function<ScanAction(const PendingComputeView&)>& visit) const;

  // Value provider consulted when the earliest event is a compute event:
  // return true and set *value to commit a result the backend evaluated ahead
  // of time; return false to run the compute half inline on this thread
  // (plain events never consult it).
  using SpeculationProvider =
      std::function<bool(int64_t sequence, int worker_key, double* value)>;

  // Pops and applies the earliest event in (time, sequence) order, consulting
  // `provider` (may be null) for compute events. Returns false when no events
  // remain. The handler runs before this returns, so backends flush
  // invalidation re-dispatches right after the call.
  bool StepWith(const SpeculationProvider& provider);

 private:
  static constexpr int kNoKey = kNoWorkerKey;

  void Insert(SimEvent event);

  double now_ = 0.0;
  int64_t next_sequence_ = 0;
  int64_t processed_ = 0;
  bool halt_requested_ = false;
  // Pending events, behind the pluggable EventQueue seam. Defaults to the
  // sorted vector (fastest at the paper's O(10) worker scale); large-N runs
  // swap in the heap or calendar queue via ReplaceQueue.
  std::unique_ptr<EventQueue> queue_;
  ExecutionBackend* backend_ = nullptr;
};

// Strategy interface between the simulation schedule and how compute halves
// actually get evaluated. One backend instance drives one simulator run:
// RunUntilIdle alternates Dispatch (offer pending compute halves to the
// backend — inline, pooled frontier, bounded window, ...) with DrainCommits
// (apply at least one event in strict (time, sequence) order, consuming
// dispatched results through the SpeculationProvider). Concrete
// implementations and the selection plumbing live in
// core/execution_backend.h; the interface is declared here, beside the
// simulator it drives, because the net layer cannot depend on core.
//
// Contract for implementations:
//  * Commits and plain callbacks run on the simulator thread, strictly in
//    (time, sequence) order — only compute halves may run elsewhere.
//  * Never evaluate two compute halves with the same worker_key
//    concurrently, and never hold a result across a state write to its key:
//    OnStateWrite must wait out an in-flight evaluation of that key, discard
//    the result, and re-evaluate against post-write state (after the writing
//    handler returns). This is what makes results bit-identical to serial
//    dispatch for every backend.
class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  // Short stable identifier ("serial", "speculative", "async") used in
  // RunResult and bench tables.
  virtual std::string_view name() const = 0;

  // Offers pending compute halves to the backend ahead of the drain. Called
  // before every drain step; may do nothing.
  virtual void Dispatch(EventSimulator& sim) = 0;

  // Applies at least one pending event in order (typically via sim.StepWith)
  // and flushes any invalidation re-dispatches the handler queued. Returns
  // the number of events processed. Only called while the queue is
  // non-empty.
  virtual int64_t DrainCommits(EventSimulator& sim) = 0;

  // The notify-before-write contract, forwarded from
  // EventSimulator::NotifyStateWrite (see there).
  virtual void OnStateWrite(EventSimulator& sim, int worker_key) = 0;

  // Runs the simulator to completion: alternates Dispatch and DrainCommits
  // until the queue is empty, then checks the backend's end-of-run
  // invariants. Returns the number of events processed.
  int64_t RunUntilIdle(EventSimulator& sim);

  const ExecutionStats& stats() const { return stats_; }

 protected:
  // End-of-run invariant hook for RunUntilIdle (e.g. "the window is empty").
  virtual void OnIdle(EventSimulator& /*sim*/) {}

  // Halt hook for RunUntilIdle: the simulator requested a halt (a crash
  // fault), so the backend must wait out and discard every in-flight
  // evaluation — their pooled tasks reference engine state that the caller
  // is about to tear down — before the pending queue is cleared. Results
  // stay deterministic because discarded evaluations never committed.
  virtual void OnHalt(EventSimulator& /*sim*/) {}

  ExecutionStats stats_;
};

}  // namespace netmax::net

#endif  // NETMAX_NET_EVENT_SIM_H_
