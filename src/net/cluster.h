#ifndef NETMAX_NET_CLUSTER_H_
#define NETMAX_NET_CLUSTER_H_

// Cluster presets matching the paper's three experimental environments:
//
//  * Heterogeneous multi-tenant cluster (Section V-A): workers spread over
//    2-4 servers on 1000 Mbps Ethernet; intra-machine links are ~4x faster
//    per iteration than inter-machine links (Fig. 3), and one random link is
//    slowed 2x-100x with the slow link re-drawn every 5 minutes.
//  * Homogeneous cluster: all workers on one server behind a 10 Gbps virtual
//    switch.
//  * Cross-cloud WAN (Appendix G / Fig. 19): six EC2 regions with
//    distance-dependent latency and bandwidth, CPU-only instances.
//
// Link-class constants are calibrated so that the measured iteration times of
// Fig. 3 are reproduced (intra ~0.2 s / inter ~0.75 s for ResNet18, ~0.5 s /
// ~2.0 s for VGG19 with the max{C, N} iteration law); the paper's training
// stack overlaps and batches its transfers, so these are *effective* per-pull
// costs, not raw wire speeds. See EXPERIMENTS.md.

#include <memory>
#include <string>
#include <vector>

#include "net/link_model.h"

namespace netmax::net {

// Placement of workers on machines plus the two link classes.
struct ClusterConfig {
  int num_workers = 0;
  // machine_of_worker[w] = machine index hosting worker w.
  std::vector<int> machine_of_worker;
  LinkClass intra_machine;
  LinkClass inter_machine;

  int num_machines() const;
  bool SameMachine(int a, int b) const;
};

// Effective link classes used by the presets (exposed for tests/benches).
LinkClass IntraMachineLinkClass();
LinkClass InterMachineLinkClass();
LinkClass HomogeneousLinkClass();

// Paper Section V-A placement: 4, 8, 16 workers across 2, 3, 4 servers
// (near-even split). Any other count spreads over ceil(num_workers/4)
// servers.
ClusterConfig HeterogeneousCluster(int num_workers);

// Paper Section V-F placement: all workers split across exactly two servers
// (e.g. 8 workers as 4+4, 16 as 8+8).
ClusterConfig HeterogeneousClusterTwoServers(int num_workers);

// Single server, 10 Gbps virtual switch (Section V-A homogeneous setup).
ClusterConfig HomogeneousCluster(int num_workers);

// Static link model realizing `config` (intra/inter classes per placement).
std::unique_ptr<StaticLinkModel> BuildStaticLinkModel(
    const ClusterConfig& config);

// The paper's full heterogeneous environment: static placement plus the
// random 2x-100x slow link re-drawn every `options.change_period_seconds`.
std::unique_ptr<LinkModel> BuildDynamicHeterogeneousLinkModel(
    const ClusterConfig& config, DynamicSlowdownLinkModel::Options options);

// --- Cross-cloud WAN preset (Appendix G) ------------------------------------

// The six EC2 regions of Table VII, in worker order.
std::vector<std::string> CloudRegionNames();

// Pairwise WAN link model over the six regions: latency grows with
// geographic distance and effective TCP bandwidth shrinks with latency
// (up to ~12x spread, consistent with the paper's WAN motivation).
std::unique_ptr<StaticLinkModel> BuildCloudWanLinkModel();

}  // namespace netmax::net

#endif  // NETMAX_NET_CLUSTER_H_
