#ifndef NETMAX_NET_EVENT_QUEUE_H_
#define NETMAX_NET_EVENT_QUEUE_H_

// Pluggable priority queues behind EventSimulator.
//
// The simulator's ordering contract is a strict total order on
// (time, sequence): sequence numbers are unique, so ANY correct priority
// queue pops the exact same event stream — the queue choice affects
// wall-clock performance only, never simulation output. The determinism
// suite and the pinned golden traces hold every implementation here to that
// bit-identity standard, tie-breaks included.
//
// Four implementations, selectable per run (--event-queue):
//
//  * kSortedVector — a vector sorted by descending (time, sequence), next
//    event at the back. O(n) insert / O(1) pop; the fastest at the paper's
//    8-32 worker scale (PR 3 measured ~20% over a heap at 32 workers) and
//    the default.
//  * kBinaryHeap  — std::push_heap/pop_heap over a vector. O(log n)
//    insert+pop; the safe middle ground when n outgrows the vector.
//  * kCalendar    — a bucketed calendar queue (R. Brown, CACM 1988):
//    amortized O(1) insert+pop independent of n; the scale-frontier choice
//    at 10^5+ workers (see bench_scale_frontier / BENCH_scale.json).
//  * kPairingHeap — a pairing heap (Fredman et al. 1986) over a node pool
//    with free-list reuse: O(1) insert/merge, amortized O(log n) pop, and —
//    unlike kBinaryHeap — no O(log n) sift on every push, which favors the
//    push-heavy phases of large fleets. The comparator is the same strict
//    (time, sequence) order, so its merge shape is deterministic.
//
// All four keep their storage grow-only (Clear() and pops retain capacity),
// so steady-state push/pop performs no heap allocation once warm — the
// simulator-core half of the PR-2 zero-alloc workspace discipline
// (event closures are inline SmallFns, see common/small_fn.h).

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "common/small_fn.h"
#include "common/status.h"

namespace netmax::net {

// --- checkpointable event description ---------------------------------------
// Closures cannot be serialized, so checkpointing the queue relies on each
// engine tagging every event it schedules with a reified description: a
// small engine-defined `tag` naming the event kind plus the doubles its
// closure captured (see event_sim.h's SavedEvent/EventRebuilder).

struct EventPayload {
  // Engine-defined event kind; -1 marks an untagged event, which cannot be
  // checkpointed (SaveQueue fails if one is pending).
  int64_t tag = -1;
  // Engine-defined arguments (captured scalars; ints are stored exactly as
  // doubles up to 2^53).
  std::vector<double> args;
};

inline constexpr int kNoWorkerKey = -1;

// One pending simulator event. The closures are inline-storage SmallFns:
// every lambda the engines schedule fits the inline capacity, so moving an
// event through a queue never touches the heap.
struct SimEvent {
  using Callback = SmallFn<void()>;
  // Compute half: returns a scalar payload (engines return the batch loss)
  // that is handed to the paired commit half.
  using ComputeFn = SmallFn<double()>;
  using CommitFn = SmallFn<void(double)>;

  double time = 0.0;
  int64_t sequence = 0;         // tie-breaker: FIFO among equal times
  int worker_key = kNoWorkerKey;  // kNoWorkerKey: plain callback event
  Callback plain;               // plain events only
  ComputeFn compute;            // compute events only
  CommitFn commit;              // compute events only
  EventPayload payload;         // checkpointable description; tag -1 untagged

  // Dispatch-before: earlier time wins, sequence breaks ties.
  bool DispatchesBefore(const SimEvent& other) const {
    if (time != other.time) return time < other.time;
    return sequence < other.sequence;
  }
};

enum class EventQueueKind {
  kSortedVector,
  kBinaryHeap,
  kCalendar,
  kPairingHeap,
};

// "vector" | "heap" | "calendar" | "pairing"; an unknown name is an
// InvalidArgument error naming the accepted spellings.
StatusOr<EventQueueKind> ParseEventQueueKind(std::string_view text);
std::string_view EventQueueKindName(EventQueueKind kind);

// The queue contract EventSimulator drives. All operations assume the
// caller already assigned a unique `sequence` to each pushed event; PopNext
// and NextTime require a non-empty queue.
class EventQueue {
 public:
  enum class VisitAction { kContinue, kStop };
  using Visitor = std::function<VisitAction(const SimEvent&)>;

  virtual ~EventQueue() = default;

  // Short stable identifier ("vector", "heap", "calendar", "pairing") used
  // in diagnostics and bench tables.
  virtual std::string_view name() const = 0;
  virtual EventQueueKind kind() const = 0;

  virtual void Push(SimEvent event) = 0;

  // Removes and returns the event that DispatchesBefore all others.
  virtual SimEvent PopNext() = 0;

  // Time of the event PopNext would return.
  virtual double NextTime() const = 0;

  virtual int64_t size() const = 0;
  bool empty() const { return size() == 0; }

  // Drops all pending events but keeps storage capacity (halt path).
  virtual void Clear() = 0;

  // Visits up to `max_visit` pending events in dispatch order (earliest
  // first), stopping early when `visit` returns kStop. Non-destructive; the
  // reference passed to `visit` is only valid during that call.
  virtual void VisitInOrder(int64_t max_visit, const Visitor& visit) const = 0;
};

std::unique_ptr<EventQueue> MakeEventQueue(EventQueueKind kind);

}  // namespace netmax::net

#endif  // NETMAX_NET_EVENT_QUEUE_H_
