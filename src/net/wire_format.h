#ifndef NETMAX_NET_WIRE_FORMAT_H_
#define NETMAX_NET_WIRE_FORMAT_H_

// Wire format of one tensor message: how a model-sized payload is laid out on
// the wire, and — the part the simulator consumes — exactly how many bytes
// that layout costs. Engines used to charge a hand-waved per-message constant
// (ModelProfile::message_bytes()); with this layer every send reports bytes
// *derived* from the actual encoding, so compression variants change both the
// link-transfer seconds and the RunResult byte counters.
//
// Encodings:
//   kDenseF32   4 bytes per value, headerless — by construction identical to
//               ModelProfile::message_bytes(), the framing every
//               pre-compression run charged. Partial (layer-wise) messages are
//               dense f32 over the active values only; the layer schedule is
//               a deterministic function of the round, so no index bytes ride
//               along.
//   kDenseF64   8 bytes per value plus the header; the lossless reference
//               framing (round-trips bit-exactly, see Encode/Decode below).
//   kTopK       8 bytes per kept entry ({uint32 index, f32 value}) plus the
//               header.
//   kInt8Blocks 1 byte per value plus one f32 scale per 256-value block,
//               plus the header.
//
// The Encode*/Decode* functions below materialize real wire bytes in exactly
// the layout PayloadBytes() counts. The simulator never materializes
// payloads (it only needs the byte counts); the codec exists so the format is
// honest — wire_format_test round-trips every encoding and cross-checks the
// buffer sizes against the formulas.

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace netmax::net {

enum class WireEncoding {
  kDenseF32 = 0,
  kDenseF64 = 1,
  kTopK = 2,
  kInt8Blocks = 3,
};

const char* WireEncodingName(WireEncoding encoding);

// Values per quantization block: one f32 scale amortized over this many
// int8 values (~1.6% overhead).
inline constexpr int64_t kInt8BlockValues = 256;

// Non-dense-f32 framings carry a fixed header: uint32 encoding tag plus
// uint32 element count.
inline constexpr int64_t kWireHeaderBytes = 8;

// Descriptor of one message: the logical tensor size, the encoding, and how
// many values actually ride the wire (== num_values except for top-k and
// layer-wise partial messages). Byte counts are derived, never stored.
struct WireMessage {
  WireEncoding encoding = WireEncoding::kDenseF32;
  int64_t num_values = 0;      // logical tensor size
  int64_t encoded_values = 0;  // values on the wire (<= num_values)

  // Exact bytes this message occupies on the wire.
  int64_t PayloadBytes() const;

  // What the same tensor costs in the dense f32 baseline framing — the
  // pre-compression ModelProfile::message_bytes() number.
  int64_t DenseBaselineBytes() const { return 4 * num_values; }

  // Baseline minus payload; negative when an encoding's overhead exceeds its
  // savings on a tiny message.
  int64_t BytesSaved() const { return DenseBaselineBytes() - PayloadBytes(); }
};

// Descriptor factories. `encoded_values` of the partial dense message (and
// `kept` of the top-k one) must be in [0, num_values].
WireMessage DenseF32Message(int64_t num_values, int64_t encoded_values);
WireMessage DenseF64Message(int64_t num_values);
WireMessage TopKMessage(int64_t num_values, int64_t kept);
WireMessage Int8Message(int64_t num_values);

// One top-k wire entry: a flat index and the value rounded through f32.
struct TopKEntry {
  uint32_t index = 0;
  float value = 0.0f;
};

// --- Codec -------------------------------------------------------------------
// Each encoder returns a buffer of exactly WireMessage::PayloadBytes() bytes;
// each decoder rejects a malformed header or a size mismatch with
// kInvalidArgument. Multi-byte fields are little-endian.

// Lossless f64 framing: DecodeDenseF64(EncodeDenseF64(v)) == v bit for bit.
std::vector<uint8_t> EncodeDenseF64(std::span<const double> values);
StatusOr<std::vector<double>> DecodeDenseF64(std::span<const uint8_t> bytes);

// Sparse framing: `num_values` rides in the header so the decoder can size
// the dense result; kept entries decode bit-exactly (the f32 rounding
// happened before encoding).
std::vector<uint8_t> EncodeTopK(int64_t num_values,
                                std::span<const TopKEntry> entries);
struct TopKPayload {
  int64_t num_values = 0;
  std::vector<TopKEntry> entries;
};
StatusOr<TopKPayload> DecodeTopK(std::span<const uint8_t> bytes);

// Quantized framing: the caller supplies already-quantized levels in
// [-127, 127] plus one scale per kInt8BlockValues block
// (scales.size() == ceil(levels.size() / kInt8BlockValues)). The decoder
// returns level * scale per value, bit-exact against the same product
// computed by the quantizer.
std::vector<uint8_t> EncodeInt8Blocks(std::span<const int8_t> levels,
                                      std::span<const float> scales);
struct Int8Payload {
  std::vector<int8_t> levels;
  std::vector<float> scales;
  std::vector<double> Dequantized() const;
};
StatusOr<Int8Payload> DecodeInt8Blocks(std::span<const uint8_t> bytes);

}  // namespace netmax::net

#endif  // NETMAX_NET_WIRE_FORMAT_H_
