#ifndef NETMAX_NET_LINK_MODEL_H_
#define NETMAX_NET_LINK_MODEL_H_

// Per-pair network cost models.
//
// A LinkModel answers one question: how long does it take to pull `bytes`
// from node `src` to node `dst` starting at virtual time `now`? Costs follow
// the classic latency + bytes/bandwidth law. DynamicSlowdownLinkModel wraps
// any base model and reproduces the paper's Section V-A protocol: every
// change period, one randomly chosen link is slowed by a random 2x-100x
// factor (the factor and link are deterministic functions of the seed and the
// period index, so runs are reproducible and the "network condition at time
// T1 vs T2" dynamics of Fig. 2 are exercised).

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/random.h"

namespace netmax::net {

// One direction of a link: transfer time = latency + bytes / bandwidth.
// The zero-bandwidth default marks a link as unconfigured; StaticLinkModel
// refuses to route over such links.
struct LinkClass {
  double latency_seconds = 0.0;
  double bandwidth_bytes_per_second = 0.0;

  double TransferSeconds(int64_t bytes) const {
    return latency_seconds +
           static_cast<double>(bytes) / bandwidth_bytes_per_second;
  }
};

class LinkModel {
 public:
  virtual ~LinkModel() = default;

  virtual int num_nodes() const = 0;

  // Seconds to move `bytes` from `src` to `dst` starting at time `now`.
  // Zero when src == dst.
  virtual double TransferSeconds(int src, int dst, double now,
                                 int64_t bytes) const = 0;
};

// Time-invariant pairwise link classes (symmetric by default via SetLink).
class StaticLinkModel : public LinkModel {
 public:
  explicit StaticLinkModel(int num_nodes);

  // Sets both directions of {a, b}.
  void SetLink(int a, int b, LinkClass link);

  // Sets one direction a -> b only (asymmetric links, e.g. WAN).
  void SetDirectedLink(int a, int b, LinkClass link);

  // Sets every off-diagonal pair.
  void SetAll(LinkClass link);

  const LinkClass& link(int src, int dst) const;

  int num_nodes() const override { return num_nodes_; }
  double TransferSeconds(int src, int dst, double now,
                         int64_t bytes) const override;

 private:
  int num_nodes_;
  std::vector<LinkClass> links_;  // row-major src * n + dst
};

// Two-class link model driven by cluster membership: pairs inside the same
// cluster use the intra class, pairs in different clusters the inter class.
// O(1) memory at any node count — the scale companion to
// Topology::Hierarchical, where StaticLinkModel's O(n^2) table would dominate
// a 10^5-worker run (see net/topology.h for the cluster arithmetic).
class HierarchicalLinkModel : public LinkModel {
 public:
  HierarchicalLinkModel(int num_nodes, int cluster_size, LinkClass intra,
                        LinkClass inter);

  int num_nodes() const override { return num_nodes_; }
  int cluster_size() const { return cluster_size_; }
  double TransferSeconds(int src, int dst, double now,
                         int64_t bytes) const override;

 private:
  int num_nodes_;
  int cluster_size_;
  LinkClass intra_;
  LinkClass inter_;
};

// Wraps a base model; in every window of `change_period_seconds` one random
// unordered pair of nodes is slowed by a factor drawn uniformly from
// [min_factor, max_factor] (paper Section V-A: 2x to 100x, re-drawn every 5
// minutes).
class DynamicSlowdownLinkModel : public LinkModel {
 public:
  struct Options {
    double change_period_seconds = 300.0;
    double min_factor = 2.0;
    double max_factor = 100.0;
    uint64_t seed = 1;
  };

  DynamicSlowdownLinkModel(std::unique_ptr<LinkModel> base, Options options);

  int num_nodes() const override { return base_->num_nodes(); }
  double TransferSeconds(int src, int dst, double now,
                         int64_t bytes) const override;

  // The unordered pair slowed during the window containing `now`.
  std::pair<int, int> SlowedLinkAt(double now) const;
  // The slowdown factor during the window containing `now`.
  double SlowdownFactorAt(double now) const;

  const Options& options() const { return options_; }

 private:
  int64_t PeriodIndex(double now) const;
  // Deterministic per-period RNG.
  Rng PeriodRng(int64_t period) const;

  std::unique_ptr<LinkModel> base_;
  Options options_;
};

}  // namespace netmax::net

#endif  // NETMAX_NET_LINK_MODEL_H_
