#include "net/cluster.h"

#include <algorithm>

#include "common/logging.h"

namespace netmax::net {

int ClusterConfig::num_machines() const {
  int machines = 0;
  for (int m : machine_of_worker) machines = std::max(machines, m + 1);
  return machines;
}

bool ClusterConfig::SameMachine(int a, int b) const {
  NETMAX_CHECK(a >= 0 && a < num_workers);
  NETMAX_CHECK(b >= 0 && b < num_workers);
  return machine_of_worker[static_cast<size_t>(a)] ==
         machine_of_worker[static_cast<size_t>(b)];
}

LinkClass IntraMachineLinkClass() {
  // Calibrated against Fig. 3 intra-machine iteration times (see header).
  return LinkClass{/*latency_seconds=*/0.170,
                   /*bandwidth_bytes_per_second=*/1.76e9};
}

LinkClass InterMachineLinkClass() {
  // Calibrated against Fig. 3 inter-machine iteration times (see header).
  return LinkClass{/*latency_seconds=*/0.639,
                   /*bandwidth_bytes_per_second=*/4.22e8};
}

LinkClass HomogeneousLinkClass() {
  // 10 Gbps virtual switch, small software latency.
  return LinkClass{/*latency_seconds=*/0.060,
                   /*bandwidth_bytes_per_second=*/1.25e9};
}

namespace {

ClusterConfig SpreadOverServers(int num_workers, int num_servers) {
  NETMAX_CHECK_GT(num_workers, 0);
  NETMAX_CHECK_GT(num_servers, 0);
  ClusterConfig config;
  config.num_workers = num_workers;
  config.machine_of_worker.resize(static_cast<size_t>(num_workers));
  // Near-even split: first (num_workers % num_servers) servers get one extra.
  const int base = num_workers / num_servers;
  const int extra = num_workers % num_servers;
  int worker = 0;
  for (int s = 0; s < num_servers; ++s) {
    const int count = base + (s < extra ? 1 : 0);
    for (int k = 0; k < count; ++k) {
      config.machine_of_worker[static_cast<size_t>(worker++)] = s;
    }
  }
  config.intra_machine = IntraMachineLinkClass();
  config.inter_machine = InterMachineLinkClass();
  return config;
}

}  // namespace

ClusterConfig HeterogeneousCluster(int num_workers) {
  // Paper Section V-A: "we run 4, 8 and 16 worker nodes across 2, 3 and 4
  // servers, respectively."
  int num_servers;
  switch (num_workers) {
    case 4:
      num_servers = 2;
      break;
    case 8:
      num_servers = 3;
      break;
    case 16:
      num_servers = 4;
      break;
    default:
      num_servers = std::max(2, (num_workers + 3) / 4);
      break;
  }
  return SpreadOverServers(num_workers, num_servers);
}

ClusterConfig HeterogeneousClusterTwoServers(int num_workers) {
  return SpreadOverServers(num_workers, 2);
}

ClusterConfig HomogeneousCluster(int num_workers) {
  ClusterConfig config = SpreadOverServers(num_workers, 1);
  config.intra_machine = HomogeneousLinkClass();
  config.inter_machine = HomogeneousLinkClass();
  return config;
}

std::unique_ptr<StaticLinkModel> BuildStaticLinkModel(
    const ClusterConfig& config) {
  NETMAX_CHECK_EQ(static_cast<int>(config.machine_of_worker.size()),
                  config.num_workers);
  auto model = std::make_unique<StaticLinkModel>(config.num_workers);
  for (int a = 0; a < config.num_workers; ++a) {
    for (int b = a + 1; b < config.num_workers; ++b) {
      model->SetLink(a, b, config.SameMachine(a, b) ? config.intra_machine
                                                    : config.inter_machine);
    }
  }
  return model;
}

std::unique_ptr<LinkModel> BuildDynamicHeterogeneousLinkModel(
    const ClusterConfig& config, DynamicSlowdownLinkModel::Options options) {
  return std::make_unique<DynamicSlowdownLinkModel>(
      BuildStaticLinkModel(config), options);
}

std::vector<std::string> CloudRegionNames() {
  return {"us-west", "us-east", "ireland", "mumbai", "singapore", "tokyo"};
}

std::unique_ptr<StaticLinkModel> BuildCloudWanLinkModel() {
  // Round-trip latencies (seconds) between the six regions, ordered as
  // CloudRegionNames(). Values reflect public inter-region measurements; the
  // spread (60 ms .. 230 ms) covers the paper's up-to-12x WAN heterogeneity.
  const int n = 6;
  const double rtt[6][6] = {
      // usw    use    irl    mum    sgp    tyo
      {0.000, 0.070, 0.130, 0.230, 0.170, 0.100},  // us-west
      {0.070, 0.000, 0.080, 0.190, 0.230, 0.160},  // us-east
      {0.130, 0.080, 0.000, 0.120, 0.180, 0.210},  // ireland
      {0.230, 0.190, 0.120, 0.000, 0.060, 0.120},  // mumbai
      {0.170, 0.230, 0.180, 0.060, 0.000, 0.070},  // singapore
      {0.100, 0.160, 0.210, 0.120, 0.070, 0.000},  // tokyo
  };
  auto model = std::make_unique<StaticLinkModel>(n);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      // Effective single-stream TCP throughput decays with RTT
      // (~ window / RTT); 3e7 bytes*seconds of window yields 430 MB/s at
      // 70 ms down to 130 MB/s at 230 ms... scaled to c5.4xlarge reality:
      const double bandwidth = 3.0e6 / rtt[a][b];  // bytes/s
      model->SetLink(a, b, LinkClass{rtt[a][b], bandwidth});
    }
  }
  return model;
}

}  // namespace netmax::net
