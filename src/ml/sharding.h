#ifndef NETMAX_ML_SHARDING_H_
#define NETMAX_ML_SHARDING_H_

// Intra-worker gradient sharding: one worker's minibatch evaluated as
// several deterministic shards, combinable across any number of threads.
//
// The batched LossAndGradient of every model is defined over a FIXED leaf
// decomposition of the batch: contiguous chunks of kGradientLeafSamples
// samples (the last leaf takes the remainder). Each leaf produces an
// unscaled partial — the loss sum and, when requested, the gradient sum over
// its samples — and the partials are combined by a fixed-shape pairwise tree
// reduction, then scaled by 1/batch once. Because the leaf geometry and the
// tree shape depend only on the batch size (never on the shard or thread
// count), the summed gradient is bit-identical whether the leaves are
// evaluated serially in one call or spread over any number of concurrent
// shard tasks: sharding changes WHO computes a leaf, never WHAT is summed in
// which order. Batches of at most kGradientLeafSamples samples degenerate to
// a single leaf, i.e. exactly the pre-sharding whole-batch arithmetic.
//
// ShardedLossAndGradient below is the one driver of that contract: the
// serial model overloads call it without a pool, and the experiment
// harness's EvalBatchGradient calls it with the simulation pool and the
// config's `shards` knob, nested inside the distinct-worker compute
// frontier (common/thread_pool.h ParallelFor nests safely).

#include <cstddef>
#include <span>

namespace netmax {
class ThreadPool;
}  // namespace netmax

namespace netmax::ml {

class Dataset;
class Model;
class TrainingWorkspace;

// Samples per gradient leaf. A compile-time constant by design: the leaf
// geometry is part of the numeric contract, so a runtime knob here would
// silently change every result bit.
inline constexpr size_t kGradientLeafSamples = 8;

// Gradient width (in doubles) above which the pairwise tree reduction of the
// leaf partials itself fans out on the pool: the tree is element-wise across
// the parameter axis, so the columns split into contiguous chunks that each
// run the full fixed-shape tree independently — same adds, same order, per
// element, therefore bit-identical to the serial combine for any chunking.
// Below the threshold the combine stays serial (the fan-out overhead would
// dominate). Compile-time constant for the same reason as the leaf size:
// it must never look like a result-affecting knob (it is not — only the
// real-time cost changes).
inline constexpr size_t kPooledReduceMinWidth = 1 << 14;

// Number of leaves in the fixed decomposition of a `batch`-sample batch
// (ceil(batch / kGradientLeafSamples); 0 only for an empty batch).
int GradientLeafCount(size_t batch);

// Half-open sample range [begin, end) of leaf `leaf` (contiguous chunks of
// kGradientLeafSamples, remainder in the last leaf).
struct LeafRange {
  size_t begin = 0;
  size_t end = 0;
  size_t size() const { return end - begin; }
};
LeafRange GradientLeafRange(size_t batch, int leaf);

// Fixed-shape pairwise tree reduction of `count` contiguous partials of
// `width` doubles each, in place (the reduced partial lands in slot 0). The
// tree shape — and therefore every rounding step — depends only on `count`,
// so any agent that produced the partials (shard tasks, forked processes)
// reduces to the same bits. With a pool and width >= kPooledReduceMinWidth
// the column range fans out, each task running the full tree over its chunk;
// bit-identical either way. Exported for the multi-process backend, which
// reduces leaf partials living in shared memory through the exact same
// arithmetic as the in-process driver below.
void TreeReducePartials(std::span<double> partials, int count, size_t width,
                        ThreadPool* pool);

// Evaluates `model`'s mean loss (and, when `gradient` is non-empty, mean
// gradient) over `batch_indices` through the leaf decomposition above.
// With a pool, up to `shards` concurrent tasks (clamped to the leaf count;
// <= 1, or a null pool, means one serial task) each evaluate a contiguous
// leaf range into per-leaf partial buffers carved from `workspace`
// (ReduceScratch slots; task t > 0 uses workspace.ShardWorkspace(t) for its
// model scratch). The gradient partials are tree-reduced on the calling
// thread, except for wide models (num_parameters >= kPooledReduceMinWidth
// with a pool): there the column range fans out onto the pool, each task
// running the full fixed-shape tree over its contiguous column chunk.
// Returns the mean loss; results are bit-identical for every (pool, shards)
// combination, including the serial call and the pooled combine.
double ShardedLossAndGradient(const Model& model, const Dataset& data,
                              std::span<const int> batch_indices,
                              std::span<double> gradient,
                              TrainingWorkspace& workspace, ThreadPool* pool,
                              int shards);

}  // namespace netmax::ml

#endif  // NETMAX_ML_SHARDING_H_
