#ifndef NETMAX_ML_OPTIMIZER_H_
#define NETMAX_ML_OPTIMIZER_H_

// SGD with momentum and weight decay (the paper's configuration: momentum
// 0.9, weight decay 1e-4), plus the learning-rate schedules it uses:
// step decay at fixed epochs, and decay-on-plateau ("decays by a factor of 10
// once the loss does not decrease any more").

#include <memory>
#include <span>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"

namespace netmax::ml {

struct SgdOptions {
  double learning_rate = 0.1;
  double momentum = 0.9;
  double weight_decay = 1e-4;
};

// Momentum SGD:
//   v <- momentum * v + (grad + weight_decay * param)
//   param <- param - lr * v
class SgdOptimizer {
 public:
  SgdOptimizer(int num_parameters, const SgdOptions& options);

  // Applies one update step in place.
  void Step(std::span<double> parameters, std::span<const double> gradient);

  double learning_rate() const { return options_.learning_rate; }
  void set_learning_rate(double lr) { options_.learning_rate = lr; }
  const SgdOptions& options() const { return options_; }

  // Clears accumulated momentum (used when a worker adopts a pulled model
  // wholesale and stale velocity would be misleading).
  void ResetMomentum();

  // Checkpoint support: serializes/restores the velocity buffer and current
  // learning rate. RestoreState rejects a velocity vector whose length
  // differs from this optimizer's parameter count.
  void SaveState(Serializer& out) const;
  Status RestoreState(Deserializer& in);

 private:
  SgdOptions options_;
  std::vector<double> velocity_;
};

// Learning-rate schedule interface: called once per finished epoch with that
// epoch's mean training loss; returns the learning rate for the next epoch.
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  virtual double OnEpochEnd(int64_t epoch, double epoch_loss) = 0;
  virtual double initial_learning_rate() const = 0;
  virtual std::unique_ptr<LrSchedule> Clone() const = 0;

  // Checkpoint support. Stateless schedules inherit the no-op defaults;
  // stateful ones serialize their mutable fields (not their construction
  // parameters, which the harness rebuilds from the config).
  virtual void SaveState(Serializer&) const {}
  virtual Status RestoreState(Deserializer&) { return Status::Ok(); }
};

// Constant learning rate.
class ConstantLr : public LrSchedule {
 public:
  explicit ConstantLr(double lr) : lr_(lr) {}
  double OnEpochEnd(int64_t, double) override { return lr_; }
  double initial_learning_rate() const override { return lr_; }
  std::unique_ptr<LrSchedule> Clone() const override {
    return std::make_unique<ConstantLr>(*this);
  }

 private:
  double lr_;
};

// Multiplies the rate by `factor` at each listed epoch (paper Section V-F:
// "decays by a factor of 10 at epoch 80").
class StepDecayLr : public LrSchedule {
 public:
  StepDecayLr(double initial_lr, double factor,
              std::vector<int64_t> milestones);
  double OnEpochEnd(int64_t epoch, double epoch_loss) override;
  double initial_learning_rate() const override { return initial_lr_; }
  std::unique_ptr<LrSchedule> Clone() const override {
    return std::make_unique<StepDecayLr>(*this);
  }
  void SaveState(Serializer& out) const override;
  Status RestoreState(Deserializer& in) override;

 private:
  double initial_lr_;
  double factor_;
  std::vector<int64_t> milestones_;
  double current_;
};

// Multiplies the rate by `factor` when the loss has not improved by at least
// `min_delta` for `patience` consecutive epochs (paper Section V-A: "decays by
// a factor of 10 once the loss does not decrease any more").
class PlateauDecayLr : public LrSchedule {
 public:
  PlateauDecayLr(double initial_lr, double factor, int patience,
                 double min_delta = 1e-3);
  double OnEpochEnd(int64_t epoch, double epoch_loss) override;
  double initial_learning_rate() const override { return initial_lr_; }
  std::unique_ptr<LrSchedule> Clone() const override {
    return std::make_unique<PlateauDecayLr>(*this);
  }
  void SaveState(Serializer& out) const override;
  Status RestoreState(Deserializer& in) override;

 private:
  double initial_lr_;
  double factor_;
  int patience_;
  double min_delta_;
  double current_;
  double best_loss_;
  int stale_epochs_ = 0;
};

}  // namespace netmax::ml

#endif  // NETMAX_ML_OPTIMIZER_H_
