#include "ml/optimizer.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace netmax::ml {

SgdOptimizer::SgdOptimizer(int num_parameters, const SgdOptions& options)
    : options_(options),
      velocity_(static_cast<size_t>(num_parameters), 0.0) {
  NETMAX_CHECK_GT(num_parameters, 0);
  NETMAX_CHECK_GT(options.learning_rate, 0.0);
  NETMAX_CHECK_GE(options.momentum, 0.0);
  NETMAX_CHECK_LT(options.momentum, 1.0);
  NETMAX_CHECK_GE(options.weight_decay, 0.0);
}

void SgdOptimizer::Step(std::span<double> parameters,
                        std::span<const double> gradient) {
  NETMAX_CHECK_EQ(parameters.size(), velocity_.size());
  NETMAX_CHECK_EQ(gradient.size(), velocity_.size());
  const double mu = options_.momentum;
  const double wd = options_.weight_decay;
  const double lr = options_.learning_rate;
  for (size_t i = 0; i < velocity_.size(); ++i) {
    velocity_[i] = mu * velocity_[i] + gradient[i] + wd * parameters[i];
    parameters[i] -= lr * velocity_[i];
  }
}

void SgdOptimizer::ResetMomentum() {
  std::fill(velocity_.begin(), velocity_.end(), 0.0);
}

void SgdOptimizer::SaveState(Serializer& out) const {
  out.WriteDoubleVec(velocity_);
  out.WriteDouble(options_.learning_rate);
}

Status SgdOptimizer::RestoreState(Deserializer& in) {
  std::vector<double> velocity;
  NETMAX_RETURN_IF_ERROR(in.ReadDoubleVec(&velocity));
  if (velocity.size() != velocity_.size()) {
    return InvalidArgumentError(
        "checkpointed velocity has " + std::to_string(velocity.size()) +
        " entries, optimizer has " + std::to_string(velocity_.size()) +
        " parameters");
  }
  NETMAX_ASSIGN_OR_RETURN(const double lr, in.ReadDouble());
  velocity_ = std::move(velocity);
  options_.learning_rate = lr;
  return Status::Ok();
}

StepDecayLr::StepDecayLr(double initial_lr, double factor,
                         std::vector<int64_t> milestones)
    : initial_lr_(initial_lr), factor_(factor),
      milestones_(std::move(milestones)), current_(initial_lr) {
  NETMAX_CHECK_GT(initial_lr, 0.0);
  NETMAX_CHECK_GT(factor, 0.0);
}

double StepDecayLr::OnEpochEnd(int64_t epoch, double /*epoch_loss*/) {
  for (int64_t milestone : milestones_) {
    if (epoch == milestone) current_ *= factor_;
  }
  return current_;
}

void StepDecayLr::SaveState(Serializer& out) const {
  out.WriteDouble(current_);
}

Status StepDecayLr::RestoreState(Deserializer& in) {
  NETMAX_ASSIGN_OR_RETURN(current_, in.ReadDouble());
  return Status::Ok();
}

PlateauDecayLr::PlateauDecayLr(double initial_lr, double factor, int patience,
                               double min_delta)
    : initial_lr_(initial_lr), factor_(factor), patience_(patience),
      min_delta_(min_delta), current_(initial_lr),
      best_loss_(std::numeric_limits<double>::infinity()) {
  NETMAX_CHECK_GT(initial_lr, 0.0);
  NETMAX_CHECK_GT(factor, 0.0);
  NETMAX_CHECK_LT(factor, 1.0);
  NETMAX_CHECK_GE(patience, 1);
}

double PlateauDecayLr::OnEpochEnd(int64_t /*epoch*/, double epoch_loss) {
  if (epoch_loss < best_loss_ - min_delta_) {
    best_loss_ = epoch_loss;
    stale_epochs_ = 0;
  } else {
    ++stale_epochs_;
    if (stale_epochs_ >= patience_) {
      current_ *= factor_;
      stale_epochs_ = 0;
      // Require improvement relative to the plateau level from here on.
      best_loss_ = epoch_loss;
    }
  }
  return current_;
}

void PlateauDecayLr::SaveState(Serializer& out) const {
  out.WriteDouble(current_);
  out.WriteDouble(best_loss_);
  out.WriteI64(stale_epochs_);
}

Status PlateauDecayLr::RestoreState(Deserializer& in) {
  NETMAX_ASSIGN_OR_RETURN(current_, in.ReadDouble());
  NETMAX_ASSIGN_OR_RETURN(best_loss_, in.ReadDouble());
  NETMAX_ASSIGN_OR_RETURN(stale_epochs_, in.ReadInt());
  return Status::Ok();
}

}  // namespace netmax::ml
