#ifndef NETMAX_ML_DATASET_H_
#define NETMAX_ML_DATASET_H_

// In-memory classification datasets, synthetic generators, and the paper's
// partition schemes.
//
// The paper trains on MNIST / CIFAR10 / CIFAR100 / Tiny-ImageNet / ImageNet;
// those corpora are not available here, so each is substituted by a seeded
// Gaussian-mixture classification problem with the same class structure
// (10/100/200/1000 classes). What the decentralized-training experiments
// exercise is data heterogeneity across workers, which is reproduced exactly:
//  * uniform partitioning (Section V-B..E),
//  * segment-weighted partitioning with per-worker batch sizes
//    (Section V-F, e.g. <1,1,1,1,2,1,2,1> segments),
//  * label-removal non-IID partitioning (Tables IV and VII).

#include <span>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/serialize.h"
#include "common/status.h"

namespace netmax::ml {

// Dense feature vectors with integer class labels, stored flat.
class Dataset {
 public:
  Dataset(int feature_dim, int num_classes);

  int feature_dim() const { return feature_dim_; }
  int num_classes() const { return num_classes_; }
  int size() const { return static_cast<int>(labels_.size()); }
  bool empty() const { return labels_.empty(); }

  // Appends one example. `features.size()` must equal feature_dim(); `label`
  // must be in [0, num_classes).
  void Add(std::span<const double> features, int label);

  std::span<const double> features(int index) const;
  int label(int index) const;

  // Number of examples carrying `label`.
  int CountLabel(int label) const;

 private:
  int feature_dim_;
  int num_classes_;
  std::vector<double> features_;  // size() * feature_dim_
  std::vector<int> labels_;
};

// Train/test pair drawn from the same distribution.
struct DatasetPair {
  Dataset train;
  Dataset test;
};

// Parameters of the synthetic Gaussian-mixture generator. Class means are
// placed at random on the sphere of radius `class_separation`; features are
// mean + N(0, noise_stddev^2 I). The separation:noise ratio controls the Bayes
// accuracy (how high test accuracy can go), which each named preset calibrates
// to its paper counterpart.
struct SyntheticSpec {
  std::string name;
  int num_classes = 10;
  int feature_dim = 32;
  int num_train = 4096;
  int num_test = 1024;
  double class_separation = 3.0;
  double noise_stddev = 1.0;
  uint64_t seed = 1;
};

// Generates a train/test pair per `spec`. Deterministic in spec.seed.
DatasetPair GenerateSynthetic(const SyntheticSpec& spec);

// Named presets standing in for the paper's datasets. The seeds differ per
// preset so their mixtures are unrelated.
SyntheticSpec MnistSimSpec();
SyntheticSpec Cifar10SimSpec();
SyntheticSpec Cifar100SimSpec();
SyntheticSpec TinyImageNetSimSpec();
SyntheticSpec ImageNetSimSpec();

// Returns the preset whose name matches (e.g. "mnist-sim"); NotFound if none.
StatusOr<SyntheticSpec> SyntheticSpecByName(const std::string& name);

// --- Partitioners -----------------------------------------------------------

// Shuffles and splits `data` into `num_workers` near-equal shards.
std::vector<Dataset> PartitionUniform(const Dataset& data, int num_workers,
                                      uint64_t seed);

// Splits `data` into sum(segments) equal segments and gives worker i
// `segments[i]` of them (Section V-F). Workers with more segments hold
// proportionally more data; the paper pairs this with batch size
// 64 * segments[i].
StatusOr<std::vector<Dataset>> PartitionBySegments(
    const Dataset& data, const std::vector<int>& segments, uint64_t seed);

// Non-IID label-removal partitioning (Tables IV and VII): worker i receives an
// equal share of every label NOT listed in `lost_labels[i]`; examples of a
// label are divided evenly among the workers that retain that label. Labels
// lost by every worker vanish from the training set. Label ids outside
// [0, num_classes) are invalid.
StatusOr<std::vector<Dataset>> PartitionWithLostLabels(
    const Dataset& data, const std::vector<std::vector<int>>& lost_labels,
    uint64_t seed);

// Table IV of the paper: lost labels for 8 workers training MNIST across two
// servers (w0..w3 on server 1, w4..w7 on server 2).
std::vector<std::vector<int>> MnistLostLabels();

// Table VII of the paper: lost labels for the 6 EC2 regions
// (US West, US East, Ireland, Mumbai, Singapore, Tokyo).
std::vector<std::vector<int>> CloudRegionLostLabels();

// Iterates a worker's shard in shuffled minibatches; reshuffles at every epoch
// boundary so "epoch" means one pass over the shard, as in the paper.
class BatchSampler {
 public:
  // `dataset` must outlive the sampler. batch_size >= 1.
  BatchSampler(const Dataset* dataset, int batch_size, uint64_t seed);

  // Returns the indices of the next minibatch (size <= batch_size; the last
  // batch of an epoch may be short). Advances epoch counters.
  std::vector<int> NextBatch();

  // Allocation-free variant for the training hot loop: clears and refills
  // `batch` in place (its capacity is reused across calls).
  void NextBatch(std::vector<int>& batch);

  // Number of completed passes over the shard.
  int64_t epochs_completed() const { return epochs_completed_; }
  int64_t batches_per_epoch() const;
  int batch_size() const { return batch_size_; }

  // Checkpoint support: serializes/restores the shuffle RNG, the current
  // epoch's permutation, and the position within it. The dataset pointer and
  // batch size stay whatever this instance was constructed with; RestoreState
  // rejects a saved permutation whose length differs from the shard size.
  void SaveState(Serializer& out) const;
  Status RestoreState(Deserializer& in);

 private:
  void Reshuffle();

  const Dataset* dataset_;
  int batch_size_;
  netmax::Rng rng_;
  std::vector<int> order_;
  size_t cursor_ = 0;
  int64_t epochs_completed_ = 0;
};

}  // namespace netmax::ml

#endif  // NETMAX_ML_DATASET_H_
