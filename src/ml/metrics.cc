#include "ml/metrics.h"

#include <numeric>

#include "common/logging.h"

namespace netmax::ml {

double AverageLoss(const Model& model, const Dataset& data) {
  NETMAX_CHECK_GT(data.size(), 0);
  std::vector<int> all(static_cast<size_t>(data.size()));
  std::iota(all.begin(), all.end(), 0);
  return model.LossAndGradient(data, all, {});
}

double Accuracy(const Model& model, const Dataset& data) {
  NETMAX_CHECK_GT(data.size(), 0);
  int correct = 0;
  for (int i = 0; i < data.size(); ++i) {
    if (model.Predict(data, i) == data.label(i)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

std::optional<double> TimeToThreshold(const Series& series, double threshold) {
  for (size_t i = 0; i < series.size(); ++i) {
    if (series[i].y <= threshold) {
      if (i == 0) return series[i].x;
      const SeriesPoint& prev = series[i - 1];
      const SeriesPoint& cur = series[i];
      if (cur.y == prev.y) return cur.x;
      const double frac = (prev.y - threshold) / (prev.y - cur.y);
      return prev.x + frac * (cur.x - prev.x);
    }
  }
  return std::nullopt;
}

std::optional<double> TimeToThresholdAbove(const Series& series,
                                           double threshold) {
  for (size_t i = 0; i < series.size(); ++i) {
    if (series[i].y >= threshold) {
      if (i == 0) return series[i].x;
      const SeriesPoint& prev = series[i - 1];
      const SeriesPoint& cur = series[i];
      if (cur.y == prev.y) return cur.x;
      const double frac = (threshold - prev.y) / (cur.y - prev.y);
      return prev.x + frac * (cur.x - prev.x);
    }
  }
  return std::nullopt;
}

double FinalValue(const Series& series) {
  NETMAX_CHECK(!series.empty());
  return series.back().y;
}

double MinValue(const Series& series) {
  NETMAX_CHECK(!series.empty());
  double best = series[0].y;
  for (const SeriesPoint& p : series) best = std::min(best, p.y);
  return best;
}

}  // namespace netmax::ml
