#include "ml/metrics.h"

#include <algorithm>
#include <array>
#include <numeric>

#include "common/logging.h"

namespace netmax::ml {
namespace {

// Evaluation chunk: big enough to amortize the batched forward pass, small
// enough that the workspace stays a few hundred KB at test-set widths (and
// that the index/prediction buffers below fit on the stack).
constexpr int kEvalChunk = 256;

// Workspace int-slot used by AverageLoss for the all-examples index list.
// Models must not touch int slots from LossAndGradient/PredictBatch (see
// the PredictBatch contract in ml/model.h).
constexpr int kSlotEvalIndices = 0;

}  // namespace

double AverageLoss(const Model& model, const Dataset& data) {
  return AverageLoss(model, data, ThreadLocalWorkspace());
}

double AverageLoss(const Model& model, const Dataset& data,
                   TrainingWorkspace& workspace) {
  NETMAX_CHECK_GT(data.size(), 0);
  std::span<int> all =
      workspace.IntScratch(kSlotEvalIndices, static_cast<size_t>(data.size()));
  std::iota(all.begin(), all.end(), 0);
  return model.LossAndGradient(data, all, {}, workspace);
}

double Accuracy(const Model& model, const Dataset& data) {
  return Accuracy(model, data, ThreadLocalWorkspace());
}

double Accuracy(const Model& model, const Dataset& data,
                TrainingWorkspace& workspace) {
  NETMAX_CHECK_GT(data.size(), 0);
  // Index/prediction chunks live on the stack: spans into `workspace` could
  // dangle if a model's PredictBatch grew the same slot mid-call.
  std::array<int, kEvalChunk> indices;
  std::array<int, kEvalChunk> predictions;
  int correct = 0;
  for (int start = 0; start < data.size(); start += kEvalChunk) {
    const int count = std::min(kEvalChunk, data.size() - start);
    std::iota(indices.begin(), indices.begin() + count, start);
    model.PredictBatch(
        data, std::span<const int>(indices).first(static_cast<size_t>(count)),
        std::span<int>(predictions).first(static_cast<size_t>(count)),
        workspace);
    for (int i = 0; i < count; ++i) {
      if (predictions[static_cast<size_t>(i)] == data.label(start + i)) {
        ++correct;
      }
    }
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

std::optional<double> TimeToThreshold(const Series& series, double threshold) {
  for (size_t i = 0; i < series.size(); ++i) {
    if (series[i].y <= threshold) {
      if (i == 0) return series[i].x;
      const SeriesPoint& prev = series[i - 1];
      const SeriesPoint& cur = series[i];
      if (cur.y == prev.y) return cur.x;
      const double frac = (prev.y - threshold) / (prev.y - cur.y);
      return prev.x + frac * (cur.x - prev.x);
    }
  }
  return std::nullopt;
}

std::optional<double> TimeToThresholdAbove(const Series& series,
                                           double threshold) {
  for (size_t i = 0; i < series.size(); ++i) {
    if (series[i].y >= threshold) {
      if (i == 0) return series[i].x;
      const SeriesPoint& prev = series[i - 1];
      const SeriesPoint& cur = series[i];
      if (cur.y == prev.y) return cur.x;
      const double frac = (threshold - prev.y) / (cur.y - prev.y);
      return prev.x + frac * (cur.x - prev.x);
    }
  }
  return std::nullopt;
}

double FinalValue(const Series& series) {
  NETMAX_CHECK(!series.empty());
  return series.back().y;
}

double MinValue(const Series& series) {
  NETMAX_CHECK(!series.empty());
  double best = series[0].y;
  for (const SeriesPoint& p : series) best = std::min(best, p.y);
  return best;
}

}  // namespace netmax::ml
