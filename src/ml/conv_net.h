#ifndef NETMAX_ML_CONV_NET_H_
#define NETMAX_ML_CONV_NET_H_

// A small 1-D convolutional network: Conv1D(filters, kernel) -> ReLU ->
// fully-connected softmax head. Features are treated as a single-channel 1-D
// signal. Included so the model zoo covers weight sharing (the structural
// property that distinguishes the paper's CNNs from MLPs); gradients are
// verified against finite differences in tests.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/model.h"

namespace netmax::ml {

class ConvNet : public Model {
 public:
  // input_dim: feature length; num_filters/kernel_size: conv layer shape
  // (valid padding, stride 1, kernel_size <= input_dim); num_classes: output.
  // Parameters flat: [conv W (F x K) | conv b (F) | fc W (C x F*L) | fc b (C)]
  // where L = input_dim - kernel_size + 1.
  ConvNet(int input_dim, int num_filters, int kernel_size, int num_classes);

  std::string name() const override { return "convnet"; }
  int num_parameters() const override;
  std::span<double> parameters() override { return params_; }
  std::span<const double> parameters() const override { return params_; }
  void InitializeParameters(uint64_t seed) override;
  double LossAndGradient(const Dataset& data,
                         std::span<const int> batch_indices,
                         std::span<double> gradient) const override;
  // Batched zero-allocation path: per gradient leaf (ml/sharding.h), conv
  // activations land in one workspace matrix (per-sample loops — the kernel
  // is tiny and already streams) and the FC head runs as one GEMM over that
  // matrix; leaf partials combine by the fixed pairwise tree, making this
  // serial call bit-identical to the sharded parallel evaluation. Within a
  // leaf the summation order is the per-sample formulation's.
  double LossAndGradient(const Dataset& data,
                         std::span<const int> batch_indices,
                         std::span<double> gradient,
                         TrainingWorkspace& workspace) const override;
  int Predict(const Dataset& data, int index) const override;
  void PredictBatch(const Dataset& data, std::span<const int> indices,
                    std::span<int> out,
                    TrainingWorkspace& workspace) const override;
  std::unique_ptr<Model> Clone() const override;

  int conv_output_length() const { return conv_len_; }
  int input_dim() const { return input_dim_; }
  int num_filters() const { return num_filters_; }
  int kernel_size() const { return kernel_size_; }
  int num_classes() const { return num_classes_; }

  // Parameter block offsets (exposed for the naive reference implementation
  // used by the golden tests).
  size_t ConvWeightOffset() const { return 0; }
  size_t ConvBiasOffset() const;
  size_t FcWeightOffset() const;
  size_t FcBiasOffset() const;

 private:
  // Batched forward: fills the conv activation matrix (batch x F*L,
  // post-ReLU) and returns the logits matrix (batch x C), both in
  // `workspace`.
  std::span<double> ForwardBatch(const Dataset& data,
                                 std::span<const int> indices,
                                 TrainingWorkspace& workspace) const;

  // Native unscaled leaf evaluation (accumulates into zero-filled
  // `gradient`), plugged into the base class's EvalGradientLeaves loop.
  double LeafLossAndGradientSums(const Dataset& data,
                                 std::span<const int> leaf,
                                 std::span<double> gradient,
                                 TrainingWorkspace& workspace) const override;

  int input_dim_;
  int num_filters_;
  int kernel_size_;
  int num_classes_;
  int conv_len_;
  std::vector<double> params_;
};

}  // namespace netmax::ml

#endif  // NETMAX_ML_CONV_NET_H_
