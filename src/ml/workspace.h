#ifndef NETMAX_ML_WORKSPACE_H_
#define NETMAX_ML_WORKSPACE_H_

// Reusable scratch memory for the batched model compute paths.
//
// The training hot loop of every decentralized algorithm is millions of
// LossAndGradient calls; heap-allocating activations per sample (the seed
// implementation) dominates wall time at this model scale. A
// TrainingWorkspace owns a set of grow-only buffers that a model's batched
// forward/backward passes carve their activation/delta matrices from, so the
// steady-state batch loop performs zero heap allocations: the first batch
// sizes the buffers, every later batch (same size or smaller) reuses them.
//
// Workspaces are not thread-safe; give each worker its own (see
// core::WorkerRuntime) or use the per-thread fallback below.

#include <cstdint>
#include <span>
#include <vector>

namespace netmax::ml {

class TrainingWorkspace {
 public:
  TrainingWorkspace() = default;
  TrainingWorkspace(const TrainingWorkspace&) = delete;
  TrainingWorkspace& operator=(const TrainingWorkspace&) = delete;

  // Returns a span of `size` doubles backed by buffer `slot` (any small dense
  // index; slots are created on first use). Contents are unspecified whenever
  // the buffer had to grow — callers fully overwrite what they read.
  std::span<double> Scratch(int slot, size_t size);

  // Same, for index buffers (batched Predict gathers).
  std::span<int> IntScratch(int slot, size_t size);

  // Number of buffer growths (heap allocations) since construction. A
  // steady-state training loop must keep this constant after its first batch;
  // tests assert on it, and it is cheap enough to monitor in production.
  int64_t growth_count() const { return growth_count_; }

 private:
  std::vector<std::vector<double>> slots_;
  std::vector<std::vector<int>> int_slots_;
  int64_t growth_count_ = 0;
};

// A lazily constructed workspace owned by the calling thread, used by the
// workspace-free Model API overloads so legacy callers (tests, one-off
// evaluations) get the batched path without threading a workspace through.
// Engines should prefer explicit per-worker workspaces: the thread-local one
// is sized to the largest batch any model on this thread has seen.
TrainingWorkspace& ThreadLocalWorkspace();

}  // namespace netmax::ml

#endif  // NETMAX_ML_WORKSPACE_H_
