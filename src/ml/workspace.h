#ifndef NETMAX_ML_WORKSPACE_H_
#define NETMAX_ML_WORKSPACE_H_

// Reusable scratch memory for the batched model compute paths.
//
// The training hot loop of every decentralized algorithm is millions of
// LossAndGradient calls; heap-allocating activations per sample (the seed
// implementation) dominates wall time at this model scale. A
// TrainingWorkspace owns a set of grow-only buffers that a model's batched
// forward/backward passes carve their activation/delta matrices from, so the
// steady-state batch loop performs zero heap allocations: the first batch
// sizes the buffers, every later batch (same size or smaller) reuses them.
//
// Workspaces are not thread-safe; give each worker its own (see
// core::WorkerRuntime) or use the per-thread fallback below. Intra-worker
// gradient sharding (ml/sharding.h) evaluates one worker's batch on several
// threads at once: shard task t borrows the grow-only child workspace
// ShardWorkspace(t) — children are independent TrainingWorkspaces, so the
// not-thread-safe rule holds per (child) workspace, not per worker.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace netmax::ml {

class TrainingWorkspace {
 public:
  TrainingWorkspace() = default;
  TrainingWorkspace(const TrainingWorkspace&) = delete;
  TrainingWorkspace& operator=(const TrainingWorkspace&) = delete;
  // Movable so owners (e.g. core::WorkerRuntime) can live in contiguous
  // storage; moving steals the grow-only buffers, it never copies them.
  TrainingWorkspace(TrainingWorkspace&&) = default;
  TrainingWorkspace& operator=(TrainingWorkspace&&) = default;

  // Returns a span of `size` doubles backed by buffer `slot` (any small dense
  // index; slots are created on first use). Contents are unspecified whenever
  // the buffer had to grow — callers fully overwrite what they read.
  std::span<double> Scratch(int slot, size_t size);

  // Same, for index buffers (batched Predict gathers).
  std::span<int> IntScratch(int slot, size_t size);

  // Same, for the sharding driver's per-leaf partial sums. A separate slot
  // family from Scratch so the driver can hold loss/gradient partials in the
  // workspace while a model eval running through the same workspace uses its
  // own Scratch layout; models must never touch these slots.
  std::span<double> ReduceScratch(int slot, size_t size);

  // The child workspace backing concurrent shard task `shard` (>= 0).
  // Children are created on first use and persist, so a steady-state sharded
  // training loop reuses their buffers exactly like the parent's.
  TrainingWorkspace& ShardWorkspace(int shard);

  // Number of buffer growths (heap allocations) since construction,
  // including in shard children. A steady-state training loop must keep this
  // constant after its first batch; tests assert on it, and it is cheap
  // enough to monitor in production.
  int64_t growth_count() const;

 private:
  std::span<double> DoubleScratch(std::vector<std::vector<double>>& family,
                                  int slot, size_t size);

  std::vector<std::vector<double>> slots_;
  std::vector<std::vector<int>> int_slots_;
  std::vector<std::vector<double>> reduce_slots_;
  std::vector<std::unique_ptr<TrainingWorkspace>> shard_children_;
  int64_t growth_count_ = 0;
};

// A lazily constructed workspace owned by the calling thread, used by the
// workspace-free Model API overloads so legacy callers (tests, one-off
// evaluations) get the batched path without threading a workspace through.
// Engines should prefer explicit per-worker workspaces: the thread-local one
// is sized to the largest batch any model on this thread has seen.
TrainingWorkspace& ThreadLocalWorkspace();

}  // namespace netmax::ml

#endif  // NETMAX_ML_WORKSPACE_H_
