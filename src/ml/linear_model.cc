#include "ml/linear_model.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "linalg/vector_ops.h"

namespace netmax::ml {

void SoftmaxInPlace(std::span<double> logits) {
  double max_logit = logits[0];
  for (double v : logits) max_logit = std::max(max_logit, v);
  double total = 0.0;
  for (double& v : logits) {
    v = std::exp(v - max_logit);
    total += v;
  }
  for (double& v : logits) v /= total;
}

double CrossEntropyFromProbabilities(std::span<const double> probabilities,
                                     int label) {
  constexpr double kFloor = 1e-12;
  return -std::log(std::max(probabilities[static_cast<size_t>(label)], kFloor));
}

LinearModel::LinearModel(int feature_dim, int num_classes)
    : feature_dim_(feature_dim), num_classes_(num_classes),
      params_(static_cast<size_t>(num_classes) * feature_dim + num_classes,
              0.0) {
  NETMAX_CHECK_GT(feature_dim, 0);
  NETMAX_CHECK_GT(num_classes, 1);
}

int LinearModel::num_parameters() const {
  return static_cast<int>(params_.size());
}

void LinearModel::InitializeParameters(uint64_t seed) {
  Rng rng(seed);
  const double scale = 1.0 / std::sqrt(static_cast<double>(feature_dim_));
  const size_t weight_count =
      static_cast<size_t>(num_classes_) * static_cast<size_t>(feature_dim_);
  for (size_t i = 0; i < weight_count; ++i) {
    params_[i] = rng.Gaussian(0.0, scale);
  }
  for (size_t i = weight_count; i < params_.size(); ++i) params_[i] = 0.0;
}

void LinearModel::Logits(std::span<const double> x,
                         std::span<double> logits) const {
  const size_t d = static_cast<size_t>(feature_dim_);
  const size_t bias_offset = static_cast<size_t>(num_classes_) * d;
  for (int c = 0; c < num_classes_; ++c) {
    const double* w = params_.data() + static_cast<size_t>(c) * d;
    double acc = params_[bias_offset + static_cast<size_t>(c)];
    for (size_t j = 0; j < d; ++j) acc += w[j] * x[j];
    logits[static_cast<size_t>(c)] = acc;
  }
}

double LinearModel::LossAndGradient(const Dataset& data,
                                    std::span<const int> batch_indices,
                                    std::span<double> gradient) const {
  NETMAX_CHECK(!batch_indices.empty());
  NETMAX_CHECK_EQ(data.feature_dim(), feature_dim_);
  const bool want_gradient = !gradient.empty();
  if (want_gradient) {
    NETMAX_CHECK_EQ(static_cast<int>(gradient.size()), num_parameters());
    netmax::linalg::Fill(gradient, 0.0);
  }

  const size_t d = static_cast<size_t>(feature_dim_);
  const size_t bias_offset = static_cast<size_t>(num_classes_) * d;
  std::vector<double> probs(static_cast<size_t>(num_classes_));
  double total_loss = 0.0;
  for (int index : batch_indices) {
    const std::span<const double> x = data.features(index);
    const int label = data.label(index);
    Logits(x, probs);
    SoftmaxInPlace(probs);
    total_loss += CrossEntropyFromProbabilities(probs, label);
    if (want_gradient) {
      // dL/dlogit_c = p_c - [c == label]; dW_c = dlogit_c * x; db_c = dlogit.
      for (int c = 0; c < num_classes_; ++c) {
        const double dlogit =
            probs[static_cast<size_t>(c)] - (c == label ? 1.0 : 0.0);
        double* gw = gradient.data() + static_cast<size_t>(c) * d;
        for (size_t j = 0; j < d; ++j) gw[j] += dlogit * x[j];
        gradient[bias_offset + static_cast<size_t>(c)] += dlogit;
      }
    }
  }
  const double inv_batch = 1.0 / static_cast<double>(batch_indices.size());
  if (want_gradient) netmax::linalg::Scale(inv_batch, gradient);
  return total_loss * inv_batch;
}

int LinearModel::Predict(const Dataset& data, int index) const {
  std::vector<double> logits(static_cast<size_t>(num_classes_));
  Logits(data.features(index), logits);
  int best = 0;
  for (int c = 1; c < num_classes_; ++c) {
    if (logits[static_cast<size_t>(c)] > logits[static_cast<size_t>(best)]) {
      best = c;
    }
  }
  return best;
}

std::unique_ptr<Model> LinearModel::Clone() const {
  return std::make_unique<LinearModel>(*this);
}

}  // namespace netmax::ml
