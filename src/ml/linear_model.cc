#include "ml/linear_model.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "linalg/blas.h"
#include "linalg/vector_ops.h"
#include "ml/sharding.h"

namespace netmax::ml {
namespace {

// Workspace slot layout.
constexpr int kSlotInput = 0;    // batch x D gathered features
constexpr int kSlotLogits = 1;   // batch x C logits / probs / deltas
constexpr int kSlotWeightT = 2;  // D x C transposed weights

}  // namespace

void SoftmaxInPlace(std::span<double> logits) {
  double max_logit = logits[0];
  for (double v : logits) max_logit = std::max(max_logit, v);
  double total = 0.0;
  for (double& v : logits) {
    v = std::exp(v - max_logit);
    total += v;
  }
  for (double& v : logits) v /= total;
}

double CrossEntropyFromProbabilities(std::span<const double> probabilities,
                                     int label) {
  constexpr double kFloor = 1e-12;
  return -std::log(std::max(probabilities[static_cast<size_t>(label)], kFloor));
}

void ArgmaxRows(std::span<const double> logits, size_t rows, size_t cols,
                std::span<int> out) {
  for (size_t r = 0; r < rows; ++r) {
    const double* row = logits.data() + r * cols;
    size_t best = 0;
    for (size_t c = 1; c < cols; ++c) {
      if (row[c] > row[best]) best = c;
    }
    out[r] = static_cast<int>(best);
  }
}

LinearModel::LinearModel(int feature_dim, int num_classes)
    : feature_dim_(feature_dim), num_classes_(num_classes),
      params_(static_cast<size_t>(num_classes) * feature_dim + num_classes,
              0.0) {
  NETMAX_CHECK_GT(feature_dim, 0);
  NETMAX_CHECK_GT(num_classes, 1);
}

int LinearModel::num_parameters() const {
  return static_cast<int>(params_.size());
}

void LinearModel::InitializeParameters(uint64_t seed) {
  Rng rng(seed);
  const double scale = 1.0 / std::sqrt(static_cast<double>(feature_dim_));
  const size_t weight_count =
      static_cast<size_t>(num_classes_) * static_cast<size_t>(feature_dim_);
  for (size_t i = 0; i < weight_count; ++i) {
    params_[i] = rng.Gaussian(0.0, scale);
  }
  for (size_t i = weight_count; i < params_.size(); ++i) params_[i] = 0.0;
}

std::span<double> LinearModel::ForwardBatch(
    const Dataset& data, std::span<const int> indices,
    TrainingWorkspace& workspace) const {
  const size_t batch = indices.size();
  const size_t d = static_cast<size_t>(feature_dim_);
  std::span<double> x = workspace.Scratch(kSlotInput, batch * d);
  for (size_t s = 0; s < batch; ++s) {
    const std::span<const double> row = data.features(indices[s]);
    std::copy(row.begin(), row.end(),
              x.begin() + static_cast<ptrdiff_t>(s * d));
  }
  std::span<double> wt = workspace.Scratch(
      kSlotWeightT, d * static_cast<size_t>(num_classes_));
  linalg::Transpose(num_classes_, feature_dim_, params_.data(), feature_dim_,
                    wt.data(), num_classes_);
  std::span<double> logits = workspace.Scratch(
      kSlotLogits, batch * static_cast<size_t>(num_classes_));
  linalg::GemmBias(static_cast<int>(batch), num_classes_, feature_dim_,
                   x.data(), feature_dim_, wt.data(), num_classes_,
                   params_.data() + static_cast<size_t>(num_classes_) * d,
                   logits.data(), num_classes_);
  return logits;
}

double LinearModel::LossAndGradient(const Dataset& data,
                                    std::span<const int> batch_indices,
                                    std::span<double> gradient) const {
  return LossAndGradient(data, batch_indices, gradient,
                         ThreadLocalWorkspace());
}

double LinearModel::LossAndGradient(const Dataset& data,
                                    std::span<const int> batch_indices,
                                    std::span<double> gradient,
                                    TrainingWorkspace& workspace) const {
  return ShardedLossAndGradient(*this, data, batch_indices, gradient,
                                workspace, /*pool=*/nullptr, /*shards=*/1);
}

double LinearModel::LeafLossAndGradientSums(
    const Dataset& data, std::span<const int> leaf, std::span<double> gradient,
    TrainingWorkspace& workspace) const {
  NETMAX_CHECK(!leaf.empty());
  NETMAX_CHECK_EQ(data.feature_dim(), feature_dim_);
  const bool want_gradient = !gradient.empty();
  if (want_gradient) {
    NETMAX_CHECK_EQ(static_cast<int>(gradient.size()), num_parameters());
    netmax::linalg::Fill(gradient, 0.0);
  }

  const size_t batch = leaf.size();
  const size_t d = static_cast<size_t>(feature_dim_);
  const size_t num_classes = static_cast<size_t>(num_classes_);
  std::span<double> logits = ForwardBatch(data, leaf, workspace);

  double total_loss = 0.0;
  for (size_t s = 0; s < batch; ++s) {
    std::span<double> row = logits.subspan(s * num_classes, num_classes);
    SoftmaxInPlace(row);
    total_loss += CrossEntropyFromProbabilities(row, data.label(leaf[s]));
  }
  if (!want_gradient) return total_loss;

  // dL/dlogits in place (p - onehot), then one rank-1-update GEMM for the
  // weight gradient and column sums for the bias gradient, both accumulating
  // in batch order like the per-sample loop.
  for (size_t s = 0; s < batch; ++s) {
    logits[s * num_classes + static_cast<size_t>(data.label(leaf[s]))] -= 1.0;
  }
  const std::span<const double> x = workspace.Scratch(kSlotInput, batch * d);
  linalg::GemmAtBAccumulate(static_cast<int>(batch), num_classes_,
                            feature_dim_, logits.data(), num_classes_,
                            x.data(), feature_dim_, gradient.data(),
                            feature_dim_);
  linalg::AddRowsAccumulate(static_cast<int>(batch), num_classes_,
                            logits.data(), num_classes_,
                            gradient.data() +
                                static_cast<size_t>(num_classes_) * d);
  return total_loss;
}

int LinearModel::Predict(const Dataset& data, int index) const {
  int prediction = 0;
  PredictBatch(data, {&index, 1}, {&prediction, 1}, ThreadLocalWorkspace());
  return prediction;
}

void LinearModel::PredictBatch(const Dataset& data,
                               std::span<const int> indices,
                               std::span<int> out,
                               TrainingWorkspace& workspace) const {
  NETMAX_CHECK_EQ(indices.size(), out.size());
  if (indices.empty()) return;
  NETMAX_CHECK_EQ(data.feature_dim(), feature_dim_);
  const std::span<const double> logits =
      ForwardBatch(data, indices, workspace);
  ArgmaxRows(logits, indices.size(), static_cast<size_t>(num_classes_), out);
}

std::unique_ptr<Model> LinearModel::Clone() const {
  return std::make_unique<LinearModel>(*this);
}

}  // namespace netmax::ml
