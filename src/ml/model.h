#ifndef NETMAX_ML_MODEL_H_
#define NETMAX_ML_MODEL_H_

// Trainable-model interface.
//
// Decentralized SGD only needs three things from a model: a flat parameter
// vector (what workers exchange in Algorithm 2), minibatch loss+gradient
// (line 11's local update), and prediction (test accuracy). Every model in
// src/ml implements this interface and is verified against finite-difference
// gradients in tests.

#include <memory>
#include <span>
#include <string>

#include "ml/dataset.h"

namespace netmax::ml {

class Model {
 public:
  virtual ~Model() = default;

  virtual std::string name() const = 0;

  virtual int num_parameters() const = 0;

  // Flat view of the parameters; consensus updates mutate this in place.
  virtual std::span<double> parameters() = 0;
  virtual std::span<const double> parameters() const = 0;

  // (Re-)initializes the parameters (scaled Gaussian fan-in init),
  // deterministically in `seed`.
  virtual void InitializeParameters(uint64_t seed) = 0;

  // Computes the mean cross-entropy loss over `batch_indices` of `data` and,
  // if `gradient` is non-empty, writes d(loss)/d(parameters) into it
  // (`gradient.size()` must equal num_parameters()). Does not modify the
  // model. Returns the loss.
  virtual double LossAndGradient(const Dataset& data,
                                 std::span<const int> batch_indices,
                                 std::span<double> gradient) const = 0;

  // Predicted class for example `index` of `data`.
  virtual int Predict(const Dataset& data, int index) const = 0;

  // Deep copy (architecture + parameters).
  virtual std::unique_ptr<Model> Clone() const = 0;
};

}  // namespace netmax::ml

#endif  // NETMAX_ML_MODEL_H_
