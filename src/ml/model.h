#ifndef NETMAX_ML_MODEL_H_
#define NETMAX_ML_MODEL_H_

// Trainable-model interface.
//
// Decentralized SGD only needs three things from a model: a flat parameter
// vector (what workers exchange in Algorithm 2), minibatch loss+gradient
// (line 11's local update), and prediction (test accuracy). Every model in
// src/ml implements this interface and is verified against finite-difference
// gradients in tests.

#include <memory>
#include <span>
#include <string>

#include "ml/dataset.h"
#include "ml/workspace.h"

namespace netmax::ml {

class Model {
 public:
  virtual ~Model() = default;

  virtual std::string name() const = 0;

  virtual int num_parameters() const = 0;

  // Flat view of the parameters; consensus updates mutate this in place.
  virtual std::span<double> parameters() = 0;
  virtual std::span<const double> parameters() const = 0;

  // (Re-)initializes the parameters (scaled Gaussian fan-in init),
  // deterministically in `seed`.
  virtual void InitializeParameters(uint64_t seed) = 0;

  // Computes the mean cross-entropy loss over `batch_indices` of `data` and,
  // if `gradient` is non-empty, writes d(loss)/d(parameters) into it
  // (`gradient.size()` must equal num_parameters()). Does not modify the
  // model. Returns the loss.
  virtual double LossAndGradient(const Dataset& data,
                                 std::span<const int> batch_indices,
                                 std::span<double> gradient) const = 0;

  // Workspace overload: the zero-allocation batched hot path. Scratch memory
  // comes from `workspace` (grow-only, reused across batches), and results
  // are bit-identical to the workspace-free overload — implementations keep
  // the same per-element summation order. The default forwards to the
  // workspace-free overload for models that have not been batched yet.
  virtual double LossAndGradient(const Dataset& data,
                                 std::span<const int> batch_indices,
                                 std::span<double> gradient,
                                 TrainingWorkspace& workspace) const {
    (void)workspace;
    return LossAndGradient(data, batch_indices, gradient);
  }

  // Predicted class for example `index` of `data`.
  virtual int Predict(const Dataset& data, int index) const = 0;

  // Batched prediction: writes the predicted class of every `indices[i]` to
  // `out[i]` (`out.size()` must equal `indices.size()`), sharing one forward
  // pass over the whole batch where implemented. The evaluation counterpart
  // of the workspace LossAndGradient overload (same scratch reuse, same
  // bit-identical results); the default loops single-example Predict.
  // Contract: implementations (of this and the LossAndGradient overload) may
  // use only the workspace's double Scratch slots — IntScratch slots are
  // reserved for callers, whose index spans may be backed by them.
  virtual void PredictBatch(const Dataset& data, std::span<const int> indices,
                            std::span<int> out,
                            TrainingWorkspace& workspace) const {
    (void)workspace;
    for (size_t i = 0; i < indices.size(); ++i) {
      out[i] = Predict(data, indices[i]);
    }
  }

  // Deep copy (architecture + parameters).
  virtual std::unique_ptr<Model> Clone() const = 0;
};

}  // namespace netmax::ml

#endif  // NETMAX_ML_MODEL_H_
