#ifndef NETMAX_ML_MODEL_H_
#define NETMAX_ML_MODEL_H_

// Trainable-model interface.
//
// Decentralized SGD only needs three things from a model: a flat parameter
// vector (what workers exchange in Algorithm 2), minibatch loss+gradient
// (line 11's local update), and prediction (test accuracy). Every model in
// src/ml implements this interface and is verified against finite-difference
// gradients in tests.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.h"
#include "ml/sharding.h"
#include "ml/workspace.h"

namespace netmax::ml {

class Model {
 public:
  virtual ~Model() = default;

  virtual std::string name() const = 0;

  virtual int num_parameters() const = 0;

  // Flat view of the parameters; consensus updates mutate this in place.
  virtual std::span<double> parameters() = 0;
  virtual std::span<const double> parameters() const = 0;

  // (Re-)initializes the parameters (scaled Gaussian fan-in init),
  // deterministically in `seed`.
  virtual void InitializeParameters(uint64_t seed) = 0;

  // Computes the mean cross-entropy loss over `batch_indices` of `data` and,
  // if `gradient` is non-empty, writes d(loss)/d(parameters) into it
  // (`gradient.size()` must equal num_parameters()). Does not modify the
  // model. Returns the loss.
  virtual double LossAndGradient(const Dataset& data,
                                 std::span<const int> batch_indices,
                                 std::span<double> gradient) const = 0;

  // Workspace overload: the zero-allocation batched hot path. Scratch memory
  // comes from `workspace` (grow-only, reused across batches), and results
  // are bit-identical to the workspace-free overload — implementations keep
  // the same per-element summation order. The batched models define this
  // overload through the fixed leaf decomposition of ml/sharding.h (per-leaf
  // unscaled partials, pairwise tree reduction), which is what makes the
  // sharded parallel evaluation bit-identical to this serial call. The
  // default forwards to the workspace-free overload for models that have not
  // been batched yet.
  virtual double LossAndGradient(const Dataset& data,
                                 std::span<const int> batch_indices,
                                 std::span<double> gradient,
                                 TrainingWorkspace& workspace) const {
    (void)workspace;
    return LossAndGradient(data, batch_indices, gradient);
  }

  // Shard-range entry point of the leaf decomposition (ml/sharding.h): for
  // each leaf l in [leaf_begin, leaf_end) of GradientLeafRange(batch, l),
  // writes the UNSCALED loss sum over the leaf's samples into
  // loss_sums[l - leaf_begin] and, when `gradient_sums` is non-empty, the
  // unscaled gradient sum into
  //   gradient_sums.subspan((l - leaf_begin) * num_parameters(),
  //                         num_parameters()).
  // Pure with respect to the model and dataset (safe to run concurrently for
  // disjoint output slices and distinct workspaces). Non-virtual by design:
  // this slicing loop defines the bit-identity contract once for every
  // model; per-model arithmetic plugs in via LeafLossAndGradientSums below.
  void EvalGradientLeaves(const Dataset& data,
                          std::span<const int> batch_indices, int leaf_begin,
                          int leaf_end, std::span<double> loss_sums,
                          std::span<double> gradient_sums,
                          TrainingWorkspace& workspace) const {
    const size_t width = static_cast<size_t>(num_parameters());
    for (int l = leaf_begin; l < leaf_end; ++l) {
      const LeafRange range = GradientLeafRange(batch_indices.size(), l);
      const std::span<const int> leaf =
          batch_indices.subspan(range.begin, range.size());
      const size_t k = static_cast<size_t>(l - leaf_begin);
      loss_sums[k] = LeafLossAndGradientSums(
          data, leaf,
          gradient_sums.empty() ? std::span<double>{}
                                : gradient_sums.subspan(k * width, width),
          workspace);
    }
  }

  // Predicted class for example `index` of `data`.
  virtual int Predict(const Dataset& data, int index) const = 0;

  // Batched prediction: writes the predicted class of every `indices[i]` to
  // `out[i]` (`out.size()` must equal `indices.size()`), sharing one forward
  // pass over the whole batch where implemented. The evaluation counterpart
  // of the workspace LossAndGradient overload (same scratch reuse, same
  // bit-identical results); the default loops single-example Predict.
  // Contract: implementations (of this and the LossAndGradient overload) may
  // use only the workspace's double Scratch slots — IntScratch slots are
  // reserved for callers, whose index spans may be backed by them.
  virtual void PredictBatch(const Dataset& data, std::span<const int> indices,
                            std::span<int> out,
                            TrainingWorkspace& workspace) const {
    (void)workspace;
    for (size_t i = 0; i < indices.size(); ++i) {
      out[i] = Predict(data, indices[i]);
    }
  }

  // Sizes of the contiguous parameter segments that layer-wise partial sync
  // (ml/compression.h) masks over; entries sum to num_parameters(). The
  // default treats the whole vector as one segment; layered models override
  // with their real per-layer geometry.
  virtual std::vector<int64_t> LayerSegments() const {
    return {static_cast<int64_t>(num_parameters())};
  }

  // Deep copy (architecture + parameters).
  virtual std::unique_ptr<Model> Clone() const = 0;

 protected:
  // One leaf of EvalGradientLeaves: the unscaled loss sum over `leaf`, with
  // the unscaled gradient sums written into `gradient` (size
  // num_parameters(); empty = loss only). Like the overloads above,
  // implementations may use only the workspace's double Scratch slots —
  // ReduceScratch slots belong to the sharding driver and IntScratch slots
  // to callers. The default evaluates the workspace-FREE LossAndGradient
  // (whose scratch, the thread-local workspace, cannot alias the driver's
  // live ReduceScratch partials) and rescales the leaf mean back to sums;
  // that keeps every determinism guarantee — leaves are fixed regardless of
  // shards/threads — but is bit-exact against the batched models' native
  // sums only when the leaf size is a power of two. Models that route their
  // workspace LossAndGradient through ShardedLossAndGradient MUST override
  // this with a native unscaled evaluation (all batched models do), or the
  // default's fallback re-enters the driver per leaf.
  virtual double LeafLossAndGradientSums(const Dataset& data,
                                         std::span<const int> leaf,
                                         std::span<double> gradient,
                                         TrainingWorkspace& workspace) const {
    (void)workspace;  // the default deliberately uses thread-local scratch
    const double mean_loss = LossAndGradient(data, leaf, gradient);
    const double samples = static_cast<double>(leaf.size());
    for (double& g : gradient) g *= samples;
    return mean_loss * samples;
  }
};

}  // namespace netmax::ml

#endif  // NETMAX_ML_MODEL_H_
