#ifndef NETMAX_ML_MLP_H_
#define NETMAX_ML_MLP_H_

// Multi-layer perceptron with ReLU activations and a softmax cross-entropy
// head. The non-convex stand-in for the paper's deep models: the consensus /
// gossip dynamics only interact with the flat parameter vector, so an MLP
// exercises exactly the code path a ResNet would, at laptop scale.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/model.h"

namespace netmax::ml {

class Mlp : public Model {
 public:
  // layer_sizes = {input_dim, hidden..., num_classes}; at least {in, out}.
  // Parameters are stored flat, layer by layer, each layer as
  // [W row-major (out x in) | b (out)].
  explicit Mlp(std::vector<int> layer_sizes);

  std::string name() const override { return "mlp"; }
  int num_parameters() const override;
  std::span<double> parameters() override { return params_; }
  std::span<const double> parameters() const override { return params_; }
  void InitializeParameters(uint64_t seed) override;
  double LossAndGradient(const Dataset& data,
                         std::span<const int> batch_indices,
                         std::span<double> gradient) const override;
  // Batched zero-allocation path: each gradient leaf (ml/sharding.h) moves
  // through the layers as one matrix-matrix product (bias-seeded GemmBias
  // against a transposed weight copy forward, GemmAtB/Gemm backward), with
  // every buffer carved from `workspace`; leaf partials combine by the fixed
  // pairwise tree, so this serial call is bit-identical to the sharded
  // parallel evaluation at any shard/thread count. Within a leaf the
  // summation order is the per-sample formulation's (ascending indices).
  double LossAndGradient(const Dataset& data,
                         std::span<const int> batch_indices,
                         std::span<double> gradient,
                         TrainingWorkspace& workspace) const override;
  int Predict(const Dataset& data, int index) const override;
  void PredictBatch(const Dataset& data, std::span<const int> indices,
                    std::span<int> out,
                    TrainingWorkspace& workspace) const override;
  std::unique_ptr<Model> Clone() const override;

  // One segment per layer: weights + bias of layer l as a single contiguous
  // block (matches the flat [W | b] layout above).
  std::vector<int64_t> LayerSegments() const override;

  const std::vector<int>& layer_sizes() const { return layer_sizes_; }
  int num_layers() const { return static_cast<int>(layer_sizes_.size()) - 1; }

  // Offset of layer l's weight / bias block within parameters() (exposed for
  // the naive reference implementation used by the golden tests).
  size_t WeightOffset(int layer) const;
  size_t BiasOffset(int layer) const;

 private:
  // Batched forward pass over `indices`: gathers features and fills one
  // activation matrix per layer in `workspace`; returns the logits matrix
  // (indices.size() x num_classes).
  std::span<double> ForwardBatch(const Dataset& data,
                                 std::span<const int> indices,
                                 TrainingWorkspace& workspace) const;

  // Native unscaled leaf evaluation (accumulates into zero-filled
  // `gradient`), plugged into the base class's EvalGradientLeaves loop.
  double LeafLossAndGradientSums(const Dataset& data,
                                 std::span<const int> leaf,
                                 std::span<double> gradient,
                                 TrainingWorkspace& workspace) const override;

  std::vector<int> layer_sizes_;
  std::vector<size_t> layer_offsets_;  // start of each layer's block
  std::vector<double> params_;
};

}  // namespace netmax::ml

#endif  // NETMAX_ML_MLP_H_
