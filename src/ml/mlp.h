#ifndef NETMAX_ML_MLP_H_
#define NETMAX_ML_MLP_H_

// Multi-layer perceptron with ReLU activations and a softmax cross-entropy
// head. The non-convex stand-in for the paper's deep models: the consensus /
// gossip dynamics only interact with the flat parameter vector, so an MLP
// exercises exactly the code path a ResNet would, at laptop scale.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/model.h"

namespace netmax::ml {

class Mlp : public Model {
 public:
  // layer_sizes = {input_dim, hidden..., num_classes}; at least {in, out}.
  // Parameters are stored flat, layer by layer, each layer as
  // [W row-major (out x in) | b (out)].
  explicit Mlp(std::vector<int> layer_sizes);

  std::string name() const override { return "mlp"; }
  int num_parameters() const override;
  std::span<double> parameters() override { return params_; }
  std::span<const double> parameters() const override { return params_; }
  void InitializeParameters(uint64_t seed) override;
  double LossAndGradient(const Dataset& data,
                         std::span<const int> batch_indices,
                         std::span<double> gradient) const override;
  int Predict(const Dataset& data, int index) const override;
  std::unique_ptr<Model> Clone() const override;

  const std::vector<int>& layer_sizes() const { return layer_sizes_; }
  int num_layers() const { return static_cast<int>(layer_sizes_.size()) - 1; }

 private:
  // Offset of layer l's weight block within params_.
  size_t WeightOffset(int layer) const;
  size_t BiasOffset(int layer) const;

  // Runs a forward pass on `x`; activations[l] holds the post-activation
  // output of layer l (pre-softmax logits for the last layer).
  void Forward(std::span<const double> x,
               std::vector<std::vector<double>>& activations) const;

  std::vector<int> layer_sizes_;
  std::vector<size_t> layer_offsets_;  // start of each layer's block
  std::vector<double> params_;
};

}  // namespace netmax::ml

#endif  // NETMAX_ML_MLP_H_
