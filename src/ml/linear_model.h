#ifndef NETMAX_ML_LINEAR_MODEL_H_
#define NETMAX_ML_LINEAR_MODEL_H_

// Multinomial logistic regression (softmax regression). The convex member of
// the model zoo: convergence theory (Theorem 1/3 of the paper) assumes strong
// convexity, so tests of the theoretical bounds use this model.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/model.h"

namespace netmax::ml {

class LinearModel : public Model {
 public:
  // Builds a feature_dim -> num_classes softmax classifier. Parameters are
  // stored flat as [W row-major (C x D) | b (C)].
  LinearModel(int feature_dim, int num_classes);

  std::string name() const override { return "linear"; }
  int num_parameters() const override;
  std::span<double> parameters() override { return params_; }
  std::span<const double> parameters() const override { return params_; }
  void InitializeParameters(uint64_t seed) override;
  double LossAndGradient(const Dataset& data,
                         std::span<const int> batch_indices,
                         std::span<double> gradient) const override;
  int Predict(const Dataset& data, int index) const override;
  std::unique_ptr<Model> Clone() const override;

  int feature_dim() const { return feature_dim_; }
  int num_classes() const { return num_classes_; }

 private:
  // Writes class logits for `x` into `logits` (size num_classes_).
  void Logits(std::span<const double> x, std::span<double> logits) const;

  int feature_dim_;
  int num_classes_;
  std::vector<double> params_;
};

// Computes softmax probabilities of `logits` in place, numerically stably.
void SoftmaxInPlace(std::span<double> logits);

// Returns -log(probabilities[label]) with clamping away from 0.
double CrossEntropyFromProbabilities(std::span<const double> probabilities,
                                     int label);

}  // namespace netmax::ml

#endif  // NETMAX_ML_LINEAR_MODEL_H_
