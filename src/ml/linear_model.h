#ifndef NETMAX_ML_LINEAR_MODEL_H_
#define NETMAX_ML_LINEAR_MODEL_H_

// Multinomial logistic regression (softmax regression). The convex member of
// the model zoo: convergence theory (Theorem 1/3 of the paper) assumes strong
// convexity, so tests of the theoretical bounds use this model.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/model.h"

namespace netmax::ml {

class LinearModel : public Model {
 public:
  // Builds a feature_dim -> num_classes softmax classifier. Parameters are
  // stored flat as [W row-major (C x D) | b (C)].
  LinearModel(int feature_dim, int num_classes);

  std::string name() const override { return "linear"; }
  int num_parameters() const override;
  std::span<double> parameters() override { return params_; }
  std::span<const double> parameters() const override { return params_; }
  void InitializeParameters(uint64_t seed) override;
  double LossAndGradient(const Dataset& data,
                         std::span<const int> batch_indices,
                         std::span<double> gradient) const override;
  // Batched zero-allocation path: per gradient leaf (ml/sharding.h), logits
  // as one GEMM and gradient as rank-1 updates in batch order; leaf partials
  // combine by the fixed pairwise tree, making this serial call
  // bit-identical to the sharded parallel evaluation. Within a leaf the
  // summation order is the per-sample formulation's.
  double LossAndGradient(const Dataset& data,
                         std::span<const int> batch_indices,
                         std::span<double> gradient,
                         TrainingWorkspace& workspace) const override;
  int Predict(const Dataset& data, int index) const override;
  void PredictBatch(const Dataset& data, std::span<const int> indices,
                    std::span<int> out,
                    TrainingWorkspace& workspace) const override;
  std::unique_ptr<Model> Clone() const override;

  int feature_dim() const { return feature_dim_; }
  int num_classes() const { return num_classes_; }

 private:
  // Batched forward: gathers the batch's features into `workspace` and
  // returns the logits matrix (indices.size() x num_classes).
  std::span<double> ForwardBatch(const Dataset& data,
                                 std::span<const int> indices,
                                 TrainingWorkspace& workspace) const;

  // Native unscaled leaf evaluation (accumulates into zero-filled
  // `gradient`), plugged into the base class's EvalGradientLeaves loop.
  double LeafLossAndGradientSums(const Dataset& data,
                                 std::span<const int> leaf,
                                 std::span<double> gradient,
                                 TrainingWorkspace& workspace) const override;

  int feature_dim_;
  int num_classes_;
  std::vector<double> params_;
};

// Computes softmax probabilities of `logits` in place, numerically stably.
void SoftmaxInPlace(std::span<double> logits);

// Row-wise argmax of a row-major (rows x cols) logits matrix into `out`
// (size rows); ties break toward the lowest class index, matching
// single-example Predict.
void ArgmaxRows(std::span<const double> logits, size_t rows, size_t cols,
                std::span<int> out);

// Returns -log(probabilities[label]) with clamping away from 0.
double CrossEntropyFromProbabilities(std::span<const double> probabilities,
                                     int label);

}  // namespace netmax::ml

#endif  // NETMAX_ML_LINEAR_MODEL_H_
