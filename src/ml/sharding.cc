#include "ml/sharding.h"

#include <algorithm>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "ml/model.h"
#include "ml/workspace.h"

namespace netmax::ml {
namespace {

// ReduceScratch slot layout of the sharding driver.
constexpr int kSlotLossSums = 0;
constexpr int kSlotGradientSums = 1;

// Fixed-shape pairwise tree reduction over `count` contiguous partials of
// `width` doubles each, restricted to the column slice [col_begin, col_end),
// in place; the reduced partial lands in slot 0. Each level sums adjacent
// pairs (slot 2i + slot 2i+1 -> slot i) and moves an odd leftover down
// unchanged, so the tree shape — and therefore every rounding step — depends
// only on `count`, never on who produced the partials. The reduction is
// element-wise across columns, which is what lets disjoint slices run
// concurrently without touching the per-element arithmetic.
void TreeReduceColumns(std::span<double> partials, int count, size_t width,
                       size_t col_begin, size_t col_end) {
  int n = count;
  while (n > 1) {
    const int pairs = n / 2;
    for (int i = 0; i < pairs; ++i) {
      double* dst = partials.data() + width * static_cast<size_t>(i);
      const double* a = partials.data() + width * static_cast<size_t>(2 * i);
      const double* b =
          partials.data() + width * static_cast<size_t>(2 * i + 1);
      for (size_t j = col_begin; j < col_end; ++j) dst[j] = a[j] + b[j];
    }
    if (n % 2 == 1 && n > 1) {
      double* dst = partials.data() + width * static_cast<size_t>(pairs);
      const double* src = partials.data() + width * static_cast<size_t>(n - 1);
      if (dst != src) {
        std::copy(src + col_begin, src + col_end,
                  dst + col_begin);  // value move, no FP
      }
    }
    n = pairs + n % 2;
  }
}

// Minimum columns per pooled reduce task: below this the slice is too small
// to amortize the fan-out.
constexpr size_t kReduceChunkColumns = 1 << 12;

}  // namespace

// Tree-reduces `count` partials of `width` doubles, fanning the column range
// onto `pool` for wide models (width >= kPooledReduceMinWidth). Bits are
// identical either way: chunking only changes who reduces a column.
void TreeReducePartials(std::span<double> partials, int count, size_t width,
                        ThreadPool* pool) {
  if (pool != nullptr && count >= 2 && width >= kPooledReduceMinWidth) {
    const size_t max_tasks = static_cast<size_t>(pool->num_threads()) + 1;
    const size_t tasks = std::min(max_tasks, width / kReduceChunkColumns);
    if (tasks >= 2) {
      ParallelFor(*pool, static_cast<int>(tasks), [&](int t) {
        const size_t lo = width * static_cast<size_t>(t) / tasks;
        const size_t hi = width * (static_cast<size_t>(t) + 1) / tasks;
        TreeReduceColumns(partials, count, width, lo, hi);
      });
      return;
    }
  }
  TreeReduceColumns(partials, count, width, 0, width);
}

int GradientLeafCount(size_t batch) {
  return static_cast<int>((batch + kGradientLeafSamples - 1) /
                          kGradientLeafSamples);
}

LeafRange GradientLeafRange(size_t batch, int leaf) {
  LeafRange range;
  range.begin = static_cast<size_t>(leaf) * kGradientLeafSamples;
  range.end = std::min(batch, range.begin + kGradientLeafSamples);
  NETMAX_CHECK_LT(range.begin, range.end) << "leaf out of range";
  return range;
}

double ShardedLossAndGradient(const Model& model, const Dataset& data,
                              std::span<const int> batch_indices,
                              std::span<double> gradient,
                              TrainingWorkspace& workspace, ThreadPool* pool,
                              int shards) {
  NETMAX_CHECK(!batch_indices.empty());
  const bool want_gradient = !gradient.empty();
  const size_t width =
      want_gradient ? static_cast<size_t>(model.num_parameters()) : 0;
  if (want_gradient) {
    NETMAX_CHECK_EQ(static_cast<int>(gradient.size()),
                    model.num_parameters());
  }
  const int num_leaves = GradientLeafCount(batch_indices.size());

  std::span<double> loss_sums =
      workspace.ReduceScratch(kSlotLossSums, static_cast<size_t>(num_leaves));
  std::span<double> gradient_sums =
      want_gradient
          ? workspace.ReduceScratch(kSlotGradientSums,
                                    static_cast<size_t>(num_leaves) * width)
          : std::span<double>{};

  const int tasks =
      pool == nullptr ? 1 : std::clamp(shards, 1, num_leaves);
  if (tasks <= 1) {
    model.EvalGradientLeaves(data, batch_indices, 0, num_leaves, loss_sums,
                             gradient_sums, workspace);
  } else {
    // Contiguous balanced leaf ranges, one per task. Task 0 reuses the parent
    // workspace (its model scratch stays warm across serial/sharded calls);
    // every other task gets its own persistent child. Which task evaluates a
    // leaf never matters to the result — leaf partials are pure functions of
    // (model, data, indices).
    //
    // Materialize the children before fanning out: ShardWorkspace grows the
    // child table on first use, and the tasks look their child up
    // concurrently — the lookups must be reads of a settled table.
    for (int t = 1; t < tasks; ++t) workspace.ShardWorkspace(t - 1);
    ParallelFor(*pool, tasks, [&](int t) {
      const int lo = num_leaves * t / tasks;
      const int hi = num_leaves * (t + 1) / tasks;
      if (lo == hi) return;
      TrainingWorkspace& shard_workspace =
          t == 0 ? workspace : workspace.ShardWorkspace(t - 1);
      model.EvalGradientLeaves(
          data, batch_indices, lo, hi,
          loss_sums.subspan(static_cast<size_t>(lo),
                            static_cast<size_t>(hi - lo)),
          want_gradient
              ? gradient_sums.subspan(static_cast<size_t>(lo) * width,
                                      static_cast<size_t>(hi - lo) * width)
              : std::span<double>{},
          shard_workspace);
    });
  }

  TreeReducePartials(loss_sums, num_leaves, 1, nullptr);
  const double inv_batch = 1.0 / static_cast<double>(batch_indices.size());
  if (want_gradient) {
    TreeReducePartials(gradient_sums, num_leaves, width, pool);
    for (size_t j = 0; j < width; ++j) {
      gradient[j] = gradient_sums[j] * inv_batch;
    }
  }
  return loss_sums[0] * inv_batch;
}

}  // namespace netmax::ml
