#include "ml/model_profile.h"

namespace netmax::ml {

ModelProfile MobileNetProfile() {
  return ModelProfile{"mobilenet", 4'200'000, 0.055};
}

ModelProfile GoogLeNetProfile() {
  return ModelProfile{"googlenet", 6'800'000, 0.095};
}

ModelProfile ResNet18Profile() {
  return ModelProfile{"resnet18", 11'700'000, 0.110};
}

ModelProfile ResNet50Profile() {
  return ModelProfile{"resnet50", 25'600'000, 0.260};
}

ModelProfile Vgg19Profile() {
  return ModelProfile{"vgg19", 143'700'000, 0.340};
}

StatusOr<ModelProfile> ModelProfileByName(const std::string& name) {
  for (const ModelProfile& profile :
       {MobileNetProfile(), GoogLeNetProfile(), ResNet18Profile(),
        ResNet50Profile(), Vgg19Profile()}) {
    if (profile.name == name) return profile;
  }
  return NotFoundError("no model profile named '" + name + "'");
}

}  // namespace netmax::ml
