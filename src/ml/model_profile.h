#ifndef NETMAX_ML_MODEL_PROFILE_H_
#define NETMAX_ML_MODEL_PROFILE_H_

// Cost profiles of the paper's deep models.
//
// Time-domain results (Figures 3, 5-11, and the loss-vs-time curves) depend on
// the byte and FLOP budget of the trained model, not on its learned function.
// The profiles below carry the paper's own parameter counts (Section V-A:
// MobileNet 4.2M, ResNet18 11.7M, ResNet50 25.6M, VGG19 143.7M; Appendix G:
// GoogLeNet 6.8M) plus per-minibatch compute times at RTX-2080-Ti scale. The
// simulator derives transfer times from message_bytes() and iteration times
// from max{compute, communication} as in Section II-B.

#include <cstdint>
#include <string>

#include "common/status.h"

namespace netmax::ml {

struct ModelProfile {
  std::string name;
  // Parameter count as reported by the paper.
  int64_t num_parameters = 0;
  // Forward+backward wall time of one minibatch (batch 128 unless the
  // experiment overrides it) on one GPU, in seconds.
  double compute_seconds = 0.0;

  // Bytes exchanged when a worker pulls this model from a peer (fp32).
  int64_t message_bytes() const { return num_parameters * 4; }
};

ModelProfile MobileNetProfile();
ModelProfile GoogLeNetProfile();
ModelProfile ResNet18Profile();
ModelProfile ResNet50Profile();
ModelProfile Vgg19Profile();

// Lookup by name ("mobilenet", "googlenet", "resnet18", "resnet50", "vgg19").
StatusOr<ModelProfile> ModelProfileByName(const std::string& name);

}  // namespace netmax::ml

#endif  // NETMAX_ML_MODEL_PROFILE_H_
