#include "ml/conv_net.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "linalg/vector_ops.h"
#include "ml/linear_model.h"

namespace netmax::ml {

ConvNet::ConvNet(int input_dim, int num_filters, int kernel_size,
                 int num_classes)
    : input_dim_(input_dim), num_filters_(num_filters),
      kernel_size_(kernel_size), num_classes_(num_classes),
      conv_len_(input_dim - kernel_size + 1) {
  NETMAX_CHECK_GT(input_dim, 0);
  NETMAX_CHECK_GT(num_filters, 0);
  NETMAX_CHECK_GT(kernel_size, 0);
  NETMAX_CHECK_LE(kernel_size, input_dim);
  NETMAX_CHECK_GT(num_classes, 1);
  const size_t conv_params =
      static_cast<size_t>(num_filters) * kernel_size + num_filters;
  const size_t fc_params = static_cast<size_t>(num_classes) * num_filters *
                               static_cast<size_t>(conv_len_) +
                           static_cast<size_t>(num_classes);
  params_.assign(conv_params + fc_params, 0.0);
}

size_t ConvNet::ConvBiasOffset() const {
  return static_cast<size_t>(num_filters_) * kernel_size_;
}

size_t ConvNet::FcWeightOffset() const {
  return ConvBiasOffset() + static_cast<size_t>(num_filters_);
}

size_t ConvNet::FcBiasOffset() const {
  return FcWeightOffset() + static_cast<size_t>(num_classes_) * num_filters_ *
                                static_cast<size_t>(conv_len_);
}

int ConvNet::num_parameters() const { return static_cast<int>(params_.size()); }

void ConvNet::InitializeParameters(uint64_t seed) {
  Rng rng(seed);
  double* conv_w = params_.data() + ConvWeightOffset();
  const double conv_scale = std::sqrt(2.0 / static_cast<double>(kernel_size_));
  for (int i = 0; i < num_filters_ * kernel_size_; ++i) {
    conv_w[i] = rng.Gaussian(0.0, conv_scale);
  }
  double* conv_b = params_.data() + ConvBiasOffset();
  for (int f = 0; f < num_filters_; ++f) conv_b[f] = 0.0;

  const int fc_in = num_filters_ * conv_len_;
  double* fc_w = params_.data() + FcWeightOffset();
  const double fc_scale = 1.0 / std::sqrt(static_cast<double>(fc_in));
  for (int i = 0; i < num_classes_ * fc_in; ++i) {
    fc_w[i] = rng.Gaussian(0.0, fc_scale);
  }
  double* fc_b = params_.data() + FcBiasOffset();
  for (int c = 0; c < num_classes_; ++c) fc_b[c] = 0.0;
}

void ConvNet::Forward(std::span<const double> x, std::vector<double>& conv_out,
                      std::vector<double>& logits) const {
  const double* conv_w = params_.data() + ConvWeightOffset();
  const double* conv_b = params_.data() + ConvBiasOffset();
  conv_out.assign(static_cast<size_t>(num_filters_) * conv_len_, 0.0);
  for (int f = 0; f < num_filters_; ++f) {
    const double* kernel = conv_w + static_cast<size_t>(f) * kernel_size_;
    double* out = conv_out.data() + static_cast<size_t>(f) * conv_len_;
    for (int p = 0; p < conv_len_; ++p) {
      double acc = conv_b[f];
      for (int k = 0; k < kernel_size_; ++k) {
        acc += kernel[k] * x[static_cast<size_t>(p + k)];
      }
      out[p] = std::max(0.0, acc);  // ReLU
    }
  }
  const int fc_in = num_filters_ * conv_len_;
  const double* fc_w = params_.data() + FcWeightOffset();
  const double* fc_b = params_.data() + FcBiasOffset();
  logits.assign(static_cast<size_t>(num_classes_), 0.0);
  for (int c = 0; c < num_classes_; ++c) {
    const double* row = fc_w + static_cast<size_t>(c) * fc_in;
    double acc = fc_b[c];
    for (int j = 0; j < fc_in; ++j) acc += row[j] * conv_out[static_cast<size_t>(j)];
    logits[static_cast<size_t>(c)] = acc;
  }
}

double ConvNet::LossAndGradient(const Dataset& data,
                                std::span<const int> batch_indices,
                                std::span<double> gradient) const {
  NETMAX_CHECK(!batch_indices.empty());
  NETMAX_CHECK_EQ(data.feature_dim(), input_dim_);
  const bool want_gradient = !gradient.empty();
  if (want_gradient) {
    NETMAX_CHECK_EQ(static_cast<int>(gradient.size()), num_parameters());
    netmax::linalg::Fill(gradient, 0.0);
  }

  const int fc_in = num_filters_ * conv_len_;
  std::vector<double> conv_out;
  std::vector<double> probs;
  double total_loss = 0.0;
  for (int index : batch_indices) {
    const std::span<const double> x = data.features(index);
    const int label = data.label(index);
    Forward(x, conv_out, probs);
    SoftmaxInPlace(probs);
    total_loss += CrossEntropyFromProbabilities(probs, label);
    if (!want_gradient) continue;

    // dL/dlogits.
    std::vector<double> dlogits = probs;
    dlogits[static_cast<size_t>(label)] -= 1.0;

    // FC layer gradients and backprop into conv activations.
    const double* fc_w = params_.data() + FcWeightOffset();
    double* g_fc_w = gradient.data() + FcWeightOffset();
    double* g_fc_b = gradient.data() + FcBiasOffset();
    std::vector<double> dconv(static_cast<size_t>(fc_in), 0.0);
    for (int c = 0; c < num_classes_; ++c) {
      const double d = dlogits[static_cast<size_t>(c)];
      g_fc_b[c] += d;
      if (d == 0.0) continue;
      double* grow = g_fc_w + static_cast<size_t>(c) * fc_in;
      const double* row = fc_w + static_cast<size_t>(c) * fc_in;
      for (int j = 0; j < fc_in; ++j) {
        grow[j] += d * conv_out[static_cast<size_t>(j)];
        dconv[static_cast<size_t>(j)] += d * row[j];
      }
    }
    // ReLU mask.
    for (int j = 0; j < fc_in; ++j) {
      if (conv_out[static_cast<size_t>(j)] <= 0.0) dconv[static_cast<size_t>(j)] = 0.0;
    }
    // Conv layer gradients.
    double* g_conv_w = gradient.data() + ConvWeightOffset();
    double* g_conv_b = gradient.data() + ConvBiasOffset();
    for (int f = 0; f < num_filters_; ++f) {
      double* gk = g_conv_w + static_cast<size_t>(f) * kernel_size_;
      const double* dout = dconv.data() + static_cast<size_t>(f) * conv_len_;
      for (int p = 0; p < conv_len_; ++p) {
        const double d = dout[p];
        if (d == 0.0) continue;
        for (int k = 0; k < kernel_size_; ++k) {
          gk[k] += d * x[static_cast<size_t>(p + k)];
        }
        g_conv_b[f] += d;
      }
    }
  }
  const double inv_batch = 1.0 / static_cast<double>(batch_indices.size());
  if (want_gradient) netmax::linalg::Scale(inv_batch, gradient);
  return total_loss * inv_batch;
}

int ConvNet::Predict(const Dataset& data, int index) const {
  std::vector<double> conv_out;
  std::vector<double> logits;
  Forward(data.features(index), conv_out, logits);
  int best = 0;
  for (int c = 1; c < num_classes_; ++c) {
    if (logits[static_cast<size_t>(c)] > logits[static_cast<size_t>(best)]) {
      best = c;
    }
  }
  return best;
}

std::unique_ptr<Model> ConvNet::Clone() const {
  return std::make_unique<ConvNet>(*this);
}

}  // namespace netmax::ml
