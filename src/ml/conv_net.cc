#include "ml/conv_net.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "linalg/blas.h"
#include "linalg/vector_ops.h"
#include "ml/linear_model.h"
#include "ml/sharding.h"

namespace netmax::ml {
namespace {

// Workspace slot layout.
constexpr int kSlotConvOut = 0;    // batch x F*L post-ReLU conv activations
constexpr int kSlotLogits = 1;     // batch x C logits / probs / deltas
constexpr int kSlotDConv = 2;      // batch x F*L conv-activation deltas
constexpr int kSlotFcWeightT = 3;  // F*L x C transposed FC weights

}  // namespace

ConvNet::ConvNet(int input_dim, int num_filters, int kernel_size,
                 int num_classes)
    : input_dim_(input_dim), num_filters_(num_filters),
      kernel_size_(kernel_size), num_classes_(num_classes),
      conv_len_(input_dim - kernel_size + 1) {
  NETMAX_CHECK_GT(input_dim, 0);
  NETMAX_CHECK_GT(num_filters, 0);
  NETMAX_CHECK_GT(kernel_size, 0);
  NETMAX_CHECK_LE(kernel_size, input_dim);
  NETMAX_CHECK_GT(num_classes, 1);
  const size_t conv_params =
      static_cast<size_t>(num_filters) * kernel_size + num_filters;
  const size_t fc_params = static_cast<size_t>(num_classes) * num_filters *
                               static_cast<size_t>(conv_len_) +
                           static_cast<size_t>(num_classes);
  params_.assign(conv_params + fc_params, 0.0);
}

size_t ConvNet::ConvBiasOffset() const {
  return static_cast<size_t>(num_filters_) * kernel_size_;
}

size_t ConvNet::FcWeightOffset() const {
  return ConvBiasOffset() + static_cast<size_t>(num_filters_);
}

size_t ConvNet::FcBiasOffset() const {
  return FcWeightOffset() + static_cast<size_t>(num_classes_) * num_filters_ *
                                static_cast<size_t>(conv_len_);
}

int ConvNet::num_parameters() const { return static_cast<int>(params_.size()); }

void ConvNet::InitializeParameters(uint64_t seed) {
  Rng rng(seed);
  double* conv_w = params_.data() + ConvWeightOffset();
  const double conv_scale = std::sqrt(2.0 / static_cast<double>(kernel_size_));
  for (int i = 0; i < num_filters_ * kernel_size_; ++i) {
    conv_w[i] = rng.Gaussian(0.0, conv_scale);
  }
  double* conv_b = params_.data() + ConvBiasOffset();
  for (int f = 0; f < num_filters_; ++f) conv_b[f] = 0.0;

  const int fc_in = num_filters_ * conv_len_;
  double* fc_w = params_.data() + FcWeightOffset();
  const double fc_scale = 1.0 / std::sqrt(static_cast<double>(fc_in));
  for (int i = 0; i < num_classes_ * fc_in; ++i) {
    fc_w[i] = rng.Gaussian(0.0, fc_scale);
  }
  double* fc_b = params_.data() + FcBiasOffset();
  for (int c = 0; c < num_classes_; ++c) fc_b[c] = 0.0;
}

std::span<double> ConvNet::ForwardBatch(const Dataset& data,
                                        std::span<const int> indices,
                                        TrainingWorkspace& workspace) const {
  const size_t batch = indices.size();
  const size_t fc_in = static_cast<size_t>(num_filters_) * conv_len_;
  const double* conv_w = params_.data() + ConvWeightOffset();
  const double* conv_b = params_.data() + ConvBiasOffset();

  // Conv stage per sample (valid-padding 1-D conv), writing every sample's
  // F x L activation row into one matrix. Taps run k-outer / p-inner: the
  // inner loop is an elementwise shifted axpy over contiguous positions
  // (vectorizable), and each output still accumulates bias-first then taps in
  // ascending-k order — the same sum as the per-position loop.
  std::span<double> conv_out = workspace.Scratch(kSlotConvOut, batch * fc_in);
  for (size_t s = 0; s < batch; ++s) {
    const std::span<const double> x = data.features(indices[s]);
    double* sample_out = conv_out.data() + s * fc_in;
    for (int f = 0; f < num_filters_; ++f) {
      const double* kernel = conv_w + static_cast<size_t>(f) * kernel_size_;
      double* out = sample_out + static_cast<size_t>(f) * conv_len_;
      for (int p = 0; p < conv_len_; ++p) out[p] = conv_b[f];
      for (int k = 0; k < kernel_size_; ++k) {
        const double w = kernel[k];
        const double* xk = x.data() + k;
        for (int p = 0; p < conv_len_; ++p) out[p] += w * xk[p];
      }
      for (int p = 0; p < conv_len_; ++p) {
        out[p] = std::max(0.0, out[p]);  // ReLU
      }
    }
  }

  // FC head over the whole batch as one GEMM (transposed weight copy, see
  // Mlp::ForwardBatch).
  std::span<double> fc_wt = workspace.Scratch(
      kSlotFcWeightT, fc_in * static_cast<size_t>(num_classes_));
  linalg::Transpose(num_classes_, static_cast<int>(fc_in),
                    params_.data() + FcWeightOffset(), static_cast<int>(fc_in),
                    fc_wt.data(), num_classes_);
  std::span<double> logits = workspace.Scratch(
      kSlotLogits, batch * static_cast<size_t>(num_classes_));
  linalg::GemmBias(static_cast<int>(batch), num_classes_,
                   static_cast<int>(fc_in), conv_out.data(),
                   static_cast<int>(fc_in), fc_wt.data(), num_classes_,
                   params_.data() + FcBiasOffset(), logits.data(),
                   num_classes_);
  return logits;
}

double ConvNet::LossAndGradient(const Dataset& data,
                                std::span<const int> batch_indices,
                                std::span<double> gradient) const {
  return LossAndGradient(data, batch_indices, gradient,
                         ThreadLocalWorkspace());
}

double ConvNet::LossAndGradient(const Dataset& data,
                                std::span<const int> batch_indices,
                                std::span<double> gradient,
                                TrainingWorkspace& workspace) const {
  return ShardedLossAndGradient(*this, data, batch_indices, gradient,
                                workspace, /*pool=*/nullptr, /*shards=*/1);
}

double ConvNet::LeafLossAndGradientSums(const Dataset& data,
                                        std::span<const int> leaf,
                                        std::span<double> gradient,
                                        TrainingWorkspace& workspace) const {
  NETMAX_CHECK(!leaf.empty());
  NETMAX_CHECK_EQ(data.feature_dim(), input_dim_);
  const bool want_gradient = !gradient.empty();
  if (want_gradient) {
    NETMAX_CHECK_EQ(static_cast<int>(gradient.size()), num_parameters());
    netmax::linalg::Fill(gradient, 0.0);
  }

  const size_t batch = leaf.size();
  const size_t fc_in = static_cast<size_t>(num_filters_) * conv_len_;
  const size_t num_classes = static_cast<size_t>(num_classes_);
  std::span<double> logits = ForwardBatch(data, leaf, workspace);

  double total_loss = 0.0;
  for (size_t s = 0; s < batch; ++s) {
    std::span<double> row = logits.subspan(s * num_classes, num_classes);
    SoftmaxInPlace(row);
    total_loss += CrossEntropyFromProbabilities(row, data.label(leaf[s]));
  }
  if (!want_gradient) return total_loss;

  // dL/dlogits in place: p - onehot.
  for (size_t s = 0; s < batch; ++s) {
    logits[s * num_classes + static_cast<size_t>(data.label(leaf[s]))] -= 1.0;
  }

  // FC gradients over the whole batch (rank-1 updates in batch order), then
  // deltas back into conv activation space with the ReLU mask.
  const std::span<const double> conv_out =
      workspace.Scratch(kSlotConvOut, batch * fc_in);
  linalg::GemmAtBAccumulate(static_cast<int>(batch), num_classes_,
                            static_cast<int>(fc_in), logits.data(),
                            num_classes_, conv_out.data(),
                            static_cast<int>(fc_in),
                            gradient.data() + FcWeightOffset(),
                            static_cast<int>(fc_in));
  linalg::AddRowsAccumulate(static_cast<int>(batch), num_classes_,
                            logits.data(), num_classes_,
                            gradient.data() + FcBiasOffset());
  std::span<double> dconv = workspace.Scratch(kSlotDConv, batch * fc_in);
  linalg::Gemm(static_cast<int>(batch), static_cast<int>(fc_in), num_classes_,
               logits.data(), num_classes_,
               params_.data() + FcWeightOffset(), static_cast<int>(fc_in),
               dconv.data(), static_cast<int>(fc_in));
  // ReLU mask as a branchless select (see Mlp::LossAndGradient).
  for (size_t i = 0; i < dconv.size(); ++i) {
    dconv[i] = conv_out[i] > 0.0 ? dconv[i] : 0.0;
  }

  // Conv gradients per sample, in batch order. Each tap gradient is a dot
  // product of the delta row against the shifted input (positions ascending,
  // the seed's accumulation order); the seed's skip of zero deltas only ever
  // added exact zeros, so dropping it changes no value.
  double* g_conv_w = gradient.data() + ConvWeightOffset();
  double* g_conv_b = gradient.data() + ConvBiasOffset();
  for (size_t s = 0; s < batch; ++s) {
    const std::span<const double> x = data.features(leaf[s]);
    const double* sample_dconv = dconv.data() + s * fc_in;
    for (int f = 0; f < num_filters_; ++f) {
      double* gk = g_conv_w + static_cast<size_t>(f) * kernel_size_;
      const double* dout = sample_dconv + static_cast<size_t>(f) * conv_len_;
      for (int k = 0; k < kernel_size_; ++k) {
        const double* xk = x.data() + k;
        double acc = gk[k];
        for (int p = 0; p < conv_len_; ++p) acc += dout[p] * xk[p];
        gk[k] = acc;
      }
      double bias_acc = g_conv_b[f];
      for (int p = 0; p < conv_len_; ++p) bias_acc += dout[p];
      g_conv_b[f] = bias_acc;
    }
  }
  return total_loss;
}

int ConvNet::Predict(const Dataset& data, int index) const {
  int prediction = 0;
  PredictBatch(data, {&index, 1}, {&prediction, 1}, ThreadLocalWorkspace());
  return prediction;
}

void ConvNet::PredictBatch(const Dataset& data, std::span<const int> indices,
                           std::span<int> out,
                           TrainingWorkspace& workspace) const {
  NETMAX_CHECK_EQ(indices.size(), out.size());
  if (indices.empty()) return;
  NETMAX_CHECK_EQ(data.feature_dim(), input_dim_);
  const std::span<const double> logits =
      ForwardBatch(data, indices, workspace);
  ArgmaxRows(logits, indices.size(), static_cast<size_t>(num_classes_), out);
}

std::unique_ptr<Model> ConvNet::Clone() const {
  return std::make_unique<ConvNet>(*this);
}

}  // namespace netmax::ml
