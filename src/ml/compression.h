#ifndef NETMAX_ML_COMPRESSION_H_
#define NETMAX_ML_COMPRESSION_H_

// Gradient/delta compression for the communication-efficiency experiments:
// deterministic top-k sparsification, int8 stochastic quantization, and
// layer-wise partial sync (L-FGADMM-style alternating-layer schedule). Every
// variant is a pure function of (values, round, rng stream position), so the
// simulation stays bit-identical across the whole
// {backend, reorder window, threads, shards, event queue} grid — engines call
// Transform only from commit contexts, exactly like every other RNG draw.
//
// The compressor is stateless; the only evolving state is the per-worker
// communication-round counter (core::WorkerRuntime::comm_rounds), which rides
// in reified event args and checkpoints so restores replay the same layer
// schedule.

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "net/wire_format.h"

namespace netmax::ml {

enum class CompressionKind {
  kNone = 0,
  kTopK = 1,      // keep the largest-|v| fraction, ties to the lower index
  kInt8 = 2,      // per-block scales + stochastic rounding to int8
  kLayerwise = 3, // sync layer l in round r iff l % period == r % period
};

struct CompressionSpec {
  CompressionKind kind = CompressionKind::kNone;
  double topk_fraction = 0.1;  // kTopK: fraction of values kept, in (0, 1]
  int layerwise_period = 2;    // kLayerwise: layer schedule period, >= 1

  bool enabled() const { return kind != CompressionKind::kNone; }
  Status Validate() const;
};

// Parses "none" | "topk:<frac>" | "int8" | "layerwise:<period>" (the
// --compress grammar). kInvalidArgument on anything else.
StatusOr<CompressionSpec> ParseCompressionSpec(std::string_view text);

// The canonical spelling of `spec` in the same grammar ("topk:0.1"); also the
// string pinned into checkpoint fingerprints.
std::string CompressionSpecName(const CompressionSpec& spec);

// Applies one compression variant to model-sized delta/gradient vectors and
// describes the wire message each send produces. `layer_segments` are the
// contiguous parameter segment sizes of the trained proxy model
// (ml::Model::LayerSegments()); the layer-wise schedule masks those segments,
// and the simulated profile's bytes are scaled by the proxy's active
// fraction (the profile models a network whose layer geometry we don't
// simulate parameter-by-parameter).
class GradientCompressor {
 public:
  // A default-constructed compressor is the identity ("none" over an empty
  // model); harnesses build the real one once the proxy model exists.
  GradientCompressor() = default;
  GradientCompressor(const CompressionSpec& spec,
                     std::vector<int64_t> layer_segments);

  const CompressionSpec& spec() const { return spec_; }

  // The wire message a model-sized send in communication round `round`
  // produces, for a simulated tensor of `profile_values` values. Content-free
  // (byte counts depend only on the spec, the round, and the sizes), so byte
  // accounting needs no payload materialization.
  net::WireMessage Describe(int64_t profile_values, int64_t round) const;

  // In-place lossy transform of `values`: what the receiver decodes from
  // round `round`'s encoding. Top-k zeroes the dropped entries and rounds the
  // kept ones through f32; int8 quantizes per 256-value block with stochastic
  // rounding drawn from `rng` (one draw per value in every nonzero block);
  // layerwise zeroes the round's inactive layers; none is the identity.
  // Commit contexts only — `rng` is the committing worker's stream.
  void Transform(std::span<double> values, int64_t round, Rng& rng) const;

  // Proxy values the layer-wise schedule keeps in round `round` (all of them
  // for the other variants).
  int64_t ActiveValues(int64_t round) const;

 private:
  CompressionSpec spec_;
  std::vector<int64_t> segments_;
  int64_t total_segment_values_ = 0;
  // Selection scratch for top-k; commits are strictly serial per run, so one
  // buffer per compressor (== per harness) is safe and keeps the steady
  // state allocation-free.
  mutable std::vector<int32_t> order_scratch_;
};

}  // namespace netmax::ml

#endif  // NETMAX_ML_COMPRESSION_H_
