#include "ml/compression.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/flags.h"

namespace netmax::ml {
namespace {

int64_t TopKKept(double fraction, int64_t num_values) {
  const int64_t kept = std::llround(fraction * static_cast<double>(num_values));
  return std::clamp<int64_t>(kept, 1, num_values);
}

}  // namespace

Status CompressionSpec::Validate() const {
  switch (kind) {
    case CompressionKind::kNone:
    case CompressionKind::kInt8:
      return Status::Ok();
    case CompressionKind::kTopK:
      if (!(topk_fraction > 0.0 && topk_fraction <= 1.0)) {
        return InvalidArgumentError(
            "compress: topk fraction must be in (0, 1], got " +
            std::to_string(topk_fraction));
      }
      return Status::Ok();
    case CompressionKind::kLayerwise:
      if (layerwise_period < 1) {
        return InvalidArgumentError(
            "compress: layerwise period must be >= 1, got " +
            std::to_string(layerwise_period));
      }
      return Status::Ok();
  }
  return InvalidArgumentError("compress: unknown compression kind");
}

StatusOr<CompressionSpec> ParseCompressionSpec(std::string_view text) {
  CompressionSpec spec;
  if (text == "none") {
    spec.kind = CompressionKind::kNone;
    return spec;
  }
  if (text == "int8") {
    spec.kind = CompressionKind::kInt8;
    return spec;
  }
  if (text.rfind("topk:", 0) == 0) {
    const std::string value(text.substr(5));
    char* end = nullptr;
    const double fraction = std::strtod(value.c_str(), &end);
    if (value.empty() || end != value.c_str() + value.size()) {
      return InvalidArgumentError("compress: bad topk fraction '" + value +
                                  "'");
    }
    spec.kind = CompressionKind::kTopK;
    spec.topk_fraction = fraction;
    NETMAX_RETURN_IF_ERROR(spec.Validate());
    return spec;
  }
  if (text.rfind("layerwise:", 0) == 0) {
    const std::string value(text.substr(10));
    StatusOr<int> period = ParseNonNegativeInt(value);
    if (!period.ok()) {
      return InvalidArgumentError("compress: bad layerwise period '" + value +
                                  "'");
    }
    spec.kind = CompressionKind::kLayerwise;
    spec.layerwise_period = *period;
    NETMAX_RETURN_IF_ERROR(spec.Validate());
    return spec;
  }
  return InvalidArgumentError(
      "compress: expected none, topk:<frac>, int8, or layerwise:<period>; "
      "got '" +
      std::string(text) + "'");
}

std::string CompressionSpecName(const CompressionSpec& spec) {
  switch (spec.kind) {
    case CompressionKind::kNone:
      return "none";
    case CompressionKind::kInt8:
      return "int8";
    case CompressionKind::kTopK: {
      char buffer[40];
      std::snprintf(buffer, sizeof(buffer), "topk:%g", spec.topk_fraction);
      return buffer;
    }
    case CompressionKind::kLayerwise:
      return "layerwise:" + std::to_string(spec.layerwise_period);
  }
  return "unknown";
}

GradientCompressor::GradientCompressor(const CompressionSpec& spec,
                                       std::vector<int64_t> layer_segments)
    : spec_(spec), segments_(std::move(layer_segments)) {
  for (const int64_t segment : segments_) total_segment_values_ += segment;
}

int64_t GradientCompressor::ActiveValues(int64_t round) const {
  if (spec_.kind != CompressionKind::kLayerwise) return total_segment_values_;
  const int64_t period = spec_.layerwise_period;
  int64_t active = 0;
  for (size_t layer = 0; layer < segments_.size(); ++layer) {
    if (static_cast<int64_t>(layer) % period == round % period) {
      active += segments_[layer];
    }
  }
  return active;
}

net::WireMessage GradientCompressor::Describe(int64_t profile_values,
                                              int64_t round) const {
  switch (spec_.kind) {
    case CompressionKind::kNone:
      return net::DenseF32Message(profile_values, profile_values);
    case CompressionKind::kTopK:
      return net::TopKMessage(profile_values,
                              TopKKept(spec_.topk_fraction, profile_values));
    case CompressionKind::kInt8:
      return net::Int8Message(profile_values);
    case CompressionKind::kLayerwise: {
      // The simulated tensor keeps the proxy's active fraction, in exact
      // integer arithmetic (profile_values * active stays well inside int64
      // for every profile in the repo).
      const int64_t encoded =
          total_segment_values_ > 0
              ? profile_values * ActiveValues(round) / total_segment_values_
              : profile_values;
      return net::DenseF32Message(profile_values, encoded);
    }
  }
  return net::DenseF32Message(profile_values, profile_values);
}

void GradientCompressor::Transform(std::span<double> values, int64_t round,
                                   Rng& rng) const {
  switch (spec_.kind) {
    case CompressionKind::kNone:
      return;
    case CompressionKind::kTopK: {
      const int64_t n = static_cast<int64_t>(values.size());
      const int64_t kept = TopKKept(spec_.topk_fraction, n);
      if (kept >= n) {
        for (double& value : values) {
          value = static_cast<double>(static_cast<float>(value));
        }
        return;
      }
      order_scratch_.resize(values.size());
      for (size_t i = 0; i < values.size(); ++i) {
        order_scratch_[i] = static_cast<int32_t>(i);
      }
      // Largest |v| first; equal magnitudes keep the lower index — the fixed
      // tie-break that makes the selection a pure function of the values.
      const auto larger = [&values](int32_t a, int32_t b) {
        const double ma = std::fabs(values[static_cast<size_t>(a)]);
        const double mb = std::fabs(values[static_cast<size_t>(b)]);
        if (ma != mb) return ma > mb;
        return a < b;
      };
      std::nth_element(order_scratch_.begin(),
                       order_scratch_.begin() + (kept - 1),
                       order_scratch_.end(), larger);
      for (size_t rank = 0; rank < values.size(); ++rank) {
        double& value = values[static_cast<size_t>(order_scratch_[rank])];
        // Kept entries ride the wire as f32; dropped entries never ride.
        value = rank < static_cast<size_t>(kept)
                    ? static_cast<double>(static_cast<float>(value))
                    : 0.0;
      }
      return;
    }
    case CompressionKind::kInt8: {
      for (size_t start = 0; start < values.size();
           start += static_cast<size_t>(net::kInt8BlockValues)) {
        const size_t end = std::min(
            values.size(), start + static_cast<size_t>(net::kInt8BlockValues));
        double max_abs = 0.0;
        for (size_t i = start; i < end; ++i) {
          max_abs = std::max(max_abs, std::fabs(values[i]));
        }
        if (max_abs == 0.0) continue;  // all-zero block: nothing to round
        // The per-block scale rides the wire as f32; quantization targets the
        // exact value the receiver will multiply by.
        const float scale = static_cast<float>(max_abs / 127.0);
        for (size_t i = start; i < end; ++i) {
          const double level_real = values[i] / static_cast<double>(scale);
          double level = std::floor(level_real);
          // Stochastic rounding: up with probability equal to the fractional
          // part, so the quantizer is unbiased; the draw comes from the
          // committing worker's stream, which is what keeps the whole grid
          // bit-identical.
          if (rng.Uniform() < level_real - level) level += 1.0;
          level = std::clamp(level, -127.0, 127.0);
          values[i] = static_cast<double>(static_cast<float>(level) * scale);
        }
      }
      return;
    }
    case CompressionKind::kLayerwise: {
      const int64_t period = spec_.layerwise_period;
      size_t offset = 0;
      for (size_t layer = 0; layer < segments_.size(); ++layer) {
        const size_t size = static_cast<size_t>(segments_[layer]);
        if (static_cast<int64_t>(layer) % period != round % period) {
          std::fill(values.begin() + static_cast<ptrdiff_t>(offset),
                    values.begin() + static_cast<ptrdiff_t>(offset + size),
                    0.0);
        }
        offset += size;
      }
      return;
    }
  }
}

}  // namespace netmax::ml
