#include "ml/dataset.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "linalg/vector_ops.h"

namespace netmax::ml {

Dataset::Dataset(int feature_dim, int num_classes)
    : feature_dim_(feature_dim), num_classes_(num_classes) {
  NETMAX_CHECK_GT(feature_dim, 0);
  NETMAX_CHECK_GT(num_classes, 1);
}

void Dataset::Add(std::span<const double> features, int label) {
  NETMAX_CHECK_EQ(static_cast<int>(features.size()), feature_dim_);
  NETMAX_CHECK(label >= 0 && label < num_classes_) << "label " << label;
  features_.insert(features_.end(), features.begin(), features.end());
  labels_.push_back(label);
}

std::span<const double> Dataset::features(int index) const {
  NETMAX_CHECK(index >= 0 && index < size());
  return {features_.data() + static_cast<size_t>(index) * feature_dim_,
          static_cast<size_t>(feature_dim_)};
}

int Dataset::label(int index) const {
  NETMAX_CHECK(index >= 0 && index < size());
  return labels_[static_cast<size_t>(index)];
}

int Dataset::CountLabel(int label) const {
  int count = 0;
  for (int l : labels_) {
    if (l == label) ++count;
  }
  return count;
}

DatasetPair GenerateSynthetic(const SyntheticSpec& spec) {
  NETMAX_CHECK_GT(spec.num_classes, 1);
  NETMAX_CHECK_GT(spec.feature_dim, 0);
  Rng rng(spec.seed);

  // Class means: random directions scaled to the separation radius.
  std::vector<std::vector<double>> means(static_cast<size_t>(spec.num_classes));
  Rng mean_rng = rng.Fork(0);
  for (auto& mean : means) {
    mean.resize(static_cast<size_t>(spec.feature_dim));
    for (double& v : mean) v = mean_rng.Gaussian();
    const double norm = netmax::linalg::Norm(mean);
    if (norm > 0.0) {
      netmax::linalg::Scale(spec.class_separation / norm, mean);
    }
  }

  auto sample_into = [&](Dataset& out, int count, Rng& sample_rng) {
    std::vector<double> x(static_cast<size_t>(spec.feature_dim));
    for (int i = 0; i < count; ++i) {
      const int label =
          static_cast<int>(sample_rng.UniformInt(0, spec.num_classes - 1));
      const auto& mean = means[static_cast<size_t>(label)];
      for (int d = 0; d < spec.feature_dim; ++d) {
        x[static_cast<size_t>(d)] =
            mean[static_cast<size_t>(d)] +
            sample_rng.Gaussian(0.0, spec.noise_stddev);
      }
      out.Add(x, label);
    }
  };

  DatasetPair pair{Dataset(spec.feature_dim, spec.num_classes),
                   Dataset(spec.feature_dim, spec.num_classes)};
  Rng train_rng = rng.Fork(1);
  Rng test_rng = rng.Fork(2);
  sample_into(pair.train, spec.num_train, train_rng);
  sample_into(pair.test, spec.num_test, test_rng);
  return pair;
}

SyntheticSpec MnistSimSpec() {
  SyntheticSpec spec;
  spec.name = "mnist-sim";
  spec.num_classes = 10;
  spec.feature_dim = 32;
  spec.num_train = 4096;
  spec.num_test = 1024;
  // MNIST is nearly separable; this separation gives a high-90s ceiling
  // under IID sharding while leaving room for a visible non-IID penalty.
  spec.class_separation = 5.0;
  spec.noise_stddev = 1.0;
  spec.seed = 101;
  return spec;
}

SyntheticSpec Cifar10SimSpec() {
  SyntheticSpec spec;
  spec.name = "cifar10-sim";
  spec.num_classes = 10;
  spec.feature_dim = 32;
  spec.num_train = 4096;
  spec.num_test = 1024;
  // Overlap tuned so well-trained models plateau near the paper's ~90%.
  spec.class_separation = 3.1;
  spec.noise_stddev = 1.0;
  spec.seed = 102;
  return spec;
}

SyntheticSpec Cifar100SimSpec() {
  SyntheticSpec spec;
  spec.name = "cifar100-sim";
  spec.num_classes = 100;
  spec.feature_dim = 64;
  spec.num_train = 8192;
  spec.num_test = 2048;
  // 100-way problem with heavy overlap: ~72% ceiling (paper: 71-72%).
  spec.class_separation = 4.2;
  spec.noise_stddev = 1.0;
  spec.seed = 103;
  return spec;
}

SyntheticSpec TinyImageNetSimSpec() {
  SyntheticSpec spec;
  spec.name = "tiny-imagenet-sim";
  spec.num_classes = 200;
  spec.feature_dim = 64;
  spec.num_train = 10000;
  spec.num_test = 2000;
  // Hard 200-way problem: ~57% band (paper: ~57%) at bench-scale training
  // budgets (a few thousand samples, ~24 epochs).
  spec.class_separation = 4.6;
  spec.noise_stddev = 1.0;
  spec.seed = 104;
  return spec;
}

SyntheticSpec ImageNetSimSpec() {
  SyntheticSpec spec;
  spec.name = "imagenet-sim";
  spec.num_classes = 1000;
  spec.feature_dim = 96;
  spec.num_train = 20000;
  spec.num_test = 4000;
  // 1000-way with few samples per class at bench scale; wide separation
  // keeps prototype learning feasible there (paper ResNet50: ~73%).
  spec.class_separation = 8.0;
  spec.noise_stddev = 1.0;
  spec.seed = 105;
  return spec;
}

StatusOr<SyntheticSpec> SyntheticSpecByName(const std::string& name) {
  for (const SyntheticSpec& spec :
       {MnistSimSpec(), Cifar10SimSpec(), Cifar100SimSpec(),
        TinyImageNetSimSpec(), ImageNetSimSpec()}) {
    if (spec.name == name) return spec;
  }
  return NotFoundError("no synthetic dataset named '" + name + "'");
}

std::vector<Dataset> PartitionUniform(const Dataset& data, int num_workers,
                                      uint64_t seed) {
  NETMAX_CHECK_GT(num_workers, 0);
  Rng rng(seed);
  std::vector<int> order(static_cast<size_t>(data.size()));
  for (int i = 0; i < data.size(); ++i) order[static_cast<size_t>(i)] = i;
  rng.Shuffle(order);

  std::vector<Dataset> shards;
  shards.reserve(static_cast<size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w) {
    shards.emplace_back(data.feature_dim(), data.num_classes());
  }
  for (int i = 0; i < data.size(); ++i) {
    const int w = i % num_workers;
    const int idx = order[static_cast<size_t>(i)];
    shards[static_cast<size_t>(w)].Add(data.features(idx), data.label(idx));
  }
  return shards;
}

StatusOr<std::vector<Dataset>> PartitionBySegments(
    const Dataset& data, const std::vector<int>& segments, uint64_t seed) {
  if (segments.empty()) return InvalidArgumentError("no workers");
  int total_segments = 0;
  for (int s : segments) {
    if (s <= 0) return InvalidArgumentError("segment counts must be positive");
    total_segments += s;
  }
  if (total_segments > data.size()) {
    return InvalidArgumentError("more segments than examples");
  }
  Rng rng(seed);
  std::vector<int> order(static_cast<size_t>(data.size()));
  for (int i = 0; i < data.size(); ++i) order[static_cast<size_t>(i)] = i;
  rng.Shuffle(order);

  std::vector<Dataset> shards;
  shards.reserve(segments.size());
  for (size_t w = 0; w < segments.size(); ++w) {
    shards.emplace_back(data.feature_dim(), data.num_classes());
  }
  // Assign examples round-robin over "segment slots" so every segment has a
  // near-equal share, then fold slots into workers.
  std::vector<int> slot_to_worker;
  for (size_t w = 0; w < segments.size(); ++w) {
    for (int s = 0; s < segments[w]; ++s) {
      slot_to_worker.push_back(static_cast<int>(w));
    }
  }
  for (int i = 0; i < data.size(); ++i) {
    const int slot = i % total_segments;
    const int w = slot_to_worker[static_cast<size_t>(slot)];
    const int idx = order[static_cast<size_t>(i)];
    shards[static_cast<size_t>(w)].Add(data.features(idx), data.label(idx));
  }
  return shards;
}

StatusOr<std::vector<Dataset>> PartitionWithLostLabels(
    const Dataset& data, const std::vector<std::vector<int>>& lost_labels,
    uint64_t seed) {
  const int num_workers = static_cast<int>(lost_labels.size());
  if (num_workers == 0) return InvalidArgumentError("no workers");
  for (const auto& lost : lost_labels) {
    for (int label : lost) {
      if (label < 0 || label >= data.num_classes()) {
        return InvalidArgumentError("lost label out of range");
      }
    }
  }
  // retains[w][label]: worker w keeps examples of `label`.
  std::vector<std::vector<bool>> retains(
      static_cast<size_t>(num_workers),
      std::vector<bool>(static_cast<size_t>(data.num_classes()), true));
  for (int w = 0; w < num_workers; ++w) {
    for (int label : lost_labels[static_cast<size_t>(w)]) {
      retains[static_cast<size_t>(w)][static_cast<size_t>(label)] = false;
    }
  }

  Rng rng(seed);
  std::vector<int> order(static_cast<size_t>(data.size()));
  for (int i = 0; i < data.size(); ++i) order[static_cast<size_t>(i)] = i;
  rng.Shuffle(order);

  std::vector<Dataset> shards;
  shards.reserve(static_cast<size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w) {
    shards.emplace_back(data.feature_dim(), data.num_classes());
  }
  // Round-robin each label's examples over the workers that retain it.
  std::vector<int> label_cursor(static_cast<size_t>(data.num_classes()), 0);
  for (int i = 0; i < data.size(); ++i) {
    const int idx = order[static_cast<size_t>(i)];
    const int label = data.label(idx);
    std::vector<int> holders;
    for (int w = 0; w < num_workers; ++w) {
      if (retains[static_cast<size_t>(w)][static_cast<size_t>(label)]) {
        holders.push_back(w);
      }
    }
    if (holders.empty()) continue;  // label lost by everyone
    const int w = holders[static_cast<size_t>(
        label_cursor[static_cast<size_t>(label)]++ %
        static_cast<int>(holders.size()))];
    shards[static_cast<size_t>(w)].Add(data.features(idx), data.label(idx));
  }
  return shards;
}

std::vector<std::vector<int>> MnistLostLabels() {
  // Table IV: w0..w3 on server 1, w4..w7 on server 2.
  return {
      {0, 1, 2},  // w0
      {0, 1, 3},  // w1
      {0, 1, 4},  // w2
      {0, 1, 5},  // w3
      {5, 6, 7},  // w4
      {5, 6, 8},  // w5
      {5, 6, 9},  // w6
      {5, 6, 0},  // w7
  };
}

std::vector<std::vector<int>> CloudRegionLostLabels() {
  // Table VII: US West, US East, Ireland, Mumbai, Singapore, Tokyo.
  return {
      {0, 1, 2},  // US West
      {1, 2, 3},  // US East
      {2, 3, 4},  // Ireland
      {4, 5, 6},  // Mumbai
      {5, 6, 7},  // Singapore
      {6, 7, 8},  // Tokyo
  };
}

BatchSampler::BatchSampler(const Dataset* dataset, int batch_size,
                           uint64_t seed)
    : dataset_(dataset), batch_size_(batch_size), rng_(seed) {
  NETMAX_CHECK(dataset != nullptr);
  NETMAX_CHECK_GT(dataset->size(), 0) << "empty shard";
  NETMAX_CHECK_GE(batch_size, 1);
  order_.resize(static_cast<size_t>(dataset->size()));
  for (int i = 0; i < dataset->size(); ++i) order_[static_cast<size_t>(i)] = i;
  Reshuffle();
}

void BatchSampler::Reshuffle() {
  rng_.Shuffle(order_);
  cursor_ = 0;
}

std::vector<int> BatchSampler::NextBatch() {
  std::vector<int> batch;
  NextBatch(batch);
  return batch;
}

void BatchSampler::NextBatch(std::vector<int>& batch) {
  batch.clear();
  batch.reserve(static_cast<size_t>(batch_size_));
  for (int k = 0; k < batch_size_ && cursor_ < order_.size(); ++k) {
    batch.push_back(order_[cursor_++]);
  }
  if (cursor_ >= order_.size()) {
    ++epochs_completed_;
    Reshuffle();
  }
}

int64_t BatchSampler::batches_per_epoch() const {
  return (dataset_->size() + batch_size_ - 1) / batch_size_;
}

void BatchSampler::SaveState(Serializer& out) const {
  for (const uint64_t word : rng_.SaveState()) out.WriteU64(word);
  out.WriteIntVec(order_);
  out.WriteU64(cursor_);
  out.WriteI64(epochs_completed_);
}

Status BatchSampler::RestoreState(Deserializer& in) {
  std::array<uint64_t, 5> rng_state;
  for (uint64_t& word : rng_state) {
    NETMAX_ASSIGN_OR_RETURN(word, in.ReadU64());
  }
  std::vector<int> order;
  NETMAX_RETURN_IF_ERROR(in.ReadIntVec(&order));
  if (order.size() != order_.size()) {
    return InvalidArgumentError(
        "checkpointed sampler permutation covers " +
        std::to_string(order.size()) + " examples, shard has " +
        std::to_string(order_.size()));
  }
  NETMAX_ASSIGN_OR_RETURN(const uint64_t cursor, in.ReadU64());
  if (cursor > order.size()) {
    return InvalidArgumentError("checkpointed sampler cursor out of range");
  }
  NETMAX_ASSIGN_OR_RETURN(const int64_t epochs, in.ReadI64());
  rng_.RestoreState(rng_state);
  order_ = std::move(order);
  cursor_ = static_cast<size_t>(cursor);
  epochs_completed_ = epochs;
  return Status::Ok();
}

}  // namespace netmax::ml
