#include "ml/mlp.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "linalg/vector_ops.h"
#include "ml/linear_model.h"

namespace netmax::ml {

Mlp::Mlp(std::vector<int> layer_sizes) : layer_sizes_(std::move(layer_sizes)) {
  NETMAX_CHECK_GE(layer_sizes_.size(), 2u) << "need at least input and output";
  for (int size : layer_sizes_) NETMAX_CHECK_GT(size, 0);
  size_t offset = 0;
  for (int l = 0; l < num_layers(); ++l) {
    layer_offsets_.push_back(offset);
    const size_t in = static_cast<size_t>(layer_sizes_[static_cast<size_t>(l)]);
    const size_t out =
        static_cast<size_t>(layer_sizes_[static_cast<size_t>(l) + 1]);
    offset += out * in + out;
  }
  params_.assign(offset, 0.0);
}

int Mlp::num_parameters() const { return static_cast<int>(params_.size()); }

size_t Mlp::WeightOffset(int layer) const {
  return layer_offsets_[static_cast<size_t>(layer)];
}

size_t Mlp::BiasOffset(int layer) const {
  const size_t in = static_cast<size_t>(layer_sizes_[static_cast<size_t>(layer)]);
  const size_t out =
      static_cast<size_t>(layer_sizes_[static_cast<size_t>(layer) + 1]);
  return WeightOffset(layer) + out * in;
}

void Mlp::InitializeParameters(uint64_t seed) {
  Rng rng(seed);
  for (int l = 0; l < num_layers(); ++l) {
    const size_t in = static_cast<size_t>(layer_sizes_[static_cast<size_t>(l)]);
    const size_t out =
        static_cast<size_t>(layer_sizes_[static_cast<size_t>(l) + 1]);
    // He initialization (fan-in scaled) suits ReLU layers.
    const double scale = std::sqrt(2.0 / static_cast<double>(in));
    double* w = params_.data() + WeightOffset(l);
    for (size_t i = 0; i < out * in; ++i) w[i] = rng.Gaussian(0.0, scale);
    double* b = params_.data() + BiasOffset(l);
    for (size_t i = 0; i < out; ++i) b[i] = 0.0;
  }
}

void Mlp::Forward(std::span<const double> x,
                  std::vector<std::vector<double>>& activations) const {
  activations.resize(static_cast<size_t>(num_layers()));
  std::span<const double> input = x;
  for (int l = 0; l < num_layers(); ++l) {
    const size_t in = static_cast<size_t>(layer_sizes_[static_cast<size_t>(l)]);
    const size_t out =
        static_cast<size_t>(layer_sizes_[static_cast<size_t>(l) + 1]);
    auto& act = activations[static_cast<size_t>(l)];
    act.assign(out, 0.0);
    const double* w = params_.data() + WeightOffset(l);
    const double* b = params_.data() + BiasOffset(l);
    for (size_t o = 0; o < out; ++o) {
      double acc = b[o];
      const double* row = w + o * in;
      for (size_t j = 0; j < in; ++j) acc += row[j] * input[j];
      act[o] = acc;
    }
    if (l + 1 < num_layers()) {
      for (double& v : act) v = std::max(0.0, v);  // ReLU
    }
    input = act;
  }
}

double Mlp::LossAndGradient(const Dataset& data,
                            std::span<const int> batch_indices,
                            std::span<double> gradient) const {
  NETMAX_CHECK(!batch_indices.empty());
  NETMAX_CHECK_EQ(data.feature_dim(), layer_sizes_.front());
  const bool want_gradient = !gradient.empty();
  if (want_gradient) {
    NETMAX_CHECK_EQ(static_cast<int>(gradient.size()), num_parameters());
    netmax::linalg::Fill(gradient, 0.0);
  }

  std::vector<std::vector<double>> activations;
  std::vector<double> probs;
  double total_loss = 0.0;
  for (int index : batch_indices) {
    const std::span<const double> x = data.features(index);
    const int label = data.label(index);
    Forward(x, activations);

    probs = activations.back();
    SoftmaxInPlace(probs);
    total_loss += CrossEntropyFromProbabilities(probs, label);
    if (!want_gradient) continue;

    // Backward pass. delta starts as dL/dlogits.
    std::vector<double> delta = probs;
    delta[static_cast<size_t>(label)] -= 1.0;
    for (int l = num_layers() - 1; l >= 0; --l) {
      const size_t in = static_cast<size_t>(layer_sizes_[static_cast<size_t>(l)]);
      const size_t out =
          static_cast<size_t>(layer_sizes_[static_cast<size_t>(l) + 1]);
      const std::span<const double> layer_input =
          l == 0 ? x
                 : std::span<const double>(
                       activations[static_cast<size_t>(l) - 1]);
      double* gw = gradient.data() + WeightOffset(l);
      double* gb = gradient.data() + BiasOffset(l);
      for (size_t o = 0; o < out; ++o) {
        const double d = delta[o];
        if (d != 0.0) {
          double* grow = gw + o * in;
          for (size_t j = 0; j < in; ++j) grow[j] += d * layer_input[j];
        }
        gb[o] += d;
      }
      if (l > 0) {
        // Propagate through W^T and the ReLU mask of the previous layer.
        const double* w = params_.data() + WeightOffset(l);
        std::vector<double> prev_delta(in, 0.0);
        for (size_t o = 0; o < out; ++o) {
          const double d = delta[o];
          if (d == 0.0) continue;
          const double* row = w + o * in;
          for (size_t j = 0; j < in; ++j) prev_delta[j] += d * row[j];
        }
        const auto& prev_act = activations[static_cast<size_t>(l) - 1];
        for (size_t j = 0; j < in; ++j) {
          if (prev_act[j] <= 0.0) prev_delta[j] = 0.0;
        }
        delta = std::move(prev_delta);
      }
    }
  }
  const double inv_batch = 1.0 / static_cast<double>(batch_indices.size());
  if (want_gradient) netmax::linalg::Scale(inv_batch, gradient);
  return total_loss * inv_batch;
}

int Mlp::Predict(const Dataset& data, int index) const {
  std::vector<std::vector<double>> activations;
  Forward(data.features(index), activations);
  const auto& logits = activations.back();
  int best = 0;
  for (size_t c = 1; c < logits.size(); ++c) {
    if (logits[c] > logits[static_cast<size_t>(best)]) {
      best = static_cast<int>(c);
    }
  }
  return best;
}

std::unique_ptr<Model> Mlp::Clone() const { return std::make_unique<Mlp>(*this); }

}  // namespace netmax::ml
