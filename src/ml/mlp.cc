#include "ml/mlp.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "linalg/blas.h"
#include "linalg/vector_ops.h"
#include "ml/linear_model.h"
#include "ml/sharding.h"

namespace netmax::ml {
namespace {

// Workspace slot layout: gathered input matrix, then one activation matrix
// per layer, then two ping-pong delta matrices after the activations.
constexpr int kSlotInput = 0;
constexpr int kSlotActBase = 1;

}  // namespace

Mlp::Mlp(std::vector<int> layer_sizes) : layer_sizes_(std::move(layer_sizes)) {
  NETMAX_CHECK_GE(layer_sizes_.size(), 2u) << "need at least input and output";
  for (int size : layer_sizes_) NETMAX_CHECK_GT(size, 0);
  size_t offset = 0;
  for (int l = 0; l < num_layers(); ++l) {
    layer_offsets_.push_back(offset);
    const size_t in = static_cast<size_t>(layer_sizes_[static_cast<size_t>(l)]);
    const size_t out =
        static_cast<size_t>(layer_sizes_[static_cast<size_t>(l) + 1]);
    offset += out * in + out;
  }
  params_.assign(offset, 0.0);
}

int Mlp::num_parameters() const { return static_cast<int>(params_.size()); }

size_t Mlp::WeightOffset(int layer) const {
  return layer_offsets_[static_cast<size_t>(layer)];
}

size_t Mlp::BiasOffset(int layer) const {
  const size_t in =
      static_cast<size_t>(layer_sizes_[static_cast<size_t>(layer)]);
  const size_t out =
      static_cast<size_t>(layer_sizes_[static_cast<size_t>(layer) + 1]);
  return WeightOffset(layer) + out * in;
}

std::vector<int64_t> Mlp::LayerSegments() const {
  std::vector<int64_t> segments;
  segments.reserve(static_cast<size_t>(num_layers()));
  for (int layer = 0; layer < num_layers(); ++layer) {
    const int64_t in = layer_sizes_[static_cast<size_t>(layer)];
    const int64_t out = layer_sizes_[static_cast<size_t>(layer) + 1];
    segments.push_back(out * in + out);
  }
  return segments;
}

void Mlp::InitializeParameters(uint64_t seed) {
  Rng rng(seed);
  for (int l = 0; l < num_layers(); ++l) {
    const size_t in = static_cast<size_t>(layer_sizes_[static_cast<size_t>(l)]);
    const size_t out =
        static_cast<size_t>(layer_sizes_[static_cast<size_t>(l) + 1]);
    // He initialization (fan-in scaled) suits ReLU layers.
    const double scale = std::sqrt(2.0 / static_cast<double>(in));
    double* w = params_.data() + WeightOffset(l);
    for (size_t i = 0; i < out * in; ++i) w[i] = rng.Gaussian(0.0, scale);
    double* b = params_.data() + BiasOffset(l);
    for (size_t i = 0; i < out; ++i) b[i] = 0.0;
  }
}

std::span<double> Mlp::ForwardBatch(const Dataset& data,
                                    std::span<const int> indices,
                                    TrainingWorkspace& workspace) const {
  const size_t batch = indices.size();
  const size_t in0 = static_cast<size_t>(layer_sizes_.front());

  // Gather the batch's feature rows into one contiguous matrix.
  std::span<double> x = workspace.Scratch(kSlotInput, batch * in0);
  for (size_t s = 0; s < batch; ++s) {
    const std::span<const double> row = data.features(indices[s]);
    std::copy(row.begin(), row.end(),
              x.begin() + static_cast<ptrdiff_t>(s * in0));
  }

  // Each layer is one batch x out = (batch x in) * W^T product, run as
  // bias-seeded i-k-j GEMM against a transposed weight copy so the inner loop
  // streams contiguously (vectorizes at SSE peak). Every output element still
  // sums bias-first then ascending over `in`, exactly like the per-sample
  // dot-product loop.
  const int wt_slot_base = kSlotActBase + num_layers() + 2;
  std::span<double> input = x;
  std::span<double> act;
  for (int l = 0; l < num_layers(); ++l) {
    const int in = layer_sizes_[static_cast<size_t>(l)];
    const int out = layer_sizes_[static_cast<size_t>(l) + 1];
    std::span<double> wt = workspace.Scratch(
        wt_slot_base + l, static_cast<size_t>(in) * static_cast<size_t>(out));
    linalg::Transpose(out, in, params_.data() + WeightOffset(l), in, wt.data(),
                      out);
    act = workspace.Scratch(kSlotActBase + l, batch * static_cast<size_t>(out));
    linalg::GemmBias(static_cast<int>(batch), out, in, input.data(), in,
                     wt.data(), out, params_.data() + BiasOffset(l),
                     act.data(), out);
    if (l + 1 < num_layers()) {
      for (double& v : act) v = std::max(0.0, v);  // ReLU
    }
    input = act;
  }
  return act;  // batch x num_classes logits
}

double Mlp::LossAndGradient(const Dataset& data,
                            std::span<const int> batch_indices,
                            std::span<double> gradient) const {
  return LossAndGradient(data, batch_indices, gradient,
                         ThreadLocalWorkspace());
}

double Mlp::LossAndGradient(const Dataset& data,
                            std::span<const int> batch_indices,
                            std::span<double> gradient,
                            TrainingWorkspace& workspace) const {
  return ShardedLossAndGradient(*this, data, batch_indices, gradient,
                                workspace, /*pool=*/nullptr, /*shards=*/1);
}

double Mlp::LeafLossAndGradientSums(const Dataset& data,
                                    std::span<const int> leaf,
                                    std::span<double> gradient,
                                    TrainingWorkspace& workspace) const {
  NETMAX_CHECK(!leaf.empty());
  NETMAX_CHECK_EQ(data.feature_dim(), layer_sizes_.front());
  const bool want_gradient = !gradient.empty();
  if (want_gradient) {
    NETMAX_CHECK_EQ(static_cast<int>(gradient.size()), num_parameters());
    netmax::linalg::Fill(gradient, 0.0);
  }

  const size_t batch = leaf.size();
  std::span<double> logits = ForwardBatch(data, leaf, workspace);
  const size_t num_classes =
      static_cast<size_t>(layer_sizes_.back());

  // Per-row softmax; the logits matrix becomes the probability matrix. Losses
  // accumulate in batch order, as in the per-sample loop.
  double total_loss = 0.0;
  for (size_t s = 0; s < batch; ++s) {
    std::span<double> row = logits.subspan(s * num_classes, num_classes);
    SoftmaxInPlace(row);
    total_loss += CrossEntropyFromProbabilities(row, data.label(leaf[s]));
  }
  if (!want_gradient) return total_loss;

  // The probability matrix becomes the delta matrix: dL/dlogits = p - onehot.
  for (size_t s = 0; s < batch; ++s) {
    const size_t label = static_cast<size_t>(data.label(leaf[s]));
    logits[s * num_classes + label] -= 1.0;
  }

  // Backward: weight gradients are delta^T * input (rank-1 updates in batch
  // order — the same sample-ascending accumulation as the seed loop), bias
  // gradients are delta column sums, and delta propagates through W with the
  // previous layer's ReLU mask.
  const int delta_slot_base = kSlotActBase + num_layers();
  int ping = 0;
  std::span<double> delta = logits;
  for (int l = num_layers() - 1; l >= 0; --l) {
    const int in = layer_sizes_[static_cast<size_t>(l)];
    const int out = layer_sizes_[static_cast<size_t>(l) + 1];
    const std::span<const double> layer_input =
        l == 0 ? std::span<const double>(
                     workspace.Scratch(kSlotInput,
                                       batch * static_cast<size_t>(in)))
               : std::span<const double>(
                     workspace.Scratch(kSlotActBase + l - 1,
                                       batch * static_cast<size_t>(in)));
    linalg::GemmAtBAccumulate(static_cast<int>(batch), out, in, delta.data(),
                              out, layer_input.data(), in,
                              gradient.data() + WeightOffset(l), in);
    linalg::AddRowsAccumulate(static_cast<int>(batch), out, delta.data(), out,
                              gradient.data() + BiasOffset(l));
    if (l > 0) {
      std::span<double> prev_delta = workspace.Scratch(
          delta_slot_base + ping, batch * static_cast<size_t>(in));
      ping ^= 1;
      linalg::Gemm(static_cast<int>(batch), in, out, delta.data(), out,
                   params_.data() + WeightOffset(l), in, prev_delta.data(), in);
      // ReLU mask as a branchless select (the branchy form mispredicts on
      // ~half the units and costs more than the surrounding GEMMs).
      for (size_t i = 0; i < prev_delta.size(); ++i) {
        prev_delta[i] = layer_input[i] > 0.0 ? prev_delta[i] : 0.0;
      }
      delta = prev_delta;
    }
  }
  return total_loss;
}

int Mlp::Predict(const Dataset& data, int index) const {
  int prediction = 0;
  PredictBatch(data, {&index, 1}, {&prediction, 1}, ThreadLocalWorkspace());
  return prediction;
}

void Mlp::PredictBatch(const Dataset& data, std::span<const int> indices,
                       std::span<int> out,
                       TrainingWorkspace& workspace) const {
  NETMAX_CHECK_EQ(indices.size(), out.size());
  if (indices.empty()) return;
  NETMAX_CHECK_EQ(data.feature_dim(), layer_sizes_.front());
  const std::span<const double> logits =
      ForwardBatch(data, indices, workspace);
  ArgmaxRows(logits, indices.size(), static_cast<size_t>(layer_sizes_.back()),
             out);
}

std::unique_ptr<Model> Mlp::Clone() const {
  return std::make_unique<Mlp>(*this);
}

}  // namespace netmax::ml
