#include "ml/workspace.h"

#include "common/logging.h"

namespace netmax::ml {

std::span<double> TrainingWorkspace::DoubleScratch(
    std::vector<std::vector<double>>& family, int slot, size_t size) {
  NETMAX_CHECK_GE(slot, 0);
  if (static_cast<size_t>(slot) >= family.size()) {
    family.resize(static_cast<size_t>(slot) + 1);
    ++growth_count_;
  }
  std::vector<double>& buffer = family[static_cast<size_t>(slot)];
  if (buffer.size() < size) {
    buffer.resize(size);
    ++growth_count_;
  }
  return {buffer.data(), size};
}

std::span<double> TrainingWorkspace::Scratch(int slot, size_t size) {
  return DoubleScratch(slots_, slot, size);
}

std::span<double> TrainingWorkspace::ReduceScratch(int slot, size_t size) {
  return DoubleScratch(reduce_slots_, slot, size);
}

std::span<int> TrainingWorkspace::IntScratch(int slot, size_t size) {
  NETMAX_CHECK_GE(slot, 0);
  if (static_cast<size_t>(slot) >= int_slots_.size()) {
    int_slots_.resize(static_cast<size_t>(slot) + 1);
    ++growth_count_;
  }
  std::vector<int>& buffer = int_slots_[static_cast<size_t>(slot)];
  if (buffer.size() < size) {
    buffer.resize(size);
    ++growth_count_;
  }
  return {buffer.data(), size};
}

TrainingWorkspace& TrainingWorkspace::ShardWorkspace(int shard) {
  NETMAX_CHECK_GE(shard, 0);
  if (static_cast<size_t>(shard) >= shard_children_.size()) {
    shard_children_.resize(static_cast<size_t>(shard) + 1);
    ++growth_count_;
  }
  std::unique_ptr<TrainingWorkspace>& child =
      shard_children_[static_cast<size_t>(shard)];
  if (child == nullptr) {
    child = std::make_unique<TrainingWorkspace>();
    ++growth_count_;
  }
  return *child;
}

int64_t TrainingWorkspace::growth_count() const {
  int64_t total = growth_count_;
  for (const auto& child : shard_children_) {
    if (child != nullptr) total += child->growth_count();
  }
  return total;
}

TrainingWorkspace& ThreadLocalWorkspace() {
  static thread_local TrainingWorkspace workspace;
  return workspace;
}

}  // namespace netmax::ml
