#include "ml/workspace.h"

#include "common/logging.h"

namespace netmax::ml {

std::span<double> TrainingWorkspace::Scratch(int slot, size_t size) {
  NETMAX_CHECK_GE(slot, 0);
  if (static_cast<size_t>(slot) >= slots_.size()) {
    slots_.resize(static_cast<size_t>(slot) + 1);
    ++growth_count_;
  }
  std::vector<double>& buffer = slots_[static_cast<size_t>(slot)];
  if (buffer.size() < size) {
    buffer.resize(size);
    ++growth_count_;
  }
  return {buffer.data(), size};
}

std::span<int> TrainingWorkspace::IntScratch(int slot, size_t size) {
  NETMAX_CHECK_GE(slot, 0);
  if (static_cast<size_t>(slot) >= int_slots_.size()) {
    int_slots_.resize(static_cast<size_t>(slot) + 1);
    ++growth_count_;
  }
  std::vector<int>& buffer = int_slots_[static_cast<size_t>(slot)];
  if (buffer.size() < size) {
    buffer.resize(size);
    ++growth_count_;
  }
  return {buffer.data(), size};
}

TrainingWorkspace& ThreadLocalWorkspace() {
  static thread_local TrainingWorkspace workspace;
  return workspace;
}

}  // namespace netmax::ml
