#ifndef NETMAX_ML_METRICS_H_
#define NETMAX_ML_METRICS_H_

// Whole-dataset evaluation helpers and the (x, y) series type the experiment
// harness records (loss vs virtual time, loss vs epoch, accuracy vs time).

#include <optional>
#include <vector>

#include "ml/dataset.h"
#include "ml/model.h"

namespace netmax::ml {

// Mean cross-entropy loss of `model` over all of `data`.
double AverageLoss(const Model& model, const Dataset& data);

// Fraction of examples of `data` that `model` classifies correctly.
double Accuracy(const Model& model, const Dataset& data);

struct SeriesPoint {
  double x = 0.0;  // virtual time (s), epoch, or iteration
  double y = 0.0;  // loss or accuracy
};
using Series = std::vector<SeriesPoint>;

// First x at which the series reaches y <= threshold, linearly interpolating
// between points; nullopt if it never does. Series must be sorted by x.
// Used to compute "time to converge to loss L" speedups (Figures 8/9 etc.).
std::optional<double> TimeToThreshold(const Series& series, double threshold);

// First x at which the series reaches y >= threshold (for accuracy curves).
std::optional<double> TimeToThresholdAbove(const Series& series,
                                           double threshold);

// Final y value; fatal on empty series.
double FinalValue(const Series& series);

// Minimum y over the series; fatal on empty series.
double MinValue(const Series& series);

}  // namespace netmax::ml

#endif  // NETMAX_ML_METRICS_H_
