#ifndef NETMAX_ML_METRICS_H_
#define NETMAX_ML_METRICS_H_

// Whole-dataset evaluation helpers and the (x, y) series type the experiment
// harness records (loss vs virtual time, loss vs epoch, accuracy vs time).

#include <optional>
#include <vector>

#include "ml/dataset.h"
#include "ml/model.h"
#include "ml/workspace.h"

namespace netmax::ml {

// Mean cross-entropy loss of `model` over all of `data`. Runs the whole
// dataset as ONE batch — unlike Accuracy it cannot chunk, because splitting
// would change the loss summation order and break bit-identity with the
// seed — so the workspace's activation buffers grow to
// O(dataset_size x widest layer). Use a dedicated workspace (not a
// per-worker training one) if that footprint matters.
double AverageLoss(const Model& model, const Dataset& data);
double AverageLoss(const Model& model, const Dataset& data,
                   TrainingWorkspace& workspace);

// Fraction of examples of `data` that `model` classifies correctly. The
// workspace overload evaluates through the model's batched forward pass in
// fixed-size chunks (the workspace-free one borrows the calling thread's
// workspace); both give identical results.
double Accuracy(const Model& model, const Dataset& data);
double Accuracy(const Model& model, const Dataset& data,
                TrainingWorkspace& workspace);

struct SeriesPoint {
  double x = 0.0;  // virtual time (s), epoch, or iteration
  double y = 0.0;  // loss or accuracy
};
using Series = std::vector<SeriesPoint>;

// First x at which the series reaches y <= threshold, linearly interpolating
// between points; nullopt if it never does. Series must be sorted by x.
// Used to compute "time to converge to loss L" speedups (Figures 8/9 etc.).
std::optional<double> TimeToThreshold(const Series& series, double threshold);

// First x at which the series reaches y >= threshold (for accuracy curves).
std::optional<double> TimeToThresholdAbove(const Series& series,
                                           double threshold);

// Final y value; fatal on empty series.
double FinalValue(const Series& series);

// Minimum y over the series; fatal on empty series.
double MinValue(const Series& series);

}  // namespace netmax::ml

#endif  // NETMAX_ML_METRICS_H_
