#include "algos/ad_psgd.h"

#include <algorithm>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "core/checkpoint.h"
#include "core/monitor.h"
#include "core/policy.h"
#include "net/fault_schedule.h"

namespace netmax::algos {
namespace {

using core::CommunicationPolicy;
using core::ExperimentConfig;
using core::ExperimentHarness;
using core::RunResult;

class AdPsgdEngine {
 public:
  AdPsgdEngine(const ExperimentConfig& config, bool with_monitor)
      : harness_(config, with_monitor ? "AD-PSGD+Monitor" : "AD-PSGD"),
        config_(config), with_monitor_(with_monitor) {}

  StatusOr<RunResult> Run() {
    NETMAX_RETURN_IF_ERROR(harness_.Init());
    const int n = harness_.num_workers();
    topology_ = &harness_.topology();
    policy_ = std::make_unique<CommunicationPolicy>(
        CommunicationPolicy::Uniform(*topology_));

    if (with_monitor_) {
      core::MonitorOptions monitor_options;
      monitor_options.schedule_period_seconds = config_.monitor_period_seconds;
      monitor_options.generator = config_.generator;
      monitor_options.generator.alpha = config_.learning_rate;
      // Section III-D: the same optimization with the averaging-mode Y matrix
      // and the relaxed Eq. (11) bound.
      monitor_options.generator.mode =
          core::PolicyGeneratorOptions::Mode::kAveraging;
      monitor_options.generator.averaging_weight = 0.5;
      monitor_ = std::make_unique<core::NetworkMonitor>(*topology_,
                                                        monitor_options);
      ema_times_.assign(
          static_cast<size_t>(n),
          std::vector<ExponentialMovingAverage>(
              static_cast<size_t>(n),
              ExponentialMovingAverage(config_.ema_beta)));
    }

    parked_.assign(static_cast<size_t>(n), 0);
    builder_ = [this](const net::SavedEvent& event) {
      return BuildEvent(event);
    };
    if (harness_.restore_requested()) {
      NETMAX_RETURN_IF_ERROR(harness_.Restore(
          [this](Deserializer& in) { return RestoreEngineState(in); },
          builder_));
    } else {
      if (with_monitor_) {
        Emit(config_.monitor_period_seconds, core::kPlainEvent,
             {kMonitorTick, {}});
      }
      for (int w = 0; w < n; ++w) StartIteration(w);
    }
    harness_.ArmCheckpoint(
        [this](Serializer& out) { return SaveEngineState(out); });
    // Restart a rejoining worker's iteration chain iff it parked; a chain
    // still in flight at rejoin time keeps itself alive.
    harness_.set_fault_listener([this](const net::FaultEvent& fault) {
      if (fault.kind == net::FaultKind::kJoin &&
          parked_[static_cast<size_t>(fault.worker)] != 0) {
        StartIteration(fault.worker);
      }
    });
    harness_.sim().RunUntilIdle();
    NETMAX_RETURN_IF_ERROR(harness_.checkpoint_status());
    if (monitor_ != nullptr) {
      harness_.set_policies_generated(monitor_->policies_generated());
    }
    return harness_.Finalize();
  }

 private:
  // Checkpoint reification tags (core/checkpoint.h).
  enum Tag : int64_t {
    kIterate = 0,  // compute event: args [peer, compute_secs, wall_secs, round]
    kMonitorTick = 1,  // plain event: args []
    kLocalStep = 2,    // compute event: args [compute_secs, wall_secs]
    kPeerWait = 3,     // plain event: args [worker, peer, waited_secs]
    kPeerTimeout = 4,  // plain event: args [worker, peer]
  };

  void Emit(double delay, int worker_key, net::EventPayload payload) {
    core::ScheduleReified(harness_.sim(), delay, worker_key,
                          std::move(payload), builder_);
  }

  StatusOr<net::RebuiltEvent> BuildEvent(const net::SavedEvent& event) {
    const std::vector<double>& args = event.payload.args;
    net::RebuiltEvent rebuilt;
    switch (event.payload.tag) {
      case kIterate: {
        const int w = event.worker_key;
        if (w < 0 || w >= harness_.num_workers() || args.size() != 4) break;
        const int m = static_cast<int>(args[0]);
        const double compute = args[1];
        const double wall = args[2];
        const int64_t round = static_cast<int64_t>(args[3]);
        if (m < 0 || m >= harness_.num_workers() || m == w) break;
        rebuilt.compute = [this, w] { return harness_.EvalBatchGradient(w); };
        rebuilt.commit = [this, w, m, compute, wall, round](double loss) {
          CompleteIteration(w, m, compute, wall, round, loss);
        };
        return rebuilt;
      }
      case kMonitorTick: {
        if (event.worker_key >= 0 || !args.empty() || !with_monitor_) break;
        rebuilt.plain = [this] { MonitorTick(); };
        return rebuilt;
      }
      case kLocalStep: {
        const int w = event.worker_key;
        if (w < 0 || w >= harness_.num_workers() || args.size() != 2) break;
        const double compute = args[0];
        const double wall = args[1];
        rebuilt.compute = [this, w] { return harness_.EvalBatchGradient(w); };
        rebuilt.commit = [this, w, compute, wall](double loss) {
          harness_.CommitBatchStats(w, loss);
          harness_.ApplyStoredGradient(w);
          harness_.AccountIteration(w, compute, wall);
          StartIteration(w);
        };
        return rebuilt;
      }
      case kPeerWait: {
        const int n = harness_.num_workers();
        if (event.worker_key >= 0 || args.size() != 3) break;
        const int w = static_cast<int>(args[0]);
        const int m = static_cast<int>(args[1]);
        const double waited = args[2];
        if (w < 0 || w >= n || m < 0 || m >= n || m == w) break;
        rebuilt.plain = [this, w, m, waited] { PeerWaitTick(w, m, waited); };
        return rebuilt;
      }
      case kPeerTimeout: {
        const int n = harness_.num_workers();
        if (event.worker_key >= 0 || args.size() != 2) break;
        const int w = static_cast<int>(args[0]);
        const int m = static_cast<int>(args[1]);
        if (w < 0 || w >= n || m < 0 || m >= n || m == w) break;
        rebuilt.plain = [this, w, m] { PeerTimeoutExpired(w, m); };
        return rebuilt;
      }
      default:
        break;
    }
    return InvalidArgumentError("malformed AD-PSGD event (tag " +
                                std::to_string(event.payload.tag) + ")");
  }

  Status SaveEngineState(Serializer& out) {
    core::SaveMatrix(out, policy_->matrix());
    if (with_monitor_) {
      core::SaveEmaGrid(out, ema_times_);
      out.WriteI64(monitor_->policies_generated());
    }
    for (const uint8_t parked : parked_) out.WriteBool(parked != 0);
    return Status::Ok();
  }

  Status RestoreEngineState(Deserializer& in) {
    NETMAX_ASSIGN_OR_RETURN(linalg::Matrix matrix, core::LoadMatrix(in));
    const int n = harness_.num_workers();
    if (matrix.rows() != n || matrix.cols() != n) {
      return InvalidArgumentError("checkpoint policy matrix shape mismatch");
    }
    policy_ = std::make_unique<CommunicationPolicy>(std::move(matrix));
    if (with_monitor_) {
      NETMAX_RETURN_IF_ERROR(core::RestoreEmaGrid(in, &ema_times_));
      NETMAX_ASSIGN_OR_RETURN(const int64_t generated, in.ReadI64());
      if (generated < 0) {
        return InvalidArgumentError("negative policies_generated count");
      }
      monitor_->set_policies_generated(generated);
    }
    for (size_t w = 0; w < parked_.size(); ++w) {
      NETMAX_ASSIGN_OR_RETURN(const bool parked, in.ReadBool());
      parked_[w] = parked ? 1 : 0;
    }
    return Status::Ok();
  }

  void StartIteration(int w) {
    if (harness_.WorkerDone(w)) {
      parked_[static_cast<size_t>(w)] = 1;
      return;
    }
    parked_[static_cast<size_t>(w)] = 0;
    core::WorkerRuntime& worker = harness_.worker(w);
    int m = w;
    while (m == w) {
      m = worker.rng.Discrete(policy_->Row(w));
    }
    if (!harness_.WorkerAlive(m)) {
      // The drawn peer is dead: hold this iteration per the peer policy; the
      // batch is sampled only when the pull actually goes out.
      BeginPeerWait(w, m);
      return;
    }
    const double compute = harness_.EffectiveComputeSeconds(w);
    const int64_t round = harness_.NextCommRound(w);
    const double transfer = harness_.SendSeconds(m, w, round);
    // Gradient computation overlaps the pull; the evaluation itself is the
    // pure compute half and everything stateful commits in event order.
    harness_.SampleBatch(w);
    const double wall = std::max(compute, transfer);
    Emit(wall, w,
         {kIterate,
          {static_cast<double>(m), compute, wall,
           static_cast<double>(round)}});
  }

  // Dead-peer handling, one episode per StartIteration that drew a dead
  // peer: kWait re-probes at the poll cadence until the peer returns (or the
  // run's time cap parks the worker); kTimeoutAndContinue arms one deadline,
  // after which the worker takes a plain local step instead.
  void BeginPeerWait(int w, int m) {
    harness_.CountDegradedRound();
    if (harness_.config().peer_policy ==
        core::PeerPolicy::kTimeoutAndContinue) {
      Emit(config_.peer_timeout_seconds, core::kPlainEvent,
           {kPeerTimeout, {static_cast<double>(w), static_cast<double>(m)}});
    } else {
      Emit(config_.peer_poll_seconds, core::kPlainEvent,
           {kPeerWait,
            {static_cast<double>(w), static_cast<double>(m),
             config_.peer_poll_seconds}});
    }
  }

  void PeerWaitTick(int w, int m, double waited) {
    if (harness_.WorkerDone(w)) {
      parked_[static_cast<size_t>(w)] = 1;
      return;
    }
    if (harness_.WorkerAlive(m)) {
      ResumePull(w, m, waited);
      return;
    }
    Emit(config_.peer_poll_seconds, core::kPlainEvent,
         {kPeerWait,
          {static_cast<double>(w), static_cast<double>(m),
           waited + config_.peer_poll_seconds}});
  }

  void PeerTimeoutExpired(int w, int m) {
    if (harness_.WorkerDone(w)) {
      parked_[static_cast<size_t>(w)] = 1;
      return;
    }
    if (harness_.WorkerAlive(m)) {
      ResumePull(w, m, config_.peer_timeout_seconds);
      return;
    }
    harness_.CountPeerTimeout();
    const double compute = harness_.EffectiveComputeSeconds(w);
    harness_.SampleBatch(w);
    Emit(compute, w,
         {kLocalStep, {compute, config_.peer_timeout_seconds + compute}});
  }

  void ResumePull(int w, int m, double waited) {
    const double compute = harness_.EffectiveComputeSeconds(w);
    const int64_t round = harness_.NextCommRound(w);
    const double transfer = harness_.SendSeconds(m, w, round);
    harness_.SampleBatch(w);
    const double wall = std::max(compute, transfer);
    Emit(wall, w,
         {kIterate,
          {static_cast<double>(m), compute, waited + wall,
           static_cast<double>(round)}});
  }

  void CompleteIteration(int w, int m, double compute, double wall,
                         int64_t round, double loss) {
    core::WorkerRuntime& worker = harness_.worker(w);
    // AD-PSGD order: average with the selected peer, then apply the gradient
    // that was computed concurrently. The averaging is atomic and symmetric —
    // both endpoints adopt (x_i + x_m)/2, as in Lian et al.'s W matrix —
    // which
    // preserves the parameter mean across the fleet.
    harness_.CommitBatchStats(w, loss);
    if (!harness_.WorkerAlive(m)) {
      // The peer died while this pull was in flight: keep the gradient
      // progress, skip the averaging (and the monitor's EMA sample — no
      // successful communication to measure).
      harness_.CountDegradedRound();
      harness_.ApplyStoredGradient(w);
      harness_.AccountIteration(w, compute, wall);
      StartIteration(w);
      return;
    }
    // Both endpoints' parameters are written below: notify before either
    // write so any evaluation the backend ran ahead (m's is usually
    // window-resident or speculated) is invalidated and re-dispatched.
    harness_.sim().NotifyStateWrite(w);
    harness_.sim().NotifyStateWrite(m);
    auto x_i = worker.model->parameters();
    auto x_m = harness_.worker(m).model->parameters();
    if (!harness_.compression_enabled()) {
      for (size_t j = 0; j < x_i.size(); ++j) {
        const double mean = 0.5 * (x_i[j] + x_m[j]);
        x_i[j] = mean;
        x_m[j] = mean;
      }
    } else {
      // Compressed averaging: what crossed the wire is C(x_m - x_i), so both
      // endpoints move half of the decoded difference toward each other —
      // the exact averaging above when C is the identity, and still
      // mean-preserving for every lossy variant.
      std::span<double> diff = harness_.CompressionScratch();
      for (size_t j = 0; j < x_i.size(); ++j) diff[j] = x_m[j] - x_i[j];
      harness_.ApplyCompression(w, round, diff);
      for (size_t j = 0; j < x_i.size(); ++j) {
        const double half = 0.5 * diff[j];
        x_i[j] += half;
        x_m[j] -= half;
      }
    }
    harness_.ApplyStoredGradient(w);
    if (with_monitor_) {
      ema_times_[static_cast<size_t>(w)][static_cast<size_t>(m)].Add(wall);
    }
    harness_.AccountIteration(w, compute, wall);
    StartIteration(w);
  }

  void MonitorTick() {
    if (harness_.AllDone()) return;
    const int n = harness_.num_workers();
    linalg::Matrix times(n, n, 0.0);
    for (int i = 0; i < n; ++i) {
      for (int m : topology_->Neighbors(i)) {
        const auto& ema =
            ema_times_[static_cast<size_t>(i)][static_cast<size_t>(m)];
        if (ema.has_value()) times(i, m) = ema.value();
      }
    }
    StatusOr<core::GeneratedPolicy> generated =
        monitor_->ComputePolicy(times, harness_.pool());
    if (generated.ok()) {
      policy_ = std::make_unique<CommunicationPolicy>(
          std::move(generated.value().policy));
    }
    Emit(config_.monitor_period_seconds, core::kPlainEvent,
         {kMonitorTick, {}});
  }

  ExperimentHarness harness_;
  ExperimentConfig config_;
  bool with_monitor_;
  const net::Topology* topology_ = nullptr;
  std::unique_ptr<CommunicationPolicy> policy_;
  std::unique_ptr<core::NetworkMonitor> monitor_;
  std::vector<std::vector<ExponentialMovingAverage>> ema_times_;
  // Per-worker "iteration chain is parked" flag (see the join listener).
  std::vector<uint8_t> parked_;
  net::EventRebuilder builder_;
};

}  // namespace

StatusOr<core::RunResult> AdPsgdAlgorithm::Run(
    const core::ExperimentConfig& config) const {
  AdPsgdEngine engine(config, /*with_monitor=*/false);
  return engine.Run();
}

StatusOr<core::RunResult> AdPsgdWithMonitorAlgorithm::Run(
    const core::ExperimentConfig& config) const {
  AdPsgdEngine engine(config, /*with_monitor=*/true);
  return engine.Run();
}

}  // namespace netmax::algos
