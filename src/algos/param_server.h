#ifndef NETMAX_ALGOS_PARAM_SERVER_H_
#define NETMAX_ALGOS_PARAM_SERVER_H_

// Parameter-server baselines (paper Sections V-G and Appendix G).
//
// The PS is co-located with worker 0's machine/region; worker-to-PS link
// costs reuse worker 0's links, so workers sharing that machine talk to the
// PS over fast links while everyone else crosses the slow fabric — exactly
// the paper's "the worker nodes located on the same server with the PS
// iterate much faster" observation. The PS NIC is a serialization point: all
// uploads/downloads queue on it, modelling the central-node congestion that
// motivates decentralized training.
//
//  * PS-syn: bulk-synchronous rounds — all workers push gradients, the PS
//    applies the averaged gradient once, then sends fresh parameters back.
//  * PS-asyn: each worker independently pushes its gradient and pulls the
//    updated model; the PS applies updates in arrival order (async SGD).

#include "core/experiment.h"

namespace netmax::algos {

class PsSyncAlgorithm : public core::TrainingAlgorithm {
 public:
  std::string name() const override { return "PS-syn"; }
  StatusOr<core::RunResult> Run(
      const core::ExperimentConfig& config) const override;
};

class PsAsyncAlgorithm : public core::TrainingAlgorithm {
 public:
  std::string name() const override { return "PS-asyn"; }
  StatusOr<core::RunResult> Run(
      const core::ExperimentConfig& config) const override;
};

}  // namespace netmax::algos

#endif  // NETMAX_ALGOS_PARAM_SERVER_H_
