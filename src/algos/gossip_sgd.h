#ifndef NETMAX_ALGOS_GOSSIP_SGD_H_
#define NETMAX_ALGOS_GOSSIP_SGD_H_

// GoSGD-style push gossip (paper references [12, 17]). After every local SGD
// step a worker pushes a copy of its parameters to a uniformly random
// neighbor without blocking on the transfer (at most one push in flight per
// worker; new pushes are skipped while the NIC is busy). The receiver merges
// incoming models by equal-weight averaging. Because iterations never wait on
// the network, gossip iterates fast but propagates stale models over slow
// links — the regime NetMax's policy explicitly optimizes instead.

#include "core/experiment.h"

namespace netmax::algos {

class GossipSgdAlgorithm : public core::TrainingAlgorithm {
 public:
  std::string name() const override { return "GoSGD"; }
  StatusOr<core::RunResult> Run(
      const core::ExperimentConfig& config) const override;
};

}  // namespace netmax::algos

#endif  // NETMAX_ALGOS_GOSSIP_SGD_H_
