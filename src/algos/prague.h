#ifndef NETMAX_ALGOS_PRAGUE_H_
#define NETMAX_ALGOS_PRAGUE_H_

// Prague baseline (paper reference [14]): heterogeneity-aware asynchronous
// decentralized training via Partial All-Reduce. Workers that finish their
// local step enter a ready pool; whenever `group_size` workers are ready they
// form a group and ring-allreduce (average) their models, independently of
// other groups. Group formation is agnostic to link speed, and concurrent
// group reductions contend for the shared network — the two effects the paper
// blames for Prague's high communication cost on heterogeneous networks
// (Section V-B): each group step is scaled by the number of groups in flight.

#include "core/experiment.h"

namespace netmax::algos {

class PragueAlgorithm : public core::TrainingAlgorithm {
 public:
  // group_size <= 1 picks the paper-style default (2 for M <= 4, else 4).
  explicit PragueAlgorithm(int group_size = 0) : group_size_(group_size) {}

  std::string name() const override { return "Prague"; }
  StatusOr<core::RunResult> Run(
      const core::ExperimentConfig& config) const override;

 private:
  int group_size_;
};

}  // namespace netmax::algos

#endif  // NETMAX_ALGOS_PRAGUE_H_
