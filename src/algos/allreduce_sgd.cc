#include "algos/allreduce_sgd.h"

#include <algorithm>
#include <vector>

#include "linalg/vector_ops.h"

namespace netmax::algos {
namespace {

using core::ExperimentConfig;
using core::ExperimentHarness;
using core::RunResult;

class AllreduceEngine {
 public:
  explicit AllreduceEngine(const ExperimentConfig& config)
      : harness_(config, "Allreduce") {}

  StatusOr<RunResult> Run() {
    NETMAX_RETURN_IF_ERROR(harness_.Init());
    harness_.sim().ScheduleAfter(0.0, [this] { RunRound(); });
    harness_.sim().RunUntilIdle();
    return harness_.Finalize();
  }

 private:
  void RunRound() {
    if (harness_.AllDone()) return;
    const int n = harness_.num_workers();

    // Phase 1: all workers compute gradients in parallel — now literally: one
    // compute event per worker at the current time, so the pool evaluates the
    // whole round concurrently. Commits run in worker order; the last one
    // reduces and starts the next round.
    for (int w = 0; w < n; ++w) {
      harness_.SampleBatch(w);
      harness_.sim().ScheduleComputeAfter(
          0.0, w, [this, w] { return harness_.EvalBatchGradient(w); },
          [this, w, n](double loss) {
            harness_.CommitBatchStats(w, loss);
            if (w == n - 1) ReduceAndApply();
          });
    }
  }

  void ReduceAndApply() {
    const int n = harness_.num_workers();
    const double now = harness_.sim().Now();
    double max_compute = 0.0;
    std::vector<double> computes(static_cast<size_t>(n));
    for (int w = 0; w < n; ++w) {
      computes[static_cast<size_t>(w)] =
          harness_.worker(w).compute_seconds_per_batch;
      max_compute = std::max(max_compute, computes[static_cast<size_t>(w)]);
    }

    // Phase 2: ring allreduce of the gradients. 2(M-1) chunk steps, each
    // paced by the slowest ring link; the chunks are pipelined, so the
    // per-message latency is paid once per direction rather than per step
    // (T(0 bytes) isolates the latency component). Link costs are evaluated
    // at the current virtual time (dynamic slowdowns apply).
    const int64_t chunk_bytes =
        harness_.config().profile.message_bytes() / n;
    double step_seconds = 0.0;
    double latency_seconds = 0.0;
    for (int w = 0; w < n; ++w) {
      const int succ = (w + 1) % n;
      const double latency = harness_.links().TransferSeconds(w, succ, now, 0);
      const double chunk =
          harness_.links().TransferSeconds(w, succ, now, chunk_bytes);
      step_seconds = std::max(step_seconds, chunk - latency);
      latency_seconds = std::max(latency_seconds, latency);
    }
    const double allreduce_seconds =
        2.0 * (n - 1) * step_seconds + 2.0 * latency_seconds;

    // Average the gradients and apply the identical update on every replica.
    // All of this round's compute events committed before the last worker's
    // commit reached here and the next round is not scheduled yet, so no
    // backend holds an evaluation that could read these writes mid-flight;
    // ApplyStoredGradient still notifies each worker per the contract.
    std::vector<double> mean_gradient(
        harness_.worker(0).gradient.size(), 0.0);
    for (int w = 0; w < n; ++w) {
      linalg::AddInPlace(harness_.worker(w).gradient, mean_gradient);
    }
    linalg::Scale(1.0 / static_cast<double>(n), mean_gradient);
    for (int w = 0; w < n; ++w) {
      harness_.worker(w).gradient = mean_gradient;
      harness_.ApplyStoredGradient(w);
    }

    // Gradients must be ready before the reduce: no overlap.
    const double wall = max_compute + allreduce_seconds;
    for (int w = 0; w < n; ++w) {
      harness_.AccountIteration(w, computes[static_cast<size_t>(w)], wall);
    }
    harness_.sim().ScheduleAfter(wall, [this] { RunRound(); });
  }

  ExperimentHarness harness_;
};

}  // namespace

StatusOr<core::RunResult> AllreduceSgdAlgorithm::Run(
    const core::ExperimentConfig& config) const {
  AllreduceEngine engine(config);
  return engine.Run();
}

}  // namespace netmax::algos
