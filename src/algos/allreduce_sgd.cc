#include "algos/allreduce_sgd.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "core/checkpoint.h"
#include "linalg/vector_ops.h"

namespace netmax::algos {
namespace {

using core::ExperimentConfig;
using core::ExperimentHarness;
using core::RunResult;

class AllreduceEngine {
 public:
  explicit AllreduceEngine(const ExperimentConfig& config)
      : harness_(config, "Allreduce") {}

  StatusOr<RunResult> Run() {
    NETMAX_RETURN_IF_ERROR(harness_.Init());
    builder_ = [this](const net::SavedEvent& event) {
      return BuildEvent(event);
    };
    if (harness_.restore_requested()) {
      // The engine keeps no state of its own; the restored queue and worker
      // state carry the whole round structure.
      NETMAX_RETURN_IF_ERROR(harness_.Restore(
          [](Deserializer&) { return Status::Ok(); }, builder_));
    } else {
      Emit(0.0, core::kPlainEvent, {kRunRound, {}});
    }
    harness_.ArmCheckpoint([](Serializer&) { return Status::Ok(); });
    harness_.sim().RunUntilIdle();
    NETMAX_RETURN_IF_ERROR(harness_.checkpoint_status());
    return harness_.Finalize();
  }

 private:
  // Checkpoint reification tags (core/checkpoint.h).
  enum Tag : int64_t {
    kRoundCompute = 0,  // compute event: one worker's gradient, args []
    kRunRound = 1,      // plain event: start the next round, args []
  };

  void Emit(double delay, int worker_key, net::EventPayload payload) {
    core::ScheduleReified(harness_.sim(), delay, worker_key,
                          std::move(payload), builder_);
  }

  StatusOr<net::RebuiltEvent> BuildEvent(const net::SavedEvent& event) {
    const std::vector<double>& args = event.payload.args;
    net::RebuiltEvent rebuilt;
    switch (event.payload.tag) {
      case kRoundCompute: {
        const int w = event.worker_key;
        const int n = harness_.num_workers();
        if (w < 0 || w >= n || !args.empty()) break;
        rebuilt.compute = [this, w] { return harness_.EvalBatchGradient(w); };
        rebuilt.commit = [this, w, n](double loss) {
          harness_.CommitBatchStats(w, loss);
          if (w == n - 1) ReduceAndApply();
        };
        return rebuilt;
      }
      case kRunRound: {
        if (event.worker_key >= 0 || !args.empty()) break;
        rebuilt.plain = [this] { RunRound(); };
        return rebuilt;
      }
      default:
        break;
    }
    return InvalidArgumentError("malformed Allreduce event (tag " +
                                std::to_string(event.payload.tag) + ")");
  }

  void RunRound() {
    if (harness_.AllDone()) return;
    const int n = harness_.num_workers();

    // Phase 1: all workers compute gradients in parallel — now literally: one
    // compute event per worker at the current time, so the pool evaluates the
    // whole round concurrently. Commits run in worker order; the last one
    // reduces and starts the next round.
    for (int w = 0; w < n; ++w) {
      harness_.SampleBatch(w);
      Emit(0.0, w, {kRoundCompute, {}});
    }
  }

  void ReduceAndApply() {
    const int n = harness_.num_workers();
    const double now = harness_.sim().Now();
    double max_compute = 0.0;
    std::vector<double> computes(static_cast<size_t>(n));
    for (int w = 0; w < n; ++w) {
      computes[static_cast<size_t>(w)] =
          harness_.worker(w).compute_seconds_per_batch;
      max_compute = std::max(max_compute, computes[static_cast<size_t>(w)]);
    }

    // Phase 2: ring allreduce of the gradients. 2(M-1) chunk steps, each
    // paced by the slowest ring link; the chunks are pipelined, so the
    // per-message latency is paid once per direction rather than per step
    // (T(0 bytes) isolates the latency component). Link costs are evaluated
    // at the current virtual time (dynamic slowdowns apply).
    const int64_t chunk_bytes =
        harness_.config().profile.message_bytes() / n;
    double step_seconds = 0.0;
    double latency_seconds = 0.0;
    for (int w = 0; w < n; ++w) {
      const int succ = (w + 1) % n;
      const double latency = harness_.links().TransferSeconds(w, succ, now, 0);
      const double chunk =
          harness_.links().TransferSeconds(w, succ, now, chunk_bytes);
      step_seconds = std::max(step_seconds, chunk - latency);
      latency_seconds = std::max(latency_seconds, latency);
    }
    const double allreduce_seconds =
        2.0 * (n - 1) * step_seconds + 2.0 * latency_seconds;

    // Average the gradients and apply the identical update on every replica.
    // All of this round's compute events committed before the last worker's
    // commit reached here and the next round is not scheduled yet, so no
    // backend holds an evaluation that could read these writes mid-flight;
    // ApplyStoredGradient still notifies each worker per the contract.
    std::vector<double> mean_gradient(
        harness_.worker(0).gradient.size(), 0.0);
    for (int w = 0; w < n; ++w) {
      linalg::AddInPlace(harness_.worker(w).gradient, mean_gradient);
    }
    linalg::Scale(1.0 / static_cast<double>(n), mean_gradient);
    for (int w = 0; w < n; ++w) {
      harness_.worker(w).gradient = mean_gradient;
      harness_.ApplyStoredGradient(w);
    }

    // Gradients must be ready before the reduce: no overlap.
    const double wall = max_compute + allreduce_seconds;
    for (int w = 0; w < n; ++w) {
      harness_.AccountIteration(w, computes[static_cast<size_t>(w)], wall);
    }
    Emit(wall, core::kPlainEvent, {kRunRound, {}});
  }

  ExperimentHarness harness_;
  net::EventRebuilder builder_;
};

}  // namespace

StatusOr<core::RunResult> AllreduceSgdAlgorithm::Run(
    const core::ExperimentConfig& config) const {
  AllreduceEngine engine(config);
  return engine.Run();
}

}  // namespace netmax::algos
