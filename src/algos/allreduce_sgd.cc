#include "algos/allreduce_sgd.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "core/checkpoint.h"
#include "linalg/vector_ops.h"

namespace netmax::algos {
namespace {

using core::ExperimentConfig;
using core::ExperimentHarness;
using core::RunResult;

class AllreduceEngine {
 public:
  explicit AllreduceEngine(const ExperimentConfig& config)
      : harness_(config, "Allreduce") {}

  StatusOr<RunResult> Run() {
    NETMAX_RETURN_IF_ERROR(harness_.Init());
    builder_ = [this](const net::SavedEvent& event) {
      return BuildEvent(event);
    };
    if (harness_.restore_requested()) {
      // The restored queue carries the round's pending compute events; the
      // engine blob carries its membership and the outstanding-commit count.
      NETMAX_RETURN_IF_ERROR(harness_.Restore(
          [this](Deserializer& in) { return RestoreEngineState(in); },
          builder_));
    } else {
      Emit(0.0, core::kPlainEvent, {kRunRound, {}});
    }
    harness_.ArmCheckpoint([this](Serializer& out) {
      out.WriteIntVec(members_);
      out.WriteInt(pending_);
      out.WriteBool(round_waiting_);
      return Status::Ok();
    });
    // No fault listener needed: the round loop re-probes on its own while
    // any worker is dead (kWait) or runs with the live membership
    // (kTimeoutAndContinue), so a rejoining worker is picked up by the next
    // kRunRound automatically.
    harness_.sim().RunUntilIdle();
    NETMAX_RETURN_IF_ERROR(harness_.checkpoint_status());
    return harness_.Finalize();
  }

 private:
  // Checkpoint reification tags (core/checkpoint.h).
  enum Tag : int64_t {
    kRoundCompute = 0,  // compute event: one worker's gradient, args []
    kRunRound = 1,      // plain event: start the next round, args []
  };

  void Emit(double delay, int worker_key, net::EventPayload payload) {
    core::ScheduleReified(harness_.sim(), delay, worker_key,
                          std::move(payload), builder_);
  }

  StatusOr<net::RebuiltEvent> BuildEvent(const net::SavedEvent& event) {
    const std::vector<double>& args = event.payload.args;
    net::RebuiltEvent rebuilt;
    switch (event.payload.tag) {
      case kRoundCompute: {
        const int w = event.worker_key;
        const int n = harness_.num_workers();
        if (w < 0 || w >= n || !args.empty()) break;
        rebuilt.compute = [this, w] { return harness_.EvalBatchGradient(w); };
        rebuilt.commit = [this, w](double loss) {
          harness_.CommitBatchStats(w, loss);
          // Commits run in membership order; the last one reduces. On full
          // membership this fires at worker n-1's commit, exactly like the
          // fixed-membership round structure did.
          if (--pending_ == 0) ReduceAndApply();
        };
        return rebuilt;
      }
      case kRunRound: {
        if (event.worker_key >= 0 || !args.empty()) break;
        rebuilt.plain = [this] { RunRound(); };
        return rebuilt;
      }
      default:
        break;
    }
    return InvalidArgumentError("malformed Allreduce event (tag " +
                                std::to_string(event.payload.tag) + ")");
  }

  void RunRound() {
    if (harness_.AllDone()) return;
    const int n = harness_.num_workers();
    const core::ExperimentConfig& config = harness_.config();

    // Round membership under faults. kWait keeps the paper's synchronous
    // semantics: a dead worker blocks the whole round, which re-probes at
    // the poll cadence until everyone is back (bounded by the run's time
    // cap). kTimeoutAndContinue runs with whoever is alive and additionally
    // drops stragglers whose slowed compute would hold the round more than
    // peer_timeout_seconds past the fastest member. On a fault-free run both
    // policies yield the full membership.
    members_.clear();
    if (config.peer_policy == core::PeerPolicy::kWait) {
      for (int w = 0; w < n; ++w) {
        if (!harness_.WorkerAlive(w)) {
          if (!round_waiting_) {
            round_waiting_ = true;
            harness_.CountDegradedRound();
          }
          Emit(config.peer_poll_seconds, core::kPlainEvent, {kRunRound, {}});
          return;
        }
      }
      round_waiting_ = false;
      for (int w = 0; w < n; ++w) members_.push_back(w);
    } else {
      double min_compute = 0.0;
      bool has_alive = false;
      for (int w = 0; w < n; ++w) {
        if (!harness_.WorkerAlive(w)) continue;
        const double compute = harness_.EffectiveComputeSeconds(w);
        min_compute = has_alive ? std::min(min_compute, compute) : compute;
        has_alive = true;
      }
      bool degraded = false;
      for (int w = 0; w < n; ++w) {
        if (!harness_.WorkerAlive(w)) {
          degraded = true;
          continue;
        }
        if (harness_.EffectiveComputeSeconds(w) >
            min_compute + config.peer_timeout_seconds) {
          // The fastest member never exceeds its own bound, so the
          // membership is non-empty whenever anyone is alive.
          degraded = true;
          harness_.CountPeerTimeout();
          continue;
        }
        members_.push_back(w);
      }
      if (members_.empty()) {
        // Everyone is dead: re-probe until a join revives the round.
        Emit(config.peer_poll_seconds, core::kPlainEvent, {kRunRound, {}});
        return;
      }
      if (degraded) harness_.CountDegradedRound();
    }

    // Phase 1: the members compute gradients in parallel — one compute event
    // per member at the current time, so the pool evaluates the whole round
    // concurrently. Commits run in order; the last one reduces and starts
    // the next round.
    pending_ = static_cast<int>(members_.size());
    for (int w : members_) {
      harness_.SampleBatch(w);
      Emit(0.0, w, {kRoundCompute, {}});
    }
  }

  void ReduceAndApply() {
    const int g = static_cast<int>(members_.size());
    const double now = harness_.sim().Now();
    double max_compute = 0.0;
    std::vector<double> computes(static_cast<size_t>(g));
    for (int k = 0; k < g; ++k) {
      computes[static_cast<size_t>(k)] =
          harness_.EffectiveComputeSeconds(members_[static_cast<size_t>(k)]);
      max_compute = std::max(max_compute, computes[static_cast<size_t>(k)]);
    }

    // Phase 2: ring allreduce of the gradients over the members. 2(G-1)
    // chunk steps, each paced by the slowest ring link; the chunks are
    // pipelined, so the per-message latency is paid once per direction
    // rather than per step (T(0 bytes) isolates the latency component).
    // Link costs are evaluated at the current virtual time (dynamic
    // slowdowns apply). A single surviving member reduces with nobody:
    // communication-free round.
    double allreduce_seconds = 0.0;
    int64_t round = 0;
    if (g > 1) {
      const int64_t baseline_chunk =
          harness_.config().profile.message_bytes() / g;
      int64_t chunk_bytes = baseline_chunk;
      if (harness_.compression_enabled()) {
        // One communication round per allreduce; the first member's counter
        // indexes the layer-wise schedule for the whole ring.
        round = harness_.NextCommRound(members_.front());
        chunk_bytes = harness_.MessagePayloadBytes(round) / g;
      }
      // Ring allreduce moves 2(G-1) chunk steps of G concurrent messages.
      const int64_t chunk_messages =
          static_cast<int64_t>(g) * 2 * (g - 1);
      harness_.AccountWire(chunk_messages, chunk_messages * chunk_bytes,
                           chunk_messages * baseline_chunk);
      double step_seconds = 0.0;
      double latency_seconds = 0.0;
      for (int k = 0; k < g; ++k) {
        const int a = members_[static_cast<size_t>(k)];
        const int b = members_[static_cast<size_t>((k + 1) % g)];
        const double latency = harness_.links().TransferSeconds(a, b, now, 0);
        const double chunk =
            harness_.links().TransferSeconds(a, b, now, chunk_bytes);
        step_seconds = std::max(step_seconds, chunk - latency);
        latency_seconds = std::max(latency_seconds, latency);
      }
      allreduce_seconds =
          2.0 * (g - 1) * step_seconds + 2.0 * latency_seconds;
    }

    // Average the members' gradients and apply the identical update on each
    // member replica (dead/dropped workers keep their stale parameters).
    // All of this round's compute events committed before the last member's
    // commit reached here and the next round is not scheduled yet, so no
    // backend holds an evaluation that could read these writes mid-flight;
    // ApplyStoredGradient still notifies each worker per the contract.
    if (harness_.compression_enabled() && g > 1) {
      // Each member contributes C(g_w) to the reduce — the gradient as the
      // ring's round-`round` encoding reconstructs it. A single surviving
      // member reduces with nobody, so nothing crosses the wire (and nothing
      // is compressed).
      for (int w : members_) {
        harness_.ApplyCompression(w, round, harness_.worker(w).gradient);
      }
    }
    std::vector<double> mean_gradient(
        harness_.worker(0).gradient.size(), 0.0);
    for (int w : members_) {
      linalg::AddInPlace(harness_.worker(w).gradient, mean_gradient);
    }
    linalg::Scale(1.0 / static_cast<double>(g), mean_gradient);
    for (int w : members_) {
      harness_.worker(w).gradient = mean_gradient;
      harness_.ApplyStoredGradient(w);
    }

    // Gradients must be ready before the reduce: no overlap.
    const double wall = max_compute + allreduce_seconds;
    for (int k = 0; k < g; ++k) {
      harness_.AccountIteration(members_[static_cast<size_t>(k)],
                                computes[static_cast<size_t>(k)], wall);
    }
    Emit(wall, core::kPlainEvent, {kRunRound, {}});
  }

  Status RestoreEngineState(Deserializer& in) {
    NETMAX_RETURN_IF_ERROR(in.ReadIntVec(&members_));
    for (int w : members_) {
      if (w < 0 || w >= harness_.num_workers()) {
        return InvalidArgumentError("round member out of range");
      }
    }
    NETMAX_ASSIGN_OR_RETURN(pending_, in.ReadInt());
    if (pending_ < 0 || pending_ > static_cast<int>(members_.size())) {
      return InvalidArgumentError("pending commit count out of range");
    }
    NETMAX_ASSIGN_OR_RETURN(round_waiting_, in.ReadBool());
    return Status::Ok();
  }

  ExperimentHarness harness_;
  // The current round's membership, its outstanding commit count, and
  // whether a kWait round is currently blocked on a dead worker (so the
  // degraded-round count increments once per blockage, not per probe).
  std::vector<int> members_;
  int pending_ = 0;
  bool round_waiting_ = false;
  net::EventRebuilder builder_;
};

}  // namespace

StatusOr<core::RunResult> AllreduceSgdAlgorithm::Run(
    const core::ExperimentConfig& config) const {
  AllreduceEngine engine(config);
  return engine.Run();
}

}  // namespace netmax::algos
