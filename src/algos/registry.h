#ifndef NETMAX_ALGOS_REGISTRY_H_
#define NETMAX_ALGOS_REGISTRY_H_

// Name -> algorithm factory used by benches and examples.
//
// The built-in algorithms are registered automatically the first time the
// registry is touched; user code can add its own with RegisterAlgorithm
// (see examples/custom_algorithm.cc). All entry points are thread-safe —
// benches resolve algorithms from thread-pool workers.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/experiment.h"

namespace netmax::algos {

using AlgorithmFactory =
    std::function<std::unique_ptr<core::TrainingAlgorithm>()>;

// Registers `factory` under `name`. Returns AlreadyExists if the name is
// taken (built-in or user-registered) and InvalidArgument for an empty name
// or null factory.
Status RegisterAlgorithm(const std::string& name, AlgorithmFactory factory);

// Built-in names: "netmax", "adpsgd", "allreduce", "prague", "gossip",
// "saps", "ps-sync", "ps-async", "adpsgd+monitor". Returns NotFound for
// anything not registered.
StatusOr<std::unique_ptr<core::TrainingAlgorithm>> MakeAlgorithm(
    const std::string& name);

// All registered names in registration order: the built-ins in the order
// above, then user registrations.
std::vector<std::string> AlgorithmNames();

// The four algorithms of the paper's main comparison (Sections V-B..V-F):
// Prague, Allreduce, AD-PSGD, NetMax.
std::vector<std::string> PaperComparisonAlgorithms();

}  // namespace netmax::algos

#endif  // NETMAX_ALGOS_REGISTRY_H_
