#ifndef NETMAX_ALGOS_REGISTRY_H_
#define NETMAX_ALGOS_REGISTRY_H_

// Name -> algorithm factory used by benches and examples.

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/experiment.h"

namespace netmax::algos {

// Known names: "netmax", "adpsgd", "allreduce", "prague", "gossip",
// "saps", "ps-sync", "ps-async", "adpsgd+monitor". Returns NotFound for
// anything else.
StatusOr<std::unique_ptr<core::TrainingAlgorithm>> MakeAlgorithm(
    const std::string& name);

// All registered names, in the order above.
std::vector<std::string> AlgorithmNames();

// The four algorithms of the paper's main comparison (Sections V-B..V-F):
// Prague, Allreduce, AD-PSGD, NetMax.
std::vector<std::string> PaperComparisonAlgorithms();

}  // namespace netmax::algos

#endif  // NETMAX_ALGOS_REGISTRY_H_
