#include "algos/gossip_sgd.h"

#include <algorithm>
#include <vector>

namespace netmax::algos {
namespace {

using core::ExperimentConfig;
using core::ExperimentHarness;
using core::RunResult;

class GossipEngine {
 public:
  explicit GossipEngine(const ExperimentConfig& config)
      : harness_(config, "GoSGD") {}

  StatusOr<RunResult> Run() {
    NETMAX_RETURN_IF_ERROR(harness_.Init());
    const int n = harness_.num_workers();
    push_busy_until_.assign(static_cast<size_t>(n), 0.0);
    for (int w = 0; w < n; ++w) StartIteration(w);
    harness_.sim().RunUntilIdle();
    return harness_.Finalize();
  }

 private:
  void StartIteration(int w) {
    if (harness_.WorkerDone(w)) return;
    const double compute = harness_.worker(w).compute_seconds_per_batch;
    harness_.SampleBatch(w);
    harness_.sim().ScheduleComputeAfter(
        compute, w, [this, w] { return harness_.EvalBatchGradient(w); },
        [this, w, compute](double loss) {
          harness_.CommitBatchStats(w, loss);
          harness_.ApplyStoredGradient(w);
          MaybePush(w);
          // The push does not block the training loop: wall time is compute
          // only.
          harness_.AccountIteration(w, compute, compute);
          StartIteration(w);
        });
  }

  void MaybePush(int w) {
    const double now = harness_.sim().Now();
    if (now < push_busy_until_[static_cast<size_t>(w)]) return;  // NIC busy
    core::WorkerRuntime& worker = harness_.worker(w);
    const auto& neighbors = harness_.topology().Neighbors(w);
    const int m = neighbors[static_cast<size_t>(worker.rng.UniformInt(
        0, static_cast<int64_t>(neighbors.size()) - 1))];
    const double transfer = harness_.PullSeconds(w, m);  // w -> m push
    push_busy_until_[static_cast<size_t>(w)] = now + transfer;
    // Snapshot the sender's parameters at push time.
    const auto p = worker.model->parameters();
    std::vector<double> snapshot(p.begin(), p.end());
    harness_.sim().ScheduleAfter(
        transfer, [this, m, snapshot = std::move(snapshot)] {
          // Arrival writes the receiver's parameters — invalidate whatever
          // the backend ran ahead for m (frontier speculation or async
          // window entry; an in-flight evaluation is waited out first).
          harness_.sim().NotifyStateWrite(m);
          auto x_m = harness_.worker(m).model->parameters();
          for (size_t j = 0; j < x_m.size(); ++j) {
            x_m[j] = 0.5 * (x_m[j] + snapshot[j]);
          }
        });
  }

  ExperimentHarness harness_;
  std::vector<double> push_busy_until_;
};

}  // namespace

StatusOr<core::RunResult> GossipSgdAlgorithm::Run(
    const core::ExperimentConfig& config) const {
  GossipEngine engine(config);
  return engine.Run();
}

}  // namespace netmax::algos
