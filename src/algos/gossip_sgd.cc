#include "algos/gossip_sgd.h"

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/checkpoint.h"
#include "net/fault_schedule.h"

namespace netmax::algos {
namespace {

using core::ExperimentConfig;
using core::ExperimentHarness;
using core::RunResult;

class GossipEngine {
 public:
  explicit GossipEngine(const ExperimentConfig& config)
      : harness_(config, "GoSGD") {}

  StatusOr<RunResult> Run() {
    NETMAX_RETURN_IF_ERROR(harness_.Init());
    const int n = harness_.num_workers();
    push_busy_until_.assign(static_cast<size_t>(n), 0.0);
    parked_.assign(static_cast<size_t>(n), 0);
    builder_ = [this](const net::SavedEvent& event) {
      return BuildEvent(event);
    };
    if (harness_.restore_requested()) {
      NETMAX_RETURN_IF_ERROR(harness_.Restore(
          [this](Deserializer& in) {
            NETMAX_RETURN_IF_ERROR(in.ReadDoubleSpan(push_busy_until_));
            for (size_t w = 0; w < parked_.size(); ++w) {
              NETMAX_ASSIGN_OR_RETURN(const bool parked, in.ReadBool());
              parked_[w] = parked ? 1 : 0;
            }
            return Status::Ok();
          },
          builder_));
    } else {
      for (int w = 0; w < n; ++w) StartIteration(w);
    }
    harness_.ArmCheckpoint([this](Serializer& out) {
      out.WriteDoubleVec(push_busy_until_);
      for (const uint8_t parked : parked_) out.WriteBool(parked != 0);
      return Status::Ok();
    });
    // Restart a rejoining worker's iteration chain iff it parked.
    harness_.set_fault_listener([this](const net::FaultEvent& fault) {
      if (fault.kind == net::FaultKind::kJoin &&
          parked_[static_cast<size_t>(fault.worker)] != 0) {
        StartIteration(fault.worker);
      }
    });
    harness_.sim().RunUntilIdle();
    NETMAX_RETURN_IF_ERROR(harness_.checkpoint_status());
    return harness_.Finalize();
  }

 private:
  // Checkpoint reification tags (core/checkpoint.h).
  enum Tag : int64_t {
    kIterate = 0,  // compute event: args [compute_seconds]
    kArrival = 1,  // plain event: args [receiver, round, sender snapshot...]
  };

  void Emit(double delay, int worker_key, net::EventPayload payload) {
    core::ScheduleReified(harness_.sim(), delay, worker_key,
                          std::move(payload), builder_);
  }

  StatusOr<net::RebuiltEvent> BuildEvent(const net::SavedEvent& event) {
    const std::vector<double>& args = event.payload.args;
    net::RebuiltEvent rebuilt;
    switch (event.payload.tag) {
      case kIterate: {
        const int w = event.worker_key;
        if (w < 0 || w >= harness_.num_workers() || args.size() != 1) break;
        const double compute = args[0];
        rebuilt.compute = [this, w] { return harness_.EvalBatchGradient(w); };
        rebuilt.commit = [this, w, compute](double loss) {
          harness_.CommitBatchStats(w, loss);
          harness_.ApplyStoredGradient(w);
          MaybePush(w);
          // The push does not block the training loop: wall time is compute
          // only.
          harness_.AccountIteration(w, compute, compute);
          StartIteration(w);
        };
        return rebuilt;
      }
      case kArrival: {
        const size_t num_params = harness_.worker(0).gradient.size();
        if (event.worker_key >= 0 || args.size() != 2 + num_params) break;
        const int m = static_cast<int>(args[0]);
        const int64_t round = static_cast<int64_t>(args[1]);
        if (m < 0 || m >= harness_.num_workers()) break;
        rebuilt.plain = [this, m, round,
                         snapshot = std::vector<double>(args.begin() + 2,
                                                        args.end())] {
          if (!harness_.WorkerAlive(m)) {
            // The receiver died while the push was in flight: drop it.
            harness_.CountDegradedRound();
            return;
          }
          // Arrival writes the receiver's parameters — invalidate whatever
          // the backend ran ahead for m (frontier speculation or async
          // window entry; an in-flight evaluation is waited out first).
          harness_.sim().NotifyStateWrite(m);
          auto x_m = harness_.worker(m).model->parameters();
          if (!harness_.compression_enabled()) {
            for (size_t j = 0; j < x_m.size(); ++j) {
              x_m[j] = 0.5 * (x_m[j] + snapshot[j]);
            }
          } else {
            // The push carried C(snapshot - x_m^push); decode against the
            // receiver's current parameters (arrivals are ordered, so this
            // is the deterministic gossip analogue of the exact average).
            // Int8's stochastic rounding draws from the receiver's stream —
            // the worker whose state this plain event commits.
            std::span<double> diff = harness_.CompressionScratch();
            for (size_t j = 0; j < x_m.size(); ++j) {
              diff[j] = snapshot[j] - x_m[j];
            }
            harness_.ApplyCompression(m, round, diff);
            for (size_t j = 0; j < x_m.size(); ++j) {
              x_m[j] += 0.5 * diff[j];
            }
          }
        };
        return rebuilt;
      }
      default:
        break;
    }
    return InvalidArgumentError("malformed GoSGD event (tag " +
                                std::to_string(event.payload.tag) + ")");
  }

  void StartIteration(int w) {
    if (harness_.WorkerDone(w)) {
      parked_[static_cast<size_t>(w)] = 1;
      return;
    }
    parked_[static_cast<size_t>(w)] = 0;
    const double compute = harness_.EffectiveComputeSeconds(w);
    harness_.SampleBatch(w);
    Emit(compute, w, {kIterate, {compute}});
  }

  void MaybePush(int w) {
    const double now = harness_.sim().Now();
    if (now < push_busy_until_[static_cast<size_t>(w)]) return;  // NIC busy
    core::WorkerRuntime& worker = harness_.worker(w);
    const auto& neighbors = harness_.topology().Neighbors(w);
    const int m = neighbors[static_cast<size_t>(worker.rng.UniformInt(
        0, static_cast<int64_t>(neighbors.size()) - 1))];
    if (!harness_.WorkerAlive(m)) {
      // Push-gossip never blocks: a dead target just means no push this
      // iteration (the NIC stays free for the next draw).
      harness_.CountDegradedRound();
      return;
    }
    const int64_t round = harness_.NextCommRound(w);
    const double transfer = harness_.SendSeconds(w, m, round);  // w -> m push
    push_busy_until_[static_cast<size_t>(w)] = now + transfer;
    // Snapshot the sender's parameters at push time; the snapshot rides in
    // the event payload so an in-flight push checkpoints/restores losslessly.
    const auto p = worker.model->parameters();
    std::vector<double> args;
    args.reserve(2 + p.size());
    args.push_back(static_cast<double>(m));
    args.push_back(static_cast<double>(round));
    args.insert(args.end(), p.begin(), p.end());
    Emit(transfer, core::kPlainEvent, {kArrival, std::move(args)});
  }

  ExperimentHarness harness_;
  std::vector<double> push_busy_until_;
  // Per-worker "iteration chain is parked" flag (see the join listener).
  std::vector<uint8_t> parked_;
  net::EventRebuilder builder_;
};

}  // namespace

StatusOr<core::RunResult> GossipSgdAlgorithm::Run(
    const core::ExperimentConfig& config) const {
  GossipEngine engine(config);
  return engine.Run();
}

}  // namespace netmax::algos
