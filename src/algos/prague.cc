#include "algos/prague.h"

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/checkpoint.h"
#include "linalg/vector_ops.h"
#include "net/fault_schedule.h"

namespace netmax::algos {
namespace {

using core::ExperimentConfig;
using core::ExperimentHarness;
using core::RunResult;

class PragueEngine {
 public:
  PragueEngine(const ExperimentConfig& config, int group_size)
      : harness_(config, "Prague"), group_size_(group_size) {}

  StatusOr<RunResult> Run() {
    NETMAX_RETURN_IF_ERROR(harness_.Init());
    const int n = harness_.num_workers();
    if (group_size_ <= 1) group_size_ = n <= 4 ? 2 : 4;
    group_size_ = std::min(group_size_, n);
    iteration_start_.assign(static_cast<size_t>(n), 0.0);
    ready_since_.assign(static_cast<size_t>(n), -1.0);
    parked_.assign(static_cast<size_t>(n), 0);
    builder_ = [this](const net::SavedEvent& event) {
      return BuildEvent(event);
    };
    if (harness_.restore_requested()) {
      NETMAX_RETURN_IF_ERROR(harness_.Restore(
          [this](Deserializer& in) { return RestoreEngineState(in); },
          builder_));
    } else {
      for (int w = 0; w < n; ++w) StartIteration(w);
    }
    harness_.ArmCheckpoint([this](Serializer& out) {
      out.WriteIntVec(ready_);
      out.WriteDoubleVec(iteration_start_);
      out.WriteInt(active_groups_);
      out.WriteDoubleVec(ready_since_);
      for (const uint8_t parked : parked_) out.WriteBool(parked != 0);
      return Status::Ok();
    });
    // A leaving worker is evicted from the waiting room (a dead member must
    // not be averaged into a group); a rejoining worker's chain restarts iff
    // it parked. Either way the remaining ready workers are re-examined —
    // the active-worker count just changed.
    harness_.set_fault_listener([this](const net::FaultEvent& fault) {
      const size_t w = static_cast<size_t>(fault.worker);
      if (fault.kind == net::FaultKind::kLeave) {
        auto it = std::find(ready_.begin(), ready_.end(), fault.worker);
        if (it != ready_.end()) {
          ready_.erase(it);
          ready_since_[w] = -1.0;
          parked_[w] = 1;
          harness_.CountDegradedRound();
        }
        MaybeFormGroup(/*flush=*/false);
      } else if (fault.kind == net::FaultKind::kJoin && parked_[w] != 0) {
        StartIteration(fault.worker);
      }
    });
    harness_.sim().RunUntilIdle();
    NETMAX_RETURN_IF_ERROR(harness_.checkpoint_status());
    return harness_.Finalize();
  }

 private:
  // Checkpoint reification tags (core/checkpoint.h). An in-flight group
  // reduce checkpoints as its kGroupFinish event (the member models were
  // already averaged at launch); the waiting room (`ready_`), per-worker
  // iteration starts, and the in-flight group count ride in the engine blob.
  enum Tag : int64_t {
    kCompute = 0,       // compute event: args []
    kGroupFinish = 1,   // plain event: args [reduce_seconds, members...]
    kReadyTimeout = 2,  // plain event: args [worker, ready_since]
  };

  void Emit(double delay, int worker_key, net::EventPayload payload) {
    core::ScheduleReified(harness_.sim(), delay, worker_key,
                          std::move(payload), builder_);
  }

  StatusOr<net::RebuiltEvent> BuildEvent(const net::SavedEvent& event) {
    const std::vector<double>& args = event.payload.args;
    const int n = harness_.num_workers();
    net::RebuiltEvent rebuilt;
    switch (event.payload.tag) {
      case kCompute: {
        const int w = event.worker_key;
        if (w < 0 || w >= n || !args.empty()) break;
        rebuilt.compute = [this, w] { return harness_.EvalBatchGradient(w); };
        rebuilt.commit = [this, w](double loss) {
          // Local SGD step, then wait for a partial-allreduce group.
          harness_.CommitBatchStats(w, loss);
          harness_.ApplyStoredGradient(w);
          if (!harness_.WorkerAlive(w)) {
            // The worker left while this batch was in flight: the local step
            // counts, but it must not enter the waiting room.
            parked_[static_cast<size_t>(w)] = 1;
            harness_.CountDegradedRound();
            MaybeFormGroup(/*flush=*/false);
            return;
          }
          EnterWaitingRoom(w);
        };
        return rebuilt;
      }
      case kGroupFinish: {
        if (event.worker_key >= 0 || args.size() < 2) break;
        const double reduce_seconds = args[0];
        std::vector<int> group;
        group.reserve(args.size() - 1);
        bool valid = true;
        for (size_t i = 1; i < args.size(); ++i) {
          const int w = static_cast<int>(args[i]);
          if (w < 0 || w >= n) valid = false;
          group.push_back(w);
        }
        if (!valid) break;
        rebuilt.plain = [this, group = std::move(group), reduce_seconds] {
          --active_groups_;
          for (int w : group) FinishGroupMember(w, reduce_seconds);
        };
        return rebuilt;
      }
      case kReadyTimeout: {
        if (event.worker_key >= 0 || args.size() != 2) break;
        const int w = static_cast<int>(args[0]);
        if (w < 0 || w >= n) break;
        const double since = args[1];
        rebuilt.plain = [this, w, since] { ReadyTimeout(w, since); };
        return rebuilt;
      }
      default:
        break;
    }
    return InvalidArgumentError("malformed Prague event (tag " +
                                std::to_string(event.payload.tag) + ")");
  }

  Status RestoreEngineState(Deserializer& in) {
    NETMAX_RETURN_IF_ERROR(in.ReadIntVec(&ready_));
    for (int w : ready_) {
      if (w < 0 || w >= harness_.num_workers()) {
        return InvalidArgumentError("ready worker out of range");
      }
    }
    NETMAX_RETURN_IF_ERROR(in.ReadDoubleSpan(iteration_start_));
    NETMAX_ASSIGN_OR_RETURN(active_groups_, in.ReadInt());
    if (active_groups_ < 0) {
      return InvalidArgumentError("negative active group count");
    }
    NETMAX_RETURN_IF_ERROR(in.ReadDoubleSpan(ready_since_));
    for (size_t w = 0; w < parked_.size(); ++w) {
      NETMAX_ASSIGN_OR_RETURN(const bool parked, in.ReadBool());
      parked_[w] = parked ? 1 : 0;
    }
    return Status::Ok();
  }

  void StartIteration(int w) {
    if (harness_.WorkerDone(w)) {
      parked_[static_cast<size_t>(w)] = 1;
      // A finished worker no longer joins groups; flush stragglers so the
      // remaining ready workers are not stranded waiting for it.
      MaybeFormGroup(/*flush=*/true);
      return;
    }
    parked_[static_cast<size_t>(w)] = 0;
    iteration_start_[static_cast<size_t>(w)] = harness_.sim().Now();
    const double compute = harness_.EffectiveComputeSeconds(w);
    harness_.SampleBatch(w);
    Emit(compute, w, {kCompute, {}});
  }

  // The worker's local step committed: it waits for a group. Under
  // kTimeoutAndContinue it also arms a deadline — if it is still waiting
  // (same episode, identified by the entry time) when the deadline fires, it
  // gives up on group formation and continues alone.
  void EnterWaitingRoom(int w) {
    ready_.push_back(w);
    ready_since_[static_cast<size_t>(w)] = harness_.sim().Now();
    if (harness_.config().peer_policy ==
        core::PeerPolicy::kTimeoutAndContinue) {
      Emit(harness_.config().peer_timeout_seconds, core::kPlainEvent,
           {kReadyTimeout,
            {static_cast<double>(w), ready_since_[static_cast<size_t>(w)]}});
    }
    MaybeFormGroup(/*flush=*/false);
  }

  void ReadyTimeout(int w, double since) {
    // Stale deadline: the worker was grouped (or evicted) since it was
    // armed. Entry times are strictly increasing per worker, so equality
    // identifies the episode exactly.
    if (ready_since_[static_cast<size_t>(w)] != since) return;
    auto it = std::find(ready_.begin(), ready_.end(), w);
    if (it == ready_.end()) return;
    ready_.erase(it);
    ready_since_[static_cast<size_t>(w)] = -1.0;
    harness_.CountPeerTimeout();
    harness_.CountDegradedRound();
    FinishGroupMember(w, 0.0);
  }

  // Number of workers that can still produce a ready event.
  int ActiveWorkers() const {
    int active = 0;
    for (int w = 0; w < harness_.num_workers(); ++w) {
      if (!harness_.WorkerDone(w)) ++active;
    }
    return active;
  }

  void MaybeFormGroup(bool flush) {
    while (static_cast<int>(ready_.size()) >= group_size_) {
      std::vector<int> group(ready_.begin(), ready_.begin() + group_size_);
      ready_.erase(ready_.begin(), ready_.begin() + group_size_);
      LaunchGroup(group);
    }
    // When too few active workers remain to ever fill a group, reduce what is
    // left (pairs at minimum) or let singletons continue alone.
    if (!ready_.empty() &&
        (flush || ActiveWorkers() < group_size_) &&
        static_cast<int>(ready_.size()) >= ActiveWorkers()) {
      std::vector<int> group = ready_;
      ready_.clear();
      if (group.size() >= 2) {
        LaunchGroup(group);
      } else {
        ready_since_[static_cast<size_t>(group[0])] = -1.0;
        FinishGroupMember(group[0], 0.0);
      }
    }
  }

  void LaunchGroup(const std::vector<int>& group) {
    for (int w : group) ready_since_[static_cast<size_t>(w)] = -1.0;
    const double now = harness_.sim().Now();
    // Ring allreduce within the group: 2(G-1) steps of 1/G model chunks over
    // the slowest intra-group link. Concurrent groups share the physical
    // network: the paper attributes Prague's congestion to exactly this, so
    // each step is stretched by the number of in-flight groups.
    const int g = static_cast<int>(group.size());
    const int64_t baseline_chunk =
        harness_.config().profile.message_bytes() / g;
    int64_t chunk_bytes = baseline_chunk;
    int64_t round = 0;
    if (harness_.compression_enabled()) {
      // One communication round per group reduce, indexed by the first
      // member's counter (groups always have >= 2 members here).
      round = harness_.NextCommRound(group.front());
      chunk_bytes = harness_.MessagePayloadBytes(round) / g;
    }
    const int64_t chunk_messages = static_cast<int64_t>(g) * 2 * (g - 1);
    harness_.AccountWire(chunk_messages, chunk_messages * chunk_bytes,
                         chunk_messages * baseline_chunk);
    double step_seconds = 0.0;
    double latency_seconds = 0.0;
    for (int k = 0; k < g; ++k) {
      const int a = group[static_cast<size_t>(k)];
      const int b = group[static_cast<size_t>((k + 1) % g)];
      const double latency = harness_.links().TransferSeconds(a, b, now, 0);
      const double chunk =
          harness_.links().TransferSeconds(a, b, now, chunk_bytes);
      step_seconds = std::max(step_seconds, chunk - latency);
      latency_seconds = std::max(latency_seconds, latency);
    }
    ++active_groups_;
    const double contention = static_cast<double>(active_groups_);
    const double reduce_seconds =
        (2.0 * (g - 1) * step_seconds + 2.0 * latency_seconds) * contention;

    // Average the group's models.
    std::vector<std::vector<double>> params;
    params.reserve(group.size());
    for (int w : group) {
      const auto p = harness_.worker(w).model->parameters();
      params.emplace_back(p.begin(), p.end());
    }
    const std::vector<double> mean = linalg::Mean(params);
    for (int w : group) {
      // Group members are idle (their next compute event is scheduled only in
      // FinishGroupMember), so no backend — frontier or window — can hold an
      // evaluation for them here; notify anyway: the write contract is cheap
      // and engine-evolution-proof.
      harness_.sim().NotifyStateWrite(w);
      auto p = harness_.worker(w).model->parameters();
      if (!harness_.compression_enabled()) {
        std::copy(mean.begin(), mean.end(), p.begin());
      } else {
        // Each member receives C(mean - x_w): it moves onto the group mean
        // exactly where the encoding is lossless and as far as the decoded
        // difference carries it elsewhere.
        std::span<double> diff = harness_.CompressionScratch();
        for (size_t j = 0; j < p.size(); ++j) diff[j] = mean[j] - p[j];
        harness_.ApplyCompression(w, round, diff);
        for (size_t j = 0; j < p.size(); ++j) p[j] += diff[j];
      }
    }

    std::vector<double> finish_args;
    finish_args.reserve(1 + group.size());
    finish_args.push_back(reduce_seconds);
    for (int w : group) finish_args.push_back(static_cast<double>(w));
    Emit(reduce_seconds, core::kPlainEvent,
         {kGroupFinish, std::move(finish_args)});
  }

  void FinishGroupMember(int w, double /*reduce_seconds*/) {
    const double wall =
        harness_.sim().Now() - iteration_start_[static_cast<size_t>(w)];
    harness_.AccountIteration(w, harness_.EffectiveComputeSeconds(w), wall);
    StartIteration(w);
  }

  ExperimentHarness harness_;
  int group_size_;
  std::vector<int> ready_;
  std::vector<double> iteration_start_;
  int active_groups_ = 0;
  // Waiting-room entry time per worker (-1 while not waiting): the episode
  // identity for kReadyTimeout deadlines.
  std::vector<double> ready_since_;
  // Per-worker "iteration chain is parked" flag (see the fault listener).
  std::vector<uint8_t> parked_;
  net::EventRebuilder builder_;
};

}  // namespace

StatusOr<core::RunResult> PragueAlgorithm::Run(
    const core::ExperimentConfig& config) const {
  PragueEngine engine(config, group_size_);
  return engine.Run();
}

}  // namespace netmax::algos
