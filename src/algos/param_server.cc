#include "algos/param_server.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/checkpoint.h"
#include "linalg/vector_ops.h"
#include "net/fault_schedule.h"

namespace netmax::algos {
namespace {

using core::ExperimentConfig;
using core::ExperimentHarness;
using core::RunResult;

// Local (same machine/region) worker <-> PS link for the co-located worker 0.
const net::LinkClass kPsLocalLink{/*latency_seconds=*/0.010,
                                  /*bandwidth_bytes_per_second=*/2.0e9};

// Shared PS state: the global model, its optimizer, and the serialized NIC.
class PsState {
 public:
  // `use_momentum` is false for the asynchronous server: interleaved pushes
  // from M workers through one shared velocity amplify every gradient ~M-fold
  // and diverge, so async parameter servers apply plain SGD steps (the
  // classic Hogwild-style update); the synchronous server sees one sequential
  // stream of averaged gradients and keeps momentum.
  PsState(ExperimentHarness& harness, const ExperimentConfig& config,
          bool use_momentum) {
    harness_ = &harness;
    model_ = harness.worker(0).model->Clone();
    ml::SgdOptions options;
    options.learning_rate = config.learning_rate;
    options.momentum = use_momentum ? config.momentum : 0.0;
    options.weight_decay = config.weight_decay;
    optimizer_ = std::make_unique<ml::SgdOptimizer>(model_->num_parameters(),
                                                    options);
  }

  // Transfer seconds for `bytes` between worker w and the PS at time `now`
  // (either direction; the paper's links are symmetric).
  double LinkSeconds(int w, double now, int64_t bytes) const {
    if (w == 0) return kPsLocalLink.TransferSeconds(bytes);
    return harness_->links().TransferSeconds(0, w, now, bytes);
  }

  // Reserves the PS NIC from max(now, free) for `duration`; returns the
  // transfer's completion time.
  double ReserveNic(double now, double duration) {
    const double start = std::max(now, nic_free_);
    nic_free_ = start + duration;
    return nic_free_;
  }

  ml::Model& model() { return *model_; }
  ml::SgdOptimizer& optimizer() { return *optimizer_; }

  void SaveState(Serializer& out) const {
    out.WriteDoubleVec(model_->parameters());
    optimizer_->SaveState(out);
    out.WriteDouble(nic_free_);
  }

  Status RestoreState(Deserializer& in) {
    NETMAX_RETURN_IF_ERROR(in.ReadDoubleSpan(model_->parameters()));
    NETMAX_RETURN_IF_ERROR(optimizer_->RestoreState(in));
    NETMAX_ASSIGN_OR_RETURN(nic_free_, in.ReadDouble());
    return Status::Ok();
  }

 private:
  ExperimentHarness* harness_ = nullptr;
  std::unique_ptr<ml::Model> model_;
  std::unique_ptr<ml::SgdOptimizer> optimizer_;
  double nic_free_ = 0.0;
};

class PsSyncEngine {
 public:
  explicit PsSyncEngine(const ExperimentConfig& config)
      : harness_(config, "PS-syn") {}

  StatusOr<RunResult> Run() {
    NETMAX_RETURN_IF_ERROR(harness_.Init());
    ps_ = std::make_unique<PsState>(harness_, harness_.config(),
                                    /*use_momentum=*/true);
    builder_ = [this](const net::SavedEvent& event) {
      return BuildEvent(event);
    };
    if (harness_.restore_requested()) {
      NETMAX_RETURN_IF_ERROR(harness_.Restore(
          [this](Deserializer& in) {
            NETMAX_RETURN_IF_ERROR(ps_->RestoreState(in));
            return RestoreRoundState(in);
          },
          builder_));
    } else {
      Emit(0.0, core::kPlainEvent, {kRunRound, {}});
    }
    harness_.ArmCheckpoint([this](Serializer& out) {
      ps_->SaveState(out);
      out.WriteIntVec(members_);
      out.WriteInt(pending_);
      out.WriteBool(round_waiting_);
      return Status::Ok();
    });
    // No fault listener needed: the round loop re-probes on its own while a
    // worker is dead (kWait) or runs with the live membership, so rejoining
    // workers are picked up by the next kRunRound.
    harness_.sim().RunUntilIdle();
    NETMAX_RETURN_IF_ERROR(harness_.checkpoint_status());
    return harness_.Finalize();
  }

 private:
  // Checkpoint reification tags (core/checkpoint.h).
  enum Tag : int64_t {
    kRoundCompute = 0,  // compute event: one worker's gradient, args []
    kRunRound = 1,      // plain event: start the next round, args []
  };

  void Emit(double delay, int worker_key, net::EventPayload payload) {
    core::ScheduleReified(harness_.sim(), delay, worker_key,
                          std::move(payload), builder_);
  }

  StatusOr<net::RebuiltEvent> BuildEvent(const net::SavedEvent& event) {
    const std::vector<double>& args = event.payload.args;
    net::RebuiltEvent rebuilt;
    switch (event.payload.tag) {
      case kRoundCompute: {
        const int w = event.worker_key;
        const int n = harness_.num_workers();
        if (w < 0 || w >= n || !args.empty()) break;
        rebuilt.compute = [this, w] { return harness_.EvalBatchGradient(w); };
        rebuilt.commit = [this, w](double loss) {
          harness_.CommitBatchStats(w, loss);
          // Commits run in membership order; the last one exchanges with the
          // PS — at worker n-1's commit on full membership, exactly like the
          // fixed-membership rounds did.
          if (--pending_ == 0) ExchangeWithServer();
        };
        return rebuilt;
      }
      case kRunRound: {
        if (event.worker_key >= 0 || !args.empty()) break;
        rebuilt.plain = [this] { RunRound(); };
        return rebuilt;
      }
      default:
        break;
    }
    return InvalidArgumentError("malformed PS-syn event (tag " +
                                std::to_string(event.payload.tag) + ")");
  }

  void RunRound() {
    if (harness_.AllDone()) return;
    const int n = harness_.num_workers();
    const core::ExperimentConfig& config = harness_.config();

    // Round membership under faults — same scheme as the allreduce engine:
    // kWait blocks the round on any dead worker (re-probing at the poll
    // cadence), kTimeoutAndContinue runs with the live members and drops
    // stragglers slower than the fastest member by more than the timeout.
    members_.clear();
    if (config.peer_policy == core::PeerPolicy::kWait) {
      for (int w = 0; w < n; ++w) {
        if (!harness_.WorkerAlive(w)) {
          if (!round_waiting_) {
            round_waiting_ = true;
            harness_.CountDegradedRound();
          }
          Emit(config.peer_poll_seconds, core::kPlainEvent, {kRunRound, {}});
          return;
        }
      }
      round_waiting_ = false;
      for (int w = 0; w < n; ++w) members_.push_back(w);
    } else {
      double min_compute = 0.0;
      bool has_alive = false;
      for (int w = 0; w < n; ++w) {
        if (!harness_.WorkerAlive(w)) continue;
        const double compute = harness_.EffectiveComputeSeconds(w);
        min_compute = has_alive ? std::min(min_compute, compute) : compute;
        has_alive = true;
      }
      bool degraded = false;
      for (int w = 0; w < n; ++w) {
        if (!harness_.WorkerAlive(w)) {
          degraded = true;
          continue;
        }
        if (harness_.EffectiveComputeSeconds(w) >
            min_compute + config.peer_timeout_seconds) {
          degraded = true;
          harness_.CountPeerTimeout();
          continue;
        }
        members_.push_back(w);
      }
      if (members_.empty()) {
        Emit(config.peer_poll_seconds, core::kPlainEvent, {kRunRound, {}});
        return;
      }
      if (degraded) harness_.CountDegradedRound();
    }

    // Phase 1: parallel gradient computation on each member's own replica,
    // as one compute event per member at the current time so the pool runs
    // the round concurrently; the last commit performs the PS exchange.
    pending_ = static_cast<int>(members_.size());
    for (int w : members_) {
      harness_.SampleBatch(w);
      Emit(0.0, w, {kRoundCompute, {}});
    }
  }

  void ExchangeWithServer() {
    const int g = static_cast<int>(members_.size());
    const double t0 = harness_.sim().Now();
    double max_compute = 0.0;
    std::vector<double> computes(static_cast<size_t>(g));
    for (int k = 0; k < g; ++k) {
      computes[static_cast<size_t>(k)] =
          harness_.EffectiveComputeSeconds(members_[static_cast<size_t>(k)]);
      max_compute = std::max(max_compute, computes[static_cast<size_t>(k)]);
    }

    // One communication round per PS exchange: every member's upload and
    // download leg carries the same encoding. With compression off the
    // payload equals the dense baseline, so the transfer arithmetic below is
    // unchanged and bytes_saved stays zero.
    int64_t round = 0;
    if (harness_.compression_enabled()) {
      round = harness_.NextCommRound(members_.front());
    }
    const int64_t payload_bytes = harness_.MessagePayloadBytes(round);
    const int64_t baseline_bytes =
        harness_.config().profile.message_bytes();
    harness_.AccountWire(2 * g, 2 * g * payload_bytes,
                         2 * g * baseline_bytes);

    // Phase 2: uploads, serialized at the PS NIC (central congestion).
    double clock = t0;
    for (int k = 0; k < g; ++k) {
      const int w = members_[static_cast<size_t>(k)];
      const double ready = t0 + computes[static_cast<size_t>(k)];
      const double start = std::max(ready, clock);
      clock = start + ps_->LinkSeconds(w, start, payload_bytes);
    }

    // PS applies the averaged gradient once.
    if (harness_.compression_enabled()) {
      // Each member uploaded C(g_w): the PS averages the decoded gradients.
      for (int w : members_) {
        harness_.ApplyCompression(w, round, harness_.worker(w).gradient);
      }
    }
    std::vector<double> mean_gradient(harness_.worker(0).gradient.size(), 0.0);
    for (int w : members_) {
      linalg::AddInPlace(harness_.worker(w).gradient, mean_gradient);
    }
    linalg::Scale(1.0 / static_cast<double>(g), mean_gradient);
    ps_->optimizer().set_learning_rate(
        harness_.worker(0).optimizer->learning_rate());
    ps_->optimizer().Step(ps_->model().parameters(), mean_gradient);

    // Phase 3: downloads, serialized again; the round ends when the last
    // member holds the fresh model (dead/dropped workers keep their stale
    // replicas until they rejoin a round).
    for (int w : members_) {
      clock += ps_->LinkSeconds(w, clock, payload_bytes);
    }
    const auto fresh = ps_->model().parameters();
    for (int k = 0; k < g; ++k) {
      const int w = members_[static_cast<size_t>(k)];
      // Round-structured like allreduce: nothing is pending, but the
      // download writes every replica, so notify per the contract (a later
      // backend that pre-dispatches the next round would depend on it).
      harness_.sim().NotifyStateWrite(w);
      auto params = harness_.worker(w).model->parameters();
      if (!harness_.compression_enabled()) {
        std::copy(fresh.begin(), fresh.end(), params.begin());
      } else {
        // The download carries C(fresh - x_w): the replica lands exactly on
        // the PS model where the encoding is lossless and moves by the
        // decoded difference elsewhere.
        std::span<double> diff = harness_.CompressionScratch();
        for (size_t j = 0; j < params.size(); ++j) {
          diff[j] = fresh[j] - params[j];
        }
        harness_.ApplyCompression(w, round, diff);
        for (size_t j = 0; j < params.size(); ++j) params[j] += diff[j];
      }
      harness_.AccountIteration(w, computes[static_cast<size_t>(k)],
                                clock - t0);
    }
    core::ScheduleReifiedAt(harness_.sim(), clock, core::kPlainEvent,
                            {kRunRound, {}}, builder_);
  }

  Status RestoreRoundState(Deserializer& in) {
    NETMAX_RETURN_IF_ERROR(in.ReadIntVec(&members_));
    for (int w : members_) {
      if (w < 0 || w >= harness_.num_workers()) {
        return InvalidArgumentError("round member out of range");
      }
    }
    NETMAX_ASSIGN_OR_RETURN(pending_, in.ReadInt());
    if (pending_ < 0 || pending_ > static_cast<int>(members_.size())) {
      return InvalidArgumentError("pending commit count out of range");
    }
    NETMAX_ASSIGN_OR_RETURN(round_waiting_, in.ReadBool());
    return Status::Ok();
  }

  ExperimentHarness harness_;
  std::unique_ptr<PsState> ps_;
  // Current round membership, outstanding commit count, and the once-per-
  // blockage flag for the kWait degraded-round accounting.
  std::vector<int> members_;
  int pending_ = 0;
  bool round_waiting_ = false;
  net::EventRebuilder builder_;
};

class PsAsyncEngine {
 public:
  explicit PsAsyncEngine(const ExperimentConfig& config)
      : harness_(config, "PS-asyn") {}

  StatusOr<RunResult> Run() {
    NETMAX_RETURN_IF_ERROR(harness_.Init());
    ps_ = std::make_unique<PsState>(harness_, harness_.config(),
                                    /*use_momentum=*/false);
    parked_.assign(static_cast<size_t>(harness_.num_workers()), 0);
    builder_ = [this](const net::SavedEvent& event) {
      return BuildEvent(event);
    };
    if (harness_.restore_requested()) {
      NETMAX_RETURN_IF_ERROR(harness_.Restore(
          [this](Deserializer& in) {
            NETMAX_RETURN_IF_ERROR(ps_->RestoreState(in));
            for (size_t w = 0; w < parked_.size(); ++w) {
              NETMAX_ASSIGN_OR_RETURN(const bool parked, in.ReadBool());
              parked_[w] = parked ? 1 : 0;
            }
            return Status::Ok();
          },
          builder_));
    } else {
      for (int w = 0; w < harness_.num_workers(); ++w) StartIteration(w);
    }
    harness_.ArmCheckpoint([this](Serializer& out) {
      ps_->SaveState(out);
      for (const uint8_t parked : parked_) out.WriteBool(parked != 0);
      return Status::Ok();
    });
    // The PS itself never dies (worker faults only target workers); a
    // rejoining worker's chain restarts iff it parked. A worker that dies
    // mid round-trip finishes it — its NIC reservations already happened —
    // and parks at the download's StartIteration.
    harness_.set_fault_listener([this](const net::FaultEvent& fault) {
      if (fault.kind == net::FaultKind::kJoin &&
          parked_[static_cast<size_t>(fault.worker)] != 0) {
        StartIteration(fault.worker);
      }
    });
    harness_.sim().RunUntilIdle();
    NETMAX_RETURN_IF_ERROR(harness_.checkpoint_status());
    return harness_.Finalize();
  }

 private:
  // Checkpoint reification tags (core/checkpoint.h). An in-flight PS round
  // trip checkpoints as its pending upload/download events: the NIC
  // reservations already happened at commit time and live in PsState's
  // nic_free_, and the worker's gradient rides in the worker snapshot, so the
  // pending events only need (w, t0, compute) to replay exactly.
  enum Tag : int64_t {
    kCompute = 0,   // compute event: args [t0, compute_seconds]
    kUpload = 1,    // plain event: args [worker, round]
    kDownload = 2,  // plain event: args [worker, t0, compute_seconds, round]
  };

  void Emit(double delay, int worker_key, net::EventPayload payload) {
    core::ScheduleReified(harness_.sim(), delay, worker_key,
                          std::move(payload), builder_);
  }

  StatusOr<net::RebuiltEvent> BuildEvent(const net::SavedEvent& event) {
    const std::vector<double>& args = event.payload.args;
    const int n = harness_.num_workers();
    net::RebuiltEvent rebuilt;
    switch (event.payload.tag) {
      case kCompute: {
        const int w = event.worker_key;
        if (w < 0 || w >= n || args.size() != 2) break;
        const double t0 = args[0];
        const double compute = args[1];
        rebuilt.compute = [this, w] { return harness_.EvalBatchGradient(w); };
        rebuilt.commit = [this, w, t0, compute](double loss) {
          harness_.CommitBatchStats(w, loss);
          const double now = harness_.sim().Now();
          // One communication round per PS round trip, claimed here so the
          // NIC reservations below price the round's actual payload.
          int64_t round = 0;
          if (harness_.compression_enabled()) {
            round = harness_.NextCommRound(w);
          }
          const int64_t payload_bytes = harness_.MessagePayloadBytes(round);
          const int64_t baseline_bytes =
              harness_.config().profile.message_bytes();
          harness_.AccountWire(2, 2 * payload_bytes, 2 * baseline_bytes);
          // Upload, then download, both serialized on the PS NIC; the worker
          // blocks for the round trip (async only across workers).
          const double upload_done = ps_->ReserveNic(
              now, ps_->LinkSeconds(w, now, payload_bytes));
          const double download_done = ps_->ReserveNic(
              upload_done,
              ps_->LinkSeconds(w, upload_done, payload_bytes));
          core::ScheduleReifiedAt(
              harness_.sim(), upload_done, core::kPlainEvent,
              {kUpload,
               {static_cast<double>(w), static_cast<double>(round)}},
              builder_);
          core::ScheduleReifiedAt(
              harness_.sim(), download_done, core::kPlainEvent,
              {kDownload,
               {static_cast<double>(w), t0, compute,
                static_cast<double>(round)}},
              builder_);
        };
        return rebuilt;
      }
      case kUpload: {
        if (event.worker_key >= 0 || args.size() != 2) break;
        const int w = static_cast<int>(args[0]);
        const int64_t round = static_cast<int64_t>(args[1]);
        if (w < 0 || w >= n) break;
        rebuilt.plain = [this, w, round] {
          // Async SGD: apply this worker's gradient immediately. The PS
          // received C(g_w); the decode happens in place (the buffer is
          // rewritten by w's next compute anyway).
          if (harness_.compression_enabled()) {
            harness_.ApplyCompression(w, round, harness_.worker(w).gradient);
          }
          ps_->optimizer().set_learning_rate(
              harness_.worker(w).optimizer->learning_rate());
          ps_->optimizer().Step(ps_->model().parameters(),
                                harness_.worker(w).gradient);
        };
        return rebuilt;
      }
      case kDownload: {
        if (event.worker_key >= 0 || args.size() != 4) break;
        const int w = static_cast<int>(args[0]);
        if (w < 0 || w >= n) break;
        const double t0 = args[1];
        const double compute = args[2];
        const int64_t round = static_cast<int64_t>(args[3]);
        rebuilt.plain = [this, w, t0, compute, round] {
          // The download overwrites w's replica. w's own next compute is
          // only scheduled below, but OTHER workers' in-flight window
          // evaluations never read w's parameters, so notifying w alone
          // satisfies the write contract under every backend.
          harness_.sim().NotifyStateWrite(w);
          const auto fresh = ps_->model().parameters();
          auto params = harness_.worker(w).model->parameters();
          if (!harness_.compression_enabled()) {
            std::copy(fresh.begin(), fresh.end(), params.begin());
          } else {
            // C(fresh - x_w): on-model where lossless, decoded elsewhere.
            std::span<double> diff = harness_.CompressionScratch();
            for (size_t j = 0; j < params.size(); ++j) {
              diff[j] = fresh[j] - params[j];
            }
            harness_.ApplyCompression(w, round, diff);
            for (size_t j = 0; j < params.size(); ++j) params[j] += diff[j];
          }
          harness_.AccountIteration(w, compute, harness_.sim().Now() - t0);
          StartIteration(w);
        };
        return rebuilt;
      }
      default:
        break;
    }
    return InvalidArgumentError("malformed PS-asyn event (tag " +
                                std::to_string(event.payload.tag) + ")");
  }

  void StartIteration(int w) {
    if (harness_.WorkerDone(w)) {
      parked_[static_cast<size_t>(w)] = 1;
      return;
    }
    parked_[static_cast<size_t>(w)] = 0;
    const double t0 = harness_.sim().Now();
    const double compute = harness_.EffectiveComputeSeconds(w);
    // Gradient at the worker's (possibly stale) parameters: pure compute
    // half; the NIC reservation and PS interaction commit in event order.
    harness_.SampleBatch(w);
    Emit(compute, w, {kCompute, {t0, compute}});
  }

  ExperimentHarness harness_;
  std::unique_ptr<PsState> ps_;
  // Per-worker "iteration chain is parked" flag (see the join listener).
  std::vector<uint8_t> parked_;
  net::EventRebuilder builder_;
};

}  // namespace

StatusOr<core::RunResult> PsSyncAlgorithm::Run(
    const core::ExperimentConfig& config) const {
  PsSyncEngine engine(config);
  return engine.Run();
}

StatusOr<core::RunResult> PsAsyncAlgorithm::Run(
    const core::ExperimentConfig& config) const {
  PsAsyncEngine engine(config);
  return engine.Run();
}

}  // namespace netmax::algos
