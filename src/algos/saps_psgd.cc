#include "algos/saps_psgd.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/checkpoint.h"
#include "net/fault_schedule.h"

namespace netmax::algos {

net::Topology BuildFastLinkSubgraph(const linalg::Matrix& cost) {
  const int n = cost.rows();
  NETMAX_CHECK_EQ(cost.rows(), cost.cols());
  net::Topology subgraph(n);
  if (n == 1) return subgraph;

  // Prim's MST on the measured cost.
  std::vector<bool> in_tree(static_cast<size_t>(n), false);
  std::vector<double> best_cost(static_cast<size_t>(n),
                                std::numeric_limits<double>::infinity());
  std::vector<int> best_edge(static_cast<size_t>(n), -1);
  in_tree[0] = true;
  for (int v = 1; v < n; ++v) {
    best_cost[static_cast<size_t>(v)] = cost(0, v);
    best_edge[static_cast<size_t>(v)] = 0;
  }
  for (int step = 1; step < n; ++step) {
    int pick = -1;
    for (int v = 0; v < n; ++v) {
      if (in_tree[static_cast<size_t>(v)]) continue;
      if (pick < 0 ||
          best_cost[static_cast<size_t>(v)] <
              best_cost[static_cast<size_t>(pick)]) {
        pick = v;
      }
    }
    NETMAX_CHECK_GE(pick, 0);
    in_tree[static_cast<size_t>(pick)] = true;
    subgraph.AddEdge(pick, best_edge[static_cast<size_t>(pick)]);
    for (int v = 0; v < n; ++v) {
      if (!in_tree[static_cast<size_t>(v)] &&
          cost(pick, v) < best_cost[static_cast<size_t>(v)]) {
        best_cost[static_cast<size_t>(v)] = cost(pick, v);
        best_edge[static_cast<size_t>(v)] = pick;
      }
    }
  }
  // Redundancy: add each node's cheapest non-tree edge — but only if it is
  // still a fast link (within a small factor of the node's cheapest existing
  // edge); SAPS keeps *initially high-speed* links only, so an expensive
  // redundant edge defeats the purpose.
  constexpr double kRedundancyCostFactor = 3.0;
  for (int v = 0; v < n; ++v) {
    double cheapest_existing = std::numeric_limits<double>::infinity();
    for (int u : subgraph.Neighbors(v)) {
      cheapest_existing = std::min(cheapest_existing, cost(v, u));
    }
    int best = -1;
    for (int u = 0; u < n; ++u) {
      if (u == v || subgraph.AreNeighbors(u, v)) continue;
      if (best < 0 || cost(v, u) < cost(v, best)) best = u;
    }
    if (best >= 0 &&
        cost(v, best) <= kRedundancyCostFactor * cheapest_existing) {
      subgraph.AddEdge(v, best);
    }
  }
  return subgraph;
}

namespace {

using core::ExperimentConfig;
using core::ExperimentHarness;
using core::RunResult;

class SapsEngine {
 public:
  explicit SapsEngine(const ExperimentConfig& config)
      : harness_(config, "SAPS-PSGD") {}

  StatusOr<RunResult> Run() {
    NETMAX_RETURN_IF_ERROR(harness_.Init());
    const int n = harness_.num_workers();
    // One-shot link measurement at t = 0 (the paper's "initially high-speed
    // links"); the subgraph never changes afterwards.
    linalg::Matrix cost(n, n, 0.0);
    for (int a = 0; a < n; ++a) {
      for (int b = 0; b < n; ++b) {
        if (a != b) cost(a, b) = harness_.PullSeconds(b, a);
      }
    }
    subgraph_ = std::make_unique<net::Topology>(BuildFastLinkSubgraph(cost));
    NETMAX_CHECK(subgraph_->IsConnected());
    parked_.assign(static_cast<size_t>(n), 0);
    builder_ = [this](const net::SavedEvent& event) {
      return BuildEvent(event);
    };
    if (harness_.restore_requested()) {
      // The subgraph above is rebuilt deterministically from the t = 0 link
      // costs, so the queue, worker state, and parked flags are the only
      // mutable state.
      NETMAX_RETURN_IF_ERROR(harness_.Restore(
          [this](Deserializer& in) {
            for (size_t w = 0; w < parked_.size(); ++w) {
              NETMAX_ASSIGN_OR_RETURN(const bool parked, in.ReadBool());
              parked_[w] = parked ? 1 : 0;
            }
            return Status::Ok();
          },
          builder_));
    } else {
      for (int w = 0; w < n; ++w) StartIteration(w);
    }
    harness_.ArmCheckpoint([this](Serializer& out) {
      for (const uint8_t parked : parked_) out.WriteBool(parked != 0);
      return Status::Ok();
    });
    // Restart a rejoining worker's iteration chain iff it parked.
    harness_.set_fault_listener([this](const net::FaultEvent& fault) {
      if (fault.kind == net::FaultKind::kJoin &&
          parked_[static_cast<size_t>(fault.worker)] != 0) {
        StartIteration(fault.worker);
      }
    });
    harness_.sim().RunUntilIdle();
    NETMAX_RETURN_IF_ERROR(harness_.checkpoint_status());
    return harness_.Finalize();
  }

 private:
  // Checkpoint reification tags (core/checkpoint.h).
  enum Tag : int64_t {
    kIterate = 0,  // compute event: args [peer, compute_secs, wall_secs, round]
    kPeerWait = 1,     // plain event: args [worker, peer, waited_secs]
    kPeerTimeout = 2,  // plain event: args [worker, peer]
    kLocalStep = 3,    // compute event: args [compute_secs, wall_secs]
  };

  void Emit(double delay, int worker_key, net::EventPayload payload) {
    core::ScheduleReified(harness_.sim(), delay, worker_key,
                          std::move(payload), builder_);
  }

  StatusOr<net::RebuiltEvent> BuildEvent(const net::SavedEvent& event) {
    const std::vector<double>& args = event.payload.args;
    const int n = harness_.num_workers();
    net::RebuiltEvent rebuilt;
    switch (event.payload.tag) {
      case kIterate: {
        const int w = event.worker_key;
        if (w < 0 || w >= n || args.size() != 4) break;
        const int m = static_cast<int>(args[0]);
        const double compute = args[1];
        const double wall = args[2];
        const int64_t round = static_cast<int64_t>(args[3]);
        if (m < 0 || m >= n || m == w) break;
        rebuilt.compute = [this, w] { return harness_.EvalBatchGradient(w); };
        rebuilt.commit = [this, w, m, compute, wall, round](double loss) {
          CompleteIteration(w, m, compute, wall, round, loss);
        };
        return rebuilt;
      }
      case kPeerWait: {
        if (event.worker_key >= 0 || args.size() != 3) break;
        const int w = static_cast<int>(args[0]);
        const int m = static_cast<int>(args[1]);
        const double waited = args[2];
        if (w < 0 || w >= n || m < 0 || m >= n || m == w) break;
        rebuilt.plain = [this, w, m, waited] { PeerWaitTick(w, m, waited); };
        return rebuilt;
      }
      case kPeerTimeout: {
        if (event.worker_key >= 0 || args.size() != 2) break;
        const int w = static_cast<int>(args[0]);
        const int m = static_cast<int>(args[1]);
        if (w < 0 || w >= n || m < 0 || m >= n || m == w) break;
        rebuilt.plain = [this, w, m] { PeerTimeoutExpired(w, m); };
        return rebuilt;
      }
      case kLocalStep: {
        const int w = event.worker_key;
        if (w < 0 || w >= n || args.size() != 2) break;
        const double compute = args[0];
        const double wall = args[1];
        rebuilt.compute = [this, w] { return harness_.EvalBatchGradient(w); };
        rebuilt.commit = [this, w, compute, wall](double loss) {
          harness_.CommitBatchStats(w, loss);
          harness_.ApplyStoredGradient(w);
          harness_.AccountIteration(w, compute, wall);
          StartIteration(w);
        };
        return rebuilt;
      }
      default:
        break;
    }
    return InvalidArgumentError("malformed SAPS-PSGD event (tag " +
                                std::to_string(event.payload.tag) + ")");
  }

  void CompleteIteration(int w, int m, double compute, double wall,
                         int64_t round, double loss) {
    core::WorkerRuntime& wr = harness_.worker(w);
    harness_.CommitBatchStats(w, loss);
    if (!harness_.WorkerAlive(m)) {
      // The peer died while this pull was in flight: keep the gradient
      // progress, skip the averaging leg.
      harness_.CountDegradedRound();
      harness_.ApplyStoredGradient(w);
      harness_.AccountIteration(w, compute, wall);
      StartIteration(w);
      return;
    }
    // One-sided averaging writes only the puller's parameters (m is
    // read-only here, and compute halves only read their own worker's
    // parameters, so no notify is needed for m under any backend).
    harness_.sim().NotifyStateWrite(w);
    auto x_i = wr.model->parameters();
    const auto x_m = harness_.worker(m).model->parameters();
    if (!harness_.compression_enabled()) {
      for (size_t j = 0; j < x_i.size(); ++j) {
        x_i[j] = 0.5 * (x_i[j] + x_m[j]);
      }
    } else {
      // One-sided compressed pull: the puller moves halfway along the decoded
      // difference C(x_m - x_i); m stays read-only like the exact path.
      std::span<double> diff = harness_.CompressionScratch();
      for (size_t j = 0; j < x_i.size(); ++j) diff[j] = x_m[j] - x_i[j];
      harness_.ApplyCompression(w, round, diff);
      for (size_t j = 0; j < x_i.size(); ++j) x_i[j] += 0.5 * diff[j];
    }
    harness_.ApplyStoredGradient(w);
    harness_.AccountIteration(w, compute, wall);
    StartIteration(w);
  }

  void StartIteration(int w) {
    if (harness_.WorkerDone(w)) {
      parked_[static_cast<size_t>(w)] = 1;
      return;
    }
    parked_[static_cast<size_t>(w)] = 0;
    core::WorkerRuntime& worker = harness_.worker(w);
    const auto& neighbors = subgraph_->Neighbors(w);
    const int m = neighbors[static_cast<size_t>(worker.rng.UniformInt(
        0, static_cast<int64_t>(neighbors.size()) - 1))];
    if (!harness_.WorkerAlive(m)) {
      // The drawn neighbor is dead: hold this iteration per the peer policy;
      // the batch is sampled only when the pull actually goes out.
      BeginPeerWait(w, m);
      return;
    }
    const double compute = harness_.EffectiveComputeSeconds(w);
    const int64_t round = harness_.NextCommRound(w);
    const double transfer = harness_.SendSeconds(m, w, round);
    harness_.SampleBatch(w);
    const double wall = std::max(compute, transfer);
    Emit(wall, w,
         {kIterate,
          {static_cast<double>(m), compute, wall,
           static_cast<double>(round)}});
  }

  // Dead-neighbor handling (same per-episode machinery as AD-PSGD): kWait
  // re-probes at the poll cadence, kTimeoutAndContinue degrades to a local
  // step after one deadline.
  void BeginPeerWait(int w, int m) {
    harness_.CountDegradedRound();
    const core::ExperimentConfig& config = harness_.config();
    if (config.peer_policy == core::PeerPolicy::kTimeoutAndContinue) {
      Emit(config.peer_timeout_seconds, core::kPlainEvent,
           {kPeerTimeout, {static_cast<double>(w), static_cast<double>(m)}});
    } else {
      Emit(config.peer_poll_seconds, core::kPlainEvent,
           {kPeerWait,
            {static_cast<double>(w), static_cast<double>(m),
             config.peer_poll_seconds}});
    }
  }

  void PeerWaitTick(int w, int m, double waited) {
    if (harness_.WorkerDone(w)) {
      parked_[static_cast<size_t>(w)] = 1;
      return;
    }
    if (harness_.WorkerAlive(m)) {
      ResumePull(w, m, waited);
      return;
    }
    Emit(harness_.config().peer_poll_seconds, core::kPlainEvent,
         {kPeerWait,
          {static_cast<double>(w), static_cast<double>(m),
           waited + harness_.config().peer_poll_seconds}});
  }

  void PeerTimeoutExpired(int w, int m) {
    if (harness_.WorkerDone(w)) {
      parked_[static_cast<size_t>(w)] = 1;
      return;
    }
    if (harness_.WorkerAlive(m)) {
      ResumePull(w, m, harness_.config().peer_timeout_seconds);
      return;
    }
    harness_.CountPeerTimeout();
    const double compute = harness_.EffectiveComputeSeconds(w);
    harness_.SampleBatch(w);
    Emit(compute, w,
         {kLocalStep,
          {compute, harness_.config().peer_timeout_seconds + compute}});
  }

  void ResumePull(int w, int m, double waited) {
    const double compute = harness_.EffectiveComputeSeconds(w);
    const int64_t round = harness_.NextCommRound(w);
    const double transfer = harness_.SendSeconds(m, w, round);
    harness_.SampleBatch(w);
    const double wall = std::max(compute, transfer);
    Emit(wall, w,
         {kIterate,
          {static_cast<double>(m), compute, waited + wall,
           static_cast<double>(round)}});
  }

  ExperimentHarness harness_;
  std::unique_ptr<net::Topology> subgraph_;
  // Per-worker "iteration chain is parked" flag (see the join listener).
  std::vector<uint8_t> parked_;
  net::EventRebuilder builder_;
};

}  // namespace

StatusOr<core::RunResult> SapsPsgdAlgorithm::Run(
    const core::ExperimentConfig& config) const {
  SapsEngine engine(config);
  return engine.Run();
}

}  // namespace netmax::algos
