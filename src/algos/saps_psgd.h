#ifndef NETMAX_ALGOS_SAPS_PSGD_H_
#define NETMAX_ALGOS_SAPS_PSGD_H_

// SAPS-PSGD-style baseline (paper reference [15]): measure link speeds once
// at startup, keep only the initially fast links — a minimum-spanning tree on
// measured transfer time plus each node's fastest extra edge — and then run
// AD-PSGD-style uniform gossip restricted to that *static* subgraph for the
// whole training run. On a static network this avoids slow links; on the
// paper's dynamic network an initially fast link may later be slowed 2x-100x,
// and SAPS keeps using it (the Fig. 2 failure mode motivating NetMax).

#include "core/experiment.h"

namespace netmax::algos {

class SapsPsgdAlgorithm : public core::TrainingAlgorithm {
 public:
  std::string name() const override { return "SAPS-PSGD"; }
  StatusOr<core::RunResult> Run(
      const core::ExperimentConfig& config) const override;
};

// Builds the static fast-link subgraph used by SAPS: MST under `cost` plus
// each node's cheapest non-tree edge. Exposed for tests.
net::Topology BuildFastLinkSubgraph(const linalg::Matrix& cost);

}  // namespace netmax::algos

#endif  // NETMAX_ALGOS_SAPS_PSGD_H_
