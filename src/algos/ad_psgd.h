#ifndef NETMAX_ALGOS_AD_PSGD_H_
#define NETMAX_ALGOS_AD_PSGD_H_

// AD-PSGD baseline (paper reference [11]) and its Network-Monitor extension
// (paper Section III-D / Fig. 15).
//
// AD-PSGD workers iterate asynchronously: pick a neighbor uniformly at
// random, average parameters x_i <- (x_i + x_m)/2, and apply the local
// gradient computed concurrently with the pull. Because neighbor selection is
// uniform, slow links are used as often as fast ones — the communication
// inefficiency NetMax attacks.
//
// AdPsgdWithMonitorAlgorithm retrofits NetMax's monitor: every Ts the policy
// generator (in averaging mode, Section III-D) re-weights the selection
// probabilities from measured iteration times, while the averaging weight
// stays fixed at 1/2 — matching the paper's observation that this variant
// trains faster than plain AD-PSGD but converges per-epoch slightly slower
// than NetMax (which also adapts the pull weight).

#include "core/experiment.h"

namespace netmax::algos {

class AdPsgdAlgorithm : public core::TrainingAlgorithm {
 public:
  std::string name() const override { return "AD-PSGD"; }
  StatusOr<core::RunResult> Run(
      const core::ExperimentConfig& config) const override;
};

class AdPsgdWithMonitorAlgorithm : public core::TrainingAlgorithm {
 public:
  std::string name() const override { return "AD-PSGD+Monitor"; }
  StatusOr<core::RunResult> Run(
      const core::ExperimentConfig& config) const override;
};

}  // namespace netmax::algos

#endif  // NETMAX_ALGOS_AD_PSGD_H_
