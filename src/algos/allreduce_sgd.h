#ifndef NETMAX_ALGOS_ALLREDUCE_SGD_H_
#define NETMAX_ALGOS_ALLREDUCE_SGD_H_

// Allreduce-SGD baseline (paper reference [8]): fully synchronous data
// parallelism. Every round all workers compute a minibatch gradient in
// parallel, average the gradients with a ring allreduce (2(M-1) steps, each
// moving 1/M of the model over every ring link), and apply the same averaged
// update — so all replicas stay bit-identical. The round is paced by the
// slowest compute AND the slowest ring link, which is exactly why it suffers
// on heterogeneous networks (Fig. 5/8 of the paper).

#include "core/experiment.h"

namespace netmax::algos {

class AllreduceSgdAlgorithm : public core::TrainingAlgorithm {
 public:
  std::string name() const override { return "Allreduce"; }
  StatusOr<core::RunResult> Run(
      const core::ExperimentConfig& config) const override;
};

}  // namespace netmax::algos

#endif  // NETMAX_ALGOS_ALLREDUCE_SGD_H_
