#include "algos/registry.h"

#include "algos/ad_psgd.h"
#include "algos/allreduce_sgd.h"
#include "algos/gossip_sgd.h"
#include "algos/param_server.h"
#include "algos/prague.h"
#include "algos/saps_psgd.h"
#include "core/netmax_engine.h"

namespace netmax::algos {

StatusOr<std::unique_ptr<core::TrainingAlgorithm>> MakeAlgorithm(
    const std::string& name) {
  if (name == "netmax") return {std::make_unique<core::NetMaxAlgorithm>()};
  if (name == "adpsgd") return {std::make_unique<AdPsgdAlgorithm>()};
  if (name == "allreduce") return {std::make_unique<AllreduceSgdAlgorithm>()};
  if (name == "prague") return {std::make_unique<PragueAlgorithm>()};
  if (name == "gossip") return {std::make_unique<GossipSgdAlgorithm>()};
  if (name == "saps") return {std::make_unique<SapsPsgdAlgorithm>()};
  if (name == "ps-sync") return {std::make_unique<PsSyncAlgorithm>()};
  if (name == "ps-async") return {std::make_unique<PsAsyncAlgorithm>()};
  if (name == "adpsgd+monitor") {
    return {std::make_unique<AdPsgdWithMonitorAlgorithm>()};
  }
  return NotFoundError("no algorithm named '" + name + "'");
}

std::vector<std::string> AlgorithmNames() {
  return {"netmax", "adpsgd",  "allreduce", "prague",         "gossip",
          "saps",   "ps-sync", "ps-async",  "adpsgd+monitor"};
}

std::vector<std::string> PaperComparisonAlgorithms() {
  return {"prague", "allreduce", "adpsgd", "netmax"};
}

}  // namespace netmax::algos
