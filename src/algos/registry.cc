#include "algos/registry.h"

#include <mutex>
#include <unordered_map>
#include <utility>

#include "algos/ad_psgd.h"
#include "algos/allreduce_sgd.h"
#include "algos/gossip_sgd.h"
#include "algos/param_server.h"
#include "algos/prague.h"
#include "algos/saps_psgd.h"
#include "core/netmax_engine.h"

namespace netmax::algos {
namespace {

class Registry {
 public:
  static Registry& Get() {
    static Registry* instance = new Registry();
    return *instance;
  }

  Status Register(const std::string& name, AlgorithmFactory factory) {
    if (name.empty()) {
      return InvalidArgumentError("algorithm name must be non-empty");
    }
    if (factory == nullptr) {
      return InvalidArgumentError("null factory for algorithm '" + name + "'");
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (factories_.count(name) > 0) {
      return AlreadyExistsError("algorithm '" + name +
                                "' is already registered");
    }
    factories_.emplace(name, std::move(factory));
    names_.push_back(name);
    return Status::Ok();
  }

  StatusOr<std::unique_ptr<core::TrainingAlgorithm>> Make(
      const std::string& name) const {
    AlgorithmFactory factory;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = factories_.find(name);
      if (it == factories_.end()) {
        return NotFoundError("no algorithm named '" + name + "'");
      }
      factory = it->second;
    }
    auto algorithm = factory();
    if (algorithm == nullptr) {
      return InternalError("factory for algorithm '" + name +
                           "' returned null");
    }
    return {std::move(algorithm)};
  }

  std::vector<std::string> Names() const {
    std::lock_guard<std::mutex> lock(mu_);
    return names_;
  }

 private:
  Registry() {
    auto builtin = [this](const std::string& name, AlgorithmFactory factory) {
      NETMAX_CHECK_OK(Register(name, std::move(factory)));
    };
    builtin("netmax",
            [] { return std::make_unique<core::NetMaxAlgorithm>(); });
    builtin("adpsgd", [] { return std::make_unique<AdPsgdAlgorithm>(); });
    builtin("allreduce",
            [] { return std::make_unique<AllreduceSgdAlgorithm>(); });
    builtin("prague", [] { return std::make_unique<PragueAlgorithm>(); });
    builtin("gossip", [] { return std::make_unique<GossipSgdAlgorithm>(); });
    builtin("saps", [] { return std::make_unique<SapsPsgdAlgorithm>(); });
    builtin("ps-sync", [] { return std::make_unique<PsSyncAlgorithm>(); });
    builtin("ps-async", [] { return std::make_unique<PsAsyncAlgorithm>(); });
    builtin("adpsgd+monitor",
            [] { return std::make_unique<AdPsgdWithMonitorAlgorithm>(); });
  }

  mutable std::mutex mu_;
  std::unordered_map<std::string, AlgorithmFactory> factories_;
  std::vector<std::string> names_;  // registration order
};

}  // namespace

Status RegisterAlgorithm(const std::string& name, AlgorithmFactory factory) {
  return Registry::Get().Register(name, std::move(factory));
}

StatusOr<std::unique_ptr<core::TrainingAlgorithm>> MakeAlgorithm(
    const std::string& name) {
  return Registry::Get().Make(name);
}

std::vector<std::string> AlgorithmNames() { return Registry::Get().Names(); }

std::vector<std::string> PaperComparisonAlgorithms() {
  return {"prague", "allreduce", "adpsgd", "netmax"};
}

}  // namespace netmax::algos
