#include "linalg/matrix.h"

#include <cmath>

#include "linalg/blas.h"

namespace netmax::linalg {

Matrix::Matrix(int rows, int cols, double init)
    : rows_(rows), cols_(cols),
      data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), init) {
  NETMAX_CHECK_GE(rows, 0);
  NETMAX_CHECK_GE(cols, 0);
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = static_cast<int>(rows.size());
  cols_ = rows_ == 0 ? 0 : static_cast<int>(rows.begin()->size());
  data_.reserve(static_cast<size_t>(rows_) * cols_);
  for (const auto& row : rows) {
    NETMAX_CHECK_EQ(static_cast<int>(row.size()), cols_)
        << "ragged initializer";
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

std::span<double> Matrix::Row(int r) {
  NETMAX_CHECK(r >= 0 && r < rows_);
  return {data_.data() + static_cast<size_t>(r) * cols_,
          static_cast<size_t>(cols_)};
}

std::span<const double> Matrix::Row(int r) const {
  NETMAX_CHECK(r >= 0 && r < rows_);
  return {data_.data() + static_cast<size_t>(r) * cols_,
          static_cast<size_t>(cols_)};
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  NETMAX_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  Gemm(rows_, other.cols_, cols_, data_.data(), cols_, other.data_.data(),
       other.cols_, out.data_.data(), out.cols_);
  return out;
}

std::vector<double> Matrix::Apply(std::span<const double> x) const {
  NETMAX_CHECK_EQ(static_cast<int>(x.size()), cols_);
  std::vector<double> out(static_cast<size_t>(rows_), 0.0);
  Gemv(rows_, cols_, data_.data(), cols_, x.data(), nullptr, out.data());
  return out;
}

double Matrix::RowSum(int r) const {
  double acc = 0.0;
  for (double v : Row(r)) acc += v;
  return acc;
}

double Matrix::ColSum(int c) const {
  NETMAX_CHECK(c >= 0 && c < cols_);
  double acc = 0.0;
  for (int r = 0; r < rows_; ++r) acc += (*this)(r, c);
  return acc;
}

bool Matrix::IsSymmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (int r = 0; r < rows_; ++r) {
    for (int c = r + 1; c < cols_; ++c) {
      if (std::fabs((*this)(r, c) - (*this)(c, r)) > tol) return false;
    }
  }
  return true;
}

bool Matrix::IsNonNegative(double tol) const {
  for (double v : data_) {
    if (v < -tol) return false;
  }
  return true;
}

bool Matrix::IsDoublyStochastic(double tol) const {
  if (rows_ != cols_) return false;
  if (!IsSymmetric(tol)) return false;
  if (!IsNonNegative(tol)) return false;
  for (int r = 0; r < rows_; ++r) {
    if (std::fabs(RowSum(r) - 1.0) > tol) return false;
  }
  return true;
}

double Matrix::MaxAbsDiff(const Matrix& a, const Matrix& b) {
  NETMAX_CHECK_EQ(a.rows_, b.rows_);
  NETMAX_CHECK_EQ(a.cols_, b.cols_);
  double best = 0.0;
  for (size_t i = 0; i < a.data_.size(); ++i) {
    best = std::max(best, std::fabs(a.data_[i] - b.data_[i]));
  }
  return best;
}

}  // namespace netmax::linalg
