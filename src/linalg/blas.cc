#include "linalg/blas.h"

// Runtime ISA dispatch for the kernels whose inner loops are elementwise
// over contiguous memory (Gemm/GemmBias/GemmAtBAccumulate/AddRows): the
// binary stays portable (SSE2-baseline x86-64 "default" clone) and picks an
// AVX2 or AVX-512 clone on capable hardware. The wider clones only widen the
// vectorized loops (4/8 doubles) — FP contraction is disabled for this
// translation unit (see CMakeLists.txt: -ffp-contract=off), so no clone ever
// fuses a multiply-add: every element sees separate round-to-nearest multiply
// and add in the same order, and all clones produce bit-identical results.
// (Without that flag the AVX-512 clone WOULD contract to FMA and change
// low-order bits — verified empirically; do not drop the flag.) The
// dot-product-shaped kernels (GemmTransB, Gemv) stay single-version: their
// accumulator chains cannot widen without reassociating, and the wide codegen
// for them degrades into gather loads.
// ThreadSanitizer cannot execute ifunc resolvers (they run during dynamic
// relocation, before the TSan runtime initializes, and crash at startup), so
// multiversioning is disabled under TSan builds. No result changes: the
// baseline clone is bit-identical to the wide ones by construction.
#if defined(__SANITIZE_THREAD__)
#define NETMAX_KERNEL_ISA
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define NETMAX_KERNEL_ISA
#endif
#endif
#ifndef NETMAX_KERNEL_ISA
#if defined(__x86_64__) && defined(__has_attribute)
#if __has_attribute(target_clones)
#define NETMAX_KERNEL_ISA \
  __attribute__((target_clones("default", "avx2", "avx512f")))
#endif
#endif
#endif
#ifndef NETMAX_KERNEL_ISA
#define NETMAX_KERNEL_ISA
#endif

namespace netmax::linalg {
namespace {

// Cache-block size along the contraction dimension. Within a block each
// accumulator runs in registers; across blocks the partial sum round-trips
// through C, which preserves the exact left-to-right addition order (the
// running sum is reloaded, never split into reassociated partials).
constexpr int kBlockK = 1024;

}  // namespace

void GemmTransB(int m, int n, int k, const double* a, int lda, const double* b,
                int ldb, const double* bias, double* c, int ldc) {
  for (int k0 = 0; k0 < k || k0 == 0; k0 += kBlockK) {
    const int kc = (k - k0) < kBlockK ? (k - k0) : kBlockK;
    const bool first = k0 == 0;
    int i = 0;
    // 2x4 register tile: 8 independent accumulators, each a single
    // ascending-t chain, so every C element sums in textbook order.
    for (; i + 2 <= m; i += 2) {
      const double* a0 = a + static_cast<size_t>(i) * lda + k0;
      const double* a1 = a0 + lda;
      double* c0 = c + static_cast<size_t>(i) * ldc;
      double* c1 = c0 + ldc;
      int j = 0;
      for (; j + 4 <= n; j += 4) {
        const double* b0 = b + static_cast<size_t>(j) * ldb + k0;
        const double* b1 = b0 + ldb;
        const double* b2 = b1 + ldb;
        const double* b3 = b2 + ldb;
        double s00, s01, s02, s03, s10, s11, s12, s13;
        if (first) {
          const double z0 = bias ? bias[j] : 0.0;
          const double z1 = bias ? bias[j + 1] : 0.0;
          const double z2 = bias ? bias[j + 2] : 0.0;
          const double z3 = bias ? bias[j + 3] : 0.0;
          s00 = z0; s01 = z1; s02 = z2; s03 = z3;
          s10 = z0; s11 = z1; s12 = z2; s13 = z3;
        } else {
          s00 = c0[j]; s01 = c0[j + 1]; s02 = c0[j + 2]; s03 = c0[j + 3];
          s10 = c1[j]; s11 = c1[j + 1]; s12 = c1[j + 2]; s13 = c1[j + 3];
        }
        for (int t = 0; t < kc; ++t) {
          const double x0 = a0[t];
          const double x1 = a1[t];
          s00 += x0 * b0[t]; s01 += x0 * b1[t];
          s02 += x0 * b2[t]; s03 += x0 * b3[t];
          s10 += x1 * b0[t]; s11 += x1 * b1[t];
          s12 += x1 * b2[t]; s13 += x1 * b3[t];
        }
        c0[j] = s00; c0[j + 1] = s01; c0[j + 2] = s02; c0[j + 3] = s03;
        c1[j] = s10; c1[j + 1] = s11; c1[j + 2] = s12; c1[j + 3] = s13;
      }
      for (; j < n; ++j) {
        const double* bj = b + static_cast<size_t>(j) * ldb + k0;
        double s0 = first ? (bias ? bias[j] : 0.0) : c0[j];
        double s1 = first ? (bias ? bias[j] : 0.0) : c1[j];
        for (int t = 0; t < kc; ++t) {
          s0 += a0[t] * bj[t];
          s1 += a1[t] * bj[t];
        }
        c0[j] = s0;
        c1[j] = s1;
      }
    }
    for (; i < m; ++i) {
      const double* ai = a + static_cast<size_t>(i) * lda + k0;
      double* ci = c + static_cast<size_t>(i) * ldc;
      int j = 0;
      for (; j + 4 <= n; j += 4) {
        const double* b0 = b + static_cast<size_t>(j) * ldb + k0;
        const double* b1 = b0 + ldb;
        const double* b2 = b1 + ldb;
        const double* b3 = b2 + ldb;
        double s0, s1, s2, s3;
        if (first) {
          s0 = bias ? bias[j] : 0.0;
          s1 = bias ? bias[j + 1] : 0.0;
          s2 = bias ? bias[j + 2] : 0.0;
          s3 = bias ? bias[j + 3] : 0.0;
        } else {
          s0 = ci[j]; s1 = ci[j + 1]; s2 = ci[j + 2]; s3 = ci[j + 3];
        }
        for (int t = 0; t < kc; ++t) {
          const double x = ai[t];
          s0 += x * b0[t];
          s1 += x * b1[t];
          s2 += x * b2[t];
          s3 += x * b3[t];
        }
        ci[j] = s0; ci[j + 1] = s1; ci[j + 2] = s2; ci[j + 3] = s3;
      }
      for (; j < n; ++j) {
        const double* bj = b + static_cast<size_t>(j) * ldb + k0;
        double s = first ? (bias ? bias[j] : 0.0) : ci[j];
        for (int t = 0; t < kc; ++t) s += ai[t] * bj[t];
        ci[j] = s;
      }
    }
    if (k == 0) break;
  }
}

NETMAX_KERNEL_ISA
void GemmAtBAccumulate(int r, int m, int n, const double* a, int lda,
                       const double* b, int ldb, double* c, int ldc) {
  // Rank-1 update order: sample s contributes before sample s+1 for every C
  // element, matching the per-sample accumulation of the seed backward pass.
  // Four samples per pass quarter the traffic over C; the four adds per
  // element stay sequential (s, s+1, s+2, s+3), so the order is untouched.
  int s = 0;
  for (; s + 4 <= r; s += 4) {
    const double* a0 = a + static_cast<size_t>(s) * lda;
    const double* a1 = a0 + lda;
    const double* a2 = a1 + lda;
    const double* a3 = a2 + lda;
    const double* b0 = b + static_cast<size_t>(s) * ldb;
    const double* b1 = b0 + ldb;
    const double* b2 = b1 + ldb;
    const double* b3 = b2 + ldb;
    for (int i = 0; i < m; ++i) {
      const double d0 = a0[i];
      const double d1 = a1[i];
      const double d2 = a2[i];
      const double d3 = a3[i];
      double* ci = c + static_cast<size_t>(i) * ldc;
      for (int j = 0; j < n; ++j) {
        double acc = ci[j];
        acc += d0 * b0[j];
        acc += d1 * b1[j];
        acc += d2 * b2[j];
        acc += d3 * b3[j];
        ci[j] = acc;
      }
    }
  }
  for (; s < r; ++s) {
    const double* as = a + static_cast<size_t>(s) * lda;
    const double* bs = b + static_cast<size_t>(s) * ldb;
    for (int i = 0; i < m; ++i) {
      const double d = as[i];
      double* ci = c + static_cast<size_t>(i) * ldc;
      for (int j = 0; j < n; ++j) ci[j] += d * bs[j];
    }
  }
}

void Gemm(int m, int n, int k, const double* a, int lda, const double* b,
          int ldb, double* c, int ldc) {
  GemmBias(m, n, k, a, lda, b, ldb, nullptr, c, ldc);
}

NETMAX_KERNEL_ISA
void GemmBias(int m, int n, int k, const double* a, int lda, const double* b,
              int ldb, const double* bias, double* c, int ldc) {
  for (int i = 0; i < m; ++i) {
    const double* ai = a + static_cast<size_t>(i) * lda;
    double* ci = c + static_cast<size_t>(i) * ldc;
    if (bias) {
      for (int j = 0; j < n; ++j) ci[j] = bias[j];
    } else {
      for (int j = 0; j < n; ++j) ci[j] = 0.0;
    }
    // i-k-j with k unrolled by 8: per element the eight adds are applied in
    // ascending-k sequence, so the sum order equals the naive triple loop.
    int t = 0;
    for (; t + 8 <= k; t += 8) {
      const double x0 = ai[t];
      const double x1 = ai[t + 1];
      const double x2 = ai[t + 2];
      const double x3 = ai[t + 3];
      const double x4 = ai[t + 4];
      const double x5 = ai[t + 5];
      const double x6 = ai[t + 6];
      const double x7 = ai[t + 7];
      const double* b0 = b + static_cast<size_t>(t) * ldb;
      const double* b1 = b0 + ldb;
      const double* b2 = b1 + ldb;
      const double* b3 = b2 + ldb;
      const double* b4 = b3 + ldb;
      const double* b5 = b4 + ldb;
      const double* b6 = b5 + ldb;
      const double* b7 = b6 + ldb;
      for (int j = 0; j < n; ++j) {
        double acc = ci[j];
        acc += x0 * b0[j];
        acc += x1 * b1[j];
        acc += x2 * b2[j];
        acc += x3 * b3[j];
        acc += x4 * b4[j];
        acc += x5 * b5[j];
        acc += x6 * b6[j];
        acc += x7 * b7[j];
        ci[j] = acc;
      }
    }
    for (; t < k; ++t) {
      const double x = ai[t];
      const double* bt = b + static_cast<size_t>(t) * ldb;
      for (int j = 0; j < n; ++j) ci[j] += x * bt[j];
    }
  }
}

void Transpose(int rows, int cols, const double* in, int ldin, double* out,
               int ldout) {
  for (int r = 0; r < rows; ++r) {
    const double* row = in + static_cast<size_t>(r) * ldin;
    for (int c = 0; c < cols; ++c) {
      out[static_cast<size_t>(c) * ldout + r] = row[c];
    }
  }
}

void Gemv(int m, int n, const double* a, int lda, const double* x,
          const double* bias, double* y) {
  int i = 0;
  // Four rows at a time: four independent ascending-j chains.
  for (; i + 4 <= m; i += 4) {
    const double* a0 = a + static_cast<size_t>(i) * lda;
    const double* a1 = a0 + lda;
    const double* a2 = a1 + lda;
    const double* a3 = a2 + lda;
    double s0 = bias ? bias[i] : 0.0;
    double s1 = bias ? bias[i + 1] : 0.0;
    double s2 = bias ? bias[i + 2] : 0.0;
    double s3 = bias ? bias[i + 3] : 0.0;
    for (int j = 0; j < n; ++j) {
      const double xj = x[j];
      s0 += a0[j] * xj;
      s1 += a1[j] * xj;
      s2 += a2[j] * xj;
      s3 += a3[j] * xj;
    }
    y[i] = s0;
    y[i + 1] = s1;
    y[i + 2] = s2;
    y[i + 3] = s3;
  }
  for (; i < m; ++i) {
    const double* ai = a + static_cast<size_t>(i) * lda;
    double s = bias ? bias[i] : 0.0;
    for (int j = 0; j < n; ++j) s += ai[j] * x[j];
    y[i] = s;
  }
}

NETMAX_KERNEL_ISA
void AddRowsAccumulate(int r, int n, const double* a, int lda, double* out) {
  for (int s = 0; s < r; ++s) {
    const double* as = a + static_cast<size_t>(s) * lda;
    for (int j = 0; j < n; ++j) out[j] += as[j];
  }
}

}  // namespace netmax::linalg
