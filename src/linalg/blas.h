#ifndef NETMAX_LINALG_BLAS_H_
#define NETMAX_LINALG_BLAS_H_

// Dense double-precision kernels on raw row-major buffers: the compute
// substrate under Matrix and the batched model forward/backward passes.
//
// Every kernel is bit-exact with the naive textbook loop it replaces: each
// output element is one left-to-right sum over the contraction index in
// ascending order. Speed comes from register tiling across *independent*
// output elements, cache blocking that keeps the streamed operands hot, and
// branch-free inner loops — never from reassociating a sum. This is what lets
// the workspace/batched training path reproduce the per-sample seed results
// to the last bit (see tests/golden_reference_test.cc).
//
// All matrices are row-major with an explicit row stride (ld*), so callers
// can apply kernels to sub-blocks of larger buffers.

#include <cstddef>

namespace netmax::linalg {

// C (m x n) = A (m x k) * B^T (+ bias), where B (n x k) is stored row-major:
// C[i][j] = (bias ? bias[j] : 0) + sum_t A[i][t] * B[j][t], t ascending.
// This is the inner-product ("transposed-B") GEMM: both operands are read
// along contiguous rows, which is the layout of a batch of feature rows
// against a row-major weight matrix W (out x in).
void GemmTransB(int m, int n, int k, const double* a, int lda, const double* b,
                int ldb, const double* bias, double* c, int ldc);

// C (m x n) += A^T * B with A (r x m), B (r x n) row-major:
// C[i][j] += sum_s A[s][i] * B[s][j], s ascending (a sequence of rank-1
// updates). This is the weight-gradient kernel: delta rows (batch x out)
// against input rows (batch x in) accumulate sample contributions in batch
// order, exactly like the per-sample seed loop.
void GemmAtBAccumulate(int r, int m, int n, const double* a, int lda,
                       const double* b, int ldb, double* c, int ldc);

// C (m x n) = A (m x k) * B (k x n), all row-major:
// C[i][j] = sum_t A[i][t] * B[t][j], t ascending (i-k-j order, unrolled).
// Equivalent to GemmBias with a null bias.
void Gemm(int m, int n, int k, const double* a, int lda, const double* b,
          int ldb, double* c, int ldc);

// Gemm with an optional bias row:
// C[i][j] = (bias ? bias[j] : 0) + sum_t A[i][t] * B[t][j], t ascending.
// With B = W^T (see Transpose) this is the batched layer forward in its
// vectorization-friendly form: the inner loop walks C and B rows
// contiguously, element order identical to the naive dot-product loop.
void GemmBias(int m, int n, int k, const double* a, int lda, const double* b,
              int ldb, const double* bias, double* c, int ldc);

// out (cols x rows) = in^T for in (rows x cols), both row-major.
void Transpose(int rows, int cols, const double* in, int ldin, double* out,
               int ldout);

// y (m) = A (m x n) * x (+ bias): y[i] = (bias ? bias[i] : 0) + dot(row i, x).
void Gemv(int m, int n, const double* a, int lda, const double* x,
          const double* bias, double* y);

// out (n) += column sums of A (r x n): out[j] += sum_s A[s][j], s ascending.
// The bias-gradient kernel.
void AddRowsAccumulate(int r, int n, const double* a, int lda, double* out);

}  // namespace netmax::linalg

#endif  // NETMAX_LINALG_BLAS_H_
