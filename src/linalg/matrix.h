#ifndef NETMAX_LINALG_MATRIX_H_
#define NETMAX_LINALG_MATRIX_H_

// Row-major dense matrix of doubles. Sized for the small, dense problems this
// project solves (policy matrices and Y_P matrices of dimension M <= a few
// hundred, simplex tableaus of a few thousand entries) — not a general BLAS.

#include <initializer_list>
#include <span>
#include <vector>

#include "common/logging.h"

namespace netmax::linalg {

class Matrix {
 public:
  // Empty 0x0 matrix.
  Matrix() = default;

  // rows x cols matrix filled with `init`.
  Matrix(int rows, int cols, double init = 0.0);

  // Constructs from nested initializer lists; all rows must be equal length.
  // Example: Matrix m({{1.0, 2.0}, {3.0, 4.0}});
  explicit Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix Identity(int n);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  double& operator()(int r, int c) {
    NETMAX_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_)
        << "index (" << r << "," << c << ") out of " << rows_ << "x" << cols_;
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double operator()(int r, int c) const {
    NETMAX_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_)
        << "index (" << r << "," << c << ") out of " << rows_ << "x" << cols_;
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  // Mutable / const view of row `r`.
  std::span<double> Row(int r);
  std::span<const double> Row(int r) const;

  Matrix Transpose() const;

  // Matrix product; requires cols() == other.rows().
  Matrix Multiply(const Matrix& other) const;

  // Matrix-vector product; requires cols() == x.size().
  std::vector<double> Apply(std::span<const double> x) const;

  // Sum of the entries of row r / column c.
  double RowSum(int r) const;
  double ColSum(int c) const;

  // True if |a(i,j) - a(j,i)| <= tol for all i, j (square matrices only).
  bool IsSymmetric(double tol = 1e-12) const;

  // True if every entry is >= -tol.
  bool IsNonNegative(double tol = 1e-12) const;

  // True if symmetric, non-negative, and every row sums to 1 within tol.
  bool IsDoublyStochastic(double tol = 1e-9) const;

  // Max |a(i,j) - b(i,j)|; matrices must have equal shapes.
  static double MaxAbsDiff(const Matrix& a, const Matrix& b);

  const std::vector<double>& data() const { return data_; }

  // Raw row-major storage for kernel-level access (linalg-internal hot loops
  // that must bypass the per-element bounds checks of operator()).
  std::span<double> mutable_data() { return data_; }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

}  // namespace netmax::linalg

#endif  // NETMAX_LINALG_MATRIX_H_
