#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/random.h"
#include "linalg/vector_ops.h"

namespace netmax::linalg {
namespace {

// Sum of squares of off-diagonal entries.
double OffDiagonalNorm(const Matrix& a) {
  const int n = a.rows();
  const double* data = a.data().data();
  double acc = 0.0;
  for (int r = 0; r < n; ++r) {
    const double* row = data + static_cast<size_t>(r) * n;
    for (int c = 0; c < n; ++c) {
      if (r != c) acc += row[c] * row[c];
    }
  }
  return acc;
}

}  // namespace

StatusOr<EigenDecomposition> JacobiEigenSymmetric(const Matrix& a,
                                                  double symmetry_tol) {
  if (a.rows() != a.cols()) {
    return InvalidArgumentError("JacobiEigenSymmetric: matrix not square");
  }
  if (!a.IsSymmetric(symmetry_tol)) {
    return InvalidArgumentError("JacobiEigenSymmetric: matrix not symmetric");
  }
  const int n = a.rows();
  Matrix work = a;
  Matrix vectors = Matrix::Identity(n);
  // The rotation loops touch every element of two rows/columns per (p, q)
  // pair; raw row-major access keeps them branch-free (operator() bounds
  // checks would dominate the sweep).
  double* wd = work.mutable_data().data();
  double* vd = vectors.mutable_data().data();

  constexpr int kMaxSweeps = 100;
  constexpr double kConvergence = 1e-22;  // off-diagonal Frobenius^2 target
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    if (OffDiagonalNorm(work) < kConvergence) break;
    for (int p = 0; p < n - 1; ++p) {
      for (int q = p + 1; q < n; ++q) {
        const double apq = wd[static_cast<size_t>(p) * n + q];
        if (std::fabs(apq) < 1e-300) continue;
        const double app = wd[static_cast<size_t>(p) * n + p];
        const double aqq = wd[static_cast<size_t>(q) * n + q];
        const double theta = (aqq - app) / (2.0 * apq);
        // t = sign(theta) / (|theta| + sqrt(theta^2 + 1)) is the smaller root,
        // which keeps rotations small and the process stable.
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // Apply the rotation J(p, q, theta) on both sides of `work` and
        // accumulate it into `vectors`.
        for (int k = 0; k < n; ++k) {
          double* row = wd + static_cast<size_t>(k) * n;
          const double akp = row[p];
          const double akq = row[q];
          row[p] = c * akp - s * akq;
          row[q] = s * akp + c * akq;
        }
        double* wp = wd + static_cast<size_t>(p) * n;
        double* wq = wd + static_cast<size_t>(q) * n;
        for (int k = 0; k < n; ++k) {
          const double apk = wp[k];
          const double aqk = wq[k];
          wp[k] = c * apk - s * aqk;
          wq[k] = s * apk + c * aqk;
        }
        for (int k = 0; k < n; ++k) {
          double* row = vd + static_cast<size_t>(k) * n;
          const double vkp = row[p];
          const double vkq = row[q];
          row[p] = c * vkp - s * vkq;
          row[q] = s * vkp + c * vkq;
        }
      }
    }
  }

  // Collect eigenvalues and sort descending, permuting eigenvector columns.
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int x, int y) { return work(x, x) > work(y, y); });

  EigenDecomposition out;
  out.eigenvalues.resize(static_cast<size_t>(n));
  out.eigenvectors = Matrix(n, n);
  for (int c = 0; c < n; ++c) {
    const int source = order[static_cast<size_t>(c)];
    out.eigenvalues[static_cast<size_t>(c)] = work(source, source);
    for (int r = 0; r < n; ++r) {
      out.eigenvectors(r, c) = vectors(r, order[static_cast<size_t>(c)]);
    }
  }
  return out;
}

StatusOr<std::vector<double>> SymmetricEigenvalues(const Matrix& a) {
  StatusOr<EigenDecomposition> decomp = JacobiEigenSymmetric(a);
  if (!decomp.ok()) return decomp.status();
  return std::move(decomp.value().eigenvalues);
}

StatusOr<double> SecondLargestEigenvalue(const Matrix& a) {
  if (a.rows() < 2) {
    return InvalidArgumentError("SecondLargestEigenvalue: need n >= 2");
  }
  StatusOr<std::vector<double>> values = SymmetricEigenvalues(a);
  if (!values.ok()) return values.status();
  return values.value()[1];
}

StatusOr<double> PowerIterationLargest(const Matrix& a, int max_iters,
                                       double tol, uint64_t seed) {
  if (a.rows() != a.cols() || a.rows() == 0) {
    return InvalidArgumentError("PowerIterationLargest: matrix not square");
  }
  const int n = a.rows();
  Rng rng(seed);
  std::vector<double> v(static_cast<size_t>(n));
  for (double& x : v) x = rng.Gaussian();
  double lambda = 0.0;
  for (int iter = 0; iter < max_iters; ++iter) {
    std::vector<double> w = a.Apply(v);
    const double norm = Norm(w);
    if (norm == 0.0) return 0.0;
    Scale(1.0 / norm, w);
    const double next = Dot(w, a.Apply(w));
    const bool converged = std::fabs(next - lambda) < tol;
    lambda = next;
    v = std::move(w);
    if (converged && iter > 2) break;
  }
  return lambda;
}

StatusOr<double> PowerIterationSecondLargestStochastic(const Matrix& a,
                                                       int max_iters,
                                                       double tol,
                                                       uint64_t seed) {
  if (!a.IsDoublyStochastic(1e-6)) {
    return InvalidArgumentError(
        "PowerIterationSecondLargestStochastic: matrix is not symmetric "
        "doubly stochastic");
  }
  const int n = a.rows();
  Rng rng(seed);
  std::vector<double> v(static_cast<size_t>(n));
  for (double& x : v) x = rng.Gaussian();

  auto deflate = [&](std::vector<double>& x) {
    // Remove the component along the all-ones eigenvector (eigenvalue 1).
    double mean = 0.0;
    for (double e : x) mean += e;
    mean /= static_cast<double>(n);
    for (double& e : x) e -= mean;
  };

  deflate(v);
  double lambda = 0.0;
  for (int iter = 0; iter < max_iters; ++iter) {
    std::vector<double> w = a.Apply(v);
    deflate(w);
    const double norm = Norm(w);
    if (norm < 1e-300) return 0.0;
    Scale(1.0 / norm, w);
    std::vector<double> aw = a.Apply(w);
    deflate(aw);
    const double next = Dot(w, aw);
    const bool converged = std::fabs(next - lambda) < tol;
    lambda = next;
    v = std::move(w);
    if (converged && iter > 2) break;
  }
  return lambda;
}

}  // namespace netmax::linalg
