#ifndef NETMAX_LINALG_SIMPLEX_H_
#define NETMAX_LINALG_SIMPLEX_H_

// Dense two-phase primal simplex solver for small linear programs.
//
// NetMax's policy generation (paper Eq. 14) solves, for every grid point of
// (rho, t_bar), the LP
//     min sum_i p_{i,i}
//     s.t. per-node average iteration time equals M * t_bar      (Eq. 10)
//          p_{i,m} >= alpha*rho*(d_{i,m}+d_{m,i}) for neighbors  (Eq. 11)
//          p_{i,m}  = 0 for non-neighbors                        (Eq. 12)
//          rows of P sum to 1                                    (Eq. 13)
// These LPs have at most a few hundred variables, so a dense tableau solver
// with Dantzig pricing (falling back to Bland's rule for anti-cycling) is
// simple and fast enough.
//
// Conventions:
//  * minimization;
//  * every variable x_j satisfies lower_bounds[j] <= x_j <= upper_bounds[j],
//    with default bounds [0, +inf); lower bounds must be finite;
//  * constraints are rows `coefficients . x (<=|>=|=) rhs`.

#include <limits>
#include <vector>

#include "common/status.h"

namespace netmax::linalg {

enum class LpRelation {
  kLessEqual,
  kGreaterEqual,
  kEqual,
};

struct LpConstraint {
  std::vector<double> coefficients;  // length num_vars
  LpRelation relation = LpRelation::kLessEqual;
  double rhs = 0.0;
};

struct LpProblem {
  int num_vars = 0;
  // Objective to minimize; length num_vars.
  std::vector<double> objective;
  std::vector<LpConstraint> constraints;
  // Optional; empty means all zeros / all +inf respectively.
  std::vector<double> lower_bounds;
  std::vector<double> upper_bounds;

  // Appends a constraint. Convenience for building problems incrementally.
  void AddConstraint(std::vector<double> coefficients, LpRelation relation,
                     double rhs);
};

struct LpSolution {
  std::vector<double> x;
  double objective_value = 0.0;
  int iterations = 0;
};

// Solves `problem`. Returns:
//  * the optimum on success,
//  * kInfeasible if no point satisfies the constraints,
//  * kUnbounded if the objective is unbounded below,
//  * kInvalidArgument on malformed input.
StatusOr<LpSolution> SolveLp(const LpProblem& problem);

inline constexpr double kLpInfinity = std::numeric_limits<double>::infinity();

}  // namespace netmax::linalg

#endif  // NETMAX_LINALG_SIMPLEX_H_
