#include "linalg/simplex.h"

#include <cmath>

#include "common/logging.h"

namespace netmax::linalg {
namespace {

constexpr double kTol = 1e-9;

// Full-tableau simplex state. Columns 0..n-1 are structural+slack variables,
// implicit column n is the rhs. Row m is the (reduced) cost row; its rhs cell
// holds -objective.
class Tableau {
 public:
  Tableau(int num_rows, int num_cols)
      : m_(num_rows), n_(num_cols),
        cells_((static_cast<size_t>(num_rows) + 1) * (num_cols + 1), 0.0),
        basis_(static_cast<size_t>(num_rows), -1) {}

  double& At(int r, int c) {
    return cells_[static_cast<size_t>(r) * (n_ + 1) + c];
  }
  double At(int r, int c) const {
    return cells_[static_cast<size_t>(r) * (n_ + 1) + c];
  }
  double& Rhs(int r) { return At(r, n_); }
  double Rhs(int r) const { return At(r, n_); }
  double& Cost(int c) { return At(m_, c); }
  double Cost(int c) const { return At(m_, c); }
  double& CostRhs() { return At(m_, n_); }

  int num_rows() const { return m_; }
  int num_cols() const { return n_; }
  int basis(int r) const { return basis_[static_cast<size_t>(r)]; }
  void set_basis(int r, int var) { basis_[static_cast<size_t>(r)] = var; }

  // Pivots on (pivot_row, pivot_col): normalizes the pivot row and eliminates
  // the pivot column from every other row including the cost row.
  void Pivot(int pivot_row, int pivot_col) {
    const double pivot = At(pivot_row, pivot_col);
    NETMAX_CHECK_GT(std::fabs(pivot), 1e-14) << "degenerate pivot";
    const double inv = 1.0 / pivot;
    for (int c = 0; c <= n_; ++c) At(pivot_row, c) *= inv;
    At(pivot_row, pivot_col) = 1.0;  // exact
    for (int r = 0; r <= m_; ++r) {
      if (r == pivot_row) continue;
      const double factor = At(r, pivot_col);
      if (factor == 0.0) continue;
      for (int c = 0; c <= n_; ++c) {
        At(r, c) -= factor * At(pivot_row, c);
      }
      At(r, pivot_col) = 0.0;  // exact
    }
    set_basis(pivot_row, pivot_col);
  }

  // Runs simplex iterations until optimality / unboundedness / the iteration
  // cap. `allowed(c)` filters which columns may enter (phase 2 excludes
  // artificials). Returns OK on optimality.
  Status Iterate(const std::vector<bool>& allowed, int max_iters,
                 int* iterations_out) {
    int iters = 0;
    // Dantzig pricing is fast in practice; after kBlandSwitch iterations we
    // switch to Bland's rule, which provably terminates.
    const int bland_switch = 4 * (m_ + n_) + 64;
    while (true) {
      if (iters >= max_iters) {
        return InternalError("simplex: iteration limit reached");
      }
      const bool use_bland = iters >= bland_switch;
      // Entering column.
      int enter = -1;
      double best = -kTol;
      for (int c = 0; c < n_; ++c) {
        if (!allowed[static_cast<size_t>(c)]) continue;
        const double cost = Cost(c);
        if (cost < -kTol) {
          if (use_bland) {
            enter = c;
            break;
          }
          if (cost < best) {
            best = cost;
            enter = c;
          }
        }
      }
      if (enter < 0) break;  // optimal
      // Ratio test.
      int leave = -1;
      double best_ratio = 0.0;
      for (int r = 0; r < m_; ++r) {
        const double a = At(r, enter);
        if (a <= kTol) continue;
        const double ratio = Rhs(r) / a;
        if (leave < 0 || ratio < best_ratio - kTol ||
            (std::fabs(ratio - best_ratio) <= kTol &&
             basis(r) < basis(leave))) {
          leave = r;
          best_ratio = ratio;
        }
      }
      if (leave < 0) {
        return UnboundedError("simplex: objective unbounded");
      }
      Pivot(leave, enter);
      ++iters;
    }
    if (iterations_out != nullptr) *iterations_out += iters;
    return Status::Ok();
  }

 private:
  int m_;
  int n_;
  std::vector<double> cells_;
  std::vector<int> basis_;
};

}  // namespace

void LpProblem::AddConstraint(std::vector<double> coefficients,
                              LpRelation relation, double rhs) {
  LpConstraint c;
  c.coefficients = std::move(coefficients);
  c.relation = relation;
  c.rhs = rhs;
  constraints.push_back(std::move(c));
}

StatusOr<LpSolution> SolveLp(const LpProblem& problem) {
  const int n_struct = problem.num_vars;
  if (n_struct <= 0) return InvalidArgumentError("LP has no variables");
  if (static_cast<int>(problem.objective.size()) != n_struct) {
    return InvalidArgumentError("objective length != num_vars");
  }
  std::vector<double> lb = problem.lower_bounds;
  std::vector<double> ub = problem.upper_bounds;
  if (lb.empty()) lb.assign(static_cast<size_t>(n_struct), 0.0);
  if (ub.empty()) ub.assign(static_cast<size_t>(n_struct), kLpInfinity);
  if (static_cast<int>(lb.size()) != n_struct ||
      static_cast<int>(ub.size()) != n_struct) {
    return InvalidArgumentError("bounds length != num_vars");
  }
  for (int j = 0; j < n_struct; ++j) {
    if (!std::isfinite(lb[static_cast<size_t>(j)])) {
      return InvalidArgumentError("lower bounds must be finite");
    }
    if (ub[static_cast<size_t>(j)] < lb[static_cast<size_t>(j)] - kTol) {
      return InfeasibleError("variable bound range is empty");
    }
  }
  for (const LpConstraint& c : problem.constraints) {
    if (static_cast<int>(c.coefficients.size()) != n_struct) {
      return InvalidArgumentError("constraint length != num_vars");
    }
  }

  // Shift variables by their lower bounds: x = lb + y, y >= 0. Finite upper
  // bounds become extra rows y_j <= ub_j - lb_j.
  struct Row {
    std::vector<double> a;
    LpRelation rel;
    double rhs;
  };
  std::vector<Row> rows;
  rows.reserve(problem.constraints.size());
  for (const LpConstraint& c : problem.constraints) {
    Row row;
    row.a = c.coefficients;
    row.rel = c.relation;
    row.rhs = c.rhs;
    for (int j = 0; j < n_struct; ++j) {
      row.rhs -= row.a[static_cast<size_t>(j)] * lb[static_cast<size_t>(j)];
    }
    rows.push_back(std::move(row));
  }
  for (int j = 0; j < n_struct; ++j) {
    if (std::isfinite(ub[static_cast<size_t>(j)])) {
      Row row;
      row.a.assign(static_cast<size_t>(n_struct), 0.0);
      row.a[static_cast<size_t>(j)] = 1.0;
      row.rel = LpRelation::kLessEqual;
      row.rhs = ub[static_cast<size_t>(j)] - lb[static_cast<size_t>(j)];
      rows.push_back(std::move(row));
    }
  }
  double objective_shift = 0.0;
  for (int j = 0; j < n_struct; ++j) {
    objective_shift +=
        problem.objective[static_cast<size_t>(j)] * lb[static_cast<size_t>(j)];
  }

  // Normalize rhs >= 0 (flip rows), then count slack and artificial columns.
  const int m = static_cast<int>(rows.size());
  for (Row& row : rows) {
    if (row.rhs < 0.0) {
      for (double& a : row.a) a = -a;
      row.rhs = -row.rhs;
      if (row.rel == LpRelation::kLessEqual) {
        row.rel = LpRelation::kGreaterEqual;
      } else if (row.rel == LpRelation::kGreaterEqual) {
        row.rel = LpRelation::kLessEqual;
      }
    }
  }
  int num_slack = 0;
  int num_artificial = 0;
  for (const Row& row : rows) {
    switch (row.rel) {
      case LpRelation::kLessEqual:
        ++num_slack;
        break;
      case LpRelation::kGreaterEqual:
        ++num_slack;
        ++num_artificial;
        break;
      case LpRelation::kEqual:
        ++num_artificial;
        break;
    }
  }
  const int n_total = n_struct + num_slack + num_artificial;
  const int artificial_begin = n_struct + num_slack;

  Tableau tableau(m, n_total);
  int slack_cursor = n_struct;
  int artificial_cursor = artificial_begin;
  for (int r = 0; r < m; ++r) {
    const Row& row = rows[static_cast<size_t>(r)];
    for (int j = 0; j < n_struct; ++j) {
      tableau.At(r, j) = row.a[static_cast<size_t>(j)];
    }
    tableau.Rhs(r) = row.rhs;
    switch (row.rel) {
      case LpRelation::kLessEqual:
        tableau.At(r, slack_cursor) = 1.0;
        tableau.set_basis(r, slack_cursor);
        ++slack_cursor;
        break;
      case LpRelation::kGreaterEqual:
        tableau.At(r, slack_cursor) = -1.0;
        ++slack_cursor;
        tableau.At(r, artificial_cursor) = 1.0;
        tableau.set_basis(r, artificial_cursor);
        ++artificial_cursor;
        break;
      case LpRelation::kEqual:
        tableau.At(r, artificial_cursor) = 1.0;
        tableau.set_basis(r, artificial_cursor);
        ++artificial_cursor;
        break;
    }
  }

  const int max_iters = 2000 + 200 * (m + n_total);
  int iterations = 0;
  std::vector<bool> allow_all(static_cast<size_t>(n_total), true);

  // ---- Phase 1: minimize the sum of artificial variables. ----
  if (num_artificial > 0) {
    // Cost row: c_j = 1 for artificials. Reduce against the artificial basis
    // (cost row -= each row whose basic variable is artificial).
    for (int c = artificial_begin; c < n_total; ++c) tableau.Cost(c) = 1.0;
    for (int r = 0; r < m; ++r) {
      if (tableau.basis(r) >= artificial_begin) {
        for (int c = 0; c <= n_total; ++c) {
          tableau.At(m, c) -= tableau.At(r, c);
        }
      }
    }
    Status phase1 = tableau.Iterate(allow_all, max_iters, &iterations);
    if (!phase1.ok()) return phase1;
    const double infeasibility = -tableau.CostRhs();
    if (infeasibility > 1e-7) {
      return InfeasibleError("LP infeasible (phase-1 objective " +
                             std::to_string(infeasibility) + ")");
    }
    // Drive remaining artificials out of the basis where possible; rows where
    // it is impossible are redundant and harmless (rhs ~ 0).
    for (int r = 0; r < m; ++r) {
      if (tableau.basis(r) < artificial_begin) continue;
      int pivot_col = -1;
      for (int c = 0; c < artificial_begin; ++c) {
        if (std::fabs(tableau.At(r, c)) > 1e-8) {
          pivot_col = c;
          break;
        }
      }
      if (pivot_col >= 0) tableau.Pivot(r, pivot_col);
    }
  }

  // ---- Phase 2: minimize the true objective over non-artificial columns. ---
  for (int c = 0; c <= n_total; ++c) tableau.At(m, c) = 0.0;
  for (int j = 0; j < n_struct; ++j) {
    tableau.Cost(j) = problem.objective[static_cast<size_t>(j)];
  }
  // Reduce the cost row against the current basis.
  for (int r = 0; r < m; ++r) {
    const int b = tableau.basis(r);
    if (b < n_struct) {
      const double cb = problem.objective[static_cast<size_t>(b)];
      if (cb != 0.0) {
        for (int c = 0; c <= n_total; ++c) {
          tableau.At(m, c) -= cb * tableau.At(r, c);
        }
      }
    }
  }
  std::vector<bool> allow_no_artificial(static_cast<size_t>(n_total), true);
  for (int c = artificial_begin; c < n_total; ++c) {
    allow_no_artificial[static_cast<size_t>(c)] = false;
  }
  Status phase2 = tableau.Iterate(allow_no_artificial, max_iters, &iterations);
  if (!phase2.ok()) return phase2;

  LpSolution solution;
  solution.x.assign(static_cast<size_t>(n_struct), 0.0);
  for (int r = 0; r < m; ++r) {
    const int b = tableau.basis(r);
    if (b >= 0 && b < n_struct) {
      solution.x[static_cast<size_t>(b)] = tableau.Rhs(r);
    }
  }
  for (int j = 0; j < n_struct; ++j) {
    solution.x[static_cast<size_t>(j)] += lb[static_cast<size_t>(j)];
  }
  solution.objective_value = -tableau.CostRhs() + objective_shift;
  solution.iterations = iterations;
  return solution;
}

}  // namespace netmax::linalg
