#include "linalg/vector_ops.h"

#include <cmath>

#include "common/logging.h"

namespace netmax::linalg {

void Axpy(double a, std::span<const double> x, std::span<double> y) {
  NETMAX_CHECK_EQ(x.size(), y.size());
  // Elementwise, so unrolling cannot change any result; the raw-pointer 4x
  // unroll keeps the parameter/consensus updates of Algorithm 2 vectorized.
  const double* xs = x.data();
  double* ys = y.data();
  const size_t n = x.size();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    ys[i] += a * xs[i];
    ys[i + 1] += a * xs[i + 1];
    ys[i + 2] += a * xs[i + 2];
    ys[i + 3] += a * xs[i + 3];
  }
  for (; i < n; ++i) ys[i] += a * xs[i];
}

double Dot(std::span<const double> x, std::span<const double> y) {
  NETMAX_CHECK_EQ(x.size(), y.size());
  double acc = 0.0;
  for (size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

void Scale(double a, std::span<double> x) {
  for (double& v : x) v *= a;
}

void AddInPlace(std::span<const double> x, std::span<double> y) {
  NETMAX_CHECK_EQ(x.size(), y.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] += x[i];
}

void SubInPlace(std::span<const double> x, std::span<double> y) {
  NETMAX_CHECK_EQ(x.size(), y.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] -= x[i];
}

std::vector<double> Sub(std::span<const double> x, std::span<const double> y) {
  NETMAX_CHECK_EQ(x.size(), y.size());
  std::vector<double> out(x.size());
  for (size_t i = 0; i < x.size(); ++i) out[i] = x[i] - y[i];
  return out;
}

double SquaredNorm(std::span<const double> x) { return Dot(x, x); }

double Norm(std::span<const double> x) { return std::sqrt(SquaredNorm(x)); }

double MaxAbs(std::span<const double> x) {
  double best = 0.0;
  for (double v : x) best = std::max(best, std::fabs(v));
  return best;
}

void Fill(std::span<double> x, double value) {
  for (double& v : x) v = value;
}

std::vector<double> Mean(const std::vector<std::vector<double>>& vectors) {
  NETMAX_CHECK(!vectors.empty());
  std::vector<double> out(vectors[0].size(), 0.0);
  for (const auto& v : vectors) AddInPlace(v, out);
  Scale(1.0 / static_cast<double>(vectors.size()), out);
  return out;
}

}  // namespace netmax::linalg
