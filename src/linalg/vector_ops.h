#ifndef NETMAX_LINALG_VECTOR_OPS_H_
#define NETMAX_LINALG_VECTOR_OPS_H_

// Dense vector kernels over std::vector<double> / std::span<double>. These are
// the primitives the model-parameter updates (Algorithm 2) and the optimizers
// are built from. All binary operations require equal lengths (checked).

#include <span>
#include <vector>

namespace netmax::linalg {

// y += a * x  (BLAS axpy).
void Axpy(double a, std::span<const double> x, std::span<double> y);

// Returns x . y.
double Dot(std::span<const double> x, std::span<const double> y);

// x *= a.
void Scale(double a, std::span<double> x);

// y += x.
void AddInPlace(std::span<const double> x, std::span<double> y);

// y -= x.
void SubInPlace(std::span<const double> x, std::span<double> y);

// Returns x - y as a new vector.
std::vector<double> Sub(std::span<const double> x, std::span<const double> y);

// Returns sum_i x[i]^2.
double SquaredNorm(std::span<const double> x);

// Returns the Euclidean norm.
double Norm(std::span<const double> x);

// Returns max_i |x[i]|; 0 for an empty vector.
double MaxAbs(std::span<const double> x);

// Sets every element to `value`.
void Fill(std::span<double> x, double value);

// Element-wise average of `vectors` (all equal length, at least one).
std::vector<double> Mean(const std::vector<std::vector<double>>& vectors);

}  // namespace netmax::linalg

#endif  // NETMAX_LINALG_VECTOR_OPS_H_
