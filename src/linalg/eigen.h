#ifndef NETMAX_LINALG_EIGEN_H_
#define NETMAX_LINALG_EIGEN_H_

// Symmetric eigensolvers.
//
// NetMax's communication-policy generation (Algorithm 3) scores each candidate
// policy by the second-largest eigenvalue lambda_2 of the doubly stochastic
// matrix Y_P = E[D^kT D^k]. Y_P is symmetric, so a cyclic Jacobi rotation
// solver is robust and exact enough; a power-iteration variant is provided as
// an independent cross-check for tests.

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace netmax::linalg {

struct EigenDecomposition {
  // Eigenvalues sorted in descending order.
  std::vector<double> eigenvalues;
  // Column c of `eigenvectors` is the unit eigenvector for eigenvalues[c].
  Matrix eigenvectors;
};

// Computes the full eigendecomposition of the symmetric matrix `a` with the
// cyclic Jacobi method. Returns InvalidArgument if `a` is not square or not
// symmetric (within `symmetry_tol`).
StatusOr<EigenDecomposition> JacobiEigenSymmetric(const Matrix& a,
                                                  double symmetry_tol = 1e-9);

// Returns all eigenvalues of symmetric `a` in descending order.
StatusOr<std::vector<double>> SymmetricEigenvalues(const Matrix& a);

// Returns the second-largest eigenvalue of symmetric `a` (n >= 2).
StatusOr<double> SecondLargestEigenvalue(const Matrix& a);

// Estimates the largest eigenvalue (by absolute value) of symmetric `a` by
// power iteration; `seed` initializes the start vector. Used in tests to
// cross-check Jacobi.
StatusOr<double> PowerIterationLargest(const Matrix& a, int max_iters = 2000,
                                       double tol = 1e-12, uint64_t seed = 7);

// Estimates the second-largest eigenvalue of a symmetric doubly stochastic
// matrix by power iteration on the component orthogonal to the all-ones
// vector (whose eigenvalue is 1). Used in tests to cross-check Jacobi.
StatusOr<double> PowerIterationSecondLargestStochastic(const Matrix& a,
                                                       int max_iters = 4000,
                                                       double tol = 1e-12,
                                                       uint64_t seed = 7);

}  // namespace netmax::linalg

#endif  // NETMAX_LINALG_EIGEN_H_
