// Canonical golden-trace dump: runs one registered algorithm on the pinned
// golden-trace experiment and prints the deterministic subset of its
// RunResult — every double as an exact IEEE-754 hexfloat — so the output is
// byte-comparable across compilers, optimization levels, thread counts, and
// execution backends (the contract the determinism test suite enforces).
//
// tools/golden_trace.py drives this binary against the pinned traces in
// tests/golden_trace/: any bit of drift in simulation output fails CI, and
// `golden_trace.py --regenerate` re-pins after an intentional change.
//
// usage:
//   trace_dump --list          print registered algorithm names, one per line
//   trace_dump <algorithm>     print the canonical trace on stdout
//
// Fault variants: "<algorithm>+faults-wait" and "<algorithm>+faults-timeout"
// run the same pinned experiment under the pinned fault schedule below with
// the respective dead-peer policy, and append the fault counters to the
// trace. --list advertises two pinned variants (netmax under wait, allreduce
// under timeout), so the golden lane also locks down the fault-injection
// subsystem's bits; plain algorithm traces are byte-identical to before the
// fault variants existed.
//
// Compression variants: "<algorithm>+topk" (top-k 0.1), "<algorithm>+int8",
// and "<algorithm>+layerwise" (period 2) run the pinned experiment with the
// respective gradient compression and append the wire counters. --list
// advertises three pinned variants (netmax+topk, gossip+int8,
// allreduce+layerwise) covering the per-send, push-gossip, and ring-chunk
// accounting paths; plain traces stay byte-identical to their pre-compression
// pins.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "algos/registry.h"
#include "common/status.h"
#include "core/experiment.h"
#include "ml/compression.h"
#include "ml/metrics.h"
#include "net/event_queue.h"
#include "net/fault_schedule.h"

namespace netmax {
namespace {

// Pinned config: small enough to run in well under a second per algorithm,
// rich enough to exercise the heterogeneous network, several monitor ticks,
// the accuracy series, and every engine's event machinery. Changing ANY
// field here invalidates every pinned trace — regenerate them all.
core::ExperimentConfig GoldenConfig() {
  core::ExperimentConfig config;
  config.dataset.name = "golden";
  config.dataset.num_classes = 4;
  config.dataset.feature_dim = 12;
  config.dataset.num_train = 512;
  config.dataset.num_test = 128;
  config.dataset.class_separation = 4.0;
  config.hidden_layers = {12};
  config.num_workers = 8;
  config.batch_size = 16;
  config.max_epochs = 2;
  config.network = core::NetworkScenario::kHeterogeneousStatic;
  config.monitor_period_seconds = 5.0;
  config.generator.outer_rounds = 4;
  config.generator.inner_rounds = 4;
  config.eval_every_epochs = 1;
  config.seed = 13;
  config.threads = 1;
  return config;
}

// Pinned fault schedule for the "+faults-*" variants: a slowdown and a
// leave/rejoin, early enough to land inside every engine's golden run, with
// a dead window (2 virtual seconds) that outlives the 1-second deadline so
// the timeout variant actually expires it. Changing this (or the deadline
// knobs below) invalidates the pinned fault traces — regenerate them.
constexpr char kFaultSpec[] = "slow@0.5+2x4:w1;leave@1:w2;join@3:w2";
constexpr char kWaitSuffix[] = "+faults-wait";
constexpr char kTimeoutSuffix[] = "+faults-timeout";

// Pinned compression variants. The specs mirror the bench defaults
// (--compress=topk:0.1 / int8 / layerwise:2); changing one invalidates its
// pinned traces — regenerate them.
constexpr char kTopKSuffix[] = "+topk";
constexpr char kInt8Suffix[] = "+int8";
constexpr char kLayerwiseSuffix[] = "+layerwise";
constexpr char kTopKSpec[] = "topk:0.1";
constexpr char kInt8Spec[] = "int8";
constexpr char kLayerwiseSpec[] = "layerwise:2";

bool StripSuffix(std::string& name, const char* suffix) {
  const std::string tail(suffix);
  if (name.size() <= tail.size() ||
      name.compare(name.size() - tail.size(), tail.size(), tail) != 0) {
    return false;
  }
  name.resize(name.size() - tail.size());
  return true;
}

void PrintSeries(const char* label, const ml::Series& series) {
  std::printf("%s %zu\n", label, series.size());
  for (const auto& point : series) std::printf("%a %a\n", point.x, point.y);
}

Status DumpTrace(const std::string& request) {
  std::string name = request;
  bool fault_mode = false;
  core::PeerPolicy policy = core::PeerPolicy::kWait;
  const char* compress_spec = nullptr;
  if (StripSuffix(name, kWaitSuffix)) {
    fault_mode = true;
  } else if (StripSuffix(name, kTimeoutSuffix)) {
    fault_mode = true;
    policy = core::PeerPolicy::kTimeoutAndContinue;
  } else if (StripSuffix(name, kTopKSuffix)) {
    compress_spec = kTopKSpec;
  } else if (StripSuffix(name, kInt8Suffix)) {
    compress_spec = kInt8Spec;
  } else if (StripSuffix(name, kLayerwiseSuffix)) {
    compress_spec = kLayerwiseSpec;
  }
  core::ExperimentConfig config = GoldenConfig();
  // NETMAX_EVENT_QUEUE selects the event-queue backend without perturbing
  // the pinned config: every backend must reproduce the same trace bytes,
  // which is exactly what CI's determinism lane diffs.
  if (const char* queue_env = std::getenv("NETMAX_EVENT_QUEUE")) {
    NETMAX_ASSIGN_OR_RETURN(config.event_queue,
                            net::ParseEventQueueKind(queue_env));
  }
  // NETMAX_BACKEND / NETMAX_PROCS select the execution backend the same way:
  // every backend (including the forked process pool) must reproduce the
  // same trace bytes, and the determinism lane diffs process against serial.
  if (const char* backend_env = std::getenv("NETMAX_BACKEND")) {
    if (!core::ParseExecutionBackendKind(backend_env, &config.backend)) {
      return InvalidArgumentError(std::string("bad NETMAX_BACKEND value: ") +
                                  backend_env);
    }
  }
  if (const char* procs_env = std::getenv("NETMAX_PROCS")) {
    config.procs = std::atoi(procs_env);
    if (config.procs <= 0) {
      return InvalidArgumentError(std::string("bad NETMAX_PROCS value: ") +
                                  procs_env);
    }
  }
  if (fault_mode) {
    NETMAX_ASSIGN_OR_RETURN(config.faults,
                            net::FaultSchedule::Parse(kFaultSpec));
    config.peer_policy = policy;
    config.peer_timeout_seconds = 1.0;
    config.peer_poll_seconds = 0.4;
  }
  if (compress_spec != nullptr) {
    NETMAX_ASSIGN_OR_RETURN(config.compress,
                            ml::ParseCompressionSpec(compress_spec));
  }
  NETMAX_ASSIGN_OR_RETURN(const auto algorithm, algos::MakeAlgorithm(name));
  NETMAX_ASSIGN_OR_RETURN(const core::RunResult result,
                          algorithm->Run(config));
  std::printf("netmax-golden-trace v1\n");
  std::printf("algorithm %s\n", result.algorithm.c_str());
  PrintSeries("loss_vs_time", result.loss_vs_time);
  PrintSeries("loss_vs_epoch", result.loss_vs_epoch);
  PrintSeries("accuracy_vs_time", result.accuracy_vs_time);
  std::printf("final_train_loss %a\n", result.final_train_loss);
  std::printf("final_accuracy %a\n", result.final_accuracy);
  std::printf("total_virtual_seconds %a\n", result.total_virtual_seconds);
  std::printf("avg_epoch_compute_seconds %a\n",
              result.avg_epoch_cost.compute_seconds);
  std::printf("avg_epoch_communication_seconds %a\n",
              result.avg_epoch_cost.communication_seconds);
  std::printf("total_local_iterations %" PRId64 "\n",
              result.total_local_iterations);
  std::printf("consensus_distance %a\n", result.consensus_distance);
  std::printf("policies_generated %" PRId64 "\n", result.policies_generated);
  if (fault_mode) {
    // Only the fault variants carry these lines, so the plain traces stay
    // byte-identical to their pre-fault pins.
    std::printf("faults_injected %" PRId64 "\n", result.faults_injected);
    std::printf("rounds_degraded %" PRId64 "\n", result.rounds_degraded);
    std::printf("peers_timed_out %" PRId64 "\n", result.peers_timed_out);
  }
  if (compress_spec != nullptr) {
    // Likewise, only the compression variants carry the wire counters, so
    // the plain traces stay byte-identical to their pre-compression pins.
    std::printf("messages_sent %" PRId64 "\n", result.messages_sent);
    std::printf("bytes_sent %" PRId64 "\n", result.bytes_sent);
    std::printf("bytes_saved %" PRId64 "\n", result.bytes_saved);
  }
  return Status::Ok();
}

}  // namespace
}  // namespace netmax

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s --list | %s <algorithm>\n", argv[0],
                 argv[0]);
    return 2;
  }
  const std::string arg = argv[1];
  if (arg == "--list") {
    for (const std::string& name : netmax::algos::AlgorithmNames()) {
      std::printf("%s\n", name.c_str());
    }
    // The pinned fault variants — both policies on the chain-structured
    // NetMax engine (the timeout one expires real peer deadlines) plus the
    // round-structured allreduce under timeout (membership exclusion).
    // Every other "<algorithm>+faults-{wait,timeout}" spelling also runs,
    // unpinned.
    std::printf("netmax%s\n", netmax::kWaitSuffix);
    std::printf("netmax%s\n", netmax::kTimeoutSuffix);
    std::printf("allreduce%s\n", netmax::kTimeoutSuffix);
    // The pinned compression variants — one per encoding family, spread
    // across the three wire-accounting shapes (directed consensus sends,
    // push-gossip snapshots, ring allreduce chunks). Every other
    // "<algorithm>+{topk,int8,layerwise}" spelling also runs, unpinned.
    std::printf("netmax%s\n", netmax::kTopKSuffix);
    std::printf("gossip%s\n", netmax::kInt8Suffix);
    std::printf("allreduce%s\n", netmax::kLayerwiseSuffix);
    return 0;
  }
  const netmax::Status status = netmax::DumpTrace(arg);
  if (!status.ok()) {
    std::fprintf(stderr, "trace_dump failed: %s\n", status.ToString().c_str());
    return 2;
  }
  return 0;
}
