#!/usr/bin/env python3
"""Golden-trace gate: byte-compare every algorithm's canonical simulation
trace against the pinned files in tests/golden_trace/.

The traces are produced by tools/trace_dump (every double printed as its
exact IEEE-754 hexfloat), so ANY bit of drift in simulation output — event
ordering, RNG streams, kernel arithmetic, policy generation — shows up as a
diff and fails CI. Execution-level changes (threads, shards, backends,
checkpointing machinery) must NOT move the traces; that is the determinism
contract this gate enforces end to end.

Usage:
  tools/golden_trace.py --bin build/tools/trace_dump            # compare
  tools/golden_trace.py --bin build/tools/trace_dump --regenerate

After an INTENTIONAL simulation-output change (new algorithm step math, a
config default, RNG layout), regenerate and commit the updated traces in the
same PR, with the reason in the PR description.
"""

import argparse
import difflib
import pathlib
import subprocess
import sys

DEFAULT_TRACE_DIR = pathlib.Path(__file__).resolve().parent.parent / (
    "tests/golden_trace"
)


def trace_path(trace_dir: pathlib.Path, algorithm: str) -> pathlib.Path:
    # Keep names filesystem-safe ("adpsgd+monitor" stays readable).
    safe = algorithm.replace("/", "-").replace(" ", "-")
    return trace_dir / f"{safe}.trace"


def run_dump(binary: str, algorithm: str) -> str:
    result = subprocess.run(
        [binary, algorithm], capture_output=True, text=True, check=False
    )
    if result.returncode != 0:
        sys.exit(
            f"error: {binary} {algorithm} exited "
            f"{result.returncode}:\n{result.stderr}"
        )
    return result.stdout


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--bin", required=True, help="path to the trace_dump binary"
    )
    parser.add_argument(
        "--traces",
        type=pathlib.Path,
        default=DEFAULT_TRACE_DIR,
        help=f"pinned trace directory (default: {DEFAULT_TRACE_DIR})",
    )
    parser.add_argument(
        "--regenerate",
        action="store_true",
        help="rewrite the pinned traces instead of comparing",
    )
    args = parser.parse_args()

    listing = subprocess.run(
        [args.bin, "--list"], capture_output=True, text=True, check=False
    )
    if listing.returncode != 0:
        sys.exit(f"error: {args.bin} --list failed:\n{listing.stderr}")
    algorithms = listing.stdout.split()
    if not algorithms:
        sys.exit("error: trace_dump --list printed no algorithms")

    if args.regenerate:
        args.traces.mkdir(parents=True, exist_ok=True)
        for algorithm in algorithms:
            path = trace_path(args.traces, algorithm)
            path.write_text(run_dump(args.bin, algorithm))
            print(f"regenerated {path}")
        stale = set(args.traces.glob("*.trace")) - {
            trace_path(args.traces, a) for a in algorithms
        }
        for path in sorted(stale):
            print(f"warning: {path} matches no registered algorithm")
        return 0

    failed = []
    for algorithm in algorithms:
        path = trace_path(args.traces, algorithm)
        if not path.exists():
            print(f"MISSING {path} (run with --regenerate to pin)")
            failed.append(algorithm)
            continue
        current = run_dump(args.bin, algorithm)
        pinned = path.read_text()
        if current == pinned:
            print(f"ok {algorithm}")
            continue
        failed.append(algorithm)
        print(f"MISMATCH {algorithm}: simulation output drifted from {path}")
        diff = difflib.unified_diff(
            pinned.splitlines(keepends=True),
            current.splitlines(keepends=True),
            fromfile=str(path),
            tofile=f"{algorithm} (current)",
        )
        sys.stdout.writelines(list(diff)[:60])
    if failed:
        print(
            f"\ngolden-trace gate FAILED for: {', '.join(failed)}\n"
            "If the change is intentional, regenerate the traces "
            "(tools/golden_trace.py --bin <trace_dump> --regenerate) and "
            "commit them with this PR."
        )
        return 1
    print(f"golden-trace gate passed ({len(algorithms)} algorithms)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
