// common/shm.h + common/proc.h: the shared-memory arena and process
// placement utilities under the multi-process execution backend. The arena
// tests exercise the cross-process property directly — a child writes
// through a MAP_SHARED slice and the parent observes the bytes — plus the
// typed failure paths; the proc tests pin down the kernel cpulist grammar
// and the graceful no-op paths placement relies on.

#include "common/shm.h"

#include <sched.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/proc.h"
#include "common/status.h"

namespace netmax {
namespace {

TEST(SharedArenaTest, MapsAndAllocatesTypedSlices) {
  StatusOr<SharedArena> arena = SharedArena::Map(1 << 16);
  ASSERT_TRUE(arena.ok()) << arena.status().ToString();
  EXPECT_TRUE(arena->mapped());
  EXPECT_GE(arena->capacity(), static_cast<size_t>(1 << 16));

  double* doubles = arena->Allocate<double>(128);
  int* ints = arena->Allocate<int>(64);
  auto* flag = arena->Allocate<std::atomic<uint32_t>>(1);
  ASSERT_NE(doubles, nullptr);
  ASSERT_NE(ints, nullptr);
  ASSERT_NE(flag, nullptr);

  // Anonymous pages come zero-filled; atomics are additionally
  // value-constructed.
  for (int i = 0; i < 128; ++i) EXPECT_EQ(doubles[i], 0.0);
  EXPECT_EQ(flag->load(), 0u);

  // Every slice starts on its own cache line.
  EXPECT_EQ(reinterpret_cast<uintptr_t>(doubles) %
                SharedArena::kSliceAlignment,
            0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(ints) % SharedArena::kSliceAlignment,
            0u);
  EXPECT_GT(arena->used(), 0u);
}

TEST(SharedArenaTest, ZeroCapacityIsInvalidArgument) {
  const StatusOr<SharedArena> arena = SharedArena::Map(0);
  ASSERT_FALSE(arena.ok());
  EXPECT_EQ(arena.status().code(), StatusCode::kInvalidArgument);
}

TEST(SharedArenaTest, MoveTransfersTheMapping) {
  StatusOr<SharedArena> mapped = SharedArena::Map(4096);
  ASSERT_TRUE(mapped.ok());
  SharedArena arena = std::move(*mapped);
  ASSERT_TRUE(arena.mapped());
  int* slice = arena.Allocate<int>(4);
  slice[0] = 7;

  SharedArena moved = std::move(arena);
  EXPECT_TRUE(moved.mapped());
  EXPECT_FALSE(arena.mapped());  // NOLINT(bugprone-use-after-move): the test
  EXPECT_EQ(slice[0], 7);        // the pages moved with the object
}

TEST(SharedArenaTest, ChildWritesAreVisibleToTheParent) {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "fork-based test skipped under sanitizers";
#else
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  GTEST_SKIP() << "fork-based test skipped under sanitizers";
#endif
#endif
  StatusOr<SharedArena> arena = SharedArena::Map(4096);
  ASSERT_TRUE(arena.ok());
  auto* ready = arena->Allocate<std::atomic<uint32_t>>(1);
  double* payload = arena->Allocate<double>(8);

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    for (int i = 0; i < 8; ++i) payload[i] = 1.5 * i;
    ready->store(1, std::memory_order_release);
    _exit(0);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  ASSERT_EQ(ready->load(std::memory_order_acquire), 1u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(payload[i], 1.5 * i);
#endif
}

TEST(ParseCpuListTest, ParsesKernelGrammar) {
  StatusOr<std::vector<int>> cpus = ParseCpuList("0-3,8,10-11");
  ASSERT_TRUE(cpus.ok()) << cpus.status().ToString();
  EXPECT_EQ(*cpus, (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));

  // The trailing newline every sysfs file carries, and stray spaces.
  cpus = ParseCpuList(" 2 , 4-5 \n");
  ASSERT_TRUE(cpus.ok());
  EXPECT_EQ(*cpus, (std::vector<int>{2, 4, 5}));

  cpus = ParseCpuList("7");
  ASSERT_TRUE(cpus.ok());
  EXPECT_EQ(*cpus, std::vector<int>{7});

  cpus = ParseCpuList("");
  ASSERT_TRUE(cpus.ok());
  EXPECT_TRUE(cpus->empty());

  // Duplicates collapse, output stays sorted.
  cpus = ParseCpuList("3,1-3,2");
  ASSERT_TRUE(cpus.ok());
  EXPECT_EQ(*cpus, (std::vector<int>{1, 2, 3}));
}

TEST(ParseCpuListTest, RejectsMalformedLists) {
  for (const char* bad : {"a", "1-", "-3", "3-1", "1,,2", "1-2-3", "1;2"}) {
    const StatusOr<std::vector<int>> cpus = ParseCpuList(bad);
    ASSERT_FALSE(cpus.ok()) << bad;
    EXPECT_EQ(cpus.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(NumaTest, ReadNumaNodeCpusNeverFails) {
  // Whatever the machine (multi-node, single-node, hidden /sys), the reader
  // returns a well-formed map: every node non-empty, every id non-negative.
  const std::vector<std::vector<int>> nodes = ReadNumaNodeCpus();
  for (const std::vector<int>& node : nodes) {
    EXPECT_FALSE(node.empty());
    for (const int cpu : node) EXPECT_GE(cpu, 0);
  }
}

TEST(PinToCpusTest, EmptySetIsANoOp) {
  NETMAX_EXPECT_OK(PinToCpus({}));
}

TEST(PinToCpusTest, PinningToTheCurrentAffinityMaskSucceeds) {
  // Re-pinning to the CPUs the process may already run on must succeed even
  // inside a container with a restricted cpuset (where pinning to arbitrary
  // /sys-visible CPUs would not).
  cpu_set_t mask;
  CPU_ZERO(&mask);
  ASSERT_EQ(sched_getaffinity(0, sizeof(mask), &mask), 0);
  std::vector<int> cpus;
  for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
    if (CPU_ISSET(cpu, &mask)) cpus.push_back(cpu);
  }
  ASSERT_FALSE(cpus.empty());
  NETMAX_EXPECT_OK(PinToCpus(cpus));
}

}  // namespace
}  // namespace netmax
