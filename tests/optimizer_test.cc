#include "ml/optimizer.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace netmax::ml {
namespace {

TEST(SgdOptimizerTest, PlainGradientStepWithoutMomentum) {
  SgdOptions options;
  options.learning_rate = 0.5;
  options.momentum = 0.0;
  options.weight_decay = 0.0;
  SgdOptimizer optimizer(2, options);
  std::vector<double> params = {1.0, -1.0};
  const std::vector<double> grad = {2.0, -4.0};
  optimizer.Step(params, grad);
  EXPECT_DOUBLE_EQ(params[0], 1.0 - 0.5 * 2.0);
  EXPECT_DOUBLE_EQ(params[1], -1.0 + 0.5 * 4.0);
}

TEST(SgdOptimizerTest, MomentumAccumulates) {
  SgdOptions options;
  options.learning_rate = 1.0;
  options.momentum = 0.5;
  options.weight_decay = 0.0;
  SgdOptimizer optimizer(1, options);
  std::vector<double> params = {0.0};
  const std::vector<double> grad = {1.0};
  optimizer.Step(params, grad);  // v=1, p=-1
  EXPECT_DOUBLE_EQ(params[0], -1.0);
  optimizer.Step(params, grad);  // v=1.5, p=-2.5
  EXPECT_DOUBLE_EQ(params[0], -2.5);
}

TEST(SgdOptimizerTest, WeightDecayShrinksParameters) {
  SgdOptions options;
  options.learning_rate = 0.1;
  options.momentum = 0.0;
  options.weight_decay = 0.5;
  SgdOptimizer optimizer(1, options);
  std::vector<double> params = {2.0};
  const std::vector<double> grad = {0.0};
  optimizer.Step(params, grad);
  // p -= lr * wd * p = 2 - 0.1*0.5*2 = 1.9.
  EXPECT_DOUBLE_EQ(params[0], 1.9);
}

TEST(SgdOptimizerTest, ResetMomentumClearsVelocity) {
  SgdOptions options;
  options.learning_rate = 1.0;
  options.momentum = 0.9;
  options.weight_decay = 0.0;
  SgdOptimizer optimizer(1, options);
  std::vector<double> params = {0.0};
  optimizer.Step(params, std::vector<double>{1.0});
  optimizer.ResetMomentum();
  optimizer.Step(params, std::vector<double>{0.0});
  // Velocity was cleared, so a zero gradient moves nothing.
  EXPECT_DOUBLE_EQ(params[0], -1.0);
}

TEST(SgdOptimizerTest, ConvergesOnQuadratic) {
  // f(x) = 0.5 * (x - 3)^2, gradient x - 3.
  SgdOptions options;
  options.learning_rate = 0.1;
  options.momentum = 0.9;
  options.weight_decay = 0.0;
  SgdOptimizer optimizer(1, options);
  std::vector<double> x = {0.0};
  for (int i = 0; i < 300; ++i) {
    const std::vector<double> grad = {x[0] - 3.0};
    optimizer.Step(x, grad);
  }
  EXPECT_NEAR(x[0], 3.0, 1e-6);
}

TEST(SgdOptimizerTest, RejectsInvalidOptions) {
  SgdOptions bad_lr;
  bad_lr.learning_rate = 0.0;
  EXPECT_DEATH({ SgdOptimizer o(1, bad_lr); }, "Check failed");
  SgdOptions bad_momentum;
  bad_momentum.momentum = 1.0;
  EXPECT_DEATH({ SgdOptimizer o(1, bad_momentum); }, "Check failed");
}

TEST(ConstantLrTest, NeverChanges) {
  ConstantLr schedule(0.05);
  EXPECT_DOUBLE_EQ(schedule.initial_learning_rate(), 0.05);
  EXPECT_DOUBLE_EQ(schedule.OnEpochEnd(10, 1.0), 0.05);
  EXPECT_DOUBLE_EQ(schedule.OnEpochEnd(100, 0.0), 0.05);
}

TEST(StepDecayLrTest, DecaysAtMilestones) {
  StepDecayLr schedule(0.1, 0.1, {3, 6});
  EXPECT_DOUBLE_EQ(schedule.OnEpochEnd(1, 1.0), 0.1);
  EXPECT_DOUBLE_EQ(schedule.OnEpochEnd(2, 1.0), 0.1);
  EXPECT_NEAR(schedule.OnEpochEnd(3, 1.0), 0.01, 1e-12);
  EXPECT_NEAR(schedule.OnEpochEnd(4, 1.0), 0.01, 1e-12);
  EXPECT_NEAR(schedule.OnEpochEnd(6, 1.0), 0.001, 1e-12);
}

TEST(PlateauDecayLrTest, DecaysOnlyWhenLossStalls) {
  PlateauDecayLr schedule(0.1, 0.1, /*patience=*/2);
  // Loss improving: no decay.
  EXPECT_DOUBLE_EQ(schedule.OnEpochEnd(0, 2.0), 0.1);
  EXPECT_DOUBLE_EQ(schedule.OnEpochEnd(1, 1.5), 0.1);
  EXPECT_DOUBLE_EQ(schedule.OnEpochEnd(2, 1.0), 0.1);
  // Two stale epochs -> decay by 10.
  EXPECT_DOUBLE_EQ(schedule.OnEpochEnd(3, 1.0), 0.1);
  EXPECT_NEAR(schedule.OnEpochEnd(4, 1.0), 0.01, 1e-12);
  // Improvement resets the counter at the new rate.
  EXPECT_NEAR(schedule.OnEpochEnd(5, 0.5), 0.01, 1e-12);
}

TEST(PlateauDecayLrTest, MinDeltaGuardsAgainstNoise) {
  PlateauDecayLr schedule(0.1, 0.1, /*patience=*/1, /*min_delta=*/0.1);
  EXPECT_DOUBLE_EQ(schedule.OnEpochEnd(0, 1.0), 0.1);
  // An improvement smaller than min_delta counts as stale.
  EXPECT_NEAR(schedule.OnEpochEnd(1, 0.95), 0.01, 1e-12);
}

TEST(LrScheduleCloneTest, CloneIsIndependent) {
  StepDecayLr schedule(0.1, 0.5, {1});
  auto clone = schedule.Clone();
  EXPECT_NEAR(schedule.OnEpochEnd(1, 1.0), 0.05, 1e-12);
  // The clone has not seen epoch 1 yet.
  EXPECT_NEAR(clone->OnEpochEnd(0, 1.0), 0.1, 1e-12);
}

}  // namespace
}  // namespace netmax::ml
