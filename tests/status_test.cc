#include "common/status.h"

#include <gtest/gtest.h>

namespace netmax {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad M");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad M");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad M");
}

TEST(StatusTest, EveryConstructorMapsToItsCode) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(InfeasibleError("x").code(), StatusCode::kInfeasible);
  EXPECT_EQ(UnboundedError("x").code(), StatusCode::kUnbounded);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status(), Status::Ok());
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("a"));
  EXPECT_FALSE(InvalidArgumentError("a") == InvalidArgumentError("b"));
  EXPECT_FALSE(InvalidArgumentError("a") == InternalError("a"));
}

TEST(StatusTest, CodeToStringCoversAllCodes) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInfeasible), "INFEASIBLE");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnbounded), "UNBOUNDED");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("hello");
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v->size(), 5u);
}

TEST(StatusOrTest, DiesOnValueAccessWhenError) {
  StatusOr<int> v = InternalError("boom");
  EXPECT_DEATH({ (void)v.value(); }, "boom");
}

Status FailsThenPropagates() {
  NETMAX_RETURN_IF_ERROR(InvalidArgumentError("inner"));
  return InternalError("unreachable");
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  Status s = FailsThenPropagates();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "inner");
}

Status Succeeds() { return Status::Ok(); }

TEST(StatusMacroTest, ReturnIfErrorPassesThroughOk) {
  auto fn = []() -> Status {
    NETMAX_RETURN_IF_ERROR(Succeeds());
    return AlreadyExistsError("reached end");
  };
  EXPECT_EQ(fn().code(), StatusCode::kAlreadyExists);
}

TEST(StatusMacroTest, CheckOkDiesOnError) {
  EXPECT_DEATH({ NETMAX_CHECK_OK(InternalError("kaput")); }, "kaput");
}

}  // namespace
}  // namespace netmax
