#include "common/status.h"

#include <iterator>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace netmax {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad M");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad M");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad M");
}

TEST(StatusTest, EveryConstructorMapsToItsCode) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(InfeasibleError("x").code(), StatusCode::kInfeasible);
  EXPECT_EQ(UnboundedError("x").code(), StatusCode::kUnbounded);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status(), Status::Ok());
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("a"));
  EXPECT_FALSE(InvalidArgumentError("a") == InvalidArgumentError("b"));
  EXPECT_FALSE(InvalidArgumentError("a") == InternalError("a"));
}

TEST(StatusTest, CodeToStringCoversAllCodes) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInfeasible), "INFEASIBLE");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnbounded), "UNBOUNDED");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("hello");
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v->size(), 5u);
}

TEST(StatusOrTest, DiesOnValueAccessWhenError) {
  StatusOr<int> v = InternalError("boom");
  EXPECT_DEATH({ (void)v.value(); }, "boom");
}

Status FailsThenPropagates() {
  NETMAX_RETURN_IF_ERROR(InvalidArgumentError("inner"));
  return InternalError("unreachable");
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  Status s = FailsThenPropagates();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "inner");
}

Status Succeeds() { return Status::Ok(); }

TEST(StatusMacroTest, ReturnIfErrorPassesThroughOk) {
  auto fn = []() -> Status {
    NETMAX_RETURN_IF_ERROR(Succeeds());
    return AlreadyExistsError("reached end");
  };
  EXPECT_EQ(fn().code(), StatusCode::kAlreadyExists);
}

TEST(StatusMacroTest, CheckOkDiesOnError) {
  EXPECT_DEATH({ NETMAX_CHECK_OK(InternalError("kaput")); }, "kaput");
}

TEST(StatusTest, CodeToStringRoundTripsEveryCode) {
  // Every code has a distinct, non-empty name (no fallthrough to a shared
  // "UNKNOWN" string), so error text always identifies the code.
  const StatusCode codes[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kNotFound,     StatusCode::kAlreadyExists,
      StatusCode::kFailedPrecondition,
      StatusCode::kOutOfRange,   StatusCode::kUnimplemented,
      StatusCode::kInternal,     StatusCode::kInfeasible,
      StatusCode::kUnbounded,
  };
  std::set<std::string> names;
  for (const StatusCode code : codes) {
    const std::string name = StatusCodeToString(code);
    EXPECT_FALSE(name.empty());
    names.insert(name);
  }
  EXPECT_EQ(names.size(), std::size(codes));
}

TEST(StatusOrTest, CopyAndMoveSemantics) {
  StatusOr<std::vector<int>> original = std::vector<int>{1, 2, 3};
  StatusOr<std::vector<int>> copy = original;  // copy keeps the source intact
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(copy.value(), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(original.value(), (std::vector<int>{1, 2, 3}));

  StatusOr<std::vector<int>> moved = std::move(original);
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(moved.value(), (std::vector<int>{1, 2, 3}));

  StatusOr<std::vector<int>> error = NotFoundError("gone");
  StatusOr<std::vector<int>> error_copy = error;
  EXPECT_FALSE(error_copy.ok());
  EXPECT_EQ(error_copy.status(), error.status());
}

TEST(StatusOrTest, ConstAccessors) {
  const StatusOr<int> v = 7;
  EXPECT_EQ(v.value(), 7);
  EXPECT_EQ(*v, 7);
  const StatusOr<std::string> s = std::string("abc");
  EXPECT_EQ(s->size(), 3u);
}

StatusOr<int> ParseEven(int n) {
  if (n % 2 != 0) return InvalidArgumentError("odd");
  return n;
}

TEST(StatusMacroTest, AssignOrReturnUnwrapsAndPropagates) {
  auto doubled = [](int n) -> StatusOr<int> {
    NETMAX_ASSIGN_OR_RETURN(const int even, ParseEven(n));
    return even * 2;
  };
  ASSERT_TRUE(doubled(4).ok());
  EXPECT_EQ(doubled(4).value(), 8);
  EXPECT_EQ(doubled(3).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(doubled(3).status().message(), "odd");
}

StatusOr<int> SumPair(int a, int b) { return a + b; }

TEST(StatusMacroTest, AssignOrReturnAcceptsTopLevelCommas) {
  // The variadic form: the unwrapped expression may be a call with several
  // arguments without extra parentheses.
  auto fn = []() -> StatusOr<int> {
    NETMAX_ASSIGN_OR_RETURN(const int sum, SumPair(20, 22));
    return sum;
  };
  EXPECT_EQ(fn().value(), 42);
}

TEST(StatusMacroTest, ExpectOkAcceptsStatusAndStatusOr) {
  NETMAX_EXPECT_OK(Status::Ok());
  NETMAX_EXPECT_OK(SumPair(1, 2));
  NETMAX_EXPECT_OK(ParseEven(2));
}

}  // namespace
}  // namespace netmax
