// Tests for the gradient compression family: spec parsing, deterministic
// top-k selection with the fixed tie-break, int8 stochastic quantization's
// error bound and reproducibility, and the layer-wise mask schedule.

#include "ml/compression.h"

#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "net/wire_format.h"

namespace netmax::ml {
namespace {

TEST(CompressionSpecTest, ParsesTheFullGrammar) {
  auto none = ParseCompressionSpec("none");
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none->kind, CompressionKind::kNone);
  EXPECT_FALSE(none->enabled());

  auto topk = ParseCompressionSpec("topk:0.05");
  ASSERT_TRUE(topk.ok());
  EXPECT_EQ(topk->kind, CompressionKind::kTopK);
  EXPECT_DOUBLE_EQ(topk->topk_fraction, 0.05);
  EXPECT_EQ(CompressionSpecName(*topk), "topk:0.05");

  auto int8 = ParseCompressionSpec("int8");
  ASSERT_TRUE(int8.ok());
  EXPECT_EQ(int8->kind, CompressionKind::kInt8);

  auto layerwise = ParseCompressionSpec("layerwise:3");
  ASSERT_TRUE(layerwise.ok());
  EXPECT_EQ(layerwise->kind, CompressionKind::kLayerwise);
  EXPECT_EQ(layerwise->layerwise_period, 3);
  EXPECT_EQ(CompressionSpecName(*layerwise), "layerwise:3");
}

TEST(CompressionSpecTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(ParseCompressionSpec("").ok());
  EXPECT_FALSE(ParseCompressionSpec("gzip").ok());
  EXPECT_FALSE(ParseCompressionSpec("topk:").ok());
  EXPECT_FALSE(ParseCompressionSpec("topk:0").ok());
  EXPECT_FALSE(ParseCompressionSpec("topk:1.5").ok());
  EXPECT_FALSE(ParseCompressionSpec("topk:abc").ok());
  EXPECT_FALSE(ParseCompressionSpec("layerwise:0").ok());
  EXPECT_FALSE(ParseCompressionSpec("layerwise:x").ok());
}

CompressionSpec TopKSpec(double fraction) {
  CompressionSpec spec;
  spec.kind = CompressionKind::kTopK;
  spec.topk_fraction = fraction;
  return spec;
}

TEST(TopKTest, KeepsLargestMagnitudesAndZeroesTheRest) {
  GradientCompressor compressor(TopKSpec(0.25), {8});
  std::vector<double> values = {0.1, -5.0, 0.2, 3.0, -0.3, 0.05, 1.0, -0.4};
  Rng rng(1);
  compressor.Transform(values, /*round=*/0, rng);
  // kept = round(0.25 * 8) = 2: the -5.0 and 3.0 survive (through f32).
  const std::vector<double> expected = {
      0.0, static_cast<double>(static_cast<float>(-5.0)),
      0.0, static_cast<double>(static_cast<float>(3.0)),
      0.0, 0.0, 0.0, 0.0};
  EXPECT_EQ(values, expected);
}

TEST(TopKTest, TiesBreakTowardTheLowerIndex) {
  GradientCompressor compressor(TopKSpec(0.5), {4});
  // All magnitudes equal: kept = 2, and the fixed tie-break must select
  // indexes 0 and 1 regardless of sign.
  std::vector<double> values = {-1.0, 1.0, 1.0, -1.0};
  Rng rng(1);
  compressor.Transform(values, /*round=*/0, rng);
  EXPECT_EQ(values, (std::vector<double>{-1.0, 1.0, 0.0, 0.0}));
}

TEST(TopKTest, SelectionIsAPureFunctionOfTheValues) {
  GradientCompressor compressor(TopKSpec(0.1), {512});
  Rng data_rng(99);
  std::vector<double> values(512);
  for (double& v : values) v = data_rng.Uniform(-1.0, 1.0);
  std::vector<double> a = values;
  std::vector<double> b = values;
  // Different RNG states and rounds: top-k consumes neither.
  Rng rng_a(1);
  Rng rng_b(123456);
  rng_b.Uniform();
  compressor.Transform(a, /*round=*/3, rng_a);
  compressor.Transform(b, /*round=*/17, rng_b);
  EXPECT_EQ(a, b);
}

TEST(TopKTest, KeepsAtLeastOneValue) {
  GradientCompressor compressor(TopKSpec(0.001), {4});
  std::vector<double> values = {0.5, -2.0, 0.25, 1.0};
  Rng rng(1);
  compressor.Transform(values, /*round=*/0, rng);
  int nonzero = 0;
  for (const double v : values) nonzero += v != 0.0;
  EXPECT_EQ(nonzero, 1);
  EXPECT_EQ(values[1], static_cast<double>(static_cast<float>(-2.0)));
}

CompressionSpec Int8Spec() {
  CompressionSpec spec;
  spec.kind = CompressionKind::kInt8;
  return spec;
}

TEST(Int8Test, QuantizationErrorIsWithinOneLevelPerValue) {
  GradientCompressor compressor(Int8Spec(), {1000});
  Rng data_rng(7);
  std::vector<double> values(1000);
  for (double& v : values) v = data_rng.Uniform(-4.0, 4.0);
  std::vector<double> quantized = values;
  Rng rng(42);
  compressor.Transform(quantized, /*round=*/0, rng);
  // Per 256-value block the scale is max|v| / 127; stochastic rounding moves
  // each value by strictly less than one level. The f32 scale and product
  // round-offs add at most a few ulps, covered by the 1.01 slack.
  for (size_t start = 0; start < values.size();
       start += static_cast<size_t>(net::kInt8BlockValues)) {
    const size_t end =
        std::min(values.size(),
                 start + static_cast<size_t>(net::kInt8BlockValues));
    double max_abs = 0.0;
    for (size_t i = start; i < end; ++i) {
      max_abs = std::max(max_abs, std::fabs(values[i]));
    }
    const double level = max_abs / 127.0;
    for (size_t i = start; i < end; ++i) {
      EXPECT_LE(std::fabs(quantized[i] - values[i]), 1.01 * level)
          << "value " << i;
    }
  }
}

TEST(Int8Test, SameStreamStateReproducesTheSameBits) {
  GradientCompressor compressor(Int8Spec(), {300});
  Rng data_rng(3);
  std::vector<double> values(300);
  for (double& v : values) v = data_rng.Uniform(-1.0, 1.0);
  std::vector<double> a = values;
  std::vector<double> b = values;
  Rng rng_a(2026);
  Rng rng_b(2026);
  compressor.Transform(a, /*round=*/0, rng_a);
  compressor.Transform(b, /*round=*/0, rng_b);
  EXPECT_EQ(a, b);
  // And the draw count is deterministic too: both streams advanced in
  // lockstep, so a subsequent draw agrees bit for bit.
  EXPECT_EQ(rng_a.Uniform(), rng_b.Uniform());
}

TEST(Int8Test, AllZeroBlocksDrawNothing) {
  GradientCompressor compressor(Int8Spec(), {512});
  std::vector<double> values(512, 0.0);
  Rng rng(5);
  Rng untouched(5);
  compressor.Transform(values, /*round=*/0, rng);
  for (const double v : values) EXPECT_EQ(v, 0.0);
  EXPECT_EQ(rng.Uniform(), untouched.Uniform());
}

CompressionSpec LayerwiseSpec(int period) {
  CompressionSpec spec;
  spec.kind = CompressionKind::kLayerwise;
  spec.layerwise_period = period;
  return spec;
}

TEST(LayerwiseTest, AlternatingLayerScheduleRoundTrips) {
  // Three layers of sizes 2/3/1 under period 2: even rounds sync layers
  // {0, 2}, odd rounds layer {1}.
  GradientCompressor compressor(LayerwiseSpec(2), {2, 3, 1});
  Rng rng(1);
  std::vector<double> even = {1, 2, 3, 4, 5, 6};
  compressor.Transform(even, /*round=*/0, rng);
  EXPECT_EQ(even, (std::vector<double>{1, 2, 0, 0, 0, 6}));
  std::vector<double> odd = {1, 2, 3, 4, 5, 6};
  compressor.Transform(odd, /*round=*/1, rng);
  EXPECT_EQ(odd, (std::vector<double>{0, 0, 3, 4, 5, 0}));
  // Round 2 wraps back to the even mask; over any `period` consecutive
  // rounds every layer syncs exactly once.
  std::vector<double> wrap = {1, 2, 3, 4, 5, 6};
  compressor.Transform(wrap, /*round=*/2, rng);
  EXPECT_EQ(wrap, (std::vector<double>{1, 2, 0, 0, 0, 6}));
  EXPECT_EQ(compressor.ActiveValues(0) + compressor.ActiveValues(1), 6);
}

TEST(LayerwiseTest, PeriodOneSyncsEverything) {
  GradientCompressor compressor(LayerwiseSpec(1), {2, 3, 1});
  std::vector<double> values = {1, 2, 3, 4, 5, 6};
  Rng rng(1);
  compressor.Transform(values, /*round=*/5, rng);
  EXPECT_EQ(values, (std::vector<double>{1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(compressor.ActiveValues(5), 6);
}

TEST(DescribeTest, ByteCountsMatchTheWireFormulas) {
  const int64_t profile_values = 1'000'000;
  GradientCompressor none(CompressionSpec(), {10});
  EXPECT_EQ(none.Describe(profile_values, 0).PayloadBytes(),
            4 * profile_values);
  EXPECT_EQ(none.Describe(profile_values, 0).BytesSaved(), 0);

  GradientCompressor topk(TopKSpec(0.1), {10});
  EXPECT_EQ(topk.Describe(profile_values, 0).PayloadBytes(),
            net::kWireHeaderBytes + 8 * 100'000);

  GradientCompressor int8(Int8Spec(), {10});
  EXPECT_EQ(int8.Describe(profile_values, 0).PayloadBytes(),
            net::kWireHeaderBytes + profile_values +
                4 * ((profile_values + net::kInt8BlockValues - 1) /
                     net::kInt8BlockValues));

  // Layer-wise scales the simulated tensor by the proxy's active fraction:
  // layers 2/3/1 -> round 0 keeps 3 of 6 proxy values -> half the profile.
  GradientCompressor layerwise(LayerwiseSpec(2), {2, 3, 1});
  EXPECT_EQ(layerwise.Describe(profile_values, 0).PayloadBytes(),
            4 * (profile_values / 2));
  EXPECT_EQ(layerwise.Describe(profile_values, 1).PayloadBytes(),
            4 * (profile_values / 2));
}

TEST(DescribeTest, DefaultCompressorIsTheIdentity) {
  GradientCompressor compressor;
  EXPECT_FALSE(compressor.spec().enabled());
  std::vector<double> values = {1.5, -2.5};
  Rng rng(1);
  compressor.Transform(values, /*round=*/0, rng);
  EXPECT_EQ(values, (std::vector<double>{1.5, -2.5}));
  EXPECT_EQ(compressor.Describe(100, 0).PayloadBytes(), 400);
}

}  // namespace
}  // namespace netmax::ml
