// Algorithm-specific behaviour tests beyond the smoke suite: SAPS's static
// subgraph construction, Prague's group economics, the PS baselines'
// central-congestion asymmetry, gossip's non-blocking iterations, and the
// monitor extension's effect on AD-PSGD.

#include <gtest/gtest.h>

#include "algos/registry.h"
#include "algos/saps_psgd.h"
#include "core/experiment.h"

namespace netmax {
namespace {

using core::ExperimentConfig;
using core::NetworkScenario;

ExperimentConfig BaseConfig() {
  ExperimentConfig config;
  config.dataset.name = "algos";
  config.dataset.num_classes = 4;
  config.dataset.feature_dim = 12;
  config.dataset.num_train = 512;
  config.dataset.num_test = 128;
  config.dataset.class_separation = 4.0;
  config.hidden_layers = {12};
  config.num_workers = 4;
  config.batch_size = 16;
  config.max_epochs = 3;
  config.network = NetworkScenario::kHeterogeneousStatic;
  config.monitor_period_seconds = 5.0;
  config.generator.outer_rounds = 4;
  config.generator.inner_rounds = 4;
  config.seed = 11;
  return config;
}

core::RunResult RunAlgo(const std::string& name,
                        const ExperimentConfig& config) {
  auto algorithm = algos::MakeAlgorithm(name);
  NETMAX_CHECK_OK(algorithm.status());
  auto result = (*algorithm)->Run(config);
  NETMAX_CHECK_OK(result.status());
  return std::move(result.value());
}

// --- SAPS subgraph -----------------------------------------------------------

TEST(SapsSubgraphTest, IsConnectedSpanningStructure) {
  linalg::Matrix cost(5, 5, 1.0);
  for (int i = 0; i < 5; ++i) cost(i, i) = 0.0;
  net::Topology subgraph = algos::BuildFastLinkSubgraph(cost);
  EXPECT_EQ(subgraph.num_nodes(), 5);
  EXPECT_TRUE(subgraph.IsConnected());
  EXPECT_GE(subgraph.num_edges(), 4);  // at least a spanning tree
}

TEST(SapsSubgraphTest, AvoidsExpensiveLinks) {
  // Node pair (0, 3) is 100x more expensive than everything else: the
  // subgraph must not contain it (cheaper spanning alternatives exist).
  const int n = 6;
  linalg::Matrix cost(n, n, 1.0);
  for (int i = 0; i < n; ++i) cost(i, i) = 0.0;
  cost(0, 3) = 100.0;
  cost(3, 0) = 100.0;
  net::Topology subgraph = algos::BuildFastLinkSubgraph(cost);
  EXPECT_FALSE(subgraph.AreNeighbors(0, 3));
  EXPECT_TRUE(subgraph.IsConnected());
}

TEST(SapsSubgraphTest, MstFollowsCheapChain) {
  // Chain costs: consecutive nodes cheap (1), everything else expensive (50).
  const int n = 5;
  linalg::Matrix cost(n, n, 50.0);
  for (int i = 0; i < n; ++i) cost(i, i) = 0.0;
  for (int i = 0; i + 1 < n; ++i) {
    cost(i, i + 1) = 1.0;
    cost(i + 1, i) = 1.0;
  }
  net::Topology subgraph = algos::BuildFastLinkSubgraph(cost);
  for (int i = 0; i + 1 < n; ++i) EXPECT_TRUE(subgraph.AreNeighbors(i, i + 1));
}

TEST(SapsSubgraphTest, SingleNodeIsTrivial) {
  linalg::Matrix cost(1, 1, 0.0);
  net::Topology subgraph = algos::BuildFastLinkSubgraph(cost);
  EXPECT_EQ(subgraph.num_nodes(), 1);
  EXPECT_EQ(subgraph.num_edges(), 0);
}

// --- Behavioural comparisons -------------------------------------------------

TEST(GossipTest, IterationsDoNotBlockOnNetwork) {
  // Push gossip never waits for transfers, so for the same epoch budget its
  // total virtual time tracks pure compute and is far below AD-PSGD's
  // (which blocks on pulls over the same slow links).
  const ExperimentConfig config = BaseConfig();
  const auto gossip = RunAlgo("gossip", config);
  const auto adpsgd = RunAlgo("adpsgd", config);
  EXPECT_LT(gossip.total_virtual_seconds, 0.5 * adpsgd.total_virtual_seconds);
  // And its epoch cost is all compute.
  EXPECT_NEAR(gossip.avg_epoch_cost.communication_seconds, 0.0, 1e-9);
}

TEST(PsTest, SyncRoundsPacedBySlowestLink) {
  // PS-syn serializes all uploads+downloads at the PS NIC, so it is slower
  // than PS-asyn (which overlaps worker compute with other workers' rounds).
  const ExperimentConfig config = BaseConfig();
  const auto ps_sync = RunAlgo("ps-sync", config);
  const auto ps_async = RunAlgo("ps-async", config);
  EXPECT_GT(ps_sync.total_virtual_seconds, ps_async.total_virtual_seconds);
}

TEST(PsTest, SyncKeepsReplicasIdentical) {
  const auto result = RunAlgo("ps-sync", BaseConfig());
  EXPECT_NEAR(result.consensus_distance, 0.0, 1e-9);
}

TEST(PragueTest, GroupAveragingKeepsConsensusTight) {
  const auto result = RunAlgo("prague", BaseConfig());
  // Groups of >= 2 average entire models frequently; after only 3 epochs the
  // replicas remain within a small multiple of the parameter noise scale.
  EXPECT_LT(result.consensus_distance, 2.0);
  EXPECT_GT(result.total_local_iterations, 0);
}

TEST(AllreduceTest, ReplicasStayBitIdentical) {
  const auto result = RunAlgo("allreduce", BaseConfig());
  EXPECT_EQ(result.consensus_distance, 0.0);
}

TEST(MonitorExtensionTest, AdPsgdWithMonitorIsFasterOnHeterogeneousNetwork) {
  // More workers give the averaging-mode policy room to steer around the
  // inter-machine links (a 4-worker cluster has too few fast alternatives).
  ExperimentConfig config = BaseConfig();
  config.num_workers = 8;
  config.dataset.num_train = 1024;
  config.max_epochs = 6;
  const auto plain = RunAlgo("adpsgd", config);
  const auto monitored = RunAlgo("adpsgd+monitor", config);
  EXPECT_GT(monitored.policies_generated, 0);
  EXPECT_LT(monitored.total_virtual_seconds, plain.total_virtual_seconds);
}

TEST(SapsTest, StaticSubgraphBeatsUniformOnStaticNetwork) {
  // On a *static* heterogeneous network SAPS's fast-link subgraph avoids the
  // slow inter-machine links, so it finishes faster than plain AD-PSGD.
  ExperimentConfig config = BaseConfig();
  config.network = NetworkScenario::kHeterogeneousStatic;
  const auto saps = RunAlgo("saps", config);
  const auto adpsgd = RunAlgo("adpsgd", config);
  EXPECT_LT(saps.total_virtual_seconds, adpsgd.total_virtual_seconds);
}

TEST(WanTest, AllWanAlgorithmsTrain) {
  ExperimentConfig config = BaseConfig();
  config.network = NetworkScenario::kWan;
  config.num_workers = 6;
  config.compute_multiplier = 4.0;
  for (const char* name : {"netmax", "adpsgd", "ps-sync", "ps-async"}) {
    const auto result = RunAlgo(name, config);
    EXPECT_GT(result.final_accuracy, 0.5) << name;
    EXPECT_GT(result.total_virtual_seconds, 0.0) << name;
  }
}

TEST(RegistryTest, AllNamesConstructible) {
  for (const std::string& name : algos::AlgorithmNames()) {
    auto algorithm = algos::MakeAlgorithm(name);
    EXPECT_TRUE(algorithm.ok()) << name;
  }
  EXPECT_FALSE(algos::MakeAlgorithm("nonexistent").ok());
}

TEST(RegistryTest, PaperComparisonSetMatchesSectionV) {
  const auto names = algos::PaperComparisonAlgorithms();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "prague");
  EXPECT_EQ(names[1], "allreduce");
  EXPECT_EQ(names[2], "adpsgd");
  EXPECT_EQ(names[3], "netmax");
}

}  // namespace
}  // namespace netmax
