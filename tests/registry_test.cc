// The algorithm registry: every built-in name resolves to a working factory,
// unknown names are NotFound, and registration rejects duplicates and
// malformed arguments.

#include "algos/registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "core/experiment.h"

namespace netmax {
namespace {

// A do-nothing algorithm for registration tests.
class NoopAlgorithm : public core::TrainingAlgorithm {
 public:
  std::string name() const override { return "noop"; }
  StatusOr<core::RunResult> Run(
      const core::ExperimentConfig& /*config*/) const override {
    return core::RunResult{};
  }
};

algos::AlgorithmFactory NoopFactory() {
  return [] { return std::make_unique<NoopAlgorithm>(); };
}

TEST(RegistryTest, EveryRegisteredNameResolves) {
  const std::vector<std::string> names = algos::AlgorithmNames();
  ASSERT_FALSE(names.empty());
  for (const std::string& name : names) {
    auto algorithm = algos::MakeAlgorithm(name);
    ASSERT_TRUE(algorithm.ok()) << name << ": " << algorithm.status();
    ASSERT_NE(*algorithm, nullptr) << name;
  }
}

TEST(RegistryTest, BuiltinsArePresentInDocumentedOrder) {
  const std::vector<std::string> expected = {
      "netmax", "adpsgd",  "allreduce", "prague",         "gossip",
      "saps",   "ps-sync", "ps-async",  "adpsgd+monitor"};
  const std::vector<std::string> names = algos::AlgorithmNames();
  ASSERT_GE(names.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(names[i], expected[i]) << "at index " << i;
  }
}

TEST(RegistryTest, NamesAreUnique) {
  const std::vector<std::string> names = algos::AlgorithmNames();
  const std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());
}

TEST(RegistryTest, UnknownNameIsNotFound) {
  auto algorithm = algos::MakeAlgorithm("nonexistent");
  ASSERT_FALSE(algorithm.ok());
  EXPECT_EQ(algorithm.status().code(), StatusCode::kNotFound);
}

TEST(RegistryTest, DuplicateRegistrationIsRejected) {
  ASSERT_TRUE(algos::RegisterAlgorithm("registry-test-dup", NoopFactory())
                  .ok());
  const Status again =
      algos::RegisterAlgorithm("registry-test-dup", NoopFactory());
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.code(), StatusCode::kAlreadyExists);
  // The registry still lists the name exactly once and it still resolves.
  const std::vector<std::string> names = algos::AlgorithmNames();
  EXPECT_EQ(std::count(names.begin(), names.end(), "registry-test-dup"), 1);
  EXPECT_TRUE(algos::MakeAlgorithm("registry-test-dup").ok());
}

TEST(RegistryTest, ReRegisteringBuiltinIsRejected) {
  const Status status = algos::RegisterAlgorithm("netmax", NoopFactory());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kAlreadyExists);
}

TEST(RegistryTest, EmptyNameAndNullFactoryAreInvalid) {
  EXPECT_EQ(algos::RegisterAlgorithm("", NoopFactory()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(algos::RegisterAlgorithm("registry-test-null", nullptr).code(),
            StatusCode::kInvalidArgument);
  // The failed registrations must not leak into the name list.
  const std::vector<std::string> names = algos::AlgorithmNames();
  EXPECT_EQ(std::count(names.begin(), names.end(), ""), 0);
  EXPECT_EQ(std::count(names.begin(), names.end(), "registry-test-null"), 0);
}

TEST(RegistryTest, FactoryReturningNullIsAnInternalError) {
  ASSERT_TRUE(algos::RegisterAlgorithm("registry-test-nullresult", [] {
                return std::unique_ptr<core::TrainingAlgorithm>();
              }).ok());
  auto algorithm = algos::MakeAlgorithm("registry-test-nullresult");
  ASSERT_FALSE(algorithm.ok());
  EXPECT_EQ(algorithm.status().code(), StatusCode::kInternal);
}

TEST(RegistryTest, RegisteredFactoryIsUsedByMake) {
  ASSERT_TRUE(
      algos::RegisterAlgorithm("registry-test-make", NoopFactory()).ok());
  auto algorithm = algos::MakeAlgorithm("registry-test-make");
  ASSERT_TRUE(algorithm.ok());
  EXPECT_EQ((*algorithm)->name(), "noop");
}

}  // namespace
}  // namespace netmax
