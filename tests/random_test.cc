#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace netmax {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next64() == b.Next64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(4, 4), 4);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, GaussianScaled) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, DiscreteMatchesWeights) {
  Rng rng(19);
  const std::vector<double> p = {0.1, 0.0, 0.6, 0.3};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<size_t>(rng.Discrete(p))];
  EXPECT_EQ(counts[1], 0);  // zero-probability entry never drawn
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.3, 0.01);
}

TEST(RngTest, DiscreteUnnormalizedWeights) {
  Rng rng(23);
  const std::vector<double> w = {2.0, 6.0};  // sums to 8, not 1
  int zero = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (rng.Discrete(w) == 0) ++zero;
  }
  EXPECT_NEAR(zero / static_cast<double>(n), 0.25, 0.01);
}

TEST(RngTest, DiscreteDiesOnAllZero) {
  Rng rng(23);
  const std::vector<double> w = {0.0, 0.0};
  EXPECT_DEATH({ (void)rng.Discrete(w); }, "zero");
}

TEST(RngTest, ForkIsIndependentOfParentSequence) {
  Rng parent(99);
  Rng child_before = parent.Fork(0);
  (void)parent.Next64();
  (void)parent.Next64();
  Rng child_after = parent.Fork(0);
  // Forking does not depend on how far the parent stream has advanced.
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(child_before.Next64(), child_after.Next64());
  }
}

TEST(RngTest, ForkStreamsAreDistinct) {
  Rng parent(99);
  Rng a = parent.Fork(0);
  Rng b = parent.Fork(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next64() == b.Next64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(31);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(31);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<size_t>(i)] = i;
  rng.Shuffle(v);
  int moved = 0;
  for (int i = 0; i < 100; ++i) {
    if (v[static_cast<size_t>(i)] != i) ++moved;
  }
  EXPECT_GT(moved, 50);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(37);
  const std::vector<int> sample = rng.SampleWithoutReplacement(10, 6);
  EXPECT_EQ(sample.size(), 6u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 6u);
  for (int v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 10);
  }
}

TEST(RngTest, SampleWholePopulation) {
  Rng rng(37);
  std::vector<int> sample = rng.SampleWithoutReplacement(5, 5);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(sample, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SplitMix64Test, KnownSequenceIsStable) {
  uint64_t state = 0;
  const uint64_t a = SplitMix64(state);
  const uint64_t b = SplitMix64(state);
  uint64_t state2 = 0;
  EXPECT_EQ(SplitMix64(state2), a);
  EXPECT_EQ(SplitMix64(state2), b);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace netmax
