#include "ml/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

#include "ml/linear_model.h"
#include "ml/model_profile.h"

namespace netmax::ml {
namespace {

TEST(MetricsTest, AccuracyOfPerfectAndBrokenModel) {
  // Single-feature 2-class problem separable by sign.
  Dataset data(1, 2);
  data.Add(std::vector<double>{1.0}, 1);
  data.Add(std::vector<double>{-1.0}, 0);
  data.Add(std::vector<double>{2.0}, 1);
  data.Add(std::vector<double>{-2.0}, 0);

  LinearModel model(1, 2);
  // W = [[-1],[1]], b = 0 classifies by sign correctly.
  model.parameters()[0] = -1.0;
  model.parameters()[1] = 1.0;
  EXPECT_DOUBLE_EQ(Accuracy(model, data), 1.0);

  // Flip the weights: always wrong.
  model.parameters()[0] = 1.0;
  model.parameters()[1] = -1.0;
  EXPECT_DOUBLE_EQ(Accuracy(model, data), 0.0);
}

TEST(MetricsTest, AverageLossOfUniformModelIsLogC) {
  Dataset data(2, 4);
  data.Add(std::vector<double>{0.5, -0.5}, 2);
  data.Add(std::vector<double>{1.0, 1.0}, 0);
  LinearModel model(2, 4);  // zero weights -> uniform softmax
  EXPECT_NEAR(AverageLoss(model, data), std::log(4.0), 1e-12);
}

TEST(SeriesTest, TimeToThresholdInterpolates) {
  Series s = {{0.0, 2.0}, {10.0, 1.0}, {20.0, 0.5}};
  auto t = TimeToThreshold(s, 0.75);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 15.0, 1e-12);
}

TEST(SeriesTest, TimeToThresholdAtFirstPoint) {
  Series s = {{5.0, 0.3}, {10.0, 0.2}};
  auto t = TimeToThreshold(s, 0.5);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(*t, 5.0);
}

TEST(SeriesTest, TimeToThresholdNeverReached) {
  Series s = {{0.0, 2.0}, {10.0, 1.5}};
  EXPECT_FALSE(TimeToThreshold(s, 1.0).has_value());
}

TEST(SeriesTest, TimeToThresholdAboveForAccuracyCurves) {
  Series s = {{0.0, 0.1}, {10.0, 0.5}, {20.0, 0.9}};
  auto t = TimeToThresholdAbove(s, 0.7);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 15.0, 1e-12);
  EXPECT_FALSE(TimeToThresholdAbove(s, 0.95).has_value());
}

TEST(SeriesTest, FinalAndMinValues) {
  Series s = {{0.0, 2.0}, {1.0, 0.5}, {2.0, 0.8}};
  EXPECT_DOUBLE_EQ(FinalValue(s), 0.8);
  EXPECT_DOUBLE_EQ(MinValue(s), 0.5);
}

TEST(ModelProfileTest, PaperParameterCounts) {
  EXPECT_EQ(MobileNetProfile().num_parameters, 4'200'000);
  EXPECT_EQ(GoogLeNetProfile().num_parameters, 6'800'000);
  EXPECT_EQ(ResNet18Profile().num_parameters, 11'700'000);
  EXPECT_EQ(ResNet50Profile().num_parameters, 25'600'000);
  EXPECT_EQ(Vgg19Profile().num_parameters, 143'700'000);
}

TEST(ModelProfileTest, MessageBytesIsFp32) {
  EXPECT_EQ(ResNet18Profile().message_bytes(), 11'700'000 * 4);
}

TEST(ModelProfileTest, LookupByName) {
  auto profile = ModelProfileByName("vgg19");
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->name, "vgg19");
  EXPECT_FALSE(ModelProfileByName("alexnet").ok());
}

TEST(ModelProfileTest, ComputeCostOrderingMatchesModelSizeOrdering) {
  // Bigger models must cost more compute per batch.
  EXPECT_LT(MobileNetProfile().compute_seconds,
            GoogLeNetProfile().compute_seconds);
  EXPECT_LT(GoogLeNetProfile().compute_seconds,
            ResNet18Profile().compute_seconds);
  EXPECT_LT(ResNet18Profile().compute_seconds,
            ResNet50Profile().compute_seconds);
  EXPECT_LT(ResNet50Profile().compute_seconds, Vgg19Profile().compute_seconds);
}

}  // namespace
}  // namespace netmax::ml
