// Intra-worker gradient sharding (ml/sharding.h): the leaf geometry is a
// fixed function of the batch size, and ShardedLossAndGradient returns the
// exact same bits — loss and every gradient coordinate — for any (pool,
// shards) combination, because sharding only changes which task evaluates a
// leaf, never the summation shape.

#include "ml/sharding.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/thread_pool.h"
#include "ml/conv_net.h"
#include "ml/dataset.h"
#include "ml/linear_model.h"
#include "ml/mlp.h"
#include "ml/model.h"
#include "ml/workspace.h"

namespace netmax::ml {
namespace {

Dataset RandomDataset(int feature_dim, int num_classes, int count,
                      uint64_t seed) {
  SyntheticSpec spec;
  spec.feature_dim = feature_dim;
  spec.num_classes = num_classes;
  spec.num_train = count;
  spec.num_test = 1;
  spec.seed = seed;
  return GenerateSynthetic(spec).train;
}

std::vector<int> RandomBatch(int batch, int dataset_size, uint64_t seed) {
  Rng rng(seed);
  std::vector<int> indices(static_cast<size_t>(batch));
  for (int& v : indices) {
    v = static_cast<int>(rng.UniformInt(0, dataset_size - 1));
  }
  return indices;
}

TEST(ShardingGeometryTest, LeafCountAndRangesAreFixedChunks) {
  EXPECT_EQ(GradientLeafCount(1), 1);
  EXPECT_EQ(GradientLeafCount(kGradientLeafSamples), 1);
  EXPECT_EQ(GradientLeafCount(kGradientLeafSamples + 1), 2);
  EXPECT_EQ(GradientLeafCount(4 * kGradientLeafSamples), 4);

  const size_t batch = 3 * kGradientLeafSamples + 2;
  ASSERT_EQ(GradientLeafCount(batch), 4);
  size_t covered = 0;
  for (int l = 0; l < 4; ++l) {
    const LeafRange range = GradientLeafRange(batch, l);
    EXPECT_EQ(range.begin, covered) << "leaf " << l;
    EXPECT_GT(range.size(), 0u) << "leaf " << l;
    EXPECT_LE(range.size(), kGradientLeafSamples) << "leaf " << l;
    covered = range.end;
  }
  EXPECT_EQ(covered, batch);  // leaves tile the batch exactly
  EXPECT_EQ(GradientLeafRange(batch, 3).size(), 2u);  // remainder leaf
}

// Runs the serial reference and every (pool_threads, shards) variant on the
// same model/batch and demands exact equality.
void ExpectShardingInvariant(const Model& model, const Dataset& data,
                             std::span<const int> batch) {
  const size_t width = static_cast<size_t>(model.num_parameters());
  TrainingWorkspace reference_workspace;
  std::vector<double> reference_gradient(width);
  const double reference_loss =
      model.LossAndGradient(data, batch, reference_gradient,
                            reference_workspace);

  for (const int pool_threads : {1, 3}) {
    ThreadPool pool(pool_threads);
    for (const int shards : {1, 2, 3, 5, 100}) {
      TrainingWorkspace workspace;
      std::vector<double> gradient(width);
      const double loss = ShardedLossAndGradient(
          model, data, batch, gradient, workspace, &pool, shards);
      EXPECT_EQ(loss, reference_loss)
          << model.name() << " pool=" << pool_threads
          << " shards=" << shards;
      for (size_t i = 0; i < width; ++i) {
        ASSERT_EQ(gradient[i], reference_gradient[i])
            << model.name() << " pool=" << pool_threads
            << " shards=" << shards << " coordinate " << i;
      }
      // Loss-only mode reproduces the same loss bits too.
      const double loss_only = ShardedLossAndGradient(
          model, data, batch, {}, workspace, &pool, shards);
      EXPECT_EQ(loss_only, reference_loss);
    }
  }
}

TEST(ShardedLossAndGradientTest, MlpBitIdenticalAcrossPoolAndShardCounts) {
  Dataset data = RandomDataset(12, 5, 96, 11);
  Mlp model({12, 16, 5});
  model.InitializeParameters(13);
  // Uneven tail leaf (35 = 4*8 + 3) and an exact multiple.
  for (const int batch_size : {5, 32, 35}) {
    ExpectShardingInvariant(model, data,
                            RandomBatch(batch_size, 96, 17 + batch_size));
  }
}

TEST(ShardedLossAndGradientTest, ConvNetBitIdenticalAcrossPoolAndShardCounts) {
  Dataset data = RandomDataset(20, 4, 96, 19);
  ConvNet model(20, 6, 5, 4);
  model.InitializeParameters(23);
  for (const int batch_size : {8, 33}) {
    ExpectShardingInvariant(model, data,
                            RandomBatch(batch_size, 96, 29 + batch_size));
  }
}

TEST(ShardedLossAndGradientTest, LinearBitIdenticalAcrossPoolAndShardCounts) {
  Dataset data = RandomDataset(10, 3, 96, 31);
  LinearModel model(10, 3);
  model.InitializeParameters(37);
  ExpectShardingInvariant(model, data, RandomBatch(40, 96, 41));
}

TEST(ShardedLossAndGradientTest, WideModelPooledTreeReductionBitIdentical) {
  // A model wide enough to cross kPooledReduceMinWidth (2048*8 + 8 = 16392
  // parameters), so the pairwise tree reduction of the gradient partials
  // itself fans out onto the pool. The combine is element-wise across the
  // parameter axis with a fixed tree shape, so the pooled column chunks must
  // reproduce the serial combine bit for bit — this is the test that pins
  // the "leaf-tree reduction on the pool" path.
  Dataset data = RandomDataset(2048, 8, 48, 83);
  LinearModel model(2048, 8);
  model.InitializeParameters(89);
  ASSERT_GE(static_cast<size_t>(model.num_parameters()),
            kPooledReduceMinWidth);
  // 33 samples = 5 leaves (uneven tail), several shard splits.
  ExpectShardingInvariant(model, data, RandomBatch(33, 48, 97));
}

TEST(ShardedLossAndGradientTest, SingleLeafBatchMatchesWholeBatchPath) {
  // A batch no larger than one leaf degenerates to exactly one unsharded
  // evaluation: the tree is trivial, so this pins the pre-sharding
  // arithmetic for small batches.
  Dataset data = RandomDataset(8, 3, 64, 43);
  Mlp model({8, 6, 3});
  model.InitializeParameters(47);
  const std::vector<int> batch =
      RandomBatch(static_cast<int>(kGradientLeafSamples), 64, 53);

  TrainingWorkspace workspace;
  std::vector<double> sums(static_cast<size_t>(model.num_parameters()));
  std::vector<double> loss_sum(1);
  model.EvalGradientLeaves(data, batch, 0, 1, loss_sum, sums, workspace);

  std::vector<double> gradient(sums.size());
  const double loss =
      model.LossAndGradient(data, batch, gradient, workspace);
  const double inv = 1.0 / static_cast<double>(batch.size());
  EXPECT_EQ(loss, loss_sum[0] * inv);
  for (size_t i = 0; i < sums.size(); ++i) {
    EXPECT_EQ(gradient[i], sums[i] * inv);
  }
}

// A model implementing only the workspace-free LossAndGradient: exercises
// the default EvalGradientLeaves (per-leaf mean rescaled to sums), which
// must still be deterministic across every shard/pool combination.
class NaiveOnlyModel : public Model {
 public:
  NaiveOnlyModel() : inner_(6, 3) {}
  std::string name() const override { return "naive-only"; }
  int num_parameters() const override { return inner_.num_parameters(); }
  std::span<double> parameters() override { return inner_.parameters(); }
  std::span<const double> parameters() const override {
    return inner_.parameters();
  }
  void InitializeParameters(uint64_t seed) override {
    inner_.InitializeParameters(seed);
  }
  double LossAndGradient(const Dataset& data,
                         std::span<const int> batch_indices,
                         std::span<double> gradient) const override {
    return inner_.LossAndGradient(data, batch_indices, gradient);
  }
  int Predict(const Dataset& data, int index) const override {
    return inner_.Predict(data, index);
  }
  std::unique_ptr<Model> Clone() const override {
    return std::make_unique<NaiveOnlyModel>(*this);
  }

 private:
  LinearModel inner_;
};

TEST(ShardedLossAndGradientTest, DefaultLeafFallbackIsDeterministic) {
  Dataset data = RandomDataset(6, 3, 64, 59);
  NaiveOnlyModel model;
  model.InitializeParameters(61);
  const std::vector<int> batch = RandomBatch(20, 64, 67);
  const size_t width = static_cast<size_t>(model.num_parameters());

  TrainingWorkspace serial_workspace;
  std::vector<double> serial_gradient(width);
  const double serial_loss = ShardedLossAndGradient(
      model, data, batch, serial_gradient, serial_workspace,
      /*pool=*/nullptr, /*shards=*/1);

  ThreadPool pool(2);
  for (const int shards : {2, 3}) {
    TrainingWorkspace workspace;
    std::vector<double> gradient(width);
    const double loss = ShardedLossAndGradient(model, data, batch, gradient,
                                               workspace, &pool, shards);
    EXPECT_EQ(loss, serial_loss);
    for (size_t i = 0; i < width; ++i) {
      EXPECT_EQ(gradient[i], serial_gradient[i]) << i;
    }
  }
}

TEST(ShardedLossAndGradientTest, ShardedSteadyStateIsAllocationFree) {
  // After the first sharded batch sized the parent, reduce, and child-shard
  // buffers, later batches of the same size must not grow anything.
  Dataset data = RandomDataset(12, 5, 96, 71);
  Mlp model({12, 16, 5});
  model.InitializeParameters(73);
  const std::vector<int> batch = RandomBatch(32, 96, 79);
  ThreadPool pool(3);
  TrainingWorkspace workspace;
  std::vector<double> gradient(static_cast<size_t>(model.num_parameters()));

  ShardedLossAndGradient(model, data, batch, gradient, workspace, &pool, 4);
  const int64_t after_first = workspace.growth_count();
  EXPECT_GT(after_first, 0);
  for (int i = 0; i < 5; ++i) {
    ShardedLossAndGradient(model, data, batch, gradient, workspace, &pool, 4);
  }
  EXPECT_EQ(workspace.growth_count(), after_first);
}

}  // namespace
}  // namespace netmax::ml
