// ProcessPoolBackend (core/process_backend.h): the fork + MAP_SHARED wave
// must reproduce ml::ShardedLossAndGradient bit for bit at any process
// count, survive a SIGKILLed child mid-run (typed child_failure(), orphaned
// leaf ranges re-dispatched, bits unchanged), fall back to the parent when
// every child is gone, tear down idempotently, and perform zero parent heap
// allocations in the steady state — verified with a global operator
// new/delete override, like event_queue_test's simulator-core check.

#include "core/process_backend.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/status.h"
#include "ml/dataset.h"
#include "ml/mlp.h"
#include "ml/sharding.h"
#include "ml/workspace.h"

// The counting operator new below forwards to malloc, which defeats the
// compiler's new/free pairing heuristic and yields false mismatch reports.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {

std::atomic<int64_t> g_allocation_count{0};

}  // namespace

// Counting overrides. Every form forwards to malloc/free so sanitizer builds
// still see the underlying allocations.
void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace netmax::core {
namespace {

int64_t AllocationCount() {
  return g_allocation_count.load(std::memory_order_relaxed);
}

// One tiny model + dataset + batch, shared by every test: large enough for
// several leaves (48 samples = 6 leaves of 8), small enough to fork fast.
struct Fixture {
  static ml::Dataset MakeData() {
    ml::SyntheticSpec spec;
    spec.feature_dim = 10;
    spec.num_classes = 4;
    spec.num_train = 96;
    spec.num_test = 1;
    spec.seed = 7;
    return GenerateSynthetic(spec).train;
  }

  Fixture() : data(MakeData()), model({10, 8, 4}) {
    model.InitializeParameters(11);
    Rng rng(13);
    batch.resize(48);
    for (int& v : batch) v = static_cast<int>(rng.UniformInt(0, 95));
  }

  // The harness's eval callback, minus the harness: load the snapshot into
  // the (inherited) model and evaluate the range.
  ProcessLeafEvalFn Eval() {
    return [this](int /*w*/, std::span<const double> params,
                  std::span<const int> indices, int leaf_lo, int leaf_hi,
                  std::span<double> loss_sums,
                  std::span<double> gradient_sums) {
      const std::span<double> dest = model.parameters();
      std::copy(params.begin(), params.end(), dest.begin());
      model.EvalGradientLeaves(data, indices, leaf_lo, leaf_hi, loss_sums,
                               gradient_sums, workspace);
    };
  }

  // The in-process reference bits.
  double Reference(std::vector<double>& gradient) {
    gradient.assign(static_cast<size_t>(model.num_parameters()), 0.0);
    ml::TrainingWorkspace reference_workspace;
    return ml::ShardedLossAndGradient(model, data, batch, gradient,
                                      reference_workspace, /*pool=*/nullptr,
                                      /*shards=*/1);
  }

  ProcessPoolOptions Options(int procs) const {
    ProcessPoolOptions options;
    options.procs = procs;
    options.width = model.num_parameters();
    options.max_batch = static_cast<int>(batch.size());
    return options;
  }

  ml::Dataset data;
  ml::Mlp model;
  ml::TrainingWorkspace workspace;
  std::vector<int> batch;
};

bool SanitizerBuild() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

TEST(ProcessPoolBackendTest, BitIdenticalToShardedAtEveryProcessCount) {
  Fixture fx;
  std::vector<double> reference;
  const double reference_loss = fx.Reference(reference);

  for (const int procs : {1, 2, 3, 5}) {
    ProcessPoolBackend backend;
    NETMAX_EXPECT_OK(backend.Attach(fx.Options(procs), fx.Eval()));
    EXPECT_EQ(backend.procs(), procs);
    std::vector<double> gradient(reference.size());
    for (int repeat = 0; repeat < 3; ++repeat) {
      const double loss = backend.LossAndGradient(
          0, fx.model.parameters(), fx.batch, gradient);
      EXPECT_EQ(loss, reference_loss) << "procs=" << procs;
      for (size_t i = 0; i < reference.size(); ++i) {
        ASSERT_EQ(gradient[i], reference[i])
            << "procs=" << procs << " coordinate " << i;
      }
    }
    NETMAX_EXPECT_OK(backend.child_failure());
    backend.Shutdown();
  }
}

TEST(ProcessPoolBackendTest, InlineModeMatchesForkedBits) {
  Fixture fx;
  std::vector<double> reference;
  const double reference_loss = fx.Reference(reference);

  ProcessPoolOptions options = fx.Options(3);
  options.inline_mode = true;
  ProcessPoolBackend backend;
  NETMAX_EXPECT_OK(backend.Attach(options, fx.Eval()));
  EXPECT_TRUE(backend.inline_mode());
  EXPECT_EQ(backend.live_children(), 0);
  EXPECT_EQ(backend.child_pid(0), -1);

  std::vector<double> gradient(reference.size());
  const double loss =
      backend.LossAndGradient(0, fx.model.parameters(), fx.batch, gradient);
  EXPECT_EQ(loss, reference_loss);
  for (size_t i = 0; i < reference.size(); ++i) {
    ASSERT_EQ(gradient[i], reference[i]) << i;
  }
}

TEST(ProcessPoolBackendTest, SigkilledChildIsReDispatchedBitExactly) {
  if (SanitizerBuild()) {
    GTEST_SKIP() << "forked children run inline under sanitizers";
  }
  Fixture fx;
  std::vector<double> reference;
  const double reference_loss = fx.Reference(reference);

  ProcessPoolBackend backend;
  NETMAX_EXPECT_OK(backend.Attach(fx.Options(2), fx.Eval()));
  ASSERT_EQ(backend.live_children(), 2);

  // A healthy wave first, then murder child 0 and run another: its leaf
  // ranges must land on the survivor with identical bits.
  std::vector<double> gradient(reference.size());
  EXPECT_EQ(backend.LossAndGradient(0, fx.model.parameters(), fx.batch,
                                    gradient),
            reference_loss);
  NETMAX_EXPECT_OK(backend.child_failure());

  const pid_t victim = backend.child_pid(0);
  ASSERT_GT(victim, 0);
  ASSERT_EQ(kill(victim, SIGKILL), 0);

  for (int repeat = 0; repeat < 2; ++repeat) {
    const double loss = backend.LossAndGradient(0, fx.model.parameters(),
                                                fx.batch, gradient);
    EXPECT_EQ(loss, reference_loss) << "repeat " << repeat;
    for (size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(gradient[i], reference[i]) << i;
    }
  }

  EXPECT_EQ(backend.live_children(), 1);
  EXPECT_EQ(backend.child_pid(0), -1);
  const Status& failure = backend.child_failure();
  ASSERT_FALSE(failure.ok());
  EXPECT_EQ(failure.code(), StatusCode::kInternal);
  EXPECT_NE(failure.message().find("killed by signal"), std::string::npos)
      << failure.ToString();
  EXPECT_GE(backend.stats().process_child_deaths, 1);
  EXPECT_GE(backend.stats().process_ranges_redispatched, 1);
}

TEST(ProcessPoolBackendTest, ParentComputesWhenEveryChildIsDead) {
  if (SanitizerBuild()) {
    GTEST_SKIP() << "forked children run inline under sanitizers";
  }
  Fixture fx;
  std::vector<double> reference;
  const double reference_loss = fx.Reference(reference);

  ProcessPoolBackend backend;
  NETMAX_EXPECT_OK(backend.Attach(fx.Options(2), fx.Eval()));
  for (int j = 0; j < 2; ++j) {
    const pid_t pid = backend.child_pid(j);
    ASSERT_GT(pid, 0);
    ASSERT_EQ(kill(pid, SIGKILL), 0);
  }
  // Let both deaths land before the wave so this pins the no-survivors path
  // (a racing death mid-wave is the previous test's territory).
  for (int j = 0; j < 2; ++j) {
    int status = 0;
    // The backend reaps via WNOHANG polls; make the zombies collectable now.
    waitpid(backend.child_pid(j), &status, 0);
  }

  std::vector<double> gradient(reference.size());
  const double loss =
      backend.LossAndGradient(0, fx.model.parameters(), fx.batch, gradient);
  EXPECT_EQ(loss, reference_loss);
  for (size_t i = 0; i < reference.size(); ++i) {
    ASSERT_EQ(gradient[i], reference[i]) << i;
  }
  EXPECT_EQ(backend.live_children(), 0);
}

TEST(ProcessPoolBackendTest, SteadyStateWaveIsAllocationFreeInTheParent) {
  Fixture fx;
  ProcessPoolBackend backend;
  NETMAX_EXPECT_OK(backend.Attach(fx.Options(2), fx.Eval()));
  std::vector<double> gradient(static_cast<size_t>(fx.model.num_parameters()));

  // First wave may still fault pages; measure the ones after it.
  backend.LossAndGradient(0, fx.model.parameters(), fx.batch, gradient);
  const int64_t before = AllocationCount();
  for (int repeat = 0; repeat < 10; ++repeat) {
    backend.LossAndGradient(0, fx.model.parameters(), fx.batch, gradient);
  }
  EXPECT_EQ(AllocationCount(), before)
      << "steady-state waves must not allocate in the parent";
}

TEST(ProcessPoolBackendTest, ShutdownIsIdempotentAndReapsEveryChild) {
  Fixture fx;
  ProcessPoolBackend backend;
  NETMAX_EXPECT_OK(backend.Attach(fx.Options(2), fx.Eval()));

  backend.Shutdown();
  EXPECT_EQ(backend.live_children(), 0);
  if (!backend.inline_mode()) {
    // The children were waited on, not orphaned: their pids are gone.
    EXPECT_EQ(backend.child_pid(0), -1);
    EXPECT_EQ(backend.child_pid(1), -1);
  }
  backend.Shutdown();  // second call is a no-op
  EXPECT_EQ(backend.live_children(), 0);
}

TEST(ProcessPoolBackendTest, SerialEventSemantics) {
  // Event-level contract: no dispatch-ahead, commits strictly in order —
  // identical to SerialBackend. (The wave parallelism lives below the event
  // order, inside one compute half.)
  ProcessPoolBackend backend;
  EXPECT_EQ(backend.name(), "process");
  net::EventSimulator sim;
  sim.set_backend(&backend);
  std::vector<int> order;
  for (int key = 0; key < 3; ++key) {
    sim.ScheduleCompute(
        /*time=*/static_cast<double>(key), key,
        [key] { return static_cast<double>(key); },
        [&order](double value) { order.push_back(static_cast<int>(value)); });
  }
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(backend.stats().computes_speculated, 0);
}

}  // namespace
}  // namespace netmax::core
