// Bit-exact checkpoint/restore (core/checkpoint.h): for every registered
// algorithm and every execution backend, a run that (a) checkpoints mid-run
// and keeps going, or (b) restores from that checkpoint and finishes, must
// produce a RunResult bit-identical to the uninterrupted run. Also covers the
// wire-format error paths: truncation, corruption, fingerprint mismatches,
// and the file round trip.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algos/registry.h"
#include "core/checkpoint.h"
#include "core/execution_backend.h"
#include "core/experiment.h"
#include "net/fault_schedule.h"

namespace netmax {
namespace {

using core::ExecutionBackendKind;
using core::ExperimentConfig;
using core::NetworkScenario;
using core::RunResult;

// Lean but representative: heterogeneous static network, monitor ticks, an
// accuracy series, and enough iterations that the checkpoint lands between
// events with a non-trivial queue.
ExperimentConfig BaseConfig() {
  ExperimentConfig config;
  config.dataset.name = "checkpoint";
  config.dataset.num_classes = 4;
  config.dataset.feature_dim = 12;
  config.dataset.num_train = 256;
  config.dataset.num_test = 64;
  config.dataset.class_separation = 4.0;
  config.hidden_layers = {12};
  config.num_workers = 8;
  config.batch_size = 16;
  config.max_epochs = 2;
  config.network = NetworkScenario::kHeterogeneousStatic;
  config.monitor_period_seconds = 5.0;
  config.generator.outer_rounds = 4;
  config.generator.inner_rounds = 4;
  config.eval_every_epochs = 1;
  config.seed = 13;
  config.threads = 1;
  return config;
}

RunResult MustRun(const std::string& name, const ExperimentConfig& config) {
  auto algorithm = algos::MakeAlgorithm(name);
  NETMAX_CHECK_OK(algorithm.status());
  auto result = (*algorithm)->Run(config);
  NETMAX_CHECK_OK(result.status());
  return std::move(result.value());
}

Status TryRun(const std::string& name, const ExperimentConfig& config) {
  auto algorithm = algos::MakeAlgorithm(name);
  NETMAX_CHECK_OK(algorithm.status());
  return (*algorithm)->Run(config).status();
}

void ExpectSeriesIdentical(const ml::Series& a, const ml::Series& b,
                           const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].x, b[i].x) << label << "[" << i << "].x";
    EXPECT_EQ(a[i].y, b[i].y) << label << "[" << i << "].y";
  }
}

// The simulation-output subset of RunResult (exec-stat counters depend on the
// backend by design and are excluded, as in parallel_determinism_test).
void ExpectBitIdentical(const RunResult& a, const RunResult& b) {
  ExpectSeriesIdentical(a.loss_vs_time, b.loss_vs_time, "loss_vs_time");
  ExpectSeriesIdentical(a.loss_vs_epoch, b.loss_vs_epoch, "loss_vs_epoch");
  ExpectSeriesIdentical(a.accuracy_vs_time, b.accuracy_vs_time,
                        "accuracy_vs_time");
  EXPECT_EQ(a.final_train_loss, b.final_train_loss);
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
  EXPECT_EQ(a.total_virtual_seconds, b.total_virtual_seconds);
  EXPECT_EQ(a.avg_epoch_cost.compute_seconds, b.avg_epoch_cost.compute_seconds);
  EXPECT_EQ(a.avg_epoch_cost.communication_seconds,
            b.avg_epoch_cost.communication_seconds);
  EXPECT_EQ(a.total_local_iterations, b.total_local_iterations);
  EXPECT_EQ(a.consensus_distance, b.consensus_distance);
  EXPECT_EQ(a.policies_generated, b.policies_generated);
}

class CheckpointRoundTrip : public ::testing::TestWithParam<std::string> {};

// The acceptance grid: for each algorithm, each backend's checkpointed run
// and its restored continuation must match the uninterrupted serial
// reference bit for bit.
TEST_P(CheckpointRoundTrip, AllBackendsBitIdentical) {
  const ExperimentConfig base = BaseConfig();
  const RunResult reference = MustRun(GetParam(), base);
  ASSERT_GT(reference.total_virtual_seconds, 0.0);
  const double checkpoint_at = 0.5 * reference.total_virtual_seconds;

  struct BackendPoint {
    ExecutionBackendKind backend;
    int threads;
    int reorder_window;
  };
  const BackendPoint points[] = {
      {ExecutionBackendKind::kSerial, 1, 0},
      {ExecutionBackendKind::kSpeculative, 8, 0},
      {ExecutionBackendKind::kAsyncPipeline, 8, 4},
  };
  for (const BackendPoint& point : points) {
    SCOPED_TRACE(static_cast<int>(point.backend));
    std::vector<uint8_t> checkpoint;
    ExperimentConfig with_checkpoint = base;
    with_checkpoint.backend = point.backend;
    with_checkpoint.threads = point.threads;
    with_checkpoint.reorder_window = point.reorder_window;
    with_checkpoint.checkpoint_at_seconds = checkpoint_at;
    with_checkpoint.checkpoint_sink = &checkpoint;
    const RunResult checkpointed = MustRun(GetParam(), with_checkpoint);
    ExpectBitIdentical(reference, checkpointed);
    ASSERT_FALSE(checkpoint.empty());

    ExperimentConfig resumed = base;
    resumed.backend = point.backend;
    resumed.threads = point.threads;
    resumed.reorder_window = point.reorder_window;
    resumed.restore_source = &checkpoint;
    const RunResult restored = MustRun(GetParam(), resumed);
    ExpectBitIdentical(reference, restored);
  }
}

// A checkpoint written by the serial backend restores bit-identically on the
// pooled backends (and vice versa): the bytes carry no execution-strategy
// state.
TEST_P(CheckpointRoundTrip, CheckpointsAreBackendPortable) {
  const ExperimentConfig base = BaseConfig();
  const RunResult reference = MustRun(GetParam(), base);
  std::vector<uint8_t> checkpoint;
  ExperimentConfig with_checkpoint = base;
  with_checkpoint.checkpoint_at_seconds =
      0.5 * reference.total_virtual_seconds;
  with_checkpoint.checkpoint_sink = &checkpoint;
  MustRun(GetParam(), with_checkpoint);

  ExperimentConfig resumed = base;
  resumed.backend = ExecutionBackendKind::kAsyncPipeline;
  resumed.threads = 8;
  resumed.reorder_window = 4;
  resumed.restore_source = &checkpoint;
  ExpectBitIdentical(reference, MustRun(GetParam(), resumed));
}

// Cross-config restore across the process boundary: a checkpoint written by
// the speculative backend under a full thread pool restores bit-identically
// under the multi-process backend (forked children, shared-memory dispatch)
// and back under serial. The checkpoint fingerprint covers the simulation
// config only — backend, threads, and procs are real-machine choices — so
// both restores must accept the bytes and finish on the reference's bits.
TEST_P(CheckpointRoundTrip, SpeculativeCheckpointRestoresUnderProcessBackend) {
  const ExperimentConfig base = BaseConfig();
  const RunResult reference = MustRun(GetParam(), base);
  ASSERT_GT(reference.total_virtual_seconds, 0.0);

  std::vector<uint8_t> checkpoint;
  ExperimentConfig with_checkpoint = base;
  with_checkpoint.backend = ExecutionBackendKind::kSpeculative;
  with_checkpoint.threads = 8;
  with_checkpoint.checkpoint_at_seconds =
      0.5 * reference.total_virtual_seconds;
  with_checkpoint.checkpoint_sink = &checkpoint;
  MustRun(GetParam(), with_checkpoint);
  ASSERT_FALSE(checkpoint.empty());

  ExperimentConfig under_process = base;
  under_process.backend = ExecutionBackendKind::kProcessPool;
  under_process.procs = 2;  // pinned: the grid must not fork one per core
  under_process.restore_source = &checkpoint;
  const RunResult process_restored = MustRun(GetParam(), under_process);
  EXPECT_EQ(process_restored.backend, "process");
  ExpectBitIdentical(reference, process_restored);

  ExperimentConfig under_serial = base;
  under_serial.restore_source = &checkpoint;
  ExpectBitIdentical(reference, MustRun(GetParam(), under_serial));
}

// The crash-recovery contract: a run killed by a crash@T fault, restored
// from the newest periodic (checkpoint_every_seconds) checkpoint, finishes
// bit-identical to the run that never crashed — for every algorithm. The
// uninterrupted reference runs the same cadence (ticks are virtual-time
// events, so the reference must consume them too), and the cadence itself
// must be transparent: the uninterrupted cadenced run matches the plain run.
TEST_P(CheckpointRoundTrip, CrashRestoreFromPeriodicCheckpoint) {
  const ExperimentConfig base = BaseConfig();
  const RunResult plain = MustRun(GetParam(), base);
  ASSERT_GT(plain.total_virtual_seconds, 0.0);
  const double cadence = 0.2 * plain.total_virtual_seconds;
  const double crash_at = 0.5 * plain.total_virtual_seconds;

  // Uninterrupted reference, cadence armed. The cadence is transparent to
  // training — same losses, same iterations — but it owns its tick events:
  // the final tick can stretch total_virtual_seconds past the last real
  // event, so the clock is compared only between the cadenced runs below.
  std::vector<uint8_t> reference_sink;
  ExperimentConfig uninterrupted = base;
  uninterrupted.checkpoint_every_seconds = cadence;
  uninterrupted.checkpoint_sink = &reference_sink;
  const RunResult want = MustRun(GetParam(), uninterrupted);
  ExpectSeriesIdentical(plain.loss_vs_time, want.loss_vs_time,
                        "loss_vs_time");
  ExpectSeriesIdentical(plain.loss_vs_epoch, want.loss_vs_epoch,
                        "loss_vs_epoch");
  EXPECT_EQ(plain.final_train_loss, want.final_train_loss);
  EXPECT_EQ(plain.total_local_iterations, want.total_local_iterations);
  ASSERT_FALSE(reference_sink.empty());

  // Crashed run: halts at crash_at; the sink keeps the newest periodic
  // checkpoint written before the crash.
  std::vector<uint8_t> crash_sink;
  ExperimentConfig crashed = uninterrupted;
  net::FaultEvent crash;
  crash.kind = net::FaultKind::kCrash;
  crash.time = crash_at;
  crashed.faults.push_back(crash);
  crashed.checkpoint_sink = &crash_sink;
  const RunResult halted = MustRun(GetParam(), crashed);
  EXPECT_LE(halted.total_virtual_seconds, crash_at);
  ASSERT_FALSE(crash_sink.empty());

  // Restore into the no-crash config and finish: the crash is absent from
  // the checkpoint's fingerprint and its pending event was filtered from
  // the serialized queue, so the continuation must reproduce the
  // uninterrupted bits — fault counters included.
  std::vector<uint8_t> restored_sink;
  ExperimentConfig restored = uninterrupted;
  restored.checkpoint_sink = &restored_sink;
  restored.restore_source = &crash_sink;
  const RunResult got = MustRun(GetParam(), restored);
  ExpectBitIdentical(want, got);
  EXPECT_EQ(want.faults_injected, got.faults_injected);
  EXPECT_EQ(want.rounds_degraded, got.rounds_degraded);
  EXPECT_EQ(want.peers_timed_out, got.peers_timed_out);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, CheckpointRoundTrip,
                         ::testing::ValuesIn(algos::AlgorithmNames()));

// --- wire-format and plumbing error paths (one algorithm suffices) ---

std::vector<uint8_t> MakeCheckpoint(const ExperimentConfig& base,
                                    const std::string& name = "gossip") {
  const RunResult reference = MustRun(name, base);
  std::vector<uint8_t> checkpoint;
  ExperimentConfig with_checkpoint = base;
  with_checkpoint.checkpoint_at_seconds =
      0.5 * reference.total_virtual_seconds;
  with_checkpoint.checkpoint_sink = &checkpoint;
  MustRun(name, with_checkpoint);
  NETMAX_CHECK(!checkpoint.empty());
  return checkpoint;
}

TEST(CheckpointErrors, TruncatedBytesAreRejected) {
  const ExperimentConfig base = BaseConfig();
  std::vector<uint8_t> checkpoint = MakeCheckpoint(base);
  checkpoint.resize(checkpoint.size() / 2);
  ExperimentConfig resumed = base;
  resumed.restore_source = &checkpoint;
  const Status status = TryRun("gossip", resumed);
  EXPECT_FALSE(status.ok());
}

TEST(CheckpointErrors, BadMagicIsRejected) {
  const ExperimentConfig base = BaseConfig();
  std::vector<uint8_t> checkpoint = MakeCheckpoint(base);
  checkpoint[0] ^= 0xFF;
  ExperimentConfig resumed = base;
  resumed.restore_source = &checkpoint;
  const Status status = TryRun("gossip", resumed);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("magic"), std::string::npos);
}

TEST(CheckpointErrors, TrailingGarbageIsRejected) {
  const ExperimentConfig base = BaseConfig();
  std::vector<uint8_t> checkpoint = MakeCheckpoint(base);
  checkpoint.push_back(0x00);
  ExperimentConfig resumed = base;
  resumed.restore_source = &checkpoint;
  const Status status = TryRun("gossip", resumed);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointErrors, AlgorithmFingerprintMismatch) {
  const ExperimentConfig base = BaseConfig();
  const std::vector<uint8_t> checkpoint = MakeCheckpoint(base, "gossip");
  ExperimentConfig resumed = base;
  resumed.restore_source = &checkpoint;
  const Status status = TryRun("adpsgd", resumed);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(CheckpointErrors, ConfigFingerprintMismatches) {
  const ExperimentConfig base = BaseConfig();
  const std::vector<uint8_t> checkpoint = MakeCheckpoint(base);

  ExperimentConfig wrong_seed = base;
  wrong_seed.seed = base.seed + 1;
  wrong_seed.restore_source = &checkpoint;
  EXPECT_EQ(TryRun("gossip", wrong_seed).code(),
            StatusCode::kFailedPrecondition);

  ExperimentConfig wrong_workers = base;
  wrong_workers.num_workers = base.num_workers / 2;
  wrong_workers.restore_source = &checkpoint;
  EXPECT_EQ(TryRun("gossip", wrong_workers).code(),
            StatusCode::kFailedPrecondition);

  ExperimentConfig wrong_epochs = base;
  wrong_epochs.max_epochs = base.max_epochs + 1;
  wrong_epochs.restore_source = &checkpoint;
  EXPECT_EQ(TryRun("gossip", wrong_epochs).code(),
            StatusCode::kFailedPrecondition);
}

TEST(CheckpointErrors, RestorePathAndSourceAreMutuallyExclusive) {
  const ExperimentConfig base = BaseConfig();
  const std::vector<uint8_t> checkpoint = MakeCheckpoint(base);
  ExperimentConfig resumed = base;
  resumed.restore_source = &checkpoint;
  resumed.restore_path = "/nonexistent/also-set";
  EXPECT_FALSE(TryRun("gossip", resumed).ok());
}

TEST(CheckpointFiles, FileRoundTripRestoresBitIdentically) {
  const ExperimentConfig base = BaseConfig();
  const RunResult reference = MustRun("gossip", base);
  const std::string path =
      ::testing::TempDir() + "/netmax_checkpoint_test.ckpt";

  ExperimentConfig with_checkpoint = base;
  with_checkpoint.checkpoint_at_seconds =
      0.5 * reference.total_virtual_seconds;
  with_checkpoint.checkpoint_path = path;
  ExpectBitIdentical(reference, MustRun("gossip", with_checkpoint));

  ExperimentConfig resumed = base;
  resumed.restore_path = path;
  ExpectBitIdentical(reference, MustRun("gossip", resumed));
  std::remove(path.c_str());
}

TEST(CheckpointFiles, PeriodicCadenceRotatesHistory) {
  // The periodic cadence keeps `<path>` pointing at the newest snapshot —
  // what --restore-path naturally resumes from after a crash — plus a
  // `<path>.t<k>` history trimmed to checkpoint_retain files.
  const ExperimentConfig base = BaseConfig();
  const RunResult reference = MustRun("gossip", base);
  const std::string path =
      ::testing::TempDir() + "/netmax_cadence_test.ckpt";

  ExperimentConfig cadenced = base;
  cadenced.checkpoint_every_seconds = 0.15 * reference.total_virtual_seconds;
  cadenced.checkpoint_path = path;
  cadenced.checkpoint_retain = 2;
  const RunResult want = MustRun("gossip", cadenced);
  // Transparent to training (the tick chain may stretch the clock itself).
  ExpectSeriesIdentical(reference.loss_vs_time, want.loss_vs_time,
                        "loss_vs_time");
  EXPECT_EQ(reference.final_train_loss, want.final_train_loss);

  auto newest = core::ReadCheckpointFile(path);
  NETMAX_EXPECT_OK(newest);
  int kept = 0;
  std::vector<uint8_t> newest_history;
  for (int tick = 1; tick <= 32; ++tick) {
    auto bytes = core::ReadCheckpointFile(path + ".t" + std::to_string(tick));
    if (!bytes.ok()) continue;
    ++kept;
    newest_history = *bytes;
    std::remove((path + ".t" + std::to_string(tick)).c_str());
  }
  // ~6 ticks fired; only the retained tail survives, and `<path>` holds the
  // same bytes as the newest history file.
  EXPECT_GT(kept, 0);
  EXPECT_LE(kept, cadenced.checkpoint_retain);
  EXPECT_EQ(*newest, newest_history);
  std::remove(path.c_str());

  // The newest periodic snapshot restores and finishes bit-identically. The
  // resumed run keeps the cadence armed (into a sink, not the file): the
  // tick chain consumes simulator sequence numbers, so dropping it would
  // diverge from the uninterrupted cadenced run.
  std::vector<uint8_t> snapshot = *newest;
  std::vector<uint8_t> resumed_sink;
  ExperimentConfig resumed = cadenced;
  resumed.checkpoint_path.clear();
  resumed.checkpoint_sink = &resumed_sink;
  resumed.restore_source = &snapshot;
  ExpectBitIdentical(want, MustRun("gossip", resumed));
}

TEST(CheckpointFiles, MissingFileIsNotFound) {
  ExperimentConfig resumed = BaseConfig();
  resumed.restore_path = "/nonexistent/netmax.ckpt";
  EXPECT_EQ(TryRun("gossip", resumed).code(), StatusCode::kNotFound);
}

TEST(CheckpointFiles, WriteToUnwritablePathSurfacesThroughRunStatus) {
  // An armed checkpoint that cannot write its file must fail the run (via
  // Harness::checkpoint_status), not crash it or silently drop the bytes.
  ExperimentConfig config = BaseConfig();
  config.checkpoint_at_seconds = 1.0;
  config.checkpoint_path = "/nonexistent-dir/netmax.ckpt";
  const Status status = TryRun("gossip", config);
  EXPECT_FALSE(status.ok());
}

TEST(CheckpointFiles, RawFileHelpersRoundTrip) {
  const std::vector<uint8_t> bytes = {0x01, 0x02, 0xFF, 0x00, 0x7E};
  const std::string path = ::testing::TempDir() + "/netmax_raw_bytes.bin";
  NETMAX_EXPECT_OK(core::WriteCheckpointFile(path, bytes));
  auto read_back = core::ReadCheckpointFile(path);
  NETMAX_EXPECT_OK(read_back);
  EXPECT_EQ(*read_back, bytes);
  std::remove(path.c_str());
}

TEST(CheckpointArming, CheckpointPastEndOfRunFailsLoudly) {
  // A checkpoint time beyond the end of training would produce a dead
  // checkpoint and (when past the last event) drag the virtual clock with
  // it; the harness fails the run instead of doing either silently.
  std::vector<uint8_t> checkpoint;
  ExperimentConfig late = BaseConfig();
  late.checkpoint_at_seconds = 1e6;  // beyond the run's end, below the cap
  late.checkpoint_sink = &checkpoint;
  const Status status = TryRun("gossip", late);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("past the end"), std::string::npos);
  EXPECT_TRUE(checkpoint.empty());
}

}  // namespace
}  // namespace netmax
