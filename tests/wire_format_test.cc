// Byte-count and round-trip tests for the wire-format layer: every
// descriptor's PayloadBytes() must match the documented formula exactly
// (these numbers drive link-transfer seconds and the CI bytes gate), and the
// codec must produce buffers of exactly that size, with lossless paths
// round-tripping bit for bit.

#include "net/wire_format.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace netmax::net {
namespace {

TEST(WireMessageTest, DenseF32MatchesProfileBaseline) {
  // The headerless dense f32 framing is by construction the pre-compression
  // ModelProfile::message_bytes() number: 4 bytes per value, nothing else.
  const WireMessage full = DenseF32Message(11'000'000, 11'000'000);
  EXPECT_EQ(full.PayloadBytes(), 44'000'000);
  EXPECT_EQ(full.DenseBaselineBytes(), 44'000'000);
  EXPECT_EQ(full.BytesSaved(), 0);
}

TEST(WireMessageTest, DenseF32PartialChargesActiveValuesOnly) {
  const WireMessage half = DenseF32Message(1000, 500);
  EXPECT_EQ(half.PayloadBytes(), 2000);
  EXPECT_EQ(half.DenseBaselineBytes(), 4000);
  EXPECT_EQ(half.BytesSaved(), 2000);
}

TEST(WireMessageTest, DenseF64Bytes) {
  const WireMessage message = DenseF64Message(1000);
  EXPECT_EQ(message.PayloadBytes(), kWireHeaderBytes + 8 * 1000);
  // The lossless framing costs more than the f32 baseline: negative savings.
  EXPECT_LT(message.BytesSaved(), 0);
}

TEST(WireMessageTest, TopKBytes) {
  // 8 bytes per kept entry ({uint32 index, f32 value}) plus the header.
  const WireMessage message = TopKMessage(10'000, 1000);
  EXPECT_EQ(message.PayloadBytes(), kWireHeaderBytes + 8 * 1000);
  EXPECT_EQ(message.DenseBaselineBytes(), 40'000);
}

TEST(WireMessageTest, Int8BlockBytes) {
  // 1 byte per value plus one f32 scale per 256-value block. 1000 values ->
  // 4 blocks (the last one partial).
  const WireMessage message = Int8Message(1000);
  EXPECT_EQ(message.PayloadBytes(), kWireHeaderBytes + 1000 + 4 * 4);
  // A single partial block still needs its scale.
  EXPECT_EQ(Int8Message(1).PayloadBytes(), kWireHeaderBytes + 1 + 4);
  EXPECT_EQ(Int8Message(kInt8BlockValues).PayloadBytes(),
            kWireHeaderBytes + kInt8BlockValues + 4);
}

TEST(WireMessageTest, EmptyMessages) {
  EXPECT_EQ(DenseF32Message(0, 0).PayloadBytes(), 0);
  EXPECT_EQ(TopKMessage(1000, 0).PayloadBytes(), kWireHeaderBytes);
  EXPECT_EQ(Int8Message(0).PayloadBytes(), kWireHeaderBytes);
}

TEST(WireCodecTest, DenseF64RoundTripsBitExactly) {
  Rng rng(7);
  std::vector<double> values(513);
  for (double& v : values) v = rng.Uniform(-10.0, 10.0);
  values[0] = 0.0;
  values[1] = -0.0;
  const std::vector<uint8_t> bytes = EncodeDenseF64(values);
  EXPECT_EQ(static_cast<int64_t>(bytes.size()),
            DenseF64Message(513).PayloadBytes());
  const auto decoded = DecodeDenseF64(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    // Bit-exact: compare the representations, not the values, so -0.0 and
    // NaN payloads would be caught too.
    EXPECT_EQ(std::memcmp(&(*decoded)[i], &values[i], sizeof(double)), 0)
        << "value " << i;
  }
}

TEST(WireCodecTest, DenseF64RejectsMalformedBuffers) {
  const std::vector<double> values = {1.0, 2.0};
  std::vector<uint8_t> bytes = EncodeDenseF64(values);
  std::vector<uint8_t> truncated(bytes.begin(), bytes.end() - 1);
  EXPECT_FALSE(DecodeDenseF64(truncated).ok());
  bytes[0] ^= 0xFF;  // corrupt the encoding tag
  EXPECT_FALSE(DecodeDenseF64(bytes).ok());
  EXPECT_FALSE(DecodeDenseF64(std::vector<uint8_t>(3)).ok());
}

TEST(WireCodecTest, TopKRoundTripsEntriesBitExactly) {
  std::vector<TopKEntry> entries;
  Rng rng(11);
  for (uint32_t i = 0; i < 100; ++i) {
    entries.push_back({i * 7, static_cast<float>(rng.Uniform(-1.0, 1.0))});
  }
  const std::vector<uint8_t> bytes = EncodeTopK(1000, entries);
  EXPECT_EQ(static_cast<int64_t>(bytes.size()),
            TopKMessage(1000, 100).PayloadBytes());
  const auto decoded = DecodeTopK(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->num_values, 1000);
  ASSERT_EQ(decoded->entries.size(), entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(decoded->entries[i].index, entries[i].index);
    EXPECT_EQ(std::memcmp(&decoded->entries[i].value, &entries[i].value,
                          sizeof(float)),
              0);
  }
}

TEST(WireCodecTest, Int8RoundTripsLevelsAndScales) {
  std::vector<int8_t> levels(600);
  Rng rng(13);
  for (int8_t& level : levels) {
    level = static_cast<int8_t>(rng.UniformInt(-127, 127));
  }
  const std::vector<float> scales = {0.5f, 0.25f, 1.5f};
  const std::vector<uint8_t> bytes = EncodeInt8Blocks(levels, scales);
  EXPECT_EQ(static_cast<int64_t>(bytes.size()),
            Int8Message(600).PayloadBytes());
  const auto decoded = DecodeInt8Blocks(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->levels, levels);
  EXPECT_EQ(decoded->scales, scales);
  // Dequantized values are exactly level * scale — the same product the
  // simulator-side quantizer applies, so encode/decode changes no bits.
  const std::vector<double> dequantized = decoded->Dequantized();
  ASSERT_EQ(dequantized.size(), levels.size());
  for (size_t i = 0; i < levels.size(); ++i) {
    const double expected = static_cast<double>(levels[i]) *
                            static_cast<double>(scales[i / kInt8BlockValues]);
    EXPECT_EQ(dequantized[i], expected) << "value " << i;
  }
}

TEST(WireCodecTest, Int8RejectsScaleCountMismatch) {
  // 600 values need exactly 3 block scales; feed the decoder a buffer whose
  // header promises 600 values but whose size implies 2 scales.
  std::vector<int8_t> levels(600, 1);
  const std::vector<float> scales = {1.0f, 1.0f, 1.0f};
  std::vector<uint8_t> bytes = EncodeInt8Blocks(levels, scales);
  bytes.resize(bytes.size() - 4);
  EXPECT_FALSE(DecodeInt8Blocks(bytes).ok());
}

}  // namespace
}  // namespace netmax::net
