// Verifies the blocked linalg kernels against naive reference loops — exact
// equality, not tolerance: the kernels promise the same left-to-right
// summation order as the textbook loops (the property the workspace training
// path relies on for reproducibility).

#include <array>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "linalg/blas.h"
#include "linalg/matrix.h"

namespace netmax::linalg {
namespace {

std::vector<double> RandomBuffer(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (double& v : out) v = rng.Gaussian();
  return out;
}

TEST(BlasTest, GemmTransBMatchesNaive) {
  for (const auto& [m, n, k] : {std::array{1, 1, 1}, std::array{3, 5, 7},
                                std::array{32, 10, 32}, std::array{33, 9, 65},
                                std::array{2, 4, 2000}}) {
    const std::vector<double> a = RandomBuffer(static_cast<size_t>(m) * k, 1);
    const std::vector<double> b = RandomBuffer(static_cast<size_t>(n) * k, 2);
    const std::vector<double> bias = RandomBuffer(static_cast<size_t>(n), 3);
    std::vector<double> c(static_cast<size_t>(m) * n, -1.0);
    GemmTransB(m, n, k, a.data(), k, b.data(), k, bias.data(), c.data(), n);
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        double want = bias[static_cast<size_t>(j)];
        for (int t = 0; t < k; ++t) {
          want += a[static_cast<size_t>(i) * k + t] *
                  b[static_cast<size_t>(j) * k + t];
        }
        EXPECT_EQ(c[static_cast<size_t>(i) * n + j], want)
            << m << "x" << n << "x" << k << " at (" << i << "," << j << ")";
      }
    }
  }
}

TEST(BlasTest, GemmTransBNullBiasStartsAtZero) {
  const std::vector<double> a = RandomBuffer(6, 4);
  const std::vector<double> b = RandomBuffer(9, 5);
  std::vector<double> c(6, 99.0);
  GemmTransB(2, 3, 3, a.data(), 3, b.data(), 3, nullptr, c.data(), 3);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) {
      double want = 0.0;
      for (int t = 0; t < 3; ++t) {
        want += a[static_cast<size_t>(i) * 3 + t] *
                b[static_cast<size_t>(j) * 3 + t];
      }
      EXPECT_EQ(c[static_cast<size_t>(i) * 3 + j], want);
    }
  }
}

TEST(BlasTest, GemmAtBAccumulateMatchesNaive) {
  for (const auto& [r, m, n] : {std::array{1, 1, 1}, std::array{7, 3, 5},
                                std::array{32, 10, 32},
                                std::array{31, 9, 33}}) {
    const std::vector<double> a = RandomBuffer(static_cast<size_t>(r) * m, 6);
    const std::vector<double> b = RandomBuffer(static_cast<size_t>(r) * n, 7);
    std::vector<double> c = RandomBuffer(static_cast<size_t>(m) * n, 8);
    std::vector<double> want = c;
    GemmAtBAccumulate(r, m, n, a.data(), m, b.data(), n, c.data(), n);
    for (int s = 0; s < r; ++s) {
      for (int i = 0; i < m; ++i) {
        const double d = a[static_cast<size_t>(s) * m + i];
        for (int j = 0; j < n; ++j) {
          want[static_cast<size_t>(i) * n + j] +=
              d * b[static_cast<size_t>(s) * n + j];
        }
      }
    }
    for (size_t i = 0; i < c.size(); ++i) {
      EXPECT_EQ(c[i], want[i]) << r << "x" << m << "x" << n << " at " << i;
    }
  }
}

TEST(BlasTest, GemmMatchesNaive) {
  for (const auto& [m, n, k] : {std::array{1, 1, 1}, std::array{5, 7, 3},
                                std::array{16, 16, 16},
                                std::array{17, 13, 9}}) {
    const std::vector<double> a = RandomBuffer(static_cast<size_t>(m) * k, 9);
    const std::vector<double> b = RandomBuffer(static_cast<size_t>(k) * n, 10);
    std::vector<double> c(static_cast<size_t>(m) * n, -1.0);
    Gemm(m, n, k, a.data(), k, b.data(), n, c.data(), n);
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        double want = 0.0;
        for (int t = 0; t < k; ++t) {
          want += a[static_cast<size_t>(i) * k + t] *
                  b[static_cast<size_t>(t) * n + j];
        }
        EXPECT_EQ(c[static_cast<size_t>(i) * n + j], want);
      }
    }
  }
}

TEST(BlasTest, GemvMatchesNaive) {
  for (const auto& [m, n] : {std::array{1, 1}, std::array{4, 8},
                             std::array{9, 17}, std::array{256, 64}}) {
    const std::vector<double> a = RandomBuffer(static_cast<size_t>(m) * n, 11);
    const std::vector<double> x = RandomBuffer(static_cast<size_t>(n), 12);
    const std::vector<double> bias = RandomBuffer(static_cast<size_t>(m), 13);
    std::vector<double> y(static_cast<size_t>(m), -1.0);
    Gemv(m, n, a.data(), n, x.data(), bias.data(), y.data());
    for (int i = 0; i < m; ++i) {
      double want = bias[static_cast<size_t>(i)];
      for (int j = 0; j < n; ++j) {
        want += a[static_cast<size_t>(i) * n + j] * x[static_cast<size_t>(j)];
      }
      EXPECT_EQ(y[static_cast<size_t>(i)], want);
    }
  }
}

TEST(BlasTest, AddRowsAccumulateMatchesNaive) {
  const int r = 13;
  const int n = 21;
  const std::vector<double> a = RandomBuffer(static_cast<size_t>(r) * n, 14);
  std::vector<double> out = RandomBuffer(static_cast<size_t>(n), 15);
  std::vector<double> want = out;
  AddRowsAccumulate(r, n, a.data(), n, out.data());
  for (int s = 0; s < r; ++s) {
    for (int j = 0; j < n; ++j) {
      want[static_cast<size_t>(j)] += a[static_cast<size_t>(s) * n + j];
    }
  }
  for (int j = 0; j < n; ++j) {
    EXPECT_EQ(out[static_cast<size_t>(j)], want[static_cast<size_t>(j)]);
  }
}

TEST(BlasTest, MatrixMultiplyMatchesKernelAndReference) {
  // Matrix::Multiply now routes through Gemm; it must agree exactly with the
  // seed's naive i-k-j loop (same ascending-k order).
  Rng rng(16);
  Matrix a(13, 9);
  Matrix b(9, 11);
  for (int i = 0; i < 13; ++i) {
    for (int j = 0; j < 9; ++j) a(i, j) = rng.Gaussian();
  }
  for (int i = 0; i < 9; ++i) {
    for (int j = 0; j < 11; ++j) b(i, j) = rng.Gaussian();
  }
  const Matrix c = a.Multiply(b);
  Matrix want(13, 11);
  for (int i = 0; i < 13; ++i) {
    for (int t = 0; t < 9; ++t) {
      for (int j = 0; j < 11; ++j) want(i, j) += a(i, t) * b(t, j);
    }
  }
  EXPECT_EQ(Matrix::MaxAbsDiff(c, want), 0.0);
}

TEST(BlasTest, MatrixApplyMatchesReference) {
  Rng rng(17);
  Matrix a(7, 30);
  std::vector<double> x(30);
  for (int i = 0; i < 7; ++i) {
    for (int j = 0; j < 30; ++j) a(i, j) = rng.Gaussian();
  }
  for (double& v : x) v = rng.Gaussian();
  const std::vector<double> y = a.Apply(x);
  for (int i = 0; i < 7; ++i) {
    double want = 0.0;
    for (int j = 0; j < 30; ++j) want += a(i, j) * x[static_cast<size_t>(j)];
    EXPECT_EQ(y[static_cast<size_t>(i)], want);
  }
}

}  // namespace
}  // namespace netmax::linalg
