// Gradient-checks every model against central finite differences and verifies
// basic training behaviour (loss decreases, separable data learnable).

#include <cmath>
#include <memory>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "ml/conv_net.h"
#include "ml/dataset.h"
#include "ml/linear_model.h"
#include "ml/metrics.h"
#include "ml/mlp.h"
#include "ml/optimizer.h"

namespace netmax::ml {
namespace {

Dataset SmallDataset(int feature_dim, int num_classes, int count,
                     uint64_t seed) {
  SyntheticSpec spec;
  spec.feature_dim = feature_dim;
  spec.num_classes = num_classes;
  spec.num_train = count;
  spec.num_test = 1;
  spec.seed = seed;
  spec.class_separation = 2.0;
  return GenerateSynthetic(spec).train;
}

// Compares the analytic gradient to central finite differences at a random
// parameter point. Checks a subsample of coordinates for speed.
void CheckGradient(Model& model, const Dataset& data) {
  model.InitializeParameters(99);
  std::vector<int> batch(static_cast<size_t>(std::min(8, data.size())));
  std::iota(batch.begin(), batch.end(), 0);

  std::vector<double> analytic(static_cast<size_t>(model.num_parameters()));
  model.LossAndGradient(data, batch, analytic);

  const double eps = 1e-5;
  auto params = model.parameters();
  const int n = model.num_parameters();
  const int stride = std::max(1, n / 64);  // probe <=64 coordinates
  for (int j = 0; j < n; j += stride) {
    const double saved = params[static_cast<size_t>(j)];
    params[static_cast<size_t>(j)] = saved + eps;
    const double loss_plus = model.LossAndGradient(data, batch, {});
    params[static_cast<size_t>(j)] = saved - eps;
    const double loss_minus = model.LossAndGradient(data, batch, {});
    params[static_cast<size_t>(j)] = saved;
    const double numeric = (loss_plus - loss_minus) / (2.0 * eps);
    EXPECT_NEAR(analytic[static_cast<size_t>(j)], numeric,
                1e-4 * std::max(1.0, std::fabs(numeric)))
        << "coordinate " << j;
  }
}

TEST(LinearModelTest, GradientMatchesFiniteDifferences) {
  Dataset data = SmallDataset(6, 3, 16, 1);
  LinearModel model(6, 3);
  CheckGradient(model, data);
}

TEST(MlpTest, GradientMatchesFiniteDifferencesOneHidden) {
  Dataset data = SmallDataset(5, 3, 16, 2);
  Mlp model({5, 7, 3});
  CheckGradient(model, data);
}

TEST(MlpTest, GradientMatchesFiniteDifferencesTwoHidden) {
  Dataset data = SmallDataset(4, 3, 16, 3);
  Mlp model({4, 6, 5, 3});
  CheckGradient(model, data);
}

TEST(ConvNetTest, GradientMatchesFiniteDifferences) {
  Dataset data = SmallDataset(10, 3, 16, 4);
  ConvNet model(10, 4, 3, 3);
  CheckGradient(model, data);
}

TEST(LinearModelTest, ParameterLayoutSize) {
  LinearModel model(6, 3);
  EXPECT_EQ(model.num_parameters(), 6 * 3 + 3);
}

TEST(MlpTest, ParameterLayoutSize) {
  Mlp model({4, 6, 3});
  EXPECT_EQ(model.num_parameters(), (4 * 6 + 6) + (6 * 3 + 3));
}

TEST(ConvNetTest, ParameterLayoutSize) {
  ConvNet model(10, 4, 3, 2);
  // conv: 4*3+4; fc: 2*(4*8)+2 with L = 10-3+1 = 8.
  EXPECT_EQ(model.conv_output_length(), 8);
  EXPECT_EQ(model.num_parameters(), (4 * 3 + 4) + (2 * 4 * 8 + 2));
}

TEST(MlpTest, RejectsDegenerateArchitectures) {
  EXPECT_DEATH({ Mlp model({4}); }, "Check failed");
  EXPECT_DEATH({ Mlp model({4, 0, 3}); }, "Check failed");
}

TEST(SoftmaxTest, SumsToOneAndStable) {
  std::vector<double> logits = {1000.0, 1001.0, 999.0};
  SoftmaxInPlace(logits);
  double total = 0.0;
  for (double p : logits) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_GT(logits[1], logits[0]);
  EXPECT_GT(logits[0], logits[2]);
}

TEST(SoftmaxTest, CrossEntropyClampsAwayFromZero) {
  const std::vector<double> probs = {1.0, 0.0};
  const double loss = CrossEntropyFromProbabilities(probs, 1);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(loss, 20.0);  // -log(1e-12) ~ 27.6
}

TEST(CloneTest, ClonesAreIndependent) {
  Mlp model({4, 5, 3});
  model.InitializeParameters(7);
  std::unique_ptr<Model> clone = model.Clone();
  EXPECT_EQ(clone->num_parameters(), model.num_parameters());
  EXPECT_EQ(clone->parameters()[0], model.parameters()[0]);
  clone->parameters()[0] += 1.0;
  EXPECT_NE(clone->parameters()[0], model.parameters()[0]);
}

TEST(InitializationTest, DeterministicInSeed) {
  Mlp a({4, 5, 3});
  Mlp b({4, 5, 3});
  a.InitializeParameters(7);
  b.InitializeParameters(7);
  for (int i = 0; i < a.num_parameters(); ++i) {
    EXPECT_EQ(a.parameters()[static_cast<size_t>(i)],
              b.parameters()[static_cast<size_t>(i)]);
  }
  b.InitializeParameters(8);
  bool differs = false;
  for (int i = 0; i < a.num_parameters() && !differs; ++i) {
    differs = a.parameters()[static_cast<size_t>(i)] !=
              b.parameters()[static_cast<size_t>(i)];
  }
  EXPECT_TRUE(differs);
}

// Each model family must be able to fit a well-separated 3-class problem.
template <typename ModelT>
void TrainAndExpectHighAccuracy(ModelT& model, double min_accuracy) {
  SyntheticSpec spec;
  spec.feature_dim = 8;
  spec.num_classes = 3;
  spec.num_train = 512;
  spec.num_test = 256;
  spec.class_separation = 5.0;
  spec.seed = 11;
  DatasetPair pair = GenerateSynthetic(spec);

  model.InitializeParameters(3);
  SgdOptions options;
  options.learning_rate = 0.1;
  options.momentum = 0.9;
  options.weight_decay = 1e-4;
  SgdOptimizer optimizer(model.num_parameters(), options);
  BatchSampler sampler(&pair.train, 32, 5);
  std::vector<double> gradient(static_cast<size_t>(model.num_parameters()));
  const double initial_loss = AverageLoss(model, pair.train);
  for (int step = 0; step < 400; ++step) {
    const std::vector<int> batch = sampler.NextBatch();
    model.LossAndGradient(pair.train, batch, gradient);
    optimizer.Step(model.parameters(), gradient);
  }
  EXPECT_LT(AverageLoss(model, pair.train), initial_loss);
  EXPECT_GE(Accuracy(model, pair.test), min_accuracy);
}

TEST(TrainingTest, LinearModelLearnsSeparableData) {
  LinearModel model(8, 3);
  TrainAndExpectHighAccuracy(model, 0.95);
}

TEST(TrainingTest, MlpLearnsSeparableData) {
  Mlp model({8, 16, 3});
  TrainAndExpectHighAccuracy(model, 0.95);
}

TEST(TrainingTest, ConvNetLearnsSeparableData) {
  ConvNet model(8, 6, 3, 3);
  TrainAndExpectHighAccuracy(model, 0.90);
}

}  // namespace
}  // namespace netmax::ml
