#include "net/topology.h"

#include <gtest/gtest.h>

namespace netmax::net {
namespace {

TEST(TopologyTest, CompleteGraph) {
  Topology topo = Topology::Complete(5);
  EXPECT_EQ(topo.num_nodes(), 5);
  EXPECT_EQ(topo.num_edges(), 10);
  for (int a = 0; a < 5; ++a) {
    EXPECT_EQ(topo.Degree(a), 4);
    for (int b = 0; b < 5; ++b) {
      EXPECT_EQ(topo.AreNeighbors(a, b), a != b);
    }
  }
  EXPECT_TRUE(topo.IsConnected());
}

TEST(TopologyTest, RingGraph) {
  Topology topo = Topology::Ring(6);
  EXPECT_EQ(topo.num_edges(), 6);
  for (int a = 0; a < 6; ++a) {
    EXPECT_EQ(topo.Degree(a), 2);
    EXPECT_TRUE(topo.AreNeighbors(a, (a + 1) % 6));
  }
  EXPECT_FALSE(topo.AreNeighbors(0, 3));
  EXPECT_TRUE(topo.IsConnected());
}

TEST(TopologyTest, RingRequiresThreeNodes) {
  EXPECT_DEATH({ Topology::Ring(2); }, "Check failed");
}

TEST(TopologyTest, AddEdgeIdempotent) {
  Topology topo(3);
  topo.AddEdge(0, 1);
  topo.AddEdge(1, 0);
  topo.AddEdge(0, 1);
  EXPECT_EQ(topo.num_edges(), 1);
  EXPECT_EQ(topo.Degree(0), 1);
}

TEST(TopologyTest, SelfLoopDies) {
  Topology topo(3);
  EXPECT_DEATH({ topo.AddEdge(1, 1); }, "self-loops");
}

TEST(TopologyTest, NeighborsSorted) {
  Topology topo(5);
  topo.AddEdge(2, 4);
  topo.AddEdge(2, 0);
  topo.AddEdge(2, 3);
  EXPECT_EQ(topo.Neighbors(2), (std::vector<int>{0, 3, 4}));
}

TEST(TopologyTest, DisconnectedGraphDetected) {
  Topology topo(4);
  topo.AddEdge(0, 1);
  topo.AddEdge(2, 3);
  EXPECT_FALSE(topo.IsConnected());
  topo.AddEdge(1, 2);
  EXPECT_TRUE(topo.IsConnected());
}

TEST(TopologyTest, SingleNodeIsConnected) {
  Topology topo(1);
  EXPECT_TRUE(topo.IsConnected());
  EXPECT_EQ(topo.num_edges(), 0);
}

TEST(TopologyTest, AdjacencyMatrixMatchesIndicators) {
  Topology topo(3);
  topo.AddEdge(0, 2);
  linalg::Matrix d = topo.AdjacencyMatrix();
  EXPECT_DOUBLE_EQ(d(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(d(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(d(0, 0), 0.0);
  EXPECT_TRUE(d.IsSymmetric());
}

}  // namespace
}  // namespace netmax::net
